package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/drivers"
	"repro/internal/goddag"
	"repro/internal/sacx"
	"repro/internal/validate"
	"repro/internal/xpath"
)

// Document is a multihierarchical document-centric XML document: shared
// content plus one element tree per concurrent hierarchy, united in a
// GODDAG, with optional per-hierarchy DTDs.
type Document = core.Document

// Source is one hierarchy's XML document within a distributed document.
type Source = sacx.Source

// Node is a GODDAG node: the shared root, an element of some hierarchy,
// or a shared text leaf.
type Node = goddag.Node

// Element is an element node of one hierarchy.
type Element = goddag.Element

// Leaf is a shared text leaf.
type Leaf = goddag.Leaf

// Attr is an element attribute.
type Attr = goddag.Attr

// Span is a half-open byte interval [Start, End) over document content.
// Convert to and from character (rune) positions with the document
// content's ByteSpan/RuneSpan when an interface requires them.
type Span = document.Span

// Format identifies an on-disk representation of concurrent markup.
type Format = drivers.Format

// The supported representations.
const (
	FormatDistributed   = drivers.FormatDistributed
	FormatMilestones    = drivers.FormatMilestones
	FormatFragmentation = drivers.FormatFragmentation
	FormatStandoff      = drivers.FormatStandoff
)

// EncodeOptions control exports: dominant hierarchy for single-document
// encodings, and the hierarchy filter.
type EncodeOptions = drivers.EncodeOptions

// Validation modes.
const (
	// Full demands classic DTD validity.
	Full = validate.Full
	// Potential demands only that more insertions could reach validity.
	Potential = validate.Potential
)

// Value is an Extended XPath result value.
type Value = xpath.Value

// New creates an empty document with the given shared root tag and
// character content.
func New(rootTag, content string) *Document { return core.New(rootTag, content) }

// Parse builds a document from a distributed concurrent XML document
// using the SACX parser.
func Parse(sources []Source) (*Document, error) { return core.Parse(sources) }

// Import decodes a single-file representation (milestones,
// fragmentation, or standoff).
func Import(format Format, data []byte) (*Document, error) { return core.Import(format, data) }

// NewSpan returns the span [start, end).
func NewSpan(start, end int) Span { return document.NewSpan(start, end) }

// Compile parses an Extended XPath query for repeated evaluation.
func Compile(query string) (*xpath.Query, error) { return xpath.Compile(query) }

// Load reads a document saved with Document.Save (the compact binary
// GODDAG format).
func Load(r io.Reader) (*Document, error) { return core.Load(r) }
