// Benchmarks regenerating the reproduction's experiments (E3–E7 parsing,
// querying, validation, and conversion; A1/A2 ablations) under
// `go test -bench`. Each experiment also has a table-printing driver in
// cmd/cxbench; the benchmarks here are the stable, statistically-sound
// form (use -benchmem and -count for confidence). PERFORMANCE.md records
// the ingest-path trajectory across PRs.
package repro_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/drivers"
	"repro/internal/dtd"
	"repro/internal/goddag"
	"repro/internal/sacx"
	"repro/internal/store"
	"repro/internal/validate"
	"repro/internal/xpath"
)

// ---- E3: SACX parsing -------------------------------------------------

func BenchmarkSACXParse(b *testing.B) {
	for _, words := range []int{1000, 8000} {
		for _, h := range []int{1, 2, 4, 8} {
			cfg := corpus.DefaultConfig(words)
			cfg.Hierarchies = h
			srcs, err := corpus.GenerateSources(cfg)
			if err != nil {
				b.Fatal(err)
			}
			total := 0
			for _, s := range srcs {
				total += len(s.Data)
			}
			b.Run(fmt.Sprintf("words=%d/h=%d", words, h), func(b *testing.B) {
				b.SetBytes(int64(total))
				for i := 0; i < b.N; i++ {
					if _, err := sacx.Build(srcs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSACXParseDensity(b *testing.B) {
	for _, d := range []float64{0.1, 0.5, 0.9} {
		cfg := corpus.DefaultConfig(4000)
		cfg.OverlapDensity = d
		srcs, err := corpus.GenerateSources(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("density=%.1f", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sacx.Build(srcs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E4: overlap queries, GODDAG vs baselines -------------------------

func e4Fixtures(b *testing.B, words, hierarchies int, density float64) (*goddag.Document, *baseline.Node, *baseline.Node) {
	b.Helper()
	cfg := corpus.DefaultConfig(words)
	cfg.Hierarchies = hierarchies
	cfg.OverlapDensity = density
	doc, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	frag, err := drivers.EncodeFragmentation(doc, drivers.EncodeOptions{Dominant: "physical"})
	if err != nil {
		b.Fatal(err)
	}
	ms, err := drivers.EncodeMilestones(doc, drivers.EncodeOptions{Dominant: "physical"})
	if err != nil {
		b.Fatal(err)
	}
	fragDOM, err := baseline.ParseDOM(frag)
	if err != nil {
		b.Fatal(err)
	}
	msDOM, err := baseline.ParseDOM(ms)
	if err != nil {
		b.Fatal(err)
	}
	return doc, fragDOM, msDOM
}

func BenchmarkOverlapQuery_GODDAG(b *testing.B) {
	for _, words := range []int{1000, 8000} {
		for _, h := range []int{4, 8} {
			doc, _, _ := e4Fixtures(b, words, h, 0.5)
			q := xpath.MustCompile("//dmg/overlapping::w")
			b.Run(fmt.Sprintf("words=%d/h=%d", words, h), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := q.Eval(doc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkOverlapQuery_FragmentJoin(b *testing.B) {
	for _, words := range []int{1000, 8000} {
		_, fragDOM, _ := e4Fixtures(b, words, 4, 0.5)
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.OverlappingFragmentJoin(fragDOM, "dmg", "w")
			}
		})
	}
}

func BenchmarkOverlapQuery_MilestonePair(b *testing.B) {
	for _, words := range []int{1000, 8000} {
		_, _, msDOM := e4Fixtures(b, words, 4, 0.5)
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.OverlappingMilestonePair(msDOM, "dmg", "w")
			}
		})
	}
}

// ---- E5: axis micro-benchmarks ----------------------------------------

func BenchmarkAxis(b *testing.B) {
	queries := map[string]string{
		"child":       "count(/line)",
		"descendant":  "count(//w)",
		"childname":   "count(//s/w)",
		"covering":    "count(//w[17]/covering::*)",
		"covered":     "count(//line/covered::w)",
		"overlapping": "count(//dmg/overlapping::w)",
		"following":   "count(//res/following::w)",
		"preceding":   "count(//res/preceding::w)",
		"ancestor":    "count(//dmg/ancestor::*)",
		"union":       "count(//w | //line)",
		"predicate":   "count(//w[@n='100'])",
	}
	for _, size := range []struct{ words, h int }{{4000, 4}, {8000, 8}} {
		cfg := corpus.DefaultConfig(size.words)
		cfg.Hierarchies = size.h
		doc, err := corpus.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for name, qs := range queries {
			q := xpath.MustCompile(qs)
			b.Run(fmt.Sprintf("words=%d/h=%d/%s", size.words, size.h, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := q.Eval(doc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOverlappingAxisOnly isolates one overlapping-axis evaluation
// (context fixed), the unit the D3 design decision optimizes.
func BenchmarkOverlappingAxisOnly(b *testing.B) {
	doc, err := corpus.Generate(corpus.DefaultConfig(8000))
	if err != nil {
		b.Fatal(err)
	}
	dmg := doc.Hierarchy("damage").Elements()[0]
	q := xpath.MustCompile("overlapping::w")
	b.Run("interval-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.EvalFromWithOptions(doc, dmg, xpath.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("graph-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.EvalFromWithOptions(doc, dmg, xpath.Options{OverlapByWalk: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E6: prevalidation -------------------------------------------------

func BenchmarkPrevalidate(b *testing.B) {
	wordsDTD := dtd.MustParse("words", `
<!ELEMENT r (#PCDATA|s|w)*>
<!ELEMENT s (#PCDATA|w)*>
<!ELEMENT w (#PCDATA)>
`)
	for _, words := range []int{1000, 8000} {
		doc, err := corpus.Generate(corpus.DefaultConfig(words))
		if err != nil {
			b.Fatal(err)
		}
		h := doc.Hierarchy("words")
		rng := rand.New(rand.NewSource(7))
		n := doc.Content().Len()
		spans := make([]document.Span, 512)
		for i := range spans {
			lo := rng.Intn(n - 21)
			spans[i] = document.NewSpan(lo, lo+1+rng.Intn(20))
		}
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = validate.CheckInsertion(doc, h, wordsDTD, "w", spans[i%len(spans)])
			}
		})
	}
}

func BenchmarkValidateFull(b *testing.B) {
	doc, err := corpus.Generate(corpus.DefaultConfig(4000))
	if err != nil {
		b.Fatal(err)
	}
	d := dtd.MustParse("words", `
<!ELEMENT r (#PCDATA|s|w)*>
<!ELEMENT s (#PCDATA|w)*>
<!ELEMENT w (#PCDATA)>
<!ATTLIST w n CDATA #IMPLIED>
`)
	h := doc.Hierarchy("words")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		validate.Hierarchy(h, d, validate.Full)
	}
}

// ---- E7: representation conversion -------------------------------------

func BenchmarkConvert(b *testing.B) {
	doc, err := corpus.Generate(corpus.DefaultConfig(4000))
	if err != nil {
		b.Fatal(err)
	}
	ms, _ := drivers.EncodeMilestones(doc, drivers.EncodeOptions{})
	fr, _ := drivers.EncodeFragmentation(doc, drivers.EncodeOptions{})
	so, _ := drivers.EncodeStandoff(doc, drivers.EncodeOptions{})
	b.Run("encode/milestones", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := drivers.EncodeMilestones(doc, drivers.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/fragmentation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := drivers.EncodeFragmentation(doc, drivers.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/standoff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := drivers.EncodeStandoff(doc, drivers.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/milestones", func(b *testing.B) {
		b.SetBytes(int64(len(ms)))
		for i := 0; i < b.N; i++ {
			if _, err := drivers.DecodeMilestones(ms); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/fragmentation", func(b *testing.B) {
		b.SetBytes(int64(len(fr)))
		for i := 0; i < b.N; i++ {
			if _, err := drivers.DecodeFragmentation(fr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/standoff", func(b *testing.B) {
		b.SetBytes(int64(len(so)))
		for i := 0; i < b.N; i++ {
			if _, err := drivers.DecodeStandoff(so); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- A1: SACX merge strategies ------------------------------------------

func BenchmarkMergeHeap(b *testing.B)   { benchMerge(b, sacx.MergeHeap) }
func BenchmarkMergeRescan(b *testing.B) { benchMerge(b, sacx.MergeRescan) }

func benchMerge(b *testing.B, strategy sacx.MergeStrategy) {
	for _, h := range []int{2, 8, 16} {
		cfg := corpus.DefaultConfig(2000)
		cfg.Hierarchies = h
		srcs, err := corpus.GenerateSources(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := sacx.NewStream(srcs, sacx.Options{Strategy: strategy})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := st.Events(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- A2: overlap evaluation strategies ----------------------------------

func BenchmarkOverlapInterval(b *testing.B) { benchOverlap(b, xpath.Options{}) }
func BenchmarkOverlapWalk(b *testing.B) {
	benchOverlap(b, xpath.Options{OverlapByWalk: true})
}

func benchOverlap(b *testing.B, opts xpath.Options) {
	for _, density := range []float64{0.1, 0.9} {
		cfg := corpus.DefaultConfig(2000)
		cfg.OverlapDensity = density
		doc, err := corpus.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dmgs := doc.Hierarchy("damage").Elements()
		q := xpath.MustCompile("overlapping::w")
		b.Run(fmt.Sprintf("density=%.1f", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, dmg := range dmgs {
					if _, err := q.EvalFromWithOptions(doc, dmg, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---- editing throughput (supporting E8) ---------------------------------

func BenchmarkInsertElement(b *testing.B) {
	cfg := corpus.DefaultConfig(2000)
	cfg.Hierarchies = 2
	base, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n := base.Content().Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := base.Clone()
		h := doc.AddHierarchy("bench")
		rng := rand.New(rand.NewSource(int64(i)))
		b.StartTimer()
		lastEnd := 0
		for k := 0; k < 100; k++ {
			lo := lastEnd + rng.Intn(20)
			hi := lo + 1 + rng.Intn(10)
			if hi >= n {
				break
			}
			if _, err := doc.InsertElement(h, "ann", nil, document.NewSpan(lo, hi)); err != nil {
				b.Fatal(err)
			}
			lastEnd = hi
		}
	}
}

// ---- persistent storage (S15) --------------------------------------------

func BenchmarkStoreSave(b *testing.B) {
	doc, err := corpus.Generate(corpus.DefaultConfig(4000))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Encode(&buf, doc); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := store.Encode(&buf, doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreLoad(b *testing.B) {
	doc, err := corpus.Generate(corpus.DefaultConfig(4000))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Encode(&buf, doc); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
