// Command xtagger is the script-driven equivalent of the paper's xTagger
// editor for multihierarchical document-centric XML (paper §4): select a
// document fragment, choose markup from any hierarchy, and have
// prevalidation reject encodings that cannot be extended to valid XML.
//
// It reads one command per line from a script file or stdin. Every edit
// runs through the editor's transaction API: outside an explicit
// transaction each command is its own begin/commit; between begin and
// commit the ops batch into ONE prevalidated, atomically vetoed
// transaction costing one undo entry.
//
//	dtd <hierarchy> <dtd-file>     attach a DTD
//	prevalidate on|off             toggle the prevalidation veto
//	select <offset>                print the word span at a rune offset
//	begin                          open a transaction
//	commit                         commit the open transaction
//	rollback                       discard the open transaction
//	insert <hier> <tag> <start> <end> [name=value ...]
//	remove <hier> <index>          remove the i-th element (0-based, doc order)
//	attr <hier> <index> <name> <value>
//	attr-del <hier> <index> <name>
//	text-insert <pos> <text...>
//	text-delete <start> <end>
//	undo | redo
//	validate full|potential
//	show | stats
//	export <format> [dominant]
//	# comment
//
// The input may be any representation cliutil.Load sniffs — distributed,
// milestones, fragmentation, standoff, or a binary .gdag file — and
// -save writes the edited document back out as a binary GODDAG, the
// fast-loading source form for cxserve corpora (parity with cxparse).
//
// Example:
//
//	xtagger -fig1 -script edits.xt -save out.gdag
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/drivers"
	"repro/internal/editor"
	"repro/internal/goddag"
	"repro/internal/store"
	"repro/internal/validate"
)

func main() {
	var (
		format = flag.String("format", "auto", "input representation (auto sniffs gdag/standoff/milestones/fragmentation/distributed)")
		script = flag.String("script", "-", "command script file (- for stdin)")
		save   = flag.String("save", "", "write the edited document as a binary GODDAG (.gdag) file")
		demo   = flag.Bool("fig1", false, "use the bundled Figure 1 fragment")
	)
	flag.Parse()

	var doc *core.Document
	var err error
	if *demo {
		doc, err = core.Parse(corpus.Fig1Sources())
	} else if len(flag.Args()) > 0 {
		doc, err = cliutil.Load(*format, flag.Args())
	} else {
		doc = core.New("r", "")
	}
	if err != nil {
		fatal(err)
	}

	in := os.Stdin
	if *script != "-" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	t := &tagger{doc: doc, out: os.Stdout}
	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := t.run(line); err != nil {
			fmt.Fprintf(os.Stderr, "xtagger: line %d: %v\n", lineNo, err)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if t.tx != nil {
		fmt.Fprintln(os.Stderr, "xtagger: script ended with an open transaction; rolling back")
		t.tx.Rollback()
	}
	if *save != "" {
		if err := store.Save(*save, t.doc.GODDAG()); err != nil {
			fatal(err)
		}
	}
}

type tagger struct {
	doc *core.Document
	out *os.File
	tx  *editor.Tx // open explicit transaction, nil otherwise
}

// edit runs one editing step through the transaction API: inside an
// explicit begin/commit the op joins the open batch; otherwise it is
// its own single-op transaction.
func (t *tagger) edit(fn func(tx *editor.Tx) error) error {
	if t.tx != nil {
		return fn(t.tx)
	}
	tx, err := t.doc.Edit().Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

func (t *tagger) run(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "dtd":
		if len(args) != 2 {
			return fmt.Errorf("dtd <hierarchy> <file>")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		return t.doc.SetDTD(args[0], data)
	case "prevalidate":
		if len(args) != 1 {
			return fmt.Errorf("prevalidate on|off")
		}
		on := args[0] == "on"
		t.doc.SetPrevalidation(on)
		if on {
			fmt.Fprintln(t.out, "prevalidation on")
		} else {
			fmt.Fprintln(t.out, "prevalidation off")
		}
		return nil
	case "select":
		pos, err := atoi(args, 0)
		if err != nil {
			return err
		}
		// The CLI speaks rune offsets (the paper's character positions);
		// the byte↔rune index converts at this edge in both directions.
		c := t.doc.GODDAG().Content()
		if pos < 0 || pos >= c.RuneLen() {
			return fmt.Errorf("offset %d out of range [0,%d)", pos, c.RuneLen())
		}
		sp, err := t.doc.Edit().SelectWord(c.ByteOffset(pos))
		if err != nil {
			// Range was validated above, so the only session failure left
			// is whitespace; report it in the CLI's rune coordinates
			// rather than echoing the session's byte offset.
			return fmt.Errorf("select: rune offset %d is whitespace", pos)
		}
		fmt.Fprintf(t.out, "selected %v %q\n", c.RuneSpan(sp), c.Slice(sp))
		return nil
	case "insert":
		if len(args) < 4 {
			return fmt.Errorf("insert <hier> <tag> <start> <end> [name=value ...]")
		}
		start, err1 := strconv.Atoi(args[2])
		end, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad span %s %s", args[2], args[3])
		}
		var attrs []goddag.Attr
		for _, kv := range args[4:] {
			i := strings.IndexByte(kv, '=')
			if i <= 0 {
				return fmt.Errorf("bad attribute %q", kv)
			}
			attrs = append(attrs, goddag.Attr{Name: kv[:i], Value: kv[i+1:]})
		}
		bsp, err := t.byteSpan(document.NewSpan(start, end))
		if err != nil {
			return err
		}
		var el *goddag.Element
		if err := t.edit(func(tx *editor.Tx) error {
			var err error
			el, err = tx.InsertMarkup(args[0], args[1], bsp, attrs...)
			return err
		}); err != nil {
			return err
		}
		fmt.Fprintf(t.out, "inserted %s %q\n", t.describe(el), el.Text())
		return nil
	case "remove":
		el, err := t.element(args)
		if err != nil {
			return err
		}
		desc := t.describe(el)
		if err := t.edit(func(tx *editor.Tx) error { return tx.RemoveMarkup(el) }); err != nil {
			return err
		}
		fmt.Fprintf(t.out, "removed %s\n", desc)
		return nil
	case "attr":
		if len(args) != 4 {
			return fmt.Errorf("attr <hier> <index> <name> <value>")
		}
		el, err := t.element(args[:2])
		if err != nil {
			return err
		}
		if err := t.edit(func(tx *editor.Tx) error { return tx.SetAttr(el, args[2], args[3]) }); err != nil {
			return err
		}
		fmt.Fprintf(t.out, "set %s=%s on %s\n", args[2], args[3], t.describe(el))
		return nil
	case "attr-del":
		if len(args) != 3 {
			return fmt.Errorf("attr-del <hier> <index> <name>")
		}
		el, err := t.element(args[:2])
		if err != nil {
			return err
		}
		if err := t.edit(func(tx *editor.Tx) error { return tx.RemoveAttr(el, args[2]) }); err != nil {
			return err
		}
		fmt.Fprintf(t.out, "removed %s from %s\n", args[2], t.describe(el))
		return nil
	case "begin":
		if t.tx != nil {
			return fmt.Errorf("a transaction is already open")
		}
		tx, err := t.doc.Edit().Begin()
		if err != nil {
			return err
		}
		t.tx = tx
		fmt.Fprintln(t.out, "transaction open")
		return nil
	case "commit":
		if t.tx == nil {
			return fmt.Errorf("no open transaction")
		}
		tx := t.tx
		t.tx = nil
		n := len(tx.Ops())
		if err := tx.Commit(); err != nil {
			return err
		}
		fmt.Fprintf(t.out, "committed %d ops\n", n)
		return nil
	case "rollback":
		if t.tx == nil {
			return fmt.Errorf("no open transaction")
		}
		tx := t.tx
		t.tx = nil
		if err := tx.Rollback(); err != nil {
			return err
		}
		fmt.Fprintln(t.out, "rolled back")
		return nil
	case "text-insert":
		if len(args) < 2 {
			return fmt.Errorf("text-insert <pos> <text>")
		}
		pos, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		text := strings.Join(args[1:], " ")
		c := t.doc.GODDAG().Content()
		if pos < 0 || pos > c.RuneLen() {
			return fmt.Errorf("offset %d out of range [0,%d]", pos, c.RuneLen())
		}
		return t.edit(func(tx *editor.Tx) error { return tx.InsertText(c.ByteOffset(pos), text) })
	case "text-delete":
		if len(args) != 2 {
			return fmt.Errorf("text-delete <start> <end>")
		}
		start, err1 := strconv.Atoi(args[0])
		end, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad span")
		}
		bsp, err := t.byteSpan(document.NewSpan(start, end))
		if err != nil {
			return err
		}
		return t.edit(func(tx *editor.Tx) error { return tx.DeleteText(bsp) })
	case "undo":
		return t.doc.Edit().Undo()
	case "redo":
		return t.doc.Edit().Redo()
	case "validate":
		mode := validate.Full
		if len(args) > 0 && args[0] == "potential" {
			mode = validate.Potential
		}
		viols := t.doc.Validate(mode)
		if len(viols) == 0 {
			fmt.Fprintln(t.out, "valid")
			return nil
		}
		for _, v := range viols {
			fmt.Fprintln(t.out, v.Error())
		}
		return nil
	case "show":
		fmt.Fprint(t.out, goddag.Dump(t.doc.GODDAG()))
		return nil
	case "stats":
		st := t.doc.Stats()
		fmt.Fprintf(t.out, "content=%d leaves=%d hierarchies=%d elements=%d depth=%d\n",
			t.doc.GODDAG().Content().RuneLen(), st.Leaves, st.Hierarchies, st.Elements, st.MaxDepth)
		return nil
	case "export":
		if len(args) < 1 {
			return fmt.Errorf("export <format> [dominant]")
		}
		f, err := drivers.ParseFormat(args[0])
		if err != nil {
			return err
		}
		opts := drivers.EncodeOptions{}
		if len(args) > 1 {
			opts.Dominant = args[1]
		}
		outputs, err := t.doc.Export(f, opts)
		if err != nil {
			return err
		}
		return cliutil.WriteOutputs("-", outputs)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// describe formats an element for CLI output with its span in the rune
// coordinates the CLI speaks (Element's own String prints byte spans).
func (t *tagger) describe(el *goddag.Element) string {
	sp := t.doc.GODDAG().Content().RuneSpan(el.Span())
	return fmt.Sprintf("%s:%s%v", el.Hierarchy().Name(), el.Name(), sp)
}

// byteSpan converts a rune-offset span from the command line into the
// GODDAG's byte coordinates, validating the range first.
func (t *tagger) byteSpan(sp document.Span) (document.Span, error) {
	c := t.doc.GODDAG().Content()
	if !sp.Valid() || sp.End > c.RuneLen() {
		return document.Span{}, fmt.Errorf("span %v out of range [0,%d]", sp, c.RuneLen())
	}
	return c.ByteSpan(sp), nil
}

// element resolves <hier> <index> to the index-th element of the
// hierarchy in document order.
func (t *tagger) element(args []string) (*goddag.Element, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("want <hier> <index>")
	}
	h := t.doc.GODDAG().Hierarchy(args[0])
	if h == nil {
		return nil, fmt.Errorf("unknown hierarchy %q", args[0])
	}
	idx, err := strconv.Atoi(args[1])
	if err != nil {
		return nil, err
	}
	els := h.Elements()
	if idx < 0 || idx >= len(els) {
		return nil, fmt.Errorf("index %d out of range [0,%d)", idx, len(els))
	}
	return els[idx], nil
}

func atoi(args []string, i int) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing argument")
	}
	return strconv.Atoi(args[i])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xtagger:", err)
	os.Exit(1)
}
