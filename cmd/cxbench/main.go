// Command cxbench regenerates the quantitative experiments of the
// reproduction: it generates synthetic multihierarchical manuscripts,
// runs each experiment's workload, and prints one table per experiment.
// With -benchjson it also writes the SACX ingest rows to a JSON file
// (conventionally BENCH_sacx.json) so the performance trajectory can be
// tracked across PRs; see PERFORMANCE.md.
//
// Usage:
//
//	cxbench                 # run all experiments at quick sizes
//	cxbench -exp E4         # one experiment
//	cxbench -full           # larger sweeps (slower)
//
// Experiments:
//
//	E3  SACX parsing throughput vs size, hierarchy count, overlap density
//	E4  overlap queries: Extended XPath on GODDAG vs fragment-join and
//	    milestone-pairing over single-document encodings
//	E5  axis micro-benchmarks (child/descendant/ancestor/overlapping)
//	E6  prevalidation (potential validity) cost and veto behaviour
//	E7  representation conversion cost and size overhead
//	A1  ablation: SACX k-way heap merge vs linear rescan
//	A2  ablation: overlapping axis via interval arithmetic vs graph walk
//	SERVE  cxserve serving layer: warm-cache query latency (p50) through
//	       the HTTP handler vs direct Eval, and cold catalog loads per
//	       source form (tracked in BENCH_serve.json)
//	EDIT   per-edit index maintenance: incremental in-place repair vs the
//	       forced invalidate-and-rebuild path it replaced, plus the cost
//	       of the first query after an edit (tracked in BENCH_edit.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/drivers"
	"repro/internal/dtd"
	"repro/internal/faultfs"
	"repro/internal/goddag"
	"repro/internal/sacx"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/validate"
	"repro/internal/xpath"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ids, comma-separated: E3,E4,E5,E6,E7,A1,A2 or all")
		full     = flag.Bool("full", false, "run the larger sweeps")
		jsonPath = flag.String("benchjson", "", "write measured rows (E3/A1 ingest, E4/E5 query) to this JSON file, e.g. BENCH_sacx.json or BENCH_query.json")
		label    = flag.String("benchlabel", "dev", "snapshot label recorded with -benchjson (e.g. pr2); an existing snapshot with the same label is replaced, others are kept")
	)
	flag.Parse()

	b := &bench{full: *full}
	run := map[string]func(){
		"E3": b.e3, "E4": b.e4, "E5": b.e5, "E6": b.e6, "E7": b.e7,
		"A1": b.a1, "A2": b.a2, "SERVE": b.serve, "serve": b.serve,
		"EDIT": b.edit, "edit": b.edit,
	}
	ids := []string{"E3", "E4", "E5", "E6", "E7", "A1", "A2", "SERVE", "EDIT"}
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		f, ok := run[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "cxbench: unknown experiment %q\n", id)
			os.Exit(1)
		}
		f()
	}
	if *jsonPath != "" {
		if err := b.writeJSON(*jsonPath, *label); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cxbench: wrote %d rows to %s as snapshot %q\n", len(b.rows), *jsonPath, *label)
	}
}

type bench struct {
	full bool
	rows []benchRow
}

// benchRow is one measured configuration of the SACX ingest path (E3/A1,
// tracked in BENCH_sacx.json) or the query path (E4/E5, tracked in
// BENCH_query.json), emitted with -benchjson so successive PRs can track
// the performance trajectory (see PERFORMANCE.md).
type benchRow struct {
	Experiment  string  `json:"experiment"` // "E3"/"A1" (ingest) or "E4"/"E5" (query)
	Words       int     `json:"words"`
	Hierarchies int     `json:"hierarchies"`
	Density     float64 `json:"density,omitempty"`
	Strategy    string  `json:"strategy,omitempty"` // A1: "heap" or "rescan"
	Query       string  `json:"query,omitempty"`    // E4/E5: the measured query
	InputBytes  int     `json:"input_bytes,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	Elements    int     `json:"elements,omitempty"`
	Results     int     `json:"results,omitempty"`       // E4/E5: result/answer count
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"` // SERVE sustained rows: heap objects per request
}

// benchSnapshot is one labelled measurement run; BENCH_sacx.json holds
// one snapshot per PR so the trajectory is tracked in-repo.
type benchSnapshot struct {
	Label     string     `json:"label"`
	GoVersion string     `json:"go_version"`
	Rows      []benchRow `json:"rows"`
}

type benchFile struct {
	Snapshots []benchSnapshot `json:"snapshots"`
}

func (b *bench) writeJSON(path, label string) error {
	if len(b.rows) == 0 {
		return fmt.Errorf("-benchjson requires an experiment that produces rows (-exp E3, E4, E5, A1, or all)")
	}
	var file benchFile
	if old, err := os.ReadFile(path); err == nil {
		// Tolerate a corrupt or legacy-format file by starting fresh —
		// discarding anything a failed Unmarshal partially decoded — but
		// say so: the file carries the committed per-PR history, and
		// silently truncating it would lose the trajectory.
		if err := json.Unmarshal(old, &file); err != nil || len(file.Snapshots) == 0 {
			fmt.Fprintf(os.Stderr, "cxbench: %s is not a snapshot file (%v); starting a fresh history\n", path, err)
			file = benchFile{}
		}
	}
	snap := benchSnapshot{Label: label, GoVersion: runtime.Version(), Rows: b.rows}
	replaced := false
	for i := range file.Snapshots {
		if file.Snapshots[i].Label == label {
			file.Snapshots[i] = snap
			replaced = true
			break
		}
	}
	if !replaced {
		file.Snapshots = append(file.Snapshots, snap)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measure runs f repeatedly until enough wall time accumulates and
// returns the per-iteration duration.
func measure(f func()) time.Duration {
	f() // warm up
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed > 100*time.Millisecond || n >= 1<<20 {
			return elapsed / time.Duration(n)
		}
		n *= 2
	}
}

func header(id, title string) {
	fmt.Printf("\n== %s: %s ==\n", id, title)
}

func (b *bench) sizes() []int {
	if b.full {
		return []int{1000, 10000, 50000}
	}
	return []int{500, 2000, 8000}
}

// e3 — SACX parsing throughput (Figure 3 / §3 claim: one-pass parsing of
// distributed documents).
func (b *bench) e3() {
	header("E3", "SACX parse of distributed documents into GODDAG")
	fmt.Printf("%8s %4s %8s %10s %10s %10s %9s\n", "words", "h", "density", "input_KB", "ms/parse", "MB/s", "elements")
	for _, words := range b.sizes() {
		for _, h := range []int{1, 2, 4, 8} {
			for _, d := range []float64{0.1, 0.5, 0.9} {
				cfg := corpus.DefaultConfig(words)
				cfg.Hierarchies = h
				cfg.OverlapDensity = d
				srcs, err := corpus.GenerateSources(cfg)
				if err != nil {
					fatal(err)
				}
				total := 0
				for _, s := range srcs {
					total += len(s.Data)
				}
				var doc *goddag.Document
				per := measure(func() {
					doc, err = sacx.Build(srcs)
					if err != nil {
						fatal(err)
					}
				})
				mbps := float64(total) / per.Seconds() / (1 << 20)
				fmt.Printf("%8d %4d %8.1f %10.1f %10.3f %10.1f %9d\n",
					words, h, d, float64(total)/1024, float64(per.Microseconds())/1000, mbps, doc.Stats().Elements)
				b.rows = append(b.rows, benchRow{
					Experiment: "E3", Words: words, Hierarchies: h, Density: d,
					InputBytes: total, NsPerOp: per.Nanoseconds(), MBPerS: mbps,
					Elements: doc.Stats().Elements,
				})
			}
		}
	}
}

// e4 — overlap queries: GODDAG Extended XPath vs the query plans forced
// by single-document encodings (§4 claim: XPath/XQuery are inefficient
// for overlap queries; Extended XPath expresses them directly).
func (b *bench) e4() {
	header("E4", "overlap query: //dmg/overlapping::w — GODDAG vs baselines")
	fmt.Printf("%8s %4s %8s %10s %14s %14s %9s %9s\n",
		"words", "h", "density", "goddag_us", "fragjoin_us", "milestone_us", "answers", "speedup")
	const query = "//dmg/overlapping::w"
	q := xpath.MustCompile(query)
	for _, words := range b.sizes() {
		for _, h := range []int{4, 8} {
			for _, d := range []float64{0.1, 0.5, 0.9} {
				cfg := corpus.DefaultConfig(words)
				cfg.Hierarchies = h
				cfg.OverlapDensity = d
				doc, err := corpus.Generate(cfg)
				if err != nil {
					fatal(err)
				}
				frag, err := drivers.EncodeFragmentation(doc, drivers.EncodeOptions{Dominant: "physical"})
				if err != nil {
					fatal(err)
				}
				ms, err := drivers.EncodeMilestones(doc, drivers.EncodeOptions{Dominant: "physical"})
				if err != nil {
					fatal(err)
				}
				fragDOM, err := baseline.ParseDOM(frag)
				if err != nil {
					fatal(err)
				}
				msDOM, err := baseline.ParseDOM(ms)
				if err != nil {
					fatal(err)
				}

				var answers int
				tg := measure(func() {
					v, err := q.Eval(doc)
					if err != nil {
						fatal(err)
					}
					answers = len(v.Nodes())
				})
				tf := measure(func() {
					baseline.OverlappingFragmentJoin(fragDOM, "dmg", "w")
				})
				tm := measure(func() {
					baseline.OverlappingMilestonePair(msDOM, "dmg", "w")
				})
				speedup := float64(tf) / float64(tg)
				fmt.Printf("%8d %4d %8.1f %10.1f %14.1f %14.1f %9d %8.1fx\n",
					words, h, d,
					float64(tg.Nanoseconds())/1000,
					float64(tf.Nanoseconds())/1000,
					float64(tm.Nanoseconds())/1000,
					answers, speedup)
				b.rows = append(b.rows, benchRow{
					Experiment: "E4", Words: words, Hierarchies: h, Density: d,
					Query: query, NsPerOp: tg.Nanoseconds(), Results: answers,
					Elements: doc.Stats().Elements,
				})
			}
		}
	}
	fmt.Println("note: baseline times exclude DOM parsing; they re-derive offsets per query.")
}

// e5 — axis micro-benchmarks (§4 claim: efficient implementation of the
// Extended XPath).
func (b *bench) e5() {
	header("E5", "Extended XPath axis micro-benchmarks")
	fmt.Printf("%8s %4s %26s %12s %9s\n", "words", "h", "query", "us/query", "results")
	queries := []string{
		"count(/page)",
		"count(//line)",
		"count(//w)",
		"count(//s/w)",
		"count(//s/descendant::w)",
		"count(//w[7]/covering::*)",
		"count(//dmg/overlapping::*)",
		"count(//dmg/overlapping::w)",
		"count(//res/following::w)",
		"count(//res/preceding::w)",
		"count(//line/covered::w)",
		"count(//w/ancestor::*)",
		"count(//w | //line)",
	}
	for _, words := range b.sizes() {
		for _, h := range []int{4, 8} {
			cfg := corpus.DefaultConfig(words)
			cfg.Hierarchies = h
			doc, err := corpus.Generate(cfg)
			if err != nil {
				fatal(err)
			}
			for _, qs := range queries {
				q := xpath.MustCompile(qs)
				var res float64
				per := measure(func() {
					v, err := q.Eval(doc)
					if err != nil {
						fatal(err)
					}
					res = v.Number()
				})
				fmt.Printf("%8d %4d %26s %12.1f %9.0f\n", words, h, shortQuery(qs), float64(per.Nanoseconds())/1000, res)
				b.rows = append(b.rows, benchRow{
					Experiment: "E5", Words: words, Hierarchies: h,
					Query: qs, NsPerOp: per.Nanoseconds(), Results: int(res),
				})
			}
		}
	}
}

func shortQuery(q string) string {
	q = strings.TrimPrefix(q, "count(")
	return strings.TrimSuffix(q, ")")
}

// e6 — prevalidation cost and veto behaviour (§4 claim: xTagger detects
// encodings that cannot be extended to valid XML).
func (b *bench) e6() {
	header("E6", "prevalidation (potential validity) of markup insertions")
	wordsDTD := dtd.MustParse("words", `
<!ELEMENT r (#PCDATA|s|w)*>
<!ELEMENT s (#PCDATA|w)*>
<!ELEMENT w (#PCDATA)>
`)
	fmt.Printf("%8s %12s %10s %10s\n", "words", "us/check", "accepted", "vetoed")
	for _, words := range b.sizes() {
		doc, err := corpus.Generate(corpus.DefaultConfig(words))
		if err != nil {
			fatal(err)
		}
		h := doc.Hierarchy("words")
		rng := rand.New(rand.NewSource(7))
		n := doc.Content().Len()
		spans := make([]document.Span, 200)
		for i := range spans {
			lo := rng.Intn(n - 2)
			spans[i] = document.NewSpan(lo, lo+1+rng.Intn(min(20, n-lo-1)))
		}
		// Veto statistics over the fixed span set, counted once.
		accepted, vetoed := 0, 0
		for _, sp := range spans {
			if err := validate.CheckInsertion(doc, h, wordsDTD, "w", sp); err == nil {
				accepted++
			} else {
				vetoed++
			}
		}
		i := 0
		per := measure(func() {
			_ = validate.CheckInsertion(doc, h, wordsDTD, "w", spans[i%len(spans)])
			i++
		})
		fmt.Printf("%8d %12.2f %10d %10d\n", words, float64(per.Nanoseconds())/1000, accepted, vetoed)
	}
	fmt.Println("note: vetoes are random spans nesting inside existing <w> ((#PCDATA) content) or overlapping them.")
}

// e7 — representation conversion cost and size overhead (§4 "Document
// manipulation": import/export across representations, filtering).
func (b *bench) e7() {
	header("E7", "representation encode/decode and size overhead")
	fmt.Printf("%8s %15s %10s %10s %10s %10s\n", "words", "format", "bytes", "overhead", "enc_ms", "dec_ms")
	for _, words := range b.sizes() {
		doc, err := corpus.Generate(corpus.DefaultConfig(words))
		if err != nil {
			fatal(err)
		}
		contentLen := len(doc.Content().String())
		type codec struct {
			name string
			enc  func() ([]byte, error)
			dec  func([]byte) error
		}
		codecs := []codec{
			{"distributed", func() ([]byte, error) {
				m, err := drivers.EncodeDistributed(doc, drivers.EncodeOptions{})
				if err != nil {
					return nil, err
				}
				var all []byte
				for _, v := range m {
					all = append(all, v...)
				}
				return all, nil
			}, func(data []byte) error {
				m, err := drivers.EncodeDistributed(doc, drivers.EncodeOptions{})
				if err != nil {
					return err
				}
				_, err = drivers.DecodeDistributed(m)
				return err
			}},
			{"milestones", func() ([]byte, error) {
				return drivers.EncodeMilestones(doc, drivers.EncodeOptions{})
			}, func(data []byte) error {
				_, err := drivers.DecodeMilestones(data)
				return err
			}},
			{"fragmentation", func() ([]byte, error) {
				return drivers.EncodeFragmentation(doc, drivers.EncodeOptions{})
			}, func(data []byte) error {
				_, err := drivers.DecodeFragmentation(data)
				return err
			}},
			{"standoff", func() ([]byte, error) {
				return drivers.EncodeStandoff(doc, drivers.EncodeOptions{})
			}, func(data []byte) error {
				_, err := drivers.DecodeStandoff(data)
				return err
			}},
		}
		for _, c := range codecs {
			data, err := c.enc()
			if err != nil {
				fatal(err)
			}
			tEnc := measure(func() {
				if _, err := c.enc(); err != nil {
					fatal(err)
				}
			})
			tDec := measure(func() {
				if err := c.dec(data); err != nil {
					fatal(err)
				}
			})
			fmt.Printf("%8d %15s %10d %9.2fx %10.3f %10.3f\n",
				words, c.name, len(data), float64(len(data))/float64(contentLen),
				float64(tEnc.Microseconds())/1000, float64(tDec.Microseconds())/1000)
		}
	}
}

// a1 — ablation D2: SACX heap merge vs linear rescan of stream heads.
func (b *bench) a1() {
	header("A1", "ablation: SACX k-way heap merge vs linear rescan")
	fmt.Printf("%8s %4s %14s %14s %9s\n", "words", "h", "heap_ms", "rescan_ms", "ratio")
	words := b.sizes()[1]
	for _, h := range []int{2, 4, 8, 16} {
		cfg := corpus.DefaultConfig(words)
		cfg.Hierarchies = h
		srcs, err := corpus.GenerateSources(cfg)
		if err != nil {
			fatal(err)
		}
		drain := func(strategy sacx.MergeStrategy) {
			st, err := sacx.NewStream(srcs, sacx.Options{Strategy: strategy})
			if err != nil {
				fatal(err)
			}
			if _, err := st.Events(); err != nil {
				fatal(err)
			}
		}
		tHeap := measure(func() { drain(sacx.MergeHeap) })
		tScan := measure(func() { drain(sacx.MergeRescan) })
		fmt.Printf("%8d %4d %14.3f %14.3f %8.2fx\n", words, h,
			float64(tHeap.Microseconds())/1000, float64(tScan.Microseconds())/1000,
			float64(tScan)/float64(tHeap))
		b.rows = append(b.rows,
			benchRow{Experiment: "A1", Words: words, Hierarchies: h, Strategy: "heap", NsPerOp: tHeap.Nanoseconds()},
			benchRow{Experiment: "A1", Words: words, Hierarchies: h, Strategy: "rescan", NsPerOp: tScan.Nanoseconds()})
	}
}

// a2 — ablation D3: overlapping axis via interval arithmetic vs GODDAG
// graph walk through shared leaves. The axis is evaluated in isolation
// (context node fixed to each <dmg>), so the numbers measure only the
// axis implementations, not the //dmg scan both share.
func (b *bench) a2() {
	header("A2", "ablation: overlapping axis, interval arithmetic vs graph walk")
	fmt.Printf("%8s %8s %6s %14s %14s %9s\n", "words", "density", "dmgs", "interval_us", "walk_us", "ratio")
	q := xpath.MustCompile("overlapping::w")
	words := b.sizes()[1]
	for _, d := range []float64{0.1, 0.5, 0.9} {
		cfg := corpus.DefaultConfig(words)
		cfg.OverlapDensity = d
		doc, err := corpus.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		dmgs := doc.Hierarchy("damage").Elements()
		evalAll := func(opts xpath.Options) {
			for _, dmg := range dmgs {
				if _, err := q.EvalFromWithOptions(doc, dmg, opts); err != nil {
					fatal(err)
				}
			}
		}
		tInt := measure(func() { evalAll(xpath.Options{}) })
		tWalk := measure(func() { evalAll(xpath.Options{OverlapByWalk: true}) })
		fmt.Printf("%8d %8.1f %6d %14.1f %14.1f %8.2fx\n", words, d, len(dmgs),
			float64(tInt.Nanoseconds())/1000, float64(tWalk.Nanoseconds())/1000,
			float64(tWalk)/float64(tInt))
	}
}

// serve — the cxserve serving layer: warm-cache query latency through
// the full HTTP handler stack (request decode, catalog hit, compiled
// query cache, Eval, JSON/text encode) against direct xpath Eval on the
// same document, plus cold catalog loads per source form. Latency rows
// report the p50 over repeated single requests; the acceptance bar is
// that warm //w-class handler queries cost no more than direct Eval plus
// the response encoding.
func (b *bench) serve() {
	header("SERVE", "cxserve serving layer: warm query latency and cold loads")
	words := b.sizes()[1]
	cfg := corpus.DefaultConfig(words)
	doc, err := corpus.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	dir, err := os.MkdirTemp("", "cxbench-serve")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	f, err := os.Create(filepath.Join(dir, "ms.gdag"))
	if err != nil {
		fatal(err)
	}
	if err := store.Encode(f, doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	so, err := drivers.EncodeStandoff(doc, drivers.EncodeOptions{})
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "standoff.xml"), so, 0o644); err != nil {
		fatal(err)
	}

	cat, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		fatal(err)
	}
	srv := server.New(cat, server.Config{})
	h := srv.Handler()

	// Cold loads: parse + index pre-warm + footprint accounting, per
	// source form. Evict between iterations so every Get is cold.
	fmt.Printf("%8s %12s %14s\n", "words", "source", "cold_ms")
	for _, id := range []string{"ms", "standoff"} {
		per := measure(func() {
			if _, err := cat.Get(id); err != nil {
				fatal(err)
			}
			cat.Evict(id)
		})
		fmt.Printf("%8d %12s %14.3f\n", words, id, float64(per.Microseconds())/1000)
		b.rows = append(b.rows, benchRow{
			Experiment: "SERVE", Words: words, Hierarchies: cfg.Hierarchies,
			Strategy: "cold-" + id, NsPerOp: per.Nanoseconds(),
		})
	}

	// Warm-cache latency: p50 per query through the handler (JSON and
	// text responses) vs direct Eval of the same compiled query.
	if _, err := cat.Get("ms"); err != nil {
		fatal(err)
	}
	g, err := cat.Get("ms")
	if err != nil {
		fatal(err)
	}
	queries := []string{
		"//w",
		"count(//w)",
		"//dmg/overlapping::w",
		"//line/covered::w",
	}
	fmt.Printf("%8s %24s %14s %14s %14s %9s\n",
		"words", "query", "handler_p50_us", "text_p50_us", "direct_p50_us", "results")
	for _, qs := range queries {
		cq := xpath.MustCompile(qs)
		var results int
		direct := measureP50(func() {
			v, err := cq.Eval(g.GODDAG())
			if err != nil {
				fatal(err)
			}
			if v.IsNodeSet() {
				results = len(v.Nodes())
			} else {
				results = 1
			}
		})
		jsonBody := fmt.Sprintf(`{"doc":"ms","query":%q}`, qs)
		textBody := fmt.Sprintf(`{"doc":"ms","query":%q,"format":"text"}`, qs)
		handler := measureP50(func() { serveOnce(h, jsonBody) })
		text := measureP50(func() { serveOnce(h, textBody) })
		fmt.Printf("%8d %24s %14.1f %14.1f %14.1f %9d\n", words, qs,
			float64(handler.Nanoseconds())/1000, float64(text.Nanoseconds())/1000,
			float64(direct.Nanoseconds())/1000, results)
		b.rows = append(b.rows,
			benchRow{Experiment: "SERVE", Words: words, Hierarchies: cfg.Hierarchies,
				Query: qs, Strategy: "handler-json", NsPerOp: handler.Nanoseconds(), Results: results},
			benchRow{Experiment: "SERVE", Words: words, Hierarchies: cfg.Hierarchies,
				Query: qs, Strategy: "handler-text", NsPerOp: text.Nanoseconds(), Results: results},
			benchRow{Experiment: "SERVE", Words: words, Hierarchies: cfg.Hierarchies,
				Query: qs, Strategy: "direct", NsPerOp: direct.Nanoseconds(), Results: results})
	}
	fmt.Println("note: handler rows include request decode + response encode; direct rows are bare Eval on the warm GODDAG.")

	// Sustained load: several concurrent clients hammer the handler for a
	// fixed window. Reported ns/op is aggregate throughput (wall time over
	// total completed requests); allocs/op is the process-wide Mallocs
	// delta per request — the streaming path's O(1)-allocations claim
	// measured under load rather than in isolation.
	clients := runtime.GOMAXPROCS(0)
	if clients > 8 {
		clients = 8
	}
	fmt.Printf("%8s %24s %9s %14s %11s\n", "words", "query", "clients", "ns_per_op", "allocs_op")
	for _, qs := range []string{"//w", "count(//w)"} {
		body := fmt.Sprintf(`{"doc":"ms","query":%q}`, qs)
		serveOnce(h, body) // warm caches and pools before counting
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		var (
			wg   sync.WaitGroup
			stop = make(chan struct{})
			ops  atomic.Int64
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := int64(0)
				for {
					select {
					case <-stop:
						ops.Add(n)
						return
					default:
					}
					serveOnce(h, body)
					n++
				}
			}()
		}
		time.Sleep(300 * time.Millisecond)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		total := ops.Load()
		nsPerOp := elapsed.Nanoseconds() / total
		allocsPerOp := float64(after.Mallocs-before.Mallocs) / float64(total)
		fmt.Printf("%8d %24s %9d %14d %11.1f\n", words, qs, clients, nsPerOp, allocsPerOp)
		b.rows = append(b.rows, benchRow{
			Experiment: "SERVE", Words: words, Hierarchies: cfg.Hierarchies,
			Query: qs, Strategy: "sustained-json", NsPerOp: nsPerOp,
			Results: int(total), AllocsPerOp: allocsPerOp,
		})
	}
	fmt.Println("note: sustained rows are aggregate throughput over a 300ms window; allocs_op counts every heap object in the process, including the test client's request/recorder objects.")

	// Cold open, v2 decode vs v3 mapped — the open-without-decode claim.
	// The v2 iteration is the pre-v3 load: open, streaming decode, index
	// warm. The v3 iteration is open + mmap + header validation + first
	// element touch deferred (Close unmaps so mappings don't pile up).
	bigWords := b.sizes()[2]
	bigDoc, err := corpus.Generate(corpus.DefaultConfig(bigWords))
	if err != nil {
		fatal(err)
	}
	v2path := filepath.Join(dir, "cold2.gdag")
	v3path := filepath.Join(dir, "cold3.gdag")
	writeGdag := func(path string, enc func(io.Writer, *goddag.Document) error) {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := enc(f, bigDoc); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	writeGdag(v2path, store.Encode)
	writeGdag(v3path, store.EncodeV3)
	v2cold := measureP50(func() {
		f, err := os.Open(v2path)
		if err != nil {
			fatal(err)
		}
		d, err := store.Decode(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		d.Warm()
	})
	v3cold := measureP50(func() {
		_, m, err := store.OpenMappedDoc(faultfs.OS, v3path)
		if err != nil {
			fatal(err)
		}
		m.Close()
	})
	fmt.Printf("%8s %16s %14s %9s\n", "words", "strategy", "cold_open_us", "speedup")
	fmt.Printf("%8d %16s %14.1f %9s\n", bigWords, "cold-open-v2", float64(v2cold.Nanoseconds())/1000, "1.00x")
	fmt.Printf("%8d %16s %14.1f %8.0fx\n", bigWords, "cold-open-v3", float64(v3cold.Nanoseconds())/1000,
		float64(v2cold)/float64(v3cold))
	b.rows = append(b.rows,
		benchRow{Experiment: "SERVE", Words: bigWords, Hierarchies: 4,
			Strategy: "cold-open-v2", NsPerOp: v2cold.Nanoseconds()},
		benchRow{Experiment: "SERVE", Words: bigWords, Hierarchies: 4,
			Strategy: "cold-open-v3", NsPerOp: v3cold.Nanoseconds()})

	// Warm query after materialization: the lazy path must serve
	// structural queries at heap speed once touched.
	v2doc := func() *goddag.Document {
		f, err := os.Open(v2path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		d, err := store.Decode(f)
		if err != nil {
			fatal(err)
		}
		d.Warm()
		return d
	}()
	v3g, v3m, err := store.OpenMappedDoc(faultfs.OS, v3path)
	if err != nil {
		fatal(err)
	}
	defer v3m.Close()
	wq := xpath.MustCompile("//w")
	warmQ := func(d *goddag.Document) time.Duration {
		return measureP50(func() {
			if _, err := wq.Eval(d); err != nil {
				fatal(err)
			}
		})
	}
	v2warm, v3warm := warmQ(v2doc), warmQ(v3g)
	fmt.Printf("%8s %16s %14s\n", "words", "strategy", "warm_query_us")
	fmt.Printf("%8d %16s %14.1f\n", bigWords, "warm-query-v2", float64(v2warm.Nanoseconds())/1000)
	fmt.Printf("%8d %16s %14.1f\n", bigWords, "warm-query-v3", float64(v3warm.Nanoseconds())/1000)
	b.rows = append(b.rows,
		benchRow{Experiment: "SERVE", Words: bigWords, Hierarchies: 4,
			Query: "//w", Strategy: "warm-query-v2", NsPerOp: v2warm.Nanoseconds()},
		benchRow{Experiment: "SERVE", Words: bigWords, Hierarchies: 4,
			Query: "//w", Strategy: "warm-query-v3", NsPerOp: v3warm.Nanoseconds()})

	// Residency under a fixed budget: how many documents each format
	// keeps servable. The budget is sized to ~2.5 heap-resident copies;
	// mapped documents charge only touched bytes, so the whole fleet
	// stays resident.
	const fleet = 24
	resident := func(enc func(io.Writer, *goddag.Document) error, budget int64) (int, int64) {
		fdir, err := os.MkdirTemp("", "cxbench-fleet")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(fdir)
		for i := 0; i < fleet; i++ {
			cfg := corpus.DefaultConfig(b.sizes()[1])
			cfg.Seed = int64(i + 1)
			d, err := corpus.Generate(cfg)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(fdir, fmt.Sprintf("doc%d.gdag", i)))
			if err != nil {
				fatal(err)
			}
			if err := enc(f, d); err != nil {
				fatal(err)
			}
			f.Close()
		}
		fc, err := catalog.Open(fdir, catalog.Options{Budget: budget})
		if err != nil {
			fatal(err)
		}
		for i := 0; i < fleet; i++ {
			if _, err := fc.Get(fmt.Sprintf("doc%d", i)); err != nil {
				fatal(err)
			}
		}
		s := fc.Stats()
		return s.Resident, s.Bytes
	}
	probeDoc, err := corpus.Generate(corpus.DefaultConfig(b.sizes()[1]))
	if err != nil {
		fatal(err)
	}
	probeDoc.Warm()
	budget := probeDoc.Footprint()*5/2 + 1
	v2res, v2bytes := resident(store.Encode, budget)
	v3res, v3bytes := resident(store.EncodeV3, budget)
	fmt.Printf("%8s %16s %9s %9s %14s\n", "words", "strategy", "docs", "resident", "bytes")
	fmt.Printf("%8d %16s %9d %9d %14d\n", b.sizes()[1], "resident-v2", fleet, v2res, v2bytes)
	fmt.Printf("%8d %16s %9d %9d %14d\n", b.sizes()[1], "resident-v3", fleet, v3res, v3bytes)
	fmt.Printf("note: resident rows load %d docs under a %d-byte budget (~2.5 heap copies); v3 charges only touched bytes.\n", fleet, budget)
	b.rows = append(b.rows,
		benchRow{Experiment: "SERVE", Words: b.sizes()[1], Hierarchies: 4,
			Strategy: "resident-v2", Results: v2res, InputBytes: int(v2bytes)},
		benchRow{Experiment: "SERVE", Words: b.sizes()[1], Hierarchies: 4,
			Strategy: "resident-v3", Results: v3res, InputBytes: int(v3bytes)})
}

// edit — per-edit index maintenance cost, the write-path experiment of
// the transactional editing PR: one "edit" is an element insertion (or
// the matching removal) into a warm, fully indexed document. With
// incremental repair (the default) the mutation patches the ordinal,
// pre-order, name, and span indexes in place; with repair disabled it
// invalidates them and the next read pays a from-scratch rebuild — the
// pre-PR behaviour, forced here via SetIncrementalRepair(false) + Warm.
// The query-after-edit rows measure the first query landing after an
// edit in both modes, the latency an interactive editor or the serving
// layer actually observes.
func (b *bench) edit() {
	header("EDIT", "per-edit index maintenance: incremental repair vs full rebuild")
	fmt.Printf("%8s %4s %9s %12s %12s %9s %15s %15s\n",
		"words", "h", "elements", "repair_us", "rebuild_us", "speedup", "query_repair_us", "query_rebuild_us")
	for _, words := range b.sizes()[1:] {
		cfg := corpus.DefaultConfig(words)
		doc, err := corpus.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Warm()
		// Edit sites: spans of existing <w> elements, wrapped from a
		// dedicated hierarchy so edits never conflict; cycling through
		// them spreads the splice point over the whole document.
		ws := doc.ElementsNamed("w")
		if len(ws) == 0 {
			fatal(fmt.Errorf("edit bench: no <w> elements"))
		}
		spans := make([]document.Span, len(ws))
		for i, e := range ws {
			spans[i] = e.Span()
		}
		bh := doc.AddHierarchy("editbench")
		elements := doc.Stats().Elements
		q := xpath.MustCompile("count(//w)")

		i := 0
		editPair := func() {
			sp := spans[i%len(spans)]
			i++
			el, err := doc.InsertElement(bh, "edit", nil, sp)
			if err != nil {
				fatal(err)
			}
			doc.Warm() // repair: no-op; rebuild mode: pays the full rebuild
			if err := doc.RemoveElement(el); err != nil {
				fatal(err)
			}
			doc.Warm()
		}
		queryAfterEdit := func() {
			sp := spans[i%len(spans)]
			i++
			el, err := doc.InsertElement(bh, "edit", nil, sp)
			if err != nil {
				fatal(err)
			}
			if _, err := q.Eval(doc); err != nil {
				fatal(err)
			}
			if err := doc.RemoveElement(el); err != nil {
				fatal(err)
			}
		}

		doc.SetIncrementalRepair(true)
		doc.Warm()
		tRepair := measure(editPair) / 2 // two edits per pair
		doc.SetIncrementalRepair(false)
		tRebuild := measure(editPair) / 2

		doc.SetIncrementalRepair(true)
		doc.Warm()
		tQueryRepair := measure(queryAfterEdit)
		doc.SetIncrementalRepair(false)
		tQueryRebuild := measure(queryAfterEdit)
		doc.SetIncrementalRepair(true)

		speedup := float64(tRebuild) / float64(tRepair)
		fmt.Printf("%8d %4d %9d %12.1f %12.1f %8.1fx %15.1f %15.1f\n",
			words, cfg.Hierarchies, elements,
			float64(tRepair.Nanoseconds())/1000, float64(tRebuild.Nanoseconds())/1000, speedup,
			float64(tQueryRepair.Nanoseconds())/1000, float64(tQueryRebuild.Nanoseconds())/1000)
		b.rows = append(b.rows,
			benchRow{Experiment: "EDIT", Words: words, Hierarchies: cfg.Hierarchies,
				Strategy: "repair", NsPerOp: tRepair.Nanoseconds(), Elements: elements},
			benchRow{Experiment: "EDIT", Words: words, Hierarchies: cfg.Hierarchies,
				Strategy: "rebuild", NsPerOp: tRebuild.Nanoseconds(), Elements: elements},
			benchRow{Experiment: "EDIT", Words: words, Hierarchies: cfg.Hierarchies,
				Strategy: "query-after-edit-repair", Query: "count(//w)", NsPerOp: tQueryRepair.Nanoseconds(), Elements: elements},
			benchRow{Experiment: "EDIT", Words: words, Hierarchies: cfg.Hierarchies,
				Strategy: "query-after-edit-rebuild", Query: "count(//w)", NsPerOp: tQueryRebuild.Nanoseconds(), Elements: elements})
	}
	fmt.Println("note: an edit is one element insertion or removal on a warm document; rebuild forces the pre-repair invalidate-and-rebuild path.")
}

func serveOnce(h http.Handler, body string) {
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		fatal(fmt.Errorf("serve bench: status %d: %s", w.Code, w.Body.String()))
	}
}

// measureP50 samples f until enough wall time accumulates and returns
// the median duration — the latency measure the serving-layer rows
// report (tail-robust, unlike the mean measure uses).
func measureP50(f func()) time.Duration {
	f() // warm up
	var samples []time.Duration
	total := time.Duration(0)
	for total < 100*time.Millisecond || len(samples) < 30 {
		start := time.Now()
		f()
		d := time.Since(start)
		samples = append(samples, d)
		total += d
		if len(samples) >= 1<<16 {
			break
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxbench:", err)
	os.Exit(1)
}
