// Command cxquery evaluates Extended XPath queries over a concurrent XML
// document, including the overlapping/covering/covered axes the paper
// adds for concurrent markup.
//
// Usage:
//
//	cxquery -q "//dmg/overlapping::w" [-format auto] file.xml...
//	cxquery -q "count(//w)" -fig1
//
// Node results print one per line as hierarchy:tag[span] "text".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/goddag"
)

func main() {
	var (
		query  = flag.String("q", "", "Extended XPath query (required unless -flwor)")
		flwor  = flag.String("flwor", "", "FLWOR query (for/let/where/order by/return)")
		format = flag.String("format", "auto", "input representation")
		demo   = flag.Bool("fig1", false, "use the bundled Figure 1 fragment")
		quiet  = flag.Bool("count", false, "print only the number of result nodes")
	)
	flag.Parse()
	if *query == "" && *flwor == "" {
		fatal(fmt.Errorf("missing -q or -flwor query"))
	}

	var doc *core.Document
	var err error
	if *demo {
		doc, err = core.Parse(corpus.Fig1Sources())
	} else {
		doc, err = cliutil.Load(*format, flag.Args())
	}
	if err != nil {
		fatal(err)
	}

	if *flwor != "" {
		vals, err := doc.QueryFLWOR(*flwor)
		if err != nil {
			fatal(err)
		}
		if *quiet {
			fmt.Println(len(vals))
			return
		}
		for _, v := range vals {
			if v.IsNodeSet() {
				for _, n := range v.Nodes() {
					printNode(n)
				}
				continue
			}
			fmt.Println(v.String())
		}
		return
	}

	v, err := doc.QueryValue(*query)
	if err != nil {
		fatal(err)
	}
	if !v.IsNodeSet() {
		fmt.Println(v.String())
		return
	}
	if attrs := v.Attrs(); len(attrs) > 0 {
		if *quiet {
			fmt.Println(len(attrs))
			return
		}
		for _, a := range attrs {
			fmt.Printf("%s/@%s = %q\n", a.Owner, a.Name, a.Value)
		}
		return
	}
	nodes := v.Nodes()
	if *quiet {
		fmt.Println(len(nodes))
		return
	}
	for _, n := range nodes {
		printNode(n)
	}
}

func printNode(n goddag.Node) {
	// Printed spans are character positions (the paper's coordinates);
	// the content's byte↔rune index converts from the internal byte
	// spans at this output edge.
	content := n.Document().Content()
	switch v := n.(type) {
	case *goddag.Element:
		fmt.Printf("%s:%s%v %q\n", v.Hierarchy().Name(), v.Name(), content.RuneSpan(v.Span()), clip(v.Text()))
	case goddag.Leaf:
		fmt.Printf("leaf#%d%v %q\n", v.Index(), content.RuneSpan(v.Span()), clip(v.Text()))
	case *goddag.Root:
		fmt.Printf("root:%s %q\n", v.Name(), clip(v.Text()))
	}
}

func clip(s string) string {
	r := []rune(s)
	if len(r) > 60 {
		return string(r[:57]) + "..."
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxquery:", err)
	os.Exit(1)
}
