// Command cxquery evaluates Extended XPath queries over concurrent XML
// documents, including the overlapping/covering/covered axes the paper
// adds for concurrent markup.
//
// Usage:
//
//	cxquery -q "//dmg/overlapping::w" [-format auto] file.xml...
//	cxquery -q "count(//w)" -fig1
//	cxquery -q "//w" -each a.xml b.gdag c.xml
//	cxquery -flwor "for $w in //w return $w" file.xml...
//
// By default the input files form ONE document (multiple files = the
// distributed representation, one hierarchy per file). With -each, every
// file is a separate document — any representation, including binary
// .gdag stores — and the query, compiled once, is evaluated against each
// in turn; output lines gain a "file:" prefix column.
//
// Node results print one per line as hierarchy:tag[span] "text" — the
// same renderer (internal/cliutil) the cxserve HTTP service uses for its
// text format, so CLI and server output are byte-identical. -json emits
// the server's JSON encoding instead.
//
// -timeout and -max-visited bound the evaluation the same way the
// server's request deadlines and node budgets do: a query that exceeds
// either stops at the next evaluator checkpoint and exits non-zero,
// instead of running a hostile or mistyped expression forever.
//
// -trace prints a stage breakdown (compile/load/eval, plus nodes
// visited) to stderr after the results — the offline twin of the
// server's {"trace": true} explain-analyze, rendered by the same
// internal/cliutil plumbing.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

func main() {
	var (
		query   = flag.String("q", "", "Extended XPath query (required unless -flwor)")
		flwor   = flag.String("flwor", "", "FLWOR query (for/let/where/order by/return)")
		format  = flag.String("format", "auto", "input representation")
		each    = flag.Bool("each", false, "treat every input file as its own document")
		jsonOut = flag.Bool("json", false, "emit the JSON encoding (shared with cxserve)")
		demo    = flag.Bool("fig1", false, "use the bundled Figure 1 fragment")
		quiet   = flag.Bool("count", false, "print only the number of result nodes")
		timeout = flag.Duration("timeout", 0, "abort evaluation after this long (0 = no limit)")
		visited = flag.Int("max-visited", 0, "abort evaluation after visiting this many nodes (0 = no limit)")
		trace   = flag.Bool("trace", false, "print a stage breakdown (compile/load/eval) to stderr")
	)
	flag.Parse()
	if *query == "" && *flwor == "" {
		fatal(fmt.Errorf("missing -q or -flwor query"))
	}
	if *query != "" && *flwor != "" {
		fatal(fmt.Errorf("use either -q or -flwor, not both"))
	}
	if *each && *demo {
		fatal(fmt.Errorf("-each cannot be combined with -fig1"))
	}

	// One trace spans the whole invocation; in -each mode, same-name
	// stages from successive documents merge. Printed to stderr at exit
	// so stdout stays parseable.
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("cxquery")
		defer cliutil.WriteTrace(os.Stderr, tr)
	}

	// Compile exactly once, whatever the number of input documents.
	var (
		xq  *xpath.Query
		fq  *xquery.Query
		err error
	)
	sp := tr.Begin("compile")
	if *query != "" {
		xq, err = xpath.Compile(*query)
	} else {
		fq, err = xquery.Compile(*flwor)
	}
	sp.End()
	if err != nil {
		fatal(err)
	}

	// The evaluation lifecycle: one deadline and one node budget for the
	// whole invocation, shared across -each documents, enforced at the
	// evaluator's amortized checkpoints.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx = obs.WithTrace(ctx, tr)
	budget := xpath.Budget{MaxVisited: *visited}

	if *each {
		paths := flag.Args()
		if len(paths) == 0 {
			fatal(fmt.Errorf("no input files"))
		}
		for _, p := range paths {
			sp := tr.Begin("load")
			doc, err := cliutil.Load(*format, []string{p})
			sp.End()
			if err != nil {
				fatal(err)
			}
			if err := run(ctx, doc, xq, fq, budget, *jsonOut, *quiet, p); err != nil {
				fatal(err)
			}
		}
		return
	}

	var doc *core.Document
	sp = tr.Begin("load")
	if *demo {
		doc, err = core.Parse(corpus.Fig1Sources())
	} else {
		doc, err = cliutil.Load(*format, flag.Args())
	}
	sp.End()
	if err != nil {
		fatal(err)
	}
	if err := run(ctx, doc, xq, fq, budget, *jsonOut, *quiet, ""); err != nil {
		fatal(err)
	}
}

// run evaluates the pre-compiled query against one document and prints
// the result through the shared cliutil renderers. file is the input
// path in -each mode (empty otherwise): text lines get it as a prefix
// column, JSON output wraps it into the emitted object so every line
// stays valid JSON.
func run(ctx context.Context, doc *core.Document, xq *xpath.Query, fq *xquery.Query, budget xpath.Budget, jsonOut, quiet bool, file string) error {
	prefix := ""
	if file != "" {
		prefix = file + ": "
	}
	if fq != nil {
		vals, err := fq.EvalContext(ctx, doc.GODDAG(), budget)
		if err != nil {
			return err
		}
		if jsonOut {
			if quiet {
				return emitJSON(map[string]int{"count": len(vals)}, file)
			}
			out := make([]cliutil.ValueJSON, len(vals))
			for i, v := range vals {
				out[i] = cliutil.EncodeValue(v, 0)
			}
			return emitJSON(out, file)
		}
		return prefixed(prefix, func(w *prefixWriter) {
			cliutil.WriteFLWOR(w, vals, quiet, 0)
		})
	}
	v, err := xq.EvalContext(ctx, doc.GODDAG(), budget)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := cliutil.EncodeValue(v, 0)
		if quiet {
			// -count with -json: sizes only, no node dump.
			enc.Nodes, enc.Attrs = nil, nil
		}
		return emitJSON(enc, file)
	}
	return prefixed(prefix, func(w *prefixWriter) {
		cliutil.WriteValue(w, v, quiet, 0)
	})
}

// emitJSON writes one JSON document per input; in -each mode the result
// nests under {"file": ..., "result": ...} so consumers can stream one
// parseable object per file.
func emitJSON(v any, file string) error {
	if file != "" {
		v = struct {
			File   string `json:"file"`
			Result any    `json:"result"`
		}{File: file, Result: v}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

func prefixed(prefix string, f func(w *prefixWriter)) error {
	w := &prefixWriter{prefix: prefix}
	f(w)
	return w.err
}

// prefixWriter writes lines to stdout, prefixing each with a fixed
// string (the file name in -each mode; empty otherwise).
type prefixWriter struct {
	prefix string
	buf    []byte
	err    error
}

func (w *prefixWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := w.buf[:i+1]
		if w.prefix != "" {
			if _, err := os.Stdout.WriteString(w.prefix); err != nil {
				w.err = err
				return 0, err
			}
		}
		if _, err := os.Stdout.Write(line); err != nil {
			w.err = err
			return 0, err
		}
		w.buf = w.buf[i+1:]
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxquery:", err)
	os.Exit(1)
}
