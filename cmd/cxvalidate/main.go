// Command cxvalidate validates a concurrent XML document against a
// concurrent markup schema (one DTD per hierarchy), in either full or
// potential-validity mode. Potential validity is the check xTagger runs
// while authoring: could this partial encoding still be extended to a
// valid document (paper reference [5])?
//
// Usage:
//
//	cxvalidate -dtd physical=phys.dtd -dtd words=words.dtd \
//	           [-mode full|potential] file.xml...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/validate"
)

func main() {
	var (
		format = flag.String("format", "auto", "input representation")
		mode   = flag.String("mode", "full", "validation mode: full or potential")
		demo   = flag.Bool("fig1", false, "use the bundled Figure 1 fragment")
		dtds   cliutil.StringList
	)
	flag.Var(&dtds, "dtd", "hierarchy=dtd-file (repeatable)")
	flag.Parse()

	var m validate.Mode
	switch *mode {
	case "full":
		m = validate.Full
	case "potential":
		m = validate.Potential
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	var doc *core.Document
	var err error
	if *demo {
		doc, err = core.Parse(corpus.Fig1Sources())
	} else {
		doc, err = cliutil.Load(*format, flag.Args())
	}
	if err != nil {
		fatal(err)
	}
	if err := cliutil.ParseDTDSpecs(doc, dtds); err != nil {
		fatal(err)
	}

	viols := doc.Validate(m)
	if len(viols) == 0 {
		fmt.Printf("valid (%s mode): %d hierarchies, %d elements\n",
			*mode, doc.Stats().Hierarchies, doc.Stats().Elements)
		return
	}
	for _, v := range viols {
		fmt.Println(v.Error())
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxvalidate:", err)
	os.Exit(1)
}
