// Command cxparse parses a concurrent XML document (any representation)
// into a GODDAG and prints it: summary statistics, the leaf table, the
// per-hierarchy trees, or Graphviz DOT — the textual equivalents of the
// paper's Figures 1 and 2.
//
// Usage:
//
//	cxparse [-format auto] [-show] [-dot] [-stats] [-save out.gdag] file.xml...
//
// With multiple files the inputs form a distributed document, one
// hierarchy per file, named after the file. -save writes the parsed
// GODDAG in the compact binary store format, the fast-loading source
// form for cxserve corpora.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/corpus"
	"repro/internal/goddag"
	"repro/internal/store"
)

func main() {
	var (
		format = flag.String("format", "auto", "input representation: auto, distributed, milestones, fragmentation, standoff, gdag")
		show   = flag.Bool("show", false, "print the leaf table and per-hierarchy trees (Figure 1 view)")
		dot    = flag.Bool("dot", false, "print the GODDAG in Graphviz DOT (Figure 2 view)")
		stats  = flag.Bool("stats", false, "print summary statistics")
		save   = flag.String("save", "", "write the parsed document as a binary GODDAG (.gdag) file")
		demo   = flag.Bool("fig1", false, "ignore inputs and use the bundled Figure 1 manuscript fragment")
	)
	flag.Parse()

	var g *goddag.Document
	if *demo {
		doc, err := corpus.Fig1Document()
		if err != nil {
			fatal(err)
		}
		g = doc
	} else {
		doc, err := cliutil.Load(*format, flag.Args())
		if err != nil {
			fatal(err)
		}
		g = doc.GODDAG()
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := store.EncodeV3(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if !*show && !*dot && !*stats && *save != "" {
		return
	}
	if !*show && !*dot && !*stats {
		*stats = true
	}
	if *stats {
		st := g.Stats()
		fmt.Printf("content: %d bytes (%d chars)\nleaves: %d\nhierarchies: %d (%v)\nelements: %d\nmax depth: %d\noverlapping pairs: %d\n",
			st.ContentLen, g.Content().RuneLen(), st.Leaves, st.Hierarchies, g.HierarchyNames(), st.Elements, st.MaxDepth, corpus.CountOverlaps(g))
	}
	if *show {
		fmt.Print(goddag.Dump(g))
	}
	if *dot {
		fmt.Print(goddag.DOT(g))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxparse:", err)
	os.Exit(1)
}
