// Command cxconvert converts a concurrent XML document between the
// representations of concurrent markup (paper §4, "Document
// manipulation"): distributed, milestones, fragmentation, standoff. A
// subset of hierarchies can be selected on export (the demo's filtering
// feature).
//
// Usage:
//
//	cxconvert -to milestones -dominant physical phys.xml words.xml
//	cxconvert -from standoff -to distributed -o outdir doc.xml
//	cxconvert -to fragmentation -hierarchies words,damage -fig1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/drivers"
)

func main() {
	var (
		from     = flag.String("from", "auto", "input representation")
		to       = flag.String("to", "", "output representation (required)")
		out      = flag.String("o", "-", "output file, directory (distributed), or - for stdout")
		dominant = flag.String("dominant", "", "dominant hierarchy for milestones/fragmentation")
		hiers    = flag.String("hierarchies", "", "comma-separated hierarchy filter (default all)")
		demo     = flag.Bool("fig1", false, "use the bundled Figure 1 fragment")
	)
	flag.Parse()
	if *to == "" {
		fatal(fmt.Errorf("missing -to format"))
	}
	toFormat, err := drivers.ParseFormat(*to)
	if err != nil {
		fatal(err)
	}

	var doc *core.Document
	if *demo {
		doc, err = core.Parse(corpus.Fig1Sources())
	} else {
		doc, err = cliutil.Load(*from, flag.Args())
	}
	if err != nil {
		fatal(err)
	}

	opts := drivers.EncodeOptions{Dominant: *dominant}
	if *hiers != "" {
		opts.Hierarchies = strings.Split(*hiers, ",")
	}
	outputs, err := doc.Export(toFormat, opts)
	if err != nil {
		fatal(err)
	}
	if err := cliutil.WriteOutputs(*out, outputs); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxconvert:", err)
	os.Exit(1)
}
