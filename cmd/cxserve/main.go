// Command cxserve serves a corpus of concurrent XML documents over HTTP:
// the catalog + query service that turns the framework's single-document
// engine into a collection-serving system (persistent collections are the
// "ongoing work" of the paper's §1).
//
// Usage:
//
//	cxserve -dir corpus/ [-addr :8080] [-budget 512] [-cache 256]
//	        [-query-timeout 10s] [-max-visited 0] [-slow-query 0]
//	        [-debug-addr :6060] [-log-format text]
//
// The corpus directory may mix source forms, one document per entry:
//
//	ms.gdag        binary GODDAG files (cxparse -save ms.gdag, or core.Save)
//	notes.xml      single-file representations, sniffed automatically
//	               (standoff, milestones, fragmentation, plain XML)
//	boethius/      a directory of per-hierarchy XML files — one
//	               distributed concurrent document named "boethius"
//
// Documents load lazily on first use, are index-warmed before serving,
// and are managed by a byte-budgeted LRU (-budget, in MiB; 0 = unlimited).
// Concurrent requests against one document evaluate in parallel on the
// shared GODDAG under its read lock; concurrent first touches of a cold
// document trigger exactly one load.
//
// Endpoints (see internal/server for the full contract):
//
//	POST   /query        {"doc":"ms","query":"//dmg/overlapping::w"}
//	                     {"doc":"ms","flwor":"for $w in //w return $w"}
//	                     optional "format": "json" (default) | "text" |
//	                     "count", optional "limit": max encoded result
//	                     nodes (clamped to -max-results)
//	GET    /docs         catalogued documents + stats
//	GET    /docs/ID      one document (?load=1 forces a load)
//	DELETE /docs/ID      evict it / clear a cached load failure
//	POST   /docs/ID/edit apply a JSON op batch as one prevalidated
//	                     transaction, persisted on commit (atomic
//	                     temp-file + rename next to the source)
//	POST   /docs/ID/undo revert the last committed transaction
//	POST   /docs/ID/redo re-apply the last undone transaction
//	GET    /healthz      liveness
//	GET    /stats        catalog, request, and query-cache counters,
//	                     plus per-route latency quantiles
//	GET    /metrics      Prometheus text exposition of every counter,
//	                     gauge, and latency histogram
//	GET    /debug/requests  bounded ring of recent slow/errored queries
//
// Documents are editable unless -readonly is set: queries run under
// per-document read locks, edit batches under the write lock, so
// readers always see a consistent snapshot.
//
// Request lifecycles: -query-timeout is the default end-to-end deadline
// of every request (a /query body may tighten it with "timeoutMS",
// never loosen it); when it expires mid-evaluation the client gets a
// 504 and the evaluator actually stops — lock waits, cold loads, and
// the query engine's amortized checkpoints all cooperate with the
// deadline, and a client that disconnects aborts its evaluation the
// same way. -max-visited additionally bounds the nodes one evaluation
// may visit (413 when exhausted), so a single hostile query cannot
// monopolize a core regardless of deadline. -slow-query logs and counts
// evaluations slower than the threshold; /stats reports cancelled,
// timed-out, budget-exceeded, and slow-query totals.
//
// Observability: one metrics registry spans the server and the catalog;
// GET /metrics exposes it in Prometheus text format and /stats reads
// the same series, so the two surfaces cannot drift. A /query body may
// set "trace": true to get a per-stage breakdown (decode, lock wait,
// cold load, plan, eval, encode) with the response — explain-analyze
// for one request. Logs are structured (log/slog); -log-format picks
// text or json. -debug-addr opens a second listener with net/http/pprof,
// /metrics, and /debug/requests — profiling stays off the serving port.
//
// Durability: with -wal (the default) every committed edit batch is
// appended to a per-document write-ahead log (<id>.wal, next to the
// source) and fsynced before it applies; a crash before the full save
// lands is recovered by replaying the log on the next start. A disk
// that keeps failing degrades the affected document — then the whole
// catalog — to read-only (503 on writes; /healthz reports "degraded")
// while reads continue. -max-inflight bounds concurrently served
// requests; excess load is shed with 503 + Retry-After instead of
// queuing without bound, and handler panics are logged and answered
// with a JSON 500 rather than killing the connection.
//
// Examples:
//
//	cxserve -dir corpus &
//	curl -s localhost:8080/docs
//	curl -s -X POST localhost:8080/query \
//	     -d '{"doc":"ms","query":"count(//line/covered::w)"}'
//
// Shutdown: SIGINT/SIGTERM drain in-flight requests (up to 5s) before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dir        = flag.String("dir", "", "corpus directory (required)")
		budgetMB   = flag.Int64("budget", 0, "resident-document byte budget in MiB (0 = unlimited)")
		cacheSize  = flag.Int("cache", 256, "compiled-query LRU capacity")
		timeout    = flag.Duration("query-timeout", 10*time.Second, "default end-to-end request deadline (0 = none)")
		maxVisited = flag.Int("max-visited", 0, "max nodes one query evaluation may visit (0 = unlimited)")
		slowQuery  = flag.Duration("slow-query", 0, "log queries slower than this (0 = disabled)")
		maxBody    = flag.Int64("max-body", 1<<20, "maximum /query body bytes")
		maxResults = flag.Int("max-results", 10000, "default cap on encoded result nodes (-1 = unlimited)")
		readonly   = flag.Bool("readonly", false, "disable the edit/undo/redo endpoints")
		wal        = flag.Bool("wal", true, "write-ahead log edit batches for crash recovery")
		inflight   = flag.Int("max-inflight", 256, "maximum concurrently served requests (-1 = unlimited)")
		debugAddr  = flag.String("debug-addr", "", "side listener for pprof + /metrics + /debug/requests (off by default)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.DurationVar(timeout, "timeout", *timeout, "alias for -query-timeout (kept for compatibility)")
	flag.Parse()
	if *dir == "" {
		fatal(errors.New("missing -dir corpus directory"))
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}

	// One registry spans every layer: the catalog registers its load,
	// lock-wait, WAL, and residency series into the same namespace the
	// server's HTTP and query-cache series live in, and GET /metrics
	// exposes them all.
	reg := obs.NewRegistry()
	cat, err := catalog.Open(*dir, catalog.Options{Budget: *budgetMB << 20, DisableWAL: !*wal, Obs: reg})
	if err != nil {
		fatal(err)
	}
	srv := server.New(cat, server.Config{
		QueryCache:  *cacheSize,
		MaxBody:     *maxBody,
		MaxResults:  *maxResults,
		Timeout:     *timeout,
		MaxVisited:  *maxVisited,
		SlowQuery:   *slowQuery,
		ReadOnly:    *readonly,
		MaxInflight: *inflight,
		Obs:         reg,
		Logger:      logger,
	})

	if *debugAddr != "" {
		go func() {
			ds := &http.Server{
				Addr:              *debugAddr,
				Handler:           srv.DebugHandler(),
				ReadHeaderTimeout: 5 * time.Second,
			}
			logger.Info("debug listener", "addr", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cxserve: serving %d documents from %s on %s\n",
		len(cat.IDs()), *dir, *addr)

	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cxserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxserve:", err)
	os.Exit(1)
}
