package repro_test

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/goddag"
)

// TestFigure2Golden pins the E2 artifact: the GODDAG of the Figure 1
// document has exactly the node and edge inventory of the paper's
// Figure 2 — four hierarchy trees over one shared leaf sequence.
func TestFigure2Golden(t *testing.T) {
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}

	// Node inventory.
	wantInventory := []string{
		"damage:dmg x1",
		"physical:line x2",
		"restoration:res x1",
		"words:w x6",
	}
	inv := goddag.Inventory(doc)
	if strings.Join(inv, ";") != strings.Join(wantInventory, ";") {
		t.Errorf("inventory = %v, want %v", inv, wantInventory)
	}

	// Leaf sequence: 15 leaves whose texts concatenate to the content.
	if doc.NumLeaves() != 15 {
		t.Errorf("leaves = %d, want 15", doc.NumLeaves())
	}
	var text strings.Builder
	for _, l := range doc.Leaves() {
		text.WriteString(l.Text())
	}
	if text.String() != "swa hwæt swa he us sægde" {
		t.Errorf("leaf concat = %q", text.String())
	}

	// DOT output carries one cluster per hierarchy, the shared root, and
	// every leaf.
	dot := goddag.DOT(doc)
	for _, want := range []string{
		"subgraph cluster_physical",
		"subgraph cluster_words",
		"subgraph cluster_restoration",
		"subgraph cluster_damage",
		`root [label="<r>"`,
		"leaf14",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Each hierarchy's top elements attach to the shared root.
	if strings.Count(dot, "root ->") < 4 {
		t.Errorf("too few root edges in DOT:\n%s", dot)
	}

	// The multi-parent edges of Figure 2: the leaf under the damage has a
	// parent in every hierarchy, and they are the expected elements.
	// Byte offset 11 is rune offset 10 (the æ earlier in the content is 2
	// bytes): inside dmg, res, w, line1.
	leaf := doc.LeafAt(11)
	var parents []string
	for _, p := range leaf.Parents() {
		if el, ok := p.(*goddag.Element); ok {
			parents = append(parents, el.Hierarchy().Name()+":"+el.Name())
		}
	}
	want := []string{"physical:line", "words:w", "restoration:res", "damage:dmg"}
	if strings.Join(parents, ";") != strings.Join(want, ";") {
		t.Errorf("leaf parents = %v, want %v", parents, want)
	}
}
