// Quickstart: parse a two-hierarchy concurrent document and ask the
// question that plain XML cannot express — which words does the damage
// markup overlap?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A distributed document: the same content under two hierarchies
	// whose markup overlaps (the <dmg> crosses word boundaries).
	doc, err := repro.Parse([]repro.Source{
		{Hierarchy: "words", Data: []byte(
			`<r><w>swa</w> <w>hwæt</w> <w>swa</w> <w>he</w> <w>us</w> <w>sægde</w></r>`)},
		{Hierarchy: "damage", Data: []byte(
			`<r>swa hw<dmg type="stain">æt sw</dmg>a he us sægde</r>`)},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Extended XPath with the overlapping axis.
	hits, err := doc.Query("//dmg/overlapping::w")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("words overlapping damage:")
	for _, n := range hits {
		el := n.(*repro.Element)
		fmt.Printf("  <%s> %v %q\n", el.Name(), el.Span(), el.Text())
	}

	// Scalar queries work too.
	v, err := doc.QueryValue("count(//w)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total words: %s\n", v.String())

	// Add a third hierarchy on the fly and export everything as a single
	// milestone-encoded XML file. Spans are byte offsets; character
	// positions 4..12 ("hwæt swa") convert through the content's
	// byte↔rune index (æ is two bytes, so the byte span is [4,13)).
	noteSpan := doc.GODDAG().Content().ByteSpan(repro.NewSpan(4, 12))
	if _, err := doc.Edit().InsertMarkup("editorial", "note", noteSpan,
		repro.Attr{Name: "resp", Value: "ed"}); err != nil {
		log.Fatal(err)
	}
	out, err := doc.Export(repro.FormatMilestones, repro.EncodeOptions{Dominant: "words"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("milestone encoding:\n%s\n", out["document"])
}
