// Linguistics: verse structure vs syntactic structure — the second
// classic source of overlapping hierarchies (paper §2: physical location
// markup vs linguistic markup). Metrical lines and grammatical sentences
// of a poem systematically overlap; the query for *enjambment* (a
// sentence running past a line break) is exactly an overlapping-axis
// query.
//
// Run with: go run ./examples/linguistics
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two encodings of the same verse (after Tennyson): metrical lines,
	// and sentences. Sentence 1 ends mid-line-2 and sentence 2 starts
	// there, so both sentences *properly overlap* line 2 — enjambment,
	// the canonical concurrent-hierarchy conflict.
	verse := []repro.Source{
		{Hierarchy: "metre", Data: []byte(
			`<poem><l n="1">Man comes and tills the field</l> ` +
				`<l n="2">and lies beneath and after many</l> ` +
				`<l n="3">a summer dies the swan</l></poem>`)},
		{Hierarchy: "syntax", Data: []byte(
			`<poem><s n="1">Man comes and tills the field and lies beneath</s> ` +
				`<s n="2">and after many a summer dies the swan</s></poem>`)},
	}
	doc, err := repro.Parse(verse)
	if err != nil {
		log.Fatal(err)
	}

	// Enjambment: sentences that properly overlap a metrical line.
	enj, err := doc.Query("//s[overlaps(//l)]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("enjambed sentences:")
	for _, n := range enj {
		s := n.(*repro.Element)
		num, _ := s.Attr("n")
		fmt.Printf("  s %s: %q\n", num, s.Text())
		// Which lines does it cross into?
		lines, err := doc.QueryValue("count(//s[@n='" + num + "']/overlapping::l)")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    crosses %s line boundaries\n", lines.String())
	}

	// The reverse view: line-by-line, which lines are split by syntax?
	broken, err := doc.Query("//l[overlaps(//s)]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lines split by a sentence boundary:")
	for _, n := range broken {
		l := n.(*repro.Element)
		num, _ := l.Attr("n")
		fmt.Printf("  l %s: %q\n", num, l.Text())
	}

	// Leaves are shared between the hierarchies: navigate from a line
	// into the sentence tree through a leaf (paper §3: navigation from
	// one structure to another goes through root or leaf nodes).
	g := doc.GODDAG()
	line2 := g.Hierarchy("metre").ElementsNamed("l")[1]
	leaf, _ := line2.FirstLeaf()
	fmt.Printf("leaf %q has parents:", leaf.Text())
	for _, p := range leaf.Parents() {
		if el, ok := p.(*repro.Element); ok {
			fmt.Printf(" %s:%s", el.Hierarchy().Name(), el.Name())
		}
	}
	fmt.Println()
}
