// Converter: generate a synthetic multihierarchical manuscript and round
// it through every representation of concurrent markup, reporting size
// overheads and verifying losslessness — the paper's "Document
// manipulation" feature (§4) at workload scale.
//
// Run with: go run ./examples/converter
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/corpus"
	"repro/internal/drivers"
)

func main() {
	cfg := corpus.DefaultConfig(400)
	cfg.OverlapDensity = 0.7
	g, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %d hierarchies %v, %d elements, %d overlapping pairs\n",
		g.Stats().Hierarchies, g.HierarchyNames(), g.Stats().Elements, corpus.CountOverlaps(g))
	contentLen := len(g.Content().String())

	// Express the GODDAG in each representation and measure overhead.
	milestones, err := drivers.EncodeMilestones(g, drivers.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fragmentation, err := drivers.EncodeFragmentation(g, drivers.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	standoff, err := drivers.EncodeStandoff(g, drivers.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	distributed, err := drivers.EncodeDistributed(g, drivers.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	distTotal := 0
	for _, d := range distributed {
		distTotal += len(d)
	}

	fmt.Printf("\n%-15s %10s %10s\n", "representation", "bytes", "overhead")
	for _, row := range []struct {
		name string
		n    int
	}{
		{"content only", contentLen},
		{"distributed", distTotal},
		{"milestones", len(milestones)},
		{"fragmentation", len(fragmentation)},
		{"standoff", len(standoff)},
	} {
		fmt.Printf("%-15s %10d %9.2fx\n", row.name, row.n, float64(row.n)/float64(contentLen))
	}

	// Lossless chain: milestones -> GODDAG -> fragmentation -> GODDAG ->
	// standoff -> GODDAG, ending equal to the original.
	d1, err := repro.Import(repro.FormatMilestones, milestones)
	if err != nil {
		log.Fatal(err)
	}
	f2, err := d1.Export(repro.FormatFragmentation, repro.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	d2, err := repro.Import(repro.FormatFragmentation, f2["document"])
	if err != nil {
		log.Fatal(err)
	}
	s3, err := d2.Export(repro.FormatStandoff, repro.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	d3, err := repro.Import(repro.FormatStandoff, s3["document"])
	if err != nil {
		log.Fatal(err)
	}
	if d3.Stats() != g.Stats() || d3.GODDAG().Content().String() != g.Content().String() {
		log.Fatalf("conversion chain lost information: %+v vs %+v", d3.Stats(), g.Stats())
	}
	fmt.Println("\nconversion chain milestones -> fragmentation -> standoff: lossless ✓")

	// Filtering on export: ship only the words layer.
	only, err := d3.Export(repro.FormatDistributed, repro.EncodeOptions{Hierarchies: []string{"words"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filtered words-only export: %d bytes\n", len(only["words"]))
}
