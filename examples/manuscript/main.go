// Manuscript: the full edition-production pipeline of the paper's demo
// (Figure 4 / experiment E8) on the Figure 1 manuscript fragment —
// parse the four concurrent encodings, inspect the GODDAG, run editorial
// overlap queries, annotate under prevalidation, and export a filtered
// view.
//
// Run with: go run ./examples/manuscript
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/corpus"
	"repro/internal/goddag"
)

func main() {
	// 1. Parse the distributed document: physical layout, words,
	// restorations, damage — four hierarchies over one transcription.
	doc, err := repro.Parse(corpus.Fig1Sources())
	if err != nil {
		log.Fatal(err)
	}
	st := doc.Stats()
	fmt.Printf("parsed %d hierarchies, %d elements, %d leaves over %d chars\n\n",
		st.Hierarchies, st.Elements, st.Leaves, doc.GODDAG().Content().RuneLen())

	// 2. The GODDAG (Figure 2): shared leaves under per-hierarchy trees.
	fmt.Println(goddag.Dump(doc.GODDAG()))

	// 3. Editorial queries over concurrent markup.
	queries := []string{
		"//dmg/overlapping::w",      // words touched by damage
		"//res/overlapping::w",      // words split by a restoration
		"//res/overlapping::line",   // restorations crossing line breaks
		"//line[@n='2']/covered::w", // words wholly inside line 2
	}
	for _, q := range queries {
		hits, err := doc.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s ->", q)
		for _, n := range hits {
			fmt.Printf(" %q", n.Text())
		}
		fmt.Println()
	}

	// 4. Annotate under prevalidation: the editorial hierarchy has a DTD,
	// and xTagger-style editing refuses markup that could never validate.
	if err := doc.SetDTD("editorial", []byte(`
<!ELEMENT r (#PCDATA|sic|corr)*>
<!ELEMENT sic (#PCDATA)>
<!ELEMENT corr (#PCDATA)>
<!ATTLIST corr resp CDATA #REQUIRED>
`)); err != nil {
		log.Fatal(err)
	}
	doc.EnablePrevalidation()
	s := doc.Edit()

	// Tag the damaged reading: select the word under the damage and mark
	// it sic.
	damaged, err := doc.Query("//dmg/overlapping::w")
	if err != nil {
		log.Fatal(err)
	}
	word := damaged[0].(*repro.Element)
	if _, err := s.InsertMarkup("editorial", "sic", word.Span()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntagged %q as sic\n", word.Text())

	// Prevalidation veto: <sic> inside <sic> can never validate. Step
	// one *character* (not byte) past the word start so the nested span
	// stays on a rune boundary even for multibyte-initial words.
	content := doc.GODDAG().Content()
	nested := repro.NewSpan(
		content.ByteOffset(content.RuneOffset(word.Span().Start)+1),
		word.Span().End)
	if _, err := s.InsertMarkup("editorial", "sic", nested); err != nil {
		fmt.Printf("prevalidation vetoed nested sic: %v\n", err)
	}

	// 5. Export a filtered view: only words + editorial layer, as
	// standoff for the archive.
	view, err := doc.Filter("words", "editorial")
	if err != nil {
		log.Fatal(err)
	}
	out, err := view.Export(repro.FormatStandoff, repro.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfiltered standoff export:\n%s", out["document"])
}
