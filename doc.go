// Package repro is a Go implementation of the framework of Iacob &
// Dekhtyar, "A Framework for Processing Complex Document-centric XML
// with Overlapping Structures" (SIGMOD 2005): management of
// multihierarchical ("concurrent") XML whose markup from different
// hierarchies overlaps and therefore cannot live in a single well-formed
// XML tree.
//
// The framework models such documents as a GODDAG — a directed acyclic
// graph in which all hierarchies share one root and one sequence of text
// leaves, and each hierarchy is a DOM-like tree over those leaves. On top
// of the GODDAG the package provides:
//
//   - SACX, a SAX-style parser that merges a *distributed document* (one
//     XML file per hierarchy, same content) into a single event stream
//     and builds the GODDAG in one pass;
//   - Extended XPath, XPath 1.0 re-defined over the GODDAG and extended
//     with the overlapping/covering/covered axes and the hierarchy()
//     function;
//   - prevalidated editing (the xTagger core): markup insertions are
//     vetoed when they could never be extended to a valid document;
//   - drivers for the proposed representations of concurrent markup —
//     distributed, TEI-style milestones, TEI-style fragmentation, and
//     standoff — with lossless conversion between all of them and
//     hierarchy filtering on export.
//
// Offset semantics: spans address the shared character content by *byte*
// offset end-to-end — the parse pipeline never counts runes. Character
// (rune) positions, where an interface calls for them (the standoff file
// format, the span-start()/span-end() query functions, CLI editing
// offsets), are converted at that edge through a lazily built, memoized
// byte↔rune index on the document content (see internal/document).
//
// Query indexing: the paper lists indexing of concurrent structures as
// ongoing work; this implementation realizes it in-memory. Every GODDAG
// node carries a dense document-order *ordinal* (root = 0, then elements
// and leaves interleaved by the CompareNodes total order), each element
// records its pre-order subtree interval within its hierarchy, and a
// *name index* maps each tag to its document-ordered element list. The
// Extended XPath evaluator is built on them: node identity and document
// order are integer comparisons, node-sets combine by k-way merges with
// bitset deduplication (no hashing of node identities), descendant
// enumeration is an O(1) slice of the pre-order array, and name tests on
// the descendant, following, preceding, and covered axes narrow through
// the name index instead of enumerating whole axes. Element insertions
// and removals *repair* all of these indexes in place (splice + local
// renumber); text edits fall back to lazy from-scratch rebuilds.
// Documents are safe for concurrent querying; see internal/goddag's
// package comment for the exact mutation/read contract.
//
// Serving collections: the paper positions the framework as
// infrastructure for document-centric collections. internal/catalog
// manages a directory-backed corpus — lazy singleflight loads,
// index pre-warming (goddag.Document.Warm), and a byte-budgeted LRU
// over goddag.Document.Footprint estimates — and internal/server +
// cmd/cxserve expose it over HTTP: POST /query evaluates Extended
// XPath and FLWOR with a shared compiled-query cache, and results
// render through the same internal/cliutil encoders the cxquery CLI
// uses, so server and CLI output are byte-identical.
//
// Every request the serving layer handles carries a real lifecycle: a
// context.Context deadline (the server default, tightened per request)
// threads from the HTTP handler through catalog lock acquisition and
// singleflight cold loads down to the query evaluator, which polls it
// at amortized checkpoints alongside an optional per-evaluation node
// budget (xpath.Budget). An expired deadline answers 504, a client
// disconnect cancels the evaluation (499), an exhausted budget answers
// 413 — and in every case the serving goroutine actually unwinds
// instead of finishing work nobody will read. Shared work is never
// aborted on one waiter's behalf: an in-flight load completes for the
// other waiters, and an edit past its commit point persists in full.
//
// Served documents are editable, not frozen at load: each catalog entry
// carries a read/write lock — queries evaluate under the read side, and
// POST /docs/{id}/edit applies a JSON op batch as ONE editor transaction
// (prevalidated per op, vetoed atomically, one undo entry) under the
// write side, so readers always see either the pre- or post-edit
// snapshot, never a torn document. Commits repair the in-memory indexes
// incrementally and persist the document through package store's atomic
// temp-file + rename save; undo/redo are exposed the same way, and
// eviction refuses documents with unsaved edits. Persistent
// single-document storage (the paper's "ongoing work") is package
// store's binary format: format v3 is a CRC-guarded section-table
// image whose payloads are the document's columns — including the
// derived query indexes — so opening a file is stat + mmap + header
// validation (microseconds, no decode), nodes materialize lazily on
// first touch, and the catalog charges its byte budget only for the
// bytes actually touched. The first edit promotes the document to the
// heap. Older v2 stream files still load everywhere (store.Decode
// dispatches on the version byte, mapped opens report store.ErrV2 and
// fall back to the heap decoder) and every save rewrites as v3, so a
// v2 corpus migrates in place one save at a time.
//
// Durability and recovery: the write path is crash-safe by
// append-before-apply. Each committed edit batch is serialized, appended
// to a per-document write-ahead log (<id>.wal, CRC-framed; package
// store), and fsynced BEFORE the batch is applied and the indexes
// repaired — the log fsync is the commit point. A successful full save
// resets the log; a crash at any point is recovered on the next catalog
// open by replaying the surviving log tail against the saved base, with
// each record gated on a fingerprint of the state it was logged against
// so a batch that already reached the base is never applied twice (torn
// tails are detected by checksum and truncated). Failed saves retry with
// capped exponential backoff; a disk that keeps failing degrades the
// document — then the whole catalog — to read-only (writes answer 503,
// reads keep serving, /healthz reports the degradation) rather than
// wedging or silently dropping edits. All store and WAL I/O flows
// through internal/faultfs, a filesystem seam whose fault injector lets
// the tests drive ENOSPC/EIO at every write, sync, and rename, and
// simulate power cuts at each point of the commit sequence.
//
// Quick start:
//
//	doc, err := repro.Parse([]repro.Source{
//	    {Hierarchy: "physical", Data: []byte(`<r><line>swa hwæt swa</line></r>`)},
//	    {Hierarchy: "words", Data: []byte(`<r><w>swa</w> <w>hwæt</w> <w>swa</w></r>`)},
//	})
//	if err != nil { ... }
//	hits, err := doc.Query("//line/overlapping::w")
//
// See ROADMAP.md for the system inventory and open directions, PAPER.md
// for the source paper's abstract, and PERFORMANCE.md for the measured
// behaviour of the parsing pipeline.
package repro
