// Differential tests for the zero-copy SACX ingest path: the fast path
// (single-tokenize merge + GODDAG bulk loader) must produce byte-identical
// documents to the MergeRescan ablation merge and to a reference builder
// that replays the pre-refactor insertion strategy (the general
// Document.InsertElement per record), across the whole corpus
// configuration grid used by the benchmarks.
package repro_test

import (
	"fmt"
	"io"
	"sort"
	"testing"
	"unicode/utf8"

	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/sacx"
)

// referenceBuild replays the pre-refactor GODDAG construction: drain the
// merged event stream into element records, batch-cut the borders, sort
// widest-first, and insert every record through the general
// InsertElement path (root-descent locate plus adoption probing).
func referenceBuild(t *testing.T, srcs []sacx.Source, strategy sacx.MergeStrategy) *goddag.Document {
	t.Helper()
	st, err := sacx.NewStream(srcs, sacx.Options{Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	var doc *goddag.Document
	type open struct {
		name  string
		attrs []goddag.Attr
		pos   int
	}
	type record struct {
		hier  string
		name  string
		attrs []goddag.Attr
		span  document.Span
		seq   int
	}
	stacks := map[string][]open{}
	var records []record
	seq := 0
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case sacx.StartDocument:
			doc = goddag.New(ev.Name, ev.Text)
			for _, src := range srcs {
				doc.AddHierarchy(src.Hierarchy)
			}
		case sacx.StartElement:
			stacks[ev.Hierarchy] = append(stacks[ev.Hierarchy],
				open{name: ev.Name, attrs: ev.Attrs, pos: ev.Pos})
		case sacx.EndElement:
			stack := stacks[ev.Hierarchy]
			if len(stack) == 0 {
				t.Fatalf("unbalanced end of <%s> in %q", ev.Name, ev.Hierarchy)
			}
			top := stack[len(stack)-1]
			stacks[ev.Hierarchy] = stack[:len(stack)-1]
			records = append(records, record{
				hier: ev.Hierarchy, name: top.name, attrs: top.attrs,
				span: document.NewSpan(top.pos, ev.Pos), seq: seq,
			})
			seq++
		}
	}
	cuts := make([]int, 0, 2*len(records))
	for _, r := range records {
		cuts = append(cuts, r.span.Start, r.span.End)
	}
	doc.Partition().CutAll(cuts)
	sort.SliceStable(records, func(i, j int) bool {
		c := document.CompareSpans(records[i].span, records[j].span)
		if c != 0 {
			return c < 0
		}
		return records[i].seq < records[j].seq
	})
	for _, r := range records {
		h := doc.Hierarchy(r.hier)
		if _, err := doc.InsertElement(h, r.name, r.attrs, r.span); err != nil {
			t.Fatalf("reference insert %s %v: %v", r.name, r.span, err)
		}
	}
	return doc
}

// splitAll renders every hierarchy of a document back to standalone XML.
func splitAll(t *testing.T, doc *goddag.Document) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, hier := range doc.HierarchyNames() {
		b, err := sacx.Split(doc, hier)
		if err != nil {
			t.Fatalf("split %q: %v", hier, err)
		}
		out[hier] = string(b)
	}
	return out
}

func diffDocs(t *testing.T, label string, want, got *goddag.Document) {
	t.Helper()
	if err := got.Check(); err != nil {
		t.Fatalf("%s: invariant violation: %v", label, err)
	}
	ws, gs := want.Stats(), got.Stats()
	if ws != gs {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, ws, gs)
	}
	wsplit, gsplit := splitAll(t, want), splitAll(t, got)
	for hier, w := range wsplit {
		if g := gsplit[hier]; g != w {
			t.Errorf("%s: hierarchy %q serializes differently:\n want %s\n  got %s", label, hier, w, g)
		}
	}
}

func TestDifferentialCorpusGrid(t *testing.T) {
	for _, words := range []int{200, 1200} {
		for _, h := range []int{1, 2, 4, 8} {
			for _, density := range []float64{0.1, 0.5, 0.9} {
				name := fmt.Sprintf("words=%d/h=%d/density=%.1f", words, h, density)
				t.Run(name, func(t *testing.T) {
					cfg := corpus.DefaultConfig(words)
					cfg.Hierarchies = h
					cfg.OverlapDensity = density
					runDifferential(t, cfg)
				})
			}
		}
	}
}

// TestDifferentialCorpusGridMultibyte re-runs the grid over a CJK /
// emoji / combining-mark vocabulary (including astral-plane code
// points), so every span in the pipeline lands between multibyte runes.
func TestDifferentialCorpusGridMultibyte(t *testing.T) {
	for _, words := range []int{200, 800} {
		for _, h := range []int{1, 2, 4, 8} {
			for _, density := range []float64{0.1, 0.9} {
				name := fmt.Sprintf("words=%d/h=%d/density=%.1f", words, h, density)
				t.Run(name, func(t *testing.T) {
					cfg := corpus.DefaultConfig(words)
					cfg.Hierarchies = h
					cfg.OverlapDensity = density
					cfg.Vocabulary = corpus.MultibyteVocabulary
					runDifferential(t, cfg)
				})
			}
		}
	}
}

func runDifferential(t *testing.T, cfg corpus.Config) {
	t.Helper()
	srcs, err := corpus.GenerateSources(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sacx.Build(srcs)
	if err != nil {
		t.Fatal(err)
	}
	rescan, err := sacx.BuildWithOptions(srcs, sacx.Options{Strategy: sacx.MergeRescan})
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceBuild(t, srcs, sacx.MergeRescan)
	if err := ref.Check(); err != nil {
		t.Fatalf("reference document invalid: %v", err)
	}
	diffDocs(t, "fast vs reference", ref, fast)
	diffDocs(t, "rescan vs reference", ref, rescan)
}

// TestDifferentialEventStreams verifies that both merge strategies emit
// identical event sequences over the corpus grid (the fig1 case is
// covered in package sacx).
func TestDifferentialEventStreams(t *testing.T) {
	for _, h := range []int{2, 8} {
		for _, density := range []float64{0.1, 0.9} {
			cfg := corpus.DefaultConfig(400)
			cfg.Hierarchies = h
			cfg.OverlapDensity = density
			srcs, err := corpus.GenerateSources(cfg)
			if err != nil {
				t.Fatal(err)
			}
			drain := func(strategy sacx.MergeStrategy) []sacx.Event {
				st, err := sacx.NewStream(srcs, sacx.Options{Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				evs, err := st.Events()
				if err != nil {
					t.Fatal(err)
				}
				return evs
			}
			he, se := drain(sacx.MergeHeap), drain(sacx.MergeRescan)
			if len(he) != len(se) {
				t.Fatalf("h=%d density=%.1f: event counts differ: %d vs %d", h, density, len(he), len(se))
			}
			for i := range he {
				a, b := he[i], se[i]
				if a.Kind != b.Kind || a.Hierarchy != b.Hierarchy || a.Name != b.Name || a.Pos != b.Pos || a.Text != b.Text {
					t.Fatalf("h=%d density=%.1f: event %d differs: %+v vs %+v", h, density, i, a, b)
				}
			}
		}
	}
}

// TestDifferentialMilestones exercises the bulk loader's equal-span and
// milestone edge cases against the general insert path: coextensive
// elements, milestones at element borders, and stacked milestones at one
// position.
func TestDifferentialMilestones(t *testing.T) {
	cases := []struct {
		name string
		srcs []sacx.Source
	}{
		{"coextensive", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r>xy<o><i>abc</i></o>z</r>`)},
		}},
		{"triple-coextensive", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r><o><m><i>abc</i></m></o>z</r>`)},
		}},
		{"milestone-left-edge", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r>ab<el><pb/>cd</el>ef</r>`)},
		}},
		{"milestone-right-edge", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r>ab<el>cd<pb/></el>ef</r>`)},
		}},
		{"stacked-milestones", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r>ab<pb/><lb/>cd</r>`)},
		}},
		{"nested-milestones", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r>ab<pb><lb/></pb>cd</r>`)},
		}},
		{"milestone-overlap-mix", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r><s>ab cd</s> <s>ef gh</s></r>`)},
			{Hierarchy: "b", Data: []byte(`<r>ab<pb/> <x>cd ef</x> gh</r>`)},
		}},
		{"multibyte-overlap", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r><s>文書の</s><s>重なり</s></r>`)},
			{Hierarchy: "b", Data: []byte(`<r>文<x>書の重</x>なり</r>`)},
		}},
		{"astral-milestones", []sacx.Source{
			{Hierarchy: "a", Data: []byte(`<r>🌲<pb/>📚<w>🔥𝔾</w>𝕠</r>`)},
			{Hierarchy: "b", Data: []byte(`<r><l>🌲📚🔥</l><l>𝔾𝕠</l></r>`)},
		}},
		{"combining-marks", []sacx.Source{
			// a\u0308 and c\u0301 are combining sequences: the mark is a
			// separate rune, so markup may fall between base and mark in
			// one hierarchy but not the other.
			{Hierarchy: "a", Data: []byte("<r><w>a\u0308b</w> <w>c\u0301</w></r>")},
			{Hierarchy: "b", Data: []byte("<r>a\u0308<x>b c\u0301</x></r>")},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fast, err := sacx.Build(c.srcs)
			if err != nil {
				t.Fatal(err)
			}
			ref := referenceBuild(t, c.srcs, sacx.MergeHeap)
			diffDocs(t, c.name, ref, fast)
		})
	}
}

// TestRuneIndexLeafBoundaries builds multibyte documents through the full
// pipeline and proves the content's byte↔rune index agrees with
// utf8.RuneCountInString at every leaf boundary, in both directions.
func TestRuneIndexLeafBoundaries(t *testing.T) {
	docs := make([]*goddag.Document, 0, 3)
	for _, density := range []float64{0.1, 0.9} {
		cfg := corpus.DefaultConfig(300)
		cfg.OverlapDensity = density
		cfg.Vocabulary = corpus.MultibyteVocabulary
		srcs, err := corpus.GenerateSources(cfg)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := sacx.Build(srcs)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	if fig1, err := corpus.Fig1Document(); err == nil {
		docs = append(docs, fig1)
	} else {
		t.Fatal(err)
	}
	for di, doc := range docs {
		content := doc.Content()
		text := content.String()
		bounds := append(doc.Partition().Boundaries(), content.Len())
		for _, b := range bounds {
			want := utf8.RuneCountInString(text[:b])
			if got := content.RuneOffset(b); got != want {
				t.Fatalf("doc %d: RuneOffset(%d) = %d, want %d", di, b, got, want)
			}
			if got := content.ByteOffset(want); got != b {
				t.Fatalf("doc %d: ByteOffset(%d) = %d, want %d", di, want, got, b)
			}
		}
	}
}
