// Package corpus provides the workloads for the reproduction: a bundled
// Old English manuscript fragment matching the structure of the paper's
// Figure 1, and a parameterised generator of synthetic manuscripts with
// concurrent hierarchies.
//
// Substitution note: the paper demonstrates on images
// and transcriptions of British Library MS Cotton Otho A. vi (Boethius,
// folio 36v), which are not redistributable. The bundled fragment is a
// public-domain Old English passage encoded with exactly the hierarchies
// of Figure 1 — physical layout (line), words (w), editorial restorations
// (res), and damage (dmg) — arranged so that the same overlap patterns
// occur (word/line, word/restoration, word/damage conflicts). The
// generator scales those patterns to arbitrary sizes for the performance
// experiments.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"unicode/utf8"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/sacx"
)

// Fig1Sources returns the paper's Figure 1 distributed document: four XML
// encodings of the same manuscript content with mutually overlapping
// markup.
func Fig1Sources() []sacx.Source {
	return []sacx.Source{
		{Hierarchy: "physical", Data: []byte(`<r><line n="1">swa hwæt swa</line><line n="2"> he us sægde</line></r>`)},
		{Hierarchy: "words", Data: []byte(`<r><w>swa</w> <w>hwæt</w> <w>swa</w> <w>he</w> <w>us</w> <w>sægde</w></r>`)},
		{Hierarchy: "restoration", Data: []byte(`<r>swa hwæt s<res resp="ed">wa he u</res>s sægde</r>`)},
		{Hierarchy: "damage", Data: []byte(`<r>swa hw<dmg type="stain">æt sw</dmg>a he us sægde</r>`)},
	}
}

// Fig1Document parses Fig1Sources into a GODDAG.
func Fig1Document() (*goddag.Document, error) {
	return sacx.Build(Fig1Sources())
}

// oldEnglishWords is the vocabulary the generator samples; drawn from the
// opening of the Old English Boethius (public domain).
var oldEnglishWords = []string{
	"on", "ðære", "tide", "ðe", "gotan", "of", "sciððiu", "mægðe", "wið",
	"romana", "rice", "gewin", "up", "ahofon", "and", "mid", "heora",
	"cyningum", "rædgota", "eallerica", "wæron", "hatne", "romane",
	"burig", "abræcon", "eall", "italia", "rice", "þæt", "is",
	"betwux", "þam", "muntum", "sicilia", "þam", "ealonde", "in",
	"anwald", "gerehton", "æfter", "þam", "foresprecenan", "cyningum",
	"þeodric", "feng", "to", "þam", "ilcan", "rice", "se", "wæs",
	"amulinga", "he", "wæs", "cristen", "þeah", "þurhwunode", "gedwolan",
	"swa", "hwæt", "us", "sægde", "boethius", "wisdom", "gemynd",
}

// Config parameterises the synthetic manuscript generator. The zero value
// is not useful; see DefaultConfig.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Words is the number of words of content to generate.
	Words int
	// Hierarchies is the number of concurrent hierarchies (>= 1):
	// hierarchy 1 is the physical layout (page/line), hierarchy 2 the
	// word/sentence structure, and hierarchies 3..n are annotation
	// layers (damage, restoration, additions, ...).
	Hierarchies int
	// OverlapDensity in [0,1] is the probability that an annotation span
	// deliberately crosses a structural boundary (producing overlapping
	// markup); at 0 annotations nest cleanly inside words.
	OverlapDensity float64
	// AnnotationRate is the expected number of annotations per 100 words
	// in each annotation layer (default 10).
	AnnotationRate float64
	// WordsPerLine controls the physical layout (default 8).
	WordsPerLine int
	// LinesPerPage controls the physical layout (default 20).
	LinesPerPage int
	// WordsPerSentence controls the words hierarchy (default 12).
	WordsPerSentence int
	// Vocabulary overrides the sampled word list (default: the bundled
	// Old English vocabulary). Multibyte-heavy vocabularies (CJK, emoji,
	// combining marks) exercise the byte-span pipeline's UTF-8 handling.
	Vocabulary []string
}

// MultibyteVocabulary is a vocabulary of CJK words, emoji (including
// astral-plane code points), and combining-mark sequences, used by the
// differential tests to drive the corpus grid over non-ASCII content.
var MultibyteVocabulary = []string{
	"文書", "重なり", "構造", "階層", "検索", "編集", "木構造", "注釈",
	"🌲", "📚🔥", "𝔾𝕠", "🧪", "étude", "ño", "åb̈",
	"æðel", "świa", "đồng", "ﬁn",
}

// DefaultConfig returns a workable configuration for n words.
func DefaultConfig(n int) Config {
	return Config{
		Seed:             1,
		Words:            n,
		Hierarchies:      4,
		OverlapDensity:   0.5,
		AnnotationRate:   10,
		WordsPerLine:     8,
		LinesPerPage:     20,
		WordsPerSentence: 12,
	}
}

// annotationTags names the annotation layers, cycled for hierarchies 3+.
var annotationTags = []struct{ hier, tag string }{
	{"damage", "dmg"},
	{"restoration", "res"},
	{"addition", "add"},
	{"deletion", "del"},
	{"unclear", "unclear"},
	{"note", "note"},
}

// Generate builds a synthetic multihierarchical manuscript as a GODDAG.
func Generate(cfg Config) (*goddag.Document, error) {
	if cfg.Words <= 0 {
		return nil, fmt.Errorf("corpus: Words must be positive")
	}
	if cfg.Hierarchies < 1 {
		return nil, fmt.Errorf("corpus: need at least one hierarchy")
	}
	if cfg.WordsPerLine <= 0 {
		cfg.WordsPerLine = 8
	}
	if cfg.LinesPerPage <= 0 {
		cfg.LinesPerPage = 20
	}
	if cfg.WordsPerSentence <= 0 {
		cfg.WordsPerSentence = 12
	}
	if cfg.AnnotationRate <= 0 {
		cfg.AnnotationRate = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := cfg.Vocabulary
	if len(vocab) == 0 {
		vocab = oldEnglishWords
	}

	// Content: words separated by single spaces; remember byte spans.
	var b strings.Builder
	wordSpans := make([]document.Span, 0, cfg.Words)
	pos := 0
	for i := 0; i < cfg.Words; i++ {
		w := vocab[rng.Intn(len(vocab))]
		if i > 0 {
			b.WriteString(" ")
			pos++
		}
		wordSpans = append(wordSpans, document.NewSpan(pos, pos+len(w)))
		b.WriteString(w)
		pos += len(w)
	}
	doc := goddag.New("r", b.String())
	content := b.String()

	// Hierarchy 1: physical (pages of lines of words).
	if cfg.Hierarchies >= 1 {
		phys := doc.AddHierarchy("physical")
		lineNo, pageNo := 0, 0
		for lo := 0; lo < len(wordSpans); lo += cfg.WordsPerLine * cfg.LinesPerPage {
			hi := min(lo+cfg.WordsPerLine*cfg.LinesPerPage, len(wordSpans))
			pageNo++
			span := document.NewSpan(wordSpans[lo].Start, wordSpans[hi-1].End)
			page, err := doc.InsertElement(phys, "page", []goddag.Attr{{Name: "n", Value: fmt.Sprint(pageNo)}}, span)
			if err != nil {
				return nil, fmt.Errorf("corpus: page: %w", err)
			}
			_ = page
			for llo := lo; llo < hi; llo += cfg.WordsPerLine {
				lhi := min(llo+cfg.WordsPerLine, hi)
				lineNo++
				lspan := document.NewSpan(wordSpans[llo].Start, wordSpans[lhi-1].End)
				if _, err := doc.InsertElement(phys, "line", []goddag.Attr{{Name: "n", Value: fmt.Sprint(lineNo)}}, lspan); err != nil {
					return nil, fmt.Errorf("corpus: line: %w", err)
				}
			}
		}
	}

	// Hierarchy 2: words and sentences.
	if cfg.Hierarchies >= 2 {
		words := doc.AddHierarchy("words")
		for lo := 0; lo < len(wordSpans); lo += cfg.WordsPerSentence {
			hi := min(lo+cfg.WordsPerSentence, len(wordSpans))
			sspan := document.NewSpan(wordSpans[lo].Start, wordSpans[hi-1].End)
			if _, err := doc.InsertElement(words, "s", nil, sspan); err != nil {
				return nil, fmt.Errorf("corpus: sentence: %w", err)
			}
		}
		for i, ws := range wordSpans {
			attrs := []goddag.Attr{{Name: "n", Value: fmt.Sprint(i + 1)}}
			if _, err := doc.InsertElement(words, "w", attrs, ws); err != nil {
				return nil, fmt.Errorf("corpus: word: %w", err)
			}
		}
	}

	// Hierarchies 3..n: annotation layers with controlled overlap.
	for hi := 3; hi <= cfg.Hierarchies; hi++ {
		layer := annotationTags[(hi-3)%len(annotationTags)]
		name := layer.hier
		if hi-3 >= len(annotationTags) {
			name = fmt.Sprintf("%s%d", layer.hier, (hi-3)/len(annotationTags)+1)
		}
		h := doc.AddHierarchy(name)
		n := int(float64(cfg.Words) * cfg.AnnotationRate / 100)
		if n < 1 {
			n = 1
		}
		lastEnd := 0
		// Place annotations left to right to keep the layer conflict-free
		// within itself while overlapping other hierarchies.
		for k := 0; k < n; k++ {
			wi := rng.Intn(len(wordSpans))
			ws := wordSpans[wi]
			var span document.Span
			if rng.Float64() < cfg.OverlapDensity {
				// Deliberately cross word boundaries: start inside this
				// word, end inside one of the next two words. Cut points
				// are drawn from the words' interior rune boundaries, so
				// byte spans never split a multibyte character.
				endWord := min(wi+1+rng.Intn(2), len(wordSpans)-1)
				startOff := innerCut(content, ws, rng, ws.Start)
				endSpan := wordSpans[endWord]
				endOff := innerCut(content, endSpan, rng, endSpan.End)
				span = document.NewSpan(startOff, endOff)
			} else {
				// Nest cleanly inside one word.
				span = ws
			}
			if span.Start < lastEnd {
				continue // keep the layer itself conflict-free
			}
			if span.End <= span.Start {
				continue
			}
			if _, err := doc.InsertElement(h, layer.tag, nil, span); err != nil {
				return nil, fmt.Errorf("corpus: %s: %w", layer.tag, err)
			}
			lastEnd = span.End
		}
	}
	return doc, nil
}

// innerCut picks a uniformly random rune boundary strictly inside the
// word span ws (byte offsets). Single-rune words have no interior
// boundary; fallback is returned instead (the word's start for span
// starts — keeping the annotation anchored in its start word — and its
// end for span ends).
func innerCut(content string, ws document.Span, rng *rand.Rand, fallback int) int {
	var cuts []int
	for i := ws.Start; i < ws.End; {
		_, size := utf8.DecodeRuneInString(content[i:ws.End])
		i += size
		if i < ws.End {
			cuts = append(cuts, i)
		}
	}
	if len(cuts) == 0 {
		return fallback
	}
	return cuts[rng.Intn(len(cuts))]
}

// GenerateSources builds a synthetic manuscript and returns it as a
// distributed document (one XML document per hierarchy), the input format
// of the SACX parser — used by the parsing benchmarks.
func GenerateSources(cfg Config) ([]sacx.Source, error) {
	doc, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	var out []sacx.Source
	for _, h := range doc.HierarchyNames() {
		data, err := sacx.Split(doc, h)
		if err != nil {
			return nil, err
		}
		out = append(out, sacx.Source{Hierarchy: h, Data: data})
	}
	return out, nil
}

// CountOverlaps reports how many element pairs properly overlap in doc —
// the workload's "conflict density" statistic reported by cxbench.
func CountOverlaps(doc *goddag.Document) int {
	els := doc.Elements()
	n := 0
	for i := 0; i < len(els); i++ {
		for j := i + 1; j < len(els); j++ {
			if els[j].Span().Start >= els[i].Span().End {
				break // sorted by start; no further j can overlap i
			}
			if els[i].Span().Overlaps(els[j].Span()) {
				n++
			}
		}
	}
	return n
}
