package corpus

import (
	"testing"

	"repro/internal/sacx"
	"repro/internal/xpath"
)

func TestFig1Document(t *testing.T) {
	doc, err := Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Check(); err != nil {
		t.Fatal(err)
	}
	st := doc.Stats()
	if st.Hierarchies != 4 || st.Elements != 10 {
		t.Errorf("stats = %+v", st)
	}
	if doc.Content().String() != "swa hwæt swa he us sægde" {
		t.Errorf("content = %q", doc.Content().String())
	}
	// The defining property of Figure 1: overlap exists.
	if CountOverlaps(doc) == 0 {
		t.Error("Figure 1 must contain overlapping markup")
	}
}

func TestGenerateBasic(t *testing.T) {
	doc, err := Generate(DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Check(); err != nil {
		t.Fatal(err)
	}
	st := doc.Stats()
	if st.Hierarchies != 4 {
		t.Errorf("hierarchies = %d", st.Hierarchies)
	}
	// 200 words -> at least 200 w elements + sentences + lines + pages.
	if st.Elements < 200 {
		t.Errorf("elements = %d", st.Elements)
	}
	ws, err := xpath.Select(doc, "//w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 200 {
		t.Errorf("w count = %d", len(ws))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if a.Content().String() != b.Content().String() {
		t.Error("content not deterministic")
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg1, cfg2 := DefaultConfig(100), DefaultConfig(100)
	cfg2.Seed = 99
	a, _ := Generate(cfg1)
	b, _ := Generate(cfg2)
	if a.Content().String() == b.Content().String() {
		t.Error("different seeds should give different content")
	}
}

func TestOverlapDensityEffect(t *testing.T) {
	lo := DefaultConfig(500)
	lo.OverlapDensity = 0
	hi := DefaultConfig(500)
	hi.OverlapDensity = 1
	dlo, err := Generate(lo)
	if err != nil {
		t.Fatal(err)
	}
	dhi, err := Generate(hi)
	if err != nil {
		t.Fatal(err)
	}
	nlo, nhi := CountOverlaps(dlo), CountOverlaps(dhi)
	if nhi <= nlo {
		t.Errorf("overlaps at density 1 (%d) should exceed density 0 (%d)", nhi, nlo)
	}
}

func TestGenerateHierarchyCount(t *testing.T) {
	for _, h := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig(100)
		cfg.Hierarchies = h
		doc, err := Generate(cfg)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if got := len(doc.HierarchyNames()); got != h {
			t.Errorf("h=%d: got %d hierarchies (%v)", h, got, doc.HierarchyNames())
		}
		if err := doc.Check(); err != nil {
			t.Errorf("h=%d: %v", h, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Words: 0, Hierarchies: 2}); err == nil {
		t.Error("zero words should error")
	}
	if _, err := Generate(Config{Words: 10, Hierarchies: 0}); err == nil {
		t.Error("zero hierarchies should error")
	}
}

func TestGenerateSources(t *testing.T) {
	cfg := DefaultConfig(100)
	srcs, err := GenerateSources(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 4 {
		t.Fatalf("sources = %d", len(srcs))
	}
	// The distributed documents re-parse to an equivalent GODDAG.
	doc, err := sacx.Build(srcs)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := Generate(cfg)
	if doc.Stats().Elements != orig.Stats().Elements {
		t.Errorf("elements: %d vs %d", doc.Stats().Elements, orig.Stats().Elements)
	}
	if doc.Content().String() != orig.Content().String() {
		t.Error("content changed through split/build")
	}
}

func TestGeneratedOverlapQueriesWork(t *testing.T) {
	cfg := DefaultConfig(300)
	cfg.OverlapDensity = 0.9
	doc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := xpath.Select(doc, "//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		t.Error("high overlap density should produce dmg/w overlaps")
	}
}
