package goddag

import (
	"strings"
	"testing"

	"repro/internal/document"
)

// fig1Doc builds the paper's Figure 1 scenario: an Old English manuscript
// fragment encoded with four concurrent hierarchies — physical layout
// (line), words (w), restorations (res), damage (dmg) — whose markup
// mutually overlaps.
//
// Content (rune offsets):
//
//	"swa hwæt swa he us sægde"
//	 0123456789...
//
// physical: line[0,12) line[12,24)
// words:    w[0,3) w[4,8) w[9,12) w[13,15) w[16,18) w[19,24)
// restore:  res[10,17)   -- overlaps w[9,12), line boundary, w[16,18)
// damage:   dmg[6,11)    -- overlaps w[4,8), w[9,12), res[10,17)
// fig1Content is the shared Figure 1 text; æ is 2 bytes in UTF-8, so
// byte offsets past each æ run one ahead of the rune offsets.
const fig1Content = "swa hwæt swa he us sægde"

// fig1Byte converts a rune offset in fig1Content to the byte offset the
// document's spans use.
func fig1Byte(runeOff int) int {
	return len(string([]rune(fig1Content)[:runeOff]))
}

func fig1Doc(t *testing.T) *Document {
	t.Helper()
	d := New("r", fig1Content)
	phys := d.AddHierarchy("physical")
	words := d.AddHierarchy("words")
	rest := d.AddHierarchy("restoration")
	dmg := d.AddHierarchy("damage")

	// Spans below are written as the paper's rune offsets and converted
	// to byte spans at insertion.
	ins := func(h *Hierarchy, tag string, lo, hi int, attrs ...Attr) *Element {
		t.Helper()
		e, err := d.InsertElement(h, tag, attrs, document.NewSpan(fig1Byte(lo), fig1Byte(hi)))
		if err != nil {
			t.Fatalf("insert %s:%s[%d,%d): %v", h.Name(), tag, lo, hi, err)
		}
		return e
	}
	ins(phys, "line", 0, 12, Attr{Name: "n", Value: "1"})
	ins(phys, "line", 12, 24, Attr{Name: "n", Value: "2"})
	for _, s := range [][2]int{{0, 3}, {4, 8}, {9, 12}, {13, 15}, {16, 18}, {19, 24}} {
		ins(words, "w", s[0], s[1])
	}
	ins(rest, "res", 10, 17)
	ins(dmg, "dmg", 6, 11)
	if err := d.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return d
}

func TestNewDocument(t *testing.T) {
	d := New("r", "hello")
	if d.RootTag() != "r" {
		t.Errorf("RootTag = %q", d.RootTag())
	}
	if d.NumLeaves() != 1 {
		t.Errorf("NumLeaves = %d", d.NumLeaves())
	}
	if d.Root().Text() != "hello" {
		t.Errorf("root text = %q", d.Root().Text())
	}
	if d.Root().Kind() != KindRoot {
		t.Error("root kind")
	}
	if d.Root().Span() != document.NewSpan(0, 5) {
		t.Errorf("root span = %v", d.Root().Span())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
}

func TestAddHierarchy(t *testing.T) {
	d := New("r", "x")
	h1 := d.AddHierarchy("a")
	h2 := d.AddHierarchy("b")
	if d.AddHierarchy("a") != h1 {
		t.Error("AddHierarchy not idempotent")
	}
	if d.Hierarchy("b") != h2 {
		t.Error("Hierarchy lookup")
	}
	if d.Hierarchy("zzz") != nil {
		t.Error("missing hierarchy should be nil")
	}
	names := d.HierarchyNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestInsertSimpleElement(t *testing.T) {
	d := New("r", "hello world")
	h := d.AddHierarchy("h")
	e, err := d.InsertElement(h, "w", []Attr{{Name: "id", Value: "1"}}, document.NewSpan(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "w" || e.Text() != "hello" {
		t.Errorf("element %v text %q", e, e.Text())
	}
	if v, ok := e.Attr("id"); !ok || v != "1" {
		t.Errorf("attr id = %q,%v", v, ok)
	}
	if d.NumLeaves() != 2 {
		t.Errorf("NumLeaves = %d, want 2", d.NumLeaves())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
	if h.Len() != 1 {
		t.Errorf("hierarchy len = %d", h.Len())
	}
}

func TestInsertNesting(t *testing.T) {
	d := New("r", "abcdefghij")
	h := d.AddHierarchy("h")
	outer, _ := d.InsertElement(h, "s", nil, document.NewSpan(0, 10))
	inner, err := d.InsertElement(h, "w", nil, document.NewSpan(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if inner.ParentElement() != outer {
		t.Error("inner's parent should be outer")
	}
	if len(outer.ChildElements()) != 1 {
		t.Errorf("outer children = %d", len(outer.ChildElements()))
	}
	// Insert an element *around* inner but inside outer: adoption.
	mid, err := d.InsertElement(h, "phr", nil, document.NewSpan(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if inner.ParentElement() != mid {
		t.Error("inner should be adopted by mid")
	}
	if mid.ParentElement() != outer {
		t.Error("mid's parent should be outer")
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
}

func TestInsertConflictSameHierarchy(t *testing.T) {
	d := New("r", "abcdefghij")
	h := d.AddHierarchy("h")
	if _, err := d.InsertElement(h, "a", nil, document.NewSpan(0, 6)); err != nil {
		t.Fatal(err)
	}
	_, err := d.InsertElement(h, "b", nil, document.NewSpan(3, 9))
	if err == nil {
		t.Fatal("expected conflict error")
	}
	ce, ok := err.(*ConflictError)
	if !ok {
		t.Fatalf("got %T, want *ConflictError", err)
	}
	if ce.Hierarchy != "h" || ce.Tag != "b" {
		t.Errorf("conflict fields: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "overlaps") {
		t.Errorf("Error() = %q", ce.Error())
	}
}

func TestOverlapAcrossHierarchiesAllowed(t *testing.T) {
	d := New("r", "abcdefghij")
	h1 := d.AddHierarchy("h1")
	h2 := d.AddHierarchy("h2")
	if _, err := d.InsertElement(h1, "a", nil, document.NewSpan(0, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertElement(h2, "b", nil, document.NewSpan(3, 9)); err != nil {
		t.Fatalf("cross-hierarchy overlap must be allowed: %v", err)
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
	// The overlapping pair splits content into leaves at 0,3,6,9.
	if d.NumLeaves() != 4 {
		t.Errorf("NumLeaves = %d, want 4", d.NumLeaves())
	}
}

func TestInsertEqualSpans(t *testing.T) {
	d := New("r", "abcdef")
	h := d.AddHierarchy("h")
	first, _ := d.InsertElement(h, "a", nil, document.NewSpan(1, 4))
	second, err := d.InsertElement(h, "b", nil, document.NewSpan(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	// The newer element wraps the older one.
	if first.ParentElement() != second {
		t.Errorf("first's parent = %v, want second", first.Parent())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
}

func TestInsertEmptyElement(t *testing.T) {
	d := New("r", "abcdef")
	h := d.AddHierarchy("h")
	line, _ := d.InsertElement(h, "line", nil, document.NewSpan(0, 6))
	ms, err := d.InsertElement(h, "pb", nil, document.NewSpan(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !ms.IsEmpty() {
		t.Error("milestone should be empty")
	}
	if ms.ParentElement() != line {
		t.Errorf("milestone parent = %v", ms.Parent())
	}
	// The milestone's position becomes a leaf boundary.
	if d.NumLeaves() != 2 {
		t.Errorf("NumLeaves = %d, want 2", d.NumLeaves())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
	// Children include the milestone between the two leaves.
	kids := line.Children()
	if len(kids) != 3 {
		t.Fatalf("children = %d, want 3 (leaf, milestone, leaf)", len(kids))
	}
	if kids[1].(*Element) != ms {
		t.Errorf("middle child = %v", kids[1])
	}
}

func TestInsertErrors(t *testing.T) {
	d := New("r", "abc")
	h := d.AddHierarchy("h")
	other := New("r", "zzz").AddHierarchy("x")
	if _, err := d.InsertElement(other, "a", nil, document.NewSpan(0, 1)); err == nil {
		t.Error("foreign hierarchy should error")
	}
	if _, err := d.InsertElement(h, "a", nil, document.NewSpan(0, 9)); err == nil {
		t.Error("out-of-range span should error")
	}
	if _, err := d.InsertElement(h, "", nil, document.NewSpan(0, 1)); err == nil {
		t.Error("empty tag should error")
	}
	if _, err := d.InsertElement(nil, "a", nil, document.NewSpan(0, 1)); err == nil {
		t.Error("nil hierarchy should error")
	}
}

func TestRemoveElement(t *testing.T) {
	d := New("r", "abcdefghij")
	h := d.AddHierarchy("h")
	outer, _ := d.InsertElement(h, "s", nil, document.NewSpan(0, 10))
	mid, _ := d.InsertElement(h, "phr", nil, document.NewSpan(1, 7))
	inner, _ := d.InsertElement(h, "w", nil, document.NewSpan(2, 5))
	if err := d.RemoveElement(mid); err != nil {
		t.Fatal(err)
	}
	if inner.ParentElement() != outer {
		t.Error("inner should be re-adopted by outer")
	}
	if h.Len() != 2 {
		t.Errorf("len = %d, want 2", h.Len())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
	// Removing a foreign element errors.
	d2 := New("r", "xy")
	h2 := d2.AddHierarchy("h")
	e2, _ := d2.InsertElement(h2, "a", nil, document.NewSpan(0, 1))
	if err := d.RemoveElement(e2); err == nil {
		t.Error("foreign element should error")
	}
	if err := d.RemoveElement(nil); err == nil {
		t.Error("nil element should error")
	}
}

func TestCompact(t *testing.T) {
	d := New("r", "abcdefghij")
	h := d.AddHierarchy("h")
	e, _ := d.InsertElement(h, "a", nil, document.NewSpan(2, 8))
	before := d.NumLeaves()
	if before != 3 {
		t.Fatalf("leaves = %d", before)
	}
	if err := d.RemoveElement(e); err != nil {
		t.Fatal(err)
	}
	removed := d.Compact()
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if d.NumLeaves() != 1 {
		t.Errorf("leaves after compact = %d, want 1", d.NumLeaves())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
}

func TestFig1Structure(t *testing.T) {
	d := fig1Doc(t)
	st := d.Stats()
	if st.Hierarchies != 4 {
		t.Errorf("hierarchies = %d", st.Hierarchies)
	}
	if st.Elements != 10 {
		t.Errorf("elements = %d, want 10", st.Elements)
	}
	// Boundaries at rune offsets 0,3,4,6,8,9,10,11,12,13,15,16,17,18,19,
	// expressed in the spans' byte coordinates.
	wantRunes := []int{0, 3, 4, 6, 8, 9, 10, 11, 12, 13, 15, 16, 17, 18, 19}
	wantBoundaries := make([]int, len(wantRunes))
	for i, r := range wantRunes {
		wantBoundaries[i] = fig1Byte(r)
	}
	got := d.Partition().Boundaries()
	if len(got) != len(wantBoundaries) {
		t.Fatalf("boundaries %v, want %v", got, wantBoundaries)
	}
	for i := range got {
		if got[i] != wantBoundaries[i] {
			t.Fatalf("boundaries %v, want %v", got, wantBoundaries)
		}
	}
}

func TestFig1LeafParents(t *testing.T) {
	d := fig1Doc(t)
	// Leaf containing offset 10 ("æ" region inside "swa" word 3):
	// parents should be: line1 (physical), w[9,12) (words),
	// res[10,17) (restoration), dmg[6,11) (damage).
	l := d.LeafAt(fig1Byte(10))
	parents := l.Parents()
	if len(parents) != 4 {
		t.Fatalf("parents = %d, want 4", len(parents))
	}
	wantTags := []string{"line", "w", "res", "dmg"}
	for i, p := range parents {
		e, ok := p.(*Element)
		if !ok {
			t.Fatalf("parent %d is %T, want *Element", i, p)
		}
		if e.Name() != wantTags[i] {
			t.Errorf("parent %d = %s, want %s", i, e.Name(), wantTags[i])
		}
	}
	// A leaf outside all res/dmg markup has the root as those parents.
	l0 := d.LeafAt(0)
	parents0 := l0.Parents()
	if _, ok := parents0[2].(*Root); !ok {
		t.Errorf("restoration parent of leaf 0 = %T, want *Root", parents0[2])
	}
	if _, ok := parents0[3].(*Root); !ok {
		t.Errorf("damage parent of leaf 0 = %T, want *Root", parents0[3])
	}
}

func TestFig1Overlaps(t *testing.T) {
	d := fig1Doc(t)
	res := d.Hierarchy("restoration").Elements()[0]
	over := d.ElementsOverlapping(res.Span())
	// res[10,17) properly overlaps: line[0,12), line[12,24)? [12,24) vs
	// [10,17): intersect, neither contains -> yes. w[9,12): yes.
	// w[16,18): yes. dmg[6,11): yes. w[13,15) is contained -> no.
	var tags []string
	for _, e := range over {
		tags = append(tags, e.Name())
	}
	want := map[string]int{"line": 2, "w": 2, "dmg": 1}
	gotCount := map[string]int{}
	for _, tg := range tags {
		gotCount[tg]++
	}
	for k, v := range want {
		if gotCount[k] != v {
			t.Errorf("overlapping %s count = %d, want %d (all: %v)", k, gotCount[k], v, tags)
		}
	}
	if len(over) != 5 {
		t.Errorf("total overlapping = %d, want 5: %v", len(over), tags)
	}
}

func TestChildrenInterleaving(t *testing.T) {
	d := New("r", "one two three")
	h := d.AddHierarchy("h")
	s, _ := d.InsertElement(h, "s", nil, document.NewSpan(0, 13))
	d.InsertElement(h, "w", nil, document.NewSpan(4, 7)) // "two"
	kids := s.Children()
	// leaf "one " , <w>, leaf " three"? Note leaf split at 4 and 7:
	// [0,4) "one ", w[4,7), [7,13) " three"
	if len(kids) != 3 {
		t.Fatalf("children = %d, want 3", len(kids))
	}
	if l, ok := kids[0].(Leaf); !ok || l.Text() != "one " {
		t.Errorf("kid 0 = %v", kids[0])
	}
	if e, ok := kids[1].(*Element); !ok || e.Name() != "w" {
		t.Errorf("kid 1 = %v", kids[1])
	}
	if l, ok := kids[2].(Leaf); !ok || l.Text() != " three" {
		t.Errorf("kid 2 = %v", kids[2])
	}
}

func TestRootChildren(t *testing.T) {
	d := New("r", "abcdef")
	h := d.AddHierarchy("h")
	d.InsertElement(h, "w", nil, document.NewSpan(2, 4))
	kids := d.Root().Children(h)
	if len(kids) != 3 {
		t.Fatalf("root children = %d, want 3", len(kids))
	}
	if d.Root().Name() != "r" {
		t.Errorf("root name = %q", d.Root().Name())
	}
}

func TestLeafNavigation(t *testing.T) {
	d := New("r", "abcdef")
	h := d.AddHierarchy("h")
	d.InsertElement(h, "w", nil, document.NewSpan(2, 4))
	l0 := d.Leaf(0)
	l1, ok := l0.Next()
	if !ok || l1.Text() != "cd" {
		t.Errorf("Next = %v %q", ok, l1.Text())
	}
	back, ok := l1.Prev()
	if !ok || back.Index() != 0 {
		t.Errorf("Prev = %v %d", ok, back.Index())
	}
	if _, ok := l0.Prev(); ok {
		t.Error("first leaf has no Prev")
	}
	last := d.Leaf(d.NumLeaves() - 1)
	if _, ok := last.Next(); ok {
		t.Error("last leaf has no Next")
	}
	if l0.Kind() != KindLeaf {
		t.Error("leaf kind")
	}
}

func TestElementLeafRange(t *testing.T) {
	d := fig1Doc(t)
	w := d.Hierarchy("words").ElementsNamed("w")[1] // w[4,8)
	first, last := w.LeafRange()
	leaves := w.Leaves()
	if len(leaves) != last-first {
		t.Errorf("Leaves len %d, range %d", len(leaves), last-first)
	}
	text := ""
	for _, l := range leaves {
		text += l.Text()
	}
	if text != w.Text() {
		t.Errorf("leaf concat %q != element text %q", text, w.Text())
	}
	fl, ok := w.FirstLeaf()
	if !ok || fl.Span().Start != fig1Byte(4) {
		t.Errorf("FirstLeaf %v %v", fl, ok)
	}
	ll, ok := w.LastLeaf()
	if !ok || ll.Span().End != fig1Byte(8) {
		t.Errorf("LastLeaf %v %v", ll, ok)
	}
}

func TestAttrOps(t *testing.T) {
	d := New("r", "ab")
	h := d.AddHierarchy("h")
	e, _ := d.InsertElement(h, "w", []Attr{{Name: "a", Value: "1"}}, document.NewSpan(0, 2))
	e.SetAttr("b", "2")
	e.SetAttr("a", "9")
	if v, _ := e.Attr("a"); v != "9" {
		t.Errorf("a = %q", v)
	}
	if len(e.Attrs()) != 2 {
		t.Errorf("attrs = %v", e.Attrs())
	}
	if !e.RemoveAttr("a") {
		t.Error("RemoveAttr a")
	}
	if e.RemoveAttr("zzz") {
		t.Error("RemoveAttr zzz should fail")
	}
	if _, ok := e.Attr("a"); ok {
		t.Error("a should be gone")
	}
}

func TestCompareNodes(t *testing.T) {
	d := fig1Doc(t)
	root := d.Root()
	els := d.Elements()
	if CompareNodes(root, els[0]) != -1 || CompareNodes(els[0], root) != 1 {
		t.Error("root must come first")
	}
	if CompareNodes(root, root) != 0 {
		t.Error("root == root")
	}
	// Document order of elements is non-decreasing by span start.
	for i := 1; i < len(els); i++ {
		if CompareNodes(els[i-1], els[i]) > 0 {
			t.Errorf("elements out of order at %d: %v then %v", i, els[i-1], els[i])
		}
	}
	// Containing element precedes its leaves.
	line := d.Hierarchy("physical").Elements()[0]
	fl, _ := line.FirstLeaf()
	if CompareNodes(line, fl) != -1 {
		t.Error("element should precede its first leaf")
	}
	// Leaves in index order.
	if CompareNodes(d.Leaf(0), d.Leaf(1)) != -1 {
		t.Error("leaf order")
	}
	if CompareNodes(d.Leaf(1), d.Leaf(1)) != 0 {
		t.Error("leaf self-compare")
	}
}

func TestNodesEqualAndID(t *testing.T) {
	d := New("r", "abc")
	h := d.AddHierarchy("h")
	e, _ := d.InsertElement(h, "w", nil, document.NewSpan(0, 2))
	if !NodesEqual(d.Leaf(0), d.Leaf(0)) {
		t.Error("same leaf should be equal")
	}
	if NodesEqual(d.Leaf(0), d.Leaf(1)) {
		t.Error("different leaves")
	}
	if NodesEqual(d.Leaf(0), e) {
		t.Error("leaf != element")
	}
	if !NodesEqual(e, e) {
		t.Error("same element")
	}
	if NodesEqual(nil, e) {
		t.Error("nil != element")
	}
	if NodeID(d.Leaf(0)) != NodeID(d.Leaf(0)) {
		t.Error("leaf IDs should match")
	}
	if NodeID(d.Leaf(0)) == NodeID(d.Leaf(1)) {
		t.Error("distinct leaf IDs")
	}
}

func TestClone(t *testing.T) {
	d := fig1Doc(t)
	c := d.Clone()
	if err := c.Check(); err != nil {
		t.Fatalf("clone check: %v", err)
	}
	if c.Stats() != d.Stats() {
		t.Errorf("clone stats %+v != %+v", c.Stats(), d.Stats())
	}
	// Mutating the clone must not affect the original.
	h := c.Hierarchy("words")
	c.RemoveElement(h.Elements()[0])
	if d.Hierarchy("words").Len() != 6 {
		t.Error("clone mutation leaked")
	}
}

func TestInsertText(t *testing.T) {
	d := New("r", "hello world")
	h := d.AddHierarchy("h")
	w1, _ := d.InsertElement(h, "w", nil, document.NewSpan(0, 5))
	w2, _ := d.InsertElement(h, "w", nil, document.NewSpan(6, 11))
	if err := d.InsertText(5, "!!"); err != nil {
		t.Fatal(err)
	}
	if d.Content().String() != "hello!! world" {
		t.Errorf("content = %q", d.Content().String())
	}
	// Insertion binds left: w1 ended at 5 and absorbs the new text.
	if w1.Span() != document.NewSpan(0, 7) {
		t.Errorf("w1 span = %v", w1.Span())
	}
	if w1.Text() != "hello!!" {
		t.Errorf("w1 text = %q", w1.Text())
	}
	// w2 started at 6: shifts right.
	if w2.Span() != document.NewSpan(8, 13) {
		t.Errorf("w2 span = %v", w2.Span())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
	if w2.Text() != "world" {
		t.Errorf("w2 text = %q", w2.Text())
	}
}

func TestInsertTextInside(t *testing.T) {
	d := New("r", "abcdef")
	h := d.AddHierarchy("h")
	e, _ := d.InsertElement(h, "w", nil, document.NewSpan(1, 5))
	if err := d.InsertText(3, "XY"); err != nil {
		t.Fatal(err)
	}
	if e.Span() != document.NewSpan(1, 7) {
		t.Errorf("span = %v", e.Span())
	}
	if e.Text() != "bcXYde" {
		t.Errorf("text = %q", e.Text())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
}

func TestDeleteText(t *testing.T) {
	d := New("r", "hello cruel world")
	h := d.AddHierarchy("h")
	w1, _ := d.InsertElement(h, "w", nil, document.NewSpan(0, 5))
	w2, _ := d.InsertElement(h, "w", nil, document.NewSpan(6, 11))  // cruel
	w3, _ := d.InsertElement(h, "w", nil, document.NewSpan(12, 17)) // world
	if err := d.DeleteText(document.NewSpan(5, 12)); err != nil {
		t.Fatal(err)
	}
	if d.Content().String() != "helloworld" {
		t.Errorf("content = %q", d.Content().String())
	}
	if w1.Span() != document.NewSpan(0, 5) {
		t.Errorf("w1 = %v", w1.Span())
	}
	if !w2.IsEmpty() {
		t.Errorf("w2 should be an empty milestone, span %v", w2.Span())
	}
	if w3.Span() != document.NewSpan(5, 10) || w3.Text() != "world" {
		t.Errorf("w3 = %v %q", w3.Span(), w3.Text())
	}
	if err := d.Check(); err != nil {
		t.Error(err)
	}
}

func TestTextEditErrors(t *testing.T) {
	d := New("r", "abc")
	if err := d.InsertText(5, "x"); err == nil {
		t.Error("insert out of range should error")
	}
	if err := d.DeleteText(document.NewSpan(1, 9)); err == nil {
		t.Error("delete out of range should error")
	}
	if err := d.InsertText(1, ""); err != nil {
		t.Errorf("empty insert: %v", err)
	}
	if err := d.DeleteText(document.NewSpan(1, 1)); err != nil {
		t.Errorf("empty delete: %v", err)
	}
}

func TestCoveringElements(t *testing.T) {
	d := fig1Doc(t)
	phys := d.Hierarchy("physical")
	chain := phys.CoveringElements(document.NewSpan(4, 8))
	if len(chain) != 1 || chain[0].Name() != "line" {
		t.Errorf("chain = %v", chain)
	}
	if e := phys.innermostCovering(document.NewSpan(4, 8)); e == nil || e.Name() != "line" {
		t.Errorf("innermost = %v", e)
	}
	// Span crossing the line boundary is covered by nothing in physical.
	if e := phys.innermostCovering(document.NewSpan(10, 14)); e != nil {
		t.Errorf("crossing span should have no cover, got %v", e)
	}
}

func TestElementsNamed(t *testing.T) {
	d := fig1Doc(t)
	ws := d.ElementsNamed("w")
	if len(ws) != 6 {
		t.Errorf("w count = %d", len(ws))
	}
	if len(d.ElementsNamed("nothing")) != 0 {
		t.Error("nothing should be empty")
	}
	hws := d.Hierarchy("words").ElementsNamed("w")
	if len(hws) != 6 {
		t.Errorf("hierarchy w count = %d", len(hws))
	}
}

func TestDumpAndDOT(t *testing.T) {
	d := fig1Doc(t)
	dump := Dump(d)
	for _, want := range []string{"content:", "leaves (", "hierarchy physical", "hierarchy words", "<line>", "<res>", "<dmg>"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q", want)
		}
	}
	dot := DOT(d)
	for _, want := range []string{"digraph goddag", "root ->", "leaf0", "subgraph cluster_physical", "subgraph cluster_damage"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	table := LeafTable(d)
	if len(strings.Split(strings.TrimSpace(table), "\n")) != d.NumLeaves() {
		t.Error("LeafTable line count mismatch")
	}
}

func TestInventory(t *testing.T) {
	d := fig1Doc(t)
	inv := Inventory(d)
	want := []string{"damage:dmg x1", "physical:line x2", "restoration:res x1", "words:w x6"}
	if len(inv) != len(want) {
		t.Fatalf("inventory = %v", inv)
	}
	for i := range want {
		if inv[i] != want[i] {
			t.Errorf("inventory[%d] = %q, want %q", i, inv[i], want[i])
		}
	}
}

func TestKindString(t *testing.T) {
	if KindRoot.String() != "root" || KindElement.String() != "element" || KindLeaf.String() != "leaf" {
		t.Error("kind names")
	}
	if !strings.Contains(NodeKind(9).String(), "9") {
		t.Error("unknown kind")
	}
}

func TestLeafPanics(t *testing.T) {
	d := New("r", "ab")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Leaf(5)
}

func TestElementsIntersecting(t *testing.T) {
	d := fig1Doc(t)
	// Span [0,1) intersects line1 and w[0,3) only.
	got := d.ElementsIntersecting(document.NewSpan(0, 1))
	if len(got) != 2 {
		t.Errorf("intersecting = %v", got)
	}
}
