package goddag

import (
	"testing"

	"repro/internal/document"
)

func buildWarmDoc(t *testing.T) *Document {
	t.Helper()
	d := New("r", "swa hwaet swa he us saegde")
	phys := d.AddHierarchy("physical")
	words := d.AddHierarchy("words")
	if _, err := d.InsertElement(phys, "line", nil, document.NewSpan(0, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertElement(words, "w", []Attr{{Name: "n", Value: "1"}}, document.NewSpan(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertElement(words, "w", nil, document.NewSpan(4, 9)); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWarmBuildsAllIndexes(t *testing.T) {
	d := buildWarmDoc(t)
	d.Warm()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.elemCache == nil || d.elemCacheVer != d.version {
		t.Error("element cache not warm")
	}
	if d.spanIdx == nil || d.spanIdxVer != d.version {
		t.Error("span index not warm")
	}
	if d.ordIdx == nil || d.ordVer != d.version {
		t.Error("ordinals not warm")
	}
	if d.nameIdx == nil || d.nameIdxVer != d.version {
		t.Error("name index not warm")
	}
}

func TestWarmInvalidatedByMutation(t *testing.T) {
	// With incremental repair (the default), an element insertion keeps
	// the warm indexes live and already reflecting the new element.
	d := buildWarmDoc(t)
	d.Warm()
	if _, err := d.InsertElement(d.Hierarchy("words"), "w", nil, document.NewSpan(10, 12)); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	live := d.ordVer == d.version && d.elemCacheVer == d.version
	d.mu.Unlock()
	if !live {
		t.Fatal("element insertion did not repair warm indexes in place")
	}
	if got := len(d.ElementsNamed("w")); got != 3 {
		t.Fatalf("ElementsNamed(w) after repaired insert = %d, want 3", got)
	}

	// With repair disabled, the same mutation invalidates and the next
	// Warm rebuilds from scratch.
	d2 := buildWarmDoc(t)
	d2.SetIncrementalRepair(false)
	d2.Warm()
	if _, err := d2.InsertElement(d2.Hierarchy("words"), "w", nil, document.NewSpan(10, 12)); err != nil {
		t.Fatal(err)
	}
	d2.mu.Lock()
	stale := d2.ordVer != d2.version
	d2.mu.Unlock()
	if !stale {
		t.Fatal("mutation did not invalidate warm indexes with repair disabled")
	}
	d2.Warm() // re-warm must observe the new element
	if got := len(d2.ElementsNamed("w")); got != 3 {
		t.Fatalf("ElementsNamed(w) after re-warm = %d, want 3", got)
	}

	// A text edit falls back to invalidation even with repair enabled.
	if err := d.InsertText(0, "x "); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	stale = d.ordVer != d.version
	d.mu.Unlock()
	if !stale {
		t.Fatal("text edit did not invalidate warm indexes")
	}
}

func TestFootprintScales(t *testing.T) {
	d := buildWarmDoc(t)
	d.Warm()
	f := d.Footprint()
	if f < int64(d.Content().Len()) {
		t.Fatalf("footprint %d smaller than content %d", f, d.Content().Len())
	}
	// Adding elements must grow the estimate.
	if _, err := d.InsertElement(d.Hierarchy("words"), "w", []Attr{{Name: "x", Value: "y"}}, document.NewSpan(10, 12)); err != nil {
		t.Fatal(err)
	}
	if f2 := d.Footprint(); f2 <= f {
		t.Fatalf("footprint did not grow: %d -> %d", f, f2)
	}
}
