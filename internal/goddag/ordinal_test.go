package goddag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

// randomDocWithMilestones is randomDoc plus a hierarchy of empty elements
// (milestones) parked at random positions, including element borders —
// the cases the ordinal merge and the empty-element list must order
// exactly like CompareNodes.
func randomDocWithMilestones(seed int64, contentLen, hierarchies, perHier int) *Document {
	d := randomDoc(seed, contentLen, hierarchies, perHier)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	marks := d.AddHierarchy("marks")
	for i := 0; i < 6; i++ {
		pos := rng.Intn(contentLen + 1)
		if _, err := d.InsertElement(marks, "m", nil, document.NewSpan(pos, pos)); err != nil {
			panic(err)
		}
	}
	// One milestone exactly at an element border, one at 0, one at the end.
	if els := d.Elements(); len(els) > 0 {
		for _, pos := range []int{els[0].Span().End, 0, contentLen} {
			if _, err := d.InsertElement(marks, "m", nil, document.NewSpan(pos, pos)); err != nil {
				panic(err)
			}
		}
	}
	return d
}

func allNodes(d *Document) []Node {
	var nodes []Node
	nodes = append(nodes, d.Root())
	for _, e := range d.Elements() {
		nodes = append(nodes, e)
	}
	for _, l := range d.Leaves() {
		nodes = append(nodes, l)
	}
	return nodes
}

// TestOrdinalOrderMatchesCompareNodes: over every node pair of generated
// documents, the ordinal comparison agrees with the CompareNodes
// reference, ordinals are dense and distinct, and Node(Of(n)) round-trips.
func TestOrdinalOrderMatchesCompareNodes(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDocWithMilestones(seed, 120, 3, 10)
		ord := d.Ordinals()
		nodes := allNodes(d)
		if ord.Len() != len(nodes) {
			t.Logf("seed %d: ordinal space %d != node count %d", seed, ord.Len(), len(nodes))
			return false
		}
		used := make([]bool, ord.Len())
		for _, n := range nodes {
			o := ord.Of(n)
			if o < 0 || o >= ord.Len() || used[o] {
				t.Logf("seed %d: ordinal %d of %v out of range or duplicated", seed, o, n)
				return false
			}
			used[o] = true
			if !NodesEqual(ord.Node(o), n) {
				t.Logf("seed %d: ordinal %d does not round-trip", seed, o)
				return false
			}
		}
		for _, a := range nodes {
			for _, b := range nodes {
				c := CompareNodes(a, b)
				oa, ob := ord.Of(a), ord.Of(b)
				switch {
				case c < 0 && !(oa < ob), c > 0 && !(oa > ob), c == 0 && oa != ob:
					t.Logf("seed %d: CompareNodes(%v,%v)=%d but ordinals %d,%d", seed, a, b, c, oa, ob)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSubtreeRangesMatchWalk: the pre-order interval slice equals the
// recursive child walk for every element, and InSubtree agrees with the
// parent-chain ancestor test.
func TestSubtreeRangesMatchWalk(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDocWithMilestones(seed, 150, 3, 12)
		ord := d.Ordinals()
		var walkSubtree func(e *Element) []*Element
		walkSubtree = func(e *Element) []*Element {
			var out []*Element
			for _, c := range e.ChildElements() {
				out = append(out, c)
				out = append(out, walkSubtree(c)...)
			}
			return out
		}
		isAncestor := func(e, c *Element) bool {
			for p := c.ParentElement(); p != nil; p = p.ParentElement() {
				if p == e {
					return true
				}
			}
			return false
		}
		for _, e := range d.Elements() {
			want := walkSubtree(e)
			got := ord.Subtree(e)
			if len(got) != len(want) {
				t.Logf("seed %d: subtree of %v: got %d want %d", seed, e, len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d: subtree of %v differs at %d", seed, e, i)
					return false
				}
			}
			for _, c := range d.Elements() {
				if ord.InSubtree(c, e) != isAncestor(e, c) {
					t.Logf("seed %d: InSubtree(%v,%v) mismatch", seed, c, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestEmptyElementsList: EmptyElements is exactly the document-ordered
// milestone subset of Elements.
func TestEmptyElementsList(t *testing.T) {
	d := randomDocWithMilestones(7, 100, 2, 8)
	ord := d.Ordinals()
	var want []*Element
	for _, e := range d.Elements() {
		if e.Span().IsEmpty() {
			want = append(want, e)
		}
	}
	got := ord.EmptyElements()
	if len(got) != len(want) {
		t.Fatalf("EmptyElements: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("EmptyElements[%d] differs", i)
		}
	}
}

// TestOrdinalsInvalidation: a structural mutation keeps the numbering
// valid — repaired in place with incremental repair (the default), or
// rebuilt from scratch with repair disabled — and in both modes the
// result covers the new node set in reference order.
func TestOrdinalsInvalidation(t *testing.T) {
	d := randomDoc(3, 80, 2, 6)
	d.SetIncrementalRepair(false)
	ord := d.Ordinals()
	h := d.Hierarchy("a")
	if _, err := d.InsertElement(h, "y", nil, document.NewSpan(0, d.Content().Len())); err != nil {
		t.Fatal(err)
	}
	ord2 := d.Ordinals()
	if ord2 == ord {
		t.Fatal("Ordinals not invalidated by mutation with repair disabled")
	}
	// One more element; leaf count may change too (border cuts).
	if got := ord2.Len(); got != len(allNodes(d)) {
		t.Fatalf("rebuilt ordinal space %d != node count %d", got, len(allNodes(d)))
	}
	// And the rebuilt numbering still matches the reference order.
	nodes := allNodes(d)
	for _, a := range nodes {
		for _, b := range nodes {
			if c := CompareNodes(a, b); (c < 0) != (ord2.Of(a) < ord2.Of(b)) && c != 0 {
				t.Fatalf("rebuilt ordinals disagree with CompareNodes")
			}
		}
	}
}

// TestNameIndex: ElementsNamed equals the linear filter, for the document
// and per hierarchy, and survives mutation.
func TestNameIndex(t *testing.T) {
	d := randomDocWithMilestones(11, 100, 3, 8)
	check := func() {
		for _, tag := range []string{"x", "m", "absent"} {
			var want []*Element
			for _, e := range d.Elements() {
				if e.Name() == tag {
					want = append(want, e)
				}
			}
			got := d.ElementsNamed(tag)
			if len(got) != len(want) {
				t.Fatalf("ElementsNamed(%q): got %d want %d", tag, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ElementsNamed(%q)[%d] differs", tag, i)
				}
			}
		}
		for _, h := range d.Hierarchies() {
			var want []*Element
			for _, e := range h.Elements() {
				if e.Name() == "x" {
					want = append(want, e)
				}
			}
			got := h.ElementsNamed("x")
			if len(got) != len(want) {
				t.Fatalf("hierarchy %q ElementsNamed: got %d want %d", h.Name(), len(got), len(want))
			}
		}
	}
	check()
	if _, err := d.InsertElement(d.Hierarchy("a"), "x", nil, document.NewSpan(0, 1)); err == nil {
		check() // index must reflect the insertion
	} else {
		// The span may conflict; mutate via a fresh hierarchy instead.
		if _, err := d.InsertElement(d.AddHierarchy("extra"), "x", nil, document.NewSpan(0, 1)); err != nil {
			t.Fatal(err)
		}
		check()
	}
}
