package goddag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

// TestRandomEditSequences drives random insert/remove/text-edit/compact
// sequences across several hierarchies and checks every GODDAG invariant
// after each step.
func TestRandomEditSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New("r", randText(rng, 80))
		hiers := []*Hierarchy{
			d.AddHierarchy("h1"), d.AddHierarchy("h2"), d.AddHierarchy("h3"),
		}
		var inserted []*Element
		for step := 0; step < 60; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // insert
				if d.Content().Len() == 0 {
					continue
				}
				h := hiers[rng.Intn(len(hiers))]
				lo := rng.Intn(d.Content().Len())
				hi := lo + rng.Intn(d.Content().Len()-lo+1)
				el, err := d.InsertElement(h, "x", nil, document.NewSpan(lo, hi))
				if err != nil {
					// Conflicts within a hierarchy are expected; anything
					// else would be caught by Check below.
					continue
				}
				inserted = append(inserted, el)
			case 6: // remove
				if len(inserted) == 0 {
					continue
				}
				i := rng.Intn(len(inserted))
				el := inserted[i]
				inserted = append(inserted[:i], inserted[i+1:]...)
				if err := d.RemoveElement(el); err != nil {
					return false
				}
			case 7: // insert text
				pos := rng.Intn(d.Content().Len() + 1)
				if err := d.InsertText(pos, "ab"); err != nil {
					return false
				}
			case 8: // delete text
				if d.Content().Len() < 2 {
					continue
				}
				lo := rng.Intn(d.Content().Len() - 1)
				hi := lo + 1 + rng.Intn(min(4, d.Content().Len()-lo-1))
				if err := d.DeleteText(document.NewSpan(lo, hi)); err != nil {
					return false
				}
			case 9: // compact
				d.Compact()
			}
			if err := d.Check(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLeafTextConcatenationInvariant: the concatenation of all leaf texts
// always equals the document content, whatever the markup.
func TestLeafTextConcatenationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 120, 3, 15)
		text := ""
		for _, l := range d.Leaves() {
			text += l.Text()
		}
		return text == d.Content().String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestElementTextEqualsLeafConcat: every element's text equals the
// concatenation of its dominated leaves.
func TestElementTextEqualsLeafConcat(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 120, 3, 15)
		for _, e := range d.Elements() {
			text := ""
			for _, l := range e.Leaves() {
				text += l.Text()
			}
			if text != e.Text() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestLeafParentsConsistent: for every leaf and hierarchy, the parent's
// span contains the leaf and the leaf appears among the parent's
// children.
func TestLeafParentsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 100, 3, 10)
		for _, l := range d.Leaves() {
			for _, h := range d.Hierarchies() {
				p := l.Parent(h)
				if !p.Span().ContainsSpan(l.Span()) {
					return false
				}
				var kids []Node
				switch v := p.(type) {
				case *Element:
					kids = v.Children()
				case *Root:
					kids = v.Children(h)
				}
				found := false
				for _, k := range kids {
					if NodesEqual(k, l) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDocumentOrderTotal: CompareNodes is a total order over all nodes —
// antisymmetric and transitive on a sample.
func TestDocumentOrderTotal(t *testing.T) {
	d := randomDoc(42, 100, 3, 12)
	var nodes []Node
	nodes = append(nodes, d.Root())
	for _, e := range d.Elements() {
		nodes = append(nodes, e)
	}
	for _, l := range d.Leaves() {
		nodes = append(nodes, l)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			ab, ba := CompareNodes(a, b), CompareNodes(b, a)
			if ab != -ba {
				t.Fatalf("not antisymmetric: %v vs %v: %d %d", a, b, ab, ba)
			}
			if ab == 0 && !NodesEqual(a, b) && a.Span() != b.Span() {
				t.Fatalf("distinct nodes compare equal: %v %v", a, b)
			}
		}
	}
}
