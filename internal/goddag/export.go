package goddag

import (
	"fmt"
	"sort"
	"strings"
)

// DumpTree renders hierarchy h as an indented ASCII tree, leaves included.
// Used by cmd/cxparse to reproduce the per-hierarchy views of Figure 1.
func DumpTree(h *Hierarchy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%s> (hierarchy %s)\n", h.doc.rootTag, h.name)
	var walk func(nodes []Node, indent string)
	walk = func(nodes []Node, indent string) {
		for _, n := range nodes {
			switch v := n.(type) {
			case *Element:
				fmt.Fprintf(&b, "%s<%s>%v", indent, v.Name(), v.Span())
				for _, a := range v.Attrs() {
					fmt.Fprintf(&b, " %s=%q", a.Name, a.Value)
				}
				b.WriteByte('\n')
				walk(v.Children(), indent+"  ")
			case Leaf:
				fmt.Fprintf(&b, "%s#%d %q\n", indent, v.Index(), v.Text())
			}
		}
	}
	walk(h.doc.root.Children(h), "  ")
	return b.String()
}

// Dump renders the whole GODDAG: the leaf table followed by each
// hierarchy tree. This is the textual equivalent of Figure 2.
func Dump(d *Document) string {
	var b strings.Builder
	fmt.Fprintf(&b, "content: %q\n", d.content.String())
	fmt.Fprintf(&b, "leaves (%d):\n", d.NumLeaves())
	for _, l := range d.Leaves() {
		fmt.Fprintf(&b, "  #%d %v %q\n", l.Index(), l.Span(), l.Text())
	}
	for _, h := range d.Hierarchies() {
		b.WriteString(DumpTree(h))
	}
	return b.String()
}

// DOT renders the GODDAG in Graphviz DOT format: one subgraph per
// hierarchy plus the shared root and leaf rank. Node labels carry the
// numeric identification used in Figure 2 of the paper.
func DOT(d *Document) string {
	var b strings.Builder
	b.WriteString("digraph goddag {\n  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  root [label=\"<%s>\", shape=ellipse];\n", d.rootTag)

	// Leaves on one bottom rank.
	b.WriteString("  { rank=same;\n")
	for _, l := range d.Leaves() {
		fmt.Fprintf(&b, "    leaf%d [label=%q, shape=plaintext];\n", l.Index(), l.Text())
	}
	b.WriteString("  }\n")
	for i := 0; i+1 < d.NumLeaves(); i++ {
		fmt.Fprintf(&b, "  leaf%d -> leaf%d [style=invis];\n", i, i+1)
	}

	// Number elements per tag, in document order, like Figure 2.
	counter := map[string]int{}
	ids := map[*Element]string{}
	for _, e := range d.Elements() {
		counter[e.Name()]++
		ids[e] = fmt.Sprintf("%s%d", sanitizeDotID(e.Name()), counter[e.Name()])
	}

	for _, h := range d.Hierarchies() {
		fmt.Fprintf(&b, "  subgraph cluster_%s {\n    label=%q; style=dashed;\n", sanitizeDotID(h.Name()), h.Name())
		for _, e := range h.Elements() {
			label := fmt.Sprintf("%s (%d)", e.Name(), elemNumber(ids[e]))
			fmt.Fprintf(&b, "    %s_%s [label=%q];\n", sanitizeDotID(h.Name()), ids[e], label)
		}
		b.WriteString("  }\n")
		for _, e := range h.Elements() {
			from := fmt.Sprintf("%s_%s", sanitizeDotID(h.Name()), ids[e])
			if e.ParentElement() == nil {
				fmt.Fprintf(&b, "  root -> %s;\n", from)
			}
			for _, c := range e.ChildElements() {
				fmt.Fprintf(&b, "  %s -> %s_%s;\n", from, sanitizeDotID(h.Name()), ids[c])
			}
			first, last := e.LeafRange()
			for i := first; i < last; i++ {
				if isDirectLeafChild(e, i) {
					fmt.Fprintf(&b, "  %s -> leaf%d;\n", from, i)
				}
			}
		}
		// Uncovered leaves hang from the root in this hierarchy's tree.
		for _, n := range d.root.Children(h) {
			if l, ok := n.(Leaf); ok {
				fmt.Fprintf(&b, "  root -> leaf%d [style=dotted];\n", l.Index())
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// isDirectLeafChild reports whether leaf i is a direct child of e (not
// covered by a child element of e).
func isDirectLeafChild(e *Element, i int) bool {
	span := e.doc.part.LeafSpan(i)
	for _, c := range e.ChildElements() {
		if c.Span().ContainsSpan(span) && !c.Span().IsEmpty() {
			return false
		}
	}
	return true
}

func elemNumber(id string) int {
	j := len(id)
	for j > 0 && id[j-1] >= '0' && id[j-1] <= '9' {
		j--
	}
	n := 0
	for _, c := range id[j:] {
		n = n*10 + int(c-'0')
	}
	return n
}

func sanitizeDotID(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// LeafTable returns a compact one-line-per-leaf table: index, span, text.
// Columns are fixed for golden-file comparisons in tests.
func LeafTable(d *Document) string {
	var b strings.Builder
	for _, l := range d.Leaves() {
		fmt.Fprintf(&b, "%4d %10s %q\n", l.Index(), l.Span().String(), l.Text())
	}
	return b.String()
}

// Inventory returns a sorted "hierarchy:tag count" listing, used by tests
// asserting the node inventory of Figure 2.
func Inventory(d *Document) []string {
	counts := map[string]int{}
	for _, h := range d.Hierarchies() {
		for _, e := range h.Elements() {
			counts[h.Name()+":"+e.Name()]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s x%d", k, counts[k])
	}
	return out
}
