package goddag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/document"
)

// naiveOverlapping is the reference implementation the index must match.
func naiveOverlapping(d *Document, sp document.Span) []*Element {
	var out []*Element
	for _, e := range d.Elements() {
		if e.Span().Overlaps(sp) {
			out = append(out, e)
		}
	}
	return out
}

func naiveIntersecting(d *Document, sp document.Span) []*Element {
	var out []*Element
	for _, e := range d.Elements() {
		if e.Span().Intersects(sp) {
			out = append(out, e)
		}
	}
	return out
}

// randomDoc builds a document with many hierarchies of random
// non-conflicting spans.
func randomDoc(seed int64, contentLen, hierarchies, perHier int) *Document {
	rng := rand.New(rand.NewSource(seed))
	d := New("r", randText(rng, contentLen))
	for h := 0; h < hierarchies; h++ {
		hier := d.AddHierarchy(string(rune('a' + h)))
		lastEnd := 0
		for i := 0; i < perHier; i++ {
			lo := lastEnd + rng.Intn(5)
			hi := lo + 1 + rng.Intn(8)
			if hi > contentLen {
				break
			}
			if _, err := d.InsertElement(hier, "x", nil, document.NewSpan(lo, hi)); err != nil {
				panic(err)
			}
			lastEnd = hi
		}
	}
	return d
}

func randText(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestIndexMatchesNaive(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		d := randomDoc(seed, 200, 4, 12)
		lo := int(a) % 200
		hi := lo + int(b)%40
		if hi > 200 {
			hi = 200
		}
		sp := document.NewSpan(lo, hi)
		got := d.ElementsOverlapping(sp)
		want := naiveOverlapping(d, sp)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		gotI := d.ElementsIntersecting(sp)
		wantI := naiveIntersecting(d, sp)
		if len(gotI) != len(wantI) {
			return false
		}
		for i := range gotI {
			if gotI[i] != wantI[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIndexInvalidation(t *testing.T) {
	d := New("r", "abcdefghij")
	h1 := d.AddHierarchy("h1")
	h2 := d.AddHierarchy("h2")
	if _, err := d.InsertElement(h1, "a", nil, document.NewSpan(0, 6)); err != nil {
		t.Fatal(err)
	}
	sp := document.NewSpan(3, 9)
	if got := d.ElementsOverlapping(sp); len(got) != 1 {
		t.Fatalf("before: %v", got)
	}
	// Insert a second overlapping element: the index must see it.
	if _, err := d.InsertElement(h2, "b", nil, document.NewSpan(1, 4)); err != nil {
		t.Fatal(err)
	}
	if got := d.ElementsOverlapping(sp); len(got) != 2 {
		t.Errorf("after insert: %v", got)
	}
	// Remove one: the index must forget it.
	if err := d.RemoveElement(d.Hierarchy("h1").Elements()[0]); err != nil {
		t.Fatal(err)
	}
	if got := d.ElementsOverlapping(sp); len(got) != 1 {
		t.Errorf("after remove: %v", got)
	}
}

func TestIndexEmptyDocument(t *testing.T) {
	d := New("r", "abc")
	if got := d.ElementsOverlapping(document.NewSpan(0, 3)); len(got) != 0 {
		t.Errorf("empty doc: %v", got)
	}
	if got := d.ElementsIntersecting(document.NewSpan(1, 1)); len(got) != 0 {
		t.Errorf("empty span: %v", got)
	}
}

func TestElementsCacheStability(t *testing.T) {
	d := New("r", "abcdefghij")
	h := d.AddHierarchy("h")
	d.InsertElement(h, "a", nil, document.NewSpan(0, 4))
	first := d.Elements()
	second := d.Elements()
	if &first[0] != &second[0] {
		t.Error("cache should return the same slice between mutations")
	}
	d.InsertElement(h, "b", nil, document.NewSpan(5, 9))
	third := d.Elements()
	if len(third) != 2 {
		t.Errorf("after mutation: %d elements", len(third))
	}
}
