package goddag

import (
	"fmt"
	"sort"
	"unsafe"

	"repro/internal/document"
)

// This file is the lazy-materialization mode backing the v3 store's
// open-without-decode path. A view-backed document is created with
// FromView over a columnar image (Columns) that typically aliases a
// read-only file mapping: opening costs nothing beyond the hierarchy
// shells, and the first structural access materializes every element
// and derived index in one bulk pass straight off the columns — no
// parsing, no sorting, no ordinal merge, because the columns *are* the
// serialized indexes. Mutations promote the document to pure heap form
// first (promote), since the in-place index repair (repair.go) writes
// into the ordinal arrays, which may alias the read-only mapping.
//
// ExportColumns is the inverse: it flattens a live document into the
// same columnar image, which the store serializes as the v3 sections.

// Columns is the flat columnar image of a document's structure, shared
// between the v3 encoder (ExportColumns) and the mapped
// lazy-materialization path (FromView). Element records are stored
// hierarchy-major in pre-order — within one hierarchy, pre-order IS
// document order — so an element's hierarchy-local pre-order index is
// implicit in its position. "Arena index" below means an element's
// global position in that layout.
type Columns struct {
	Strings []string      // string table: tags, attribute names/values, root and hierarchy names
	Hiers   []HierColumns // per hierarchy: name and element count, creation order

	// Per element, arena order:
	Tag    []uint32 // string-table id of the tag
	Start  []uint32 // span start, byte offset
	End    []uint32 // span end, byte offset
	Parent []int32  // arena index of the parent, -1 for a top-level element
	PreEnd []uint32 // hierarchy-local pre-order subtree end (exclusive)
	Ord    []uint32 // dense document-order ordinal (root is 0)

	AttrOff  []uint32 // len nelems+1: prefix offsets into AttrName/AttrVal
	AttrName []uint32 // per attribute: string-table id of the name
	AttrVal  []uint32 // per attribute: string-table id of the value

	Cuts    []uint32 // partition leaf start offsets, ascending from 0
	LeafOrd []int32  // per leaf: ordinal
	ByOrd   []int32  // ordinal -> node (0 root, +v element v-1 in document order, -v leaf v-1)
	Order   []uint32 // document-order position -> arena index
	SpanMax []int32  // span-index segment tree (4·nelems max-end slots)
	Buckets []Bucket // name index, sorted by tag string

	// Aliased marks ByOrd/LeafOrd as views of a read-only backing; the
	// first mutation copies them to heap (promote) before the in-place
	// ordinal repair writes into them.
	Aliased bool
}

// HierColumns is one hierarchy's slot in the columnar image.
type HierColumns struct {
	Name string
	N    int
}

// Bucket is one tag's slot in the serialized name index.
type Bucket struct {
	Tag uint32   // string-table id
	Pos []uint32 // document-order positions (indices into Order), ascending
}

// DocView describes a document whose structure lives in an external
// columnar image (a mapped .gdag v3 file).
type DocView struct {
	RootTag   string
	Content   string
	HierNames []string
	// Materialize validates and returns the columnar image. It is called
	// at most once, under the document mutex, on the first structural
	// access.
	Materialize func() (*Columns, error)
	// Keep pins the image's backing store (the file mapping) for as long
	// as any document derived from the view — including editor clones,
	// whose strings alias the mapping — remains reachable.
	Keep any
}

// FromView creates a view-backed document: content and hierarchy shells
// are live immediately, element structure materializes on first touch.
func FromView(v *DocView) *Document {
	d := New(v.RootTag, v.Content)
	for _, name := range v.HierNames {
		d.AddHierarchy(name)
	}
	d.view = v
	d.keepalive = v.Keep
	d.residentBytes.Store(int64(512 + len(v.RootTag)))
	d.viewPending.Store(true)
	return d
}

// ViewErr reports the deferred materialization error of a view-backed
// document: when the columnar image fails validation on first touch the
// document parks the error here and presents an element-free structure
// instead of panicking mid-query. Heap documents always return nil.
func (d *Document) ViewErr() error {
	if d.view == nil {
		return nil
	}
	d.ensure()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.viewErr
}

// ResidentFootprint reports the heap bytes a still-mapped view-backed
// document pins (materialized arenas and indexes; content and strings
// stay in the mapping) — the amount a byte-budgeted cache should
// charge. ok is false for heap documents and for promoted ones, whose
// full Footprint applies.
func (d *Document) ResidentFootprint() (int64, bool) {
	if d.view == nil || d.viewPromoted.Load() {
		return 0, false
	}
	return d.residentBytes.Load(), true
}

// ensure materializes a view-backed document's structure on first
// touch. The fast path for heap documents and already-materialized
// views is one atomic load.
func (d *Document) ensure() {
	if !d.viewPending.Load() {
		return
	}
	d.mu.Lock()
	d.ensureLocked()
	d.mu.Unlock()
}

// ensureLocked is ensure with d.mu held (for the lazy index rebuilds,
// which call it at their top).
func (d *Document) ensureLocked() {
	if !d.viewPending.Load() {
		return
	}
	d.materializeLocked()
	d.viewPending.Store(false)
}

// prepareMutate readies a view-backed document for a structural or text
// mutation: materialize, then promote to heap form. Heap documents pay
// one predictable branch.
func (d *Document) prepareMutate() {
	if d.view == nil {
		return
	}
	d.ensure()
	d.promote()
}

// promote copies any index arrays still aliasing the read-only backing
// to heap. The in-place ordinal repair resizes and writes into
// byOrd/leafOrd (repair.go); on a PROT_READ mapping that is a fault,
// so the first mutation pays the copy once.
func (d *Document) promote() {
	d.mu.Lock()
	if d.viewAliased {
		if o := d.ordIdx; o != nil {
			o.byOrd = append(make([]int32, 0, len(o.byOrd)+len(o.byOrd)/2), o.byOrd...)
			o.leafOrd = append(make([]int32, 0, len(o.leafOrd)+len(o.leafOrd)/2), o.leafOrd...)
		}
		d.viewAliased = false
	}
	d.viewPromoted.Store(true)
	d.mu.Unlock()
}

// materializeLocked builds the full element layer and every derived
// index from the columnar image in one pass, stamping them at the
// current version. On a validation failure the error is parked in
// viewErr and the document stays element-free (the normal lazy rebuilds
// then see a consistent empty structure).
func (d *Document) materializeLocked() {
	cols, err := d.view.Materialize()
	if err != nil {
		d.viewErr = err
		return
	}
	n := len(cols.Tag)
	nattr := len(cols.AttrName)
	nl := len(cols.Cuts)
	strs := cols.Strings

	if nl > 0 {
		starts := make([]int, nl)
		for i, c := range cols.Cuts {
			starts[i] = int(c)
		}
		d.part = document.PartitionFromStarts(d.content.Len(), starts)
	}

	// Element and attribute arenas. Like the bulk builder, each element
	// owns its [lo:hi:hi] attribute sub-slice exclusively, so SetAttr
	// growth reallocates away from the arena.
	arena := make([]Element, n)
	preArena := make([]*Element, n)
	attrArena := make([]Attr, nattr)
	for j := range attrArena {
		attrArena[j] = Attr{Name: strs[cols.AttrName[j]], Value: strs[cols.AttrVal[j]]}
	}

	childCount := make([]int32, n)
	topCount := make([]int32, len(cols.Hiers))
	base := 0
	for hi, hc := range cols.Hiers {
		for i := 0; i < hc.N; i++ {
			if p := cols.Parent[base+i]; p >= 0 {
				childCount[p]++
			} else {
				topCount[hi]++
			}
		}
		base += hc.N
	}
	childOff := make([]int32, n+1)
	for g := 0; g < n; g++ {
		childOff[g+1] = childOff[g] + childCount[g]
	}
	childArena := make([]*Element, childOff[n])
	totalTop := 0
	for _, c := range topCount {
		totalTop += int(c)
	}
	topArena := make([]*Element, 0, totalTop)

	base = 0
	for _, hc := range cols.Hiers {
		h := d.hiers[hc.Name]
		if h == nil {
			h = d.AddHierarchy(hc.Name)
		}
		h.n = hc.N
		h.pre = preArena[base : base+hc.N : base+hc.N]
		for i := 0; i < hc.N; i++ {
			g := base + i
			e := &arena[g]
			preArena[g] = e
			e.doc = d
			e.hier = h
			e.name = strs[cols.Tag[g]]
			e.span = document.Span{Start: int(cols.Start[g]), End: int(cols.End[g])}
			if lo, hi2 := cols.AttrOff[g], cols.AttrOff[g+1]; hi2 > lo {
				e.attrs = attrArena[lo:hi2:hi2]
			}
			e.preIdx = int32(i)
			e.preEnd = int32(cols.PreEnd[g])
			e.ord = int32(cols.Ord[g])
			if p := cols.Parent[g]; p >= 0 {
				e.parent = &arena[p]
			}
		}
		base += hc.N
	}

	// Children and top-level lists: a second pass in arena order keeps
	// each sibling list in document order (pre-order visits parents
	// before children, children in order).
	cur := make([]int32, n)
	base = 0
	topOff := 0
	for hi, hc := range cols.Hiers {
		for i := 0; i < hc.N; i++ {
			g := base + i
			e := &arena[g]
			if p := cols.Parent[g]; p >= 0 {
				childArena[childOff[p]+cur[p]] = e
				cur[p]++
			} else {
				topArena = append(topArena, e)
			}
		}
		h := d.hiers[hc.Name]
		cnt := int(topCount[hi])
		h.top = topArena[topOff : topOff+cnt : topOff+cnt]
		topOff += cnt
		base += hc.N
	}
	for g := 0; g < n; g++ {
		if c := childCount[g]; c > 0 {
			lo := childOff[g]
			arena[g].children = childArena[lo : lo+c : lo+c]
		}
	}

	// Insertion sequence: the serialized document order is the total
	// order (span, seq), so re-deriving seq from the order position
	// reproduces it exactly and keeps future inserts (seq >= n) last
	// among equal spans, matching the v2 decode semantics.
	cache := make([]*Element, n)
	for k, g := range cols.Order {
		e := &arena[g]
		e.seq = k
		cache[k] = e
	}
	d.seq = n
	d.elemCache, d.elemCacheVer = cache, d.version

	var empty []*Element
	for _, e := range cache {
		if e.span.IsEmpty() {
			empty = append(empty, e)
		}
	}
	d.ordIdx = &Ordinals{doc: d, els: cache, leafOrd: cols.LeafOrd, byOrd: cols.ByOrd, empty: empty}
	d.ordVer = d.version
	d.viewAliased = cols.Aliased

	ix := &spanIndex{els: cache}
	if n > 0 {
		ix.maxEnd = make([]int, 4*n)
		for i, v := range cols.SpanMax {
			ix.maxEnd[i] = int(v)
		}
	}
	d.spanIdx, d.spanIdxVer = ix, d.version

	bucketArena := make([]*Element, n)
	idx := make(map[string][]*Element, len(cols.Buckets))
	off := 0
	for _, b := range cols.Buckets {
		lo := off
		for _, p := range b.Pos {
			bucketArena[off] = cache[p]
			off++
		}
		idx[strs[b.Tag]] = bucketArena[lo:off:off]
	}
	d.nameIdx, d.nameIdxVer = idx, d.version

	const ptrSize = int64(unsafe.Sizeof(uintptr(0)))
	est := d.residentBytes.Load()
	est += int64(n) * int64(unsafe.Sizeof(Element{}))
	est += int64(nattr) * int64(unsafe.Sizeof(Attr{}))
	est += int64(n) * ptrSize * 4 // preArena, childArena, cache, bucketArena
	est += int64(totalTop) * ptrSize
	est += int64(nl) * 8           // partition starts
	est += int64(4*n) * 8          // span tree
	est += int64(len(strs)) * 16   // string headers (bytes stay mapped)
	if !cols.Aliased {
		est += int64(len(cols.ByOrd))*4 + int64(len(cols.LeafOrd))*4
	}
	est += int64(len(cols.Buckets)) * 48 // name-index map overhead
	d.residentBytes.Store(est)
}

// ExportColumns flattens the document into its columnar v3 image,
// warming every derived index first so the columns are exactly the
// serialized form of the live query structures. Coordinates must fit
// int32; the store's encoder enforces the content-length bound.
func (d *Document) ExportColumns() *Columns {
	d.ensure()
	ords := d.Ordinals()
	ix := d.index()
	d.ElementsNamed("")
	d.mu.Lock()
	els := d.elemCache
	nameIdx := d.nameIdx
	d.mu.Unlock()

	n := len(els)
	cols := &Columns{
		Tag:     make([]uint32, n),
		Start:   make([]uint32, n),
		End:     make([]uint32, n),
		Parent:  make([]int32, n),
		PreEnd:  make([]uint32, n),
		Ord:     make([]uint32, n),
		AttrOff: make([]uint32, n+1),
		Order:   make([]uint32, n),
	}

	strIDs := make(map[string]uint32)
	intern := func(s string) uint32 {
		if id, ok := strIDs[s]; ok {
			return id
		}
		id := uint32(len(cols.Strings))
		strIDs[s] = id
		cols.Strings = append(cols.Strings, s)
		return id
	}
	intern(d.rootTag)
	hierBase := make(map[*Hierarchy]int, len(d.order))
	base := 0
	for _, name := range d.order {
		intern(name)
		h := d.hiers[name]
		cols.Hiers = append(cols.Hiers, HierColumns{Name: name, N: h.n})
		hierBase[h] = base
		base += h.n
	}
	if base != n {
		panic(fmt.Sprintf("goddag: export: hierarchy counts sum %d != %d elements", base, n))
	}

	base = 0
	for _, name := range d.order {
		h := d.hiers[name]
		for i, e := range h.pre {
			g := base + i
			cols.Tag[g] = intern(e.name)
			cols.Start[g] = uint32(e.span.Start)
			cols.End[g] = uint32(e.span.End)
			cols.Parent[g] = -1
			if e.parent != nil {
				cols.Parent[g] = int32(base + int(e.parent.preIdx))
			}
			cols.PreEnd[g] = uint32(e.preEnd)
			cols.Ord[g] = uint32(e.ord)
		}
		base += h.n
	}
	base = 0
	for _, name := range d.order {
		h := d.hiers[name]
		for i, e := range h.pre {
			cols.AttrOff[base+i] = uint32(len(cols.AttrName))
			for _, a := range e.attrs {
				cols.AttrName = append(cols.AttrName, intern(a.Name))
				cols.AttrVal = append(cols.AttrVal, intern(a.Value))
			}
		}
		base += h.n
	}
	cols.AttrOff[n] = uint32(len(cols.AttrName))

	starts := d.part.StartsView()
	cols.Cuts = make([]uint32, len(starts))
	for i, s := range starts {
		cols.Cuts[i] = uint32(s)
	}
	cols.LeafOrd = append([]int32(nil), ords.leafOrd...)
	cols.ByOrd = append([]int32(nil), ords.byOrd...)
	for k, e := range els {
		cols.Order[k] = uint32(hierBase[e.hier] + int(e.preIdx))
	}
	if n > 0 {
		cols.SpanMax = make([]int32, 4*n)
		for i, v := range ix.maxEnd[:4*n] {
			cols.SpanMax[i] = int32(v)
		}
	}

	pos := make(map[*Element]uint32, n)
	for k, e := range els {
		pos[e] = uint32(k)
	}
	tags := make([]string, 0, len(nameIdx))
	for t := range nameIdx {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	for _, t := range tags {
		b := Bucket{Tag: intern(t), Pos: make([]uint32, 0, len(nameIdx[t]))}
		for _, e := range nameIdx[t] {
			b.Pos = append(b.Pos, pos[e])
		}
		cols.Buckets = append(cols.Buckets, b)
	}
	return cols
}
