package goddag

// IndexStats reports the sizes of a document's derived indexes — the
// cardinalities the xpath planner reads as selectivity estimates (name
// buckets pick the cheap side of an axis step; the ordinal range sizes
// dedup bitsets). Computing the stats warms the ordinal and name indexes
// as a side effect, so a served document reports live planner inputs.
type IndexStats struct {
	// Version is the mutation counter the indexes are stamped with;
	// cached query plans are valid while it is unchanged.
	Version uint64 `json:"version"`
	// Elements counts elements across all hierarchies (the span index's
	// candidate pool).
	Elements int `json:"elements"`
	// Leaves counts shared content leaves.
	Leaves int `json:"leaves"`
	// Hierarchies counts concurrent hierarchies.
	Hierarchies int `json:"hierarchies"`
	// Milestones counts empty elements, which the span index cannot serve
	// (empty spans intersect nothing) and the covered axis merges in
	// separately.
	Milestones int `json:"milestones"`
	// OrdinalRange is the dense document-order ordinal space (root +
	// elements + leaves) — the size a dedup bitset must cover.
	OrdinalRange int `json:"ordinalRange"`
	// NameBuckets maps each element name to its bucket size in the name
	// index: the per-step selectivity estimates.
	NameBuckets map[string]int `json:"nameBuckets"`
}

// IndexStats computes the document's derived-index statistics. Safe for
// concurrent use with other readers.
func (d *Document) IndexStats() IndexStats {
	ord := d.Ordinals()
	els := d.Elements()
	buckets := make(map[string]int, 8)
	for _, e := range els {
		buckets[e.Name()]++
	}
	return IndexStats{
		Version:      d.Version(),
		Elements:     len(els),
		Leaves:       d.NumLeaves(),
		Hierarchies:  len(d.Hierarchies()),
		Milestones:   len(ord.EmptyElements()),
		OrdinalRange: ord.Len(),
		NameBuckets:  buckets,
	}
}
