package goddag

import "repro/internal/document"

// CompareNodes defines the total document order over GODDAG nodes used by
// Extended XPath node-sets:
//
//   - the root precedes everything;
//   - otherwise nodes order by start offset, then wider spans first (a
//     containing element precedes its contents);
//   - at equal spans, elements precede leaves (a milestone at a position
//     precedes the text that follows it), and elements order by insertion
//     sequence.
//
// It returns -1, 0, or +1.
//
// CompareNodes is the *reference* definition of document order. The
// query path compares nodes by their dense ordinals instead
// (Document.Ordinals), which realize exactly this order as integers;
// TestOrdinalOrderMatchesCompareNodes proves the two agree over every
// node pair of generated documents.
func CompareNodes(a, b Node) int {
	if a == b {
		return 0
	}
	ka, kb := a.Kind(), b.Kind()
	if ka == KindRoot {
		if kb == KindRoot {
			return 0
		}
		return -1
	}
	if kb == KindRoot {
		return 1
	}
	c := document.CompareSpans(a.Span(), b.Span())
	if c != 0 {
		return c
	}
	// Same span: element before leaf; elements by sequence; leaves by index.
	ea, isEA := a.(*Element)
	eb, isEB := b.(*Element)
	switch {
	case isEA && isEB:
		switch {
		case ea.seq < eb.seq:
			return -1
		case ea.seq > eb.seq:
			return 1
		default:
			return 0
		}
	case isEA:
		return -1
	case isEB:
		return 1
	}
	la, isLA := a.(Leaf)
	lb, isLB := b.(Leaf)
	if isLA && isLB {
		switch {
		case la.idx < lb.idx:
			return -1
		case la.idx > lb.idx:
			return 1
		default:
			return 0
		}
	}
	return 0
}

// NodesEqual reports whether two nodes are the same GODDAG node. Leaf
// handles are value types, so plain == works for them but not across the
// Node interface with pointer kinds mixed in.
func NodesEqual(a, b Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if la, ok := a.(Leaf); ok {
		if lb, ok := b.(Leaf); ok {
			return la.doc == lb.doc && la.idx == lb.idx
		}
		return false
	}
	return a == b
}

// NodeID returns a stable identity key for a node, usable as a map key for
// node-set deduplication. Hot paths should prefer the allocation-free
// ordinal numbering (Document.Ordinals) — a node's ordinal is a dense
// integer identity; NodeID remains for callers that need a key without
// building the ordinal index.
func NodeID(n Node) any {
	if l, ok := n.(Leaf); ok {
		return leafID{doc: l.doc, idx: l.idx}
	}
	return n
}

type leafID struct {
	doc *Document
	idx int
}
