package goddag

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/document"
)

// bulkSpans builds the same element set twice — through the bulk loader
// and through the general InsertElement path — and asserts identical
// structure. Spans are given in arbitrary order; both paths insert them
// sorted by CompareSpans with index order breaking ties, the order
// sacx.Build produces.
func bulkVsInsert(t *testing.T, contentLen int, spans []document.Span) {
	t.Helper()
	content := strings.Repeat("x", contentLen)
	idx := make([]int, len(spans))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return document.CompareSpans(spans[idx[a]], spans[idx[b]]) < 0
	})

	bulkDoc := New("r", content)
	bh := bulkDoc.AddHierarchy("h")
	bulk := bulkDoc.BulkLoad()
	insDoc := New("r", content)
	ih := insDoc.AddHierarchy("h")
	for _, i := range idx {
		if _, err := bulk.Append(bh, "e", nil, spans[i]); err != nil {
			t.Fatalf("bulk append %v: %v", spans[i], err)
		}
		if _, err := insDoc.InsertElement(ih, "e", nil, spans[i]); err != nil {
			t.Fatalf("insert %v: %v", spans[i], err)
		}
	}
	if err := bulkDoc.Check(); err != nil {
		t.Fatalf("bulk doc invalid: %v", err)
	}
	if err := insDoc.Check(); err != nil {
		t.Fatalf("insert doc invalid: %v", err)
	}
	var render func(es []*Element) string
	render = func(es []*Element) string {
		var b strings.Builder
		for _, e := range es {
			b.WriteString(e.String())
			b.WriteString("(")
			b.WriteString(render(e.children))
			b.WriteString(")")
		}
		return b.String()
	}
	bs, is := render(bh.top), render(ih.top)
	if bs != is {
		t.Errorf("structures differ:\n bulk   %s\n insert %s", bs, is)
	}
}

func TestBulkMatchesInsertElement(t *testing.T) {
	cases := []struct {
		name  string
		spans []document.Span
	}{
		{"nested", []document.Span{{Start: 0, End: 10}, {Start: 2, End: 8}, {Start: 3, End: 5}}},
		{"siblings", []document.Span{{Start: 0, End: 3}, {Start: 3, End: 6}, {Start: 6, End: 9}}},
		{"coextensive", []document.Span{{Start: 2, End: 6}, {Start: 2, End: 6}, {Start: 2, End: 6}}},
		{"empty-same-pos", []document.Span{{Start: 4, End: 4}, {Start: 4, End: 4}}},
		{"milestone-left-edge", []document.Span{{Start: 2, End: 8}, {Start: 2, End: 2}}},
		{"milestone-right-edge", []document.Span{{Start: 2, End: 8}, {Start: 8, End: 8}}},
		{"milestone-interior", []document.Span{{Start: 2, End: 8}, {Start: 5, End: 5}}},
		{"mixed", []document.Span{
			{Start: 0, End: 12}, {Start: 0, End: 4}, {Start: 4, End: 4},
			{Start: 4, End: 9}, {Start: 5, End: 7}, {Start: 9, End: 12},
			{Start: 9, End: 9}, {Start: 12, End: 12},
		}},
		{"deep-left-edge", []document.Span{
			{Start: 0, End: 10}, {Start: 2, End: 9}, {Start: 2, End: 6}, {Start: 2, End: 2},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bulkVsInsert(t, 16, c.spans)
		})
	}
}

func TestBulkOrderEnforced(t *testing.T) {
	doc := New("r", "abcdef")
	h := doc.AddHierarchy("h")
	bulk := doc.BulkLoad()
	if _, err := bulk.Append(h, "a", nil, document.NewSpan(2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := bulk.Append(h, "b", nil, document.NewSpan(0, 6)); err == nil {
		t.Error("out-of-order append should fail")
	}
	// A different hierarchy has its own order frontier.
	h2 := doc.AddHierarchy("h2")
	if _, err := bulk.Append(h2, "c", nil, document.NewSpan(0, 6)); err != nil {
		t.Errorf("fresh hierarchy should accept any first span: %v", err)
	}
}

func TestBulkConflict(t *testing.T) {
	doc := New("r", "abcdef")
	h := doc.AddHierarchy("h")
	bulk := doc.BulkLoad()
	if _, err := bulk.Append(h, "a", nil, document.NewSpan(0, 4)); err != nil {
		t.Fatal(err)
	}
	_, err := bulk.Append(h, "b", nil, document.NewSpan(2, 6))
	if _, ok := err.(*ConflictError); !ok {
		t.Errorf("overlap should return *ConflictError, got %v", err)
	}
}

func TestBulkValidation(t *testing.T) {
	doc := New("r", "abcdef")
	h := doc.AddHierarchy("h")
	other := New("r", "abcdef").AddHierarchy("x")
	bulk := doc.BulkLoad()
	if _, err := bulk.Append(h, "", nil, document.NewSpan(0, 2)); err == nil {
		t.Error("empty tag should fail")
	}
	if _, err := bulk.Append(h, "a", nil, document.NewSpan(0, 99)); err == nil {
		t.Error("out-of-range span should fail")
	}
	if _, err := bulk.Append(other, "a", nil, document.NewSpan(0, 2)); err == nil {
		t.Error("foreign hierarchy should fail")
	}
	if _, err := bulk.Append(nil, "a", nil, document.NewSpan(0, 2)); err == nil {
		t.Error("nil hierarchy should fail")
	}
}

// TestBulkAttrsIndependent verifies that elements loaded from the shared
// attribute arena can be mutated without affecting their neighbours.
func TestBulkAttrsIndependent(t *testing.T) {
	doc := New("r", "abcdef")
	h := doc.AddHierarchy("h")
	bulk := doc.BulkLoad()
	a1 := []Attr{{Name: "n", Value: "1"}}
	a2 := []Attr{{Name: "n", Value: "2"}, {Name: "m", Value: "x"}}
	e1, err := bulk.Append(h, "a", a1, document.NewSpan(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := bulk.Append(h, "b", a2, document.NewSpan(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	e1.SetAttr("n", "changed")
	e1.SetAttr("extra", "new")
	if v, _ := e2.Attr("n"); v != "2" {
		t.Errorf("e2/@n corrupted: %q", v)
	}
	if v, _ := e1.Attr("extra"); v != "new" {
		t.Errorf("e1/@extra = %q", v)
	}
	if v, _ := e2.Attr("m"); v != "x" {
		t.Errorf("e2/@m corrupted: %q", v)
	}
}
