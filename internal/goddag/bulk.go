package goddag

import (
	"fmt"

	"repro/internal/document"
)

// BulkBuilder inserts elements into a document in document order —
// CompareSpans non-decreasing (start ascending, wider spans first), ties
// in insertion sequence — the order sacx.Build's merge emits natively:
// each source's elements stream out sorted, and the k-way element merge
// interleaves them without any global sort.
//
// Because parents always arrive before the elements they dominate, the
// builder can maintain one stack of open elements per hierarchy and place
// each new element in O(1) amortized time: no root-descent locate, no
// per-insert adoption set. The only reparenting that can occur in sorted
// order is the equal-span case (the inner of two coextensive elements
// ended first, so it arrives first and is wrapped by the outer), which the
// builder handles identically to InsertElement.
//
// Appending out of document order returns an error; use the general
// InsertElement for arbitrary-order edits. The two paths produce
// identical structures for the same element set.
type BulkBuilder struct {
	doc    *Document
	states map[*Hierarchy]*bulkState

	// Arenas: elements are handed out of fixed-capacity chunks and
	// attribute copies share one growing slice, so a bulk load performs a
	// handful of large allocations instead of two per element. Arena
	// attribute views are safe to hand to Elements: each element owns its
	// [lo:hi:hi] sub-slice exclusively, and SetAttr growth reallocates
	// away from the arena.
	elems    []Element
	attrPool []Attr
	precut   bool
}

// bulkChunk is the element arena chunk size.
const bulkChunk = 1024

func (b *BulkBuilder) newElement() *Element {
	if len(b.elems) == cap(b.elems) {
		b.elems = make([]Element, 0, bulkChunk)
	}
	b.elems = append(b.elems, Element{})
	return &b.elems[len(b.elems)-1]
}

func (b *BulkBuilder) copyAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	lo := len(b.attrPool)
	b.attrPool = append(b.attrPool, attrs...)
	return b.attrPool[lo:len(b.attrPool):len(b.attrPool)]
}

type bulkState struct {
	stack []*Element    // chain of elements still able to parent arrivals
	last  document.Span // last appended span, for order checking
	any   bool
}

// Precut declares that every span border the builder will see is already
// a leaf boundary (established up front with Partition.CutAll, as
// sacx.Build does), letting Append skip its per-span boundary cuts.
// Declaring it wrongly breaks the GODDAG border invariant, which
// Document.Check reports.
func (b *BulkBuilder) Precut() { b.precut = true }

// BulkLoad returns a builder for inserting elements in document order.
func (d *Document) BulkLoad() *BulkBuilder {
	d.prepareMutate()
	return &BulkBuilder{doc: d, states: make(map[*Hierarchy]*bulkState)}
}

// Grow pre-sizes the builder's arenas for a load of elems elements
// carrying attrs attributes in total.
func (b *BulkBuilder) Grow(elems, attrs int) {
	if elems > cap(b.elems)-len(b.elems) {
		b.elems = make([]Element, 0, elems)
	}
	if attrs > cap(b.attrPool)-len(b.attrPool) {
		b.attrPool = make([]Attr, 0, attrs)
	}
}

// Append inserts an element over span into hierarchy h. Calls must arrive
// in document order per hierarchy (CompareSpans non-decreasing). The
// span's borders become leaf boundaries. A span that properly overlaps an
// element of the same hierarchy returns a *ConflictError.
func (b *BulkBuilder) Append(h *Hierarchy, tag string, attrs []Attr, span document.Span) (*Element, error) {
	d := b.doc
	if h == nil || h.doc != d {
		return nil, fmt.Errorf("goddag: hierarchy does not belong to this document")
	}
	if tag == "" {
		return nil, fmt.Errorf("goddag: empty element tag")
	}
	if !span.Valid() || span.End > d.content.Len() {
		return nil, fmt.Errorf("goddag: span %v out of content range [0,%d]", span, d.content.Len())
	}
	if !d.content.IsRuneBoundary(span.Start) || !d.content.IsRuneBoundary(span.End) {
		return nil, fmt.Errorf("goddag: span %v does not lie on rune boundaries", span)
	}
	st := b.states[h]
	if st == nil {
		st = &bulkState{}
		b.states[h] = st
	}
	if st.any && document.CompareSpans(st.last, span) > 0 {
		return nil, fmt.Errorf("goddag: bulk insert of %v after %v is out of document order; use InsertElement", span, st.last)
	}
	st.any, st.last = true, span

	// Pop elements that end at or before the new span: in sorted order
	// nothing later can nest inside them. An equal span is kept — that is
	// the adoption case below (relevant for coextensive empty elements,
	// whose End equals the new span's Start).
	stack := st.stack
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		if top.span != span && top.span.End <= span.Start {
			stack = stack[:len(stack)-1]
			continue
		}
		break
	}

	el := b.newElement()
	*el = Element{doc: d, hier: h, name: tag, attrs: b.copyAttrs(attrs), span: span, seq: d.seq}
	d.seq++

	// Establish leaf boundaries at the span borders.
	if !b.precut {
		d.part.Cut(span.Start)
		d.part.Cut(span.End)
	}

	if n := len(stack); n > 0 && stack[n-1].span == span {
		// Coextensive spans: the later arrival wraps the earlier one,
		// exactly as InsertElement adopts an equal-span sibling. The
		// equal-span run on the stack is consecutive; el becomes the
		// parent of its shallowest member.
		j := n - 1
		for j > 0 && stack[j-1].span == span {
			j--
		}
		adoptee := stack[j]
		parent := adoptee.parent
		list := h.top
		if parent != nil {
			list = parent.children
		}
		if len(list) == 0 || list[len(list)-1] != adoptee {
			return nil, fmt.Errorf("goddag: bulk adoption of %v out of order", adoptee)
		}
		list[len(list)-1] = el
		el.parent = parent
		el.children = []*Element{adoptee}
		adoptee.parent = el
		if parent == nil {
			h.top = list
		} else {
			parent.children = list
		}
		// el slots into the containment chain just below the run.
		stack = append(stack, nil)
		copy(stack[j+1:], stack[j:])
		stack[j] = el
	} else {
		// The parent is the innermost stack element strictly containing
		// the span. For a non-empty span only the top can qualify —
		// anything deeper that fails to contain it properly overlaps it.
		// An empty span at a left border stays outside that element
		// (milestones at element edges are siblings, not children) but
		// may nest in an element further up the chain.
		var parent *Element
		for i := len(stack) - 1; i >= 0; i-- {
			cand := stack[i]
			if strictlyContains(cand.span, span) {
				parent = cand
				break
			}
			if !span.IsEmpty() {
				return nil, &ConflictError{Hierarchy: h.name, Tag: tag, Span: span, With: cand}
			}
		}
		el.parent = parent
		if parent == nil {
			h.top = append(h.top, el)
		} else {
			parent.children = append(parent.children, el)
		}
		stack = append(stack, el)
	}
	st.stack = stack
	h.n++
	d.bump()
	return el, nil
}
