package goddag

import "unsafe"

// Warm eagerly builds every lazily derived index of the document: the
// cross-hierarchy element cache, the span interval index, the ordinal
// numbering with its per-hierarchy pre-order arrays, and the tag name
// index. A freshly parsed (or decoded) document otherwise pays each
// rebuild on the first query that needs it — and, because rebuilds
// serialize on the document mutex, the first wave of concurrent queries
// against a cold document contends on that one rebuild. Serving layers
// (internal/catalog) call Warm once at load time, off the query path, so
// documents enter service with all indexes resident.
//
// Warm is idempotent and cheap on an already-warm document (four
// version-stamp checks). Like all reads it must not run concurrently
// with mutations.
func (d *Document) Warm() {
	d.Elements()
	d.index()
	d.Ordinals()
	// ElementsNamed builds the whole tag → elements map on first use,
	// whatever tag is asked for.
	d.ElementsNamed("")
}

// Footprint estimates the document's resident heap bytes: content (plus
// its byte↔rune checkpoint index), partition cuts, element structs with
// attributes, and the derived query indexes Warm builds. It is an
// estimate — interned string sharing and allocator slack are invisible —
// but it tracks the true footprint closely enough to drive a
// byte-budgeted cache (internal/catalog), and it is cheap: O(elements).
func (d *Document) Footprint() int64 {
	d.ensure()
	const (
		ptrSize     = int64(unsafe.Sizeof(uintptr(0)))
		elemSize    = int64(unsafe.Sizeof(Element{}))
		attrSize    = int64(unsafe.Sizeof(Attr{}))
		spanIdxNode = 8 // one int per segment-tree slot, 4 slots per element
	)
	// Content is held once; the rune checkpoint index adds at most one
	// checkpoint pair per 64 bytes (see internal/document), bounded here
	// by content/4 to stay safely conservative.
	content := int64(d.content.Len())
	f := content + content/4
	nl := int64(d.part.NumLeaves())
	f += (nl + 1) * 8 // partition cut offsets

	var nel, nattr, names int64
	for _, h := range d.hiers {
		nel += int64(h.n)
		f += int64(len(h.name))
	}
	for _, name := range d.order {
		h := d.hiers[name]
		var walk func(es []*Element)
		walk = func(es []*Element) {
			for _, e := range es {
				nattr += int64(len(e.attrs))
				names += int64(len(e.name))
				for _, a := range e.attrs {
					names += int64(len(a.Name) + len(a.Value))
				}
				f += int64(cap(e.children)) * ptrSize
				walk(e.children)
			}
		}
		walk(h.top)
	}
	f += nel*elemSize + nattr*attrSize + names

	// Derived indexes (built by Warm): element cache + per-hierarchy
	// pre-order arrays (one pointer each), span index segment tree,
	// ordinal decode tables, name index buckets.
	f += nel * ptrSize * 2     // elemCache + hierarchy pre arrays
	f += nel * 4 * spanIdxNode // span index maxEnd tree
	f += (1+nel+nl)*4 + nl*4   // ordinals byOrd + leafOrd
	f += nel * (ptrSize + 2)   // name index buckets + map overhead share
	return f
}
