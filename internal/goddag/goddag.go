// Package goddag implements the GODDAG (Generalized Ordered-Descendant
// Directed Acyclic Graph) of Sperberg-McQueen and Huitfeldt, the data model
// the paper uses for multihierarchical document-centric XML.
//
// A GODDAG document has:
//
//   - one character Content shared by all hierarchies,
//   - one sequence of Leaves: the finest division of the content induced
//     by markup boundaries from *all* hierarchies,
//   - one Root shared by all hierarchies, and
//   - one element tree per concurrent hierarchy, whose text nodes are the
//     shared leaves.
//
// Because leaves are shared, a leaf has several parents — one per
// hierarchy — and navigation can switch hierarchies through the root or
// through leaves, exactly as described in §3 of the paper.
//
// This implementation is a *restricted* GODDAG: every element dominates a
// contiguous interval of leaves, which is true of any structure derived
// from in-line or standoff markup ranges.
//
// # Concurrency and mutation
//
// A Document may be read — navigated, queried, exported — from any
// number of goroutines at once: the lazily built derived indexes
// (element cache, span index, ordinal numbering, name index) serialize
// their rebuilds on an internal mutex. Mutating operations
// (InsertElement, RemoveElement, InsertText, DeleteText, Compact,
// BulkBuilder.Append, ...) require exclusive access: they must not run
// concurrently with each other or with readers. Serving layers
// (internal/catalog) enforce this with a per-document RW lock.
//
// Documents are editable after load. InsertElement and RemoveElement
// repair the live derived indexes in place (splice + local renumber, see
// repair.go), so an edit costs O(affected suffix) integer writes instead
// of a from-scratch rebuild, and queries issued right after an edit see
// warm indexes. Attribute edits never touch the indexes. Text edits
// (InsertText, DeleteText) and Compact move content coordinates under
// every element at once and fall back to invalidate-and-rebuild.
// Results handed out by the index accessors (Elements, ElementsNamed,
// Ordinals, ...) are snapshots that remain internally consistent only
// until the next mutation; re-fetch them after editing.
package goddag

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/document"
)

// NodeKind discriminates the three node types of a GODDAG.
type NodeKind int

// The node kinds.
const (
	KindRoot NodeKind = iota
	KindElement
	KindLeaf
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindElement:
		return "element"
	case KindLeaf:
		return "leaf"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a GODDAG node: the root, an element, or a text leaf.
type Node interface {
	// Kind reports the node type.
	Kind() NodeKind
	// Span is the content interval the node dominates. The root spans
	// the whole content; a leaf spans its fragment.
	Span() document.Span
	// Text returns the content dominated by the node.
	Text() string
	// Document returns the owning document.
	Document() *Document

	isNode()
}

// Attr is a name/value attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Document is a GODDAG document: shared content and leaves plus one
// element tree per hierarchy, all united at a single root.
type Document struct {
	content *document.Content
	part    *document.Partition
	root    *Root
	rootTag string
	hiers   map[string]*Hierarchy
	order   []string // hierarchy insertion order
	seq     int      // element insertion counter, for stable ordering

	// Derived-index caches: Elements() and the query-path indexes are hot
	// in evaluation, so the sorted cross-hierarchy element list, the span
	// interval index, the ordinal numbering, and the name index are all
	// cached and stamped with a version counter advanced on every
	// structural mutation. Element insertions and removals *repair* live
	// caches in place (see repair.go) so an editing workload never pays a
	// from-scratch rebuild; text edits, Compact, and bulk loads invalidate
	// them for the next lazy rebuild.
	//
	// mu serializes the lazy cache (re)builds, making *read-only* use of
	// a document — including concurrent query evaluation — safe from
	// multiple goroutines. Structural and text mutations are NOT
	// goroutine-safe and must not run concurrently with readers.
	mu           sync.Mutex
	version      uint64
	noRepair     bool // disable in-place index repair (SetIncrementalRepair)
	elemCache    []*Element
	elemCacheVer uint64
	spanIdx      *spanIndex
	spanIdxVer   uint64
	ordIdx       *Ordinals
	ordVer       uint64
	nameIdx      map[string][]*Element
	nameIdxVer   uint64

	// Lazy-materialization state (view.go). A document opened from a
	// mapped v3 store file carries a DocView; the element layer and the
	// derived indexes build from its columnar image on first touch
	// (viewPending flips false), and the first mutation promotes the
	// index arrays off the read-only backing (viewAliased/viewPromoted).
	// keepalive pins the backing mapping for the document's lifetime and
	// is inherited by clones, whose strings alias it.
	view          *DocView
	viewPending   atomic.Bool
	viewErr       error
	viewAliased   bool
	viewPromoted  atomic.Bool
	residentBytes atomic.Int64
	keepalive     any
}

// bump invalidates derived caches after a structural mutation that moves
// content coordinates wholesale (text edits, Compact, bulk loads); the
// next read rebuilds them from scratch. Element-level mutations go
// through finishInsert/finishRemove instead, which patch live caches in
// place.
func (d *Document) bump() { d.version++ }

// Version reports the document's mutation counter. Derived snapshots
// keyed on a (document, version) pair — the xpath planner's cached plans,
// for instance — stay valid exactly while the version is unchanged.
func (d *Document) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// New creates a document over the given character content with the given
// root element tag (all hierarchies of a concurrent document share the
// same root; paper §3).
func New(rootTag, content string) *Document {
	d := &Document{
		content: document.NewContent(content),
		rootTag: rootTag,
		hiers:   make(map[string]*Hierarchy),
	}
	d.part = document.NewPartition(d.content.Len())
	d.root = &Root{doc: d}
	return d
}

// RootTag returns the shared root element tag.
func (d *Document) RootTag() string { return d.rootTag }

// Root returns the shared root node.
func (d *Document) Root() *Root { return d.root }

// Content returns the document's character content.
func (d *Document) Content() *document.Content { return d.content }

// Partition exposes the leaf partition (read-mostly; mutate only through
// document operations).
func (d *Document) Partition() *document.Partition {
	d.ensure()
	return d.part
}

// AddHierarchy registers a new concurrent hierarchy (one per DTD in the
// concurrent markup hierarchy; paper §3) and returns it. Adding an
// existing name returns the existing hierarchy.
func (d *Document) AddHierarchy(name string) *Hierarchy {
	if h, ok := d.hiers[name]; ok {
		return h
	}
	h := &Hierarchy{doc: d, name: name}
	d.hiers[name] = h
	d.order = append(d.order, name)
	// An element-free hierarchy contributes nothing to the derived
	// indexes; keep live caches valid.
	d.retainCaches()
	return h
}

// Hierarchy returns the named hierarchy, or nil.
func (d *Document) Hierarchy(name string) *Hierarchy { return d.hiers[name] }

// RemoveHierarchy deletes an *empty* hierarchy, reporting whether it was
// removed. Hierarchies that still hold elements are not removed.
func (d *Document) RemoveHierarchy(name string) bool {
	d.ensure() // h.n is 0 until the view materializes
	h, ok := d.hiers[name]
	if !ok || h.n != 0 {
		return false
	}
	delete(d.hiers, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	// Only empty hierarchies are removable, so the indexes are untouched.
	d.retainCaches()
	return true
}

// Hierarchies returns all hierarchies in creation order.
func (d *Document) Hierarchies() []*Hierarchy {
	out := make([]*Hierarchy, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.hiers[n])
	}
	return out
}

// HierarchyNames returns hierarchy names in creation order.
func (d *Document) HierarchyNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// NumLeaves returns the current number of text leaves.
func (d *Document) NumLeaves() int {
	d.ensure()
	return d.part.NumLeaves()
}

// Leaf returns the i-th leaf handle.
func (d *Document) Leaf(i int) Leaf {
	d.ensure()
	if i < 0 || i >= d.part.NumLeaves() {
		panic(fmt.Sprintf("goddag: leaf index %d out of range [0,%d)", i, d.part.NumLeaves()))
	}
	return Leaf{doc: d, idx: i}
}

// Leaves returns all leaf handles in content order.
func (d *Document) Leaves() []Leaf {
	d.ensure()
	out := make([]Leaf, d.part.NumLeaves())
	for i := range out {
		out[i] = Leaf{doc: d, idx: i}
	}
	return out
}

// LeafAt returns the leaf containing byte offset pos.
func (d *Document) LeafAt(pos int) Leaf {
	d.ensure()
	return Leaf{doc: d, idx: d.part.LeafAt(pos)}
}

// Elements returns every element of every hierarchy in document order.
// The result is cached until the next structural mutation; callers must
// not modify it.
func (d *Document) Elements() []*Element {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.elementsLocked()
}

// elementsLocked is Elements with d.mu held.
func (d *Document) elementsLocked() []*Element {
	d.ensureLocked()
	if d.elemCache != nil && d.elemCacheVer == d.version {
		return d.elemCache
	}
	out := make([]*Element, 0, 16)
	for _, name := range d.order {
		// walkElements, not Elements: d.mu is held here and Elements
		// takes it to probe the ordinal index.
		out = append(out, d.hiers[name].walkElements()...)
	}
	sortElements(out)
	d.elemCache = out
	d.elemCacheVer = d.version
	return out
}

// ElementsNamed returns every element with the given tag across all
// hierarchies, in document order, served by a lazily built name index
// (one map from tag to its document-ordered element list, rebuilt after
// structural mutations). Callers must not modify the result.
func (d *Document) ElementsNamed(tag string) []*Element {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureLocked()
	if d.nameIdx == nil || d.nameIdxVer != d.version {
		els := d.elementsLocked()
		idx := make(map[string][]*Element)
		for _, e := range els {
			idx[e.name] = append(idx[e.name], e)
		}
		d.nameIdx, d.nameIdxVer = idx, d.version
	}
	return d.nameIdx[tag]
}

// sortElements orders elements in document order: by start offset, wider
// spans first, then by insertion sequence (stable for empty elements and
// equal spans, and deterministic across hierarchies).
func sortElements(es []*Element) {
	sort.SliceStable(es, func(i, j int) bool {
		c := document.CompareSpans(es[i].span, es[j].span)
		if c != 0 {
			return c < 0
		}
		return es[i].seq < es[j].seq
	})
}

// Root is the single root node shared by all hierarchy trees.
type Root struct {
	doc *Document
}

// Kind returns KindRoot.
func (r *Root) Kind() NodeKind { return KindRoot }

// Span covers the entire content.
func (r *Root) Span() document.Span {
	return document.NewSpan(0, r.doc.content.Len())
}

// Text returns the entire document content.
func (r *Root) Text() string { return r.doc.content.String() }

// Document returns the owning document.
func (r *Root) Document() *Document { return r.doc }

func (r *Root) isNode() {}

// Name returns the root element tag.
func (r *Root) Name() string { return r.doc.rootTag }

// Children returns the root's children in hierarchy h: the top-level
// elements of h interleaved with the leaves not covered by any of them.
func (r *Root) Children(h *Hierarchy) []Node {
	r.doc.ensure()
	return childNodes(r.doc, r.Span(), h.top)
}

// Leaf is a handle on the i-th text leaf. Leaves are shared by all
// hierarchies; they are identified by index, so handles stay cheap and
// remain valid as long as the document is not structurally mutated.
type Leaf struct {
	doc *Document
	idx int
}

// Kind returns KindLeaf.
func (l Leaf) Kind() NodeKind { return KindLeaf }

// Index returns the leaf's position in the leaf sequence.
func (l Leaf) Index() int { return l.idx }

// Span returns the content interval of the leaf.
func (l Leaf) Span() document.Span { return l.doc.part.LeafSpan(l.idx) }

// Text returns the leaf's content fragment.
func (l Leaf) Text() string { return l.doc.content.Slice(l.Span()) }

// Document returns the owning document.
func (l Leaf) Document() *Document { return l.doc }

func (l Leaf) isNode() {}

// Parent returns the leaf's parent in hierarchy h: the innermost element
// of h dominating the leaf, or the root if no element of h covers it.
func (l Leaf) Parent(h *Hierarchy) Node {
	if e := h.innermostCovering(l.Span()); e != nil {
		return e
	}
	return l.doc.root
}

// Parents returns the leaf's parents across all hierarchies, one node per
// hierarchy in hierarchy creation order. This is the multi-parent edge set
// that makes the GODDAG a DAG rather than a tree.
func (l Leaf) Parents() []Node {
	out := make([]Node, 0, len(l.doc.order))
	for _, name := range l.doc.order {
		out = append(out, l.Parent(l.doc.hiers[name]))
	}
	return out
}

// Next returns the following leaf and ok=false at the last leaf.
func (l Leaf) Next() (Leaf, bool) {
	if l.idx+1 >= l.doc.part.NumLeaves() {
		return Leaf{}, false
	}
	return Leaf{doc: l.doc, idx: l.idx + 1}, true
}

// Prev returns the preceding leaf and ok=false at the first leaf.
func (l Leaf) Prev() (Leaf, bool) {
	if l.idx == 0 {
		return Leaf{}, false
	}
	return Leaf{doc: l.doc, idx: l.idx - 1}, true
}
