package goddag

import "repro/internal/document"

// spanIndex is a static interval index over the document's elements: the
// elements sorted by start offset, augmented with a segment tree of
// maximum span ends. Intersection-style queries prune whole subtrees
// whose spans end before the query starts and stop at the first start
// past the query end, giving O(log n + answers) lookups instead of a
// linear scan — the "indexing" direction the paper lists as ongoing
// work, applied to the in-memory GODDAG.
//
// The index is rebuilt lazily alongside the element cache and shares its
// version stamp.
type spanIndex struct {
	els    []*Element
	maxEnd []int // segment tree, node i covers a range of els
}

// buildSpanIndex builds the tree. els must be sorted by span start,
// which document order guarantees.
func buildSpanIndex(els []*Element) *spanIndex {
	return rebuildSpanIndex(els, nil)
}

// rebuildSpanIndex builds the tree, reusing old's segment-tree array
// when it is large enough — the edit path rebuilds the index on every
// element insertion/removal, and reallocating 4n ints per edit would
// dominate the repair cost (see repair.go). old (when non-nil) is
// mutated and returned; per the mutation contract no reader runs
// concurrently.
func rebuildSpanIndex(els []*Element, old *spanIndex) *spanIndex {
	ix := old
	if ix == nil {
		ix = &spanIndex{}
	}
	ix.els = els
	if len(els) == 0 {
		ix.maxEnd = ix.maxEnd[:0]
		return ix
	}
	if n := 4 * len(els); cap(ix.maxEnd) >= n {
		ix.maxEnd = ix.maxEnd[:n]
	} else {
		// Headroom beyond 4n so a run of insertions reallocates rarely.
		ix.maxEnd = make([]int, n, n+n/2)
	}
	ix.build(1, 0, len(els))
	return ix
}

func (ix *spanIndex) build(node, lo, hi int) int {
	if hi-lo == 1 {
		ix.maxEnd[node] = ix.els[lo].span.End
		return ix.maxEnd[node]
	}
	mid := (lo + hi) / 2
	l := ix.build(2*node, lo, mid)
	r := ix.build(2*node+1, mid, hi)
	if l > r {
		ix.maxEnd[node] = l
	} else {
		ix.maxEnd[node] = r
	}
	return ix.maxEnd[node]
}

// visitIntersecting calls emit, in document order, for every element
// whose span satisfies Start < sp.End && End > sp.Start — the candidate
// superset for intersection, containment, and proper-overlap tests.
// emit returning false stops the traversal, so existence-style probes
// pay only for the first witness.
func (ix *spanIndex) visitIntersecting(sp document.Span, emit func(*Element) bool) {
	if len(ix.els) == 0 || sp.End <= sp.Start {
		return
	}
	ix.visit(1, 0, len(ix.els), sp, emit)
}

func (ix *spanIndex) visit(node, lo, hi int, sp document.Span, emit func(*Element) bool) bool {
	// Prune: every span in this subtree ends at or before sp.Start.
	if ix.maxEnd[node] <= sp.Start {
		return true
	}
	// Prune: every span in this subtree starts at or after sp.End
	// (elements are sorted by start).
	if ix.els[lo].span.Start >= sp.End {
		return true
	}
	if hi-lo == 1 {
		e := ix.els[lo]
		if e.span.Start < sp.End && e.span.End > sp.Start {
			return emit(e)
		}
		return true
	}
	mid := (lo + hi) / 2
	if !ix.visit(2*node, lo, mid, sp, emit) {
		return false
	}
	return ix.visit(2*node+1, mid, hi, sp, emit)
}

// VisitIntersecting calls visit, in document order, for every element
// whose span intersects sp, stopping early when visit returns false.
// It is the non-materializing form of ElementsIntersecting: the xpath
// planner's reversed overlap semi-join probes it per candidate, and an
// early-exiting probe costs O(log n) when a witness exists.
func (d *Document) VisitIntersecting(sp document.Span, visit func(*Element) bool) {
	d.index().visitIntersecting(sp, visit)
}

// index returns the document's span index, rebuilding it when stale.
func (d *Document) index() *spanIndex {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureLocked()
	if d.spanIdx != nil && d.spanIdxVer == d.version {
		return d.spanIdx
	}
	d.spanIdx = buildSpanIndex(d.elementsLocked())
	d.spanIdxVer = d.version
	return d.spanIdx
}
