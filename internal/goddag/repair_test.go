package goddag

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/document"
)

// elemKey identifies an element across document copies: Clone preserves
// hierarchy, tag, span, and insertion sequence.
func elemKey(e *Element) string {
	return fmt.Sprintf("%s:%s%v#%d", e.hier.name, e.name, e.span, e.seq)
}

// assertIndexesEqualRebuild holds every live derived index of d — which
// may have been repaired in place any number of times — against a
// from-scratch rebuild on a cold clone.
func assertIndexesEqualRebuild(t *testing.T, d *Document) {
	t.Helper()
	if err := d.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	ref := d.Clone()
	ref.Warm()

	els, rels := d.Elements(), ref.Elements()
	if len(els) != len(rels) {
		t.Fatalf("element cache length %d != rebuilt %d", len(els), len(rels))
	}
	for i := range els {
		if elemKey(els[i]) != elemKey(rels[i]) {
			t.Fatalf("element cache[%d]: %s != rebuilt %s", i, elemKey(els[i]), elemKey(rels[i]))
		}
	}

	ord, rord := d.Ordinals(), ref.Ordinals()
	if ord.Len() != rord.Len() {
		t.Fatalf("ordinal space %d != rebuilt %d", ord.Len(), rord.Len())
	}
	for i := range els {
		if els[i].ord != rels[i].ord {
			t.Fatalf("ord of %s: %d != rebuilt %d", elemKey(els[i]), els[i].ord, rels[i].ord)
		}
	}
	if len(ord.leafOrd) != len(rord.leafOrd) {
		t.Fatalf("leafOrd length %d != rebuilt %d", len(ord.leafOrd), len(rord.leafOrd))
	}
	for i := range ord.leafOrd {
		if ord.leafOrd[i] != rord.leafOrd[i] {
			t.Fatalf("leafOrd[%d] = %d != rebuilt %d", i, ord.leafOrd[i], rord.leafOrd[i])
		}
	}
	for i := range ord.byOrd {
		if ord.byOrd[i] != rord.byOrd[i] {
			t.Fatalf("byOrd[%d] = %d != rebuilt %d", i, ord.byOrd[i], rord.byOrd[i])
		}
	}
	if len(ord.empty) != len(rord.empty) {
		t.Fatalf("milestone list length %d != rebuilt %d", len(ord.empty), len(rord.empty))
	}
	for i := range ord.empty {
		if elemKey(ord.empty[i]) != elemKey(rord.empty[i]) {
			t.Fatalf("milestones[%d]: %s != rebuilt %s", i, elemKey(ord.empty[i]), elemKey(rord.empty[i]))
		}
	}

	// Pre-order arrays and subtree intervals, per hierarchy.
	for _, name := range d.HierarchyNames() {
		h, rh := d.Hierarchy(name), ref.Hierarchy(name)
		if len(h.pre) != len(rh.pre) {
			t.Fatalf("hierarchy %q pre length %d != rebuilt %d", name, len(h.pre), len(rh.pre))
		}
		for i := range h.pre {
			e, re := h.pre[i], rh.pre[i]
			if elemKey(e) != elemKey(re) || e.preIdx != re.preIdx || e.preEnd != re.preEnd {
				t.Fatalf("hierarchy %q pre[%d]: %s [%d,%d) != rebuilt %s [%d,%d)",
					name, i, elemKey(e), e.preIdx, e.preEnd, elemKey(re), re.preIdx, re.preEnd)
			}
		}
	}

	// Name index, over the union of tags.
	tags := map[string]bool{"never-used": true}
	for _, e := range rels {
		tags[e.name] = true
	}
	for tag := range tags {
		a, b := d.ElementsNamed(tag), ref.ElementsNamed(tag)
		if len(a) != len(b) {
			t.Fatalf("ElementsNamed(%q): %d != rebuilt %d", tag, len(a), len(b))
		}
		for i := range a {
			if elemKey(a[i]) != elemKey(b[i]) {
				t.Fatalf("ElementsNamed(%q)[%d]: %s != rebuilt %s", tag, i, elemKey(a[i]), elemKey(b[i]))
			}
		}
	}

	// Span index: the segment tree is a deterministic function of the
	// element cache; compare query results over probe spans.
	n := d.Content().Len()
	probes := []document.Span{{Start: 0, End: n}}
	rng := rand.New(rand.NewSource(int64(len(els))))
	for i := 0; i < 8 && n > 1; i++ {
		lo := rng.Intn(n - 1)
		probes = append(probes, document.NewSpan(lo, lo+1+rng.Intn(n-lo-1)))
	}
	for _, sp := range probes {
		a, b := d.ElementsIntersecting(sp), ref.ElementsIntersecting(sp)
		if len(a) != len(b) {
			t.Fatalf("ElementsIntersecting(%v): %d != rebuilt %d", sp, len(a), len(b))
		}
		for i := range a {
			if elemKey(a[i]) != elemKey(b[i]) {
				t.Fatalf("ElementsIntersecting(%v)[%d] differs", sp, i)
			}
		}
		a, b = d.ElementsOverlapping(sp), ref.ElementsOverlapping(sp)
		if len(a) != len(b) {
			t.Fatalf("ElementsOverlapping(%v): %d != rebuilt %d", sp, len(a), len(b))
		}
	}
}

// indexesLive reports whether the four derived caches are all
// version-current (i.e. the last mutation repaired rather than
// invalidated them).
func (d *Document) indexesLive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.elemCache != nil && d.elemCacheVer == d.version &&
		d.spanIdx != nil && d.spanIdxVer == d.version &&
		d.ordIdx != nil && d.ordVer == d.version &&
		d.nameIdx != nil && d.nameIdxVer == d.version
}

// TestRepairDifferential drives random edit sequences — element inserts
// (including milestones and equal-span wrappers), removals, attribute
// edits, and occasional text edits — against warm indexes and checks
// after every operation that the repaired indexes are identical to a
// from-scratch rebuild.
func TestRepairDifferential(t *testing.T) {
	tags := []string{"x", "y", "z", "m"}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d := randomDocWithMilestones(seed, 120, 2+int(seed%3), 8)
			d.Warm()
			n := d.Content().Len()
			repaired, fallbacks := 0, 0
			for op := 0; op < 60; op++ {
				wasLive := d.indexesLive()
				switch k := rng.Intn(10); {
				case k < 5: // insert, sometimes empty (milestone)
					hier := d.Hierarchies()[rng.Intn(len(d.Hierarchies()))]
					lo := rng.Intn(n + 1)
					hi := lo
					if rng.Intn(4) > 0 && lo < n {
						hi = lo + 1 + rng.Intn(n-lo)
					}
					_, err := d.InsertElement(hier, tags[rng.Intn(len(tags))], nil, document.NewSpan(lo, hi))
					var conflict *ConflictError
					if err != nil && !errors.As(err, &conflict) {
						t.Fatalf("op %d: insert: %v", op, err)
					}
				case k < 7: // remove a random element
					els := d.Elements()
					if len(els) == 0 {
						continue
					}
					if err := d.RemoveElement(els[rng.Intn(len(els))]); err != nil {
						t.Fatalf("op %d: remove: %v", op, err)
					}
				case k < 9: // attribute edits (never touch the indexes)
					els := d.Elements()
					if len(els) == 0 {
						continue
					}
					e := els[rng.Intn(len(els))]
					if rng.Intn(2) == 0 {
						e.SetAttr("k", fmt.Sprint(op))
					} else {
						e.RemoveAttr("k")
					}
				default: // text edit: full-rebuild fallback, then re-warm
					if rng.Intn(2) == 0 {
						if err := d.InsertText(rng.Intn(n+1), "ab"); err != nil {
							t.Fatalf("op %d: insert text: %v", op, err)
						}
					} else if n > 2 {
						lo := rng.Intn(n - 1)
						if err := d.DeleteText(document.NewSpan(lo, lo+1)); err != nil {
							t.Fatalf("op %d: delete text: %v", op, err)
						}
					}
					n = d.Content().Len()
					d.Warm()
				}
				if wasLive {
					if d.indexesLive() {
						repaired++
					} else {
						fallbacks++
						d.Warm()
					}
				}
				assertIndexesEqualRebuild(t, d)
			}
			// The sequences must actually exercise the repair path: the
			// rebuild fallback (text edits, rare non-contiguous adoption)
			// may occur, but in-place repair must dominate.
			if repaired < fallbacks {
				t.Fatalf("repair exercised %d times vs %d fallbacks", repaired, fallbacks)
			}
		})
	}
}

// TestRepairEqualSpanWrappers exercises the trickiest splice shape:
// repeated insertion of elements coextensive with existing ones (the
// wrapper adopts the equal-span element), plus their removal, with warm
// indexes throughout.
func TestRepairEqualSpanWrappers(t *testing.T) {
	d := randomDoc(7, 60, 2, 5)
	d.Warm()
	h := d.Hierarchy("a")
	base := d.Hierarchy("a").Elements()
	for _, e := range base {
		if _, err := d.InsertElement(h, "wrap", nil, e.Span()); err != nil {
			t.Fatalf("wrap %v: %v", e, err)
		}
		assertIndexesEqualRebuild(t, d)
	}
	if !d.indexesLive() {
		t.Fatal("equal-span wrapping fell back to full rebuilds")
	}
	// ElementsNamed hands out the live bucket, which RemoveElement splices
	// in place — copy before iterating (per the snapshot contract).
	wraps := append([]*Element(nil), d.ElementsNamed("wrap")...)
	for _, e := range wraps {
		if err := d.RemoveElement(e); err != nil {
			t.Fatalf("unwrap: %v", err)
		}
	}
	assertIndexesEqualRebuild(t, d)
}

// TestRepairRootWideAndEdges covers edge spans: whole-document elements,
// empty elements at offset 0 and at the end, and removal down to an
// empty hierarchy.
func TestRepairRootWideAndEdges(t *testing.T) {
	d := New("r", "hello brave new world")
	h := d.AddHierarchy("h")
	d.Warm()
	n := d.Content().Len()
	spans := []document.Span{
		document.NewSpan(0, n),
		document.NewSpan(0, 0),
		document.NewSpan(n, n),
		document.NewSpan(0, 5),
		document.NewSpan(6, 11),
		document.NewSpan(5, 6),
	}
	for _, sp := range spans {
		if _, err := d.InsertElement(h, "e", nil, sp); err != nil {
			t.Fatalf("insert %v: %v", sp, err)
		}
		assertIndexesEqualRebuild(t, d)
	}
	if !d.indexesLive() {
		t.Fatal("edge-span inserts fell back to full rebuilds")
	}
	for len(d.Elements()) > 0 {
		if err := d.RemoveElement(d.Elements()[0]); err != nil {
			t.Fatal(err)
		}
		assertIndexesEqualRebuild(t, d)
	}
}

// TestElementAtMatchesElements: ElementAt agrees with Elements indexing
// in both modes — counting walk on cold indexes, pre-order array when
// the ordinal index is live — including after repaired edits.
func TestElementAtMatchesElements(t *testing.T) {
	d := randomDocWithMilestones(5, 100, 3, 8)
	check := func(stage string) {
		t.Helper()
		for _, h := range d.Hierarchies() {
			els := h.Elements()
			for i := range els {
				if e, ok := h.ElementAt(i); !ok || e != els[i] {
					t.Fatalf("%s: hierarchy %q ElementAt(%d) = %v, want %v", stage, h.Name(), i, e, els[i])
				}
			}
			if _, ok := h.ElementAt(len(els)); ok {
				t.Fatalf("%s: ElementAt past the end succeeded", stage)
			}
			if _, ok := h.ElementAt(-1); ok {
				t.Fatalf("%s: ElementAt(-1) succeeded", stage)
			}
		}
	}
	check("cold")
	d.Warm()
	check("warm")
	h := d.Hierarchies()[0]
	if _, err := d.InsertElement(h, "z", nil, document.NewSpan(0, d.Content().Len())); err != nil {
		t.Fatal(err)
	}
	check("after repaired insert")
}
