package goddag

import "repro/internal/document"

// Ordinals is the dense document-order numbering of a document's nodes:
// the root is ordinal 0, and every element and leaf receives the ordinal
// of its position in the total order defined by CompareNodes. Node
// identity, equality, and document-order comparison thereby become plain
// integer operations — the numbering scheme that overlap-aware query
// processing needs (cf. the "indexing" direction the paper lists as
// ongoing work). The Extended XPath evaluator keys all of its node-set
// algebra (dedup bitsets, k-way merges, union) on these ordinals.
//
// Alongside the numbering, the same rebuild records for every element its
// half-open pre-order interval [preIdx, preEnd) within its hierarchy, so
// subtree enumeration (the descendant axis) is an O(1) slice of the
// hierarchy's pre-order array and ancestor/descendant tests are O(1)
// interval containment.
//
// An Ordinals is a snapshot: it is rebuilt lazily after a structural
// mutation (versioned like the span index) and stays internally
// consistent for as long as the document is not mutated. See the package
// comment in goddag.go for the concurrency contract.
type Ordinals struct {
	doc     *Document
	els     []*Element // the document's element cache, document order
	leafOrd []int32    // leaf index -> ordinal
	// byOrd decodes an ordinal back to its node: entry 0 is the root; a
	// positive value v is element els[v-1]; a negative value v is leaf
	// index -v-1.
	byOrd []int32
	empty []*Element // empty elements (milestones), document order
}

// Ordinals returns the document's ordinal numbering, rebuilding it (and
// the per-hierarchy pre-order ranges) when stale.
func (d *Document) Ordinals() *Ordinals {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureLocked()
	if d.ordIdx != nil && d.ordVer == d.version {
		return d.ordIdx
	}
	els := d.elementsLocked()
	o := &Ordinals{
		doc:     d,
		els:     els,
		leafOrd: make([]int32, d.part.NumLeaves()),
		byOrd:   make([]int32, 1+len(els)+d.part.NumLeaves()),
	}
	// Merge the sorted element list with the (inherently sorted) leaf
	// sequence; ties follow CompareNodes, which puts the element first.
	nl := d.part.NumLeaves()
	ord := int32(1)
	i, j := 0, 0
	for i < len(els) || j < nl {
		takeElem := j >= nl ||
			(i < len(els) && document.CompareSpans(els[i].span, d.part.LeafSpan(j)) <= 0)
		if takeElem {
			els[i].ord = ord
			o.byOrd[ord] = int32(i + 1)
			if els[i].span.IsEmpty() {
				o.empty = append(o.empty, els[i])
			}
			i++
		} else {
			o.leafOrd[j] = ord
			o.byOrd[ord] = int32(-(j + 1))
			j++
		}
		ord++
	}
	// Pre-order subtree ranges. Within one hierarchy every level is kept
	// sorted in document order, so the pre-order walk *is* document order
	// and each subtree occupies one contiguous interval of it.
	for _, name := range d.order {
		buildPreorder(d.hiers[name])
	}
	d.ordIdx, d.ordVer = o, d.version
	return o
}

func buildPreorder(h *Hierarchy) {
	pre := h.pre[:0]
	if cap(pre) < h.n {
		pre = make([]*Element, 0, h.n)
	}
	var walk func(es []*Element)
	walk = func(es []*Element) {
		for _, e := range es {
			e.preIdx = int32(len(pre))
			pre = append(pre, e)
			walk(e.children)
			e.preEnd = int32(len(pre))
		}
	}
	walk(h.top)
	h.pre = pre
}

// Len returns the number of ordinals: one per node (root, elements,
// leaves). Valid ordinals are 0..Len()-1.
func (o *Ordinals) Len() int { return len(o.byOrd) }

// Of returns the node's ordinal.
func (o *Ordinals) Of(n Node) int {
	switch v := n.(type) {
	case *Element:
		return int(v.ord)
	case Leaf:
		return int(o.leafOrd[v.idx])
	default:
		return 0 // root
	}
}

// OfElement returns an element's ordinal without the interface dispatch.
func (o *Ordinals) OfElement(e *Element) int { return int(e.ord) }

// OfLeaf returns the ordinal of the i-th leaf.
func (o *Ordinals) OfLeaf(i int) int { return int(o.leafOrd[i]) }

// Node decodes an ordinal back into its node.
func (o *Ordinals) Node(ord int) Node {
	v := o.byOrd[ord]
	switch {
	case v > 0:
		return o.els[v-1]
	case v < 0:
		return Leaf{doc: o.doc, idx: int(-v - 1)}
	default:
		return o.doc.root
	}
}

// Subtree returns e's same-hierarchy proper descendants in document
// order, as a slice of the hierarchy's precomputed pre-order array.
// Callers must not modify the result.
func (o *Ordinals) Subtree(e *Element) []*Element {
	return e.hier.pre[e.preIdx+1 : e.preEnd]
}

// InSubtree reports in O(1) whether c is a proper descendant of e within
// e's hierarchy.
func (o *Ordinals) InSubtree(c, e *Element) bool {
	return c.hier == e.hier && e.preIdx < c.preIdx && c.preIdx < e.preEnd
}

// EmptyElements returns the document's empty elements (milestones) in
// document order. Callers must not modify the result. The span interval
// index never reports empty spans, so axes whose definitions include
// milestones (covered) merge this list with the index's candidates.
func (o *Ordinals) EmptyElements() []*Element { return o.empty }
