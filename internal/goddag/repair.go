package goddag

import (
	"sort"

	"repro/internal/document"
)

// Incremental index repair.
//
// The derived indexes (element cache, span interval index, ordinal
// numbering with per-hierarchy pre-order arrays, name index) used to be
// invalidated wholesale by every structural mutation and rebuilt from
// scratch on the next read — acceptable while documents were parse-once
// query-forever, but ruinous for an editing workload where every
// InsertElement/RemoveElement is followed by a query or a prevalidation
// pass over the repaired structure.
//
// This file patches the live indexes in place instead:
//
//   - the element cache and the name-index bucket of the affected tag are
//     spliced (one binary search + one memmove each),
//   - the mutated hierarchy's pre-order array is spliced and the
//     [preIdx, preEnd) subtree intervals shifted locally (the ancestors'
//     intervals grow or shrink by one; everything after the splice point
//     slides by one),
//   - the ordinal numbering is renumbered locally: ordinals strictly
//     before the first affected node keep their values, and one merge
//     pass reassigns the suffix — O(affected suffix) integer writes with
//     no sorting and no map churn,
//   - the span index segment tree is rebuilt over the patched element
//     cache (pure integer writes, no comparisons).
//
// Repair applies only to caches that are *live* (version-current) at the
// time of the mutation; stale or unbuilt caches stay stale and rebuild
// lazily as before. Text edits (InsertText, DeleteText), Compact, and
// bulk loading keep the bump-and-rebuild path: they move content
// coordinates under every element at once, so a full rebuild is the
// honest cost. Attribute edits never touch the indexes at all.
//
// SetIncrementalRepair(false) restores bump-and-rebuild for every
// mutation; the differential tests and cxbench -exp edit use it to hold
// the repaired indexes against from-scratch rebuilds.

// SetIncrementalRepair toggles in-place index repair after structural
// mutations (default enabled). With repair off, every mutation
// invalidates the derived indexes and the next read rebuilds them from
// scratch — the pre-repair behaviour, kept for differential testing and
// benchmarking.
func (d *Document) SetIncrementalRepair(on bool) { d.noRepair = !on }

// cutSpanBorders establishes leaf boundaries at the span borders. It
// returns the index — in the pre-cut leaf numbering — of the first leaf
// whose span changed, or -1 when both borders were already boundaries.
func (d *Document) cutSpanBorders(span document.Span) (firstLeaf int) {
	firstLeaf = -1
	i1, split1 := d.part.Cut(span.Start)
	if split1 {
		firstLeaf = i1 - 1
	}
	i2, split2 := d.part.Cut(span.End)
	if split2 && firstLeaf < 0 {
		// The first cut did not split, so the second cut's index needs
		// no adjustment to be in pre-cut numbering.
		firstLeaf = i2 - 1
	}
	return firstLeaf
}

// leafAfterSpan returns the index of the first leaf sorting at or after
// span in document order (NumLeaves() when none). Leaves are disjoint
// and ascending, so the predicate is monotone. Must be called before the
// span's borders are cut.
func (d *Document) leafAfterSpan(span document.Span) int {
	nl := d.part.NumLeaves()
	return sort.Search(nl, func(k int) bool {
		return document.CompareSpans(span, d.part.LeafSpan(k)) <= 0
	})
}

// finishInsert completes InsertElement: it either patches the live
// derived indexes around the freshly inserted element or, when repair is
// off or the caches are already stale, leaves them invalidated for the
// next lazy rebuild. firstLeaf comes from cutSpanBorders and leafAfter
// from leafAfterSpan, both in the pre-cut leaf numbering.
func (d *Document) finishInsert(el *Element, adopted []*Element, firstLeaf, leafAfter int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.version
	d.version++
	if d.noRepair || d.elemCache == nil || d.elemCacheVer != old {
		return
	}
	ordLive := d.ordIdx != nil && d.ordVer == old
	// The pre-order splice assumes the adopted children occupied one
	// contiguous run of the hierarchy's pre-order array. The one shape
	// where they do not — a milestone adopted from beyond a touching,
	// non-adopted sibling — falls back to the full rebuild.
	if ordLive && !adoptionContiguous(adopted) {
		return
	}
	i0 := d.spliceElementIn(el)
	d.elemCacheVer = d.version
	if d.nameIdx != nil && d.nameIdxVer == old {
		d.nameSpliceIn(el)
		d.nameIdxVer = d.version
	}
	if ordLive {
		preorderSpliceIn(el, adopted)
		d.ordIdx.renumberInsert(i0, firstLeaf, leafAfter)
		if el.span.IsEmpty() {
			d.ordIdx.emptySpliceIn(el)
		}
		d.ordVer = d.version
	}
	if d.spanIdx != nil && d.spanIdxVer == old {
		d.spanIdx = rebuildSpanIndex(d.elemCache, d.spanIdx)
		d.spanIdxVer = d.version
	}
}

// finishRemove completes RemoveElement. It must run while el's parent
// link is still intact (the pre-order repair walks the ancestor chain).
// orderPreserved reports whether hoisting el's children kept the sibling
// list in document order; when it did not, the hierarchy's pre-order is
// no longer the old one minus el and repair falls back to a rebuild.
func (d *Document) finishRemove(el *Element, orderPreserved bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.version
	d.version++
	if d.noRepair || d.elemCache == nil || d.elemCacheVer != old {
		return
	}
	if !orderPreserved {
		return
	}
	ordLive := d.ordIdx != nil && d.ordVer == old
	if ordLive {
		if el.span.IsEmpty() {
			d.ordIdx.emptySpliceOut(el)
		}
		preorderSpliceOut(el)
	}
	i0 := d.spliceElementOut(el)
	if i0 < 0 {
		// Not found — should be impossible; drop to a full rebuild.
		d.elemCache = nil
		return
	}
	d.elemCacheVer = d.version
	if d.nameIdx != nil && d.nameIdxVer == old {
		d.nameSpliceOut(el)
		d.nameIdxVer = d.version
	}
	if ordLive {
		d.ordIdx.renumberRemove(el, i0)
		d.ordVer = d.version
	}
	if d.spanIdx != nil && d.spanIdxVer == old {
		d.spanIdx = rebuildSpanIndex(d.elemCache, d.spanIdx)
		d.spanIdxVer = d.version
	}
}

// retainCaches advances the version while keeping every live derived
// cache valid — for mutations that change no indexed state (adding or
// removing an element-free hierarchy).
func (d *Document) retainCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.version
	d.version++
	if d.noRepair {
		return
	}
	if d.elemCache != nil && d.elemCacheVer == old {
		d.elemCacheVer = d.version
	}
	if d.spanIdx != nil && d.spanIdxVer == old {
		d.spanIdxVer = d.version
	}
	if d.ordIdx != nil && d.ordVer == old {
		d.ordVer = d.version
	}
	if d.nameIdx != nil && d.nameIdxVer == old {
		d.nameIdxVer = d.version
	}
}

// spliceElementIn inserts el at its document-order position in the
// element cache and returns that index. elementLess is a total order
// (seq breaks all ties), so the position is unique.
func (d *Document) spliceElementIn(el *Element) int {
	cache := d.elemCache
	i := sort.Search(len(cache), func(k int) bool { return elementLess(el, cache[k]) })
	cache = append(cache, nil)
	copy(cache[i+1:], cache[i:])
	cache[i] = el
	d.elemCache = cache
	return i
}

// spliceElementOut removes el from the element cache, returning the index
// it occupied (-1 when absent).
func (d *Document) spliceElementOut(el *Element) int {
	cache := d.elemCache
	i := sort.Search(len(cache), func(k int) bool { return !elementLess(cache[k], el) })
	if i >= len(cache) || cache[i] != el {
		return -1
	}
	copy(cache[i:], cache[i+1:])
	cache[len(cache)-1] = nil
	d.elemCache = cache[:len(cache)-1]
	return i
}

// nameSpliceIn inserts el into its tag's name-index bucket in document
// order.
func (d *Document) nameSpliceIn(el *Element) {
	bucket := d.nameIdx[el.name]
	i := sort.Search(len(bucket), func(k int) bool { return elementLess(el, bucket[k]) })
	bucket = append(bucket, nil)
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = el
	d.nameIdx[el.name] = bucket
}

// nameSpliceOut removes el from its tag's name-index bucket.
func (d *Document) nameSpliceOut(el *Element) {
	bucket := d.nameIdx[el.name]
	i := sort.Search(len(bucket), func(k int) bool { return !elementLess(bucket[k], el) })
	if i >= len(bucket) || bucket[i] != el {
		return
	}
	copy(bucket[i:], bucket[i+1:])
	bucket[len(bucket)-1] = nil
	d.nameIdx[el.name] = bucket[:len(bucket)-1]
}

// adoptionContiguous reports whether the adopted children (document
// order) occupy one contiguous run of their hierarchy's pre-order array.
// Valid only while the ordinal index is live.
func adoptionContiguous(adopted []*Element) bool {
	if len(adopted) == 0 {
		return true
	}
	var size int32
	for _, a := range adopted {
		size += a.preEnd - a.preIdx
	}
	return size == adopted[len(adopted)-1].preEnd-adopted[0].preIdx
}

// preorderSpliceIn inserts el into its hierarchy's pre-order array:
// immediately before its first adopted child, or after its preceding
// sibling's subtree when childless. Subtree intervals after the splice
// point slide right by one; ancestor intervals grow by one.
func preorderSpliceIn(el *Element, adopted []*Element) {
	h := el.hier
	var p, size int32
	if len(adopted) > 0 {
		first, last := adopted[0], adopted[len(adopted)-1]
		p = first.preIdx
		size = last.preEnd - first.preIdx
	} else {
		p = preorderLeafPos(el)
	}
	pre := append(h.pre, nil)
	copy(pre[p+1:], pre[p:])
	pre[p] = el
	for _, e := range pre[p+1:] {
		e.preIdx++
		e.preEnd++
	}
	h.pre = pre
	el.preIdx = p
	el.preEnd = p + 1 + size
	for a := el.parent; a != nil; a = a.parent {
		a.preEnd++
	}
}

// preorderLeafPos locates the pre-order position of a freshly inserted
// childless element, which is already linked into its sibling list.
func preorderLeafPos(el *Element) int32 {
	sibs := el.hier.top
	if el.parent != nil {
		sibs = el.parent.children
	}
	c := sort.Search(len(sibs), func(k int) bool { return !elementLess(sibs[k], el) })
	for c < len(sibs) && sibs[c] != el {
		c++
	}
	if c > 0 {
		return sibs[c-1].preEnd
	}
	if el.parent != nil {
		return el.parent.preIdx + 1
	}
	return 0
}

// preorderSpliceOut removes el from its hierarchy's pre-order array. Its
// children (already adopted by el's parent, in place) stay where they
// are; intervals after the splice point slide left, ancestors shrink by
// one. Must run while el.parent is still set.
func preorderSpliceOut(el *Element) {
	h := el.hier
	p := int(el.preIdx)
	pre := h.pre
	copy(pre[p:], pre[p+1:])
	pre[len(pre)-1] = nil
	pre = pre[:len(pre)-1]
	for _, e := range pre[p:] {
		e.preIdx--
		e.preEnd--
	}
	h.pre = pre
	for a := el.parent; a != nil; a = a.parent {
		a.preEnd--
	}
}

// renumberInsert reassigns ordinals after a splice of the element cache
// at index i0. firstLeaf is the first leaf (pre-cut numbering) whose
// span a border cut changed (-1 for none); leafAfter is the first leaf
// (pre-cut numbering) sorting at or after the new element. Ordinals
// strictly before the first affected node keep their values; one merge
// pass over the suffix reassigns the rest.
func (o *Ordinals) renumberInsert(i0, firstLeaf, leafAfter int) {
	d := o.doc
	o.els = d.elemCache
	els := o.els
	// The smallest ordinal whose assignment may change: that of the
	// element the splice displaced, of the first leaf a border cut
	// changed (its shrink can reorder it against same-start elements), or
	// of the first leaf the new element's own ordinal displaces.
	fromOrd := len(o.byOrd) // pure append: next fresh ordinal
	if i0+1 < len(els) {
		fromOrd = int(els[i0+1].ord)
	}
	if firstLeaf >= 0 && firstLeaf < len(o.leafOrd) && int(o.leafOrd[firstLeaf]) < fromOrd {
		fromOrd = int(o.leafOrd[firstLeaf])
	}
	if leafAfter >= 0 && leafAfter < len(o.leafOrd) && int(o.leafOrd[leafAfter]) < fromOrd {
		fromOrd = int(o.leafOrd[leafAfter])
	}
	// Merge cursors: the first element (excluding el, whose ordinal is not
	// yet assigned) and first leaf at or past fromOrd. Both prefixes keep
	// their old, ascending ordinals, so binary search applies.
	i := sort.Search(i0, func(k int) bool { return int(els[k].ord) >= fromOrd })
	j := sort.Search(len(o.leafOrd), func(k int) bool { return int(o.leafOrd[k]) >= fromOrd })
	nl := d.part.NumLeaves()
	o.leafOrd = resizeInt32(o.leafOrd, j, nl)
	o.byOrd = resizeInt32(o.byOrd, fromOrd, 1+len(els)+nl)
	o.mergeFrom(i, j, fromOrd)
}

// renumberRemove reassigns ordinals after el was spliced out of the
// element cache at index i0. The leaf partition is untouched by element
// removal, so only ordinals at or past el's old ordinal shift.
func (o *Ordinals) renumberRemove(el *Element, i0 int) {
	d := o.doc
	o.els = d.elemCache
	fromOrd := int(el.ord)
	j := sort.Search(len(o.leafOrd), func(k int) bool { return int(o.leafOrd[k]) >= fromOrd })
	o.byOrd[len(o.byOrd)-1] = 0
	o.byOrd = o.byOrd[:len(o.byOrd)-1]
	o.mergeFrom(i0, j, fromOrd)
}

// mergeFrom runs the element/leaf document-order merge from element
// cursor i, leaf cursor j, and ordinal ord — the tail of the same merge
// the full Ordinals rebuild performs, with the CompareSpans-against-
// LeafSpan comparison inlined over the partition's raw start offsets
// (this loop dominates the cost of an edit on a large document).
func (o *Ordinals) mergeFrom(i, j, ord int) {
	d := o.doc
	els := o.els
	starts := d.part.StartsView()
	nl := len(starts)
	length := d.part.Len()
	for i < len(els) || j < nl {
		var takeElem bool
		switch {
		case j >= nl:
			takeElem = true
		case i >= len(els):
			takeElem = false
		default:
			// Element first when CompareSpans(elem, leaf) <= 0: earlier
			// start, or same start and at-least-as-wide (wider first,
			// ties take the element).
			ls := starts[j]
			le := length
			if j+1 < nl {
				le = starts[j+1]
			}
			es := els[i].span
			takeElem = es.Start < ls || (es.Start == ls && es.End >= le)
		}
		if takeElem {
			els[i].ord = int32(ord)
			o.byOrd[ord] = int32(i + 1)
			i++
		} else {
			o.leafOrd[j] = int32(ord)
			o.byOrd[ord] = int32(-(j + 1))
			j++
		}
		ord++
	}
}

// emptySpliceIn inserts el into the milestone list. Must run after the
// renumber pass (positions are found by ordinal).
func (o *Ordinals) emptySpliceIn(el *Element) {
	k := sort.Search(len(o.empty), func(i int) bool { return o.empty[i].ord > el.ord })
	o.empty = append(o.empty, nil)
	copy(o.empty[k+1:], o.empty[k:])
	o.empty[k] = el
}

// emptySpliceOut removes el from the milestone list. Must run before the
// renumber pass (el's old ordinal is still consistent with the list).
func (o *Ordinals) emptySpliceOut(el *Element) {
	k := sort.Search(len(o.empty), func(i int) bool { return o.empty[i].ord >= el.ord })
	if k < len(o.empty) && o.empty[k] == el {
		copy(o.empty[k:], o.empty[k+1:])
		o.empty[len(o.empty)-1] = nil
		o.empty = o.empty[:len(o.empty)-1]
	}
}

// resizeInt32 resizes s to n entries, preserving at least s[:keep].
func resizeInt32(s []int32, keep, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]int32, n)
	copy(out, s[:keep])
	return out
}
