package goddag_test

// The corpus-grid differential for incremental index repair: a repaired
// document (default mode) and a twin with repair disabled (every
// mutation invalidates, every read rebuilds from scratch) receive
// identical edit sequences; after every operation all public index views
// — ordinal numbering, name index, span index, subtree intervals,
// milestone list — must agree. This is the external, corpus-driven
// complement of the white-box differential in repair_test.go.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/goddag"
)

// ordKey renders the full ordinal sequence of a document: position i
// holds node i's kind, span, and (for elements) hierarchy and tag. Two
// documents built by identical operation sequences must agree slot for
// slot.
func ordKey(d *goddag.Document) []string {
	ord := d.Ordinals()
	out := make([]string, ord.Len())
	for i := range out {
		switch n := ord.Node(i).(type) {
		case *goddag.Element:
			out[i] = fmt.Sprintf("e:%s:%s:%v", n.Hierarchy().Name(), n.Name(), n.Span())
		case goddag.Leaf:
			out[i] = fmt.Sprintf("l:%v", n.Span())
		default:
			out[i] = "root"
		}
	}
	return out
}

func assertDocsAgree(t *testing.T, repaired, rebuilt *goddag.Document, tags []string) {
	t.Helper()
	a, b := ordKey(repaired), ordKey(rebuilt)
	if len(a) != len(b) {
		t.Fatalf("ordinal space: repaired %d vs rebuilt %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ordinal %d: repaired %s vs rebuilt %s", i, a[i], b[i])
		}
	}
	for _, tag := range tags {
		ea, eb := repaired.ElementsNamed(tag), rebuilt.ElementsNamed(tag)
		if len(ea) != len(eb) {
			t.Fatalf("ElementsNamed(%q): repaired %d vs rebuilt %d", tag, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i].Span() != eb[i].Span() || ea[i].Hierarchy().Name() != eb[i].Hierarchy().Name() {
				t.Fatalf("ElementsNamed(%q)[%d]: repaired %v vs rebuilt %v", tag, i, ea[i], eb[i])
			}
		}
	}
	// Span index probes.
	n := repaired.Content().Len()
	for _, sp := range []document.Span{
		document.NewSpan(0, n),
		document.NewSpan(n/4, n/2),
		document.NewSpan(n/2, n/2+1),
	} {
		ia, ib := repaired.ElementsIntersecting(sp), rebuilt.ElementsIntersecting(sp)
		if len(ia) != len(ib) {
			t.Fatalf("ElementsIntersecting(%v): repaired %d vs rebuilt %d", sp, len(ia), len(ib))
		}
		oa, ob := repaired.ElementsOverlapping(sp), rebuilt.ElementsOverlapping(sp)
		if len(oa) != len(ob) {
			t.Fatalf("ElementsOverlapping(%v): repaired %d vs rebuilt %d", sp, len(oa), len(ob))
		}
	}
	// Subtree intervals (sampled).
	orda, ordb := repaired.Ordinals(), rebuilt.Ordinals()
	ea, eb := repaired.Elements(), rebuilt.Elements()
	for i := 0; i < len(ea); i += 1 + len(ea)/16 {
		if la, lb := len(orda.Subtree(ea[i])), len(ordb.Subtree(eb[i])); la != lb {
			t.Fatalf("Subtree(%v): repaired %d vs rebuilt %d", ea[i], la, lb)
		}
	}
	if la, lb := len(orda.EmptyElements()), len(ordb.EmptyElements()); la != lb {
		t.Fatalf("EmptyElements: repaired %d vs rebuilt %d", la, lb)
	}
}

// TestRepairCorpusGrid drives identical random edit sequences over
// corpus-generated manuscripts (words × hierarchies × vocabulary grid)
// against a repaired and a rebuild-from-scratch document and compares
// every index view after every operation.
func TestRepairCorpusGrid(t *testing.T) {
	type gridCase struct {
		words, hiers int
		multibyte    bool
	}
	grid := []gridCase{
		{words: 120, hiers: 2},
		{words: 120, hiers: 4},
		{words: 300, hiers: 2, multibyte: true},
		{words: 300, hiers: 4},
	}
	tags := []string{"w", "dmg", "line", "edit", "never"}
	for _, gc := range grid {
		gc := gc
		name := fmt.Sprintf("words=%d/h=%d/multibyte=%v", gc.words, gc.hiers, gc.multibyte)
		t.Run(name, func(t *testing.T) {
			cfg := corpus.DefaultConfig(gc.words)
			cfg.Hierarchies = gc.hiers
			if gc.multibyte {
				cfg.Vocabulary = corpus.MultibyteVocabulary
			}
			repaired, err := corpus.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rebuilt, err := corpus.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rebuilt.SetIncrementalRepair(false)
			repaired.Warm() // edits must hit live indexes
			rebuilt.Warm()

			rng := rand.New(rand.NewSource(int64(gc.words)<<4 ^ int64(gc.hiers)))
			hiers := repaired.HierarchyNames()
			n := repaired.Content().Len()
			for op := 0; op < 40; op++ {
				switch k := rng.Intn(8); {
				case k < 4: // insert the same span into both documents
					hier := hiers[rng.Intn(len(hiers))]
					lo := rng.Intn(n + 1)
					hi := lo
					if rng.Intn(5) > 0 && lo < n {
						hi = lo + 1 + rng.Intn(min(60, n-lo))
					}
					sp := document.NewSpan(lo, hi)
					_, errA := repaired.InsertElement(repaired.Hierarchy(hier), "edit", nil, sp)
					_, errB := rebuilt.InsertElement(rebuilt.Hierarchy(hier), "edit", nil, sp)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("op %d: insert %s %v diverged: %v vs %v", op, hier, sp, errA, errB)
					}
				case k < 6: // remove the i-th element of one hierarchy
					hier := hiers[rng.Intn(len(hiers))]
					elsA := repaired.Hierarchy(hier).Elements()
					elsB := rebuilt.Hierarchy(hier).Elements()
					if len(elsA) == 0 {
						continue
					}
					if len(elsA) != len(elsB) {
						t.Fatalf("op %d: hierarchy %q sizes diverged: %d vs %d", op, hier, len(elsA), len(elsB))
					}
					i := rng.Intn(len(elsA))
					if err := repaired.RemoveElement(elsA[i]); err != nil {
						t.Fatalf("op %d: remove repaired: %v", op, err)
					}
					if err := rebuilt.RemoveElement(elsB[i]); err != nil {
						t.Fatalf("op %d: remove rebuilt: %v", op, err)
					}
				default: // attribute edits: must never disturb any index
					elsA := repaired.Elements()
					if len(elsA) == 0 {
						continue
					}
					i := rng.Intn(len(elsA))
					elsA[i].SetAttr("mark", fmt.Sprint(op))
					rebuilt.Elements()[i].SetAttr("mark", fmt.Sprint(op))
				}
				assertDocsAgree(t, repaired, rebuilt, tags)
			}
		})
	}
}
