package goddag

import (
	"fmt"
	"sort"

	"repro/internal/document"
)

// Hierarchy is one concurrent markup hierarchy: the tree formed over the
// shared leaves by the elements of one DTD/schema. Elements of the same
// hierarchy must nest properly; elements of different hierarchies may
// overlap freely.
type Hierarchy struct {
	doc  *Document
	name string
	top  []*Element // top-level elements, in document order
	n    int        // total element count
	pre  []*Element // pre-order (== document-order) element array, rebuilt with Ordinals
}

// Name returns the hierarchy name (by convention, the DTD name).
func (h *Hierarchy) Name() string { return h.name }

// Document returns the owning document.
func (h *Hierarchy) Document() *Document { return h.doc }

// Len returns the number of elements in the hierarchy.
func (h *Hierarchy) Len() int {
	h.doc.ensure()
	return h.n
}

// TopElements returns the hierarchy's top-level elements (children of the
// shared root) in document order.
func (h *Hierarchy) TopElements() []*Element {
	h.doc.ensure()
	out := make([]*Element, len(h.top))
	copy(out, h.top)
	return out
}

// Elements returns all elements of the hierarchy in document order.
// While the ordinal index is live, the hierarchy's pre-order array IS
// this walk's result (and is kept spliced by the incremental repair);
// it is copied instead of re-walking the tree — element-address
// resolution on the server's edit path calls this once per op.
func (h *Hierarchy) Elements() []*Element {
	h.doc.ensure()
	h.doc.mu.Lock()
	live := h.doc.ordIdx != nil && h.doc.ordVer == h.doc.version
	h.doc.mu.Unlock()
	if live && len(h.pre) == h.n {
		out := make([]*Element, len(h.pre))
		copy(out, h.pre)
		return out
	}
	return h.walkElements()
}

// ElementAt returns the i-th element of the hierarchy in document
// order (the same numbering as Elements) without materializing the
// list: O(1) from the pre-order array while the ordinal index is live,
// a counting walk otherwise. ok is false for out-of-range indices.
func (h *Hierarchy) ElementAt(i int) (el *Element, ok bool) {
	h.doc.ensure()
	if i < 0 || i >= h.n {
		return nil, false
	}
	h.doc.mu.Lock()
	live := h.doc.ordIdx != nil && h.doc.ordVer == h.doc.version
	h.doc.mu.Unlock()
	if live && len(h.pre) == h.n {
		return h.pre[i], true
	}
	n := 0
	var walk func(es []*Element) *Element
	walk = func(es []*Element) *Element {
		for _, e := range es {
			if n == i {
				return e
			}
			n++
			if found := walk(e.children); found != nil {
				return found
			}
		}
		return nil
	}
	el = walk(h.top)
	return el, el != nil
}

// walkElements collects the hierarchy's elements by tree walk. It takes
// no lock, so the lazy cache rebuilds (which hold the document mutex)
// can call it.
func (h *Hierarchy) walkElements() []*Element {
	out := make([]*Element, 0, h.n)
	var walk func(es []*Element)
	walk = func(es []*Element) {
		for _, e := range es {
			out = append(out, e)
			walk(e.children)
		}
	}
	walk(h.top)
	return out
}

// ElementsNamed returns the hierarchy's elements with the given tag in
// document order, filtering the document's name index.
func (h *Hierarchy) ElementsNamed(tag string) []*Element {
	var out []*Element
	for _, e := range h.doc.ElementsNamed(tag) {
		if e.hier == h {
			out = append(out, e)
		}
	}
	return out
}

// Element is an element node belonging to exactly one hierarchy.
type Element struct {
	doc      *Document
	hier     *Hierarchy
	name     string
	attrs    []Attr
	span     document.Span
	parent   *Element // nil means the parent is the shared root
	children []*Element
	seq      int

	// Query-index fields, assigned by the Ordinals rebuild and valid only
	// while the document is unmutated (doc.ordVer == doc.version): the
	// node's dense document-order ordinal and its half-open pre-order
	// interval [preIdx, preEnd) within hier.pre. Read them through an
	// *Ordinals obtained from Document.Ordinals().
	ord    int32
	preIdx int32
	preEnd int32
}

// Kind returns KindElement.
func (e *Element) Kind() NodeKind { return KindElement }

// Name returns the element tag.
func (e *Element) Name() string { return e.name }

// Hierarchy returns the hierarchy the element belongs to.
func (e *Element) Hierarchy() *Hierarchy { return e.hier }

// Span returns the content interval the element dominates.
func (e *Element) Span() document.Span { return e.span }

// Text returns the content dominated by the element.
func (e *Element) Text() string { return e.doc.content.Slice(e.span) }

// Document returns the owning document.
func (e *Element) Document() *Document { return e.doc }

func (e *Element) isNode() {}

// IsEmpty reports whether the element dominates no content (a milestone).
func (e *Element) IsEmpty() bool { return e.span.IsEmpty() }

// Attrs returns the element's attributes in document order.
func (e *Element) Attrs() []Attr {
	out := make([]Attr, len(e.attrs))
	copy(out, e.attrs)
	return out
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets (or adds) an attribute.
func (e *Element) SetAttr(name, value string) {
	for i := range e.attrs {
		if e.attrs[i].Name == name {
			e.attrs[i].Value = value
			return
		}
	}
	e.attrs = append(e.attrs, Attr{Name: name, Value: value})
}

// RemoveAttr deletes an attribute, reporting whether it was present.
func (e *Element) RemoveAttr(name string) bool {
	for i := range e.attrs {
		if e.attrs[i].Name == name {
			e.attrs = append(e.attrs[:i], e.attrs[i+1:]...)
			return true
		}
	}
	return false
}

// Parent returns the element's parent node within its hierarchy: another
// element, or the shared root.
func (e *Element) Parent() Node {
	if e.parent != nil {
		return e.parent
	}
	return e.doc.root
}

// ParentElement returns the parent element, or nil when the parent is the
// root.
func (e *Element) ParentElement() *Element { return e.parent }

// ChildElements returns the element's child elements (same hierarchy) in
// document order.
func (e *Element) ChildElements() []*Element {
	out := make([]*Element, len(e.children))
	copy(out, e.children)
	return out
}

// NumChildElements returns the number of same-hierarchy child elements.
func (e *Element) NumChildElements() int { return len(e.children) }

// ChildElementAt returns the i-th child element (document order) without
// copying the child list.
func (e *Element) ChildElementAt(i int) *Element { return e.children[i] }

// Children returns the element's children in DOM order: child elements of
// the same hierarchy interleaved with the leaves of the element's span not
// covered by any child element.
func (e *Element) Children() []Node {
	return childNodes(e.doc, e.span, e.children)
}

// FirstLeaf and LastLeaf return the leaf interval [FirstLeaf, LastLeaf]
// the element dominates. ok is false for empty elements.
func (e *Element) FirstLeaf() (Leaf, bool) {
	if e.span.IsEmpty() {
		return Leaf{}, false
	}
	return e.doc.LeafAt(e.span.Start), true
}

// LastLeaf returns the last leaf the element dominates.
func (e *Element) LastLeaf() (Leaf, bool) {
	if e.span.IsEmpty() {
		return Leaf{}, false
	}
	return e.doc.LeafAt(e.span.End - 1), true
}

// LeafRange returns the half-open leaf index interval the element
// dominates; empty elements return first == last at their position.
func (e *Element) LeafRange() (first, last int) {
	if e.span.IsEmpty() {
		i, ok := e.doc.part.LeafStartingAt(e.span.Start)
		if !ok {
			// An empty element can sit at a non-boundary only if content
			// was edited around it; fall back to the containing leaf.
			i = e.doc.part.LeafAt(e.span.Start)
		}
		return i, i
	}
	first, last, ok := e.doc.part.LeafRange(e.span)
	if !ok {
		// Element borders are always cut into the partition on insert,
		// but be defensive: locate by content offsets.
		first = e.doc.part.LeafAt(e.span.Start)
		last = e.doc.part.LeafAt(e.span.End-1) + 1
	}
	return first, last
}

// Leaves returns the leaves the element dominates, in content order.
func (e *Element) Leaves() []Leaf {
	first, last := e.LeafRange()
	out := make([]Leaf, 0, last-first)
	for i := first; i < last; i++ {
		out = append(out, Leaf{doc: e.doc, idx: i})
	}
	return out
}

// String formats the element as hierarchy:name[span].
func (e *Element) String() string {
	return fmt.Sprintf("%s:%s%v", e.hier.name, e.name, e.span)
}

// childNodes interleaves the child elements of one span with the
// uncovered leaves inside it, in document order.
func childNodes(d *Document, span document.Span, children []*Element) []Node {
	var out []Node
	pos := span.Start
	emit := func(to int) {
		// Leaves covering [pos, to).
		for pos < to {
			leaf := d.LeafAt(pos)
			out = append(out, leaf)
			pos = leaf.Span().End
		}
	}
	for _, c := range children {
		emit(c.span.Start)
		out = append(out, c)
		if c.span.End > pos {
			pos = c.span.End
		}
	}
	emit(span.End)
	return out
}

// ErrConflict is returned (wrapped) when an insertion would make two
// elements of the *same* hierarchy overlap, which would break the
// hierarchy's tree structure. Overlap across hierarchies is the normal
// case and always allowed.
type ConflictError struct {
	Hierarchy string
	Tag       string
	Span      document.Span
	With      *Element
}

// Error implements the error interface.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("goddag: <%s>%v overlaps <%s>%v within hierarchy %q",
		e.Tag, e.Span, e.With.name, e.With.span, e.Hierarchy)
}

// ProbeInsert reports, without mutating the document, how inserting an
// element over span into hierarchy h would restructure h's tree: the
// element that would become the parent (nil when the parent is the shared
// root) and the existing elements that would be adopted as children. It
// returns a *ConflictError when the span properly overlaps an element of
// h. tag is used only for error reporting.
func (d *Document) ProbeInsert(h *Hierarchy, tag string, span document.Span) (parent *Element, adopted []*Element, err error) {
	d.ensure()
	if h == nil || h.doc != d {
		return nil, nil, fmt.Errorf("goddag: hierarchy does not belong to this document")
	}
	if !span.Valid() || span.End > d.content.Len() {
		return nil, nil, fmt.Errorf("goddag: span %v out of content range [0,%d]", span, d.content.Len())
	}
	if !d.content.IsRuneBoundary(span.Start) || !d.content.IsRuneBoundary(span.End) {
		return nil, nil, fmt.Errorf("goddag: span %v does not lie on rune boundaries", span)
	}
	parent, siblings := h.locate(span)
	// Siblings are sorted by start and mutually non-overlapping, so the
	// elements inside span form a contiguous run; only the sibling
	// reaching across span.Start (at most one non-empty) and the run's
	// members need testing.
	lo := sort.Search(len(siblings), func(i int) bool { return siblings[i].span.Start >= span.Start })
	// Walk back over empty elements at span.Start to the last sibling
	// that could cross into span from the left.
	for j := lo - 1; j >= 0; j-- {
		s := siblings[j]
		if s.span.IsEmpty() {
			continue
		}
		if s.span.Overlaps(span) {
			return nil, nil, &ConflictError{Hierarchy: h.name, Tag: tag, Span: span, With: s}
		}
		break
	}
	for j := lo; j < len(siblings); j++ {
		s := siblings[j]
		if s.span.Start > span.End {
			break
		}
		switch {
		case span.ContainsSpan(s.span):
			// Includes the equal-span case: the new element wraps the
			// existing one.
			adopted = append(adopted, s)
		case s.span.Overlaps(span):
			return nil, nil, &ConflictError{Hierarchy: h.name, Tag: tag, Span: span, With: s}
		default:
			// Empty sibling at the border, or a container locate chose
			// not to descend into.
		}
	}
	return parent, adopted, nil
}

// InsertElement adds an element with the given tag and attributes over
// span to hierarchy h. The span's borders become leaf boundaries. The
// element is placed at the innermost position of h's tree that contains
// the span; existing elements of h that lie inside the span become its
// children. Inserting a span that properly overlaps an element of the
// same hierarchy returns a *ConflictError.
func (d *Document) InsertElement(h *Hierarchy, tag string, attrs []Attr, span document.Span) (*Element, error) {
	if tag == "" {
		return nil, fmt.Errorf("goddag: empty element tag")
	}
	d.prepareMutate()
	parent, adopted, err := d.ProbeInsert(h, tag, span)
	if err != nil {
		return nil, err
	}
	adoptedSet := make(map[*Element]bool, len(adopted))
	for _, a := range adopted {
		adoptedSet[a] = true
	}
	var siblings []*Element
	if parent == nil {
		siblings = h.top
	} else {
		siblings = parent.children
	}
	kept := make([]*Element, 0, len(siblings)-len(adopted))
	for _, s := range siblings {
		if !adoptedSet[s] {
			kept = append(kept, s)
		}
	}

	el := &Element{doc: d, hier: h, name: tag, attrs: append([]Attr(nil), attrs...), span: span, seq: d.seq}
	d.seq++

	// Establish leaf boundaries at the span borders, remembering — for the
	// incremental index repair — the first leaf a cut changed and the
	// first leaf sorting after the new element, both in pre-cut numbering.
	leafAfter := d.leafAfterSpan(span)
	firstLeaf := d.cutSpanBorders(span)

	// Adopt children.
	for _, c := range adopted {
		c.parent = el
	}
	sortElements(adopted)
	el.children = adopted

	// Splice into parent's child list. Bulk loaders (sacx.Build) insert
	// in document order, so appending at the end with no adoption is the
	// common case; it avoids the per-insert copy and sort.
	el.parent = parent
	if len(adopted) == 0 {
		list := h.top
		if parent != nil {
			list = parent.children
		}
		if len(list) == 0 || elementLess(list[len(list)-1], el) {
			list = append(list, el)
			if parent == nil {
				h.top = list
			} else {
				parent.children = list
			}
			h.n++
			d.finishInsert(el, adopted, firstLeaf, leafAfter)
			return el, nil
		}
	}
	merged := make([]*Element, 0, len(kept)+1)
	merged = append(merged, kept...)
	merged = append(merged, el)
	sortElements(merged)
	if parent == nil {
		h.top = merged
	} else {
		parent.children = merged
	}
	h.n++
	d.finishInsert(el, adopted, firstLeaf, leafAfter)
	return el, nil
}

// elementLess is the document-order comparison used by sortElements.
func elementLess(a, b *Element) bool {
	c := document.CompareSpans(a.span, b.span)
	if c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// locate finds the insertion point for span in hierarchy h: the innermost
// element strictly containing span (nil for the root) and the candidate
// sibling list at that level.
//
// At each level the container, if any, is found by binary search: the
// siblings are sorted by start and non-empty siblings are disjoint, so
// the only non-empty candidate is the last sibling starting at or before
// span.Start (skipping empty milestones parked at the same start).
func (h *Hierarchy) locate(span document.Span) (parent *Element, siblings []*Element) {
	siblings = h.top
	for {
		var next *Element
		i := sort.Search(len(siblings), func(i int) bool { return siblings[i].span.Start > span.Start })
		for j := i - 1; j >= 0; j-- {
			c := siblings[j]
			if strictlyContains(c.span, span) {
				next = c
				break
			}
			if !c.span.IsEmpty() {
				// A non-empty non-container here means nothing earlier
				// can contain span either (disjointness).
				break
			}
		}
		if next == nil {
			return parent, siblings
		}
		parent = next
		siblings = next.children
	}
}

// strictlyContains reports whether outer should absorb a new element with
// span inner as a descendant: outer contains inner and is not identical.
// For empty inner spans, a position strictly inside outer counts, as does
// the border of a *non-empty* outer only when inner is empty and outer
// is not (milestone at the edge of an element stays outside: we require
// strict interior for empties to keep placement unambiguous).
func strictlyContains(outer, inner document.Span) bool {
	if inner.IsEmpty() {
		return outer.Start < inner.Start && inner.Start < outer.End
	}
	return outer.ContainsSpan(inner) && outer != inner
}

// RemoveElement deletes el from its hierarchy; its children are adopted by
// its parent. Leaf boundaries are left in place (other hierarchies may
// depend on them); call Compact to merge unused boundaries.
func (d *Document) RemoveElement(el *Element) error {
	if el == nil || el.doc != d {
		return fmt.Errorf("goddag: element does not belong to this document")
	}
	d.prepareMutate()
	h := el.hier
	var list []*Element
	if el.parent == nil {
		list = h.top
	} else {
		list = el.parent.children
	}
	idx := -1
	for i, e := range list {
		if e == el {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("goddag: element %v not found in its parent's children", el)
	}
	merged := make([]*Element, 0, len(list)-1+len(el.children))
	merged = append(merged, list[:idx]...)
	merged = append(merged, el.children...)
	merged = append(merged, list[idx+1:]...)
	// When hoisting el's children in place keeps the sibling list in
	// document order (the overwhelmingly common case), the hierarchy's
	// pre-order is exactly the old one minus el and the index repair can
	// splice. A milestone sibling at el's border can interleave with the
	// hoisted children; then the list is re-sorted and repair falls back
	// to a rebuild.
	ordered := true
	for i := 1; i < len(merged); i++ {
		if elementLess(merged[i], merged[i-1]) {
			ordered = false
			break
		}
	}
	for _, c := range el.children {
		c.parent = el.parent
	}
	if !ordered {
		sortElements(merged)
	}
	if el.parent == nil {
		h.top = merged
	} else {
		el.parent.children = merged
	}
	h.n--
	// Repair (or invalidate) the derived indexes while el's parent link is
	// still intact — the pre-order repair walks the ancestor chain.
	d.finishRemove(el, ordered)
	el.parent = nil
	el.children = nil
	return nil
}

// Compact merges leaf boundaries that no element of any hierarchy uses as
// a border, restoring the minimal partition ("borders are given by markup
// positions", paper §3). It returns the number of boundaries removed.
func (d *Document) Compact() int {
	d.prepareMutate()
	used := map[int]bool{0: true, d.content.Len(): true}
	for _, h := range d.hiers {
		for _, e := range h.Elements() {
			used[e.span.Start] = true
			used[e.span.End] = true
		}
	}
	removed := 0
	for _, b := range d.part.Boundaries() {
		if !used[b] && d.part.MergeAt(b) {
			removed++
		}
	}
	d.bump()
	return removed
}

// innermostCovering returns the innermost element of h whose span contains
// the given (non-empty) span, or nil.
func (h *Hierarchy) innermostCovering(span document.Span) *Element {
	h.doc.ensure()
	var found *Element
	list := h.top
	for {
		var next *Element
		for _, c := range list {
			if c.span.ContainsSpan(span) && !c.span.IsEmpty() {
				next = c
				break
			}
		}
		if next == nil {
			return found
		}
		found = next
		list = next.children
	}
}

// CoveringElements returns, innermost-last, the chain of elements of h
// containing span.
func (h *Hierarchy) CoveringElements(span document.Span) []*Element {
	h.doc.ensure()
	var out []*Element
	list := h.top
	for {
		var next *Element
		for _, c := range list {
			if c.span.ContainsSpan(span) && !c.span.IsEmpty() {
				next = c
				break
			}
		}
		if next == nil {
			return out
		}
		out = append(out, next)
		list = next.children
	}
}

// ElementsIntersecting returns all elements of the document whose spans
// intersect the given span, in document order, served by the interval
// index in O(log n + answers).
func (d *Document) ElementsIntersecting(span document.Span) []*Element {
	var out []*Element
	d.index().visitIntersecting(span, func(e *Element) bool {
		if e.span.Intersects(span) {
			out = append(out, e)
		}
		return true
	})
	return out
}

// ElementsOverlapping returns all elements whose spans *properly* overlap
// the given span (intersect without containment either way), in document
// order. This powers the Extended XPath overlapping axis; candidates come
// from the interval index in O(log n + candidates).
func (d *Document) ElementsOverlapping(span document.Span) []*Element {
	var out []*Element
	d.index().visitIntersecting(span, func(e *Element) bool {
		if e.span.Overlaps(span) {
			out = append(out, e)
		}
		return true
	})
	return out
}

// resort re-sorts every level of hierarchy h; used after span updates by
// the text-editing operations.
func (h *Hierarchy) resort() {
	sortElements(h.top)
	var walk func(es []*Element)
	walk = func(es []*Element) {
		for _, e := range es {
			sortElements(e.children)
			walk(e.children)
		}
	}
	walk(h.top)
}

// InsertText inserts text at byte offset pos, shifting leaf boundaries and
// element spans. The insertion binds left, matching
// document.Partition.InsertText: elements whose span strictly contains pos
// grow, an element ending exactly at pos absorbs the text (grows), and an
// element starting exactly at pos moves right. Exception at pos == 0:
// the text binds right, so elements starting at 0 absorb it.
func (d *Document) InsertText(pos int, text string) error {
	d.prepareMutate()
	if pos < 0 || pos > d.content.Len() {
		return fmt.Errorf("goddag: insert offset %d out of range [0,%d]", pos, d.content.Len())
	}
	if !d.content.IsRuneBoundary(pos) {
		return fmt.Errorf("goddag: insert offset %d is not a rune boundary", pos)
	}
	n := len(text)
	if n == 0 {
		return nil
	}
	d.content.Insert(pos, text)
	d.part.InsertText(pos, n)
	for _, h := range d.hiers {
		var walk func(es []*Element)
		walk = func(es []*Element) {
			for _, e := range es {
				e.span = adjustForInsert(e.span, pos, n)
				walk(e.children)
			}
		}
		walk(h.top)
		h.resort()
	}
	d.bump()
	return nil
}

// adjustForInsert shifts a span for an insertion of n bytes at pos.
// Rules (mirroring Partition.InsertText): an offset strictly greater than
// pos shifts; an offset equal to pos shifts unless it is 0. The element
// ending at pos therefore grows over the new text, and the element
// starting at pos moves past it.
func adjustForInsert(s document.Span, pos, n int) document.Span {
	if s.Start > pos || (s.Start == pos && pos != 0) {
		s.Start += n
	}
	if s.End > pos || (s.End == pos && pos != 0) {
		s.End += n
	}
	return s
}

// DeleteText removes the content covered by span, shrinking or emptying
// element spans that intersect it. Elements reduced to empty spans remain
// as milestones.
func (d *Document) DeleteText(span document.Span) error {
	d.prepareMutate()
	if !span.Valid() || span.End > d.content.Len() {
		return fmt.Errorf("goddag: delete span %v out of range [0,%d]", span, d.content.Len())
	}
	if !d.content.IsRuneBoundary(span.Start) || !d.content.IsRuneBoundary(span.End) {
		return fmt.Errorf("goddag: delete span %v does not lie on rune boundaries", span)
	}
	n := span.Len()
	if n == 0 {
		return nil
	}
	d.content.Delete(span)
	d.part.DeleteRange(span)
	for _, h := range d.hiers {
		var walk func(es []*Element)
		walk = func(es []*Element) {
			for _, e := range es {
				e.span = adjustForDelete(e.span, span)
				walk(e.children)
			}
		}
		walk(h.top)
		h.resort()
	}
	d.bump()
	return nil
}

// adjustForDelete shrinks a span for the deletion of del.
func adjustForDelete(s document.Span, del document.Span) document.Span {
	n := del.Len()
	adj := func(x int) int {
		switch {
		case x <= del.Start:
			return x
		case x >= del.End:
			return x - n
		default:
			return del.Start
		}
	}
	return document.Span{Start: adj(s.Start), End: adj(s.End)}
}

// Check verifies all GODDAG invariants and returns the first violation:
//
//   - leaf partition is a tiling of the content (document.Partition.Check),
//   - element borders are leaf boundaries,
//   - within each hierarchy, children nest strictly inside parents, are
//     sorted in document order, and siblings do not properly overlap,
//   - element counts are consistent.
func (d *Document) Check() error {
	d.ensure()
	if err := d.part.Check(); err != nil {
		return err
	}
	if d.part.Len() != d.content.Len() {
		return fmt.Errorf("goddag: partition length %d != content length %d", d.part.Len(), d.content.Len())
	}
	boundary := make(map[int]bool, d.part.NumLeaves()+1)
	for _, b := range d.part.Boundaries() {
		boundary[b] = true
	}
	boundary[d.content.Len()] = true
	boundary[0] = true
	for _, h := range d.Hierarchies() {
		count := 0
		var walk func(parent *Element, es []*Element, bound document.Span) error
		walk = func(parent *Element, es []*Element, bound document.Span) error {
			for i, e := range es {
				count++
				if e.hier != h {
					return fmt.Errorf("goddag: %v filed under hierarchy %q", e, h.name)
				}
				if e.parent != parent {
					return fmt.Errorf("goddag: %v has wrong parent", e)
				}
				if !e.span.Valid() || e.span.End > d.content.Len() {
					return fmt.Errorf("goddag: %v span out of range", e)
				}
				if !bound.ContainsSpan(e.span) {
					return fmt.Errorf("goddag: %v escapes parent span %v", e, bound)
				}
				if !e.span.IsEmpty() && (!boundary[e.span.Start] || !boundary[e.span.End]) {
					return fmt.Errorf("goddag: %v borders are not leaf boundaries", e)
				}
				if i > 0 {
					prev := es[i-1]
					if document.CompareSpans(prev.span, e.span) > 0 {
						return fmt.Errorf("goddag: children out of order: %v before %v", prev, e)
					}
					if prev.span.Overlaps(e.span) {
						return fmt.Errorf("goddag: siblings overlap: %v and %v", prev, e)
					}
				}
				if err := walk(e, e.children, e.span); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(nil, h.top, document.NewSpan(0, d.content.Len())); err != nil {
			return err
		}
		if count != h.n {
			return fmt.Errorf("goddag: hierarchy %q count %d != recorded %d", h.name, count, h.n)
		}
	}
	return nil
}

// Clone returns a deep copy of the document. The copy starts with cold
// derived indexes and inherits the incremental-repair setting. A clone
// of a view-backed document shares tag/attribute strings with the
// mapped backing and therefore inherits its keepalive.
func (d *Document) Clone() *Document {
	d.ensure()
	nd := New(d.rootTag, d.content.String())
	nd.seq = d.seq
	nd.noRepair = d.noRepair
	nd.keepalive = d.keepalive
	// Re-cut boundaries.
	for _, b := range d.part.Boundaries() {
		nd.part.Cut(b)
	}
	for _, name := range d.order {
		h := d.hiers[name]
		nh := nd.AddHierarchy(name)
		var copyTree func(es []*Element, parent *Element) []*Element
		copyTree = func(es []*Element, parent *Element) []*Element {
			out := make([]*Element, 0, len(es))
			for _, e := range es {
				ne := &Element{
					doc: nd, hier: nh, name: e.name,
					attrs: append([]Attr(nil), e.attrs...),
					span:  e.span, parent: parent, seq: e.seq,
				}
				ne.children = copyTree(e.children, ne)
				out = append(out, ne)
			}
			return out
		}
		nh.top = copyTree(h.top, nil)
		nh.n = h.n
	}
	return nd
}

// Stats summarizes a document for display and benchmarking.
type Stats struct {
	ContentLen  int
	Leaves      int
	Hierarchies int
	Elements    int
	MaxDepth    int
}

// Stats computes summary statistics.
func (d *Document) Stats() Stats {
	d.ensure()
	s := Stats{
		ContentLen:  d.content.Len(),
		Leaves:      d.part.NumLeaves(),
		Hierarchies: len(d.hiers),
	}
	for _, h := range d.hiers {
		s.Elements += h.n
		var depth func(es []*Element, dep int)
		depth = func(es []*Element, dep int) {
			for _, e := range es {
				if dep > s.MaxDepth {
					s.MaxDepth = dep
				}
				depth(e.children, dep+1)
			}
		}
		depth(h.top, 1)
	}
	return s
}
