// Package sacx implements SACX, the SAX-style parser for concurrent XML
// of Iacob, Dekhtyar & Kaneko (WIDM 2004, reference [6] of the paper).
//
// The input is a *distributed document*: one well-formed XML document per
// concurrent hierarchy, all with the same root element tag and the same
// character content (paper §3). SACX merges the hierarchies' markup into a
// single event stream ordered by content offset, from which a GODDAG can
// be built in one pass (Build), or which applications can consume
// directly (Stream) the way they would consume SAX events.
//
// Event order at one content position: end-tags fire before start-tags
// (markup closing at a position precedes markup opening there), and both
// precede the character data that follows the position. Start-tags from
// different hierarchies at the same position are delivered widest span
// first (document order: the element reaching furthest opens first),
// then in source order; end-tags of the same position are delivered in
// source order. The merge is deterministic, and start events arrive in
// exactly the order the GODDAG bulk loader consumes.
package sacx

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// Source is one hierarchy's XML document.
type Source struct {
	// Hierarchy names the concurrent hierarchy this document encodes.
	Hierarchy string
	// Data is the document text. The zero-copy pipeline aliases it:
	// names, attribute values, and text in the resulting events and
	// documents are string views of these bytes. The caller must not
	// mutate Data for the lifetime of any Stream or Document built from
	// it (copy the buffer first when reusing it).
	Data []byte
}

// EventKind discriminates merged stream events.
type EventKind int

// Event kinds, in the order they sort at equal content positions.
const (
	// StartDocument is emitted once, carrying the shared root tag in Name
	// and the full character content in Text.
	StartDocument EventKind = iota
	// EndElement closes an element; Pos is the content offset of the
	// close.
	EndElement
	// StartElement opens an element at content offset Pos.
	StartElement
	// Characters carries a maximal run of character data between markup
	// positions. Text holds the run; Pos its starting offset.
	Characters
	// EndDocument is emitted once after all markup closes.
	EndDocument
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case StartDocument:
		return "StartDocument"
	case EndElement:
		return "EndElement"
	case StartElement:
		return "StartElement"
	case Characters:
		return "Characters"
	case EndDocument:
		return "EndDocument"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one item of the merged concurrent event stream. Events are
// plain values; Text and Attrs alias the stream's shared content and
// per-source attribute arenas and must be treated as read-only.
//
// Positions are byte offsets into the decoded shared content. Because
// SACX tokenizes every source to completion before merging, a
// StartElement event already knows where its element closes: End carries
// the content offset of the matching end tag, letting consumers act on
// complete spans without waiting for the EndElement event.
type Event struct {
	Kind      EventKind
	Hierarchy string // owning hierarchy for element events
	Name      string // element tag / root tag
	Attrs     []goddag.Attr
	Text      string // character data (Characters, StartDocument)
	Pos       int    // content byte offset
	End       int    // matching end offset (StartElement); event end otherwise
}

// ContentMismatchError reports that two hierarchies of a distributed
// document disagree on character content, which §3 of the paper forbids.
type ContentMismatchError struct {
	Hierarchy string // the diverging hierarchy
	Against   string // the reference hierarchy
	Pos       int    // rune offset of the first divergence
	Want      string // reference content around Pos
	Got       string // diverging content around Pos
}

// Error implements the error interface.
func (e *ContentMismatchError) Error() string {
	return fmt.Sprintf("sacx: hierarchy %q diverges from %q at content offset %d: %q vs %q",
		e.Hierarchy, e.Against, e.Pos, e.Got, e.Want)
}

// RootMismatchError reports differing root tags across hierarchies.
type RootMismatchError struct {
	Hierarchy string
	Want      string
	Got       string
}

// Error implements the error interface.
func (e *RootMismatchError) Error() string {
	return fmt.Sprintf("sacx: hierarchy %q has root <%s>, want <%s>", e.Hierarchy, e.Got, e.Want)
}

// errContentMismatch is the internal signal that a source's character
// content diverged from the reference; prepareSources converts it into a
// detailed *ContentMismatchError on the (cold) error path.
var errContentMismatch = errors.New("sacx: content mismatch")

// prepareSources tokenizes every source exactly once, verifying along the
// way that all sources share one root tag and one character content, and
// returns the loaded merge cursors. The first source is the reference: it
// establishes the shared content; every other source's text runs are
// compared against it in place, with no per-source content copy.
//
// elemsOnly skips recording EndElement stream events (see cursor): Build
// consumes element records, not the event stream, so the end events —
// half of all structural events — would never be read.
func prepareSources(sources []Source, opts Options, elemsOnly bool) (rootTag, content string, cursors []*cursor, err error) {
	if len(sources) == 0 {
		return "", "", nil, fmt.Errorf("sacx: no sources")
	}
	seen := make(map[string]bool, len(sources))
	for i, src := range sources {
		if src.Hierarchy == "" {
			return "", "", nil, fmt.Errorf("sacx: source %d has empty hierarchy name", i)
		}
		if seen[src.Hierarchy] {
			return "", "", nil, fmt.Errorf("sacx: duplicate hierarchy %q", src.Hierarchy)
		}
		seen[src.Hierarchy] = true
	}
	scanOpts := xmlscan.Options{Entities: opts.Entities, CoalesceCDATA: true, ReuseAttrs: true}
	cursors = make([]*cursor, 0, len(sources))
	for i, src := range sources {
		// Event, element, and attribute indices are recorded as int32;
		// every such count is bounded by the source size, so capping the
		// input here (with content growth via entity expansion guarded
		// separately at load EOF) keeps the narrowing safe.
		if len(src.Data) > math.MaxInt32 {
			return "", "", nil, fmt.Errorf("sacx: hierarchy %q: source exceeds %d bytes", src.Hierarchy, math.MaxInt32)
		}
		c := &cursor{hier: src.Hierarchy, idx: i, elemsOnly: elemsOnly}
		// Pre-size the lists from cheap byte counts: every tag token
		// starts with '<', end tags with "</", self-closing tags carry
		// "/>", and every attribute has one '='. All are upper bounds;
		// excess capacity from comments or PIs is marginal.
		lt := bytes.Count(src.Data, []byte{'<'})
		closers := bytes.Count(src.Data, []byte("</"))
		selfc := bytes.Count(src.Data, []byte("/>"))
		starts := lt - closers
		if starts < 0 {
			starts = 0
		}
		if elemsOnly {
			c.events = make([]streamEvent, 0, starts)
			c.elems = make([]elemRec, 0, starts)
		} else {
			c.events = make([]streamEvent, 0, lt+selfc)
		}
		if eqs := bytes.Count(src.Data, []byte{'='}); eqs > 0 {
			c.attrs = make([]goddag.Attr, 0, eqs)
		}
		var build *strings.Builder
		if i == 0 {
			build = &strings.Builder{}
			build.Grow(len(src.Data))
		}
		rt, lerr := c.load(xmlscan.New(src.Data, scanOpts), build, content)
		switch {
		case lerr == errContentMismatch:
			return "", "", nil, contentMismatch(src, scanOpts, content, sources[0].Hierarchy)
		case lerr != nil:
			return "", "", nil, fmt.Errorf("sacx: hierarchy %q: %w", src.Hierarchy, lerr)
		}
		if i == 0 {
			rootTag, content = rt, build.String()
		} else if rt != rootTag {
			return "", "", nil, &RootMismatchError{Hierarchy: src.Hierarchy, Want: rootTag, Got: rt}
		}
		cursors = append(cursors, c)
	}
	return rootTag, content, cursors, nil
}

// contentMismatch rebuilds the diverging source's full content (cold
// path) to report the exact rune offset and surroundings of the first
// divergence.
func contentMismatch(src Source, scanOpts xmlscan.Options, ref, against string) error {
	var b strings.Builder
	c := &cursor{hier: src.Hierarchy}
	if _, err := c.load(xmlscan.New(src.Data, scanOpts), &b, ""); err != nil {
		return fmt.Errorf("sacx: hierarchy %q: %w", src.Hierarchy, err)
	}
	got := b.String()
	pos := divergence(ref, got)
	return &ContentMismatchError{
		Hierarchy: src.Hierarchy,
		Against:   against,
		Pos:       pos,
		Want:      clip(ref, pos),
		Got:       clip(got, pos),
	}
}

// verifySources checks that all sources share root tag and content,
// returning the shared values. It is a thin wrapper over the single-pass
// loader; NewStream performs the same verification without a second pass.
func verifySources(sources []Source) (rootTag, content string, err error) {
	rootTag, content, _, err = prepareSources(sources, Options{}, true)
	return rootTag, content, err
}

// divergence returns the rune offset of the first difference.
func divergence(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n := min(len(ra), len(rb))
	for i := 0; i < n; i++ {
		if ra[i] != rb[i] {
			return i
		}
	}
	return n
}

func clip(s string, pos int) string {
	r := []rune(s)
	lo, hi := pos-8, pos+8
	if lo < 0 {
		lo = 0
	}
	if hi > len(r) {
		hi = len(r)
	}
	return string(r[lo:hi])
}
