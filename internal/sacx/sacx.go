// Package sacx implements SACX, the SAX-style parser for concurrent XML
// of Iacob, Dekhtyar & Kaneko (WIDM 2004, reference [6] of the paper).
//
// The input is a *distributed document*: one well-formed XML document per
// concurrent hierarchy, all with the same root element tag and the same
// character content (paper §3). SACX merges the hierarchies' markup into a
// single event stream ordered by content offset, from which a GODDAG can
// be built in one pass (Build), or which applications can consume
// directly (Stream) the way they would consume SAX events.
//
// Event order at one content position: end-tags fire before start-tags
// (markup closing at a position precedes markup opening there), and both
// precede the character data that follows the position. Events from
// different hierarchies at the same position and of the same class are
// delivered in source order, so the merge is deterministic.
package sacx

import (
	"fmt"

	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// Source is one hierarchy's XML document.
type Source struct {
	// Hierarchy names the concurrent hierarchy this document encodes.
	Hierarchy string
	// Data is the document text.
	Data []byte
}

// EventKind discriminates merged stream events.
type EventKind int

// Event kinds, in the order they sort at equal content positions.
const (
	// StartDocument is emitted once, carrying the shared root tag in Name
	// and the full character content in Text.
	StartDocument EventKind = iota
	// EndElement closes an element; Pos is the content offset of the
	// close.
	EndElement
	// StartElement opens an element at content offset Pos.
	StartElement
	// Characters carries a maximal run of character data between markup
	// positions. Text holds the run; Pos its starting offset.
	Characters
	// EndDocument is emitted once after all markup closes.
	EndDocument
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case StartDocument:
		return "StartDocument"
	case EndElement:
		return "EndElement"
	case StartElement:
		return "StartElement"
	case Characters:
		return "Characters"
	case EndDocument:
		return "EndDocument"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one item of the merged concurrent event stream.
type Event struct {
	Kind      EventKind
	Hierarchy string // owning hierarchy for element events
	Name      string // element tag / root tag
	Attrs     []goddag.Attr
	Text      string // character data (Characters, StartDocument)
	Pos       int    // content rune offset
}

// ContentMismatchError reports that two hierarchies of a distributed
// document disagree on character content, which §3 of the paper forbids.
type ContentMismatchError struct {
	Hierarchy string // the diverging hierarchy
	Against   string // the reference hierarchy
	Pos       int    // rune offset of the first divergence
	Want      string // reference content around Pos
	Got       string // diverging content around Pos
}

// Error implements the error interface.
func (e *ContentMismatchError) Error() string {
	return fmt.Sprintf("sacx: hierarchy %q diverges from %q at content offset %d: %q vs %q",
		e.Hierarchy, e.Against, e.Pos, e.Got, e.Want)
}

// RootMismatchError reports differing root tags across hierarchies.
type RootMismatchError struct {
	Hierarchy string
	Want      string
	Got       string
}

// Error implements the error interface.
func (e *RootMismatchError) Error() string {
	return fmt.Sprintf("sacx: hierarchy %q has root <%s>, want <%s>", e.Hierarchy, e.Got, e.Want)
}

// verifySources tokenizes nothing; it checks that all sources share root
// tag and content, returning the shared values.
func verifySources(sources []Source) (rootTag, content string, err error) {
	if len(sources) == 0 {
		return "", "", fmt.Errorf("sacx: no sources")
	}
	seen := map[string]bool{}
	for i, src := range sources {
		if src.Hierarchy == "" {
			return "", "", fmt.Errorf("sacx: source %d has empty hierarchy name", i)
		}
		if seen[src.Hierarchy] {
			return "", "", fmt.Errorf("sacx: duplicate hierarchy %q", src.Hierarchy)
		}
		seen[src.Hierarchy] = true
	}
	for i, src := range sources {
		c, cerr := xmlscan.Content(src.Data)
		if cerr != nil {
			return "", "", fmt.Errorf("sacx: hierarchy %q: %w", src.Hierarchy, cerr)
		}
		rt, rerr := rootOf(src.Data)
		if rerr != nil {
			return "", "", fmt.Errorf("sacx: hierarchy %q: %w", src.Hierarchy, rerr)
		}
		if i == 0 {
			rootTag, content = rt, c
			continue
		}
		if rt != rootTag {
			return "", "", &RootMismatchError{Hierarchy: src.Hierarchy, Want: rootTag, Got: rt}
		}
		if c != content {
			pos := divergence(content, c)
			return "", "", &ContentMismatchError{
				Hierarchy: src.Hierarchy,
				Against:   sources[0].Hierarchy,
				Pos:       pos,
				Want:      clip(content, pos),
				Got:       clip(c, pos),
			}
		}
	}
	return rootTag, content, nil
}

func rootOf(data []byte) (string, error) {
	s := xmlscan.New(data, xmlscan.Options{})
	for {
		tok, err := s.Next()
		if err != nil {
			return "", err
		}
		if tok.Kind == xmlscan.KindStartElement {
			return tok.Name, nil
		}
	}
}

// divergence returns the rune offset of the first difference.
func divergence(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n := min(len(ra), len(rb))
	for i := 0; i < n; i++ {
		if ra[i] != rb[i] {
			return i
		}
	}
	return n
}

func clip(s string, pos int) string {
	r := []rune(s)
	lo, hi := pos-8, pos+8
	if lo < 0 {
		lo = 0
	}
	if hi > len(r) {
		hi = len(r)
	}
	return string(r[lo:hi])
}
