package sacx

import (
	"io"
	"strings"
	"testing"

	"repro/internal/goddag"
)

// fig1Sources is the paper's Figure 1 distributed document: four XML
// encodings of the same manuscript content.
func fig1Sources() []Source {
	return []Source{
		{Hierarchy: "physical", Data: []byte(`<r><line n="1">swa hwæt swa</line><line n="2"> he us sægde</line></r>`)},
		{Hierarchy: "words", Data: []byte(`<r><w>swa</w> <w>hwæt</w> <w>swa</w> <w>he</w> <w>us</w> <w>sægde</w></r>`)},
		{Hierarchy: "restoration", Data: []byte(`<r>swa hwæt s<res resp="ed">wa he u</res>s sægde</r>`)},
		{Hierarchy: "damage", Data: []byte(`<r>swa hw<dmg type="stain">æt sw</dmg>a he us sægde</r>`)},
	}
}

func TestVerifySources(t *testing.T) {
	root, content, err := verifySources(fig1Sources())
	if err != nil {
		t.Fatal(err)
	}
	if root != "r" {
		t.Errorf("root = %q", root)
	}
	if content != "swa hwæt swa he us sægde" {
		t.Errorf("content = %q", content)
	}
}

func TestVerifyErrors(t *testing.T) {
	if _, _, err := verifySources(nil); err == nil {
		t.Error("no sources should error")
	}
	if _, _, err := verifySources([]Source{{Hierarchy: "", Data: []byte("<r/>")}}); err == nil {
		t.Error("empty hierarchy name should error")
	}
	dup := []Source{
		{Hierarchy: "a", Data: []byte("<r>x</r>")},
		{Hierarchy: "a", Data: []byte("<r>x</r>")},
	}
	if _, _, err := verifySources(dup); err == nil {
		t.Error("duplicate hierarchy should error")
	}
	badXML := []Source{{Hierarchy: "a", Data: []byte("<r>")}}
	if _, _, err := verifySources(badXML); err == nil {
		t.Error("bad XML should error")
	}
}

func TestRootMismatch(t *testing.T) {
	src := []Source{
		{Hierarchy: "a", Data: []byte("<r>x</r>")},
		{Hierarchy: "b", Data: []byte("<s>x</s>")},
	}
	_, _, err := verifySources(src)
	rme, ok := err.(*RootMismatchError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if rme.Hierarchy != "b" || rme.Want != "r" || rme.Got != "s" {
		t.Errorf("fields: %+v", rme)
	}
	if !strings.Contains(rme.Error(), "root") {
		t.Errorf("Error() = %q", rme.Error())
	}
}

func TestContentMismatch(t *testing.T) {
	src := []Source{
		{Hierarchy: "a", Data: []byte("<r>abcdef</r>")},
		{Hierarchy: "b", Data: []byte("<r>abcXef</r>")},
	}
	_, _, err := verifySources(src)
	cme, ok := err.(*ContentMismatchError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if cme.Pos != 3 || cme.Hierarchy != "b" || cme.Against != "a" {
		t.Errorf("fields: %+v", cme)
	}
	if !strings.Contains(cme.Error(), "diverges") {
		t.Errorf("Error() = %q", cme.Error())
	}
}

func TestStreamEventOrder(t *testing.T) {
	src := []Source{
		{Hierarchy: "h1", Data: []byte(`<r><a>xy</a>z</r>`)},
		{Hierarchy: "h2", Data: []byte(`<r>x<b>yz</b></r>`)},
	}
	st, err := NewStream(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := st.Events()
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	for _, ev := range evs {
		switch ev.Kind {
		case StartDocument:
			trace = append(trace, "SD")
		case StartElement:
			trace = append(trace, "S:"+ev.Hierarchy+":"+ev.Name)
		case EndElement:
			trace = append(trace, "E:"+ev.Hierarchy+":"+ev.Name)
		case Characters:
			trace = append(trace, "T:"+ev.Text)
		case EndDocument:
			trace = append(trace, "ED")
		}
	}
	want := []string{
		"SD",
		"S:h1:a", // a opens at 0
		"T:x",    // [0,1)
		"S:h2:b", // b opens at 1
		"T:y",    // [1,2)
		"E:h1:a", // a closes at 2 — ends precede starts/text at a position
		"T:z",
		"E:h2:b",
		"ED",
	}
	if strings.Join(trace, " ") != strings.Join(want, " ") {
		t.Errorf("trace:\n got %v\nwant %v", trace, want)
	}
}

func TestStreamEndsBeforeStarts(t *testing.T) {
	// At the same position, an end in one hierarchy precedes a start in
	// another.
	src := []Source{
		{Hierarchy: "h1", Data: []byte(`<r><a>xy</a>zw</r>`)},
		{Hierarchy: "h2", Data: []byte(`<r>xy<b>zw</b></r>`)},
	}
	st, _ := NewStream(src, Options{})
	evs, err := st.Events()
	if err != nil {
		t.Fatal(err)
	}
	endIdx, startIdx := -1, -1
	for i, ev := range evs {
		if ev.Kind == EndElement && ev.Name == "a" {
			endIdx = i
		}
		if ev.Kind == StartElement && ev.Name == "b" {
			startIdx = i
		}
	}
	if endIdx < 0 || startIdx < 0 || endIdx > startIdx {
		t.Errorf("end a at %d, start b at %d; want end first", endIdx, startIdx)
	}
}

func TestStreamStrategiesAgree(t *testing.T) {
	for _, src := range [][]Source{fig1Sources()} {
		heapStream, err := NewStream(src, Options{Strategy: MergeHeap})
		if err != nil {
			t.Fatal(err)
		}
		scanStream, err := NewStream(src, Options{Strategy: MergeRescan})
		if err != nil {
			t.Fatal(err)
		}
		he, err := heapStream.Events()
		if err != nil {
			t.Fatal(err)
		}
		se, err := scanStream.Events()
		if err != nil {
			t.Fatal(err)
		}
		if len(he) != len(se) {
			t.Fatalf("event counts differ: %d vs %d", len(he), len(se))
		}
		for i := range he {
			a, b := he[i], se[i]
			if a.Kind != b.Kind || a.Hierarchy != b.Hierarchy || a.Name != b.Name || a.Pos != b.Pos || a.Text != b.Text {
				t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
			}
		}
	}
}

func TestStreamSelfClosing(t *testing.T) {
	src := []Source{{Hierarchy: "h", Data: []byte(`<r>ab<pb n="2"/>cd</r>`)}}
	st, _ := NewStream(src, Options{})
	evs, err := st.Events()
	if err != nil {
		t.Fatal(err)
	}
	var sawStart, sawEnd bool
	for _, ev := range evs {
		if ev.Name == "pb" && ev.Kind == StartElement {
			sawStart = true
			if ev.Pos != 2 {
				t.Errorf("pb start at %d", ev.Pos)
			}
			if v, ok := findAttr(ev.Attrs, "n"); !ok || v != "2" {
				t.Errorf("pb attrs = %v", ev.Attrs)
			}
		}
		if ev.Name == "pb" && ev.Kind == EndElement {
			sawEnd = true
			if ev.Pos != 2 {
				t.Errorf("pb end at %d", ev.Pos)
			}
		}
	}
	if !sawStart || !sawEnd {
		t.Errorf("milestone events missing: start=%v end=%v", sawStart, sawEnd)
	}
}

func findAttr(attrs []goddag.Attr, name string) (string, bool) {
	for _, a := range attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

func TestStreamEOFSticky(t *testing.T) {
	st, _ := NewStream([]Source{{Hierarchy: "h", Data: []byte("<r>x</r>")}}, Options{})
	if _, err := st.Events(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != io.EOF {
		t.Errorf("after drain: %v, want EOF", err)
	}
}

func TestBuildFig1(t *testing.T) {
	doc, err := Build(fig1Sources())
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Check(); err != nil {
		t.Fatal(err)
	}
	st := doc.Stats()
	if st.Hierarchies != 4 {
		t.Errorf("hierarchies = %d", st.Hierarchies)
	}
	if st.Elements != 10 {
		t.Errorf("elements = %d, want 10 (2 line + 6 w + res + dmg)", st.Elements)
	}
	if doc.Content().String() != "swa hwæt swa he us sægde" {
		t.Errorf("content = %q", doc.Content().String())
	}
	// The res element overlaps words and the line boundary.
	res := doc.Hierarchy("restoration").Elements()[0]
	over := doc.ElementsOverlapping(res.Span())
	if len(over) == 0 {
		t.Error("res should overlap other markup")
	}
	// Attributes survive.
	if v, ok := res.Attr("resp"); !ok || v != "ed" {
		t.Errorf("res/@resp = %q,%v", v, ok)
	}
}

func TestBuildRejectsMismatch(t *testing.T) {
	src := []Source{
		{Hierarchy: "a", Data: []byte("<r>abc</r>")},
		{Hierarchy: "b", Data: []byte("<r>abX</r>")},
	}
	if _, err := Build(src); err == nil {
		t.Error("expected content mismatch error")
	}
}

func TestBuildSingleHierarchy(t *testing.T) {
	doc, err := Build([]Source{{Hierarchy: "only", Data: []byte(`<r><a><b>x</b>y</a>z</r>`)}})
	if err != nil {
		t.Fatal(err)
	}
	h := doc.Hierarchy("only")
	if h.Len() != 2 {
		t.Errorf("elements = %d", h.Len())
	}
	a := h.TopElements()[0]
	if a.Name() != "a" || a.Text() != "xy" {
		t.Errorf("a = %v %q", a, a.Text())
	}
	bs := a.ChildElements()
	if len(bs) != 1 || bs[0].Name() != "b" || bs[0].Text() != "x" {
		t.Errorf("b = %v", bs)
	}
}

func TestBuildEmptyContentElements(t *testing.T) {
	doc, err := Build([]Source{{Hierarchy: "h", Data: []byte(`<r>ab<pb/><lb></lb>cd</r>`)}})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Hierarchy("h").Len() != 2 {
		t.Errorf("elements = %d", doc.Hierarchy("h").Len())
	}
	for _, e := range doc.Hierarchy("h").Elements() {
		if !e.IsEmpty() {
			t.Errorf("%v should be empty", e)
		}
	}
	if err := doc.Check(); err != nil {
		t.Error(err)
	}
}

func TestSplitRoundTrip(t *testing.T) {
	doc, err := Build(fig1Sources())
	if err != nil {
		t.Fatal(err)
	}
	for _, hier := range doc.HierarchyNames() {
		out, err := Split(doc, hier)
		if err != nil {
			t.Fatalf("split %s: %v", hier, err)
		}
		// Re-parsing the split output and re-splitting is a fixed point.
		doc2, err := Build([]Source{{Hierarchy: hier, Data: out}})
		if err != nil {
			t.Fatalf("re-parse %s: %v\n%s", hier, err, out)
		}
		out2, err := Split(doc2, hier)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Errorf("%s: round trip mismatch:\n%s\nvs\n%s", hier, out, out2)
		}
		// Content preserved.
		if doc2.Content().String() != doc.Content().String() {
			t.Errorf("%s: content changed", hier)
		}
	}
}

func TestSplitUnknownHierarchy(t *testing.T) {
	doc, _ := Build([]Source{{Hierarchy: "h", Data: []byte("<r>x</r>")}})
	if _, err := Split(doc, "zzz"); err == nil {
		t.Error("unknown hierarchy should error")
	}
}

func TestSplitEscaping(t *testing.T) {
	doc, err := Build([]Source{{Hierarchy: "h", Data: []byte(`<r><a q="&lt;&quot;">x &amp; y</a></r>`)}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Split(doc, "h")
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, "x &amp; y") {
		t.Errorf("text not escaped: %s", s)
	}
	if !strings.Contains(s, `q="&lt;&quot;"`) {
		t.Errorf("attr not escaped: %s", s)
	}
	// And it must re-parse.
	if _, err := Build([]Source{{Hierarchy: "h", Data: out}}); err != nil {
		t.Errorf("re-parse: %v", err)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		StartDocument: "StartDocument",
		EndElement:    "EndElement",
		StartElement:  "StartElement",
		Characters:    "Characters",
		EndDocument:   "EndDocument",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", int(k), k.String())
		}
	}
	if !strings.Contains(EventKind(77).String(), "77") {
		t.Error("unknown kind")
	}
}

func TestManyHierarchies(t *testing.T) {
	// Eight hierarchies each wrapping a different region.
	content := "abcdefghijklmnop"
	var srcs []Source
	for i := 0; i < 8; i++ {
		lo, hi := i, i+8
		data := "<r>" + content[:lo] + "<x>" + content[lo:hi] + "</x>" + content[hi:] + "</r>"
		srcs = append(srcs, Source{Hierarchy: string(rune('a' + i)), Data: []byte(data)})
	}
	doc, err := Build(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Check(); err != nil {
		t.Fatal(err)
	}
	if doc.Stats().Elements != 8 {
		t.Errorf("elements = %d", doc.Stats().Elements)
	}
	// Every adjacent pair of x's overlaps.
	els := doc.Elements()
	for i := 1; i < len(els); i++ {
		if !els[i-1].Span().Overlaps(els[i].Span()) {
			t.Errorf("adjacent x's should overlap: %v %v", els[i-1], els[i])
		}
	}
}
