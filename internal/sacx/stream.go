package sacx

import (
	"container/heap"
	"io"
	"strings"
	"unicode/utf8"

	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// MergeStrategy selects how the per-hierarchy token streams are merged.
// The k-way heap is the production strategy; the linear rescan exists as
// the ablation baseline for experiment A1 (see PERFORMANCE.md).
type MergeStrategy int

// Merge strategies.
const (
	// MergeHeap pops the next event with a k-way heap: O(log k) per event.
	MergeHeap MergeStrategy = iota
	// MergeRescan scans all k stream heads per event: O(k) per event.
	MergeRescan
)

// Options configure a Stream.
type Options struct {
	Strategy MergeStrategy
	// Entities supplies extra entity definitions to the tokenizer.
	Entities map[string]string
}

// Stream is the merged SACX event stream over a distributed document.
// Create with NewStream; read with Next until io.EOF.
//
// Each source is tokenized exactly once, during NewStream: the pass that
// verifies the shared root tag and character content also records the
// structural events, so the merge itself touches no XML text again.
// Characters events are substrings of the shared content (no copying),
// and element events carry attribute slices out of a per-source arena.
//
// Names and attribute values alias the Source.Data bytes; the sources
// must stay unmutated while the stream or anything built from it is in
// use (see Source.Data).
type Stream struct {
	cursors []*cursor
	opts    Options
	rootTag string
	content string
	runeLen int // content length in runes

	h            eventHeap
	started      bool // StartDocument delivered
	endPending   bool // EndDocument not yet delivered
	textEmit     int  // content rune offset up to which text has been emitted
	textEmitByte int  // the same frontier as a byte offset
}

// streamEvent is one structural event recorded while tokenizing a source:
// a start or end tag with its content position in runes and bytes.
// Attributes live in the owning cursor's arena at [attrLo, attrHi).
type streamEvent struct {
	kind    EventKind
	name    string
	pos     int // content rune offset
	bytePos int // content byte offset
	attrLo  int32
	attrHi  int32
}

// cursor holds one hierarchy's recorded event list and the merge position
// within it. The root element's own start/end tokens are absorbed during
// recording (the merged stream has a single StartDocument/EndDocument
// pair).
type cursor struct {
	hier    string
	events  []streamEvent
	attrs   []goddag.Attr // arena referenced by events
	i       int           // next event to deliver
	idx     int           // stream index for deterministic ordering
	heapIdx int           // position in the merge heap
}

func (c *cursor) exhausted() bool { return c.i >= len(c.events) }

// head returns the cursor's pending event. Callers must check exhausted.
func (c *cursor) head() *streamEvent { return &c.events[c.i] }

// less orders cursors by their pending events: position, then ends before
// starts, then source order.
func (c *cursor) less(o *cursor) bool {
	a, b := c.head(), o.head()
	if a.pos != b.pos {
		return a.pos < b.pos
	}
	ca, cb := eventClass(a.kind), eventClass(b.kind)
	if ca != cb {
		return ca < cb
	}
	return c.idx < o.idx
}

// NewStream verifies the distributed document and prepares the merge.
// Verification and event recording happen in the same single pass over
// each source.
func NewStream(sources []Source, opts Options) (*Stream, error) {
	rootTag, content, cursors, err := prepareSources(sources, opts)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		cursors: cursors,
		opts:    opts,
		rootTag: rootTag,
		content: content,
		runeLen: utf8.RuneCountInString(content),
	}
	s.endPending = true
	if opts.Strategy == MergeHeap {
		for _, c := range s.cursors {
			if !c.exhausted() {
				c.heapIdx = len(s.h.items)
				s.h.items = append(s.h.items, c)
			}
		}
		heap.Init(&s.h)
	}
	return s, nil
}

// RootTag returns the shared root element tag.
func (s *Stream) RootTag() string { return s.rootTag }

// totalEvents returns the number of structural events left to merge,
// letting Build pre-size its record list.
func (s *Stream) totalEvents() int {
	n := 0
	for _, c := range s.cursors {
		n += len(c.events) - c.i
	}
	return n
}

// Content returns the shared character content.
func (s *Stream) Content() string { return s.content }

// load tokenizes one source into the cursor's event list. When build is
// non-nil the decoded character content is appended to it (the reference
// source); otherwise every text run is compared in place against ref, the
// already-established shared content. The returned root tag is the
// source's root element name ("" for an empty document, which the scanner
// rejects anyway).
func (c *cursor) load(sc *xmlscan.Scanner, build *strings.Builder, ref string) (rootTag string, err error) {
	sawRoot := false
	for {
		tok, err := sc.Next()
		if err == io.EOF {
			if build == nil && sc.ContentByte() != len(ref) {
				return rootTag, errContentMismatch
			}
			return rootTag, nil
		}
		if err != nil {
			return rootTag, err
		}
		switch tok.Kind {
		case xmlscan.KindStartElement:
			if !sawRoot {
				sawRoot = true
				rootTag = tok.Name
				continue // absorb the per-hierarchy root start
			}
			ev := streamEvent{
				kind:    StartElement,
				name:    tok.Name,
				pos:     tok.ContentPos,
				bytePos: tok.ContentByte,
			}
			if len(tok.Attrs) > 0 {
				ev.attrLo = int32(len(c.attrs))
				for _, a := range tok.Attrs {
					c.attrs = append(c.attrs, goddag.Attr{Name: a.Name, Value: a.Value})
				}
				ev.attrHi = int32(len(c.attrs))
			}
			c.events = append(c.events, ev)
			if tok.SelfClosing {
				c.events = append(c.events, streamEvent{
					kind: EndElement, name: tok.Name,
					pos: tok.ContentPos, bytePos: tok.ContentByte,
				})
			}
		case xmlscan.KindEndElement:
			if tok.Depth == 0 {
				continue // absorb the per-hierarchy root end
			}
			c.events = append(c.events, streamEvent{
				kind: EndElement, name: tok.Name,
				pos: tok.ContentPos, bytePos: tok.ContentByte,
			})
		case xmlscan.KindText:
			// CoalesceCDATA folds CDATA sections into text tokens.
			if tok.Text == "" {
				continue
			}
			if build != nil {
				build.WriteString(tok.Text)
				continue
			}
			end := tok.ContentByte + len(tok.Text)
			if end > len(ref) || ref[tok.ContentByte:end] != tok.Text {
				return rootTag, errContentMismatch
			}
		default:
			// Comments, PIs, doctype: no structural event.
		}
	}
}

// eventClass orders event kinds at equal positions: ends before starts.
func eventClass(k EventKind) int {
	if k == EndElement {
		return 0
	}
	return 1
}

// eventHeap is the k-way merge heap over cursors with pending events.
// Each cursor tracks its own index (heapIdx), so Fix and Remove after a
// cursor step are O(log k) with no linear scan.
type eventHeap struct {
	items []*cursor
}

func (h *eventHeap) Len() int           { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool { return h.items[i].less(h.items[j]) }
func (h *eventHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}
func (h *eventHeap) Push(x any) {
	c := x.(*cursor)
	c.heapIdx = len(h.items)
	h.items = append(h.items, c)
}
func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Next returns the next merged event, or io.EOF after EndDocument.
// All fallible work happens in NewStream; after a successful NewStream
// the only non-nil result is io.EOF once the stream is drained.
func (s *Stream) Next() (Event, error) {
	if !s.started {
		s.started = true
		return Event{Kind: StartDocument, Name: s.rootTag, Text: s.content}, nil
	}
	// Find the next structural event across cursors.
	c := s.peekMin()
	// Emit pending text before the next structural position.
	nextPos, nextByte := s.runeLen, len(s.content)
	if c != nil {
		head := c.head()
		nextPos, nextByte = head.pos, head.bytePos
	}
	if s.textEmit < nextPos {
		ev := Event{Kind: Characters, Text: s.content[s.textEmitByte:nextByte], Pos: s.textEmit}
		s.textEmit, s.textEmitByte = nextPos, nextByte
		return ev, nil
	}
	if c == nil {
		if s.endPending {
			s.endPending = false
			return Event{Kind: EndDocument, Pos: s.runeLen}, nil
		}
		return Event{}, io.EOF
	}
	head := c.head()
	ev := Event{Kind: head.kind, Hierarchy: c.hier, Name: head.name, Pos: head.pos}
	if head.attrHi > head.attrLo {
		ev.Attrs = c.attrs[head.attrLo:head.attrHi:head.attrHi]
	}
	s.stepCursor(c)
	return ev, nil
}

// peekMin returns the cursor with the least pending event, or nil.
func (s *Stream) peekMin() *cursor {
	if s.opts.Strategy == MergeHeap {
		if len(s.h.items) == 0 {
			return nil
		}
		return s.h.items[0]
	}
	var best *cursor
	for _, c := range s.cursors {
		if c.exhausted() {
			continue
		}
		if best == nil || c.less(best) {
			best = c
		}
	}
	return best
}

// stepCursor advances c past its delivered event and restores the merge
// structure in O(log k) via the cursor's stored heap index.
func (s *Stream) stepCursor(c *cursor) {
	c.i++
	if s.opts.Strategy == MergeHeap {
		if c.exhausted() {
			heap.Remove(&s.h, c.heapIdx)
		} else {
			heap.Fix(&s.h, c.heapIdx)
		}
	}
}

// Events drains the stream into a slice.
func (s *Stream) Events() ([]Event, error) {
	var out []Event
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}
