package sacx

import (
	"container/heap"
	"io"

	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// MergeStrategy selects how the per-hierarchy token streams are merged.
// The k-way heap is the production strategy; the linear rescan exists as
// the ablation baseline for experiment A1 (DESIGN.md D2).
type MergeStrategy int

// Merge strategies.
const (
	// MergeHeap pops the next event with a k-way heap: O(log k) per event.
	MergeHeap MergeStrategy = iota
	// MergeRescan scans all k stream heads per event: O(k) per event.
	MergeRescan
)

// Options configure a Stream.
type Options struct {
	Strategy MergeStrategy
	// Entities supplies extra entity definitions to the tokenizer.
	Entities map[string]string
}

// Stream is the merged SACX event stream over a distributed document.
// Create with NewStream; read with Next until io.EOF.
type Stream struct {
	cursors []*cursor
	opts    Options
	rootTag string
	content string
	runes   []rune // content as runes, for O(1) run slicing

	h          eventHeap
	started    bool // StartDocument delivered
	rootOpen   int  // streams whose root is still open
	endPending bool // EndDocument not yet delivered
	textEmit   int  // content offset up to which text has been emitted
	err        error
}

// cursor walks one hierarchy's token stream, mapping tokens to candidate
// events. The root element's own start/end tokens are absorbed (the merged
// stream has a single StartDocument/EndDocument pair).
type cursor struct {
	hier    string
	scanner *xmlscan.Scanner
	idx     int // stream index for deterministic ordering

	pending   *Event // next candidate event, nil when exhausted
	queuedEnd *Event // synthesized end for a self-closing tag
	sawRoot   bool
	done      bool
}

// NewStream verifies the distributed document and prepares the merge.
func NewStream(sources []Source, opts Options) (*Stream, error) {
	rootTag, content, err := verifySources(sources)
	if err != nil {
		return nil, err
	}
	s := &Stream{opts: opts, rootTag: rootTag, content: content, runes: []rune(content), rootOpen: len(sources), endPending: true}
	for i, src := range sources {
		c := &cursor{
			hier:    src.Hierarchy,
			scanner: xmlscan.New(src.Data, xmlscan.Options{Entities: opts.Entities, CoalesceCDATA: true}),
			idx:     i,
		}
		if err := c.advance(); err != nil {
			return nil, err
		}
		s.cursors = append(s.cursors, c)
	}
	if opts.Strategy == MergeHeap {
		s.h = eventHeap{s: s}
		for _, c := range s.cursors {
			if c.pending != nil {
				s.h.items = append(s.h.items, c)
			}
		}
		heap.Init(&s.h)
	}
	return s, nil
}

// RootTag returns the shared root element tag.
func (s *Stream) RootTag() string { return s.rootTag }

// Content returns the shared character content.
func (s *Stream) Content() string { return s.content }

// advance loads the cursor's next candidate event from its token stream.
// Text tokens are consumed for offset tracking but produce no event: the
// merged stream synthesizes Characters runs itself (content is shared).
func (c *cursor) advance() error {
	c.pending = nil
	for {
		tok, err := c.scanner.Next()
		if err == io.EOF {
			c.done = true
			return nil
		}
		if err != nil {
			return err
		}
		switch tok.Kind {
		case xmlscan.KindStartElement:
			if !c.sawRoot {
				c.sawRoot = true
				if tok.SelfClosing {
					c.done = true
					return nil
				}
				continue // absorb per-hierarchy root start
			}
			attrs := make([]goddag.Attr, len(tok.Attrs))
			for i, a := range tok.Attrs {
				attrs[i] = goddag.Attr{Name: a.Name, Value: a.Value}
			}
			c.pending = &Event{
				Kind: StartElement, Hierarchy: c.hier,
				Name: tok.Name, Attrs: attrs, Pos: tok.ContentPos,
			}
			if tok.SelfClosing {
				// Synthesize the matching end immediately after; handled
				// by storing a queued end event.
				c.queuedEnd = &Event{Kind: EndElement, Hierarchy: c.hier, Name: tok.Name, Pos: tok.ContentPos}
			}
			return nil
		case xmlscan.KindEndElement:
			if tok.Depth == 0 {
				// Root close: no event, stream will finish.
				continue
			}
			c.pending = &Event{Kind: EndElement, Hierarchy: c.hier, Name: tok.Name, Pos: tok.ContentPos}
			return nil
		default:
			// Text, comments, PIs, doctype: no structural event.
			continue
		}
	}
}

// eventClass orders event kinds at equal positions: ends before starts.
func eventClass(k EventKind) int {
	if k == EndElement {
		return 0
	}
	return 1
}

// less orders cursors by their pending events.
func eventLess(a, b *Event, ai, bi int) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	ca, cb := eventClass(a.Kind), eventClass(b.Kind)
	if ca != cb {
		return ca < cb
	}
	return ai < bi
}

type eventHeap struct {
	s     *Stream
	items []*cursor
}

func (h *eventHeap) Len() int { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool {
	return eventLess(h.items[i].pending, h.items[j].pending, h.items[i].idx, h.items[j].idx)
}
func (h *eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventHeap) Push(x any)    { h.items = append(h.items, x.(*cursor)) }
func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Next returns the next merged event, or io.EOF after EndDocument.
func (s *Stream) Next() (Event, error) {
	if s.err != nil {
		return Event{}, s.err
	}
	if !s.started {
		s.started = true
		return Event{Kind: StartDocument, Name: s.rootTag, Text: s.content}, nil
	}
	// Find the next structural event across cursors.
	c := s.peekMin()
	contentLen := len(s.runes)
	// Emit pending text before the next structural position.
	nextPos := contentLen
	if c != nil {
		nextPos = c.pending.Pos
	}
	if s.textEmit < nextPos {
		ev := Event{Kind: Characters, Text: string(s.runes[s.textEmit:nextPos]), Pos: s.textEmit}
		s.textEmit = nextPos
		return ev, nil
	}
	if c == nil {
		if s.endPending {
			s.endPending = false
			return Event{Kind: EndDocument, Pos: contentLen}, nil
		}
		return Event{}, io.EOF
	}
	ev := *c.pending
	if err := s.stepCursor(c); err != nil {
		s.err = err
		return Event{}, err
	}
	return ev, nil
}

// peekMin returns the cursor with the least pending event, or nil.
func (s *Stream) peekMin() *cursor {
	if s.opts.Strategy == MergeHeap {
		if len(s.h.items) == 0 {
			return nil
		}
		return s.h.items[0]
	}
	var best *cursor
	for _, c := range s.cursors {
		if c.pending == nil {
			continue
		}
		if best == nil || eventLess(c.pending, best.pending, c.idx, best.idx) {
			best = c
		}
	}
	return best
}

// stepCursor advances c past its delivered event and restores the merge
// structure.
func (s *Stream) stepCursor(c *cursor) error {
	if c.queuedEnd != nil {
		c.pending, c.queuedEnd = c.queuedEnd, nil
	} else if err := c.advance(); err != nil {
		return err
	}
	if s.opts.Strategy == MergeHeap {
		if c.pending == nil {
			heap.Remove(&s.h, indexOf(s.h.items, c))
		} else {
			heap.Fix(&s.h, indexOf(s.h.items, c))
		}
	}
	return nil
}

func indexOf(items []*cursor, c *cursor) int {
	for i, it := range items {
		if it == c {
			return i
		}
	}
	return -1
}

// Events drains the stream into a slice.
func (s *Stream) Events() ([]Event, error) {
	var out []Event
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}
