package sacx

import (
	"container/heap"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// MergeStrategy selects how the per-hierarchy token streams are merged.
// The k-way heap is the production strategy; the linear rescan exists as
// the ablation baseline for experiment A1 (see PERFORMANCE.md).
type MergeStrategy int

// Merge strategies.
const (
	// MergeHeap pops the next event with a k-way heap: O(log k) per event.
	MergeHeap MergeStrategy = iota
	// MergeRescan scans all k stream heads per event: O(k) per event.
	MergeRescan
)

// Options configure a Stream.
type Options struct {
	Strategy MergeStrategy
	// Entities supplies extra entity definitions to the tokenizer.
	Entities map[string]string
}

// Stream is the merged SACX event stream over a distributed document.
// Create with NewStream; read with Next until io.EOF.
//
// Each source is tokenized exactly once, during NewStream: the pass that
// verifies the shared root tag and character content also records the
// structural events, so the merge itself touches no XML text again.
// Characters events are substrings of the shared content (no copying),
// and element events carry attribute slices out of a per-source arena.
//
// Names and attribute values alias the Source.Data bytes; the sources
// must stay unmutated while the stream or anything built from it is in
// use (see Source.Data).
type Stream struct {
	cursors []*cursor
	opts    Options
	rootTag string
	content string

	h          eventHeap
	started    bool // StartDocument delivered
	endPending bool // EndDocument not yet delivered
	textEmit   int  // content byte offset up to which text has been emitted
}

// streamEvent is one structural event recorded while tokenizing a source:
// a start or end tag with its content byte position. Because every source
// is tokenized to completion before the merge starts, a start event also
// knows where its element ends (end); the merge uses it to order starts
// at one position widest-first, and Build uses it to stream complete
// element spans straight into the GODDAG bulk loader. Attributes live in
// the owning cursor's arena at [attrLo, attrHi).
type streamEvent struct {
	name   string
	pos    int32 // content byte offset
	end    int32 // matching end offset (start events; == pos for ends)
	attrLo int32
	attrHi int32
	kind   EventKind
}

// elemRec is one complete element of a source: its span plus the index
// of its start event (which carries name and attributes). Element
// records are what Build merges — they are kept sorted per source in
// document order (CompareSpans, then end-tag order), so the k-way merge
// emits elements ready for the bulk loader with no global sort.
type elemRec struct {
	span   document.Span
	ev     int32 // index of the start streamEvent in cursor.events
	endSeq int32 // order of the element's end tag within the source
}

// cursor holds one hierarchy's recorded event list and the merge position
// within it. The root element's own start/end tokens are absorbed during
// recording (the merged stream has a single StartDocument/EndDocument
// pair).
type cursor struct {
	hier    string
	events  []streamEvent
	attrs   []goddag.Attr // arena referenced by events
	elems   []elemRec     // per-source elements in document order
	i       int           // next event to deliver (Stream merge)
	ei      int           // next element to deliver (Build merge)
	idx     int           // stream index for deterministic ordering
	heapIdx int           // position in the merge heap

	// elemsOnly skips recording EndElement events: Build consumes only
	// the element records (whose spans already carry the end positions)
	// plus the start events they point at, so the Stream-facing end
	// events would be dead weight — half of all structural events. It
	// also records cuts, the markup border positions in token order.
	elemsOnly bool

	// cuts are the source's markup border positions, recorded in token
	// order — which is ascending, since tag content offsets only grow.
	// Build merges the k pre-sorted lists into the partition without
	// ever sorting. Only recorded when elemsOnly is set.
	cuts []int32
}

func (c *cursor) exhausted() bool { return c.i >= len(c.events) }

// head returns the cursor's pending event. Callers must check exhausted.
func (c *cursor) head() *streamEvent { return &c.events[c.i] }

// less orders cursors by their pending events: position, then ends before
// starts, then widest end first (so the element opening the larger span
// is delivered first, document order across hierarchies), then source
// order.
func (c *cursor) less(o *cursor) bool {
	a, b := c.head(), o.head()
	if a.pos != b.pos {
		return a.pos < b.pos
	}
	ca, cb := eventClass(a.kind), eventClass(b.kind)
	if ca != cb {
		return ca < cb
	}
	if ca == 1 && a.end != b.end {
		return a.end > b.end
	}
	return c.idx < o.idx
}

// NewStream verifies the distributed document and prepares the merge.
// Verification and event recording happen in the same single pass over
// each source.
func NewStream(sources []Source, opts Options) (*Stream, error) {
	rootTag, content, cursors, err := prepareSources(sources, opts, false)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		cursors: cursors,
		opts:    opts,
		rootTag: rootTag,
		content: content,
	}
	s.endPending = true
	if opts.Strategy == MergeHeap {
		for _, c := range s.cursors {
			if !c.exhausted() {
				c.heapIdx = len(s.h.items)
				s.h.items = append(s.h.items, c)
			}
		}
		heap.Init(&s.h)
	}
	return s, nil
}

// RootTag returns the shared root element tag.
func (s *Stream) RootTag() string { return s.rootTag }

// Content returns the shared character content.
func (s *Stream) Content() string { return s.content }

// load tokenizes one source into the cursor's event and element lists.
// When build is non-nil the decoded character content is appended to it
// (the reference source); otherwise every text run is compared in place
// against ref, the already-established shared content. The returned root
// tag is the source's root element name ("" for an empty document, which
// the scanner rejects anyway).
//
// Element spans are completed as end tags arrive (the scanner guarantees
// tag balance), then fixupElems restores document order within each
// equal-start run, leaving c.elems fully sorted for the merge. On the
// Stream path (elemsOnly unset) no element list is kept at all: the open
// stack holds start-event indices just long enough to patch their end
// offsets.
func (c *cursor) load(sc *xmlscan.Scanner, build *strings.Builder, ref string) (rootTag string, err error) {
	sawRoot := false
	// Indices of elements (elemsOnly) or start events (stream path)
	// awaiting their end tag.
	var open []int32
	endSeq := int32(0)
	var tok xmlscan.Token
	for {
		err := sc.NextInto(&tok)
		if err == io.EOF {
			// Recorded positions are int32; reject content past 2 GiB
			// (entity expansion can exceed the input size) instead of
			// letting the narrowed offsets wrap. ContentByte itself is an
			// int, so the check is exact even after a would-be wrap.
			if sc.ContentByte() > math.MaxInt32 {
				return rootTag, fmt.Errorf("sacx: character content exceeds %d bytes", math.MaxInt32)
			}
			if build == nil && sc.ContentByte() != len(ref) {
				return rootTag, errContentMismatch
			}
			if c.elemsOnly {
				c.fixupElems()
			}
			return rootTag, nil
		}
		if err != nil {
			return rootTag, err
		}
		switch tok.Kind {
		case xmlscan.KindStartElement:
			if !sawRoot {
				sawRoot = true
				rootTag = tok.Name
				continue // absorb the per-hierarchy root start
			}
			ev := streamEvent{
				kind: StartElement,
				name: tok.Name,
				pos:  int32(tok.ContentByte),
				end:  int32(tok.ContentByte), // patched when the end tag arrives
			}
			if len(tok.Attrs) > 0 {
				ev.attrLo = int32(len(c.attrs))
				for _, a := range tok.Attrs {
					c.attrs = append(c.attrs, goddag.Attr{Name: a.Name, Value: a.Value})
				}
				ev.attrHi = int32(len(c.attrs))
			}
			if c.elemsOnly {
				c.cuts = append(c.cuts, int32(tok.ContentByte))
				c.elems = append(c.elems, elemRec{
					span: document.NewSpan(tok.ContentByte, tok.ContentByte),
					ev:   int32(len(c.events)),
				})
				if tok.SelfClosing {
					c.elems[len(c.elems)-1].endSeq = endSeq
					endSeq++
				} else {
					open = append(open, int32(len(c.elems)-1))
				}
				c.events = append(c.events, ev)
				break
			}
			c.events = append(c.events, ev)
			if tok.SelfClosing {
				c.events = append(c.events, streamEvent{
					kind: EndElement, name: tok.Name,
					pos: int32(tok.ContentByte), end: int32(tok.ContentByte),
				})
			} else {
				open = append(open, int32(len(c.events)-1))
			}
		case xmlscan.KindEndElement:
			if tok.Depth == 0 {
				continue // absorb the per-hierarchy root end
			}
			// The scanner enforces tag balance, so open is never empty here.
			top := open[len(open)-1]
			open = open[:len(open)-1]
			if c.elemsOnly {
				el := &c.elems[top]
				el.span.End = tok.ContentByte
				el.endSeq = endSeq
				endSeq++
				c.events[el.ev].end = int32(tok.ContentByte)
				c.cuts = append(c.cuts, int32(tok.ContentByte))
				break
			}
			c.events[top].end = int32(tok.ContentByte)
			c.events = append(c.events, streamEvent{
				kind: EndElement, name: tok.Name,
				pos: int32(tok.ContentByte), end: int32(tok.ContentByte),
			})
		case xmlscan.KindText:
			// CoalesceCDATA folds CDATA sections into text tokens.
			if tok.Text == "" {
				continue
			}
			if build != nil {
				build.WriteString(tok.Text)
				continue
			}
			end := tok.ContentByte + len(tok.Text)
			if end > len(ref) || ref[tok.ContentByte:end] != tok.Text {
				return rootTag, errContentMismatch
			}
		default:
			// Comments, PIs, doctype: no structural event.
		}
	}
}

// fixupElems restores document order (CompareSpans, then end-tag order)
// within each run of elements opening at the same content position. The
// element list is recorded in start-tag order, which already has
// non-decreasing starts; only equal-start runs can violate document
// order (a milestone written before a wider sibling, or coextensive
// elements, whose tie is broken by the order their end tags appeared —
// exactly the order the pre-merge record sort used to establish
// globally). Runs are almost always length 1, so this is a linear scan
// with rare, tiny sorts — not a global O(n log n) pass.
func (c *cursor) fixupElems() {
	el := c.elems
	for i := 0; i < len(el); {
		j := i + 1
		for j < len(el) && el[j].span.Start == el[i].span.Start {
			j++
		}
		if j-i > 1 {
			sortRun(el[i:j])
		}
		i = j
	}
}

// sortRun orders one equal-start run by (End descending, end-tag order),
// skipping the sort when the run is already ordered (the common nested
// case).
func sortRun(run []elemRec) {
	sorted := true
	for i := 1; i < len(run); i++ {
		if elemLess(&run[i], &run[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	// Runs are tiny (a handful of tags at one content position); simple
	// insertion sort avoids the generic-sort machinery on the hot path.
	for i := 1; i < len(run); i++ {
		for j := i; j > 0 && elemLess(&run[j], &run[j-1]); j-- {
			run[j], run[j-1] = run[j-1], run[j]
		}
	}
}

// elemLess orders element records of one source: CompareSpans, then the
// order of their end tags (which distinguishes nested from stacked
// coextensive elements).
func elemLess(a, b *elemRec) bool {
	if c := document.CompareSpans(a.span, b.span); c != 0 {
		return c < 0
	}
	return a.endSeq < b.endSeq
}

// eventClass orders event kinds at equal positions: ends before starts.
func eventClass(k EventKind) int {
	if k == EndElement {
		return 0
	}
	return 1
}

// eventHeap is the k-way merge heap over cursors with pending events.
// Each cursor tracks its own index (heapIdx), so Fix and Remove after a
// cursor step are O(log k) with no linear scan.
type eventHeap struct {
	items []*cursor
}

func (h *eventHeap) Len() int           { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool { return h.items[i].less(h.items[j]) }
func (h *eventHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}
func (h *eventHeap) Push(x any) {
	c := x.(*cursor)
	c.heapIdx = len(h.items)
	h.items = append(h.items, c)
}
func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Next returns the next merged event, or io.EOF after EndDocument.
// All fallible work happens in NewStream; after a successful NewStream
// the only non-nil result is io.EOF once the stream is drained.
func (s *Stream) Next() (Event, error) {
	if !s.started {
		s.started = true
		return Event{Kind: StartDocument, Name: s.rootTag, Text: s.content, End: len(s.content)}, nil
	}
	// Find the next structural event across cursors.
	c := s.peekMin()
	// Emit pending text before the next structural position.
	nextByte := len(s.content)
	if c != nil {
		nextByte = int(c.head().pos)
	}
	if s.textEmit < nextByte {
		ev := Event{Kind: Characters, Text: s.content[s.textEmit:nextByte], Pos: s.textEmit, End: nextByte}
		s.textEmit = nextByte
		return ev, nil
	}
	if c == nil {
		if s.endPending {
			s.endPending = false
			return Event{Kind: EndDocument, Pos: len(s.content), End: len(s.content)}, nil
		}
		return Event{}, io.EOF
	}
	head := c.head()
	ev := Event{Kind: head.kind, Hierarchy: c.hier, Name: head.name, Pos: int(head.pos), End: int(head.end)}
	if head.attrHi > head.attrLo {
		ev.Attrs = c.attrs[head.attrLo:head.attrHi:head.attrHi]
	}
	s.stepCursor(c)
	return ev, nil
}

// peekMin returns the cursor with the least pending event, or nil.
func (s *Stream) peekMin() *cursor {
	if s.opts.Strategy == MergeHeap {
		if len(s.h.items) == 0 {
			return nil
		}
		return s.h.items[0]
	}
	var best *cursor
	for _, c := range s.cursors {
		if c.exhausted() {
			continue
		}
		if best == nil || c.less(best) {
			best = c
		}
	}
	return best
}

// stepCursor advances c past its delivered event and restores the merge
// structure in O(log k) via the cursor's stored heap index.
func (s *Stream) stepCursor(c *cursor) {
	c.i++
	if s.opts.Strategy == MergeHeap {
		if c.exhausted() {
			heap.Remove(&s.h, c.heapIdx)
		} else {
			heap.Fix(&s.h, c.heapIdx)
		}
	}
}

// Events drains the stream into a slice.
func (s *Stream) Events() ([]Event, error) {
	var out []Event
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}
