package sacx

import (
	"testing"

	"repro/internal/document"
)

// TestElemMergeGlobalOrder pins the global emission order of the
// element merge — (position, widest end first, source) — including
// after a cursor exhausts and is removed from the heap. A regression
// here once let the cursor swapped into the vacated root slot skip its
// sift-down, emitting a later-starting element before an
// earlier-starting one.
func TestElemMergeGlobalOrder(t *testing.T) {
	srcs := []Source{
		{Hierarchy: "a", Data: []byte(`<r><a>ab</a>cdef</r>`)},
		{Hierarchy: "b", Data: []byte(`<r>ab<b>cdef</b></r>`)},
		{Hierarchy: "c", Data: []byte(`<r>abcd<c>ef</c></r>`)},
		{Hierarchy: "d", Data: []byte(`<r>ab<d>cdef</d></r>`)},
	}
	want := []struct {
		hier string
		span document.Span
	}{
		{"a", document.NewSpan(0, 2)},
		{"b", document.NewSpan(2, 6)}, // equal spans: source order b, d
		{"d", document.NewSpan(2, 6)},
		{"c", document.NewSpan(4, 6)},
	}
	for _, strategy := range []MergeStrategy{MergeHeap, MergeRescan} {
		_, _, cursors, err := prepareSources(srcs, Options{Strategy: strategy}, true)
		if err != nil {
			t.Fatal(err)
		}
		var got []struct {
			hier string
			span document.Span
		}
		drain := func(c *cursor) {
			e := c.elems[c.ei]
			c.ei++
			got = append(got, struct {
				hier string
				span document.Span
			}{c.hier, e.span})
		}
		if strategy == MergeHeap {
			h := newElemHeap(cursors)
			for {
				c := h.min()
				if c == nil {
					break
				}
				drain(c)
				h.step(c)
			}
		} else {
			for {
				var best *cursor
				for _, c := range cursors {
					if c.ei >= len(c.elems) {
						continue
					}
					if best == nil || c.elemLess(best) {
						best = c
					}
				}
				if best == nil {
					break
				}
				drain(best)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("strategy %v: %d elements, want %d", strategy, len(got), len(want))
		}
		for i := range want {
			if got[i].hier != want[i].hier || got[i].span != want[i].span {
				t.Errorf("strategy %v: element %d = %s%v, want %s%v",
					strategy, i, got[i].hier, got[i].span, want[i].hier, want[i].span)
			}
		}
	}
}
