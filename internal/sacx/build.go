package sacx

import (
	"fmt"

	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// Build parses a distributed document into a GODDAG with no intermediate
// record list and no global sort: tokenizing each source (prepareSources)
// already yields that source's elements as complete spans in document
// order, so Build batch-cuts every leaf boundary and then k-way merges
// the per-source element lists — ordered by (position, widest end first,
// source) — straight into the GODDAG's bulk loader, which appends each
// element in O(1) amortized time.
//
// The document's element names and attribute values alias the sources'
// bytes; do not mutate any Source.Data while the document is in use.
func Build(sources []Source) (*goddag.Document, error) {
	return BuildWithOptions(sources, Options{})
}

// BuildWithOptions is Build with explicit stream options.
func BuildWithOptions(sources []Source, opts Options) (*goddag.Document, error) {
	rootTag, content, cursors, err := prepareSources(sources, opts, true)
	if err != nil {
		return nil, err
	}
	doc := goddag.New(rootTag, content)
	hiers := make([]*goddag.Hierarchy, len(cursors))
	elems, nattrs := 0, 0
	for i, c := range cursors {
		hiers[i] = doc.AddHierarchy(c.hier)
		elems += len(c.elems)
		nattrs += len(c.attrs)
	}

	// Batch-cut every markup border up front so the bulk loader can skip
	// its per-span cuts. Each source recorded its borders in token order
	// — already ascending — so the k lists merge into the partition in
	// O(B·k) comparisons with no sort at all.
	doc.Partition().CutAllSorted(mergeCuts(cursors))

	bulk := doc.BulkLoad()
	bulk.Grow(elems, nattrs)
	bulk.Precut()

	append1 := func(c *cursor) error {
		e := &c.elems[c.ei]
		c.ei++
		ev := &c.events[e.ev]
		var attrs []goddag.Attr
		if ev.attrHi > ev.attrLo {
			attrs = c.attrs[ev.attrLo:ev.attrHi:ev.attrHi]
		}
		if _, err := bulk.Append(hiers[c.idx], ev.name, attrs, e.span); err != nil {
			return fmt.Errorf("sacx: hierarchy %q: %w", c.hier, err)
		}
		return nil
	}

	switch {
	case len(cursors) == 1:
		// Single hierarchy: the per-source list is already the merge.
		c := cursors[0]
		for c.ei < len(c.elems) {
			if err := append1(c); err != nil {
				return nil, err
			}
		}
	case opts.Strategy == MergeRescan:
		// Ablation baseline: scan all heads per element.
		for {
			var best *cursor
			for _, c := range cursors {
				if c.ei >= len(c.elems) {
					continue
				}
				if best == nil || c.elemLess(best) {
					best = c
				}
			}
			if best == nil {
				break
			}
			if err := append1(best); err != nil {
				return nil, err
			}
		}
	default:
		h := newElemHeap(cursors)
		for {
			c := h.min()
			if c == nil {
				break
			}
			if err := append1(c); err != nil {
				return nil, err
			}
			h.step(c)
		}
	}
	return doc, nil
}

// mergeCuts merges the cursors' pre-sorted border position lists into
// one ascending slice (duplicates included; the partition dedups as it
// merges).
func mergeCuts(cursors []*cursor) []int {
	total := 0
	for _, c := range cursors {
		total += len(c.cuts)
	}
	out := make([]int, 0, total)
	if len(cursors) == 1 {
		for _, v := range cursors[0].cuts {
			out = append(out, int(v))
		}
		return out
	}
	pos := make([]int, len(cursors))
	for {
		best := -1
		var bv int32
		for i, c := range cursors {
			if pos[i] < len(c.cuts) && (best < 0 || c.cuts[pos[i]] < bv) {
				best, bv = i, c.cuts[pos[i]]
			}
		}
		if best < 0 {
			return out
		}
		pos[best]++
		out = append(out, int(bv))
	}
}

// elemLess orders cursors by their pending element records: document
// order (CompareSpans — position, then widest end first), then source
// order. This is the global insertion order the bulk loader consumes.
func (c *cursor) elemLess(o *cursor) bool {
	a, b := &c.elems[c.ei], &o.elems[o.ei]
	if a.span != b.span {
		return elemLess(a, b)
	}
	return c.idx < o.idx
}

// elemHeap is the k-way merge heap over per-source element lists. It is
// a hand-rolled binary heap (no interface boxing) keyed by elemLess;
// cursors store their slot in heapIdx.
type elemHeap struct {
	items []*cursor
}

func newElemHeap(cursors []*cursor) *elemHeap {
	h := &elemHeap{items: make([]*cursor, 0, len(cursors))}
	for _, c := range cursors {
		if c.ei < len(c.elems) {
			h.items = append(h.items, c)
		}
	}
	for i := range h.items {
		h.items[i].heapIdx = i
	}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// min returns the cursor with the least pending element, or nil.
func (h *elemHeap) min() *cursor {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// step advances c past its delivered element and restores heap order,
// removing the cursor when its list is exhausted. c must be the heap
// minimum (the cursor min() just returned): both paths only sift down,
// which is sufficient only from the root slot. The vacated slot must
// be captured before the swap: swap rewrites c.heapIdx to the last
// index, and it is the cursor moved *into* c's old slot that needs the
// sift-down.
func (h *elemHeap) step(c *cursor) {
	if c.ei >= len(c.elems) {
		i := c.heapIdx
		last := len(h.items) - 1
		h.swap(i, last)
		h.items = h.items[:last]
		if i < last {
			h.down(i)
		}
		return
	}
	h.down(c.heapIdx)
}

func (h *elemHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *elemHeap) down(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h.items[r].elemLess(h.items[l]) {
			least = r
		}
		if !h.items[least].elemLess(h.items[i]) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// Split serializes one hierarchy of a GODDAG back to a standalone XML
// document — the inverse of Build for a single hierarchy. It renders the
// shared root, the hierarchy's elements, and the full character content.
func Split(d *goddag.Document, hierarchy string) ([]byte, error) {
	h := d.Hierarchy(hierarchy)
	if h == nil {
		return nil, fmt.Errorf("sacx: unknown hierarchy %q", hierarchy)
	}
	var b []byte
	b = append(b, '<')
	b = append(b, d.RootTag()...)
	b = append(b, '>')
	b = appendNodes(b, d.Root().Children(h))
	b = append(b, '<', '/')
	b = append(b, d.RootTag()...)
	b = append(b, '>')
	return b, nil
}

func appendNodes(b []byte, nodes []goddag.Node) []byte {
	for _, n := range nodes {
		switch v := n.(type) {
		case *goddag.Element:
			b = append(b, '<')
			b = append(b, v.Name()...)
			for _, a := range v.Attrs() {
				b = append(b, ' ')
				b = append(b, a.Name...)
				b = append(b, '=', '"')
				b = append(b, xmlscan.EscapeAttr(a.Value)...)
				b = append(b, '"')
			}
			if v.IsEmpty() && len(v.ChildElements()) == 0 {
				b = append(b, '/', '>')
				continue
			}
			b = append(b, '>')
			b = appendNodes(b, v.Children())
			b = append(b, '<', '/')
			b = append(b, v.Name()...)
			b = append(b, '>')
		case goddag.Leaf:
			b = append(b, xmlscan.EscapeText(v.Text())...)
		}
	}
	return b
}
