package sacx

import (
	"fmt"
	"io"
	"slices"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// Build parses a distributed document into a GODDAG in one pass over the
// merged event stream: per-hierarchy element stacks turn start/end event
// pairs into element records. All leaf boundaries are then cut in one
// batch (O(B log B) rather than O(B·leaves)), and records are inserted
// widest-first through the GODDAG's bulk loader, which appends each
// element in O(1) amortized time instead of re-locating from the root.
//
// The document's element names and attribute values alias the sources'
// bytes; do not mutate any Source.Data while the document is in use.
func Build(sources []Source) (*goddag.Document, error) {
	return BuildWithOptions(sources, Options{})
}

// BuildWithOptions is Build with explicit stream options.
func BuildWithOptions(sources []Source, opts Options) (*goddag.Document, error) {
	st, err := NewStream(sources, opts)
	if err != nil {
		return nil, err
	}
	var doc *goddag.Document
	type open struct {
		name  string
		attrs []goddag.Attr
		pos   int
	}
	type record struct {
		h     *goddag.Hierarchy
		name  string
		attrs []goddag.Attr
		span  document.Span
		seq   int
	}
	type hstack struct {
		h    *goddag.Hierarchy
		open []open
	}
	stacks := make(map[string]*hstack, len(sources))
	// Every element contributes one start and one end event.
	records := make([]record, 0, st.totalEvents()/2)
	seq := 0
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case StartDocument:
			doc = goddag.New(ev.Name, ev.Text)
			for _, src := range sources {
				stacks[src.Hierarchy] = &hstack{h: doc.AddHierarchy(src.Hierarchy)}
			}
		case StartElement:
			hs := stacks[ev.Hierarchy]
			hs.open = append(hs.open, open{name: ev.Name, attrs: ev.Attrs, pos: ev.Pos})
		case EndElement:
			hs := stacks[ev.Hierarchy]
			if len(hs.open) == 0 {
				return nil, fmt.Errorf("sacx: unbalanced end of <%s> in hierarchy %q", ev.Name, ev.Hierarchy)
			}
			top := hs.open[len(hs.open)-1]
			hs.open = hs.open[:len(hs.open)-1]
			if top.name != ev.Name {
				return nil, fmt.Errorf("sacx: end of <%s> does not match open <%s> in hierarchy %q",
					ev.Name, top.name, ev.Hierarchy)
			}
			records = append(records, record{
				h: hs.h, name: top.name, attrs: top.attrs,
				span: document.NewSpan(top.pos, ev.Pos), seq: seq,
			})
			seq++
		case Characters, EndDocument:
			// Content was installed at StartDocument.
		}
	}
	for hier, hs := range stacks {
		if len(hs.open) != 0 {
			return nil, fmt.Errorf("sacx: hierarchy %q has %d unclosed elements", hier, len(hs.open))
		}
	}

	// Batch-cut every markup border, then insert widest-first: parents
	// land before children, so the bulk loader's per-hierarchy stacks
	// place every element without adoption churn. Equal spans keep
	// arrival order (inner element ended first), preserving nesting.
	cuts := make([]int, 0, 2*len(records))
	for _, r := range records {
		cuts = append(cuts, r.span.Start, r.span.End)
	}
	doc.Partition().CutAll(cuts)
	slices.SortFunc(records, func(a, b record) int {
		if c := document.CompareSpans(a.span, b.span); c != 0 {
			return c
		}
		return a.seq - b.seq
	})
	nattrs := 0
	for _, r := range records {
		nattrs += len(r.attrs)
	}
	bulk := doc.BulkLoad()
	bulk.Grow(len(records), nattrs)
	bulk.Precut() // CutAll above established every border
	for i := range records {
		r := &records[i]
		if _, err := bulk.Append(r.h, r.name, r.attrs, r.span); err != nil {
			return nil, fmt.Errorf("sacx: hierarchy %q: %w", r.h.Name(), err)
		}
	}
	return doc, nil
}

// Split serializes one hierarchy of a GODDAG back to a standalone XML
// document — the inverse of Build for a single hierarchy. It renders the
// shared root, the hierarchy's elements, and the full character content.
func Split(d *goddag.Document, hierarchy string) ([]byte, error) {
	h := d.Hierarchy(hierarchy)
	if h == nil {
		return nil, fmt.Errorf("sacx: unknown hierarchy %q", hierarchy)
	}
	var b []byte
	b = append(b, '<')
	b = append(b, d.RootTag()...)
	b = append(b, '>')
	b = appendNodes(b, d.Root().Children(h))
	b = append(b, '<', '/')
	b = append(b, d.RootTag()...)
	b = append(b, '>')
	return b, nil
}

func appendNodes(b []byte, nodes []goddag.Node) []byte {
	for _, n := range nodes {
		switch v := n.(type) {
		case *goddag.Element:
			b = append(b, '<')
			b = append(b, v.Name()...)
			for _, a := range v.Attrs() {
				b = append(b, ' ')
				b = append(b, a.Name...)
				b = append(b, '=', '"')
				b = append(b, xmlscan.EscapeAttr(a.Value)...)
				b = append(b, '"')
			}
			if v.IsEmpty() && len(v.ChildElements()) == 0 {
				b = append(b, '/', '>')
				continue
			}
			b = append(b, '>')
			b = appendNodes(b, v.Children())
			b = append(b, '<', '/')
			b = append(b, v.Name()...)
			b = append(b, '>')
		case goddag.Leaf:
			b = append(b, xmlscan.EscapeText(v.Text())...)
		}
	}
	return b
}
