package sacx

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/document"
	"repro/internal/goddag"
)

// Build parses a distributed document into a GODDAG in one pass over the
// merged event stream: per-hierarchy element stacks turn start/end event
// pairs into element records. All leaf boundaries are then cut in one
// batch (O(B log B) rather than O(B·leaves)), and records are inserted
// widest-first so the per-insert adoption work stays minimal.
func Build(sources []Source) (*goddag.Document, error) {
	return BuildWithOptions(sources, Options{})
}

// BuildWithOptions is Build with explicit stream options.
func BuildWithOptions(sources []Source, opts Options) (*goddag.Document, error) {
	st, err := NewStream(sources, opts)
	if err != nil {
		return nil, err
	}
	var doc *goddag.Document
	type open struct {
		name  string
		attrs []goddag.Attr
		pos   int
	}
	type record struct {
		hier  string
		name  string
		attrs []goddag.Attr
		span  document.Span
		seq   int
	}
	stacks := map[string][]open{}
	for _, src := range sources {
		stacks[src.Hierarchy] = nil
	}
	var records []record
	seq := 0
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case StartDocument:
			doc = goddag.New(ev.Name, ev.Text)
			for _, src := range sources {
				doc.AddHierarchy(src.Hierarchy)
			}
		case StartElement:
			stacks[ev.Hierarchy] = append(stacks[ev.Hierarchy],
				open{name: ev.Name, attrs: ev.Attrs, pos: ev.Pos})
		case EndElement:
			stack := stacks[ev.Hierarchy]
			if len(stack) == 0 {
				return nil, fmt.Errorf("sacx: unbalanced end of <%s> in hierarchy %q", ev.Name, ev.Hierarchy)
			}
			top := stack[len(stack)-1]
			stacks[ev.Hierarchy] = stack[:len(stack)-1]
			if top.name != ev.Name {
				return nil, fmt.Errorf("sacx: end of <%s> does not match open <%s> in hierarchy %q",
					ev.Name, top.name, ev.Hierarchy)
			}
			records = append(records, record{
				hier: ev.Hierarchy, name: top.name, attrs: top.attrs,
				span: document.NewSpan(top.pos, ev.Pos), seq: seq,
			})
			seq++
		case Characters, EndDocument:
			// Content was installed at StartDocument.
		}
	}
	for hier, stack := range stacks {
		if len(stack) != 0 {
			return nil, fmt.Errorf("sacx: hierarchy %q has %d unclosed elements", hier, len(stack))
		}
	}

	// Batch-cut every markup border, then insert widest-first: parents
	// land before children, so adoption churn never occurs. Equal spans
	// keep arrival order (inner element ended first), preserving nesting.
	cuts := make([]int, 0, 2*len(records))
	for _, r := range records {
		cuts = append(cuts, r.span.Start, r.span.End)
	}
	doc.Partition().CutAll(cuts)
	sort.SliceStable(records, func(i, j int) bool {
		c := document.CompareSpans(records[i].span, records[j].span)
		if c != 0 {
			return c < 0
		}
		return records[i].seq < records[j].seq
	})
	for _, r := range records {
		h := doc.Hierarchy(r.hier)
		if _, err := doc.InsertElement(h, r.name, r.attrs, r.span); err != nil {
			return nil, fmt.Errorf("sacx: hierarchy %q: %w", r.hier, err)
		}
	}
	return doc, nil
}

// Split serializes one hierarchy of a GODDAG back to a standalone XML
// document — the inverse of Build for a single hierarchy. It renders the
// shared root, the hierarchy's elements, and the full character content.
func Split(d *goddag.Document, hierarchy string) ([]byte, error) {
	h := d.Hierarchy(hierarchy)
	if h == nil {
		return nil, fmt.Errorf("sacx: unknown hierarchy %q", hierarchy)
	}
	var b []byte
	b = append(b, '<')
	b = append(b, d.RootTag()...)
	b = append(b, '>')
	b = appendNodes(b, d.Root().Children(h))
	b = append(b, '<', '/')
	b = append(b, d.RootTag()...)
	b = append(b, '>')
	return b, nil
}

func appendNodes(b []byte, nodes []goddag.Node) []byte {
	for _, n := range nodes {
		switch v := n.(type) {
		case *goddag.Element:
			b = append(b, '<')
			b = append(b, v.Name()...)
			for _, a := range v.Attrs() {
				b = append(b, ' ')
				b = append(b, a.Name...)
				b = append(b, '=', '"')
				b = append(b, escapeAttr(a.Value)...)
				b = append(b, '"')
			}
			if v.IsEmpty() && len(v.ChildElements()) == 0 {
				b = append(b, '/', '>')
				continue
			}
			b = append(b, '>')
			b = appendNodes(b, v.Children())
			b = append(b, '<', '/')
			b = append(b, v.Name()...)
			b = append(b, '>')
		case goddag.Leaf:
			b = append(b, escapeText(v.Text())...)
		}
	}
	return b
}

func escapeText(s string) string {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		default:
			out = appendRune(out, r)
		}
	}
	return string(out)
}

func escapeAttr(s string) string {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, "&lt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = appendRune(out, r)
		}
	}
	return string(out)
}

func appendRune(b []byte, r rune) []byte {
	return append(b, string(r)...)
}
