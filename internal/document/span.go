// Package document models the character content of a document-centric XML
// document: byte-offset spans, the content itself, and the partition of
// the content into leaves induced by markup boundaries.
//
// All offsets carried through the pipeline are *byte* offsets into the
// UTF-8 document content, counted from 0 — markup boundaries always fall
// on rune boundaries, so byte offsets address the same positions as the
// paper's character offsets without the cost of rune counting on the
// parse path. Rune-offset semantics remain available at the API edge
// through Content's memoized byte↔rune index (Content.RuneOffset,
// Content.ByteOffset, and the span converters RuneSpan/ByteSpan).
//
// A Span is half-open: [Start, End). Spans with Start == End are
// permitted; they describe empty elements (milestones).
package document

import "fmt"

// Span is a half-open byte interval [Start, End) over document content.
type Span struct {
	Start int
	End   int
}

// NewSpan returns the span [start, end).
func NewSpan(start, end int) Span { return Span{Start: start, End: end} }

// Len returns the number of bytes covered by the span.
func (s Span) Len() int { return s.End - s.Start }

// IsEmpty reports whether the span covers no content.
func (s Span) IsEmpty() bool { return s.Start >= s.End }

// Valid reports whether the span is well formed (0 <= Start <= End).
func (s Span) Valid() bool { return 0 <= s.Start && s.Start <= s.End }

// Contains reports whether the byte offset pos lies inside the span.
func (s Span) Contains(pos int) bool { return s.Start <= pos && pos < s.End }

// ContainsSpan reports whether o lies entirely within s.
// An empty span at position p is contained if Start <= p <= End.
func (s Span) ContainsSpan(o Span) bool {
	if o.IsEmpty() {
		return s.Start <= o.Start && o.Start <= s.End
	}
	return s.Start <= o.Start && o.End <= s.End
}

// Intersects reports whether the two spans share at least one byte.
// Empty spans never intersect anything.
func (s Span) Intersects(o Span) bool {
	if s.IsEmpty() || o.IsEmpty() {
		return false
	}
	return s.Start < o.End && o.Start < s.End
}

// Intersection returns the common part of two spans and whether it is
// non-empty.
func (s Span) Intersection(o Span) (Span, bool) {
	lo, hi := max(s.Start, o.Start), min(s.End, o.End)
	if lo >= hi {
		return Span{}, false
	}
	return Span{Start: lo, End: hi}, true
}

// Overlaps reports whether s and o *properly* overlap: they intersect but
// neither contains the other. This is the relation behind the Extended
// XPath `overlapping` axis — fragmentation is needed exactly when two
// elements properly overlap.
func (s Span) Overlaps(o Span) bool {
	return s.Intersects(o) && !s.ContainsSpan(o) && !o.ContainsSpan(s)
}

// OverlapsLeft reports whether s properly overlaps o and begins before it
// (s sticks out of o on the left: s.Start < o.Start < s.End < o.End).
func (s Span) OverlapsLeft(o Span) bool {
	return s.Start < o.Start && o.Start < s.End && s.End < o.End
}

// OverlapsRight reports whether s properly overlaps o and ends after it
// (o.Start < s.Start < o.End < s.End).
func (s Span) OverlapsRight(o Span) bool {
	return o.Start < s.Start && s.Start < o.End && o.End < s.End
}

// Before reports whether s ends at or before the start of o.
func (s Span) Before(o Span) bool { return s.End <= o.Start }

// After reports whether s starts at or after the end of o.
func (s Span) After(o Span) bool { return s.Start >= o.End }

// Union returns the smallest span covering both s and o.
func (s Span) Union(o Span) Span {
	return Span{Start: min(s.Start, o.Start), End: max(s.End, o.End)}
}

// Shift returns the span translated by delta bytes.
func (s Span) Shift(delta int) Span {
	return Span{Start: s.Start + delta, End: s.End + delta}
}

// String formats the span as [start,end).
func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Start, s.End) }

// CompareSpans orders spans by start, then by *descending* end, so that a
// containing span sorts before the spans it contains. This is document
// order for elements that open at the same content position.
func CompareSpans(a, b Span) int {
	switch {
	case a.Start < b.Start:
		return -1
	case a.Start > b.Start:
		return 1
	case a.End > b.End:
		return -1
	case a.End < b.End:
		return 1
	default:
		return 0
	}
}
