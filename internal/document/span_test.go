package document

import (
	"testing"
	"testing/quick"
)

func TestSpanBasics(t *testing.T) {
	s := NewSpan(2, 5)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.IsEmpty() {
		t.Error("not empty")
	}
	if !s.Valid() {
		t.Error("valid")
	}
	if !NewSpan(3, 3).IsEmpty() {
		t.Error("empty span should be empty")
	}
	if NewSpan(-1, 2).Valid() {
		t.Error("negative start should be invalid")
	}
	if NewSpan(5, 2).Valid() {
		t.Error("reversed span should be invalid")
	}
	if s.String() != "[2,5)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSpanContains(t *testing.T) {
	s := NewSpan(2, 5)
	for _, pos := range []int{2, 3, 4} {
		if !s.Contains(pos) {
			t.Errorf("Contains(%d) = false", pos)
		}
	}
	for _, pos := range []int{1, 5, 6} {
		if s.Contains(pos) {
			t.Errorf("Contains(%d) = true", pos)
		}
	}
}

func TestSpanContainsSpan(t *testing.T) {
	outer := NewSpan(2, 10)
	cases := []struct {
		in   Span
		want bool
	}{
		{NewSpan(2, 10), true},
		{NewSpan(3, 9), true},
		{NewSpan(2, 5), true},
		{NewSpan(5, 10), true},
		{NewSpan(1, 5), false},
		{NewSpan(5, 11), false},
		{NewSpan(0, 2), false},
		{NewSpan(5, 5), true},   // empty span inside
		{NewSpan(2, 2), true},   // empty at start
		{NewSpan(10, 10), true}, // empty at end boundary
		{NewSpan(11, 11), false},
	}
	for _, c := range cases {
		if got := outer.ContainsSpan(c.in); got != c.want {
			t.Errorf("%v.ContainsSpan(%v) = %v, want %v", outer, c.in, got, c.want)
		}
	}
}

func TestSpanIntersects(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{NewSpan(0, 5), NewSpan(3, 8), true},
		{NewSpan(0, 5), NewSpan(5, 8), false}, // touching, half-open
		{NewSpan(0, 5), NewSpan(6, 8), false},
		{NewSpan(0, 5), NewSpan(1, 2), true},
		{NewSpan(3, 3), NewSpan(0, 5), false}, // empty never intersects
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("Intersects not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestSpanIntersection(t *testing.T) {
	got, ok := NewSpan(0, 5).Intersection(NewSpan(3, 8))
	if !ok || got != NewSpan(3, 5) {
		t.Errorf("got %v ok=%v", got, ok)
	}
	if _, ok := NewSpan(0, 3).Intersection(NewSpan(3, 8)); ok {
		t.Error("touching spans should not intersect")
	}
}

func TestSpanOverlaps(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{NewSpan(0, 5), NewSpan(3, 8), true},   // proper overlap
		{NewSpan(3, 8), NewSpan(0, 5), true},   // symmetric
		{NewSpan(0, 10), NewSpan(3, 8), false}, // containment
		{NewSpan(3, 8), NewSpan(0, 10), false},
		{NewSpan(0, 5), NewSpan(5, 8), false}, // adjacent
		{NewSpan(0, 5), NewSpan(0, 5), false}, // equal
		{NewSpan(0, 5), NewSpan(0, 8), false}, // same start: containment
		{NewSpan(0, 8), NewSpan(3, 8), false}, // same end: containment
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSpanOverlapsLeftRight(t *testing.T) {
	a, b := NewSpan(0, 5), NewSpan(3, 8)
	if !a.OverlapsLeft(b) {
		t.Error("a should left-overlap b")
	}
	if a.OverlapsRight(b) {
		t.Error("a should not right-overlap b")
	}
	if !b.OverlapsRight(a) {
		t.Error("b should right-overlap a")
	}
	if b.OverlapsLeft(a) {
		t.Error("b should not left-overlap a")
	}
}

// Property: Overlaps == OverlapsLeft || OverlapsRight, and both are
// mutually exclusive.
func TestOverlapDecomposition(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		a := NewSpan(int(a0%50), int(a0%50)+int(a1%50))
		b := NewSpan(int(b0%50), int(b0%50)+int(b1%50))
		l, r := a.OverlapsLeft(b), a.OverlapsRight(b)
		if l && r {
			return false
		}
		return a.Overlaps(b) == (l || r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is symmetric and irreflexive.
func TestOverlapSymmetry(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		a := NewSpan(int(a0%50), int(a0%50)+int(a1%50))
		b := NewSpan(int(b0%50), int(b0%50)+int(b1%50))
		if a.Overlaps(a) {
			return false
		}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBeforeAfter(t *testing.T) {
	a, b := NewSpan(0, 3), NewSpan(3, 6)
	if !a.Before(b) || !b.After(a) {
		t.Error("adjacent spans are before/after")
	}
	if a.After(b) || b.Before(a) {
		t.Error("wrong direction")
	}
}

func TestUnionShift(t *testing.T) {
	if got := NewSpan(1, 3).Union(NewSpan(5, 9)); got != NewSpan(1, 9) {
		t.Errorf("Union = %v", got)
	}
	if got := NewSpan(1, 3).Shift(10); got != NewSpan(11, 13) {
		t.Errorf("Shift = %v", got)
	}
}

func TestCompareSpans(t *testing.T) {
	cases := []struct {
		a, b Span
		want int
	}{
		{NewSpan(0, 5), NewSpan(1, 3), -1},
		{NewSpan(1, 3), NewSpan(0, 5), 1},
		{NewSpan(0, 5), NewSpan(0, 3), -1}, // wider first at same start
		{NewSpan(0, 3), NewSpan(0, 5), 1},
		{NewSpan(2, 4), NewSpan(2, 4), 0},
	}
	for _, c := range cases {
		if got := CompareSpans(c.a, c.b); got != c.want {
			t.Errorf("CompareSpans(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
