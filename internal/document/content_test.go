package document

import (
	"testing"
)

func TestContentBasics(t *testing.T) {
	c := NewContent("hello world")
	if c.Len() != 11 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.String() != "hello world" {
		t.Errorf("String = %q", c.String())
	}
	if got := c.Slice(NewSpan(6, 11)); got != "world" {
		t.Errorf("Slice = %q", got)
	}
	if got := c.RuneAt(4); got != 'o' {
		t.Errorf("RuneAt = %q", got)
	}
}

func TestContentRuneOffsets(t *testing.T) {
	// Old English: multi-byte runes must be addressed by rune offset.
	c := NewContent("ƿæs þæt")
	if c.Len() != 7 {
		t.Errorf("Len = %d, want 7", c.Len())
	}
	if got := c.Slice(NewSpan(0, 3)); got != "ƿæs" {
		t.Errorf("Slice = %q", got)
	}
	if got := c.Slice(NewSpan(4, 7)); got != "þæt" {
		t.Errorf("Slice = %q", got)
	}
}

func TestContentInsertDelete(t *testing.T) {
	c := NewContent("abcdef")
	n := c.Insert(3, "XY")
	if n != 2 || c.String() != "abcXYdef" {
		t.Errorf("after insert: %q (n=%d)", c.String(), n)
	}
	n = c.Delete(NewSpan(3, 5))
	if n != 2 || c.String() != "abcdef" {
		t.Errorf("after delete: %q (n=%d)", c.String(), n)
	}
	c.Insert(0, "þ")
	if c.String() != "þabcdef" {
		t.Errorf("insert at 0: %q", c.String())
	}
	c.Insert(c.Len(), "!")
	if c.String() != "þabcdef!" {
		t.Errorf("insert at end: %q", c.String())
	}
}

func TestContentCloneEqual(t *testing.T) {
	c := NewContent("abc")
	d := c.Clone()
	if !c.Equal(d) {
		t.Error("clone should be equal")
	}
	d.Insert(0, "x")
	if c.Equal(d) {
		t.Error("mutated clone should differ")
	}
	if c.String() != "abc" {
		t.Error("clone mutation leaked into original")
	}
	if c.Equal(NewContent("abd")) {
		t.Error("different text should not be equal")
	}
}

func TestContentFind(t *testing.T) {
	c := NewContent("se þe him ær þæs")
	if got := c.Find("þ", 0); got != 3 {
		t.Errorf("Find þ from 0 = %d, want 3", got)
	}
	if got := c.Find("þ", 4); got != 13 {
		t.Errorf("Find þ from 4 = %d, want 13", got)
	}
	if got := c.Find("zzz", 0); got != -1 {
		t.Errorf("Find zzz = %d, want -1", got)
	}
	if got := c.Find("s", 100); got != -1 {
		t.Errorf("Find from beyond end = %d, want -1", got)
	}
}

func TestContentPanics(t *testing.T) {
	c := NewContent("abc")
	mustPanic(t, "slice", func() { c.Slice(NewSpan(0, 4)) })
	mustPanic(t, "runeAt", func() { c.RuneAt(3) })
	mustPanic(t, "insert", func() { c.Insert(4, "x") })
	mustPanic(t, "delete", func() { c.Delete(NewSpan(2, 9)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
