package document

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestContentBasics(t *testing.T) {
	c := NewContent("hello world")
	if c.Len() != 11 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.String() != "hello world" {
		t.Errorf("String = %q", c.String())
	}
	if got := c.Slice(NewSpan(6, 11)); got != "world" {
		t.Errorf("Slice = %q", got)
	}
	if got := c.RuneAt(4); got != 'o' {
		t.Errorf("RuneAt = %q", got)
	}
}

func TestContentByteOffsets(t *testing.T) {
	// Old English: offsets are byte offsets; multibyte runes count at
	// their encoded length (ƿ and æ and þ are 2 bytes each).
	c := NewContent("ƿæs þæt")
	if c.Len() != 11 {
		t.Errorf("Len = %d, want 11", c.Len())
	}
	if c.RuneLen() != 7 {
		t.Errorf("RuneLen = %d, want 7", c.RuneLen())
	}
	if got := c.Slice(NewSpan(0, 5)); got != "ƿæs" {
		t.Errorf("Slice = %q", got)
	}
	if got := c.Slice(NewSpan(6, 11)); got != "þæt" {
		t.Errorf("Slice = %q", got)
	}
	if got := c.RuneAt(6); got != 'þ' {
		t.Errorf("RuneAt(6) = %q", got)
	}
}

func TestContentRuneIndex(t *testing.T) {
	c := NewContent("ƿæs þæt")
	// byte 6 is the start of þ: runes ƿ æ s ' ' precede it.
	if got := c.RuneOffset(6); got != 4 {
		t.Errorf("RuneOffset(6) = %d, want 4", got)
	}
	if got := c.ByteOffset(4); got != 6 {
		t.Errorf("ByteOffset(4) = %d, want 6", got)
	}
	if got := c.RuneSpan(NewSpan(6, 11)); got != NewSpan(4, 7) {
		t.Errorf("RuneSpan = %v, want [4,7)", got)
	}
	if got := c.ByteSpan(NewSpan(4, 7)); got != NewSpan(6, 11) {
		t.Errorf("ByteSpan = %v, want [6,11)", got)
	}
	// Ends map to ends.
	if got := c.RuneOffset(c.Len()); got != c.RuneLen() {
		t.Errorf("RuneOffset(Len) = %d, want %d", got, c.RuneLen())
	}
	if got := c.ByteOffset(c.RuneLen()); got != c.Len() {
		t.Errorf("ByteOffset(RuneLen) = %d, want %d", got, c.Len())
	}
}

// TestContentRuneIndexRoundTrip proves the byte↔rune index agrees with
// utf8.RuneCountInString at every rune boundary, including across the
// checkpoint stride, for ASCII, dense multibyte, and astral-plane
// content.
func TestContentRuneIndexRoundTrip(t *testing.T) {
	texts := []string{
		"",
		"plain ascii content",
		"ƿæs þæt swa hwæt",
		// Long enough to cross several 256-byte checkpoints.
		strings.Repeat("文書の重なり構造🌲📚🔥𝔾𝕠 combining: åb̈ ", 40),
		strings.Repeat("ascii then suddenly 🧪", 50),
	}
	for _, text := range texts {
		c := NewContent(text)
		runeOff := 0
		for byteOff := 0; byteOff <= len(text); byteOff++ {
			if byteOff > 0 && !utf8.RuneStart(safeByte(text, byteOff)) {
				continue // not a rune boundary
			}
			want := utf8.RuneCountInString(text[:byteOff])
			if got := c.RuneOffset(byteOff); got != want {
				t.Fatalf("text %d: RuneOffset(%d) = %d, want %d", len(text), byteOff, got, want)
			}
			if got := c.ByteOffset(want); got != byteOff {
				t.Fatalf("text %d: ByteOffset(%d) = %d, want %d", len(text), want, got, byteOff)
			}
			runeOff++
		}
		if c.RuneLen() != utf8.RuneCountInString(text) {
			t.Fatalf("RuneLen = %d, want %d", c.RuneLen(), utf8.RuneCountInString(text))
		}
	}
}

// TestContentRuneIndexInvalidation proves mutations rebuild the index.
func TestContentRuneIndexInvalidation(t *testing.T) {
	c := NewContent("aþc")
	if got := c.RuneOffset(3); got != 2 {
		t.Fatalf("RuneOffset(3) = %d, want 2", got)
	}
	c.Insert(1, "æð")
	if c.String() != "aæðþc" {
		t.Fatalf("after insert: %q", c.String())
	}
	if got := c.RuneOffset(5); got != 3 {
		t.Errorf("after insert RuneOffset(5) = %d, want 3", got)
	}
	c.Delete(NewSpan(1, 7))
	if c.String() != "ac" {
		t.Fatalf("after delete: %q", c.String())
	}
	if got, want := c.RuneLen(), 2; got != want {
		t.Errorf("after delete RuneLen = %d, want %d", got, want)
	}
}

func safeByte(s string, i int) byte {
	if i >= len(s) {
		return 0
	}
	return s[i]
}

func TestContentInsertDelete(t *testing.T) {
	c := NewContent("abcdef")
	n := c.Insert(3, "XY")
	if n != 2 || c.String() != "abcXYdef" {
		t.Errorf("after insert: %q (n=%d)", c.String(), n)
	}
	n = c.Delete(NewSpan(3, 5))
	if n != 2 || c.String() != "abcdef" {
		t.Errorf("after delete: %q (n=%d)", c.String(), n)
	}
	if n := c.Insert(0, "þ"); n != 2 || c.String() != "þabcdef" {
		t.Errorf("insert at 0: %q (n=%d)", c.String(), n)
	}
	c.Insert(c.Len(), "!")
	if c.String() != "þabcdef!" {
		t.Errorf("insert at end: %q", c.String())
	}
}

func TestContentCloneEqual(t *testing.T) {
	c := NewContent("abc")
	d := c.Clone()
	if !c.Equal(d) {
		t.Error("clone should be equal")
	}
	d.Insert(0, "x")
	if c.Equal(d) {
		t.Error("mutated clone should differ")
	}
	if c.String() != "abc" {
		t.Error("clone mutation leaked into original")
	}
	if c.Equal(NewContent("abd")) {
		t.Error("different text should not be equal")
	}
}

func TestContentFind(t *testing.T) {
	c := NewContent("se þe him ær þæs")
	if got := c.Find("þ", 0); got != 3 {
		t.Errorf("Find þ from 0 = %d, want 3", got)
	}
	// þ at byte 3 is 2 bytes; the next þ starts at byte 15.
	if got := c.Find("þ", 5); got != 15 {
		t.Errorf("Find þ from 5 = %d, want 15", got)
	}
	if got := c.Find("zzz", 0); got != -1 {
		t.Errorf("Find zzz = %d, want -1", got)
	}
	if got := c.Find("s", 100); got != -1 {
		t.Errorf("Find from beyond end = %d, want -1", got)
	}
}

func TestContentPanics(t *testing.T) {
	c := NewContent("abc")
	mustPanic(t, "slice", func() { c.Slice(NewSpan(0, 4)) })
	mustPanic(t, "runeAt", func() { c.RuneAt(3) })
	mustPanic(t, "insert", func() { c.Insert(4, "x") })
	mustPanic(t, "delete", func() { c.Delete(NewSpan(2, 9)) })
	mustPanic(t, "runeOffset", func() { c.RuneOffset(4) })
	mustPanic(t, "byteOffset", func() { c.ByteOffset(4) })
	// Mutation offsets must lie on rune boundaries (æ spans bytes 1-2).
	m := NewContent("aæb")
	mustPanic(t, "insert mid-rune", func() { m.Insert(2, "x") })
	mustPanic(t, "delete mid-rune", func() { m.Delete(NewSpan(0, 2)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
