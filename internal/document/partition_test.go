package document

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionInitial(t *testing.T) {
	p := NewPartition(10)
	if p.NumLeaves() != 1 {
		t.Fatalf("NumLeaves = %d, want 1", p.NumLeaves())
	}
	if got := p.LeafSpan(0); got != NewSpan(0, 10) {
		t.Errorf("LeafSpan(0) = %v", got)
	}
	if err := p.Check(); err != nil {
		t.Error(err)
	}
}

func TestPartitionEmpty(t *testing.T) {
	p := NewPartition(0)
	if p.NumLeaves() != 0 {
		t.Errorf("NumLeaves = %d, want 0", p.NumLeaves())
	}
	if err := p.Check(); err != nil {
		t.Error(err)
	}
}

func TestPartitionCut(t *testing.T) {
	p := NewPartition(10)
	leaf, split := p.Cut(4)
	if !split || leaf != 1 {
		t.Errorf("Cut(4) = (%d,%v), want (1,true)", leaf, split)
	}
	if p.NumLeaves() != 2 {
		t.Fatalf("NumLeaves = %d", p.NumLeaves())
	}
	if p.LeafSpan(0) != NewSpan(0, 4) || p.LeafSpan(1) != NewSpan(4, 10) {
		t.Errorf("spans: %v %v", p.LeafSpan(0), p.LeafSpan(1))
	}
	// Cutting again at the same place is a no-op.
	leaf, split = p.Cut(4)
	if split || leaf != 1 {
		t.Errorf("repeat Cut(4) = (%d,%v), want (1,false)", leaf, split)
	}
	// Cut at 0 and at length never split.
	if _, split := p.Cut(0); split {
		t.Error("Cut(0) split")
	}
	if leaf, split := p.Cut(10); split || leaf != 2 {
		t.Errorf("Cut(len) = (%d,%v)", leaf, split)
	}
	if err := p.Check(); err != nil {
		t.Error(err)
	}
}

func TestPartitionCutOrdering(t *testing.T) {
	p := NewPartition(100)
	for _, pos := range []int{50, 20, 80, 20, 99, 1} {
		p.Cut(pos)
	}
	want := []int{0, 1, 20, 50, 80, 99}
	got := p.Boundaries()
	if len(got) != len(want) {
		t.Fatalf("boundaries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries %v, want %v", got, want)
		}
	}
}

func TestLeafAt(t *testing.T) {
	p := NewPartition(10)
	p.Cut(3)
	p.Cut(7)
	cases := []struct{ pos, want int }{
		{0, 0}, {2, 0}, {3, 1}, {6, 1}, {7, 2}, {9, 2},
	}
	for _, c := range cases {
		if got := p.LeafAt(c.pos); got != c.want {
			t.Errorf("LeafAt(%d) = %d, want %d", c.pos, got, c.want)
		}
	}
}

func TestLeafStartingAtAndRange(t *testing.T) {
	p := NewPartition(10)
	p.Cut(3)
	p.Cut(7)
	if i, ok := p.LeafStartingAt(3); !ok || i != 1 {
		t.Errorf("LeafStartingAt(3) = (%d,%v)", i, ok)
	}
	if _, ok := p.LeafStartingAt(4); ok {
		t.Error("LeafStartingAt(4) should fail")
	}
	if i, ok := p.LeafStartingAt(10); !ok || i != 3 {
		t.Errorf("LeafStartingAt(len) = (%d,%v)", i, ok)
	}
	first, last, ok := p.LeafRange(NewSpan(3, 10))
	if !ok || first != 1 || last != 3 {
		t.Errorf("LeafRange = (%d,%d,%v)", first, last, ok)
	}
	if _, _, ok := p.LeafRange(NewSpan(4, 7)); ok {
		t.Error("LeafRange with non-boundary start should fail")
	}
	// Empty span at a boundary.
	first, last, ok = p.LeafRange(NewSpan(7, 7))
	if !ok || first != 2 || last != 2 {
		t.Errorf("empty LeafRange = (%d,%d,%v)", first, last, ok)
	}
}

func TestInsertText(t *testing.T) {
	p := NewPartition(10)
	p.Cut(3)
	p.Cut(7)
	p.InsertText(5, 4) // inside leaf 1
	if p.Len() != 14 {
		t.Errorf("Len = %d", p.Len())
	}
	want := []int{0, 3, 11}
	got := p.Boundaries()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries %v, want %v", got, want)
		}
	}
	// Insert exactly at a boundary extends the previous leaf.
	p.InsertText(3, 2)
	got = p.Boundaries()
	want = []int{0, 5, 13}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries %v, want %v", got, want)
		}
	}
	if err := p.Check(); err != nil {
		t.Error(err)
	}
}

func TestInsertTextIntoEmpty(t *testing.T) {
	p := NewPartition(0)
	p.InsertText(0, 5)
	if p.Len() != 5 || p.NumLeaves() != 1 {
		t.Errorf("Len=%d NumLeaves=%d", p.Len(), p.NumLeaves())
	}
	if err := p.Check(); err != nil {
		t.Error(err)
	}
}

func TestDeleteRange(t *testing.T) {
	p := NewPartition(10)
	p.Cut(3)
	p.Cut(7)
	// Delete [2,8): swallows boundaries 3 and 7.
	p.DeleteRange(NewSpan(2, 8))
	if p.Len() != 4 {
		t.Errorf("Len = %d, want 4", p.Len())
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	got := p.Boundaries()
	if len(got) < 1 || got[0] != 0 {
		t.Errorf("boundaries %v", got)
	}
}

func TestDeleteAll(t *testing.T) {
	p := NewPartition(10)
	p.Cut(5)
	p.DeleteRange(NewSpan(0, 10))
	if p.Len() != 0 || p.NumLeaves() != 0 {
		t.Errorf("Len=%d NumLeaves=%d", p.Len(), p.NumLeaves())
	}
	if err := p.Check(); err != nil {
		t.Error(err)
	}
}

func TestMergeAt(t *testing.T) {
	p := NewPartition(10)
	p.Cut(5)
	if !p.MergeAt(5) {
		t.Error("MergeAt(5) failed")
	}
	if p.NumLeaves() != 1 {
		t.Errorf("NumLeaves = %d", p.NumLeaves())
	}
	if p.MergeAt(5) {
		t.Error("second MergeAt(5) should fail")
	}
	if p.MergeAt(0) {
		t.Error("MergeAt(0) must never succeed")
	}
}

func TestPartitionClone(t *testing.T) {
	p := NewPartition(10)
	p.Cut(4)
	q := p.Clone()
	q.Cut(8)
	if p.NumLeaves() != 2 || q.NumLeaves() != 3 {
		t.Errorf("clone not independent: %d %d", p.NumLeaves(), q.NumLeaves())
	}
}

// Property: after any sequence of cuts, leaves exactly tile [0, n).
func TestPartitionTiling(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		length := int(n%100) + 1
		p := NewPartition(length)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			p.Cut(rng.Intn(length + 1))
		}
		if err := p.Check(); err != nil {
			return false
		}
		spans := p.Spans()
		pos := 0
		for _, s := range spans {
			if s.Start != pos || s.IsEmpty() {
				return false
			}
			pos = s.End
		}
		return pos == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: insert/delete of the same range restores boundaries count and
// length invariants.
func TestPartitionEditInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		length := rng.Intn(90) + 10
		p := NewPartition(length)
		for i := 0; i < 10; i++ {
			p.Cut(rng.Intn(length + 1))
		}
		for i := 0; i < 10; i++ {
			switch rng.Intn(2) {
			case 0:
				p.InsertText(rng.Intn(p.Len()+1), rng.Intn(5))
			case 1:
				if p.Len() > 0 {
					a := rng.Intn(p.Len())
					b := a + rng.Intn(p.Len()-a)
					p.DeleteRange(NewSpan(a, b))
				}
			}
			if err := p.Check(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionPanics(t *testing.T) {
	p := NewPartition(10)
	mustPanic(t, "negative length", func() { NewPartition(-1) })
	mustPanic(t, "cut oob", func() { p.Cut(11) })
	mustPanic(t, "leafAt oob", func() { p.LeafAt(10) })
	mustPanic(t, "leafSpan oob", func() { p.LeafSpan(5) })
	mustPanic(t, "insert oob", func() { p.InsertText(11, 1) })
	mustPanic(t, "delete oob", func() { p.DeleteRange(NewSpan(5, 11)) })
}
