package document

import (
	"fmt"
	"sort"
)

// Partition maintains the division of document content into *leaves*: the
// finest-grained text fragments whose borders are the start/end positions
// of markup from all hierarchies (paper §3). Leaves are numbered 0..n-1 in
// content order; leaf i covers the span [starts[i], starts[i+1]).
//
// The zero value is not usable; call NewPartition.
type Partition struct {
	starts []int // ascending leaf start offsets; starts[0] == 0
	length int   // total content length in bytes
}

// NewPartition returns a partition of content of the given byte length
// into a single leaf (or zero leaves when length is 0).
func NewPartition(length int) *Partition {
	if length < 0 {
		panic("document: negative partition length")
	}
	p := &Partition{length: length}
	if length > 0 {
		p.starts = []int{0}
	}
	return p
}

// PartitionFromStarts reconstructs a partition from serialized leaf
// start offsets, taking ownership of starts. The caller (the v3
// store's materialization path) guarantees the invariants — ascending
// unique offsets beginning at 0, all below length — which Check
// verifies.
func PartitionFromStarts(length int, starts []int) *Partition {
	if length < 0 {
		panic("document: negative partition length")
	}
	return &Partition{starts: starts, length: length}
}

// Len returns the content length the partition covers.
func (p *Partition) Len() int { return p.length }

// NumLeaves returns the number of leaves.
func (p *Partition) NumLeaves() int { return len(p.starts) }

// LeafSpan returns the span of leaf i.
func (p *Partition) LeafSpan(i int) Span {
	if i < 0 || i >= len(p.starts) {
		panic(fmt.Sprintf("document: leaf index %d out of range [0,%d)", i, len(p.starts)))
	}
	end := p.length
	if i+1 < len(p.starts) {
		end = p.starts[i+1]
	}
	return Span{Start: p.starts[i], End: end}
}

// Spans returns the spans of all leaves in content order.
func (p *Partition) Spans() []Span {
	out := make([]Span, len(p.starts))
	for i := range p.starts {
		out[i] = p.LeafSpan(i)
	}
	return out
}

// LeafAt returns the index of the leaf containing byte offset pos.
func (p *Partition) LeafAt(pos int) int {
	if pos < 0 || pos >= p.length {
		panic(fmt.Sprintf("document: offset %d out of range [0,%d)", pos, p.length))
	}
	// First start > pos, minus one.
	i := sort.SearchInts(p.starts, pos+1) - 1
	return i
}

// Cut ensures there is a leaf boundary at byte offset pos, splitting the
// containing leaf if needed. It returns the index of the leaf that now
// *starts* at pos, and whether a split actually happened. pos == 0 and
// pos == Len() are accepted and never split (they are implicit borders);
// for pos == Len() the returned index is NumLeaves().
func (p *Partition) Cut(pos int) (leaf int, split bool) {
	if pos < 0 || pos > p.length {
		panic(fmt.Sprintf("document: cut offset %d out of range [0,%d]", pos, p.length))
	}
	if pos == p.length {
		return len(p.starts), false
	}
	i := sort.SearchInts(p.starts, pos)
	if i < len(p.starts) && p.starts[i] == pos {
		return i, false
	}
	// pos falls strictly inside leaf i-1; insert a new start at index i.
	p.starts = append(p.starts, 0)
	copy(p.starts[i+1:], p.starts[i:])
	p.starts[i] = pos
	return i, true
}

// CutAll establishes leaf boundaries at every given position in one pass,
// equivalent to (but much faster than) calling Cut for each: O((n+k) +
// k log k) instead of O(n·k). Positions at 0, at Len(), out-of-range
// duplicates of existing boundaries are ignored.
func (p *Partition) CutAll(positions []int) {
	if len(positions) == 0 || p.length == 0 {
		return
	}
	sorted := make([]int, len(positions))
	copy(sorted, positions)
	sort.Ints(sorted)
	p.CutAllSorted(sorted)
}

// CutAllSorted is CutAll for positions already in ascending order (not
// necessarily unique): the sort is skipped, making the whole batch cut
// O(n+k). The SACX build path produces its cut list pre-sorted by merging
// the per-source tag positions, which each arrive in document order.
func (p *Partition) CutAllSorted(sorted []int) {
	if len(sorted) == 0 || p.length == 0 {
		return
	}
	merged := make([]int, 0, len(p.starts)+len(sorted))
	i, j := 0, 0
	for i < len(p.starts) || j < len(sorted) {
		var v int
		switch {
		case i >= len(p.starts):
			v = sorted[j]
			j++
			if v <= 0 || v >= p.length {
				continue
			}
		case j >= len(sorted):
			v = p.starts[i]
			i++
		case p.starts[i] <= sorted[j]:
			v = p.starts[i]
			i++
		default:
			v = sorted[j]
			j++
			if v <= 0 || v >= p.length {
				continue
			}
		}
		if len(merged) == 0 || merged[len(merged)-1] != v {
			merged = append(merged, v)
		}
	}
	p.starts = merged
}

// LeafStartingAt returns the index of the leaf that starts exactly at pos,
// or (NumLeaves(), true) when pos == Len(). ok is false when no boundary
// exists at pos.
func (p *Partition) LeafStartingAt(pos int) (leaf int, ok bool) {
	if pos == p.length {
		return len(p.starts), true
	}
	i := sort.SearchInts(p.starts, pos)
	if i < len(p.starts) && p.starts[i] == pos {
		return i, true
	}
	return 0, false
}

// LeafRange returns the half-open leaf index range [first, last) covering
// span s exactly. Both s.Start and s.End must already be boundaries
// (established with Cut); otherwise ok is false. Empty spans return an
// empty range positioned at the boundary.
func (p *Partition) LeafRange(s Span) (first, last int, ok bool) {
	first, ok1 := p.LeafStartingAt(s.Start)
	last, ok2 := p.LeafStartingAt(s.End)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return first, last, true
}

// InsertText adjusts the partition for an insertion of n bytes at byte
// offset pos: boundaries at or after pos shift right by n. The inserted
// text joins the leaf containing pos (or the preceding leaf when pos is a
// boundary), preserving the invariant that leaf borders come only from
// markup positions.
func (p *Partition) InsertText(pos, n int) {
	if pos < 0 || pos > p.length || n < 0 {
		panic(fmt.Sprintf("document: bad text insertion pos=%d n=%d len=%d", pos, n, p.length))
	}
	if n == 0 {
		return
	}
	if p.length == 0 {
		p.length = n
		p.starts = []int{0}
		return
	}
	for i := range p.starts {
		// Shift starts strictly greater than pos; an insertion exactly at
		// a boundary extends the preceding leaf. Exception: the insertion
		// at offset 0 extends the first leaf, whose start stays 0.
		if p.starts[i] > pos || (p.starts[i] == pos && pos != 0) {
			p.starts[i] += n
		}
	}
	p.length += n
}

// DeleteRange adjusts the partition for the deletion of span s: boundaries
// within the span collapse to its start, boundaries after it shift left.
// Leaves reduced to zero width disappear (their markup becomes empty and
// is the caller's concern).
func (p *Partition) DeleteRange(s Span) {
	if !s.Valid() || s.End > p.length {
		panic(fmt.Sprintf("document: bad deletion %v len=%d", s, p.length))
	}
	n := s.Len()
	if n == 0 {
		return
	}
	out := p.starts[:0]
	for _, st := range p.starts {
		switch {
		case st <= s.Start:
			out = appendUnique(out, st)
		case st >= s.End:
			out = appendUnique(out, st-n)
		default:
			out = appendUnique(out, s.Start)
		}
	}
	p.starts = out
	p.length -= n
	// Drop a trailing boundary equal to the new length (empty final leaf),
	// and handle the partition becoming empty.
	for len(p.starts) > 0 && p.starts[len(p.starts)-1] >= p.length {
		if p.starts[len(p.starts)-1] == 0 && p.length > 0 {
			break
		}
		if p.starts[len(p.starts)-1] < p.length {
			break
		}
		p.starts = p.starts[:len(p.starts)-1]
	}
	if p.length > 0 && len(p.starts) == 0 {
		p.starts = []int{0}
	}
}

func appendUnique(s []int, v int) []int {
	if len(s) > 0 && s[len(s)-1] == v {
		return s
	}
	return append(s, v)
}

// MergeAt removes the boundary at pos if present, fusing the two adjacent
// leaves. It reports whether a boundary was removed. The boundary at 0
// cannot be removed.
func (p *Partition) MergeAt(pos int) bool {
	if pos <= 0 || pos >= p.length {
		return false
	}
	i := sort.SearchInts(p.starts, pos)
	if i >= len(p.starts) || p.starts[i] != pos {
		return false
	}
	p.starts = append(p.starts[:i], p.starts[i+1:]...)
	return true
}

// Boundaries returns all leaf start offsets (ascending, starting with 0).
func (p *Partition) Boundaries() []int {
	out := make([]int, len(p.starts))
	copy(out, p.starts)
	return out
}

// StartsView returns the live leaf start offsets without copying — the
// allocation-free fast path for hot merge loops (goddag's ordinal
// repair). Callers must not modify the slice and must not hold it across
// partition mutations.
func (p *Partition) StartsView() []int { return p.starts }

// Clone returns an independent copy of the partition.
func (p *Partition) Clone() *Partition {
	cp := make([]int, len(p.starts))
	copy(cp, p.starts)
	return &Partition{starts: cp, length: p.length}
}

// Check verifies the partition invariants: starts ascending and unique,
// first start 0, all starts within [0, length). It returns a descriptive
// error when violated; used by tests.
func (p *Partition) Check() error {
	if p.length == 0 {
		if len(p.starts) != 0 {
			return fmt.Errorf("document: empty content with %d leaves", len(p.starts))
		}
		return nil
	}
	if len(p.starts) == 0 || p.starts[0] != 0 {
		return fmt.Errorf("document: partition must start at 0, got %v", p.starts)
	}
	for i := 1; i < len(p.starts); i++ {
		if p.starts[i] <= p.starts[i-1] {
			return fmt.Errorf("document: starts not strictly ascending at %d: %v", i, p.starts)
		}
	}
	if last := p.starts[len(p.starts)-1]; last >= p.length {
		return fmt.Errorf("document: last start %d not below length %d", last, p.length)
	}
	return nil
}
