package document

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Content is the character content of a document, addressable by rune
// offset in O(1). It is the shared text that all concurrent hierarchies
// annotate; every hierarchy of a concurrent document must have *identical*
// content (paper §3: same content, same root).
//
// Content is mutable to support authoring (package editor); mutation
// methods report the resulting offset shifts so markup spans can be
// adjusted by the caller.
type Content struct {
	runes []rune
}

// NewContent returns content holding the given text.
func NewContent(text string) *Content {
	return &Content{runes: []rune(text)}
}

// Len returns the number of runes of content.
func (c *Content) Len() int { return len(c.runes) }

// String returns the entire content as a string.
func (c *Content) String() string { return string(c.runes) }

// Slice returns the content covered by span. It panics if the span is out
// of range, mirroring Go slice semantics.
func (c *Content) Slice(s Span) string {
	if !s.Valid() || s.End > len(c.runes) {
		panic(fmt.Sprintf("document: slice %v out of range [0,%d]", s, len(c.runes)))
	}
	return string(c.runes[s.Start:s.End])
}

// RuneAt returns the rune at offset pos.
func (c *Content) RuneAt(pos int) rune {
	if pos < 0 || pos >= len(c.runes) {
		panic(fmt.Sprintf("document: rune offset %d out of range [0,%d)", pos, len(c.runes)))
	}
	return c.runes[pos]
}

// Insert inserts text at rune offset pos and returns the number of runes
// inserted. Offsets >= pos in existing spans must be shifted by that
// amount by the caller.
func (c *Content) Insert(pos int, text string) int {
	if pos < 0 || pos > len(c.runes) {
		panic(fmt.Sprintf("document: insert offset %d out of range [0,%d]", pos, len(c.runes)))
	}
	ins := []rune(text)
	c.runes = append(c.runes[:pos], append(ins, c.runes[pos:]...)...)
	return len(ins)
}

// Delete removes the runes covered by span and returns the number of
// runes removed.
func (c *Content) Delete(s Span) int {
	if !s.Valid() || s.End > len(c.runes) {
		panic(fmt.Sprintf("document: delete %v out of range [0,%d]", s, len(c.runes)))
	}
	c.runes = append(c.runes[:s.Start], c.runes[s.End:]...)
	return s.Len()
}

// Clone returns an independent copy of the content.
func (c *Content) Clone() *Content {
	cp := make([]rune, len(c.runes))
	copy(cp, c.runes)
	return &Content{runes: cp}
}

// Equal reports whether two contents hold the same text.
func (c *Content) Equal(o *Content) bool {
	if len(c.runes) != len(o.runes) {
		return false
	}
	for i, r := range c.runes {
		if o.runes[i] != r {
			return false
		}
	}
	return true
}

// Find returns the rune offset of the first occurrence of sub at or after
// the rune offset from, or -1.
func (c *Content) Find(sub string, from int) int {
	if from < 0 {
		from = 0
	}
	if from > len(c.runes) {
		return -1
	}
	hay := string(c.runes[from:])
	b := strings.Index(hay, sub)
	if b < 0 {
		return -1
	}
	// Convert byte offset within hay back to a rune offset.
	return from + utf8.RuneCountInString(hay[:b])
}
