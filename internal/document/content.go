package document

import (
	"fmt"
	"strings"
	"sync"
	"unicode/utf8"
)

// Content is the character content of a document, addressable by rune
// offset in O(1). It is the shared text that all concurrent hierarchies
// annotate; every hierarchy of a concurrent document must have *identical*
// content (paper §3: same content, same root).
//
// Content is mutable to support authoring (package editor); mutation
// methods report the resulting offset shifts so markup spans can be
// adjusted by the caller.
//
// Internally the text is kept as the string it was built from; the rune
// slice that backs random access and mutation is materialized lazily, so
// parse-only workloads never pay for it. Materialization is guarded, so
// concurrent *readers* of an unmutated Content remain safe; mutation
// requires external synchronization, as before.
type Content struct {
	s     string    // the text; stale when dirty is set
	runes []rune    // lazily materialized; canonical when dirty
	n     int       // rune length
	dirty bool      // runes have been mutated since s was built
	once  sync.Once // guards the lazy materialization
}

// NewContent returns content holding the given text.
func NewContent(text string) *Content {
	return &Content{s: text, n: utf8.RuneCountInString(text)}
}

// rs returns the rune representation, materializing it on first use.
func (c *Content) rs() []rune {
	if c.dirty {
		// Mutated state: the caller already holds exclusive access.
		return c.runes
	}
	c.once.Do(func() {
		if c.runes == nil && c.n > 0 {
			c.runes = []rune(c.s)
		}
	})
	return c.runes
}

// Len returns the number of runes of content.
func (c *Content) Len() int { return c.n }

// String returns the entire content as a string.
func (c *Content) String() string {
	if c.dirty {
		c.s = string(c.runes)
		c.dirty = false
	}
	return c.s
}

// Slice returns the content covered by span. It panics if the span is out
// of range, mirroring Go slice semantics.
func (c *Content) Slice(s Span) string {
	if !s.Valid() || s.End > c.n {
		panic(fmt.Sprintf("document: slice %v out of range [0,%d]", s, c.n))
	}
	if s.Start == 0 && s.End == c.n {
		return c.String()
	}
	return string(c.rs()[s.Start:s.End])
}

// RuneAt returns the rune at offset pos.
func (c *Content) RuneAt(pos int) rune {
	if pos < 0 || pos >= c.n {
		panic(fmt.Sprintf("document: rune offset %d out of range [0,%d)", pos, c.n))
	}
	return c.rs()[pos]
}

// Insert inserts text at rune offset pos and returns the number of runes
// inserted. Offsets >= pos in existing spans must be shifted by that
// amount by the caller.
func (c *Content) Insert(pos int, text string) int {
	if pos < 0 || pos > c.n {
		panic(fmt.Sprintf("document: insert offset %d out of range [0,%d]", pos, c.n))
	}
	ins := []rune(text)
	r := c.rs()
	c.runes = append(r[:pos:pos], append(ins, r[pos:]...)...)
	c.n = len(c.runes)
	c.dirty = true
	return len(ins)
}

// Delete removes the runes covered by span and returns the number of
// runes removed.
func (c *Content) Delete(s Span) int {
	if !s.Valid() || s.End > c.n {
		panic(fmt.Sprintf("document: delete %v out of range [0,%d]", s, c.n))
	}
	r := c.rs()
	c.runes = append(r[:s.Start], r[s.End:]...)
	c.n = len(c.runes)
	c.dirty = true
	return s.Len()
}

// Clone returns an independent copy of the content.
func (c *Content) Clone() *Content {
	return NewContent(c.String())
}

// Equal reports whether two contents hold the same text.
func (c *Content) Equal(o *Content) bool {
	return c.n == o.n && c.String() == o.String()
}

// Find returns the rune offset of the first occurrence of sub at or after
// the rune offset from, or -1.
func (c *Content) Find(sub string, from int) int {
	if from < 0 {
		from = 0
	}
	if from > c.n {
		return -1
	}
	var hay string
	if from == 0 {
		hay = c.String()
	} else {
		hay = string(c.rs()[from:])
	}
	b := strings.Index(hay, sub)
	if b < 0 {
		return -1
	}
	// Convert byte offset within hay back to a rune offset.
	return from + utf8.RuneCountInString(hay[:b])
}
