package document

import (
	"fmt"
	"strings"
	"sync"
	"unicode/utf8"
)

// Content is the character content of a document, addressable by byte
// offset in O(1). It is the shared text that all concurrent hierarchies
// annotate; every hierarchy of a concurrent document must have *identical*
// content (paper §3: same content, same root).
//
// All offsets taken and returned by Content are byte offsets into the
// UTF-8 text unless a method name says otherwise. Rune-offset semantics —
// the character positions of the paper — remain available through the
// lazily built, memoized byte↔rune index (RuneOffset, ByteOffset,
// RuneSpan, ByteSpan, RuneLen): O(log n) per lookup, and parse-only
// workloads that never ask for rune positions never pay for it.
//
// Content is mutable to support authoring (package editor); mutation
// methods report the resulting offset shifts so markup spans can be
// adjusted by the caller. The index is guarded, so concurrent *readers*
// of an unmutated Content remain safe; mutation requires external
// synchronization, as before.
type Content struct {
	s    string
	idx  *runeIndex // lazily built byte↔rune index; nil until first use
	once sync.Once  // guards the lazy index build
}

// NewContent returns content holding the given text.
func NewContent(text string) *Content {
	return &Content{s: text}
}

// Len returns the length of the content in bytes.
func (c *Content) Len() int { return len(c.s) }

// RuneLen returns the length of the content in runes. The first call
// builds the byte↔rune index.
func (c *Content) RuneLen() int { return c.index().runeLen }

// String returns the entire content as a string.
func (c *Content) String() string { return c.s }

// Slice returns the content covered by the byte span. It panics if the
// span is out of range, mirroring Go slice semantics. The result aliases
// the content (no copy).
func (c *Content) Slice(s Span) string {
	if !s.Valid() || s.End > len(c.s) {
		panic(fmt.Sprintf("document: slice %v out of range [0,%d]", s, len(c.s)))
	}
	return c.s[s.Start:s.End]
}

// RuneAt returns the rune beginning at byte offset pos. Like the
// mutation methods, it panics on an offset inside a multibyte rune
// rather than silently decoding a replacement character.
func (c *Content) RuneAt(pos int) rune {
	if pos < 0 || pos >= len(c.s) {
		panic(fmt.Sprintf("document: byte offset %d out of range [0,%d)", pos, len(c.s)))
	}
	if !utf8.RuneStart(c.s[pos]) {
		panic(fmt.Sprintf("document: byte offset %d is not a rune boundary", pos))
	}
	r, _ := utf8.DecodeRuneInString(c.s[pos:])
	return r
}

// Insert inserts text at byte offset pos and returns the number of bytes
// inserted. Offsets >= pos in existing spans must be shifted by that
// amount by the caller. pos must lie on a rune boundary — splicing into
// the middle of a multibyte rune would corrupt the content, an error the
// old rune-offset API made unrepresentable, so it panics like an
// out-of-range offset.
func (c *Content) Insert(pos int, text string) int {
	if pos < 0 || pos > len(c.s) {
		panic(fmt.Sprintf("document: insert offset %d out of range [0,%d]", pos, len(c.s)))
	}
	if pos < len(c.s) && !utf8.RuneStart(c.s[pos]) {
		panic(fmt.Sprintf("document: insert offset %d is not a rune boundary", pos))
	}
	if text == "" {
		return 0
	}
	var b strings.Builder
	b.Grow(len(c.s) + len(text))
	b.WriteString(c.s[:pos])
	b.WriteString(text)
	b.WriteString(c.s[pos:])
	c.s = b.String()
	c.invalidate()
	return len(text)
}

// Delete removes the bytes covered by span and returns the number of
// bytes removed. Both span ends must lie on rune boundaries (see
// Insert).
func (c *Content) Delete(s Span) int {
	if !s.Valid() || s.End > len(c.s) {
		panic(fmt.Sprintf("document: delete %v out of range [0,%d]", s, len(c.s)))
	}
	if (s.Start < len(c.s) && !utf8.RuneStart(c.s[s.Start])) ||
		(s.End < len(c.s) && !utf8.RuneStart(c.s[s.End])) {
		panic(fmt.Sprintf("document: delete %v does not lie on rune boundaries", s))
	}
	if s.Len() == 0 {
		return 0
	}
	c.s = c.s[:s.Start] + c.s[s.End:]
	c.invalidate()
	return s.Len()
}

// IsRuneBoundary reports whether byte offset pos lies on a rune boundary
// of the content (offsets at 0 and Len() always do). Span validators use
// it to reject markup that would split a multibyte character.
func (c *Content) IsRuneBoundary(pos int) bool {
	return pos <= 0 || pos >= len(c.s) || utf8.RuneStart(c.s[pos])
}

// invalidate drops the memoized byte↔rune index after a mutation.
// Mutation requires exclusive access (see type comment), so resetting the
// guard is safe.
func (c *Content) invalidate() {
	c.idx = nil
	c.once = sync.Once{}
}

// Clone returns an independent copy of the content.
func (c *Content) Clone() *Content {
	return NewContent(c.s)
}

// Equal reports whether two contents hold the same text.
func (c *Content) Equal(o *Content) bool {
	return c.s == o.s
}

// Find returns the byte offset of the first occurrence of sub at or after
// the byte offset from, or -1.
func (c *Content) Find(sub string, from int) int {
	if from < 0 {
		from = 0
	}
	if from > len(c.s) {
		return -1
	}
	b := strings.Index(c.s[from:], sub)
	if b < 0 {
		return -1
	}
	return from + b
}

// index returns the byte↔rune index, building it on first use.
func (c *Content) index() *runeIndex {
	c.once.Do(func() {
		if c.idx == nil {
			c.idx = buildRuneIndex(c.s)
		}
	})
	return c.idx
}

// RuneOffset converts the byte offset off into the rune offset of the
// same content position: the number of runes preceding it. off must lie
// on a rune boundary in [0, Len()]; markup positions always do.
func (c *Content) RuneOffset(off int) int {
	if off < 0 || off > len(c.s) {
		panic(fmt.Sprintf("document: byte offset %d out of range [0,%d]", off, len(c.s)))
	}
	return c.index().runeOf(c.s, off)
}

// ByteOffset converts the rune offset off into the byte offset of the
// same content position. off must lie in [0, RuneLen()].
func (c *Content) ByteOffset(off int) int {
	ix := c.index()
	if off < 0 || off > ix.runeLen {
		panic(fmt.Sprintf("document: rune offset %d out of range [0,%d]", off, ix.runeLen))
	}
	return ix.byteOf(c.s, off)
}

// RuneSpan converts a byte span into the equivalent rune span.
func (c *Content) RuneSpan(s Span) Span {
	return Span{Start: c.RuneOffset(s.Start), End: c.RuneOffset(s.End)}
}

// ByteSpan converts a rune span into the equivalent byte span.
func (c *Content) ByteSpan(s Span) Span {
	return Span{Start: c.ByteOffset(s.Start), End: c.ByteOffset(s.End)}
}

// RuneCursor returns an incremental byte→rune offset converter. For a
// sequence of ascending offsets — the common case when rendering a
// node-set in document order — each conversion counts only the runes
// since the previous offset, amortized O(1) per call instead of the
// checkpoint search plus bounded scan RuneOffset pays. Offsets behind
// the cursor fall back to the index and re-anchor the cursor there.
// A cursor is single-use state for one scan; it is not safe for
// concurrent use, and must be discarded if the content mutates.
func (c *Content) RuneCursor() RuneCursor {
	return RuneCursor{c: c}
}

// RuneCursor converts byte offsets to rune offsets, optimized for
// ascending access. The zero value is not usable; obtain one from
// Content.RuneCursor.
type RuneCursor struct {
	c *Content
	b int // byte offset of the anchor
	r int // rune offset at the anchor
}

// RuneOffset converts the byte offset off into the rune offset of the
// same content position. off must lie on a rune boundary in [0, Len()];
// markup positions always do.
//
// Short forward hops count runes across the gap; long jumps in either
// direction fall back to the checkpoint index, so a sparse result set
// never pays a scan proportional to the distance between its nodes —
// the cursor is never worse than a fresh RuneOffset call per offset.
func (rc *RuneCursor) RuneOffset(off int) int {
	c := rc.c
	if off < 0 || off > len(c.s) {
		panic(fmt.Sprintf("document: byte offset %d out of range [0,%d]", off, len(c.s)))
	}
	ix := c.index()
	if ix.ascii {
		return off
	}
	if off >= rc.b && off-rc.b <= 2*runeIndexStride {
		rc.r += utf8.RuneCountInString(c.s[rc.b:off])
	} else {
		rc.r = ix.runeOf(c.s, off)
	}
	rc.b = off
	return rc.r
}

// runeIndexStride spaces the index checkpoints: one (byte, rune) offset
// pair per ~stride bytes of content, so a lookup is a binary search over
// the checkpoints plus a bounded scan of at most stride bytes.
const runeIndexStride = 256

// runeIndex maps between byte offsets and rune offsets of one content
// string. For all-ASCII content the mapping is the identity and the
// checkpoint arrays stay nil. It is immutable once built; Content
// rebuilds it after mutation.
type runeIndex struct {
	runeLen int
	ascii   bool
	bytes   []int // checkpoint byte offsets (rune boundaries), ascending
	runes   []int // rune offset at the corresponding byte offset
}

// buildRuneIndex scans s once and returns its index.
func buildRuneIndex(s string) *runeIndex {
	n := utf8.RuneCountInString(s)
	if n == len(s) {
		return &runeIndex{runeLen: n, ascii: true}
	}
	ix := &runeIndex{runeLen: n}
	est := len(s)/runeIndexStride + 2
	ix.bytes = make([]int, 1, est)
	ix.runes = make([]int, 1, est)
	runeOff := 0
	nextCp := runeIndexStride
	for byteOff := 0; byteOff < len(s); {
		if byteOff >= nextCp {
			ix.bytes = append(ix.bytes, byteOff)
			ix.runes = append(ix.runes, runeOff)
			nextCp = byteOff + runeIndexStride
		}
		_, size := utf8.DecodeRuneInString(s[byteOff:])
		byteOff += size
		runeOff++
	}
	return ix
}

// runeOf converts a byte offset to a rune offset: binary search for the
// last checkpoint at or before off, then count runes across the gap.
func (ix *runeIndex) runeOf(s string, off int) int {
	if ix.ascii {
		return off
	}
	lo, hi := 0, len(ix.bytes)
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.bytes[mid] > off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cp := lo - 1
	return ix.runes[cp] + utf8.RuneCountInString(s[ix.bytes[cp]:off])
}

// byteOf converts a rune offset to a byte offset: binary search for the
// last checkpoint at or before off, then decode across the gap.
func (ix *runeIndex) byteOf(s string, off int) int {
	if ix.ascii {
		return off
	}
	lo, hi := 0, len(ix.runes)
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.runes[mid] > off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cp := lo - 1
	b, r := ix.bytes[cp], ix.runes[cp]
	for r < off {
		_, size := utf8.DecodeRuneInString(s[b:])
		b += size
		r++
	}
	return b
}
