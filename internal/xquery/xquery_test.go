package xquery

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/goddag"
)

func fig1(t *testing.T) *goddag.Document {
	t.Helper()
	doc, err := corpus.Fig1Document()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func evalStrings(t *testing.T, doc *goddag.Document, src string) []string {
	t.Helper()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	out, err := q.EvalStrings(doc)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return out
}

func TestForReturn(t *testing.T) {
	doc := fig1(t)
	got := evalStrings(t, doc, `for $w in //w return string($w)`)
	want := []string{"swa", "hwæt", "swa", "he", "us", "sægde"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNestedForOverlap(t *testing.T) {
	doc := fig1(t)
	// The paper's flagship information need as a FLWOR query.
	got := evalStrings(t, doc, `
for $d in //dmg
for $w in $d/overlapping::w
return concat(name($d), ' damages ', string($w))`)
	want := []string{"dmg damages hwæt", "dmg damages swa"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v", got)
	}
}

func TestLetClause(t *testing.T) {
	doc := fig1(t)
	got := evalStrings(t, doc, `
for $r in //res
let $n := count($r/overlapping::w)
return concat('res overlaps ', string($n), ' words')`)
	if len(got) != 1 || got[0] != "res overlaps 2 words" {
		t.Errorf("got %v", got)
	}
}

func TestWhereClause(t *testing.T) {
	doc := fig1(t)
	got := evalStrings(t, doc, `
for $w in //w
where $w/overlapping::dmg
return string($w)`)
	want := []string{"hwæt", "swa"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v", got)
	}
}

func TestOrderBy(t *testing.T) {
	doc := fig1(t)
	got := evalStrings(t, doc, `
for $w in //w
order by string-length($w) descending
return string($w)`)
	if len(got) != 6 || got[0] != "sægde" {
		t.Errorf("got %v", got)
	}
	asc := evalStrings(t, doc, `
for $w in //w
order by string-length($w)
return string($w)`)
	if asc[0] != "he" && asc[0] != "us" {
		t.Errorf("ascending got %v", asc)
	}
}

func TestOrderByStringKey(t *testing.T) {
	doc := fig1(t)
	got := evalStrings(t, doc, `
for $w in //w
order by string($w)
return string($w)`)
	if len(got) != 6 || got[0] != "he" {
		t.Errorf("got %v", got)
	}
}

func TestVariableShadowing(t *testing.T) {
	doc := fig1(t)
	got := evalStrings(t, doc, `
for $x in //dmg
let $x := count($x/overlapping::w)
return string($x)`)
	if len(got) != 1 || got[0] != "2" {
		t.Errorf("got %v", got)
	}
}

func TestWhereWithLet(t *testing.T) {
	doc := fig1(t)
	// Lines containing more than two whole words.
	got := evalStrings(t, doc, `
for $l in //line
let $n := count($l/covered::w)
where $n > 2
return concat(string($l/@n), ': ', string($n))`)
	if len(got) != 2 {
		t.Errorf("got %v", got)
	}
}

func TestCrossHierarchyJoin(t *testing.T) {
	doc := fig1(t)
	// Pairs (line, word) where the word crosses the line boundary.
	got := evalStrings(t, doc, `
for $l in //line
for $w in $l/overlapping::w
return concat('line ', string($l/@n), ' cut word ', string($w))`)
	// w[9,12) "swa" overlaps line 1? [0,12) contains [9,12) -> no.
	// No w properly overlaps a line in fig1 (res/dmg do).
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
	got = evalStrings(t, doc, `
for $l in //line
for $r in $l/overlapping::res
return concat('line ', string($l/@n), ' cut by res')`)
	if len(got) != 2 {
		t.Errorf("got %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"return string(//w)",               // no for/let
		"for $w in //w",                    // no return
		"for w in //w return string($w)",   // missing $
		"for $w //w return string($w)",     // missing in
		"let $x = //w return string($x)",   // wrong assign op
		"for $w in //w[ return string($w)", // bad xpath
		"for $w in //w return",             // empty return body -> bad xpath
		"for $w in //w where 1 where 2 return string($w)", // dup where
		"banana $w in //w return 1",                       // unknown clause
		"for $w in 'str' return string($w)",               // non-node-set for (compile ok, eval err)
	}
	doc := fig1(t)
	for _, src := range bad {
		q, err := Compile(src)
		if err != nil {
			continue
		}
		if _, err := q.Eval(doc); err == nil {
			t.Errorf("Compile+Eval(%q): expected error", src)
		}
	}
}

func TestUnboundVariable(t *testing.T) {
	doc := fig1(t)
	q, err := Compile(`for $w in //w return string($zzz)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Eval(doc); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestKeywordInsideExpression(t *testing.T) {
	doc := fig1(t)
	// 'for'/'return' inside string literals and brackets must not split
	// clauses.
	got := evalStrings(t, doc, `
for $w in //w[string() = 'he']
return concat('for ', string($w), ' return')`)
	if len(got) != 1 || got[0] != "for he return" {
		t.Errorf("got %v", got)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Compile("for $w //w return 1")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T: %v", err, err)
	}
	if !strings.Contains(se.Error(), "xquery:") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustCompile("")
}

func TestQueryString(t *testing.T) {
	src := `for $w in //w return string($w)`
	if MustCompile(src).String() != src {
		t.Error("String() should echo source")
	}
}

func TestValuesNotJustStrings(t *testing.T) {
	doc := fig1(t)
	q := MustCompile(`for $w in //w return count($w/overlapping::*)`)
	vals, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 6 {
		t.Fatalf("vals = %d", len(vals))
	}
	total := 0.0
	for _, v := range vals {
		total += v.Number()
	}
	if total == 0 {
		t.Error("expected some overlaps across words")
	}
}

func TestSyntheticScale(t *testing.T) {
	doc, err := corpus.Generate(corpus.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	got := evalStrings(t, doc, `
for $d in //dmg
for $w in $d/overlapping::w
return string($w/@n)`)
	// Sanity: query executes and every result is a word number.
	for _, g := range got {
		if g == "" {
			t.Error("empty word number")
		}
	}
}
