// Package xquery implements the FLWOR layer of the paper's query stack —
// "an XQuery extension and implementation is under development" (§3) —
// as a compact for/let/where/order by/return language whose expressions
// are Extended XPath (package xpath), evaluated over the GODDAG.
//
// Grammar (keywords are reserved at clause level only):
//
//	query   := (forClause | letClause)+ whereClause? orderClause? returnClause
//	for     := "for" $var "in" <xpath>
//	let     := "let" $var ":=" <xpath>
//	where   := "where" <xpath>
//	order   := "order" "by" <xpath> ("descending")?
//	return  := "return" <xpath>
//
// Every for-clause iterates the *nodes* of its XPath result, binding the
// variable to a singleton node-set per iteration (so $v behaves like a
// node: $v/overlapping::w, name($v), ... all work). Clauses nest left to
// right; where filters binding tuples; return produces one Value per
// surviving tuple.
//
// Example — the paper's flagship information need, in FLWOR form:
//
//	for $d in //dmg
//	for $w in $d/overlapping::w
//	return concat(name($d), ' damages ', string($w))
package xquery

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/goddag"
	"repro/internal/obs"
	"repro/internal/xpath"
)

// Query is a compiled FLWOR query.
type Query struct {
	source  string
	clauses []clause
	where   *xpath.Query
	orderBy *xpath.Query
	desc    bool
	ret     *xpath.Query
}

type clauseKind int

const (
	clauseFor clauseKind = iota
	clauseLet
)

type clause struct {
	kind clauseKind
	vari string
	expr *xpath.Query
}

// SyntaxError reports a FLWOR parse failure.
type SyntaxError struct {
	Query string
	Msg   string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string { return fmt.Sprintf("xquery: %q: %s", e.Query, e.Msg) }

// Compile parses a FLWOR query.
func Compile(src string) (*Query, error) {
	q := &Query{source: src}
	errf := func(format string, args ...any) error {
		return &SyntaxError{Query: src, Msg: fmt.Sprintf(format, args...)}
	}
	segs, err := splitClauses(src)
	if err != nil {
		return nil, errf("%v", err)
	}
	if len(segs) == 0 {
		return nil, errf("empty query")
	}
	for _, seg := range segs {
		switch seg.keyword {
		case "for", "let":
			rest := strings.TrimSpace(seg.body)
			if !strings.HasPrefix(rest, "$") {
				return nil, errf("%s clause needs a $variable", seg.keyword)
			}
			rest = rest[1:]
			sep := " in "
			if seg.keyword == "let" {
				sep = ":="
			}
			i := strings.Index(rest, sep)
			if i < 0 {
				return nil, errf("%s clause needs %q", seg.keyword, strings.TrimSpace(sep))
			}
			name := strings.TrimSpace(rest[:i])
			if name == "" {
				return nil, errf("%s clause has empty variable name", seg.keyword)
			}
			exprSrc := strings.TrimSpace(rest[i+len(sep):])
			xq, err := xpath.Compile(exprSrc)
			if err != nil {
				return nil, err
			}
			kind := clauseFor
			if seg.keyword == "let" {
				kind = clauseLet
			}
			q.clauses = append(q.clauses, clause{kind: kind, vari: name, expr: xq})
		case "where":
			if q.where != nil {
				return nil, errf("duplicate where clause")
			}
			xq, err := xpath.Compile(strings.TrimSpace(seg.body))
			if err != nil {
				return nil, err
			}
			q.where = xq
		case "order":
			body := strings.TrimSpace(seg.body)
			if !strings.HasPrefix(body, "by ") {
				return nil, errf("expected 'order by'")
			}
			body = strings.TrimSpace(body[3:])
			if strings.HasSuffix(body, " descending") {
				q.desc = true
				body = strings.TrimSpace(strings.TrimSuffix(body, " descending"))
			}
			xq, err := xpath.Compile(body)
			if err != nil {
				return nil, err
			}
			q.orderBy = xq
		case "return":
			if q.ret != nil {
				return nil, errf("duplicate return clause")
			}
			xq, err := xpath.Compile(strings.TrimSpace(seg.body))
			if err != nil {
				return nil, err
			}
			q.ret = xq
		default:
			return nil, errf("unknown clause %q", seg.keyword)
		}
	}
	if q.ret == nil {
		return nil, errf("missing return clause")
	}
	if len(q.clauses) == 0 {
		return nil, errf("missing for/let clause")
	}
	return q, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the query source.
func (q *Query) String() string { return q.source }

// segment is one clause: leading keyword plus body text.
type segment struct {
	keyword string
	body    string
}

// splitClauses cuts the source at top-level clause keywords, respecting
// parentheses, brackets, and string literals inside XPath expressions.
func splitClauses(src string) ([]segment, error) {
	keywords := []string{"for", "let", "where", "order", "return"}
	var segs []segment
	depth := 0
	var quote byte
	wordStart := -1
	lastCut, lastKeyword := -1, ""
	flush := func(end int) {
		if lastCut >= 0 {
			segs = append(segs, segment{keyword: lastKeyword, body: src[lastCut:end]})
		}
	}
	isWordByte := func(c byte) bool {
		return c >= 'a' && c <= 'z'
	}
	for i := 0; i <= len(src); i++ {
		var c byte
		if i < len(src) {
			c = src[i]
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
			wordStart = -1
			continue
		case '(', '[':
			depth++
			wordStart = -1
			continue
		case ')', ']':
			depth--
			wordStart = -1
			continue
		}
		if depth == 0 && isWordByte(c) {
			if wordStart < 0 {
				wordStart = i
			}
			continue
		}
		// Word boundary.
		if wordStart >= 0 && depth == 0 {
			word := src[wordStart:i]
			isKeyword := false
			for _, k := range keywords {
				if word == k {
					isKeyword = true
					break
				}
			}
			// A keyword only counts if preceded by start-of-input or
			// whitespace (not, e.g., an axis name ending in a keyword).
			if isKeyword && (wordStart == 0 || src[wordStart-1] == ' ' || src[wordStart-1] == '\n' || src[wordStart-1] == '\t') {
				// "order" must not swallow "by"; "in"/"descending" are
				// handled by the clause parsers.
				flush(wordStart)
				lastKeyword = word
				lastCut = i
			}
		}
		wordStart = -1
	}
	if quote != 0 {
		return nil, fmt.Errorf("unterminated string literal")
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses")
	}
	flush(len(src))
	if lastCut < 0 {
		return nil, fmt.Errorf("no clauses found")
	}
	return segs, nil
}

// Eval runs the query over doc, returning one Value per result tuple.
func (q *Query) Eval(doc *goddag.Document) ([]xpath.Value, error) {
	return q.evalLimited(doc, nil)
}

// EvalContext runs the query under ctx with a resource budget shared by
// the whole FLWOR evaluation: every clause evaluation of every tuple
// draws from ONE xpath.Limiter, so the budget is cumulative — a query
// iterating millions of cheap tuples is bounded exactly like one
// expensive XPath. Cancellation unwinds with ctx.Err(); budget
// exhaustion with an error matching xpath.ErrBudgetExceeded.
func (q *Query) EvalContext(ctx context.Context, doc *goddag.Document, b xpath.Budget) ([]xpath.Value, error) {
	lim := xpath.NewLimiter(ctx, b)
	tr := obs.TraceFrom(ctx)
	if lim == nil && tr != nil {
		lim = xpath.NewCountingLimiter()
	}
	sp := tr.Begin("eval")
	vals, err := q.evalLimited(doc, lim)
	sp.End()
	// The shared limiter is caller-owned from the evaluator's point of
	// view, so its cumulative visit count is reported here, once.
	xpath.ReportVisited(lim)
	tr.AddVisited(lim.Visited())
	return vals, err
}

func (q *Query) evalLimited(doc *goddag.Document, lim *xpath.Limiter) ([]xpath.Value, error) {
	var out []xpath.Value
	type row struct {
		val xpath.Value
		key xpath.Value
	}
	var rows []row
	root := doc.Root()

	var run func(ci int, vars xpath.Bindings) error
	run = func(ci int, vars xpath.Bindings) error {
		if ci == len(q.clauses) {
			if q.where != nil {
				ok, err := q.where.EvalWithLimiter(doc, root, vars, lim)
				if err != nil {
					return err
				}
				if !ok.Bool() {
					return nil
				}
			}
			v, err := q.ret.EvalWithLimiter(doc, root, vars, lim)
			if err != nil {
				return err
			}
			r := row{val: v}
			if q.orderBy != nil {
				k, err := q.orderBy.EvalWithLimiter(doc, root, vars, lim)
				if err != nil {
					return err
				}
				r.key = k
			}
			rows = append(rows, r)
			return nil
		}
		c := q.clauses[ci]
		switch c.kind {
		case clauseLet:
			v, err := c.expr.EvalWithLimiter(doc, root, vars, lim)
			if err != nil {
				return err
			}
			restore := bindVar(vars, c.vari, v)
			err = run(ci+1, vars)
			restore()
			return err
		default: // for
			v, err := c.expr.EvalWithLimiter(doc, root, vars, lim)
			if err != nil {
				return err
			}
			if !v.IsNodeSet() {
				return &SyntaxError{Query: q.source, Msg: fmt.Sprintf("for $%s: expression is not a node-set", c.vari)}
			}
			for _, n := range v.Nodes() {
				restore := bindVar(vars, c.vari, xpath.Singleton(n))
				err := run(ci+1, vars)
				restore()
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := run(0, xpath.Bindings{}); err != nil {
		return nil, err
	}
	if q.orderBy != nil {
		sort.SliceStable(rows, func(i, j int) bool {
			a, b := rows[i].key, rows[j].key
			var less bool
			an, bn := a.Number(), b.Number()
			if an == an && bn == bn { // both numeric (not NaN)
				less = an < bn
			} else {
				less = a.String() < b.String()
			}
			if q.desc {
				return !less && (an != bn || a.String() != b.String())
			}
			return less
		})
	}
	for _, r := range rows {
		out = append(out, r.val)
	}
	return out, nil
}

// EvalStrings runs the query and converts every result to its string
// value — the common case for report-style FLWOR queries.
func (q *Query) EvalStrings(doc *goddag.Document) ([]string, error) {
	vals, err := q.Eval(doc)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out, nil
}

// bindVar sets a variable in the shared binding scope and returns the
// function that undoes it. Clause evaluation is strictly nested — every
// tuple's inner clauses finish before the next binding of the same
// variable — so one mutated map with save/restore replaces the previous
// copy-the-whole-map-per-tuple scheme (O(vars) allocations per tuple on
// the FLWOR hot path). Shadowing of outer variables with the same name
// is preserved by the saved value.
func bindVar(vars xpath.Bindings, name string, v xpath.Value) (restore func()) {
	prev, had := vars[name]
	vars[name] = v
	return func() {
		if had {
			vars[name] = prev
		} else {
			delete(vars, name)
		}
	}
}
