// Package core assembles the paper's framework (Figure 3): parsing
// concurrent XML into a GODDAG, DOM-style access, Extended XPath
// querying, prevalidated editing, validation, and import/export across
// the representations of concurrent markup.
//
// A core.Document couples a GODDAG with a concurrent markup schema (one
// DTD per hierarchy) and exposes the whole pipeline behind one type.
// The root package repro re-exports this API.
package core

import (
	"fmt"
	"io"

	"repro/internal/drivers"
	"repro/internal/dtd"
	"repro/internal/editor"
	"repro/internal/goddag"
	"repro/internal/sacx"
	"repro/internal/store"
	"repro/internal/validate"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// Document is a multihierarchical document-centric XML document: shared
// content, concurrent hierarchies over it, and their DTDs.
type Document struct {
	schema  *validate.Schema
	session *editor.Session // lazily created; owns the live GODDAG
}

// New creates an empty document with the given shared root tag and
// character content.
func New(rootTag, content string) *Document {
	return wrap(goddag.New(rootTag, content))
}

func wrap(g *goddag.Document) *Document {
	schema := validate.NewSchema()
	return &Document{
		schema:  schema,
		session: editor.NewSession(g, schema, editor.Options{}),
	}
}

// FromGODDAG wraps an existing GODDAG — the store's mapped open path
// builds the goddag document first (lazily materializing off the file
// mapping) and needs the same editor session shell Load provides.
func FromGODDAG(g *goddag.Document) *Document { return wrap(g) }

// Parse builds a document from a distributed concurrent XML document
// (one XML document per hierarchy) using the SACX parser.
func Parse(sources []sacx.Source) (*Document, error) {
	g, err := sacx.Build(sources)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// Import decodes a single-file representation (milestones,
// fragmentation, or standoff).
func Import(format drivers.Format, data []byte) (*Document, error) {
	var g *goddag.Document
	var err error
	switch format {
	case drivers.FormatMilestones:
		g, err = drivers.DecodeMilestones(data)
	case drivers.FormatFragmentation:
		g, err = drivers.DecodeFragmentation(data)
	case drivers.FormatStandoff:
		g, err = drivers.DecodeStandoff(data)
	case drivers.FormatDistributed:
		return nil, fmt.Errorf("core: use Parse for the distributed representation")
	default:
		return nil, fmt.Errorf("core: unknown format %v", format)
	}
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// GODDAG returns the live GODDAG for direct navigation.
func (d *Document) GODDAG() *goddag.Document { return d.session.Document() }

// Schema returns the document's concurrent markup schema.
func (d *Document) Schema() *validate.Schema { return d.schema }

// SetDTD attaches a DTD (source text) to a hierarchy.
func (d *Document) SetDTD(hierarchy string, src []byte) error {
	parsed, err := dtd.Parse(hierarchy, src)
	if err != nil {
		return err
	}
	d.schema.Add(hierarchy, parsed)
	return nil
}

// Query evaluates an Extended XPath query and returns its node-set.
func (d *Document) Query(query string) ([]goddag.Node, error) {
	return xpath.Select(d.GODDAG(), query)
}

// QueryValue evaluates an Extended XPath query that may return any value
// type (number, string, boolean, or node-set).
func (d *Document) QueryValue(query string) (xpath.Value, error) {
	q, err := xpath.Compile(query)
	if err != nil {
		return xpath.Value{}, err
	}
	return q.Eval(d.GODDAG())
}

// QueryFLWOR runs a for/let/where/order by/return query (package xquery,
// the paper's XQuery extension) and returns one value per result tuple.
func (d *Document) QueryFLWOR(src string) ([]xpath.Value, error) {
	q, err := xquery.Compile(src)
	if err != nil {
		return nil, err
	}
	return q.Eval(d.GODDAG())
}

// Edit returns the document's editing session (created on first use with
// prevalidation enabled when the schema has DTDs).
func (d *Document) Edit() *editor.Session { return d.session }

// EnablePrevalidation turns the prevalidation veto on for subsequent
// insertions. The session is toggled in place: history, change
// listeners, and any open transaction stay intact.
func (d *Document) EnablePrevalidation() { d.session.SetPrevalidate(true) }

// SetPrevalidation sets the prevalidation veto in place (see
// EnablePrevalidation).
func (d *Document) SetPrevalidation(on bool) { d.session.SetPrevalidate(on) }

// Validate checks every hierarchy with a DTD.
func (d *Document) Validate(mode validate.Mode) []validate.Violation {
	return validate.Document(d.GODDAG(), d.schema, mode)
}

// Export encodes the document in the given representation. The
// distributed representation returns one entry per hierarchy; the
// single-file representations return one entry keyed "document".
func (d *Document) Export(format drivers.Format, opts drivers.EncodeOptions) (map[string][]byte, error) {
	g := d.GODDAG()
	switch format {
	case drivers.FormatDistributed:
		return drivers.EncodeDistributed(g, opts)
	case drivers.FormatMilestones:
		data, err := drivers.EncodeMilestones(g, opts)
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"document": data}, nil
	case drivers.FormatFragmentation:
		data, err := drivers.EncodeFragmentation(g, opts)
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"document": data}, nil
	case drivers.FormatStandoff:
		data, err := drivers.EncodeStandoff(g, opts)
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"document": data}, nil
	default:
		return nil, fmt.Errorf("core: unknown format %v", format)
	}
}

// Filter returns a new document restricted to the given hierarchies (the
// demo's filtering feature). DTDs of surviving hierarchies carry over.
func (d *Document) Filter(hierarchies ...string) (*Document, error) {
	g, err := drivers.Filter(d.GODDAG(), hierarchies...)
	if err != nil {
		return nil, err
	}
	nd := wrap(g)
	for _, h := range hierarchies {
		if dt := d.schema.DTD(h); dt != nil {
			nd.schema.Add(h, dt)
		}
	}
	return nd, nil
}

// Stats summarizes the document.
func (d *Document) Stats() goddag.Stats { return d.GODDAG().Stats() }

// Save writes the document in the compact binary GODDAG format (package
// store) — the persistent-storage component the paper lists as ongoing
// work. DTDs are not stored; reattach them after Load.
func (d *Document) Save(w io.Writer) error {
	return store.Encode(w, d.GODDAG())
}

// Load reads a document saved with Save.
func Load(r io.Reader) (*Document, error) {
	g, err := store.Decode(r)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}
