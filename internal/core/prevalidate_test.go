package core

import (
	"testing"

	"repro/internal/document"
)

// TestPrevalidationToggleKeepsSession: toggling prevalidation must not
// recreate the session — a rollback (or undo) issued after the toggle
// has to act on the same session that opened the transaction.
// (Regression: EnablePrevalidation used to swap in a fresh session,
// orphaning the open transaction so its rollback silently kept the
// "rolled back" edits.)
func TestPrevalidationToggleKeepsSession(t *testing.T) {
	doc := New("r", "swa hwaet swa")
	tx, err := doc.Edit().Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.InsertMarkup("words", "x", document.NewSpan(0, 2)); err != nil {
		t.Fatal(err)
	}
	doc.EnablePrevalidation()
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if h := doc.GODDAG().Hierarchy("words"); h != nil && h.Len() != 0 {
		t.Fatal("rollback after prevalidation toggle did not discard the edit")
	}
	if doc.Edit().InTx() {
		t.Fatal("session still reports an open transaction")
	}
	// The toggle itself took effect and history survived a full cycle.
	if _, err := doc.Edit().InsertMarkup("words", "w", document.NewSpan(0, 3)); err != nil {
		t.Fatal(err)
	}
	doc.SetPrevalidation(false)
	if err := doc.Edit().Undo(); err != nil {
		t.Fatalf("undo after toggles: %v", err)
	}
	if h := doc.GODDAG().Hierarchy("words"); h != nil && h.Len() != 0 {
		t.Fatal("undo after toggles did not revert the edit")
	}
}
