package core

import (
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/drivers"
	"repro/internal/sacx"
	"repro/internal/validate"
)

func twoHier(t *testing.T) *Document {
	t.Helper()
	doc, err := Parse([]sacx.Source{
		{Hierarchy: "a", Data: []byte(`<r><x>one</x> two</r>`)},
		{Hierarchy: "b", Data: []byte(`<r>on<y>e tw</y>o</r>`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestNewDocument(t *testing.T) {
	doc := New("root", "hello")
	if doc.GODDAG().RootTag() != "root" {
		t.Errorf("root tag = %q", doc.GODDAG().RootTag())
	}
	if doc.Stats().ContentLen != 5 {
		t.Errorf("content len = %d", doc.Stats().ContentLen)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("empty sources should error")
	}
	_, err := Parse([]sacx.Source{
		{Hierarchy: "a", Data: []byte(`<r>abc</r>`)},
		{Hierarchy: "b", Data: []byte(`<r>abX</r>`)},
	})
	if err == nil {
		t.Error("content mismatch should error")
	}
}

func TestQueryTypes(t *testing.T) {
	doc := twoHier(t)
	ns, err := doc.Query("//x")
	if err != nil || len(ns) != 1 {
		t.Fatalf("//x = %v, %v", ns, err)
	}
	v, err := doc.QueryValue("count(//y) + 1")
	if err != nil || v.Number() != 2 {
		t.Fatalf("count+1 = %v, %v", v, err)
	}
	if _, err := doc.Query("count(//x)"); err == nil {
		t.Error("non-node-set Query should error")
	}
	if _, err := doc.Query("//x["); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := doc.QueryValue("//x["); err == nil {
		t.Error("syntax error should surface in QueryValue")
	}
}

func TestImportExportAllFormats(t *testing.T) {
	doc := twoHier(t)
	for _, f := range []drivers.Format{
		drivers.FormatMilestones, drivers.FormatFragmentation, drivers.FormatStandoff,
	} {
		out, err := doc.Export(f, drivers.EncodeOptions{})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		back, err := Import(f, out["document"])
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if back.Stats() != doc.Stats() {
			t.Errorf("%v: stats changed", f)
		}
	}
	if _, err := doc.Export(drivers.Format(99), drivers.EncodeOptions{}); err == nil {
		t.Error("unknown format should error")
	}
	if _, err := Import(drivers.Format(99), nil); err == nil {
		t.Error("unknown import format should error")
	}
	if _, err := Import(drivers.FormatDistributed, nil); err == nil {
		t.Error("distributed import should direct to Parse")
	}
}

func TestSchemaFlow(t *testing.T) {
	doc := twoHier(t)
	if err := doc.SetDTD("a", []byte(`<!ELEMENT r (#PCDATA|x)*> <!ELEMENT x (#PCDATA)>`)); err != nil {
		t.Fatal(err)
	}
	if doc.Schema().DTD("a") == nil {
		t.Error("DTD not registered")
	}
	if v := doc.Validate(validate.Full); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	if err := doc.SetDTD("a", []byte(`garbage`)); err == nil {
		t.Error("bad DTD should error")
	}
}

func TestEditThroughFacade(t *testing.T) {
	doc := New("r", "abc def")
	s := doc.Edit()
	if _, err := s.InsertMarkup("h", "w", spanOf(0, 3)); err != nil {
		t.Fatal(err)
	}
	if doc.Stats().Elements != 1 {
		t.Error("edit did not reach the document")
	}
	// Undo swaps the session's document; the facade must follow it.
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if doc.Stats().Elements != 0 {
		t.Errorf("facade did not follow undo: %d elements", doc.Stats().Elements)
	}
}

func TestEnablePrevalidation(t *testing.T) {
	doc := New("r", "abc")
	if err := doc.SetDTD("h", []byte(`<!ELEMENT r (#PCDATA|w)*> <!ELEMENT w (#PCDATA)>`)); err != nil {
		t.Fatal(err)
	}
	doc.EnablePrevalidation()
	if _, err := doc.Edit().InsertMarkup("h", "nope", spanOf(0, 2)); err == nil {
		t.Error("undeclared tag should be vetoed after EnablePrevalidation")
	}
	if _, err := doc.Edit().InsertMarkup("h", "w", spanOf(0, 2)); err != nil {
		t.Errorf("declared tag rejected: %v", err)
	}
}

func TestFilterFacade(t *testing.T) {
	doc := twoHier(t)
	doc.SetDTD("a", []byte(`<!ELEMENT r ANY>`))
	sub, err := doc.Filter("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.GODDAG().HierarchyNames()) != 1 {
		t.Errorf("hierarchies = %v", sub.GODDAG().HierarchyNames())
	}
	if sub.Schema().DTD("a") == nil {
		t.Error("DTD should carry over")
	}
	if _, err := doc.Filter("zzz"); err == nil {
		t.Error("unknown hierarchy should error")
	}
}

func TestExportDistributedKeys(t *testing.T) {
	doc := twoHier(t)
	out, err := doc.Export(drivers.FormatDistributed, drivers.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("keys = %d", len(out))
	}
	for _, k := range []string{"a", "b"} {
		if _, ok := out[k]; !ok {
			t.Errorf("missing key %s", k)
		}
		if !strings.HasPrefix(string(out[k]), "<r") {
			t.Errorf("output %s does not start with root: %s", k, out[k])
		}
	}
}

func spanOf(a, b int) document.Span { return document.NewSpan(a, b) }
