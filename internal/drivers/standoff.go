package drivers

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// The standoff representation stores the text once and all markup as
// offset-addressed annotation records:
//
//	<standoff root="r">
//	  <text>swa hw&#230;t ...</text>
//	  <hierarchy name="physical">
//	    <el tag="line" start="0" end="12">
//	      <at n="n" v="1"/>
//	    </el>
//	  </hierarchy>
//	  ...
//	</standoff>
//
// Offsets in the standoff file are *rune* offsets into the text — the
// paper's character positions, stable across tools regardless of how the
// text is encoded. The GODDAG carries byte spans internally, so the
// encoder and decoder convert at this boundary through the content's
// memoized byte↔rune index; the conversion is exact (markup borders
// always fall on rune boundaries), keeping encode/decode lossless for
// any GODDAG.

// EncodeStandoff renders doc in the standoff representation.
func EncodeStandoff(doc *goddag.Document, opts EncodeOptions) ([]byte, error) {
	hs, err := selectHierarchies(doc, opts)
	if err != nil {
		return nil, err
	}
	content := doc.Content()
	var b strings.Builder
	fmt.Fprintf(&b, "<standoff root=%q>\n", doc.RootTag())
	fmt.Fprintf(&b, "  <text>%s</text>\n", xmlscan.EscapeText(content.String()))
	for _, h := range hs {
		fmt.Fprintf(&b, "  <hierarchy name=%q>\n", h.Name())
		for _, e := range h.Elements() {
			sp := content.RuneSpan(e.Span())
			if len(e.Attrs()) == 0 {
				fmt.Fprintf(&b, "    <el tag=%q start=\"%d\" end=\"%d\"/>\n", e.Name(), sp.Start, sp.End)
				continue
			}
			fmt.Fprintf(&b, "    <el tag=%q start=\"%d\" end=\"%d\">\n", e.Name(), sp.Start, sp.End)
			for _, a := range e.Attrs() {
				fmt.Fprintf(&b, "      <at n=%q v=\"%s\"/>\n", a.Name, xmlscan.EscapeAttr(a.Value))
			}
			b.WriteString("    </el>\n")
		}
		b.WriteString("  </hierarchy>\n")
	}
	b.WriteString("</standoff>\n")
	return []byte(b.String()), nil
}

// DecodeStandoff parses the standoff representation into a GODDAG.
func DecodeStandoff(data []byte) (*goddag.Document, error) {
	toks, err := xmlscan.Tokens(data, xmlscan.Options{CoalesceCDATA: true})
	if err != nil {
		return nil, fmt.Errorf("drivers: standoff: %w", err)
	}
	var (
		doc     *goddag.Document
		rootTag string
		text    string
		sawText bool
		inHier  bool
		curElem *pendingEl
		inText  bool
		pending []pendingHier
	)
	flushElem := func() error {
		if curElem == nil {
			return nil
		}
		if !inHier {
			return fmt.Errorf("drivers: standoff: <el> outside <hierarchy>")
		}
		pending[len(pending)-1].els = append(pending[len(pending)-1].els, *curElem)
		curElem = nil
		return nil
	}
	for _, tok := range toks {
		switch tok.Kind {
		case xmlscan.KindStartElement:
			switch tok.Name {
			case "standoff":
				rootTag, _ = tok.Attr("root")
				if rootTag == "" {
					return nil, fmt.Errorf("drivers: standoff: missing root attribute")
				}
			case "text":
				if tok.SelfClosing {
					sawText = true
					break
				}
				inText = true
			case "hierarchy":
				name, ok := tok.Attr("name")
				if !ok || name == "" {
					return nil, fmt.Errorf("drivers: standoff: hierarchy without name")
				}
				pending = append(pending, pendingHier{name: name})
				inHier = true
			case "el":
				tag, _ := tok.Attr("tag")
				startS, _ := tok.Attr("start")
				endS, _ := tok.Attr("end")
				if tag == "" || startS == "" || endS == "" {
					return nil, fmt.Errorf("drivers: standoff: el needs tag/start/end at offset %d", tok.Offset)
				}
				start, err1 := strconv.Atoi(startS)
				end, err2 := strconv.Atoi(endS)
				if err1 != nil || err2 != nil || start < 0 || end < start {
					return nil, fmt.Errorf("drivers: standoff: bad offsets %q..%q", startS, endS)
				}
				pe := pendingEl{tag: tag, span: document.NewSpan(start, end)}
				if tok.SelfClosing {
					if len(pending) == 0 {
						return nil, fmt.Errorf("drivers: standoff: <el> outside <hierarchy>")
					}
					pending[len(pending)-1].els = append(pending[len(pending)-1].els, pe)
				} else {
					curElem = &pe
				}
			case "at":
				if curElem == nil {
					return nil, fmt.Errorf("drivers: standoff: <at> outside <el>")
				}
				n, _ := tok.Attr("n")
				v, _ := tok.Attr("v")
				if n == "" {
					return nil, fmt.Errorf("drivers: standoff: <at> without n")
				}
				curElem.attrs = append(curElem.attrs, goddag.Attr{Name: n, Value: v})
			default:
				return nil, fmt.Errorf("drivers: standoff: unexpected element <%s>", tok.Name)
			}
		case xmlscan.KindEndElement:
			switch tok.Name {
			case "text":
				inText = false
				sawText = true
			case "el":
				if err := flushElem(); err != nil {
					return nil, err
				}
			case "hierarchy":
				inHier = false
			}
		case xmlscan.KindText, xmlscan.KindCDATA:
			if inText {
				text += tok.Text
			} else if strings.TrimSpace(tok.Text) != "" {
				return nil, fmt.Errorf("drivers: standoff: stray text %q", tok.Text)
			}
		}
	}
	if rootTag == "" {
		return nil, fmt.Errorf("drivers: standoff: no <standoff> element")
	}
	if !sawText {
		return nil, fmt.Errorf("drivers: standoff: no <text> element")
	}
	doc = goddag.New(rootTag, text)
	content := doc.Content()
	for _, ph := range pending {
		h := doc.AddHierarchy(ph.name)
		for _, pe := range ph.els {
			// File offsets are rune offsets; convert to the GODDAG's byte
			// spans through the content's byte↔rune index.
			if pe.span.End > content.RuneLen() {
				return nil, fmt.Errorf("drivers: standoff: %s:%s %v exceeds text length %d",
					ph.name, pe.tag, pe.span, content.RuneLen())
			}
			if _, err := doc.InsertElement(h, pe.tag, pe.attrs, content.ByteSpan(pe.span)); err != nil {
				return nil, fmt.Errorf("drivers: standoff: %w", err)
			}
		}
	}
	return doc, nil
}

type pendingEl struct {
	tag   string
	span  document.Span
	attrs []goddag.Attr
}

type pendingHier struct {
	name string
	els  []pendingEl
}
