package drivers

import (
	"fmt"
	"sort"

	"repro/internal/goddag"
	"repro/internal/sacx"
)

// EncodeDistributed renders doc as a distributed document: one standalone
// XML document per selected hierarchy, keyed by hierarchy name.
func EncodeDistributed(doc *goddag.Document, opts EncodeOptions) (map[string][]byte, error) {
	hs, err := selectHierarchies(doc, opts)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(hs))
	for _, h := range hs {
		data, err := sacx.Split(doc, h.Name())
		if err != nil {
			return nil, err
		}
		out[h.Name()] = data
	}
	return out, nil
}

// DecodeDistributed parses a distributed document (one XML document per
// hierarchy) into a GODDAG. Hierarchies are added in sorted key order for
// determinism; use DecodeDistributedOrdered to control the order.
func DecodeDistributed(docs map[string][]byte) (*goddag.Document, error) {
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, n)
	}
	sort.Strings(names)
	srcs := make([]sacx.Source, 0, len(names))
	for _, n := range names {
		srcs = append(srcs, sacx.Source{Hierarchy: n, Data: docs[n]})
	}
	return sacx.Build(srcs)
}

// DecodeDistributedOrdered parses hierarchy documents in the given order.
func DecodeDistributedOrdered(srcs []sacx.Source) (*goddag.Document, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("drivers: no sources")
	}
	return sacx.Build(srcs)
}
