package drivers

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// The fragmentation representation is a single well-formed XML document in
// which *every* selected hierarchy appears structurally: wherever two
// elements would overlap, the one with lower priority is split into
// fragments that nest properly (TEI's first workaround, made mechanical).
// Fragments of one original element share a chx-id and carry
// chx-part="I"/"M"/"F" (initial/middle/final); every element carries
// chx-h naming its hierarchy. The root records chx-hierarchies and
// chx-dominant (the highest-priority hierarchy, which is never
// fragmented by lower-priority ones).
//
// Encoding is a single left-to-right sweep over leaf boundaries with a
// stack of open fragments: at each boundary, elements ending there close;
// any still-running element sitting above them on the stack is
// *interrupted* (its fragment closes too and reopens after), exactly the
// fragment-and-glue discipline a TEI encoder applies by hand.

// EncodeFragmentation renders doc as a single fragmentation-encoded XML
// document.
func EncodeFragmentation(doc *goddag.Document, opts EncodeOptions) ([]byte, error) {
	hs, err := selectHierarchies(doc, opts)
	if err != nil {
		return nil, err
	}
	dom, err := dominantOf(hs, opts)
	if err != nil {
		return nil, err
	}
	priority := map[string]int{dom.Name(): 0}
	for _, h := range hs {
		if _, ok := priority[h.Name()]; !ok {
			priority[h.Name()] = len(priority)
		}
	}

	// Gather elements with stable ids.
	type item struct {
		el *goddag.Element
		id int
	}
	var items []item
	var all []*goddag.Element
	for _, h := range hs {
		all = append(all, h.Elements()...)
	}
	orderForNesting(all, priority)
	for i, e := range all {
		items = append(items, item{el: e, id: i})
	}

	// Output token plan; part attributes are resolved after the sweep.
	type frag struct {
		itemID int
		part   int // fragment ordinal of its element
	}
	type outTok struct {
		kind  int // 0 text, 1 open, 2 close
		text  string
		f     frag
		final bool // set on close when the element truly ends
	}
	var (
		toks      []outTok
		fragCount = make([]int, len(items))
	)
	byID := make([]*goddag.Element, len(items))
	for _, it := range items {
		byID[it.id] = it.el
	}

	type openFrag struct {
		itemID int
		end    int // true end of the element
		prio   int
	}
	var stack []openFrag

	openOne := func(id int) {
		e := byID[id]
		toks = append(toks, outTok{kind: 1, f: frag{itemID: id, part: fragCount[id]}})
		fragCount[id]++
		stack = append(stack, openFrag{itemID: id, end: e.Span().End, prio: priority[e.Hierarchy().Name()]})
	}
	closeTop := func(final bool) openFrag {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		toks = append(toks, outTok{kind: 2, f: frag{itemID: top.itemID, part: fragCount[top.itemID] - 1}, final: final})
		return top
	}

	// Events by position.
	starts := map[int][]int{} // position -> item ids starting there
	for _, it := range items {
		sp := it.el.Span()
		starts[sp.Start] = append(starts[sp.Start], it.id)
	}
	positions := map[int]bool{0: true, doc.Content().Len(): true}
	for _, it := range items {
		positions[it.el.Span().Start] = true
		positions[it.el.Span().End] = true
	}
	var posList []int
	for p := range positions {
		posList = append(posList, p)
	}
	sort.Ints(posList)

	content := doc.Content()
	for pi, pos := range posList {
		// 1. Close everything that ends here; interrupted fragments
		// reopen below.
		var reopen []int
		needClose := map[int]bool{}
		for _, of := range stack {
			if of.end == pos {
				needClose[of.itemID] = true
			}
		}
		for len(needClose) > 0 {
			top := closeTop(stack[len(stack)-1].end == pos)
			if needClose[top.itemID] {
				delete(needClose, top.itemID)
			} else {
				reopen = append(reopen, top.itemID)
			}
		}
		// 2. Open new elements and reopen interrupted ones, outer-most
		// (latest end, then priority) first.
		opening := append(reopen, starts[pos]...)
		sort.SliceStable(opening, func(i, j int) bool {
			ei, ej := byID[opening[i]], byID[opening[j]]
			if ei.Span().End != ej.Span().End {
				return ei.Span().End > ej.Span().End
			}
			pi, pj := priority[ei.Hierarchy().Name()], priority[ej.Hierarchy().Name()]
			if pi != pj {
				return pi < pj
			}
			// Wider (earlier-starting) first for containment at equal end.
			return ei.Span().Start < ej.Span().Start
		})
		for _, id := range opening {
			e := byID[id]
			if e.Span().IsEmpty() {
				// Milestone: open and close immediately.
				toks = append(toks, outTok{kind: 1, f: frag{itemID: id, part: 0}})
				fragCount[id]++
				toks = append(toks, outTok{kind: 2, f: frag{itemID: id, part: 0}, final: true})
				continue
			}
			openOne(id)
		}
		// 3. Emit the text run to the next position.
		if pi+1 < len(posList) {
			next := posList[pi+1]
			if next > pos {
				toks = append(toks, outTok{kind: 0, text: content.Slice(document.NewSpan(pos, next))})
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("drivers: fragmentation: internal error: %d unclosed fragments", len(stack))
	}

	// Render.
	var b strings.Builder
	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = h.Name()
	}
	fmt.Fprintf(&b, "<%s %s=%q %s=%q>", doc.RootTag(),
		attrHierarchies, strings.Join(names, " "), attrDominant, dom.Name())
	for _, tk := range toks {
		switch tk.kind {
		case 0:
			b.WriteString(xmlscan.EscapeText(tk.text))
		case 1:
			e := byID[tk.f.itemID]
			fmt.Fprintf(&b, "<%s %s=%q", e.Name(), attrHier, e.Hierarchy().Name())
			if fragCount[tk.f.itemID] > 1 {
				fmt.Fprintf(&b, " %s=\"%d\"", attrFragID, tk.f.itemID)
				part := "M"
				switch {
				case tk.f.part == 0:
					part = "I"
				case tk.f.part == fragCount[tk.f.itemID]-1:
					part = "F"
				}
				fmt.Fprintf(&b, " %s=%q", attrFragPart, part)
			}
			for _, a := range e.Attrs() {
				fmt.Fprintf(&b, " %s=\"%s\"", a.Name, xmlscan.EscapeAttr(a.Value))
			}
			b.WriteString(">")
		case 2:
			e := byID[tk.f.itemID]
			fmt.Fprintf(&b, "</%s>", e.Name())
		}
	}
	fmt.Fprintf(&b, "</%s>", doc.RootTag())
	return []byte(b.String()), nil
}

// DecodeFragmentation parses a fragmentation-encoded document into a
// GODDAG, gluing chx-id fragment chains back into single elements.
// Documents without chx-* metadata decode as a single hierarchy "main".
func DecodeFragmentation(data []byte) (*goddag.Document, error) {
	toks, err := xmlscan.Tokens(data, xmlscan.Options{CoalesceCDATA: true})
	if err != nil {
		return nil, fmt.Errorf("drivers: fragmentation: %w", err)
	}
	content, err := xmlscan.Content(data)
	if err != nil {
		return nil, err
	}
	var rootTag string
	hierNames := []string{"main"}

	var (
		stack   []openEl
		groups  = map[string]*group{} // keyed by chx-id
		singles []group
		sawRoot bool
		openSeq int
	)
	for _, tok := range toks {
		switch tok.Kind {
		case xmlscan.KindStartElement:
			if !sawRoot {
				sawRoot = true
				rootTag = tok.Name
				if hl, ok := tok.Attr(attrHierarchies); ok {
					hierNames = strings.Fields(hl)
				}
				continue
			}
			hier := "main"
			if hv, ok := tok.Attr(attrHier); ok {
				hier = hv
			} else if len(hierNames) > 0 {
				hier = hierNames[0]
			}
			id, _ := tok.Attr(attrFragID)
			oe := openEl{name: tok.Name, pos: tok.ContentByte, hier: hier, id: id, att: plainAttrs(tok.Attrs), openSeq: openSeq}
			openSeq++
			if tok.SelfClosing {
				finishFragment(groups, &singles, oe, tok.ContentByte)
				continue
			}
			stack = append(stack, oe)
		case xmlscan.KindEndElement:
			if tok.Depth == 0 {
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			finishFragment(groups, &singles, top, tok.ContentByte)
		}
	}
	if !sawRoot {
		return nil, fmt.Errorf("drivers: fragmentation: empty document")
	}

	doc := goddag.New(rootTag, content)
	for _, n := range hierNames {
		doc.AddHierarchy(n)
	}
	// Glue groups and collect final records.
	var records []group
	records = append(records, singles...)
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		g := groups[id]
		sort.Slice(g.parts, func(i, j int) bool { return g.parts[i].span.Start < g.parts[j].span.Start })
		// Fragments must be contiguous.
		for i := 1; i < len(g.parts); i++ {
			if g.parts[i].span.Start < g.parts[i-1].span.End {
				return nil, fmt.Errorf("drivers: fragmentation: fragments of %q overlap", id)
			}
		}
		merged := g.parts[0].span
		for _, p := range g.parts[1:] {
			merged = merged.Union(p.span)
		}
		records = append(records, group{hier: g.hier, name: g.name, attrs: g.attrs,
			parts: []piece{{span: merged}}, openSeq: g.openSeq})
	}
	// Equal spans across hierarchies order by hierarchy position (the
	// canonical document order of the SACX pipeline), then by the first
	// fragment's open order for equal spans within one hierarchy.
	hierIdx := func(name string) int {
		for i, n := range hierNames {
			if n == name {
				return i
			}
		}
		return len(hierNames)
	}
	sort.SliceStable(records, func(i, j int) bool {
		c := document.CompareSpans(records[i].parts[0].span, records[j].parts[0].span)
		if c != 0 {
			return c < 0
		}
		if hi, hj := hierIdx(records[i].hier), hierIdx(records[j].hier); hi != hj {
			return hi < hj
		}
		return records[i].openSeq < records[j].openSeq
	})
	for _, r := range records {
		h := doc.Hierarchy(r.hier)
		if h == nil {
			h = doc.AddHierarchy(r.hier)
		}
		if _, err := doc.InsertElement(h, r.name, r.attrs, r.parts[0].span); err != nil {
			return nil, fmt.Errorf("drivers: fragmentation: %w", err)
		}
	}
	return doc, nil
}

// finishFragment files a closed fragment into its chx-id group, or as a
// standalone element when it has no chx-id.
func finishFragment(groups map[string]*group, singles *[]group, oe openEl, endPos int) {
	sp := document.NewSpan(oe.pos, endPos)
	if oe.id == "" {
		*singles = append(*singles, group{hier: oe.hier, name: oe.name, attrs: oe.att,
			parts: []piece{{span: sp}}, openSeq: oe.openSeq})
		return
	}
	g, ok := groups[oe.id]
	if !ok {
		g = &group{hier: oe.hier, name: oe.name, attrs: oe.att, openSeq: oe.openSeq}
		groups[oe.id] = g
	}
	if oe.openSeq < g.openSeq {
		g.openSeq = oe.openSeq
	}
	g.parts = append(g.parts, piece{span: sp})
}

// group/piece/openEl are shared by DecodeFragmentation and
// finishFragment.
type piece struct {
	span document.Span
}

type group struct {
	hier    string
	name    string
	attrs   []goddag.Attr
	parts   []piece
	openSeq int // order of the first fragment's start tag
}

type openEl struct {
	name    string
	pos     int
	hier    string
	id      string
	att     []goddag.Attr
	openSeq int
}
