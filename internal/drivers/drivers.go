// Package drivers converts between the GODDAG and the proposed on-disk
// representations of concurrent XML markup (paper §4, "Document
// manipulation"; reference [2]):
//
//   - Distributed: one XML document per hierarchy, all with the same
//     content and root (the native input of the SACX parser).
//   - Milestones: a single XML document; one dominant hierarchy keeps its
//     tree structure, every other element becomes a pair of empty
//     milestone tags (TEI's second suggested workaround).
//   - Fragmentation: a single XML document; overlapping elements are
//     split into fragments that nest properly, chained together with
//     part/next attributes (TEI's first suggested workaround).
//   - Standoff: the bare text plus a table of (hierarchy, tag, start,
//     end, attrs) annotations addressed by rune offsets.
//
// Every driver decodes to a *goddag.Document and encodes from one, so any
// representation converts to any other through the GODDAG, and a subset
// of hierarchies can be selected on export (the demo's filtering feature).
package drivers

import (
	"fmt"
	"sort"

	"repro/internal/document"
	"repro/internal/goddag"
)

// Format identifies a concurrent-markup representation.
type Format int

// The supported representations.
const (
	FormatDistributed Format = iota
	FormatMilestones
	FormatFragmentation
	FormatStandoff
)

// String returns the format name.
func (f Format) String() string {
	switch f {
	case FormatDistributed:
		return "distributed"
	case FormatMilestones:
		return "milestones"
	case FormatFragmentation:
		return "fragmentation"
	case FormatStandoff:
		return "standoff"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat resolves a format name.
func ParseFormat(name string) (Format, error) {
	switch name {
	case "distributed":
		return FormatDistributed, nil
	case "milestones":
		return FormatMilestones, nil
	case "fragmentation":
		return FormatFragmentation, nil
	case "standoff":
		return FormatStandoff, nil
	default:
		return 0, fmt.Errorf("drivers: unknown format %q", name)
	}
}

// EncodeOptions control single-document encoders.
type EncodeOptions struct {
	// Dominant names the hierarchy that keeps its tree structure in the
	// milestone and fragmentation representations. Empty means the first
	// hierarchy of the document.
	Dominant string
	// Hierarchies selects the hierarchies to include (the filtering
	// feature). Nil means all.
	Hierarchies []string
}

// selectHierarchies resolves opts.Hierarchies against doc, preserving
// document hierarchy order.
func selectHierarchies(doc *goddag.Document, opts EncodeOptions) ([]*goddag.Hierarchy, error) {
	if opts.Hierarchies == nil {
		return doc.Hierarchies(), nil
	}
	want := map[string]bool{}
	for _, n := range opts.Hierarchies {
		if doc.Hierarchy(n) == nil {
			return nil, fmt.Errorf("drivers: unknown hierarchy %q", n)
		}
		want[n] = true
	}
	var out []*goddag.Hierarchy
	for _, h := range doc.Hierarchies() {
		if want[h.Name()] {
			out = append(out, h)
		}
	}
	return out, nil
}

// dominantOf resolves the dominant hierarchy among hs.
func dominantOf(hs []*goddag.Hierarchy, opts EncodeOptions) (*goddag.Hierarchy, error) {
	if len(hs) == 0 {
		return nil, fmt.Errorf("drivers: document has no hierarchies")
	}
	if opts.Dominant == "" {
		return hs[0], nil
	}
	for _, h := range hs {
		if h.Name() == opts.Dominant {
			return h, nil
		}
	}
	return nil, fmt.Errorf("drivers: dominant hierarchy %q not selected", opts.Dominant)
}

// Filter returns a new GODDAG containing only the selected hierarchies of
// doc — the demo's "partially viewing and/or exporting a subset of
// document encodings". The content and root tag are preserved; leaf
// boundaries are recomputed from the surviving markup.
func Filter(doc *goddag.Document, hierarchies ...string) (*goddag.Document, error) {
	want := map[string]bool{}
	for _, n := range hierarchies {
		if doc.Hierarchy(n) == nil {
			return nil, fmt.Errorf("drivers: unknown hierarchy %q", n)
		}
		want[n] = true
	}
	out := goddag.New(doc.RootTag(), doc.Content().String())
	for _, h := range doc.Hierarchies() {
		if !want[h.Name()] {
			continue
		}
		nh := out.AddHierarchy(h.Name())
		// Insert outermost-first so adoption is never needed.
		for _, e := range h.Elements() {
			if _, err := out.InsertElement(nh, e.Name(), e.Attrs(), e.Span()); err != nil {
				return nil, fmt.Errorf("drivers: filter: %w", err)
			}
		}
	}
	return out, nil
}

// spanStartEnd is a helper ordering elements for single-document
// serialization: by start, wider first, stable by hierarchy priority.
func orderForNesting(es []*goddag.Element, priority map[string]int) {
	sort.SliceStable(es, func(i, j int) bool {
		a, b := es[i].Span(), es[j].Span()
		if c := document.CompareSpans(a, b); c != 0 {
			return c < 0
		}
		return priority[es[i].Hierarchy().Name()] < priority[es[j].Hierarchy().Name()]
	})
}
