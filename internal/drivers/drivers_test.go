package drivers

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/sacx"
)

// fig1 builds the paper's Figure 1 GODDAG via the distributed encoding.
func fig1(t *testing.T) *goddag.Document {
	t.Helper()
	doc, err := DecodeDistributedOrdered([]sacx.Source{
		{Hierarchy: "physical", Data: []byte(`<r><line n="1">swa hwæt swa</line><line n="2"> he us sægde</line></r>`)},
		{Hierarchy: "words", Data: []byte(`<r><w>swa</w> <w>hwæt</w> <w>swa</w> <w>he</w> <w>us</w> <w>sægde</w></r>`)},
		{Hierarchy: "restoration", Data: []byte(`<r>swa hwæt s<res resp="ed">wa he u</res>s sægde</r>`)},
		{Hierarchy: "damage", Data: []byte(`<r>swa hw<dmg type="stain">æt sw</dmg>a he us sægde</r>`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// docsEqual compares two GODDAGs structurally: content, hierarchies, and
// per-hierarchy element (name, span, attrs) multisets in document order.
func docsEqual(t *testing.T, a, b *goddag.Document) bool {
	t.Helper()
	if a.Content().String() != b.Content().String() {
		t.Logf("content differs: %q vs %q", a.Content(), b.Content())
		return false
	}
	an, bn := a.HierarchyNames(), b.HierarchyNames()
	sort.Strings(an)
	sort.Strings(bn)
	if strings.Join(an, ",") != strings.Join(bn, ",") {
		t.Logf("hierarchies differ: %v vs %v", an, bn)
		return false
	}
	for _, hn := range an {
		ea, eb := a.Hierarchy(hn).Elements(), b.Hierarchy(hn).Elements()
		if len(ea) != len(eb) {
			t.Logf("hierarchy %s: %d vs %d elements", hn, len(ea), len(eb))
			return false
		}
		for i := range ea {
			if ea[i].Name() != eb[i].Name() || ea[i].Span() != eb[i].Span() {
				t.Logf("hierarchy %s elem %d: %v vs %v", hn, i, ea[i], eb[i])
				return false
			}
			aa, ab := ea[i].Attrs(), eb[i].Attrs()
			if len(aa) != len(ab) {
				t.Logf("attr count differs on %v", ea[i])
				return false
			}
			for j := range aa {
				if aa[j] != ab[j] {
					t.Logf("attr %d differs on %v: %v vs %v", j, ea[i], aa[j], ab[j])
					return false
				}
			}
		}
	}
	return true
}

func TestDistributedRoundTrip(t *testing.T) {
	doc := fig1(t)
	enc, err := EncodeDistributed(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 4 {
		t.Fatalf("encoded %d hierarchies", len(enc))
	}
	back, err := DecodeDistributed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !docsEqual(t, doc, back) {
		t.Error("distributed round trip mismatch")
	}
}

func TestStandoffRoundTrip(t *testing.T) {
	doc := fig1(t)
	enc, err := EncodeStandoff(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeStandoff(enc)
	if err != nil {
		t.Fatalf("%v\n%s", err, enc)
	}
	if !docsEqual(t, doc, back) {
		t.Error("standoff round trip mismatch")
	}
	if err := back.Check(); err != nil {
		t.Error(err)
	}
}

func TestMilestonesRoundTrip(t *testing.T) {
	doc := fig1(t)
	for _, dominant := range []string{"physical", "words", "restoration"} {
		enc, err := EncodeMilestones(doc, EncodeOptions{Dominant: dominant})
		if err != nil {
			t.Fatalf("dominant %s: %v", dominant, err)
		}
		back, err := DecodeMilestones(enc)
		if err != nil {
			t.Fatalf("dominant %s: %v\n%s", dominant, err, enc)
		}
		if !docsEqual(t, doc, back) {
			t.Errorf("milestones round trip mismatch (dominant %s)\n%s", dominant, enc)
		}
		if err := back.Check(); err != nil {
			t.Error(err)
		}
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	doc := fig1(t)
	for _, dominant := range []string{"physical", "words"} {
		enc, err := EncodeFragmentation(doc, EncodeOptions{Dominant: dominant})
		if err != nil {
			t.Fatalf("dominant %s: %v", dominant, err)
		}
		back, err := DecodeFragmentation(enc)
		if err != nil {
			t.Fatalf("dominant %s: %v\n%s", dominant, err, enc)
		}
		if !docsEqual(t, doc, back) {
			t.Errorf("fragmentation round trip mismatch (dominant %s)\n%s", dominant, enc)
		}
		if err := back.Check(); err != nil {
			t.Error(err)
		}
	}
}

func TestMilestonesWellFormed(t *testing.T) {
	doc := fig1(t)
	enc, err := EncodeMilestones(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The encoding must be well-formed XML with the same content.
	got, err := sacx.Build([]sacx.Source{{Hierarchy: "x", Data: enc}})
	if err != nil {
		t.Fatalf("not well-formed: %v\n%s", err, enc)
	}
	if got.Content().String() != doc.Content().String() {
		t.Errorf("content changed: %q", got.Content().String())
	}
}

func TestFragmentationWellFormed(t *testing.T) {
	doc := fig1(t)
	enc, err := EncodeFragmentation(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sacx.Build([]sacx.Source{{Hierarchy: "x", Data: enc}})
	if err != nil {
		t.Fatalf("not well-formed: %v\n%s", err, enc)
	}
	if got.Content().String() != doc.Content().String() {
		t.Errorf("content changed: %q", got.Content().String())
	}
	// Overlapping elements must actually have been fragmented.
	if !strings.Contains(string(enc), attrFragPart) {
		t.Errorf("no fragments in:\n%s", enc)
	}
}

func TestFragmentationPartAttrs(t *testing.T) {
	// Two hierarchies with one overlap: b[2,8) vs a[0,5),a2[5,10).
	doc := goddag.New("r", "0123456789")
	h1 := doc.AddHierarchy("h1")
	h2 := doc.AddHierarchy("h2")
	mustIns(t, doc, h1, "a", 0, 5)
	mustIns(t, doc, h1, "a", 5, 10)
	mustIns(t, doc, h2, "b", 2, 8)
	enc, err := EncodeFragmentation(doc, EncodeOptions{Dominant: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(enc)
	if !strings.Contains(s, `chx-part="I"`) || !strings.Contains(s, `chx-part="F"`) {
		t.Errorf("expected I and F parts:\n%s", s)
	}
	back, err := DecodeFragmentation(enc)
	if err != nil {
		t.Fatal(err)
	}
	bs := back.Hierarchy("h2").Elements()
	if len(bs) != 1 || bs[0].Span() != document.NewSpan(2, 8) {
		t.Errorf("b reassembled wrong: %v", bs)
	}
}

func TestFilter(t *testing.T) {
	doc := fig1(t)
	f, err := Filter(doc, "words", "damage")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.HierarchyNames()) != 2 {
		t.Errorf("hierarchies = %v", f.HierarchyNames())
	}
	if f.Hierarchy("words").Len() != 6 || f.Hierarchy("damage").Len() != 1 {
		t.Errorf("element counts: %d %d", f.Hierarchy("words").Len(), f.Hierarchy("damage").Len())
	}
	if f.Hierarchy("physical") != nil {
		t.Error("physical should be filtered out")
	}
	if err := f.Check(); err != nil {
		t.Error(err)
	}
	// Leaf partition is minimal for the surviving markup.
	if f.NumLeaves() >= doc.NumLeaves() {
		t.Errorf("filtered leaves %d should be fewer than %d", f.NumLeaves(), doc.NumLeaves())
	}
	if _, err := Filter(doc, "nonexistent"); err == nil {
		t.Error("unknown hierarchy should error")
	}
}

func TestEncodeFiltering(t *testing.T) {
	doc := fig1(t)
	enc, err := EncodeDistributed(doc, EncodeOptions{Hierarchies: []string{"words"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 1 {
		t.Errorf("got %d docs", len(enc))
	}
	if _, ok := enc["words"]; !ok {
		t.Error("words missing")
	}
	if _, err := EncodeDistributed(doc, EncodeOptions{Hierarchies: []string{"zzz"}}); err == nil {
		t.Error("unknown hierarchy should error")
	}
}

func TestDominantResolution(t *testing.T) {
	doc := fig1(t)
	// Unknown dominant errors.
	if _, err := EncodeMilestones(doc, EncodeOptions{Dominant: "zzz"}); err == nil {
		t.Error("unknown dominant should error")
	}
	// Dominant not in the selected subset errors.
	if _, err := EncodeMilestones(doc, EncodeOptions{Dominant: "physical", Hierarchies: []string{"words"}}); err == nil {
		t.Error("dominant outside selection should error")
	}
}

func TestMilestonesEmptyElements(t *testing.T) {
	doc := goddag.New("r", "abcdef")
	h1 := doc.AddHierarchy("h1")
	h2 := doc.AddHierarchy("h2")
	mustIns(t, doc, h1, "line", 0, 6)
	// Empty milestone element in the non-dominant hierarchy.
	if _, err := doc.InsertElement(h2, "pb", []goddag.Attr{{Name: "n", Value: "2"}}, document.NewSpan(3, 3)); err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeMilestones(doc, EncodeOptions{Dominant: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMilestones(enc)
	if err != nil {
		t.Fatalf("%v\n%s", err, enc)
	}
	pbs := back.Hierarchy("h2").Elements()
	if len(pbs) != 1 || !pbs[0].IsEmpty() || pbs[0].Span().Start != 3 {
		t.Errorf("pb = %v", pbs)
	}
	if v, _ := pbs[0].Attr("n"); v != "2" {
		t.Errorf("pb/@n = %q", v)
	}
}

func TestFragmentationEmptyElements(t *testing.T) {
	doc := goddag.New("r", "abcdef")
	h1 := doc.AddHierarchy("h1")
	h2 := doc.AddHierarchy("h2")
	mustIns(t, doc, h1, "line", 0, 6)
	if _, err := doc.InsertElement(h2, "pb", nil, document.NewSpan(3, 3)); err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeFragmentation(doc, EncodeOptions{Dominant: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFragmentation(enc)
	if err != nil {
		t.Fatalf("%v\n%s", err, enc)
	}
	if !docsEqual(t, doc, back) {
		t.Errorf("round trip with milestone failed:\n%s", enc)
	}
}

func TestPlainXMLDecodes(t *testing.T) {
	// A plain XML document without chx metadata decodes as one "main"
	// hierarchy under both single-document decoders.
	plain := []byte(`<r><a>hi <b>there</b></a></r>`)
	m, err := DecodeMilestones(plain)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hierarchy("main") == nil || m.Hierarchy("main").Len() != 2 {
		t.Errorf("milestones plain decode: %v", m.HierarchyNames())
	}
	f, err := DecodeFragmentation(plain)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hierarchy("main") == nil || f.Hierarchy("main").Len() != 2 {
		t.Errorf("fragmentation plain decode: %v", f.HierarchyNames())
	}
}

func TestStandoffErrors(t *testing.T) {
	bad := []string{
		`<standoff><text>x</text></standoff>`,                                                                         // no root attr
		`<standoff root="r"><hierarchy name="h"/></standoff>`,                                                         // no text
		`<standoff root="r"><text>x</text><el tag="a" start="0" end="1"/></standoff>`,                                 // el outside hierarchy
		`<standoff root="r"><text>x</text><hierarchy name="h"><el tag="a" start="0" end="9"/></hierarchy></standoff>`, // out of range
		`<standoff root="r"><text>x</text><hierarchy name="h"><el tag="a" start="z" end="1"/></hierarchy></standoff>`, // bad offset
		`<standoff root="r"><text>x</text><hierarchy><el tag="a" start="0" end="1"/></hierarchy></standoff>`,          // unnamed hierarchy
		`<bogus/>`,
		`<standoff root="r"><text>x</text>stray</standoff>`,
	}
	for _, src := range bad {
		if _, err := DecodeStandoff([]byte(src)); err == nil {
			t.Errorf("DecodeStandoff(%q): expected error", src)
		}
	}
}

func TestMilestoneErrors(t *testing.T) {
	bad := []string{
		`<r chx-hierarchies="a b"><w chx-s="b.0"/>text</r>`,                  // unmatched start
		`<r chx-hierarchies="a b">text<w chx-e="b.0"/></r>`,                  // end without start
		`<r chx-hierarchies="a b"><w chx-s="b.0"/>x<v chx-e="b.0"/></r>`,     // tag mismatch
		`<r chx-hierarchies="a b"><w chx-s="noDot"/>x<w chx-e="noDot"/></r>`, // malformed id
		`<r chx-hierarchies="a b"><w chx-s="b.0"/><w chx-s="b.0"/>x</r>`,     // duplicate start
	}
	for _, src := range bad {
		if _, err := DecodeMilestones([]byte(src)); err == nil {
			t.Errorf("DecodeMilestones(%q): expected error", src)
		}
	}
}

func TestFormatParse(t *testing.T) {
	for _, name := range []string{"distributed", "milestones", "fragmentation", "standoff"} {
		f, err := ParseFormat(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if f.String() != name {
			t.Errorf("round trip %s -> %s", name, f)
		}
	}
	if _, err := ParseFormat("nope"); err == nil {
		t.Error("unknown format should error")
	}
	if !strings.Contains(Format(9).String(), "9") {
		t.Error("unknown format string")
	}
}

func TestCrossFormatConversion(t *testing.T) {
	// distributed -> milestones -> fragmentation -> standoff -> GODDAG
	// must preserve the document.
	doc := fig1(t)
	ms, err := EncodeMilestones(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeMilestones(ms)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := EncodeFragmentation(d2, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d3, err := DecodeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	so, err := EncodeStandoff(d3, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d4, err := DecodeStandoff(so)
	if err != nil {
		t.Fatal(err)
	}
	if !docsEqual(t, doc, d4) {
		t.Error("cross-format chain mismatch")
	}
}

func TestSizeOverheadOrdering(t *testing.T) {
	// Standoff and single-doc encodings exist and have sane relative
	// sizes: everything is at least as large as the bare content.
	doc := fig1(t)
	contentLen := len(doc.Content().String())
	ms, _ := EncodeMilestones(doc, EncodeOptions{})
	fr, _ := EncodeFragmentation(doc, EncodeOptions{})
	so, _ := EncodeStandoff(doc, EncodeOptions{})
	for name, b := range map[string][]byte{"milestones": ms, "fragmentation": fr, "standoff": so} {
		if len(b) <= contentLen {
			t.Errorf("%s encoding suspiciously small: %d <= %d", name, len(b), contentLen)
		}
	}
}

func mustIns(t *testing.T, d *goddag.Document, h *goddag.Hierarchy, tag string, lo, hi int) *goddag.Element {
	t.Helper()
	e, err := d.InsertElement(h, tag, nil, document.NewSpan(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	return e
}
