package drivers

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/document"
	"repro/internal/goddag"
)

// randomDoc builds a document with several hierarchies of random markup:
// nested structure in hierarchy 0, flat annotation layers (including
// empty milestones) elsewhere, with attribute values that need escaping.
func randomDoc(seed int64) *goddag.Document {
	rng := rand.New(rand.NewSource(seed))
	n := 40 + rng.Intn(80)
	text := make([]rune, n)
	letters := []rune("abcdef ghíðþ")
	for i := range text {
		text[i] = letters[rng.Intn(len(letters))]
	}
	d := goddag.New("r", string(text))
	// The generator draws rune positions; bounds maps them onto the byte
	// offsets the document's spans use, so markup never splits a rune.
	bounds := make([]int, 0, n+1)
	byteOff := 0
	for _, r := range text {
		bounds = append(bounds, byteOff)
		byteOff += len(string(r))
	}
	bounds = append(bounds, byteOff)
	span := func(lo, hi int) document.Span {
		return document.NewSpan(bounds[lo], bounds[hi])
	}

	// Hierarchy 0: nested sections.
	h0 := d.AddHierarchy("struct")
	var nest func(lo, hi, depth int)
	nest = func(lo, hi, depth int) {
		if depth == 0 || hi-lo < 4 {
			return
		}
		mid := lo + 1 + rng.Intn(hi-lo-2)
		for _, iv := range [][2]int{{lo, mid}, {mid, hi}} {
			if iv[1]-iv[0] < 2 {
				continue
			}
			attrs := []goddag.Attr{{Name: "v", Value: `x"<&'` + string(rune('a'+depth))}}
			if _, err := d.InsertElement(h0, "sec", attrs, span(iv[0], iv[1])); err != nil {
				panic(err)
			}
			nest(iv[0], iv[1], depth-1)
		}
	}
	nest(0, n, 3)

	// Annotation layers with overlaps and milestones.
	for li := 0; li < 2; li++ {
		h := d.AddHierarchy(string(rune('x' + li)))
		lastEnd := 0
		for k := 0; k < 8; k++ {
			lo := lastEnd + rng.Intn(8)
			hi := lo + rng.Intn(10)
			if hi > n || lo > n {
				break
			}
			if _, err := d.InsertElement(h, "ann", nil, span(lo, hi)); err != nil {
				panic(err)
			}
			if hi > lastEnd {
				lastEnd = hi
			}
		}
	}
	return d
}

func equalDocs(a, b *goddag.Document) bool {
	if a.Content().String() != b.Content().String() {
		return false
	}
	ae, be := a.Elements(), b.Elements()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i].Name() != be[i].Name() ||
			ae[i].Span() != be[i].Span() ||
			ae[i].Hierarchy().Name() != be[i].Hierarchy().Name() {
			return false
		}
		aa, ba := ae[i].Attrs(), be[i].Attrs()
		if len(aa) != len(ba) {
			return false
		}
		for j := range aa {
			if aa[j] != ba[j] {
				return false
			}
		}
	}
	return true
}

// TestPropertyRoundTrips: every representation round-trips arbitrary
// documents losslessly.
func TestPropertyRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		doc := randomDoc(seed)
		if err := doc.Check(); err != nil {
			t.Logf("seed %d: generator broke invariants: %v", seed, err)
			return false
		}
		// Standoff.
		so, err := EncodeStandoff(doc, EncodeOptions{})
		if err != nil {
			t.Logf("seed %d standoff encode: %v", seed, err)
			return false
		}
		d1, err := DecodeStandoff(so)
		if err != nil || !equalDocs(doc, d1) {
			t.Logf("seed %d standoff: %v", seed, err)
			return false
		}
		// Milestones.
		ms, err := EncodeMilestones(doc, EncodeOptions{})
		if err != nil {
			t.Logf("seed %d milestones encode: %v", seed, err)
			return false
		}
		d2, err := DecodeMilestones(ms)
		if err != nil || !equalDocs(doc, d2) {
			t.Logf("seed %d milestones: %v\n%s", seed, err, ms)
			return false
		}
		// Fragmentation.
		fr, err := EncodeFragmentation(doc, EncodeOptions{})
		if err != nil {
			t.Logf("seed %d fragmentation encode: %v", seed, err)
			return false
		}
		d3, err := DecodeFragmentation(fr)
		if err != nil || !equalDocs(doc, d3) {
			t.Logf("seed %d fragmentation: %v\n%s", seed, err, fr)
			return false
		}
		// Distributed.
		di, err := EncodeDistributed(doc, EncodeOptions{})
		if err != nil {
			t.Logf("seed %d distributed encode: %v", seed, err)
			return false
		}
		d4, err := DecodeDistributed(di)
		if err != nil || !equalDocs(doc, d4) {
			t.Logf("seed %d distributed: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDominantChoice: the milestone and fragmentation encodings
// are lossless for any choice of dominant hierarchy.
func TestPropertyDominantChoice(t *testing.T) {
	doc := randomDoc(7)
	for _, dom := range doc.HierarchyNames() {
		ms, err := EncodeMilestones(doc, EncodeOptions{Dominant: dom})
		if err != nil {
			t.Fatalf("dominant %s: %v", dom, err)
		}
		back, err := DecodeMilestones(ms)
		if err != nil || !equalDocs(doc, back) {
			t.Errorf("milestones dominant %s: %v", dom, err)
		}
		fr, err := EncodeFragmentation(doc, EncodeOptions{Dominant: dom})
		if err != nil {
			t.Fatalf("dominant %s: %v", dom, err)
		}
		back2, err := DecodeFragmentation(fr)
		if err != nil || !equalDocs(doc, back2) {
			t.Errorf("fragmentation dominant %s: %v", dom, err)
		}
	}
}
