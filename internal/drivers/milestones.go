package drivers

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/xmlscan"
)

// The milestone representation is a single well-formed XML document. One
// *dominant* hierarchy keeps its element tree; every element of the other
// hierarchies is flattened into a pair of empty milestone tags carrying
// reserved attributes:
//
//	<w chx-s="words.3" id="w3"/>  ...content...  <w chx-e="words.3"/>
//
// The start milestone carries the element's original attributes. The
// reserved identifier encodes "hierarchy.ordinal", so the decoder can
// reassign every element to its hierarchy. The root element records the
// encoding parameters:
//
//	<r chx-hierarchies="physical words" chx-dominant="physical">
//
// This is TEI's "milestone" workaround made lossless and mechanical
// (paper §2: "declare elements that are likely to produce overlapping as
// empty elements").

// Reserved attribute names used by the single-document encoders.
const (
	attrMilestoneStart = "chx-s"
	attrMilestoneEnd   = "chx-e"
	attrHierarchies    = "chx-hierarchies"
	attrDominant       = "chx-dominant"
	attrHier           = "chx-h"
	attrFragID         = "chx-id"
	attrFragPart       = "chx-part"
)

// EncodeMilestones renders doc as a single milestone-encoded XML document.
func EncodeMilestones(doc *goddag.Document, opts EncodeOptions) ([]byte, error) {
	hs, err := selectHierarchies(doc, opts)
	if err != nil {
		return nil, err
	}
	dom, err := dominantOf(hs, opts)
	if err != nil {
		return nil, err
	}

	// Milestone events for all non-dominant elements, grouped by content
	// position. Ends sort before starts at a position; empty elements
	// emit start+end adjacently in the start class.
	type msEvent struct {
		open bool
		el   *goddag.Element
		id   string
	}
	events := map[int][]msEvent{}
	for _, h := range hs {
		if h == dom {
			continue
		}
		for i, e := range h.Elements() {
			id := fmt.Sprintf("%s.%d", h.Name(), i)
			sp := e.Span()
			if sp.IsEmpty() {
				events[sp.Start] = append(events[sp.Start],
					msEvent{open: true, el: e, id: id}, msEvent{open: false, el: e, id: id})
				continue
			}
			events[sp.Start] = append(events[sp.Start], msEvent{open: true, el: e, id: id})
			events[sp.End] = append(events[sp.End], msEvent{open: false, el: e, id: id})
		}
	}
	for pos := range events {
		evs := events[pos]
		sort.SliceStable(evs, func(i, j int) bool {
			// Ends first, except the paired events of empty elements,
			// which were appended adjacently and must stay in order;
			// stable sort keeps them adjacent when both map to the same
			// class. Classify: end-of-nonempty = 0, everything else = 1.
			ci, cj := 1, 1
			if !evs[i].open && !evs[i].el.Span().IsEmpty() {
				ci = 0
			}
			if !evs[j].open && !evs[j].el.Span().IsEmpty() {
				cj = 0
			}
			return ci < cj
		})
		events[pos] = evs
	}

	var b strings.Builder
	emitMilestones := func(pos int) {
		for _, ev := range events[pos] {
			if ev.open {
				fmt.Fprintf(&b, "<%s %s=%q", ev.el.Name(), attrMilestoneStart, ev.id)
				for _, a := range ev.el.Attrs() {
					fmt.Fprintf(&b, " %s=\"%s\"", a.Name, xmlscan.EscapeAttr(a.Value))
				}
				b.WriteString("/>")
			} else {
				fmt.Fprintf(&b, "<%s %s=%q/>", ev.el.Name(), attrMilestoneEnd, ev.id)
			}
		}
		delete(events, pos)
	}

	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = h.Name()
	}
	fmt.Fprintf(&b, "<%s %s=%q %s=%q>", doc.RootTag(),
		attrHierarchies, strings.Join(names, " "), attrDominant, dom.Name())

	var walk func(nodes []goddag.Node)
	walk = func(nodes []goddag.Node) {
		for _, n := range nodes {
			switch v := n.(type) {
			case *goddag.Element:
				emitMilestones(v.Span().Start)
				fmt.Fprintf(&b, "<%s", v.Name())
				for _, a := range v.Attrs() {
					fmt.Fprintf(&b, " %s=\"%s\"", a.Name, xmlscan.EscapeAttr(a.Value))
				}
				if v.IsEmpty() && len(v.ChildElements()) == 0 {
					b.WriteString("/>")
					continue
				}
				b.WriteString(">")
				walk(v.Children())
				emitMilestones(v.Span().End)
				fmt.Fprintf(&b, "</%s>", v.Name())
			case goddag.Leaf:
				sp := v.Span()
				emitMilestones(sp.Start)
				b.WriteString(xmlscan.EscapeText(v.Text()))
			}
		}
	}
	walk(doc.Root().Children(dom))
	// Trailing milestones at end-of-content.
	emitMilestones(doc.Content().Len())
	// Any remaining milestone positions fall strictly inside dominant
	// leaves (possible only if Compact ran with milestones still present);
	// flush them in position order before closing the root.
	if len(events) > 0 {
		rest := make([]int, 0, len(events))
		for pos := range events {
			rest = append(rest, pos)
		}
		sort.Ints(rest)
		for _, pos := range rest {
			emitMilestones(pos)
		}
	}
	fmt.Fprintf(&b, "</%s>", doc.RootTag())
	return []byte(b.String()), nil
}

// DecodeMilestones parses a milestone-encoded document into a GODDAG.
// Documents without the chx-hierarchies root attribute decode as a single
// hierarchy named "main".
func DecodeMilestones(data []byte) (*goddag.Document, error) {
	toks, err := xmlscan.Tokens(data, xmlscan.Options{CoalesceCDATA: true})
	if err != nil {
		return nil, fmt.Errorf("drivers: milestones: %w", err)
	}
	content, err := xmlscan.Content(data)
	if err != nil {
		return nil, err
	}

	var rootTag, dominant string
	hierNames := []string{"main"}
	dominant = "main"

	type openEl struct {
		name  string
		attrs []goddag.Attr
		pos   int
	}
	type openMS struct {
		name  string
		attrs []goddag.Attr
		pos   int
		hier  string
	}
	type record struct {
		hier  string
		name  string
		attrs []goddag.Attr
		span  document.Span
		order int
	}
	hierIdx := func(name string) int {
		for i, n := range hierNames {
			if n == name {
				return i
			}
		}
		return len(hierNames)
	}
	var (
		stack   []openEl
		pending = map[string]openMS{}
		records []record
		seq     int
		sawRoot bool
	)
	for _, tok := range toks {
		switch tok.Kind {
		case xmlscan.KindStartElement:
			if !sawRoot {
				sawRoot = true
				rootTag = tok.Name
				if hl, ok := tok.Attr(attrHierarchies); ok {
					hierNames = strings.Fields(hl)
				}
				if dm, ok := tok.Attr(attrDominant); ok {
					dominant = dm
				} else if len(hierNames) > 0 {
					dominant = hierNames[0]
				}
				continue
			}
			if id, ok := tok.Attr(attrMilestoneStart); ok {
				hier, err := hierOfID(id)
				if err != nil {
					return nil, err
				}
				if _, dup := pending[id]; dup {
					return nil, fmt.Errorf("drivers: milestones: duplicate start %q", id)
				}
				pending[id] = openMS{name: tok.Name, attrs: plainAttrs(tok.Attrs), pos: tok.ContentByte, hier: hier}
				continue
			}
			if id, ok := tok.Attr(attrMilestoneEnd); ok {
				ms, open := pending[id]
				if !open {
					return nil, fmt.Errorf("drivers: milestones: end %q without start", id)
				}
				if ms.name != tok.Name {
					return nil, fmt.Errorf("drivers: milestones: end %q tag <%s> != start tag <%s>", id, tok.Name, ms.name)
				}
				delete(pending, id)
				records = append(records, record{
					hier: ms.hier, name: ms.name, attrs: ms.attrs,
					span: document.NewSpan(ms.pos, tok.ContentByte), order: seq,
				})
				seq++
				continue
			}
			// Dominant structural element.
			if tok.SelfClosing {
				records = append(records, record{
					hier: dominant, name: tok.Name, attrs: plainAttrs(tok.Attrs),
					span: document.NewSpan(tok.ContentByte, tok.ContentByte), order: seq,
				})
				seq++
				continue
			}
			stack = append(stack, openEl{name: tok.Name, attrs: plainAttrs(tok.Attrs), pos: tok.ContentByte})
		case xmlscan.KindEndElement:
			if tok.Depth == 0 {
				continue // root close
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			records = append(records, record{
				hier: dominant, name: top.name, attrs: top.attrs,
				span: document.NewSpan(top.pos, tok.ContentByte), order: seq,
			})
			seq++
		}
	}
	if len(pending) > 0 {
		for id := range pending {
			return nil, fmt.Errorf("drivers: milestones: start %q without end", id)
		}
	}
	if !sawRoot {
		return nil, fmt.Errorf("drivers: milestones: empty document")
	}

	doc := goddag.New(rootTag, content)
	for _, n := range hierNames {
		doc.AddHierarchy(n)
	}
	// Insert wider spans first so adoption never fails on equal spans;
	// equal spans across hierarchies order by hierarchy position, the
	// canonical document order produced by the SACX pipeline.
	sort.SliceStable(records, func(i, j int) bool {
		c := document.CompareSpans(records[i].span, records[j].span)
		if c != 0 {
			return c < 0
		}
		return hierIdx(records[i].hier) < hierIdx(records[j].hier)
	})
	for _, r := range records {
		h := doc.Hierarchy(r.hier)
		if h == nil {
			h = doc.AddHierarchy(r.hier)
		}
		if _, err := doc.InsertElement(h, r.name, r.attrs, r.span); err != nil {
			return nil, fmt.Errorf("drivers: milestones: %w", err)
		}
	}
	return doc, nil
}

// hierOfID extracts the hierarchy name from a "hierarchy.ordinal" id.
func hierOfID(id string) (string, error) {
	i := strings.LastIndexByte(id, '.')
	if i <= 0 {
		return "", fmt.Errorf("drivers: milestones: malformed id %q", id)
	}
	return id[:i], nil
}

// plainAttrs converts scanner attributes to goddag attributes, dropping
// the reserved chx-* names.
func plainAttrs(attrs []xmlscan.Attr) []goddag.Attr {
	var out []goddag.Attr
	for _, a := range attrs {
		if strings.HasPrefix(a.Name, "chx-") {
			continue
		}
		out = append(out, goddag.Attr{Name: a.Name, Value: a.Value})
	}
	return out
}
