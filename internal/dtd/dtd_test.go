package dtd

import (
	"strings"
	"testing"
)

const manuscriptDTD = `
<!-- physical structure of a manuscript page -->
<!ELEMENT page (line+)>
<!ATTLIST page n CDATA #REQUIRED>
<!ELEMENT line (#PCDATA)>
<!ATTLIST line
  n CDATA #REQUIRED
  hand (scribe1|scribe2) "scribe1">
`

func TestParseManuscript(t *testing.T) {
	d, err := Parse("physical", []byte(manuscriptDTD))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Order) != 2 || d.Order[0] != "page" || d.Order[1] != "line" {
		t.Fatalf("order = %v", d.Order)
	}
	page := d.Element("page")
	if page == nil || page.Content.Kind != ModelChildren {
		t.Fatalf("page = %+v", page)
	}
	if page.Content.Expr.String() != "line+" {
		t.Errorf("page model = %q", page.Content.Expr)
	}
	line := d.Element("line")
	if line.Content.Kind != ModelMixed || len(line.Content.Mixed) != 0 {
		t.Errorf("line model = %v", line.Content)
	}
	n := line.AttDef("n")
	if n == nil || n.Type != "CDATA" || n.Default != DefaultRequired {
		t.Errorf("line/@n = %+v", n)
	}
	hand := line.AttDef("hand")
	if hand == nil || hand.Type != "enum" || len(hand.Enum) != 2 || hand.Value != "scribe1" || hand.Default != DefaultValue {
		t.Errorf("line/@hand = %+v", hand)
	}
	if line.AttDef("zzz") != nil {
		t.Error("missing attdef should be nil")
	}
}

func TestParseModels(t *testing.T) {
	cases := []struct {
		decl string
		kind ModelKind
		str  string
	}{
		{`<!ELEMENT a EMPTY>`, ModelEmpty, "EMPTY"},
		{`<!ELEMENT a ANY>`, ModelAny, "ANY"},
		{`<!ELEMENT a (#PCDATA)>`, ModelMixed, "(#PCDATA)"},
		{`<!ELEMENT a (#PCDATA|b|c)*>`, ModelMixed, "(#PCDATA|b|c)*"},
		{`<!ELEMENT a (b)>`, ModelChildren, "(b)"},
		{`<!ELEMENT a (b,c)>`, ModelChildren, "(b,c)"},
		{`<!ELEMENT a (b|c)>`, ModelChildren, "(b|c)"},
		{`<!ELEMENT a (b?,c*,d+)>`, ModelChildren, "(b?,c*,d+)"},
		{`<!ELEMENT a ((b|c)+,d)>`, ModelChildren, "((b|c)+,d)"},
		{`<!ELEMENT a (b,(c|d)*)>`, ModelChildren, "(b,(c|d)*)"},
	}
	for _, c := range cases {
		d, err := Parse("t", []byte(c.decl))
		if err != nil {
			t.Errorf("%s: %v", c.decl, err)
			continue
		}
		m := d.Element("a").Content
		if m.Kind != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.decl, m.Kind, c.kind)
		}
		if m.String() != c.str {
			t.Errorf("%s: String = %q, want %q", c.decl, m.String(), c.str)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<!ELEMENT >`,
		`<!ELEMENT a>`,
		`<!ELEMENT a (b,>`,
		`<!ELEMENT a (b|c,d)>`,
		`<!ELEMENT a (#PCDATA|b)>`, // missing )*
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`,
		`<!ATTLIST a x BOGUS #IMPLIED>`,
		`<!ATTLIST a x CDATA>`,
		`<!ATTLIST a x CDATA "unterminated>`,
		`<!ATTLIST a x CDATA #REQUIRED x CDATA #IMPLIED>`,
		`garbage`,
	}
	for _, src := range bad {
		if _, err := Parse("t", []byte(src)); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseSkips(t *testing.T) {
	src := `
<!-- comment -->
<!ENTITY thorn "&#222;">
<!NOTATION gif SYSTEM "gif">
<?pi data?>
<!ELEMENT a EMPTY>
`
	d, err := Parse("t", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Element("a") == nil {
		t.Error("a not declared")
	}
}

func TestAttlistBeforeElement(t *testing.T) {
	d, err := Parse("t", []byte(`<!ATTLIST a x CDATA #IMPLIED>`))
	if err != nil {
		t.Fatal(err)
	}
	a := d.Element("a")
	if a == nil || a.Content.Kind != ModelAny {
		t.Errorf("placeholder = %+v", a)
	}
	if a.AttDef("x") == nil {
		t.Error("attribute lost")
	}
}

func TestAllowsText(t *testing.T) {
	cases := []struct {
		model string
		want  bool
	}{
		{`<!ELEMENT a EMPTY>`, false},
		{`<!ELEMENT a ANY>`, true},
		{`<!ELEMENT a (#PCDATA)>`, true},
		{`<!ELEMENT a (b,c)>`, false},
	}
	for _, c := range cases {
		d := MustParse("t", c.model)
		if got := d.Element("a").Content.AllowsText(); got != c.want {
			t.Errorf("%s AllowsText = %v", c.model, got)
		}
	}
}

func TestAllowsChild(t *testing.T) {
	d := MustParse("t", `<!ELEMENT a (b,(c|d)*)> <!ELEMENT e (#PCDATA|f)*> <!ELEMENT g EMPTY> <!ELEMENT h ANY>`)
	a := d.Element("a").Content
	for _, n := range []string{"b", "c", "d"} {
		if !a.AllowsChild(n) {
			t.Errorf("a should allow %s", n)
		}
	}
	if a.AllowsChild("z") {
		t.Error("a should not allow z")
	}
	if !d.Element("e").Content.AllowsChild("f") || d.Element("e").Content.AllowsChild("b") {
		t.Error("mixed AllowsChild")
	}
	if d.Element("g").Content.AllowsChild("b") {
		t.Error("EMPTY allows nothing")
	}
	if !d.Element("h").Content.AllowsChild("anything") {
		t.Error("ANY allows everything")
	}
}

func TestAlphabet(t *testing.T) {
	d := MustParse("t", `<!ELEMENT a (b,(c|d)*,b)>`)
	got := d.Element("a").Content.Alphabet()
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("alphabet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alphabet = %v", got)
		}
	}
}

func TestMatchChildren(t *testing.T) {
	d := MustParse("t", `
<!ELEMENT a (b,(c|d)*,e?)>
<!ELEMENT m (#PCDATA|x)*>
<!ELEMENT n EMPTY>
<!ELEMENT o ANY>
`)
	a := d.Element("a")
	valid := [][]string{
		{"b"},
		{"b", "c"},
		{"b", "d", "c", "c"},
		{"b", "e"},
		{"b", "c", "d", "e"},
	}
	invalid := [][]string{
		{},
		{"c"},
		{"b", "e", "c"},
		{"b", "b"},
		{"b", "z"},
		{"e"},
	}
	for _, w := range valid {
		if !a.MatchChildren(w) {
			t.Errorf("MatchChildren(%v) = false, want true", w)
		}
	}
	for _, w := range invalid {
		if a.MatchChildren(w) {
			t.Errorf("MatchChildren(%v) = true, want false", w)
		}
	}
	m := d.Element("m")
	if !m.MatchChildren([]string{"x", "x"}) || m.MatchChildren([]string{"y"}) {
		t.Error("mixed match")
	}
	n := d.Element("n")
	if !n.MatchChildren(nil) || n.MatchChildren([]string{"x"}) {
		t.Error("empty match")
	}
	o := d.Element("o")
	if !o.MatchChildren([]string{"q", "r"}) {
		t.Error("any match")
	}
}

func TestMatchPlusStar(t *testing.T) {
	d := MustParse("t", `<!ELEMENT a (b+)> <!ELEMENT c (b*)>`)
	a, c := d.Element("a"), d.Element("c")
	if a.MatchChildren(nil) {
		t.Error("b+ should reject empty")
	}
	if !a.MatchChildren([]string{"b", "b", "b"}) {
		t.Error("b+ should accept bbb")
	}
	if !c.MatchChildren(nil) {
		t.Error("b* should accept empty")
	}
}

func TestCanExtendChildren(t *testing.T) {
	d := MustParse("t", `<!ELEMENT a (b,(c|d)*,e?)>`)
	a := d.Element("a")
	// Any subsequence of a valid word can be extended.
	canExtend := [][]string{
		{},         // insert b later
		{"b"},      // already valid
		{"c"},      // insert b before
		{"d", "e"}, // insert b before d
		{"e"},      // insert b before e
		{"c", "c"}, // b inserted before
		{"b", "e"}, // already valid
		{"c", "d"}, // b before
	}
	cannot := [][]string{
		{"b", "b"},      // two b's never valid
		{"e", "c"},      // c after e impossible
		{"z"},           // unknown name
		{"e", "e"},      // two e's
		{"b", "e", "d"}, // d after e
	}
	for _, w := range canExtend {
		if !a.CanExtendChildren(w) {
			t.Errorf("CanExtendChildren(%v) = false, want true", w)
		}
	}
	for _, w := range cannot {
		if a.CanExtendChildren(w) {
			t.Errorf("CanExtendChildren(%v) = true, want false", w)
		}
	}
}

func TestCanExtendSeq(t *testing.T) {
	d := MustParse("t", `<!ELEMENT a (b,c,d)>`)
	a := d.Element("a")
	for _, w := range [][]string{{}, {"b"}, {"c"}, {"d"}, {"b", "d"}, {"b", "c", "d"}, {"c", "d"}} {
		if !a.CanExtendChildren(w) {
			t.Errorf("CanExtendChildren(%v) = false, want true", w)
		}
	}
	for _, w := range [][]string{{"d", "b"}, {"c", "b"}, {"b", "b"}, {"d", "c"}} {
		if a.CanExtendChildren(w) {
			t.Errorf("CanExtendChildren(%v) = true, want false", w)
		}
	}
}

// Property: every prefix-with-gaps (subsequence) of a valid word can be
// extended; MatchChildren implies CanExtendChildren.
func TestMatchImpliesCanExtend(t *testing.T) {
	d := MustParse("t", `<!ELEMENT a ((b|c)+,d?,(e,f)*)>`)
	a := d.Element("a")
	words := [][]string{
		{"b"},
		{"b", "c", "b"},
		{"c", "d"},
		{"b", "e", "f"},
		{"b", "d", "e", "f", "e", "f"},
	}
	for _, w := range words {
		if !a.MatchChildren(w) {
			t.Fatalf("fixture word %v should be valid", w)
		}
		// Every subsequence (drop each single element) must be extendable.
		for i := range w {
			sub := append(append([]string{}, w[:i]...), w[i+1:]...)
			if !a.CanExtendChildren(sub) {
				t.Errorf("subsequence %v of valid %v not extendable", sub, w)
			}
		}
	}
}

func TestEmptyAndAnyExtend(t *testing.T) {
	d := MustParse("t", `<!ELEMENT a EMPTY> <!ELEMENT b ANY> <!ELEMENT m (#PCDATA|x)*>`)
	if d.Element("a").CanExtendChildren([]string{"x"}) {
		t.Error("EMPTY cannot gain children")
	}
	if !d.Element("a").CanExtendChildren(nil) {
		t.Error("EMPTY with no children is fine")
	}
	if !d.Element("b").CanExtendChildren([]string{"q"}) {
		t.Error("ANY extends")
	}
	if !d.Element("m").CanExtendChildren([]string{"x"}) || d.Element("m").CanExtendChildren([]string{"y"}) {
		t.Error("mixed extend")
	}
}

func TestDTDString(t *testing.T) {
	d := MustParse("t", manuscriptDTD)
	s := d.String()
	for _, want := range []string{"<!ELEMENT page (line+)>", "<!ELEMENT line (#PCDATA)>", "#REQUIRED", `(scribe1|scribe2) "scribe1"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	// Round-trip: re-parsing the rendered DTD gives the same structure.
	d2, err := Parse("t", []byte(s))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if d2.String() != s {
		t.Errorf("round-trip mismatch:\n%s\nvs\n%s", s, d2.String())
	}
}

func TestModelKindString(t *testing.T) {
	for k, want := range map[ModelKind]string{
		ModelEmpty: "EMPTY", ModelAny: "ANY", ModelMixed: "MIXED", ModelChildren: "CHILDREN",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
	if !strings.Contains(ModelKind(42).String(), "42") {
		t.Error("unknown kind")
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse("t", []byte(`<!ELEMENT a (b,>`))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if !strings.Contains(pe.Error(), "dtd:") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParse("t", `<!ELEMENT`)
}

func TestFixedAndImpliedAttrs(t *testing.T) {
	d := MustParse("t", `
<!ELEMENT a EMPTY>
<!ATTLIST a
  version CDATA #FIXED "1.0"
  id ID #IMPLIED
  refs IDREFS #IMPLIED
  kind NMTOKEN #IMPLIED
  kinds NMTOKENS #IMPLIED>
`)
	a := d.Element("a")
	v := a.AttDef("version")
	if v.Default != DefaultFixed || v.Value != "1.0" {
		t.Errorf("version = %+v", v)
	}
	for name, typ := range map[string]string{"id": "ID", "refs": "IDREFS", "kind": "NMTOKEN", "kinds": "NMTOKENS"} {
		def := a.AttDef(name)
		if def == nil || def.Type != typ {
			t.Errorf("%s = %+v, want type %s", name, def, typ)
		}
	}
}

func TestLargeModelDFA(t *testing.T) {
	// A model with repeated names exercises the subset construction.
	d := MustParse("t", `<!ELEMENT a ((b,c)|(b,d))>`)
	a := d.Element("a")
	if !a.MatchChildren([]string{"b", "c"}) || !a.MatchChildren([]string{"b", "d"}) {
		t.Error("both branches should match")
	}
	if a.MatchChildren([]string{"b"}) || a.MatchChildren([]string{"c"}) {
		t.Error("partials should not match")
	}
	if !a.CanExtendChildren([]string{"b"}) || !a.CanExtendChildren([]string{"d"}) {
		t.Error("partials should extend")
	}
}
