package dtd

import "sort"

// This file compiles children content models into automata.
//
// The Glushkov construction numbers every name occurrence (position) in
// the expression 1..n and derives nullable/first/last/follow sets; the NFA
// has states {0..n} where 0 is the start, transitions 0→first and
// p→follow(p) labelled with the position's name, and accepting states
// last(E) (plus 0 when the expression is nullable). Because XML content
// models are required to be deterministic, the subset-construction DFA is
// small in practice; we build it unconditionally and use it for Match.
//
// Potential validity (package validate; paper reference [5]) asks whether
// a children word w can be *extended to* a valid word by inserting more
// names anywhere — i.e. whether w is a subsequence of some word in L(M).
// On the Glushkov NFA this is a simulation in which, before each input
// symbol, the state set is closed under *all* transitions regardless of
// label (anything could be inserted there), implemented by CanExtend.

// bitset is a fixed-capacity bit vector over NFA positions.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) intersects(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) key() string {
	buf := make([]byte, 0, len(b)*8)
	for _, w := range b {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}

// nfa is the Glushkov automaton of a children expression.
type nfa struct {
	n        int      // number of positions; states are 0..n
	names    []string // names[p-1] is the label of position p
	nullable bool
	first    bitset   // positions reachable from the start
	follow   []bitset // follow[p] for p in 1..n (index p-1)
	last     bitset   // accepting positions
	// byName[name] lists positions labelled name.
	byName map[string][]int
}

// glushkov builds the NFA for expr.
func glushkov(expr *Expr) *nfa {
	var names []string
	var number func(e *Expr)
	number = func(e *Expr) {
		if e.Op == OpName {
			names = append(names, e.Name)
			return
		}
		for _, k := range e.Kids {
			number(k)
		}
	}
	number(expr)
	n := len(names)
	a := &nfa{
		n:      n,
		names:  names,
		first:  newBitset(n + 1),
		last:   newBitset(n + 1),
		byName: map[string][]int{},
	}
	a.follow = make([]bitset, n)
	for i := range a.follow {
		a.follow[i] = newBitset(n + 1)
	}
	for p, nm := range names {
		a.byName[nm] = append(a.byName[nm], p+1)
	}

	type info struct {
		nullable    bool
		first, last bitset
	}
	pos := 0
	var walk func(e *Expr) info
	walk = func(e *Expr) info {
		switch e.Op {
		case OpName:
			pos++
			f := newBitset(n + 1)
			f.set(pos)
			l := newBitset(n + 1)
			l.set(pos)
			return info{nullable: false, first: f, last: l}
		case OpSeq:
			cur := walk(e.Kids[0])
			for _, k := range e.Kids[1:] {
				next := walk(k)
				// follow(last(cur)) += first(next)
				for p := 1; p <= n; p++ {
					if cur.last.has(p) {
						a.follow[p-1].or(next.first)
					}
				}
				first := cur.first.clone()
				if cur.nullable {
					first.or(next.first)
				}
				last := next.last.clone()
				if next.nullable {
					last.or(cur.last)
				}
				cur = info{nullable: cur.nullable && next.nullable, first: first, last: last}
			}
			return cur
		case OpChoice:
			cur := walk(e.Kids[0])
			for _, k := range e.Kids[1:] {
				next := walk(k)
				cur.first.or(next.first)
				cur.last.or(next.last)
				cur.nullable = cur.nullable || next.nullable
			}
			return cur
		case OpOpt:
			in := walk(e.Kids[0])
			in.nullable = true
			return in
		case OpStar, OpPlus:
			in := walk(e.Kids[0])
			for p := 1; p <= n; p++ {
				if in.last.has(p) {
					a.follow[p-1].or(in.first)
				}
			}
			if e.Op == OpStar {
				in.nullable = true
			}
			return in
		default:
			panic("dtd: unknown expression op")
		}
	}
	top := walk(expr)
	a.nullable = top.nullable
	a.first = top.first
	a.last = top.last
	return a
}

// dfa is the determinized children automaton.
type dfa struct {
	// next[state][symbol] is the successor state or -1.
	next   [][]int
	accept []bool
	// symbols maps a name to its symbol index; names not in the model
	// have no entry and immediately reject.
	symbols map[string]int
}

// determinize builds the subset-construction DFA of a.
func determinize(a *nfa) *dfa {
	symNames := make([]string, 0, len(a.byName))
	for nm := range a.byName {
		symNames = append(symNames, nm)
	}
	sort.Strings(symNames)
	symbols := make(map[string]int, len(symNames))
	for i, nm := range symNames {
		symbols[nm] = i
	}

	d := &dfa{symbols: symbols}
	ids := map[string]int{}

	start := newBitset(a.n + 1)
	start.set(0)

	var build func(set bitset) int
	build = func(set bitset) int {
		if id, ok := ids[set.key()]; ok {
			return id
		}
		id := len(d.next)
		ids[set.key()] = id
		d.next = append(d.next, make([]int, len(symNames)))
		for i := range d.next[id] {
			d.next[id][i] = -1
		}
		acc := a.nullable && set.has(0)
		if set.intersects(a.last) {
			acc = true
		}
		d.accept = append(d.accept, acc)
		for si, nm := range symNames {
			to := newBitset(a.n + 1)
			for _, p := range a.byName[nm] {
				// p is reachable on nm from q when q==0 and p∈first, or
				// p∈follow(q).
				if set.has(0) && a.first.has(p) {
					to.set(p)
				}
				for q := 1; q <= a.n; q++ {
					if set.has(q) && a.follow[q-1].has(p) {
						to.set(p)
					}
				}
			}
			if !to.empty() {
				d.next[id][si] = build(to)
			}
		}
		return id
	}
	build(start)
	return d
}

// match reports whether the word is in the DFA's language.
func (d *dfa) match(word []string) bool {
	state := 0
	for _, w := range word {
		si, ok := d.symbols[w]
		if !ok {
			return false
		}
		state = d.next[state][si]
		if state < 0 {
			return false
		}
	}
	return d.accept[state]
}

// canExtend reports whether word is a subsequence of some word in the
// NFA's language: before each symbol (and at the end) the state set is
// closed under arbitrary transitions, modelling future insertions.
func (a *nfa) canExtend(word []string) bool {
	cur := newBitset(a.n + 1)
	cur.set(0)
	closure := func(set bitset) bitset {
		// Reachability over all transitions, any label.
		out := set.clone()
		changed := true
		for changed {
			changed = false
			for p := 0; p <= a.n; p++ {
				if !out.has(p) {
					continue
				}
				var targets bitset
				if p == 0 {
					targets = a.first
				} else {
					targets = a.follow[p-1]
				}
				for q := 1; q <= a.n; q++ {
					if targets.has(q) && !out.has(q) {
						out.set(q)
						changed = true
					}
				}
			}
		}
		return out
	}
	for _, w := range word {
		ps, ok := a.byName[w]
		if !ok {
			return false // name never appears in the model
		}
		cl := closure(cur)
		next := newBitset(a.n + 1)
		any := false
		for _, p := range ps {
			// p entered via a transition from some state in cl.
			if cl.has(0) && a.first.has(p) {
				next.set(p)
				any = true
				continue
			}
			for q := 1; q <= a.n; q++ {
				if cl.has(q) && a.follow[q-1].has(p) {
					next.set(p)
					any = true
					break
				}
			}
		}
		if !any {
			return false
		}
		cur = next
	}
	final := closure(cur)
	if a.nullable && final.has(0) {
		return true
	}
	return final.intersects(a.last)
}

// compile prepares the element's automata; it is idempotent.
func (e *ElementDecl) compile() {
	if e.Content.Kind != ModelChildren || e.dfa != nil {
		return
	}
	a := glushkov(e.Content.Expr)
	e.sup = a
	e.dfa = determinize(a)
}

// MatchChildren reports whether the given sequence of child element names
// is valid for this element's content model. Character data is not
// considered here; see ContentModel.AllowsText.
func (e *ElementDecl) MatchChildren(names []string) bool {
	switch e.Content.Kind {
	case ModelEmpty:
		return len(names) == 0
	case ModelAny:
		return true
	case ModelMixed:
		for _, n := range names {
			if !e.Content.AllowsChild(n) {
				return false
			}
		}
		return true
	default:
		e.compile()
		return e.dfa.match(names)
	}
}

// CanExtendChildren reports whether the given child-name sequence could
// become valid by inserting additional child elements at any positions —
// the element-local core of the potential validity check (paper [5]).
func (e *ElementDecl) CanExtendChildren(names []string) bool {
	switch e.Content.Kind {
	case ModelEmpty:
		return len(names) == 0
	case ModelAny:
		return true
	case ModelMixed:
		return e.MatchChildren(names)
	default:
		e.compile()
		return e.sup.canExtend(names)
	}
}
