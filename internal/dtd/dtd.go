// Package dtd parses Document Type Definitions and compiles element
// content models into automata.
//
// In the paper's framework a *concurrent markup hierarchy* is a collection
// of DTDs whose element sets do not conflict with one another (paper §3):
// each hierarchy of a concurrent document is validated against its own
// DTD. This package provides the substrate for both classic validation and
// the potential-validity ("prevalidation") check of xTagger, implemented
// in package validate.
//
// The supported DTD subset covers document-centric usage: ELEMENT
// declarations with EMPTY, ANY, mixed, and deterministic children content
// models, and ATTLIST declarations with CDATA, ID, IDREF(S), NMTOKEN(S),
// and enumerated types. Parameter entities and conditional sections are
// not supported.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// DTD is a parsed document type definition: the element and attribute
// declarations of one markup hierarchy.
type DTD struct {
	// Name identifies the DTD (by convention the hierarchy name).
	Name string
	// Elements maps element names to their declarations.
	Elements map[string]*ElementDecl
	// Order lists element names in declaration order.
	Order []string
}

// ElementDecl declares one element type.
type ElementDecl struct {
	Name    string
	Content ContentModel
	Attrs   []AttDef

	dfa *dfa // lazily compiled children automaton
	sup *nfa // lazily compiled NFA used for potential validity
}

// AttDefault describes an attribute's default declaration.
type AttDefault int

// Attribute default kinds.
const (
	DefaultImplied AttDefault = iota
	DefaultRequired
	DefaultFixed
	DefaultValue
)

// AttDef declares one attribute.
type AttDef struct {
	Name    string
	Type    string   // CDATA, ID, IDREF, IDREFS, NMTOKEN, NMTOKENS, or "enum"
	Enum    []string // allowed values for enumerated types
	Default AttDefault
	Value   string // default or fixed value
}

// ModelKind discriminates content model forms.
type ModelKind int

// Content model kinds.
const (
	ModelEmpty ModelKind = iota
	ModelAny
	ModelMixed    // (#PCDATA | a | b)*
	ModelChildren // deterministic regular expression over element names
)

// String returns the kind name.
func (k ModelKind) String() string {
	switch k {
	case ModelEmpty:
		return "EMPTY"
	case ModelAny:
		return "ANY"
	case ModelMixed:
		return "MIXED"
	case ModelChildren:
		return "CHILDREN"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// ContentModel is an element's declared content.
type ContentModel struct {
	Kind  ModelKind
	Mixed []string // element names admitted in mixed content
	Expr  *Expr    // children expression, for ModelChildren
}

// AllowsText reports whether character data may appear directly inside an
// element with this model.
func (m ContentModel) AllowsText() bool {
	return m.Kind == ModelMixed || m.Kind == ModelAny
}

// AllowsChild reports whether an element with this model may (in some
// position) contain a child element with the given name.
func (m ContentModel) AllowsChild(name string) bool {
	switch m.Kind {
	case ModelAny:
		return true
	case ModelEmpty:
		return false
	case ModelMixed:
		for _, n := range m.Mixed {
			if n == name {
				return true
			}
		}
		return false
	default:
		return m.Expr.mentions(name)
	}
}

// Alphabet returns the set of child element names the model mentions,
// sorted.
func (m ContentModel) Alphabet() []string {
	set := map[string]bool{}
	switch m.Kind {
	case ModelMixed:
		for _, n := range m.Mixed {
			set[n] = true
		}
	case ModelChildren:
		m.Expr.collect(set)
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the model in DTD syntax.
func (m ContentModel) String() string {
	switch m.Kind {
	case ModelEmpty:
		return "EMPTY"
	case ModelAny:
		return "ANY"
	case ModelMixed:
		if len(m.Mixed) == 0 {
			return "(#PCDATA)"
		}
		return "(#PCDATA|" + strings.Join(m.Mixed, "|") + ")*"
	default:
		s := m.Expr.String()
		if !strings.HasPrefix(s, "(") {
			// Top-level children models must be parenthesized in DTD syntax.
			s = "(" + s + ")"
		}
		return s
	}
}

// Op is a children-expression operator.
type Op int

// Expression operators.
const (
	OpName   Op = iota // a leaf: one element name
	OpSeq              // a , b , c
	OpChoice           // a | b | c
	OpOpt              // x?
	OpStar             // x*
	OpPlus             // x+
)

// Expr is a node of a children content-model expression.
type Expr struct {
	Op   Op
	Name string  // for OpName
	Kids []*Expr // operands
}

// String renders the expression in DTD syntax.
func (e *Expr) String() string {
	switch e.Op {
	case OpName:
		return e.Name
	case OpSeq:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, ",") + ")"
	case OpChoice:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, "|") + ")"
	case OpOpt:
		return e.Kids[0].String() + "?"
	case OpStar:
		return e.Kids[0].String() + "*"
	case OpPlus:
		return e.Kids[0].String() + "+"
	default:
		return "?!"
	}
}

func (e *Expr) mentions(name string) bool {
	if e == nil {
		return false
	}
	if e.Op == OpName {
		return e.Name == name
	}
	for _, k := range e.Kids {
		if k.mentions(name) {
			return true
		}
	}
	return false
}

func (e *Expr) collect(set map[string]bool) {
	if e == nil {
		return
	}
	if e.Op == OpName {
		set[e.Name] = true
		return
	}
	for _, k := range e.Kids {
		k.collect(set)
	}
}

// Element returns the declaration for name, or nil.
func (d *DTD) Element(name string) *ElementDecl {
	return d.Elements[name]
}

// ElementNames returns declared element names in declaration order.
func (d *DTD) ElementNames() []string {
	out := make([]string, len(d.Order))
	copy(out, d.Order)
	return out
}

// AttDef returns the declaration of the named attribute, or nil.
func (e *ElementDecl) AttDef(name string) *AttDef {
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			return &e.Attrs[i]
		}
	}
	return nil
}

// String renders the DTD back to declaration syntax.
func (d *DTD) String() string {
	var b strings.Builder
	for _, name := range d.Order {
		e := d.Elements[name]
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", e.Name, e.Content)
		if len(e.Attrs) > 0 {
			fmt.Fprintf(&b, "<!ATTLIST %s", e.Name)
			for _, a := range e.Attrs {
				typ := a.Type
				if typ == "enum" {
					typ = "(" + strings.Join(a.Enum, "|") + ")"
				}
				fmt.Fprintf(&b, "\n  %s %s", a.Name, typ)
				switch a.Default {
				case DefaultRequired:
					b.WriteString(" #REQUIRED")
				case DefaultImplied:
					b.WriteString(" #IMPLIED")
				case DefaultFixed:
					fmt.Fprintf(&b, " #FIXED %q", a.Value)
				case DefaultValue:
					fmt.Fprintf(&b, " %q", a.Value)
				}
			}
			b.WriteString(">\n")
		}
	}
	return b.String()
}
