package dtd

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseError reports a syntax error in a DTD.
type ParseError struct {
	Offset int
	Msg    string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd: offset %d: %s", e.Offset, e.Msg)
}

// Parse parses DTD source (the contents of a .dtd file or a DOCTYPE
// internal subset). name identifies the DTD, by convention the hierarchy
// name.
func Parse(name string, src []byte) (*DTD, error) {
	p := &parser{src: string(src)}
	d := &DTD{Name: name, Elements: make(map[string]*ElementDecl)}
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			return d, nil
		}
		switch {
		case p.has("<!ELEMENT"):
			if err := p.parseElement(d); err != nil {
				return nil, err
			}
		case p.has("<!ATTLIST"):
			if err := p.parseAttlist(d); err != nil {
				return nil, err
			}
		case p.has("<!ENTITY"):
			if err := p.skipDecl(); err != nil {
				return nil, err
			}
		case p.has("<!NOTATION"):
			if err := p.skipDecl(); err != nil {
				return nil, err
			}
		case p.has("<?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected input %q", p.peek(12))
		}
	}
}

// MustParse is Parse that panics on error, for tests and fixtures.
func MustParse(name, src string) *DTD {
	d, err := Parse(name, []byte(src))
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	src string
	pos int
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek(n int) string {
	if p.pos+n > len(p.src) {
		n = len(p.src) - p.pos
	}
	return p.src[p.pos : p.pos+n]
}

func (p *parser) has(prefix string) bool {
	return strings.HasPrefix(p.src[p.pos:], prefix)
}

func (p *parser) eat(prefix string) bool {
	if p.has(prefix) {
		p.pos += len(prefix)
		return true
	}
	return false
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
		} else {
			return
		}
	}
}

func (p *parser) skipSpaceAndComments() {
	for {
		p.skipSpace()
		if p.has("<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		return
	}
}

func (p *parser) skipDecl() error {
	// Skip to the matching '>' respecting quoted literals.
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '"', '\'':
			q := p.src[p.pos]
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != q {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return p.errorf("unterminated literal")
			}
			p.pos++
		case '>':
			p.pos++
			return nil
		default:
			p.pos++
		}
	}
	return p.errorf("unterminated declaration")
}

func (p *parser) skipPI() error {
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return p.errorf("unterminated processing instruction")
	}
	p.pos += end + 2
	return nil
}

func (p *parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' || c == ':' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", p.errorf("expected name, found %q", p.peek(8))
	}
	n := p.src[start:p.pos]
	if c := rune(n[0]); !unicode.IsLetter(c) && c != '_' && c != ':' {
		return "", p.errorf("invalid name %q", n)
	}
	return n, nil
}

func (p *parser) parseElement(d *DTD) error {
	p.eat("<!ELEMENT")
	p.skipSpace()
	name, err := p.name()
	if err != nil {
		return err
	}
	p.skipSpace()
	model, err := p.contentModel()
	if err != nil {
		return err
	}
	p.skipSpace()
	if !p.eat(">") {
		return p.errorf("expected '>' at end of ELEMENT %s", name)
	}
	if _, dup := d.Elements[name]; dup {
		return p.errorf("duplicate declaration of element %s", name)
	}
	decl := &ElementDecl{Name: name, Content: model}
	d.Elements[name] = decl
	d.Order = append(d.Order, name)
	return nil
}

func (p *parser) contentModel() (ContentModel, error) {
	switch {
	case p.eat("EMPTY"):
		return ContentModel{Kind: ModelEmpty}, nil
	case p.eat("ANY"):
		return ContentModel{Kind: ModelAny}, nil
	}
	if !p.has("(") {
		return ContentModel{}, p.errorf("expected content model, found %q", p.peek(8))
	}
	// Lookahead for mixed content.
	save := p.pos
	p.eat("(")
	p.skipSpace()
	if p.eat("#PCDATA") {
		var mixed []string
		for {
			p.skipSpace()
			if p.eat(")") {
				// Trailing '*' required when alternatives present.
				star := p.eat("*")
				if len(mixed) > 0 && !star {
					return ContentModel{}, p.errorf("mixed content with alternatives requires ')*'")
				}
				return ContentModel{Kind: ModelMixed, Mixed: mixed}, nil
			}
			if !p.eat("|") {
				return ContentModel{}, p.errorf("expected '|' or ')' in mixed content")
			}
			p.skipSpace()
			n, err := p.name()
			if err != nil {
				return ContentModel{}, err
			}
			mixed = append(mixed, n)
		}
	}
	// Children content.
	p.pos = save
	expr, err := p.cp()
	if err != nil {
		return ContentModel{}, err
	}
	return ContentModel{Kind: ModelChildren, Expr: expr}, nil
}

// cp parses a content particle: name or group, with optional modifier.
func (p *parser) cp() (*Expr, error) {
	p.skipSpace()
	var e *Expr
	if p.eat("(") {
		inner, err := p.group()
		if err != nil {
			return nil, err
		}
		e = inner
	} else {
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		e = &Expr{Op: OpName, Name: n}
	}
	switch {
	case p.eat("?"):
		return &Expr{Op: OpOpt, Kids: []*Expr{e}}, nil
	case p.eat("*"):
		return &Expr{Op: OpStar, Kids: []*Expr{e}}, nil
	case p.eat("+"):
		return &Expr{Op: OpPlus, Kids: []*Expr{e}}, nil
	}
	return e, nil
}

// group parses the inside of '(...)': a seq or choice list. The opening
// paren is already consumed; the closing paren is consumed here.
func (p *parser) group() (*Expr, error) {
	first, err := p.cp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	switch {
	case p.eat(")"):
		return first, nil
	case p.has(","):
		kids := []*Expr{first}
		for p.eat(",") {
			e, err := p.cp()
			if err != nil {
				return nil, err
			}
			kids = append(kids, e)
			p.skipSpace()
		}
		if !p.eat(")") {
			return nil, p.errorf("expected ')' after sequence")
		}
		return &Expr{Op: OpSeq, Kids: kids}, nil
	case p.has("|"):
		kids := []*Expr{first}
		for p.eat("|") {
			e, err := p.cp()
			if err != nil {
				return nil, err
			}
			kids = append(kids, e)
			p.skipSpace()
		}
		if !p.eat(")") {
			return nil, p.errorf("expected ')' after choice")
		}
		return &Expr{Op: OpChoice, Kids: kids}, nil
	default:
		return nil, p.errorf("expected ',', '|' or ')' in group, found %q", p.peek(8))
	}
}

func (p *parser) parseAttlist(d *DTD) error {
	p.eat("<!ATTLIST")
	p.skipSpace()
	elName, err := p.name()
	if err != nil {
		return err
	}
	decl := d.Elements[elName]
	if decl == nil {
		// XML allows ATTLIST before ELEMENT; create a placeholder that a
		// later ELEMENT declaration would conflict with, so instead record
		// it with ANY content and let a duplicate ELEMENT fail loudly.
		decl = &ElementDecl{Name: elName, Content: ContentModel{Kind: ModelAny}}
		d.Elements[elName] = decl
		d.Order = append(d.Order, elName)
	}
	for {
		p.skipSpace()
		if p.eat(">") {
			return nil
		}
		aname, err := p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		var a AttDef
		a.Name = aname
		switch {
		case p.eat("CDATA"):
			a.Type = "CDATA"
		case p.eat("IDREFS"):
			a.Type = "IDREFS"
		case p.eat("IDREF"):
			a.Type = "IDREF"
		case p.eat("ID"):
			a.Type = "ID"
		case p.eat("NMTOKENS"):
			a.Type = "NMTOKENS"
		case p.eat("NMTOKEN"):
			a.Type = "NMTOKEN"
		case p.has("("):
			p.eat("(")
			a.Type = "enum"
			for {
				p.skipSpace()
				v, err := p.name()
				if err != nil {
					return err
				}
				a.Enum = append(a.Enum, v)
				p.skipSpace()
				if p.eat(")") {
					break
				}
				if !p.eat("|") {
					return p.errorf("expected '|' or ')' in enumeration")
				}
			}
		default:
			return p.errorf("unknown attribute type %q", p.peek(10))
		}
		p.skipSpace()
		switch {
		case p.eat("#REQUIRED"):
			a.Default = DefaultRequired
		case p.eat("#IMPLIED"):
			a.Default = DefaultImplied
		case p.eat("#FIXED"):
			a.Default = DefaultFixed
			p.skipSpace()
			v, err := p.quoted()
			if err != nil {
				return err
			}
			a.Value = v
		default:
			v, err := p.quoted()
			if err != nil {
				return err
			}
			a.Default = DefaultValue
			a.Value = v
		}
		if existing := decl.AttDef(aname); existing != nil {
			return p.errorf("duplicate attribute %s on element %s", aname, elName)
		}
		decl.Attrs = append(decl.Attrs, a)
	}
}

func (p *parser) quoted() (string, error) {
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errorf("expected quoted value")
	}
	q := p.src[p.pos]
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errorf("unterminated quoted value")
	}
	v := p.src[start:p.pos]
	p.pos++
	return v, nil
}
