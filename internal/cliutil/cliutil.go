// Package cliutil holds the input/output plumbing shared by the cmd/
// tools: loading a concurrent document from any representation, naming
// hierarchies from file names, and writing multi-file output.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/sacx"
)

// Load reads a concurrent document.
//
// For the distributed format, paths are one XML file per hierarchy and
// each hierarchy is named after its file (base name without extension).
// For the single-file formats exactly one path is expected. Format "auto"
// guesses: multiple paths mean distributed; a single file is sniffed for
// the standoff root element or chx- metadata, falling back to a plain
// single-hierarchy document.
func Load(format string, paths []string) (*core.Document, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no input files")
	}
	if format == "auto" {
		format = guessFormat(paths)
	}
	switch format {
	case "distributed":
		var srcs []sacx.Source
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, sacx.Source{Hierarchy: HierarchyName(p), Data: data})
		}
		return core.Parse(srcs)
	case "milestones", "fragmentation", "standoff":
		if len(paths) != 1 {
			return nil, fmt.Errorf("format %s expects exactly one input file", format)
		}
		data, err := os.ReadFile(paths[0])
		if err != nil {
			return nil, err
		}
		f, err := drivers.ParseFormat(format)
		if err != nil {
			return nil, err
		}
		return core.Import(f, data)
	default:
		return nil, fmt.Errorf("unknown format %q (distributed, milestones, fragmentation, standoff, auto)", format)
	}
}

// guessFormat sniffs inputs.
func guessFormat(paths []string) string {
	if len(paths) > 1 {
		return "distributed"
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		return "distributed" // let Load surface the read error
	}
	head := string(data)
	if len(head) > 4096 {
		head = head[:4096]
	}
	switch {
	case strings.Contains(head, "<standoff"):
		return "standoff"
	case strings.Contains(head, "chx-id=") || strings.Contains(head, "chx-part="):
		return "fragmentation"
	case strings.Contains(head, "chx-s=") || strings.Contains(head, "chx-hierarchies="):
		return "milestones"
	default:
		return "distributed" // plain XML: a one-hierarchy distributed doc
	}
}

// HierarchyName derives a hierarchy name from a file path.
func HierarchyName(path string) string {
	base := filepath.Base(path)
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

// ParseDTDSpecs parses repeated "hierarchy=path" flags and installs the
// DTDs on the document.
func ParseDTDSpecs(doc *core.Document, specs []string) error {
	for _, spec := range specs {
		i := strings.IndexByte(spec, '=')
		if i <= 0 {
			return fmt.Errorf("bad -dtd %q: want hierarchy=path", spec)
		}
		hier, path := spec[:i], spec[i+1:]
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := doc.SetDTD(hier, data); err != nil {
			return fmt.Errorf("dtd %s: %w", hier, err)
		}
	}
	return nil
}

// WriteOutputs writes named outputs either to a directory (one file per
// entry, named <key>.xml) or, for a single entry, to the given file (or
// stdout when out is "-").
func WriteOutputs(out string, outputs map[string][]byte) error {
	if out == "-" || out == "" {
		keys := make([]string, 0, len(outputs))
		for k := range outputs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if len(outputs) > 1 {
				fmt.Printf("<!-- %s -->\n", k)
			}
			os.Stdout.Write(outputs[k])
			fmt.Println()
		}
		return nil
	}
	if len(outputs) == 1 {
		for _, data := range outputs {
			return os.WriteFile(out, data, 0o644)
		}
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for k, data := range outputs {
		if err := os.WriteFile(filepath.Join(out, k+".xml"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// StringList is a repeatable string flag.
type StringList []string

// String implements flag.Value.
func (s *StringList) String() string { return strings.Join(*s, ",") }

// Set implements flag.Value.
func (s *StringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}
