// Package cliutil holds the input/output plumbing shared by the cmd/
// tools: loading a concurrent document from any representation, naming
// hierarchies from file names, and writing multi-file output.
package cliutil

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/faultfs"
	"repro/internal/sacx"
	"repro/internal/store"
)

// Load reads a concurrent document.
//
// For the distributed format, paths are one XML file per hierarchy and
// each hierarchy is named after its file (base name without extension).
// For the single-file formats exactly one path is expected. Format "auto"
// guesses: multiple paths mean distributed; a single file is sniffed for
// the binary GODDAG magic, the standoff root element, or chx- metadata,
// falling back to a plain single-hierarchy document.
func Load(format string, paths []string) (*core.Document, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no input files")
	}
	if format == "auto" {
		format = guessFormat(paths)
	}
	switch format {
	case "gdag":
		if len(paths) != 1 {
			return nil, fmt.Errorf("format gdag expects exactly one input file")
		}
		// v3 files open through the mapping path — header validation
		// only, nodes materialize lazily on first touch. v2 files report
		// ErrV2 and take the streaming decoder below.
		g, _, err := store.OpenMappedDoc(faultfs.OS, paths[0])
		if err == nil {
			return core.FromGODDAG(g), nil
		}
		if !errors.Is(err, store.ErrV2) {
			return nil, err
		}
		f, err := os.Open(paths[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Load(f)
	case "distributed":
		var srcs []sacx.Source
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, sacx.Source{Hierarchy: HierarchyName(p), Data: data})
		}
		return core.Parse(srcs)
	case "milestones", "fragmentation", "standoff":
		if len(paths) != 1 {
			return nil, fmt.Errorf("format %s expects exactly one input file", format)
		}
		data, err := os.ReadFile(paths[0])
		if err != nil {
			return nil, err
		}
		f, err := drivers.ParseFormat(format)
		if err != nil {
			return nil, err
		}
		return core.Import(f, data)
	default:
		return nil, fmt.Errorf("unknown format %q (distributed, milestones, fragmentation, standoff, gdag, auto)", format)
	}
}

// guessFormat sniffs inputs. Only the first 4 KiB of the file is read —
// sniffing a large corpus file must not cost a full read before the
// actual load reads it again.
func guessFormat(paths []string) string {
	if len(paths) > 1 {
		return "distributed"
	}
	f, err := os.Open(paths[0])
	if err != nil {
		return "distributed" // let Load surface the open error
	}
	defer f.Close()
	buf := make([]byte, 4096)
	n, _ := io.ReadFull(f, buf)
	data := buf[:n]
	if bytes.HasPrefix(data, []byte("GDAG")) || strings.HasSuffix(paths[0], ".gdag") {
		return "gdag"
	}
	head := string(data)
	switch {
	case strings.Contains(head, "<standoff"):
		return "standoff"
	case strings.Contains(head, "chx-id=") || strings.Contains(head, "chx-part="):
		return "fragmentation"
	case strings.Contains(head, "chx-s=") || strings.Contains(head, "chx-hierarchies="):
		return "milestones"
	default:
		return "distributed" // plain XML: a one-hierarchy distributed doc
	}
}

// HierarchyName derives a hierarchy name from a file path.
func HierarchyName(path string) string {
	base := filepath.Base(path)
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

// ParseDTDSpecs parses repeated "hierarchy=path" flags and installs the
// DTDs on the document.
func ParseDTDSpecs(doc *core.Document, specs []string) error {
	for _, spec := range specs {
		i := strings.IndexByte(spec, '=')
		if i <= 0 {
			return fmt.Errorf("bad -dtd %q: want hierarchy=path", spec)
		}
		hier, path := spec[:i], spec[i+1:]
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := doc.SetDTD(hier, data); err != nil {
			return fmt.Errorf("dtd %s: %w", hier, err)
		}
	}
	return nil
}

// WriteOutputs writes named outputs either to a directory (one file per
// entry, named <key>.xml) or, for a single entry, to the given file (or
// stdout when out is "-").
func WriteOutputs(out string, outputs map[string][]byte) error {
	if out == "-" || out == "" {
		keys := make([]string, 0, len(outputs))
		for k := range outputs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if len(outputs) > 1 {
				fmt.Printf("<!-- %s -->\n", k)
			}
			os.Stdout.Write(outputs[k])
			fmt.Println()
		}
		return nil
	}
	if len(outputs) == 1 {
		for _, data := range outputs {
			return os.WriteFile(out, data, 0o644)
		}
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for k, data := range outputs {
		if err := os.WriteFile(filepath.Join(out, k+".xml"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// StringList is a repeatable string flag.
type StringList []string

// String implements flag.Value.
func (s *StringList) String() string { return strings.Join(*s, ",") }

// Set implements flag.Value.
func (s *StringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}
