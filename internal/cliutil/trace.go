package cliutil

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// WriteTrace renders a stage breakdown — the offline twin of the
// "trace" field a traced cxserve /query response carries. One line per
// stage with its share of the wall clock, then the visit count (when
// the evaluation counted nodes) and the total:
//
//	compile       41µs    0.4%
//	load         8.2ms   81.6%
//	eval         1.7ms   17.3%
//	visited       2000
//	total       10.1ms
//
// A nil trace writes nothing, so callers can pass the handle through
// unconditionally.
func WriteTrace(w io.Writer, tr *obs.Trace) {
	if tr == nil {
		return
	}
	total := tr.Total()
	for _, st := range tr.Stages() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.Dur) / float64(total)
		}
		fmt.Fprintf(w, "%-8s %10s  %5.1f%%\n", st.Name, st.Dur.Round(time.Microsecond), pct)
	}
	if n := tr.Visited(); n > 0 {
		fmt.Fprintf(w, "%-8s %10d\n", "visited", n)
	}
	fmt.Fprintf(w, "%-8s %10s\n", "total", total.Round(time.Microsecond))
}
