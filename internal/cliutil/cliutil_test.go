package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/drivers"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadDistributed(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "words.xml", `<r><w>ab</w>c</r>`)
	b := writeFile(t, dir, "damage.xml", `<r>a<d>bc</d></r>`)
	doc, err := Load("distributed", []string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	names := doc.GODDAG().HierarchyNames()
	if len(names) != 2 || names[0] != "words" || names[1] != "damage" {
		t.Errorf("hierarchies = %v", names)
	}
}

func TestLoadAutoMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.xml", `<r>xy</r>`)
	b := writeFile(t, dir, "b.xml", `<r>x<q>y</q></r>`)
	doc, err := Load("auto", []string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.GODDAG().HierarchyNames()) != 2 {
		t.Errorf("hierarchies = %v", doc.GODDAG().HierarchyNames())
	}
}

func TestLoadAutoSniffing(t *testing.T) {
	dir := t.TempDir()
	base := core.New("r", "hello world")
	s := base.Edit()
	if _, err := s.InsertMarkup("h1", "a", spanOf(0, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertMarkup("h2", "b", spanOf(3, 8)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		format drivers.Format
		file   string
	}{
		{drivers.FormatMilestones, "ms.xml"},
		{drivers.FormatFragmentation, "fr.xml"},
		{drivers.FormatStandoff, "so.xml"},
	}
	for _, c := range cases {
		out, err := base.Export(c.format, drivers.EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p := writeFile(t, dir, c.file, string(out["document"]))
		doc, err := Load("auto", []string{p})
		if err != nil {
			t.Fatalf("%v: %v", c.format, err)
		}
		if doc.Stats().Elements != base.Stats().Elements {
			t.Errorf("%v: elements %d != %d", c.format, doc.Stats().Elements, base.Stats().Elements)
		}
	}
}

func TestLoadPlainXMLAuto(t *testing.T) {
	dir := t.TempDir()
	p := writeFile(t, dir, "plain.xml", `<r><a>x</a></r>`)
	doc, err := Load("auto", []string{p})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Stats().Elements != 1 {
		t.Errorf("elements = %d", doc.Stats().Elements)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("distributed", nil); err == nil {
		t.Error("no files should error")
	}
	if _, err := Load("bogus", []string{"x"}); err == nil {
		t.Error("unknown format should error")
	}
	if _, err := Load("milestones", []string{"a", "b"}); err == nil {
		t.Error("single-file format with two files should error")
	}
	if _, err := Load("distributed", []string{"/nonexistent/file.xml"}); err == nil {
		t.Error("missing file should error")
	}
}

func TestHierarchyName(t *testing.T) {
	cases := map[string]string{
		"/a/b/words.xml": "words",
		"damage.xml":     "damage",
		"noext":          "noext",
		"/x/y.z.xml":     "y.z",
	}
	for in, want := range cases {
		if got := HierarchyName(in); got != want {
			t.Errorf("HierarchyName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseDTDSpecs(t *testing.T) {
	dir := t.TempDir()
	dtdPath := writeFile(t, dir, "w.dtd", `<!ELEMENT r ANY> <!ELEMENT w (#PCDATA)>`)
	doc := core.New("r", "ab")
	if err := ParseDTDSpecs(doc, []string{"words=" + dtdPath}); err != nil {
		t.Fatal(err)
	}
	if doc.Schema().DTD("words") == nil {
		t.Error("DTD not installed")
	}
	if err := ParseDTDSpecs(doc, []string{"malformed"}); err == nil {
		t.Error("bad spec should error")
	}
	if err := ParseDTDSpecs(doc, []string{"w=/nonexistent.dtd"}); err == nil {
		t.Error("missing DTD file should error")
	}
	bad := writeFile(t, dir, "bad.dtd", `<!ELEMENT`)
	if err := ParseDTDSpecs(doc, []string{"w=" + bad}); err == nil {
		t.Error("bad DTD should error")
	}
}

func TestWriteOutputs(t *testing.T) {
	dir := t.TempDir()
	// Single output to a file.
	single := filepath.Join(dir, "out.xml")
	if err := WriteOutputs(single, map[string][]byte{"document": []byte("<r/>")}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(single)
	if err != nil || string(data) != "<r/>" {
		t.Errorf("single output: %q %v", data, err)
	}
	// Multiple outputs to a directory.
	outDir := filepath.Join(dir, "multi")
	outs := map[string][]byte{"a": []byte("<r>a</r>"), "b": []byte("<r>b</r>")}
	if err := WriteOutputs(outDir, outs); err != nil {
		t.Fatal(err)
	}
	for k := range outs {
		if _, err := os.Stat(filepath.Join(outDir, k+".xml")); err != nil {
			t.Errorf("missing %s.xml: %v", k, err)
		}
	}
}

func TestStringList(t *testing.T) {
	var l StringList
	l.Set("a")
	l.Set("b")
	if l.String() != "a,b" || len(l) != 2 {
		t.Errorf("list = %v", l)
	}
}

func spanOf(a, b int) document.Span { return document.NewSpan(a, b) }
