package cliutil

import (
	"fmt"
	"io"

	"repro/internal/goddag"
	"repro/internal/xpath"
)

// This file is the single implementation of query-result rendering,
// shared by the cxquery CLI (text lines) and the cxserve HTTP service
// (JSON and text). Keeping one encoder guarantees the serving layer's
// results stay byte-identical to the CLI's for the same document and
// query — a property the server's handler tests assert.

// SpanJSON is a half-open offset interval in a JSON result.
type SpanJSON struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// NodeJSON is the wire form of one result node: its place in the GODDAG
// (kind, hierarchy, tag or leaf index) and its extent as both byte and
// rune offsets into the shared content. Text is the full dominated text.
type NodeJSON struct {
	Kind      string   `json:"kind"` // "root", "element", or "leaf"
	Hierarchy string   `json:"hierarchy,omitempty"`
	Tag       string   `json:"tag,omitempty"`
	Leaf      int      `json:"leaf,omitempty"`
	ByteSpan  SpanJSON `json:"byteSpan"`
	RuneSpan  SpanJSON `json:"runeSpan"`
	Text      string   `json:"text"`
}

// AttrJSON is the wire form of one attribute-axis result.
type AttrJSON struct {
	Owner string `json:"owner"` // owning element tag
	Name  string `json:"name"`
	Value string `json:"value"`
}

// ValueJSON is the wire form of one Extended XPath result value.
type ValueJSON struct {
	Type  string     `json:"type"` // "node-set", "attribute-set", "string", "number", "boolean"
	Count int        `json:"count"`
	Nodes []NodeJSON `json:"nodes,omitempty"`
	Attrs []AttrJSON `json:"attrs,omitempty"`
	Value string     `json:"value,omitempty"` // scalar results, XPath string form
	// Truncated is set when limit cut the node/attr list short; Count
	// still reports the full result size.
	Truncated bool `json:"truncated,omitempty"`
}

// EncodeNode converts a result node to its wire form.
func EncodeNode(n goddag.Node) NodeJSON {
	var e NodeEncoder
	return e.EncodeNode(n)
}

// EncodeNode is the cursor-carrying form of the package function: spans
// of document-ordered node sequences convert in amortized O(1).
func (e *NodeEncoder) EncodeNode(n goddag.Node) NodeJSON {
	content := n.Document().Content()
	sp := n.Span()
	out := NodeJSON{
		ByteSpan: SpanJSON{Start: sp.Start, End: sp.End},
		Text:     n.Text(),
	}
	rs := e.runeSpan(content, sp)
	out.RuneSpan = SpanJSON{Start: rs.Start, End: rs.End}
	switch v := n.(type) {
	case *goddag.Element:
		out.Kind = "element"
		out.Hierarchy = v.Hierarchy().Name()
		out.Tag = v.Name()
	case goddag.Leaf:
		out.Kind = "leaf"
		out.Leaf = v.Index()
	default:
		out.Kind = "root"
		out.Tag = n.Document().RootTag()
	}
	return out
}

// EncodeValue converts a query result to its wire form. A limit > 0 caps
// the number of encoded nodes/attributes (Count keeps the true size and
// Truncated is set); limit <= 0 encodes everything.
func EncodeValue(v xpath.Value, limit int) ValueJSON {
	if attrs := v.Attrs(); len(attrs) > 0 {
		out := ValueJSON{Type: "attribute-set", Count: len(attrs)}
		if limit > 0 && len(attrs) > limit {
			attrs, out.Truncated = attrs[:limit], true
		}
		out.Attrs = make([]AttrJSON, len(attrs))
		for i, a := range attrs {
			out.Attrs[i] = AttrJSON{Owner: a.Owner.Name(), Name: a.Name, Value: a.Value}
		}
		return out
	}
	if v.IsNodeSet() {
		nodes := v.Nodes()
		out := ValueJSON{Type: "node-set", Count: len(nodes)}
		if limit > 0 && len(nodes) > limit {
			nodes, out.Truncated = nodes[:limit], true
		}
		out.Nodes = make([]NodeJSON, len(nodes))
		var e NodeEncoder
		for i, n := range nodes {
			out.Nodes[i] = e.EncodeNode(n)
		}
		return out
	}
	return ValueJSON{Type: v.Kind(), Count: 1, Value: v.String()}
}

// FormatNode renders one result node as the cxquery line format:
//
//	hierarchy:tag[lo,hi) "text"    (elements)
//	leaf#i[lo,hi) "text"           (leaves)
//	root:tag "text"                (the root)
//
// Printed spans are character (rune) positions — the paper's coordinates
// — converted from the internal byte spans at this output edge. Text is
// clipped to 60 runes.
func FormatNode(n goddag.Node) string {
	return string(AppendNodeText(nil, n))
}

// WriteValue writes a query result in the cxquery text format: scalars
// as their string value, attribute sets as owner/@name = "value" lines,
// node-sets as one FormatNode line per node. With countOnly, node and
// attribute sets print only their (full) size. A limit > 0 caps the
// printed node/attribute lines, mirroring EncodeValue; limit <= 0
// prints everything.
func WriteValue(w io.Writer, v xpath.Value, countOnly bool, limit int) {
	if !v.IsNodeSet() {
		fmt.Fprintln(w, v.String())
		return
	}
	if attrs := v.Attrs(); len(attrs) > 0 {
		if countOnly {
			fmt.Fprintln(w, len(attrs))
			return
		}
		if limit > 0 && len(attrs) > limit {
			attrs = attrs[:limit]
		}
		for _, a := range attrs {
			fmt.Fprintf(w, "%s/@%s = %q\n", a.Owner, a.Name, a.Value)
		}
		return
	}
	nodes := v.Nodes()
	if countOnly {
		fmt.Fprintln(w, len(nodes))
		return
	}
	if limit > 0 && len(nodes) > limit {
		nodes = nodes[:limit]
	}
	// Render through the pooled append encoder: one recycled buffer per
	// call instead of two allocations (format + println) per node.
	bp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(bp)
	var e NodeEncoder
	for _, n := range nodes {
		buf := e.AppendNodeText((*bp)[:0], n)
		buf = append(buf, '\n')
		*bp = buf[:0]
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
}

// WriteFLWOR writes FLWOR results in the cxquery text format: node-set
// tuples expand to one FormatNode line per node, scalar tuples to their
// string value. With countOnly only the tuple count prints. A limit > 0
// caps the total printed node/attribute lines across all tuples;
// limit <= 0 prints everything.
func WriteFLWOR(w io.Writer, vals []xpath.Value, countOnly bool, limit int) {
	if countOnly {
		fmt.Fprintln(w, len(vals))
		return
	}
	remaining := limit
	for _, v := range vals {
		if limit > 0 && remaining <= 0 {
			return
		}
		if attrs := v.Attrs(); len(attrs) > 0 {
			if limit > 0 && len(attrs) > remaining {
				attrs = attrs[:remaining]
			}
			for _, a := range attrs {
				fmt.Fprintf(w, "%s/@%s = %q\n", a.Owner, a.Name, a.Value)
			}
			remaining -= len(attrs)
			continue
		}
		if v.IsNodeSet() {
			nodes := v.Nodes()
			if limit > 0 && len(nodes) > remaining {
				nodes = nodes[:remaining]
			}
			bp := scratchPool.Get().(*[]byte)
			var e NodeEncoder
			for _, n := range nodes {
				buf := e.AppendNodeText((*bp)[:0], n)
				buf = append(buf, '\n')
				*bp = buf[:0]
				if _, err := w.Write(buf); err != nil {
					scratchPool.Put(bp)
					return
				}
			}
			scratchPool.Put(bp)
			remaining -= len(nodes)
			continue
		}
		fmt.Fprintln(w, v.String())
		remaining--
	}
}

func clip(s string) string {
	r := []rune(s)
	if len(r) > 60 {
		return string(r[:57]) + "..."
	}
	return s
}
