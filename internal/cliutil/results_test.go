package cliutil

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func fig1(t *testing.T) *core.Document {
	t.Helper()
	doc, err := core.Parse(corpus.Fig1Sources())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestEncodeValueNodeSet(t *testing.T) {
	doc := fig1(t)
	v, err := doc.QueryValue("//w")
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeValue(v, 0)
	if enc.Type != "node-set" || enc.Count != 6 || len(enc.Nodes) != 6 || enc.Truncated {
		t.Fatalf("EncodeValue: %+v", enc)
	}
	n := enc.Nodes[1] // "hwæt": multibyte, byte and rune spans diverge
	if n.Kind != "element" || n.Hierarchy != "words" || n.Tag != "w" {
		t.Fatalf("node: %+v", n)
	}
	if n.ByteSpan == n.RuneSpan {
		t.Fatalf("byte span %v should differ from rune span %v past a multibyte rune", n.ByteSpan, n.RuneSpan)
	}
	if n.Text != "hwæt" {
		t.Fatalf("text %q", n.Text)
	}

	limited := EncodeValue(v, 2)
	if len(limited.Nodes) != 2 || !limited.Truncated || limited.Count != 6 {
		t.Fatalf("limited: %+v", limited)
	}
}

func TestEncodeValueScalar(t *testing.T) {
	doc := fig1(t)
	v, err := doc.QueryValue("count(//w)")
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeValue(v, 0)
	if enc.Type != "number" || enc.Value != "6" || enc.Count != 1 {
		t.Fatalf("scalar: %+v", enc)
	}
}

func TestWriteValueMatchesFormatNode(t *testing.T) {
	doc := fig1(t)
	v, err := doc.QueryValue("//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteValue(&buf, v, false, 0)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	nodes := v.Nodes()
	if len(lines) != len(nodes) {
		t.Fatalf("%d lines for %d nodes", len(lines), len(nodes))
	}
	for i, n := range nodes {
		if lines[i] != FormatNode(n) {
			t.Fatalf("line %d: %q != %q", i, lines[i], FormatNode(n))
		}
	}

	buf.Reset()
	WriteValue(&buf, v, true, 0)
	if got := strings.TrimSpace(buf.String()); got != "2" {
		t.Fatalf("count mode: %q", got)
	}
}
