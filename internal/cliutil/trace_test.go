package cliutil

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWriteTrace(t *testing.T) {
	tr := obs.NewTrace("t1")
	tr.Add("load", 800*time.Microsecond)
	tr.Add("eval", 200*time.Microsecond)
	tr.AddVisited(1234)

	var b strings.Builder
	WriteTrace(&b, tr)
	out := b.String()

	for _, want := range []string{"load", "eval", "visited", "1234", "total", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTrace output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // load, eval, visited, total
		t.Errorf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "load") || !strings.HasPrefix(lines[1], "eval") {
		t.Errorf("stages out of recorded order:\n%s", out)
	}
}

func TestWriteTraceNil(t *testing.T) {
	var b strings.Builder
	WriteTrace(&b, nil)
	if b.Len() != 0 {
		t.Errorf("nil trace wrote %q", b.String())
	}
}
