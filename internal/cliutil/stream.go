package cliutil

import (
	"io"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro/internal/document"
	"repro/internal/goddag"
)

// This file is the streaming side of result rendering: append-style
// encoders that write one node at a time into a caller-supplied byte
// slice, so the serving layer can emit arbitrarily large node-sets with
// a small constant amount of scratch memory instead of materializing a
// []NodeJSON. The byte output is pinned to the materializing encoders:
// AppendNodeJSON produces exactly what encoding/json (SetEscapeHTML
// false) produces for EncodeNode's NodeJSON, and AppendNodeText
// produces exactly FormatNode — equivalence tests in this package
// compare them byte for byte.

// NodeSource is the pull contract the stream encoders consume: Next
// returns nodes in document order and (nil, nil) at the end; Size
// reports the exact remaining count or -1 when unknown. xpath.Stream
// satisfies it. A Next error aborts the encode and propagates to the
// caller unchanged — that is how evaluation cancellation (a context
// deadline or an exhausted xpath.Budget mid-stream) flows through the
// encoders, so a consumer can still classify the error by identity.
type NodeSource interface {
	Next() (goddag.Node, error)
	Size() int
}

const jsonHex = "0123456789abcdef"

// digitPairs holds all two-digit decimal strings back to back, so the
// integer appender emits two digits per division.
const digitPairs = "00010203040506070809" +
	"10111213141516171819" +
	"20212223242526272829" +
	"30313233343536373839" +
	"40414243444546474849" +
	"50515253545556575859" +
	"60616263646566676869" +
	"70717273747576777879" +
	"80818283848586878889" +
	"90919293949596979899"

// AppendUint appends the decimal form of v, which must be non-negative
// — true of every quantity the encoders emit (offsets, counts, indexes,
// durations). It exists because strconv.AppendInt's generic formatter
// was a measurable share of large-response encoding time: this one
// extends dst by the exact width, then fills digit pairs in place, so
// there is no scratch buffer to copy out of.
func AppendUint(dst []byte, v int64) []byte {
	u := uint64(v)
	if u < 10 {
		return append(dst, byte('0'+u))
	}
	if u < 100 {
		j := u * 2
		return append(dst, digitPairs[j], digitPairs[j+1])
	}
	n := 3
	for p := uint64(1000); u >= p && n < 20; p *= 10 {
		n++
	}
	dst = append(dst, "00000000000000000000"[:n]...)
	i := len(dst)
	for u >= 100 {
		q := u / 100
		j := (u - q*100) * 2
		i -= 2
		dst[i] = digitPairs[j]
		dst[i+1] = digitPairs[j+1]
		u = q
	}
	if u >= 10 {
		j := u * 2
		dst[i-2] = digitPairs[j]
		dst[i-1] = digitPairs[j+1]
	} else {
		dst[i-1] = byte('0' + u)
	}
	return dst
}

// AppendJSONString appends s as a JSON string literal, byte-identical
// to encoding/json with HTML escaping disabled: quotes and backslashes
// escaped, control bytes as \b \f \n \r \t or \u00XX, invalid UTF-8 as
// �, and U+2028/U+2029 escaped for JSONP safety.
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

func appendSpanJSON(dst []byte, start, end int) []byte {
	dst = append(dst, `{"start":`...)
	dst = AppendUint(dst, int64(start))
	dst = append(dst, `,"end":`...)
	dst = AppendUint(dst, int64(end))
	dst = append(dst, '}')
	return dst
}

// NodeEncoder carries the incremental state of one node-set rendering
// pass: a pair of rune cursors (one for span starts, one for ends) that
// make byte→rune conversion amortized O(1) when nodes arrive in
// document order, which streamed node-sets always do. The zero value is
// ready to use; a NodeEncoder must not be shared across goroutines or
// across document mutations.
type NodeEncoder struct {
	content *document.Content
	starts  document.RuneCursor
	ends    document.RuneCursor
}

// runeSpan converts sp through the cursors, re-anchoring them when the
// content changes (first node, or a new document mid-stream).
func (e *NodeEncoder) runeSpan(content *document.Content, sp document.Span) document.Span {
	if e.content != content {
		e.content = content
		e.starts = content.RuneCursor()
		e.ends = content.RuneCursor()
	}
	return document.Span{Start: e.starts.RuneOffset(sp.Start), End: e.ends.RuneOffset(sp.End)}
}

// AppendNodeJSON appends the NodeJSON wire form of n, byte-identical to
// marshalling EncodeNode(n) with encoding/json and SetEscapeHTML(false)
// — including the omitempty behaviour of the hierarchy, tag and leaf
// fields.
func AppendNodeJSON(dst []byte, n goddag.Node) []byte {
	var e NodeEncoder
	return e.AppendNodeJSON(dst, n)
}

// AppendNodeJSON is the cursor-carrying form of the package function.
func (e *NodeEncoder) AppendNodeJSON(dst []byte, n goddag.Node) []byte {
	content := n.Document().Content()
	sp := n.Span()
	dst = append(dst, `{"kind":`...)
	switch v := n.(type) {
	case *goddag.Element:
		dst = append(dst, `"element"`...)
		if h := v.Hierarchy().Name(); h != "" {
			dst = append(dst, `,"hierarchy":`...)
			dst = AppendJSONString(dst, h)
		}
		if tag := v.Name(); tag != "" {
			dst = append(dst, `,"tag":`...)
			dst = AppendJSONString(dst, tag)
		}
	case goddag.Leaf:
		dst = append(dst, `"leaf"`...)
		if idx := v.Index(); idx != 0 {
			dst = append(dst, `,"leaf":`...)
			dst = AppendUint(dst, int64(idx))
		}
	default:
		dst = append(dst, `"root"`...)
		if tag := n.Document().RootTag(); tag != "" {
			dst = append(dst, `,"tag":`...)
			dst = AppendJSONString(dst, tag)
		}
	}
	dst = append(dst, `,"byteSpan":`...)
	dst = appendSpanJSON(dst, sp.Start, sp.End)
	rs := e.runeSpan(content, sp)
	dst = append(dst, `,"runeSpan":`...)
	dst = appendSpanJSON(dst, rs.Start, rs.End)
	dst = append(dst, `,"text":`...)
	dst = AppendJSONString(dst, n.Text())
	dst = append(dst, '}')
	return dst
}

func (e *NodeEncoder) appendRuneSpan(dst []byte, content *document.Content, sp document.Span) []byte {
	rs := e.runeSpan(content, sp)
	dst = append(dst, '[')
	dst = AppendUint(dst, int64(rs.Start))
	dst = append(dst, ',')
	dst = AppendUint(dst, int64(rs.End))
	dst = append(dst, ')')
	return dst
}

// appendClippedQuote appends the Go-quoted form of s clipped to 60
// runes (57 runes + "..." when longer), byte-identical to
// strconv.Quote(clip(s)) but without materializing the clipped string.
func appendClippedQuote(dst []byte, s string) []byte {
	runes, cut := 0, -1
	for i := range s {
		if runes == 57 {
			cut = i
		}
		runes++
		if runes > 60 {
			dst = strconv.AppendQuote(dst, s[:cut])
			// Splice the ellipsis inside the closing quote; dots need
			// no escaping, so this equals Quote(s[:cut] + "...").
			dst = dst[:len(dst)-1]
			return append(dst, '.', '.', '.', '"')
		}
	}
	return strconv.AppendQuote(dst, s)
}

// AppendNodeText appends the cxquery line format of n, byte-identical
// to FormatNode.
func AppendNodeText(dst []byte, n goddag.Node) []byte {
	var e NodeEncoder
	return e.AppendNodeText(dst, n)
}

// AppendNodeText is the cursor-carrying form of the package function.
func (e *NodeEncoder) AppendNodeText(dst []byte, n goddag.Node) []byte {
	content := n.Document().Content()
	switch v := n.(type) {
	case *goddag.Element:
		dst = append(dst, v.Hierarchy().Name()...)
		dst = append(dst, ':')
		dst = append(dst, v.Name()...)
		dst = e.appendRuneSpan(dst, content, v.Span())
		dst = append(dst, ' ')
		return appendClippedQuote(dst, v.Text())
	case goddag.Leaf:
		dst = append(dst, "leaf#"...)
		dst = AppendUint(dst, int64(v.Index()))
		dst = e.appendRuneSpan(dst, content, v.Span())
		dst = append(dst, ' ')
		return appendClippedQuote(dst, v.Text())
	default:
		dst = append(dst, "root:"...)
		dst = append(dst, n.Document().RootTag()...)
		dst = append(dst, ' ')
		return appendClippedQuote(dst, n.Text())
	}
}

// scratchPool recycles the per-call line buffers of the streaming
// writers, so sustained serving performs no per-node allocations.
var scratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// WriteNodesText streams nodes from src as FormatNode lines. A limit
// > 0 stops after limit nodes without pulling further; limit <= 0
// writes everything. Returns the number of nodes written.
func WriteNodesText(w io.Writer, src NodeSource, limit int) (int, error) {
	bp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(bp)
	var e NodeEncoder
	written := 0
	for limit <= 0 || written < limit {
		n, err := src.Next()
		if err != nil {
			return written, err
		}
		if n == nil {
			break
		}
		buf := (*bp)[:0]
		buf = e.AppendNodeText(buf, n)
		buf = append(buf, '\n')
		*bp = buf[:0] // keep any growth for the next node
		if _, err := w.Write(buf); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}
