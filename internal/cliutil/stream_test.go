package cliutil

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/goddag"
	"repro/internal/xpath"
)

// jsonStringCases covers every escaping regime of encoding/json with
// HTML escaping off: plain ASCII, the two escaped printables, every
// control byte, multibyte text, the JSONP separators, and invalid
// UTF-8.
var jsonStringCases = []string{
	"", "plain ascii", `with "quotes" and \backslash\`,
	"tab\there\nnewline\rreturn", "\b\f\x00\x01\x1f\x7f",
	"hwæt wé gár-dena ĝeár-dagum", "多字节文本", "emoji 🙂 mixed",
	"line\u2028sep\u2029para", "<html> & 'unescaped'",
	"invalid \xff utf8 \xc3\x28 tail \xe2\x82", "trailing\xf0",
}

func stdlibJSONString(t *testing.T, s string) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(s); err != nil {
		t.Fatal(err)
	}
	return strings.TrimSuffix(buf.String(), "\n")
}

func TestAppendJSONStringMatchesStdlib(t *testing.T) {
	for _, s := range jsonStringCases {
		got := string(AppendJSONString(nil, s))
		want := stdlibJSONString(t, s)
		if got != want {
			t.Errorf("AppendJSONString(%q):\n  got:  %s\n  want: %s", s, got, want)
		}
	}
}

// streamGridDoc builds one corpus configuration for encoder tests.
func streamGridDoc(t *testing.T, hierarchies int, vocab []string) *goddag.Document {
	t.Helper()
	cfg := corpus.DefaultConfig(120)
	cfg.Hierarchies = hierarchies
	cfg.OverlapDensity = 0.6
	cfg.Vocabulary = vocab
	doc, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// allNodes returns every node of the document (root, elements, leaves).
func allNodes(t *testing.T, doc *goddag.Document) []goddag.Node {
	t.Helper()
	ns, err := xpath.Select(doc, "//node()")
	if err != nil {
		t.Fatal(err)
	}
	return append([]goddag.Node{doc.Root()}, ns...)
}

// TestAppendNodeJSONMatchesEncodeNode pins the streaming JSON encoder
// to the materializing one, byte for byte, across hierarchies and
// vocabularies (including multibyte text where byte and rune spans
// diverge).
func TestAppendNodeJSONMatchesEncodeNode(t *testing.T) {
	vocabs := map[string][]string{"default": nil, "multibyte": corpus.MultibyteVocabulary}
	for vn, vocab := range vocabs {
		for _, h := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/h=%d", vn, h), func(t *testing.T) {
				doc := streamGridDoc(t, h, vocab)
				for _, n := range allNodes(t, doc) {
					var buf bytes.Buffer
					enc := json.NewEncoder(&buf)
					enc.SetEscapeHTML(false)
					if err := enc.Encode(EncodeNode(n)); err != nil {
						t.Fatal(err)
					}
					want := strings.TrimSuffix(buf.String(), "\n")
					got := string(AppendNodeJSON(nil, n))
					if got != want {
						t.Fatalf("node %v:\n  got:  %s\n  want: %s", n, got, want)
					}
				}
			})
		}
	}
}

// TestAppendNodeTextMatchesFormatNode pins the streaming text encoder
// to the historical fmt-based line format.
func TestAppendNodeTextMatchesFormatNode(t *testing.T) {
	vocabs := map[string][]string{"default": nil, "multibyte": corpus.MultibyteVocabulary}
	for vn, vocab := range vocabs {
		t.Run(vn, func(t *testing.T) {
			doc := streamGridDoc(t, 4, vocab)
			content := doc.Content()
			for _, n := range allNodes(t, doc) {
				got := string(AppendNodeText(nil, n))
				// Reference: the original fmt.Sprintf formula.
				var want string
				switch v := n.(type) {
				case *goddag.Element:
					want = fmt.Sprintf("%s:%s%v %q", v.Hierarchy().Name(), v.Name(), content.RuneSpan(v.Span()), clip(v.Text()))
				case goddag.Leaf:
					want = fmt.Sprintf("leaf#%d%v %q", v.Index(), content.RuneSpan(v.Span()), clip(v.Text()))
				default:
					want = fmt.Sprintf("root:%s %q", n.Document().RootTag(), clip(n.Text()))
				}
				if got != want {
					t.Fatalf("node %v:\n  got:  %s\n  want: %s", n, got, want)
				}
				if got != FormatNode(n) {
					t.Fatalf("FormatNode drifted from AppendNodeText: %q vs %q", FormatNode(n), got)
				}
			}
		})
	}
}

func TestAppendClippedQuote(t *testing.T) {
	cases := []string{
		"", "short", strings.Repeat("x", 60), strings.Repeat("x", 61),
		strings.Repeat("日", 57), strings.Repeat("日", 61), strings.Repeat("日", 200),
		"quote\"and\\slash " + strings.Repeat("héllo ", 30),
	}
	for _, s := range cases {
		got := string(appendClippedQuote(nil, s))
		want := strconv.Quote(clip(s))
		if got != want {
			t.Errorf("appendClippedQuote(%d runes):\n  got:  %s\n  want: %s", len([]rune(s)), got, want)
		}
	}
}

// sliceSource adapts a node slice to NodeSource for writer tests.
type sliceSource struct {
	ns []goddag.Node
	i  int
}

func (s *sliceSource) Next() (goddag.Node, error) {
	if s.i >= len(s.ns) {
		return nil, nil
	}
	n := s.ns[s.i]
	s.i++
	return n, nil
}

func (s *sliceSource) Size() int { return len(s.ns) - s.i }

func TestWriteNodesTextMatchesWriteValue(t *testing.T) {
	doc := streamGridDoc(t, 4, corpus.MultibyteVocabulary)
	v, err := xpath.MustCompile("//w").Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 1, 5, 100000} {
		var want, got bytes.Buffer
		WriteValue(&want, v, false, limit)
		n, err := WriteNodesText(&got, &sliceSource{ns: v.Nodes()}, limit)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("limit=%d: streaming text differs from WriteValue", limit)
		}
		wantN := len(v.Nodes())
		if limit > 0 && limit < wantN {
			wantN = limit
		}
		if n != wantN {
			t.Fatalf("limit=%d: wrote %d nodes, want %d", limit, n, wantN)
		}
	}
}

// TestAppendUint pins the fast integer appender to strconv across digit
// counts and pair boundaries.
func TestAppendUint(t *testing.T) {
	cases := []int64{0, 1, 9, 10, 11, 99, 100, 101, 999, 1000, 12345,
		99999, 100000, 285938, 1<<31 - 1, 1e15, 1<<63 - 1}
	for _, v := range cases {
		got := string(AppendUint(nil, v))
		want := strconv.FormatInt(v, 10)
		if got != want {
			t.Errorf("AppendUint(%d) = %q, want %q", v, got, want)
		}
	}
}
