package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestQueryTraceExplain: a /query body with "trace": true gets back the
// request's stage breakdown — explain-analyze for one request. The
// stages are disjoint intervals inside the request, so their sum cannot
// exceed the total (modulo per-stage microsecond truncation), and a
// traced-but-unlimited evaluation installs a counting limiter, so the
// visit count is real.
func TestQueryTraceExplain(t *testing.T) {
	s, _ := newFixture(t, 200, Config{})
	h := s.Handler()

	w := post(t, h, `{"doc":"ms","query":"//w","trace":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	var resp struct {
		Trace *TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v\n%s", err, w.Body.String())
	}
	tr := resp.Trace
	if tr == nil {
		t.Fatalf("no trace in response: %s", w.Body.String())
	}
	if tr.ID == "" {
		t.Error("trace id empty")
	}
	if tr.TotalUS <= 0 {
		t.Errorf("total_us = %d, want > 0", tr.TotalUS)
	}
	if tr.Visited <= 0 {
		t.Errorf("visited = %d, want > 0 (counting limiter should be installed)", tr.Visited)
	}
	known := map[string]bool{
		"decode": true, "lockWait": true, "load": true,
		"plan": true, "eval": true, "encode": true,
	}
	var sum int64
	seen := map[string]bool{}
	for _, st := range tr.Stages {
		if !known[st.Name] {
			t.Errorf("unknown stage %q", st.Name)
		}
		if seen[st.Name] {
			t.Errorf("stage %q repeated; same-name spans must merge", st.Name)
		}
		seen[st.Name] = true
		sum += st.US
	}
	for _, want := range []string{"decode", "encode", "eval"} {
		if !seen[want] {
			t.Errorf("stage %q missing from %v", want, tr.Stages)
		}
	}
	// Each stage truncates to whole microseconds, so allow one µs of
	// slack per stage plus one for the total.
	if slack := int64(len(tr.Stages)) + 1; sum > tr.TotalUS+slack {
		t.Errorf("stages sum to %dµs > total %dµs", sum, tr.TotalUS)
	}

	// Scalar results travel the buffered path; the trace rides the same
	// response field.
	w = post(t, h, `{"doc":"ms","query":"count(//w)","trace":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("scalar query: %d %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Trace == nil {
		t.Fatalf("scalar response lacks trace (err=%v): %s", err, w.Body.String())
	}

	// Without the flag, no trace key — tracing is strictly opt-in.
	w = post(t, h, `{"doc":"ms","query":"//w"}`)
	if strings.Contains(w.Body.String(), `"trace"`) {
		t.Errorf("untraced response carries a trace: %s", w.Body.String())
	}
}

// metricValue extracts the value of the series named name (with its
// full label set, e.g. `cx_http_requests_total{route="query",class="2xx"}`)
// from a Prometheus text exposition. Returns -1 when absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// TestMetricsEndpoint: GET /metrics serves the Prometheus text format
// and the per-route series account the requests that were actually
// made, with coherent histogram invariants.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := newFixture(t, 40, Config{Obs: obs.NewRegistry()})
	h := s.Handler()

	for i := 0; i < 3; i++ {
		if w := post(t, h, `{"doc":"ms","query":"count(//w)"}`); w.Code != http.StatusOK {
			t.Fatalf("query: %d %s", w.Code, w.Body.String())
		}
	}
	post(t, h, `{"doc":"nope","query":"//w"}`) // one 404 on the query route

	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body := w.Body.String()

	if v := metricValue(body, `cx_http_requests_total{route="query",class="2xx"}`); v != 3 {
		t.Errorf(`query 2xx = %v, want 3`, v)
	}
	if v := metricValue(body, `cx_http_requests_total{route="query",class="4xx"}`); v != 1 {
		t.Errorf(`query 4xx = %v, want 1`, v)
	}
	if v := metricValue(body, `cx_http_request_seconds_count{route="query"}`); v != 4 {
		t.Errorf(`query latency count = %v, want 4`, v)
	}
	if v := metricValue(body, "cx_requests_total"); v != 4 {
		t.Errorf("cx_requests_total = %v, want 4", v)
	}
	// The catalog registers into the same registry: the cold load of
	// "ms" must be visible.
	if v := metricValue(body, "cx_catalog_loads_total"); v < 1 {
		t.Errorf("cx_catalog_loads_total = %v, want >= 1", v)
	}
	if v := metricValue(body, "cx_catalog_resident_docs"); v < 1 {
		t.Errorf("cx_catalog_resident_docs = %v, want >= 1", v)
	}

	// Histogram invariants on the wire: cumulative buckets, +Inf == count.
	var prev float64
	var infSeen bool
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `cx_http_request_seconds_bucket{route="query",`) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != 4 {
				t.Errorf("+Inf bucket = %v, want the series count 4", v)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket for the query route")
	}
}

// TestStatsMatchesMetrics: /stats is reimplemented as reads of the same
// registry /metrics exposes, so the two surfaces agree by construction.
func TestStatsMatchesMetrics(t *testing.T) {
	s, _ := newFixture(t, 40, Config{})
	h := s.Handler()
	for i := 0; i < 5; i++ {
		if w := post(t, h, `{"doc":"ms","query":"//w"}`); w.Code != http.StatusOK {
			t.Fatalf("query: %d", w.Code)
		}
	}
	post(t, h, `{"doc":"ms"}`) // 400: missing query

	var st StatsResponse
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	body := get(t, h, "/metrics").Body.String()

	if v := metricValue(body, "cx_requests_total"); v != float64(st.Requests) {
		t.Errorf("requests: stats=%d metrics=%v", st.Requests, v)
	}
	if v := metricValue(body, "cx_errors_total"); v != float64(st.Errors) {
		t.Errorf("errors: stats=%d metrics=%v", st.Errors, v)
	}
	rl, ok := st.Routes["query"]
	if !ok {
		t.Fatalf("stats has no query route: %+v", st.Routes)
	}
	if v := metricValue(body, `cx_http_request_seconds_count{route="query"}`); v != float64(rl.Count) {
		t.Errorf("query route count: stats=%d metrics=%v", rl.Count, v)
	}
	if rl.P50US <= 0 || rl.P99US < rl.P50US {
		t.Errorf("implausible quantiles: %+v", rl)
	}
}

// TestDebugRequestsRing: slow and errored queries land in the bounded
// ring behind GET /debug/requests, most recent first, with the stage
// breakdown when the server traced them.
func TestDebugRequestsRing(t *testing.T) {
	s, _ := newFixture(t, 40, Config{SlowQuery: time.Nanosecond})
	h := s.Handler()

	if w := post(t, h, `{"doc":"ms","query":"//w"}`); w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}
	post(t, h, `{"doc":"nope","query":"//w"}`) // 404, also recorded

	w := get(t, h, "/debug/requests")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/requests: %d", w.Code)
	}
	var recs []RequestRecord
	if err := json.Unmarshal(w.Body.Bytes(), &recs); err != nil {
		t.Fatalf("decode: %v\n%s", err, w.Body.String())
	}
	if len(recs) != 2 {
		t.Fatalf("ring has %d records, want 2: %+v", len(recs), recs)
	}
	// Most recent first: the 404 precedes the slow success.
	if recs[0].Doc != "nope" || recs[0].Status != http.StatusNotFound || recs[0].Error == "" {
		t.Errorf("errored record wrong: %+v", recs[0])
	}
	if recs[1].Doc != "ms" || recs[1].Status != http.StatusOK {
		t.Errorf("slow record wrong: %+v", recs[1])
	}
	if recs[1].Stages == "" || !strings.Contains(recs[1].Stages, "eval=") {
		t.Errorf("slow record lacks a stage breakdown: %+v", recs[1])
	}
	if recs[1].ID == "" {
		t.Errorf("slow record lacks a request id: %+v", recs[1])
	}

	// The ring stays bounded under overflow.
	for i := 0; i < 2*ringSize; i++ {
		post(t, h, fmt.Sprintf(`{"doc":"nope%d","query":"//w"}`, i))
	}
	recs = nil
	if err := json.Unmarshal(get(t, h, "/debug/requests").Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != ringSize {
		t.Errorf("overflowed ring has %d records, want %d", len(recs), ringSize)
	}
	if recs[0].Doc != fmt.Sprintf("nope%d", 2*ringSize-1) {
		t.Errorf("ring not most-recent-first: %+v", recs[0])
	}
}

// TestWarmPathAllocBudget is the absolute ceiling behind CI's
// alloc-guard: a warm //w request through the full instrumented stack —
// metrics middleware, per-route histograms, status counters — must stay
// within the streaming path's 35-allocation budget. TestServeAllocsFlat
// asserts flatness against result size; this asserts the level itself,
// so instrumentation cannot creep allocations in one at a time.
func TestWarmPathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; budget holds without -race")
	}
	const budget = 35.5 // 35 allocations, plus headroom for averaging noise
	s, _ := newFixture(t, 2000, Config{})
	h := s.Handler()
	for _, format := range []string{"json", "text"} {
		body := fmt.Sprintf(`{"doc":"ms","query":"//w","format":%q}`, format)
		for i := 0; i < 5; i++ {
			if w := post(t, h, body); w.Code != http.StatusOK {
				t.Fatalf("warmup: %d %s", w.Code, w.Body.String())
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("query failed: %d", w.Code)
			}
		})
		if allocs > budget {
			t.Errorf("%s: %.1f allocs/request, budget %.1f", format, allocs, budget)
		}
		t.Logf("%s: %.1f allocs/request (budget %.1f)", format, allocs, budget)
	}
}

// TestDebugHandler: the side-listener mux serves pprof, the metrics
// exposition, and the request ring — and is not reachable through the
// serving Handler (profiling stays off the serving port).
func TestDebugHandler(t *testing.T) {
	s, _ := newFixture(t, 40, Config{})
	dh := s.DebugHandler()
	for _, path := range []string{"/debug/pprof/cmdline", "/metrics", "/debug/requests"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		dh.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Errorf("debug %s: %d", path, w.Code)
		}
	}
	if w := get(t, s.Handler(), "/debug/pprof/cmdline"); w.Code == http.StatusOK {
		t.Error("pprof reachable through the serving handler")
	}
}

// TestClassifyRoute pins the path → route mapping the per-route metrics
// depend on.
func TestClassifyRoute(t *testing.T) {
	cases := map[string]int{
		"/query":          routeQuery,
		"/docs":           routeDocs,
		"/docs/ms":        routeDoc,
		"/docs/ms/edit":   routeEdit,
		"/docs/ms/undo":   routeHistory,
		"/docs/ms/redo":   routeHistory,
		"/healthz":        routeHealthz,
		"/stats":          routeStats,
		"/metrics":        routeMetrics,
		"/debug/requests": routeDebug,
		"/favicon.ico":    routeOther,
	}
	for path, want := range cases {
		if got := classifyRoute(path); got != want {
			t.Errorf("classifyRoute(%q) = %s, want %s", path, routeNames[got], routeNames[want])
		}
	}
}
