package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cliutil"
	"repro/internal/corpus"
	"repro/internal/drivers"
	"repro/internal/store"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// e4Queries is the E4 axis catalog: the overlap-aware query set the
// benchmarks measure. The handler tests assert the server's text results
// for each are byte-identical to the cxquery pipeline's output.
var e4Queries = []string{
	"/page",
	"//line",
	"//w",
	"//s/w",
	"//s/descendant::w",
	"//dmg/overlapping::*",
	"//dmg/overlapping::w",
	"//res/following::w",
	"//res/preceding::w",
	"//line/covered::w",
	"//w/ancestor::*",
	"//w | //line",
	"count(//dmg/overlapping::w)",
}

// newFixture writes a corpus directory (one synthetic manuscript as
// .gdag and standoff .xml, plus the Figure 1 fragment as a distributed
// directory) and returns a server over it plus the standoff file path
// for independent CLI-pipeline comparison.
func newFixture(t testing.TB, words int, cfg Config) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	doc, err := corpus.Generate(corpus.DefaultConfig(words))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "ms.gdag"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Encode(f, doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	so, err := drivers.EncodeStandoff(doc, drivers.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	standoffPath := filepath.Join(dir, "standoff.xml")
	if err := os.WriteFile(standoffPath, so, 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "fig1")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, src := range corpus.Fig1Sources() {
		if err := os.WriteFile(filepath.Join(sub, src.Hierarchy+".xml"), src.Data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Share cfg.Obs with the catalog when set, as cxserve does, so tests
	// can observe catalog series through the server's /metrics.
	cat, err := catalog.Open(dir, catalog.Options{Obs: cfg.Obs})
	if err != nil {
		t.Fatal(err)
	}
	return New(cat, cfg), standoffPath
}

func post(t testing.TB, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealthz(t *testing.T) {
	s, _ := newFixture(t, 40, Config{})
	w := get(t, s.Handler(), "/healthz")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
}

func TestDocsAndStats(t *testing.T) {
	s, _ := newFixture(t, 40, Config{})
	h := s.Handler()

	w := get(t, h, "/docs")
	if w.Code != http.StatusOK {
		t.Fatalf("/docs: %d %s", w.Code, w.Body.String())
	}
	var docs []catalog.DocStats
	if err := json.Unmarshal(w.Body.Bytes(), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("/docs listed %d documents, want 3", len(docs))
	}

	// A cold doc reports not resident; ?load=1 loads it and adds counts.
	w = get(t, h, "/docs/ms")
	var dr DocResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Resident || dr.Elements != 0 {
		t.Fatalf("cold /docs/ms: %+v", dr)
	}
	w = get(t, h, "/docs/ms?load=1")
	if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Resident || dr.Elements == 0 || len(dr.Hierarchies) == 0 || dr.Bytes <= 0 {
		t.Fatalf("loaded /docs/ms: %+v", dr)
	}

	w = get(t, h, "/docs/absent")
	if w.Code != http.StatusNotFound {
		t.Fatalf("/docs/absent: %d", w.Code)
	}

	w = get(t, h, "/stats")
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Catalog.Documents != 3 || st.Requests == 0 {
		t.Fatalf("/stats: %+v", st)
	}
}

func TestQueryJSON(t *testing.T) {
	s, standoffPath := newFixture(t, 120, Config{})
	h := s.Handler()

	// Reference: the same document through the CLI loading pipeline.
	ref, err := cliutil.Load("auto", []string{standoffPath})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range e4Queries {
		w := post(t, h, fmt.Sprintf(`{"doc":"standoff","query":%q}`, q))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", q, w.Code, w.Body.String())
		}
		var resp struct {
			Result cliutil.ValueJSON `json:"result"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		v, err := ref.QueryValue(q)
		if err != nil {
			t.Fatal(err)
		}
		want := cliutil.EncodeValue(v, 10000)
		if resp.Result.Count != want.Count || resp.Result.Type != want.Type {
			t.Fatalf("%s: got %d %s nodes, want %d %s", q,
				resp.Result.Count, resp.Result.Type, want.Count, want.Type)
		}
		if len(resp.Result.Nodes) != len(want.Nodes) {
			t.Fatalf("%s: %d encoded nodes, want %d", q, len(resp.Result.Nodes), len(want.Nodes))
		}
		for i := range want.Nodes {
			if resp.Result.Nodes[i] != want.Nodes[i] {
				t.Fatalf("%s node %d: %+v != %+v", q, i, resp.Result.Nodes[i], want.Nodes[i])
			}
		}
	}
}

// TestQueryExplain exercises the explain flag: the JSON response must
// carry the plan for both streamed node-sets and planned scalars, and
// omit it when the flag is off.
func TestQueryExplain(t *testing.T) {
	s, _ := newFixture(t, 120, Config{})
	h := s.Handler()
	cases := []struct {
		query string
		want  string // substring of some plan line
	}{
		{"//w", "scan:"},
		{"//w[@n='5']", "pushdown:"},
		{"count(//w)", "count:"},
		{"not(//nosuch)", "exists"},
		{"//w/overlapping::dmg", "semi-join"},
		{"//w/ancestor::*", "materialize"},
	}
	for _, tc := range cases {
		w := post(t, h, fmt.Sprintf(`{"doc":"ms","query":%q,"explain":true}`, tc.query))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", tc.query, w.Code, w.Body.String())
		}
		var resp QueryResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Plan) == 0 {
			t.Fatalf("%s: no plan in explain response: %s", tc.query, w.Body.String())
		}
		found := false
		for _, line := range resp.Plan {
			if strings.Contains(line, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: plan %v lacks %q", tc.query, resp.Plan, tc.want)
		}
	}
	// Without the flag the plan key is absent.
	w := post(t, h, `{"doc":"ms","query":"//w"}`)
	if strings.Contains(w.Body.String(), `"plan"`) {
		t.Fatalf("plan leaked into non-explain response: %s", w.Body.String())
	}
}

// TestQueryTextMatchesCLI asserts the server's text format is
// byte-identical to the cxquery pipeline (cliutil.Load → compile → eval
// → cliutil.WriteValue) for the whole E4 query set, on both the standoff
// and binary-store source forms.
func TestQueryTextMatchesCLI(t *testing.T) {
	s, standoffPath := newFixture(t, 120, Config{})
	h := s.Handler()
	for _, docID := range []string{"standoff", "ms"} {
		// Load the reference document independently, exactly as cxquery
		// would: the standoff file for "standoff", the .gdag for "ms".
		path := standoffPath
		if docID == "ms" {
			path = filepath.Join(filepath.Dir(standoffPath), "ms.gdag")
		}
		ref, err := cliutil.Load("auto", []string{path})
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range e4Queries {
			q, err := xpath.Compile(qs)
			if err != nil {
				t.Fatal(err)
			}
			v, err := q.Eval(ref.GODDAG())
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			cliutil.WriteValue(&want, v, false, 0)

			w := post(t, h, fmt.Sprintf(`{"doc":%q,"query":%q,"format":"text"}`, docID, qs))
			if w.Code != http.StatusOK {
				t.Fatalf("%s on %s: %d %s", qs, docID, w.Code, w.Body.String())
			}
			if got := w.Body.String(); got != want.String() {
				t.Fatalf("%s on %s: server text differs from CLI output\nserver: %q\ncli:    %q",
					qs, docID, clipStr(got), clipStr(want.String()))
			}
		}
	}
}

func clipStr(s string) string {
	if len(s) > 300 {
		return s[:300] + "..."
	}
	return s
}

func TestQueryFLWOR(t *testing.T) {
	s, standoffPath := newFixture(t, 60, Config{})
	h := s.Handler()
	const fl = `for $d in //dmg return count($d/overlapping::w)`

	ref, err := cliutil.Load("auto", []string{standoffPath})
	if err != nil {
		t.Fatal(err)
	}
	fq, err := xquery.Compile(fl)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := fq.Eval(ref.GODDAG())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	cliutil.WriteFLWOR(&want, vals, false, 0)

	w := post(t, h, fmt.Sprintf(`{"doc":"standoff","flwor":%q,"format":"text"}`, fl))
	if w.Code != http.StatusOK {
		t.Fatalf("flwor: %d %s", w.Code, w.Body.String())
	}
	if w.Body.String() != want.String() {
		t.Fatalf("flwor text mismatch:\nserver: %q\ncli:    %q", w.Body.String(), want.String())
	}

	// JSON form: one result per tuple.
	w = post(t, h, fmt.Sprintf(`{"doc":"standoff","flwor":%q}`, fl))
	var resp struct {
		Results []cliutil.ValueJSON `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(vals) {
		t.Fatalf("flwor json: %d results, want %d", len(resp.Results), len(vals))
	}
}

func TestQueryLimitTruncates(t *testing.T) {
	s, _ := newFixture(t, 120, Config{})
	w := post(t, s.Handler(), `{"doc":"ms","query":"//w","limit":5}`)
	var resp struct {
		Result cliutil.ValueJSON `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Nodes) != 5 || !resp.Result.Truncated || resp.Result.Count <= 5 {
		t.Fatalf("limit: %d nodes, truncated=%v, count=%d",
			len(resp.Result.Nodes), resp.Result.Truncated, resp.Result.Count)
	}
}

// TestLimitClampedToMaxResults asserts a client cannot raise the
// operator's result ceiling, only lower it.
func TestLimitClampedToMaxResults(t *testing.T) {
	s, _ := newFixture(t, 120, Config{MaxResults: 4})
	w := post(t, s.Handler(), `{"doc":"ms","query":"//w","limit":1000000}`)
	var resp struct {
		Result cliutil.ValueJSON `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Nodes) != 4 || !resp.Result.Truncated {
		t.Fatalf("limit clamp: %d nodes, truncated=%v", len(resp.Result.Nodes), resp.Result.Truncated)
	}
}

func TestDeleteEvictsDoc(t *testing.T) {
	s, _ := newFixture(t, 40, Config{})
	h := s.Handler()
	if w := post(t, h, `{"doc":"ms","query":"count(//w)"}`); w.Code != http.StatusOK {
		t.Fatalf("load: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodDelete, "/docs/ms", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"evicted":true`) {
		t.Fatalf("DELETE /docs/ms: %d %s", w.Code, w.Body.String())
	}
	if d, _ := s.cat.Doc("ms"); d.Resident {
		t.Fatal("ms still resident after DELETE")
	}
	// Idempotent second delete reports nothing evicted.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/docs/ms", nil))
	if !strings.Contains(w.Body.String(), `"evicted":false`) {
		t.Fatalf("second DELETE: %s", w.Body.String())
	}
}

func TestQueryTextHonorsLimit(t *testing.T) {
	s, _ := newFixture(t, 120, Config{})
	w := post(t, s.Handler(), `{"doc":"ms","query":"//w","format":"text","limit":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("text limit: %d %s", w.Code, w.Body.String())
	}
	if lines := strings.Count(w.Body.String(), "\n"); lines != 3 {
		t.Fatalf("text limit printed %d lines, want 3", lines)
	}
}

// TestFLWORResponseCap checks the node budget applies across FLWOR
// tuples, not per tuple: one-node-per-tuple queries cannot bypass
// MaxResults.
func TestFLWORResponseCap(t *testing.T) {
	s, _ := newFixture(t, 120, Config{MaxResults: 5})
	w := post(t, s.Handler(), `{"doc":"ms","flwor":"for $w in //w return $w"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("flwor cap: %d %s", w.Code, w.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range resp.Results {
		total += len(r.Nodes)
	}
	if total > 5 || !resp.Truncated {
		t.Fatalf("flwor cap: %d nodes across %d tuples, truncated=%v",
			total, len(resp.Results), resp.Truncated)
	}
}

func TestQueryErrors(t *testing.T) {
	s, _ := newFixture(t, 40, Config{})
	h := s.Handler()
	cases := []struct {
		body string
		code int
	}{
		{`{`, http.StatusBadRequest},
		{`{"query":"//w"}`, http.StatusBadRequest},                             // missing doc
		{`{"doc":"ms"}`, http.StatusBadRequest},                                // no query
		{`{"doc":"ms","query":"//w","flwor":"for $x"}`, http.StatusBadRequest}, // both
		{`{"doc":"absent","query":"//w"}`, http.StatusNotFound},
		{`{"doc":"ms","query":"//w["}`, http.StatusBadRequest}, // parse error
		{`{"doc":"ms","query":"//w","format":"xml"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := post(t, h, c.body); w.Code != c.code {
			t.Errorf("%s: code %d, want %d (%s)", c.body, w.Code, c.code, w.Body.String())
		}
	}
	if w := get(t, h, "/query"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: %d", w.Code)
	}
}

func TestQueryCacheSharedAndBounded(t *testing.T) {
	s, _ := newFixture(t, 40, Config{QueryCache: 2})
	h := s.Handler()
	for _, q := range []string{"//w", "//line", "//w", "//s", "//w"} {
		if w := post(t, h, fmt.Sprintf(`{"doc":"ms","query":%q}`, q)); w.Code != http.StatusOK {
			t.Fatalf("%s: %d", q, w.Code)
		}
	}
	cs := s.cache.stats()
	if cs.Size > 2 {
		t.Fatalf("cache size %d exceeds cap 2", cs.Size)
	}
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("cache stats: %+v", cs)
	}
}

// TestConcurrentMixedLoad fires mixed queries at mixed documents from
// many goroutines through the full handler stack. Run with -race in CI:
// it exercises the catalog singleflight, the shared compiled-query
// cache, and concurrent Eval on shared documents at once.
func TestConcurrentMixedLoad(t *testing.T) {
	s, _ := newFixture(t, 150, Config{QueryCache: 4})
	h := s.Handler()
	docs := []string{"ms", "standoff", "fig1"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := e4Queries[(g*5+i)%len(e4Queries)]
				d := docs[(g+i)%len(docs)]
				w := post(t, h, fmt.Sprintf(`{"doc":%q,"query":%q,"format":"count"}`, d, q))
				if w.Code != http.StatusOK {
					t.Errorf("%s on %s: %d %s", q, d, w.Code, w.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.cat.Stats()
	if st.Loads != 3 {
		t.Fatalf("catalog loads = %d, want 3 (singleflight under concurrency)", st.Loads)
	}
}
