// Robustness middleware: a panicking handler must not kill the process
// or silently drop the connection, and a traffic spike must not queue
// without bound until every request times out. Both wrappers sit outside
// the route mux (see Handler) so they cover every endpoint uniformly.

package server

import (
	"encoding/json"
	"net/http"
	"runtime/debug"
)

// statusWriter records whether the response has been started (so the
// panic recovery middleware knows whether a 500 can still be written or
// the handler died mid-body) and the status code it started with (so
// the instrument middleware can classify the outcome). One statusWriter
// serves both wrappers: instrument allocates it, recoverPanics reuses
// it via type assertion.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
	code  int // first WriteHeader argument; 0 means an implicit 200
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
	}
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

// recoverPanics converts a handler panic into a structured log line, a
// JSON 500 (when the response has not started), and a counter bump —
// instead of net/http's stack dump plus an aborted connection.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response deliberately, not a failure.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, ok := w.(*statusWriter)
		if !ok {
			// Instrument usually wraps first and owns the statusWriter;
			// this covers direct use (tests, bare recoverPanics).
			sw = &statusWriter{ResponseWriter: w}
		}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Inc()
			s.errors.Inc()
			s.logger.Error("panic serving request",
				"method", r.Method, "path", r.URL.Path,
				"panic", rec, "stack", string(debug.Stack()))
			if !sw.wrote {
				sw.Header().Set("Content-Type", "application/json")
				sw.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(sw).Encode(map[string]string{"error": "internal error"})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// gate admits at most Config.MaxInflight concurrent requests; the rest
// are shed immediately with 503 + Retry-After rather than queued, so an
// overloaded server keeps bounded memory and latency and clients learn
// to back off. The observability endpoints bypass the gate: an operator
// diagnosing the overload needs exactly those endpoints to respond.
func (s *Server) gate(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/stats", "/metrics", "/debug/requests":
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			s.shed.Inc()
			s.errors.Inc()
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "server overloaded; retry later"})
		}
	})
}
