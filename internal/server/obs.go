// Observability surface: the metrics registry wiring, the instrument
// middleware (per-route latency histograms, status-class counters, the
// in-flight gauge), the bounded ring of recent slow/errored requests
// behind GET /debug/requests, and the pprof side mux. The hard
// constraint is the warm streaming path's flat allocation budget:
// metric handles are pre-resolved into arrays indexed by a route enum
// (no map lookups, no label formatting per request), the one
// statusWriter the middleware allocates is reused by the panic-recovery
// wrapper, and tracing costs a nil check when off.

package server

import (
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/xpath"
)

// Route enum: every endpoint the middleware distinguishes in metrics.
const (
	routeQuery = iota
	routeDocs
	routeDoc
	routeEdit
	routeHistory
	routeHealthz
	routeStats
	routeMetrics
	routeDebug
	routeOther
	nRoutes
)

var routeNames = [nRoutes]string{
	"query", "docs", "doc", "edit", "history",
	"healthz", "stats", "metrics", "debug", "other",
}

// Status classes 2xx..5xx; 1xx never happens here, 499 counts as 4xx.
const nClasses = 4

var classNames = [nClasses]string{"2xx", "3xx", "4xx", "5xx"}

// classifyRoute maps a request path to its route index without
// allocating.
func classifyRoute(path string) int {
	switch path {
	case "/query":
		return routeQuery
	case "/docs":
		return routeDocs
	case "/healthz":
		return routeHealthz
	case "/stats":
		return routeStats
	case "/metrics":
		return routeMetrics
	}
	if strings.HasPrefix(path, "/docs/") {
		switch {
		case strings.HasSuffix(path, "/edit"):
			return routeEdit
		case strings.HasSuffix(path, "/undo"), strings.HasSuffix(path, "/redo"):
			return routeHistory
		}
		return routeDoc
	}
	if strings.HasPrefix(path, "/debug/") {
		return routeDebug
	}
	return routeOther
}

// serverMetrics holds the server's pre-resolved metric handles.
type serverMetrics struct {
	reg      *obs.Registry
	inflight *obs.Gauge
	latency  [nRoutes]*obs.Histogram
	status   [nRoutes][nClasses]*obs.Counter
}

// newServerMetrics registers the HTTP-layer metrics plus func-backed
// views of the values other subsystems already own — the compiled-query
// cache and the xpath engine counters — so /metrics and /stats read the
// same source of truth and cannot drift.
func (s *Server) newServerMetrics(reg *obs.Registry) serverMetrics {
	m := serverMetrics{reg: reg}
	m.inflight = reg.Gauge("cx_http_inflight", "Requests currently being served.", "")
	for rt := 0; rt < nRoutes; rt++ {
		lbl := `route="` + routeNames[rt] + `"`
		m.latency[rt] = reg.Histogram("cx_http_request_seconds", "Request latency, by route.", lbl, nil)
		for cl := 0; cl < nClasses; cl++ {
			m.status[rt][cl] = reg.Counter("cx_http_requests_total",
				"Requests served, by route and status class.", lbl+`,class="`+classNames[cl]+`"`)
		}
	}
	reg.CounterFunc("cx_query_cache_hits_total", "Compiled-query cache hits.", "", func() float64 {
		return float64(s.cache.stats().Hits)
	})
	reg.CounterFunc("cx_query_cache_misses_total", "Compiled-query cache misses.", "", func() float64 {
		return float64(s.cache.stats().Misses)
	})
	reg.GaugeFunc("cx_query_cache_size", "Compiled queries resident in the cache.", "", func() float64 {
		return float64(s.cache.stats().Size)
	})
	reg.CounterFunc("cx_plan_cache_hits_total", "Query-plan cache hits in the xpath engine.", "", func() float64 {
		return float64(xpath.Counters().PlanCacheHits)
	})
	reg.CounterFunc("cx_plan_cache_misses_total", "Query-plan cache misses in the xpath engine.", "", func() float64 {
		return float64(xpath.Counters().PlanCacheMisses)
	})
	reg.CounterFunc("cx_nodes_visited_total", "Nodes visited by limited or traced evaluations.", "", func() float64 {
		return float64(xpath.Counters().NodesVisited)
	})
	for kind := range xpath.Counters().PlansByKind {
		kind := kind
		reg.CounterFunc("cx_plans_total", "Query executions, by chosen plan shape.", `kind="`+kind+`"`, func() float64 {
			return float64(xpath.Counters().PlansByKind[kind])
		})
	}
	return m
}

// instrument is the outermost middleware: it owns the per-request
// statusWriter (recoverPanics reuses it, so the pair costs one
// allocation, as recoverPanics alone did before), the in-flight gauge,
// and the per-route latency and status-class accounting.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := classifyRoute(r.URL.Path)
		start := time.Now()
		s.met.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		s.met.inflight.Add(-1)
		s.met.latency[rt].Observe(time.Since(start))
		code := sw.code
		if code == 0 {
			code = http.StatusOK // body written (or nothing) without WriteHeader
		}
		if cl := code/100 - 2; cl >= 0 && cl < nClasses {
			s.met.status[rt][cl].Inc()
		}
	})
}

// Registry exposes the server's metrics registry — the handle cxserve
// mounts on the debug listener.
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// DebugHandler returns the diagnostics mux for a side listener
// (cxserve's -debug-addr): pprof, the metrics exposition, and the
// recent-request ring. Deliberately not part of Handler(): profiling
// endpoints do not belong on the serving port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", s.met.reg.Handler())
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	return mux
}

// RequestRecord is one entry of the GET /debug/requests ring: a query
// request that ended slow or errored, with its stage breakdown when the
// request was traced.
type RequestRecord struct {
	ID        string `json:"id,omitempty"`
	Time      string `json:"time"` // RFC3339, recorded at completion
	Doc       string `json:"doc"`
	Query     string `json:"query"`
	Status    int    `json:"status"`
	ElapsedUS int64  `json:"elapsed_us"`
	Stages    string `json:"stages,omitempty"` // compact breakdown, e.g. "eval=340µs visited=2000"
	Error     string `json:"error,omitempty"`
}

// ringSize bounds the recent-request ring. Small on purpose: the ring
// answers "what just went wrong", not "what happened today".
const ringSize = 64

// requestRing is the bounded buffer behind /debug/requests. Writes are
// rare (slow or errored requests only), so one mutex is plenty.
type requestRing struct {
	mu   sync.Mutex
	buf  [ringSize]RequestRecord
	next int
	n    int
}

func (rr *requestRing) add(rec RequestRecord) {
	rr.mu.Lock()
	rr.buf[rr.next] = rec
	rr.next = (rr.next + 1) % ringSize
	if rr.n < ringSize {
		rr.n++
	}
	rr.mu.Unlock()
}

// recent returns the recorded requests, most recent first.
func (rr *requestRing) recent() []RequestRecord {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	out := make([]RequestRecord, 0, rr.n)
	for i := 1; i <= rr.n; i++ {
		out = append(out, rr.buf[(rr.next-i+ringSize)%ringSize])
	}
	return out
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.ok(w, s.ring.recent())
}
