// Package server exposes a catalog of concurrent XML documents as an
// HTTP query service — the serving layer that turns the framework's
// engine (GODDAG + Extended XPath + FLWOR) into a system. It builds
// directly on the concurrency contract of package goddag: documents are
// read-only once loaded, so any number of requests evaluate against the
// same document in parallel, and compiled queries are stateless between
// evaluations, so one compiled form is shared by all requests.
//
// Endpoints:
//
//	POST   /query    evaluate an Extended XPath or FLWOR query
//	GET    /docs     list catalogued documents with per-document stats
//	GET    /docs/ID  one document's stats (?load=1 forces a load and adds
//	                 document structure counts)
//	DELETE /docs/ID  evict the document (or clear a cached load failure,
//	                 so a fixed source can reload without a restart)
//	GET    /healthz  liveness probe
//	GET    /stats    catalog + server counters
//
// POST /query takes a JSON body:
//
//	{"doc": "ms", "query": "//dmg/overlapping::w", "limit": 100}
//	{"doc": "ms", "flwor": "for $w in //w return $w", "format": "text"}
//
// and responds with the result in the requested format: "json" (default;
// cliutil.ValueJSON — hierarchy, tag, byte and rune span, text per node),
// "text" (byte-identical to the cxquery CLI output for the same document
// and query — both render through internal/cliutil), or "count". The
// node cap (request "limit", else Config.MaxResults) bounds encoded
// nodes in every format except "count": JSON responses flag truncation,
// text responses simply stop at the cap, so text output matches the
// (uncapped) CLI exactly for results within the cap.
//
// Compiled queries are cached in an LRU shared across requests and
// documents, so the hot-path cost of a repeated query is evaluation
// alone. Request bodies are size-limited and evaluation responses are
// bounded by an optional timeout (Config); Serve installs graceful
// shutdown around the listener.
package server

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// Config tunes the service. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// QueryCache is the compiled-query LRU capacity (default 256).
	QueryCache int
	// MaxBody bounds the POST /query body in bytes (default 1 MiB).
	MaxBody int64
	// MaxResults caps encoded result nodes per response when the request
	// does not set its own limit (default 10000; <0 means unlimited).
	MaxResults int
	// Timeout bounds the total handling time of a /query request; when it
	// expires the client gets 503 (default 0: no timeout).
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueryCache <= 0 {
		c.QueryCache = 256
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxResults == 0 {
		c.MaxResults = 10000
	}
	return c
}

// Server is the HTTP query service over one catalog.
type Server struct {
	cat   *catalog.Catalog
	cfg   Config
	cache *queryCache

	requests atomic.Uint64
	errors   atomic.Uint64
}

// New creates a server over the catalog.
func New(cat *catalog.Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{cat: cat, cfg: cfg, cache: newQueryCache(cfg.QueryCache)}
}

// Handler returns the service's HTTP handler, including the request
// timeout when configured.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/docs", s.handleDocs)
	mux.HandleFunc("/docs/", s.handleDoc)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	if s.cfg.Timeout > 0 {
		return http.TimeoutHandler(mux, s.cfg.Timeout, `{"error":"request timed out"}`)
	}
	return mux
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	Doc    string `json:"doc"`
	Query  string `json:"query,omitempty"`
	FLWOR  string `json:"flwor,omitempty"`
	Limit  int    `json:"limit,omitempty"`  // cap on encoded nodes; 0 = server default
	Format string `json:"format,omitempty"` // "json" (default), "text", "count"
}

// QueryResponse is the POST /query JSON response.
type QueryResponse struct {
	Doc       string              `json:"doc"`
	Query     string              `json:"query"`
	Result    *cliutil.ValueJSON  `json:"result,omitempty"`    // XPath
	Results   []cliutil.ValueJSON `json:"results,omitempty"`   // FLWOR, one per tuple
	Truncated bool                `json:"truncated,omitempty"` // FLWOR: the node cap cut tuples short
	ElapsedUS int64               `json:"elapsed_us"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Doc == "" {
		s.fail(w, http.StatusBadRequest, "missing doc id")
		return
	}
	if (req.Query == "") == (req.FLWOR == "") {
		s.fail(w, http.StatusBadRequest, "exactly one of query or flwor is required")
		return
	}
	switch req.Format {
	case "", "json", "text", "count":
	default:
		s.fail(w, http.StatusBadRequest, "unknown format %q (json, text, count)", req.Format)
		return
	}
	doc, err := s.cat.Get(req.Doc)
	if err != nil {
		var nf *catalog.ErrNotFound
		if errors.As(err, &nf) {
			s.fail(w, http.StatusNotFound, "%v", err)
		} else {
			s.fail(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	// The request limit can only tighten the operator's cap, never raise
	// it: MaxResults stays a hard ceiling on encoded nodes per response.
	limit := s.cfg.MaxResults
	if req.Limit > 0 && (limit <= 0 || req.Limit < limit) {
		limit = req.Limit
	}

	start := time.Now()
	if req.FLWOR != "" {
		s.serveFLWOR(w, doc, req, limit, start)
		return
	}
	q, err := s.cache.xpath(req.Query)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := q.Eval(doc.GODDAG())
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	elapsed := time.Since(start)
	switch req.Format {
	case "", "json":
		enc := cliutil.EncodeValue(v, limit)
		s.ok(w, QueryResponse{
			Doc: req.Doc, Query: req.Query, Result: &enc,
			ElapsedUS: elapsed.Microseconds(),
		})
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cliutil.WriteValue(w, v, false, limit)
	case "count":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cliutil.WriteValue(w, v, true, 0)
	}
}

func (s *Server) serveFLWOR(w http.ResponseWriter, doc *core.Document, req QueryRequest, limit int, start time.Time) {
	q, err := s.cache.flwor(req.FLWOR)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	vals, err := q.Eval(doc.GODDAG())
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	elapsed := time.Since(start)
	switch req.Format {
	case "", "json":
		// The node cap is a per-response budget: tuples are encoded until
		// their cumulative nodes/attrs exhaust it, then the tuple list is
		// cut short and the response marked truncated — a FLWOR over a
		// large document cannot bypass MaxResults by returning one node
		// per tuple.
		out := make([]cliutil.ValueJSON, 0, len(vals))
		remaining := limit
		truncated := false
		for _, v := range vals {
			if limit > 0 && remaining <= 0 {
				truncated = true
				break
			}
			enc := cliutil.EncodeValue(v, remaining)
			truncated = truncated || enc.Truncated
			if limit > 0 {
				switch enc.Type {
				case "node-set":
					remaining -= len(enc.Nodes)
				case "attribute-set":
					remaining -= len(enc.Attrs)
				default:
					remaining-- // scalars count one line, as in the text format
				}
			}
			out = append(out, enc)
		}
		s.ok(w, QueryResponse{
			Doc: req.Doc, Query: req.FLWOR, Results: out, Truncated: truncated,
			ElapsedUS: elapsed.Microseconds(),
		})
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cliutil.WriteFLWOR(w, vals, false, limit)
	case "count":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cliutil.WriteFLWOR(w, vals, true, 0)
	}
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.ok(w, s.cat.Stats().Docs)
}

// DocResponse is the GET /docs/{id} response: catalog stats plus, when
// the document is resident (or ?load=1 forces it in), structure counts.
type DocResponse struct {
	catalog.DocStats
	Hierarchies []string `json:"hierarchies,omitempty"`
	Elements    int      `json:"elements,omitempty"`
	Leaves      int      `json:"leaves,omitempty"`
	ContentLen  int      `json:"contentLen,omitempty"`
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		s.fail(w, http.StatusMethodNotAllowed, "GET or DELETE only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/docs/")
	if id == "" || strings.Contains(id, "/") {
		s.fail(w, http.StatusNotFound, "bad document id %q", id)
		return
	}
	ds, ok := s.cat.Doc(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no document %q", id)
		return
	}
	if r.Method == http.MethodDelete {
		// Drop the resident document or clear a cached load failure —
		// the operator's lever for reloading a fixed source without a
		// process restart.
		s.ok(w, map[string]bool{"evicted": s.cat.Evict(id)})
		return
	}
	resp := DocResponse{DocStats: ds}
	if r.URL.Query().Get("load") != "" && !ds.Resident {
		if _, err := s.cat.Get(id); err != nil {
			s.fail(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.DocStats, _ = s.cat.Doc(id)
	}
	if resp.Resident {
		if doc, err := s.cat.Get(id); err == nil {
			g := doc.GODDAG()
			st := g.Stats()
			resp.Hierarchies = g.HierarchyNames()
			resp.Elements = st.Elements
			resp.Leaves = st.Leaves
			resp.ContentLen = st.ContentLen
		}
	}
	s.ok(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.ok(w, map[string]string{"status": "ok"})
}

// StatsResponse is the GET /stats response.
type StatsResponse struct {
	Catalog  catalog.Stats `json:"catalog"`
	Requests uint64        `json:"requests"`
	Errors   uint64        `json:"errors"`
	Queries  CacheStats    `json:"queryCache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.ok(w, StatsResponse{
		Catalog:  s.cat.Stats(),
		Requests: s.requests.Load(),
		Errors:   s.errors.Load(),
		Queries:  s.cache.stats(),
	})
}

func (s *Server) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Too late for a status change; the connection likely broke.
		return
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// queryCache is an LRU of compiled queries keyed by source text, shared
// across all requests: compiled *xpath.Query and *xquery.Query values
// keep no evaluation state, so concurrent evaluations share one compiled
// form. Compile errors are not cached (they are cheap to reproduce and
// rare on hot paths).
type queryCache struct {
	mu     sync.Mutex
	cap    int
	xp     map[string]*list.Element // of *cacheNode
	order  *list.List               // most recently used at the front
	hits   uint64
	misses uint64
}

type cacheNode struct {
	key   string
	query any // *xpath.Query or *xquery.Query, per the key prefix
}

// CacheStats reports compiled-query cache behaviour.
type CacheStats struct {
	Size   int    `json:"size"`
	Cap    int    `json:"cap"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{cap: capacity, xp: make(map[string]*list.Element), order: list.New()}
}

func (qc *queryCache) xpath(src string) (*xpath.Query, error) {
	q, err := qc.lookup("x\x00"+src, func() (any, error) { return xpath.Compile(src) })
	if err != nil {
		return nil, err
	}
	return q.(*xpath.Query), nil
}

func (qc *queryCache) flwor(src string) (*xquery.Query, error) {
	q, err := qc.lookup("f\x00"+src, func() (any, error) { return xquery.Compile(src) })
	if err != nil {
		return nil, err
	}
	return q.(*xquery.Query), nil
}

// lookup returns the cached compiled form for key, compiling (outside
// the lock) and inserting on a miss. If a concurrent request compiled
// the same key first, its entry is kept and ours discarded.
func (qc *queryCache) lookup(key string, compile func() (any, error)) (any, error) {
	qc.mu.Lock()
	if el, ok := qc.xp[key]; ok {
		qc.hits++
		qc.order.MoveToFront(el)
		q := el.Value.(*cacheNode).query
		qc.mu.Unlock()
		return q, nil
	}
	qc.misses++
	qc.mu.Unlock()

	q, err := compile()
	if err != nil {
		return nil, err
	}
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if _, ok := qc.xp[key]; !ok {
		qc.xp[key] = qc.order.PushFront(&cacheNode{key: key, query: q})
		for len(qc.xp) > qc.cap {
			old := qc.order.Back()
			qc.order.Remove(old)
			delete(qc.xp, old.Value.(*cacheNode).key)
		}
	}
	return q, nil
}

func (qc *queryCache) stats() CacheStats {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return CacheStats{Size: len(qc.xp), Cap: qc.cap, Hits: qc.hits, Misses: qc.misses}
}
