// Package server exposes a catalog of concurrent XML documents as an
// HTTP query *and editing* service — the serving layer that turns the
// framework's engine (GODDAG + Extended XPath + FLWOR + the xTagger
// editing model) into a system. Reads run under each document's read
// lock (catalog.View): any number of requests evaluate against the same
// document in parallel, and compiled queries are stateless between
// evaluations, so one compiled form is shared by all requests. Writes
// run under the write lock (catalog.Update): each edit request is one
// editor transaction — prevalidated per operation, vetoed atomically —
// whose commit repairs the document's indexes in place and persists the
// document through the store's atomic save, so a query racing an edit
// sees either the old or the new state, never a torn one.
//
// Endpoints:
//
//	POST   /query         evaluate an Extended XPath or FLWOR query
//	GET    /docs          list catalogued documents with per-document stats
//	GET    /docs/ID       one document's stats (?load=1 forces a load and
//	                      adds document structure counts)
//	DELETE /docs/ID       evict the document (or clear a cached load
//	                      failure, so a fixed source can reload without a
//	                      restart); refused for unsaved edits
//	POST   /docs/ID/edit  apply a JSON op batch as one transaction
//	POST   /docs/ID/undo  revert the most recent committed transaction
//	POST   /docs/ID/redo  re-apply the most recently undone transaction
//	GET    /healthz       liveness probe
//	GET    /stats         catalog + server counters, per-route latency
//	                      quantiles
//	GET    /metrics       Prometheus text exposition of every metric
//	GET    /debug/requests recent slow/errored queries (bounded ring)
//
// POST /docs/{id}/edit takes a JSON body with one op batch:
//
//	{"ops": [
//	  {"op":"insert-markup","hierarchy":"words","tag":"w","start":0,"end":4,
//	   "attrs":{"lemma":"swa"}},
//	  {"op":"remove-markup","hierarchy":"words","index":3},
//	  {"op":"set-attr","hierarchy":"words","index":0,"name":"kind","value":"noun"},
//	  {"op":"remove-attr","hierarchy":"words","index":0,"name":"kind"}
//	]}
//
// Spans are byte offsets into the document content (the GODDAG's native
// coordinates); elements are addressed by hierarchy plus document-order
// index *at the time the op applies* (earlier ops in the batch shift
// later indices). The batch is one editor transaction: every op is
// prevalidated against the mid-batch state, and the first failure vetoes
// the whole batch — the response is then a 422 with the failing op's
// index and, when prevalidation raised it, the structured violation.
// Committed batches persist before the response is sent; undo/redo also
// persist. Config.ReadOnly disables all three write endpoints with 403.
//
// POST /query takes a JSON body:
//
//	{"doc": "ms", "query": "//dmg/overlapping::w", "limit": 100}
//	{"doc": "ms", "flwor": "for $w in //w return $w", "format": "text"}
//
// and responds with the result in the requested format: "json" (default;
// cliutil.ValueJSON — hierarchy, tag, byte and rune span, text per node),
// "text" (byte-identical to the cxquery CLI output for the same document
// and query — both render through internal/cliutil), or "count". The
// node cap (request "limit", else Config.MaxResults) bounds encoded
// nodes in every format except "count": JSON responses flag truncation,
// text responses simply stop at the cap, so text output matches the
// (uncapped) CLI exactly for results within the cap.
//
// Compiled queries are cached in an LRU shared across requests and
// documents, so the hot-path cost of a repeated query is evaluation
// alone. Request bodies are size-limited; Serve installs graceful
// shutdown around the listener.
//
// # Request lifecycles
//
// Every request carries a real end-to-end deadline, not a response
// timer: the handler derives a context from the connection's
// (r.Context()) plus the configured Config.Timeout — tightened, never
// loosened, by a per-request "timeoutMS" field in the /query body — and
// threads it through the whole pipeline. Lock acquisition and cold
// document loads in the catalog give up when it fires (without
// aborting the shared load for other waiters), and the evaluator polls
// it at amortized checkpoints, so the goroutine serving an expired or
// disconnected request unwinds promptly instead of finishing work
// nobody will read. Config.MaxVisited adds a per-evaluation node
// budget on top. The failure modes are distinguishable in the
// response: 504 for a deadline that expired server-side, 499 (nginx's
// "client closed request") when the client went away first, 413 when
// the node budget was exhausted. Evaluations slower than
// Config.SlowQuery are logged and counted; /stats reports cancelled,
// timed-out, budget-exceeded, and slow-query totals.
//
// # Observability
//
// Every counter the server keeps lives in an obs.Registry (Config.Obs,
// or a private one): per-route latency histograms and status-class
// counters from the instrument middleware, the lifecycle counters
// above, and func-backed views of the compiled-query cache and the
// xpath engine's plan/visit counters. GET /metrics exposes the registry
// in Prometheus text format, and /stats is reimplemented as reads of
// the same registry — the two surfaces agree by construction. A /query
// body with "trace": true gets its response annotated with the
// request's stage breakdown (decode, lock wait, cold load, plan, eval,
// encode) plus the node visit count — explain-analyze for one request —
// and the same breakdown accompanies each slow-query log line and each
// /debug/requests ring entry. Logs go through Config.Logger
// (log/slog). All of it holds the streaming path's flat allocation
// budget: metric handles are pre-resolved per route, and an untraced
// request carries a nil *Trace whose every method is a no-op.
package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/editor"
	"repro/internal/goddag"
	"repro/internal/obs"
	"repro/internal/validate"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// Config tunes the service. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// QueryCache is the compiled-query LRU capacity (default 256).
	QueryCache int
	// MaxBody bounds the POST /query body in bytes (default 1 MiB).
	MaxBody int64
	// MaxResults caps encoded result nodes per response when the request
	// does not set its own limit (default 10000; <0 means unlimited).
	MaxResults int
	// Timeout is the default end-to-end deadline of a request: lock
	// waits, cold loads, evaluation, and encoding all stop when it
	// expires and the client gets 504 (default 0: no deadline). A /query
	// request may tighten it with "timeoutMS", never loosen it.
	Timeout time.Duration
	// MaxVisited bounds the nodes one query evaluation may visit; an
	// evaluation that exhausts it gets 413 (default 0: unlimited).
	MaxVisited int
	// SlowQuery logs and counts query evaluations slower than this
	// (default 0: disabled).
	SlowQuery time.Duration
	// ReadOnly disables the edit, undo, and redo endpoints (403).
	ReadOnly bool
	// MaxOps bounds the operations accepted in one edit batch
	// (default 1000; <0 means unlimited).
	MaxOps int
	// MaxInflight caps concurrently served requests; excess load is
	// shed with 503 + Retry-After instead of queuing without bound
	// (default 256; <0 means unlimited). /healthz, /stats, /metrics and
	// /debug/requests bypass the gate so operators can observe an
	// overloaded server.
	MaxInflight int
	// Obs is the metrics registry the server records into — share one
	// with catalog.Options.Obs so GET /metrics covers both layers. Nil
	// creates a private registry: the counters behind /stats and
	// /metrics always exist.
	Obs *obs.Registry
	// Logger receives the server's structured log lines (slow queries,
	// recovered panics). Nil means slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueryCache <= 0 {
		c.QueryCache = 256
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxResults == 0 {
		c.MaxResults = 10000
	}
	if c.MaxOps == 0 {
		c.MaxOps = 1000
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	return c
}

// Server is the HTTP query service over one catalog.
type Server struct {
	cat    *catalog.Catalog
	cfg    Config
	cache  *queryCache
	logger *slog.Logger

	// inflight is the admission semaphore behind Config.MaxInflight;
	// nil when unlimited.
	inflight chan struct{}

	// met holds the pre-resolved metric handles; ring the recent
	// slow/errored requests behind /debug/requests (see obs.go). The
	// counters below live in the same registry, so /stats and /metrics
	// read one source of truth.
	met    serverMetrics
	ring   requestRing
	reqSeq atomic.Uint64 // request-id sequence for traced requests

	requests *obs.Counter
	errors   *obs.Counter
	panics   *obs.Counter // handler panics recovered by the middleware
	shed     *obs.Counter // requests rejected by the overload gate

	// Lifecycle counters (see the package comment).
	cancelled      *obs.Counter // client went away before the response
	timedOut       *obs.Counter // server-side deadline expired
	budgetExceeded *obs.Counter // evaluation node budget exhausted
	slowQueries    *obs.Counter // evaluations slower than Config.SlowQuery
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// closed the connection before the server finished the response. Used
// for accounting consistency — the client never sees it.
const statusClientClosedRequest = 499

// New creates a server over the catalog.
func New(cat *catalog.Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cat: cat, cfg: cfg, cache: newQueryCache(cfg.QueryCache)}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = slog.Default()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.met = s.newServerMetrics(reg)
	s.requests = reg.Counter("cx_requests_total", "Handler invocations (excludes shed requests).", "")
	s.errors = reg.Counter("cx_errors_total", "Requests answered with an error response.", "")
	s.panics = reg.Counter("cx_panics_total", "Handler panics recovered by the middleware.", "")
	s.shed = reg.Counter("cx_shed_total", "Requests rejected by the overload gate.", "")
	s.cancelled = reg.Counter("cx_requests_cancelled_total", "Requests whose client disconnected first.", "")
	s.timedOut = reg.Counter("cx_requests_timed_out_total", "Requests that hit the server-side deadline.", "")
	s.budgetExceeded = reg.Counter("cx_budget_exceeded_total", "Evaluations that exhausted the node budget.", "")
	s.slowQueries = reg.Counter("cx_slow_queries_total", "Evaluations slower than the slow-query threshold.", "")
	return s
}

// Handler returns the service's HTTP handler: the route mux wrapped in
// the overload gate and — outermost — panic recovery. Request deadlines
// are not a wrapper: each handler derives its own context (Config.
// Timeout tightened by the request) and the pipeline underneath
// cooperates with it, so an expired request actually stops computing
// instead of racing a response timer that buffers its work away.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/docs", s.handleDocs)
	mux.HandleFunc("/docs/", s.handleDoc)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.met.reg.Handler())
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	return s.instrument(s.recoverPanics(s.gate(mux)))
}

// requestContext derives the request's working context: the connection
// context (cancelled when the client disconnects) bounded by the
// server's default deadline, tightened — never loosened — by an
// optional client-requested timeout in milliseconds.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeoutMS > 0 {
		if want := time.Duration(timeoutMS) * time.Millisecond; d <= 0 || want < d {
			d = want
		}
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// lifecycleStatus classifies a lifecycle failure: the HTTP status for a
// deadline/cancellation/budget error, or 0 for everything else. Counts
// the matching /stats counter as a side effect.
func (s *Server) lifecycleStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timedOut.Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.cancelled.Inc()
		return statusClientClosedRequest
	case errors.Is(err, xpath.ErrBudgetExceeded):
		s.budgetExceeded.Inc()
		return http.StatusRequestEntityTooLarge
	}
	return 0
}

// observeQuery finishes one query request's accounting: the slow-query
// counter and structured log line (with the stage breakdown when the
// request was traced), and the /debug/requests ring for anything slow
// or errored. On the warm success path it costs two comparisons.
func (s *Server) observeQuery(req QueryRequest, tr *obs.Trace, status int, errText string, elapsed time.Duration) {
	slow := s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery
	if !slow && status < 400 {
		return
	}
	src := req.Query
	if src == "" {
		src = req.FLWOR
	}
	var id string
	if tr != nil {
		id = tr.ID
	}
	if slow {
		s.slowQueries.Inc()
		s.logger.Warn("slow query",
			"id", id, "doc", req.Doc, "query", src,
			"status", status, "elapsed_us", elapsed.Microseconds(),
			"stages", tr.String())
	}
	s.ring.add(RequestRecord{
		ID:        id,
		Time:      time.Now().UTC().Format(time.RFC3339),
		Doc:       req.Doc,
		Query:     src,
		Status:    status,
		ElapsedUS: elapsed.Microseconds(),
		Stages:    tr.String(),
		Error:     errText,
	})
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	Doc     string `json:"doc"`
	Query   string `json:"query,omitempty"`
	FLWOR   string `json:"flwor,omitempty"`
	Limit   int    `json:"limit,omitempty"`   // cap on encoded nodes; 0 = server default
	Format  string `json:"format,omitempty"`  // "json" (default), "text", "count"
	Explain bool   `json:"explain,omitempty"` // include the query plan in JSON responses
	// Trace is explain-analyze: the request is traced through every
	// stage (decode, lock wait, load, plan, eval, encode) and the JSON
	// response carries the measured breakdown plus the nodes-visited
	// count. Implies Explain for JSON responses.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMS tightens the server's default deadline for this request
	// (milliseconds); it can never loosen it. 0 means the default.
	TimeoutMS int `json:"timeoutMS,omitempty"`
}

// StageJSON is one measured stage of a traced request.
type StageJSON struct {
	Name string `json:"name"`
	US   int64  `json:"us"`
}

// TraceJSON is the explain-analyze payload of a "trace": true request:
// the stage breakdown in execution order, actual total, and the
// nodes-visited count. The stages cover work up to response assembly;
// the final socket write is not included.
type TraceJSON struct {
	ID      string      `json:"id"`
	Stages  []StageJSON `json:"stages"`
	TotalUS int64       `json:"total_us"`
	Visited int64       `json:"visited,omitempty"`
}

// traceJSON renders tr for the response; nil in, nil out.
func traceJSON(tr *obs.Trace) *TraceJSON {
	if tr == nil {
		return nil
	}
	st := tr.Stages()
	out := &TraceJSON{ID: tr.ID, TotalUS: tr.Total().Microseconds(), Visited: tr.Visited(),
		Stages: make([]StageJSON, len(st))}
	for i, s := range st {
		out.Stages[i] = StageJSON{Name: s.Name, US: s.Dur.Microseconds()}
	}
	return out
}

// nextRequestID mints a short id for traced requests — unique within
// the process, stable across the response, the slow-query log, and
// /debug/requests.
func (s *Server) nextRequestID() string {
	return "q" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// QueryResponse is the POST /query JSON response.
type QueryResponse struct {
	Doc       string              `json:"doc"`
	Query     string              `json:"query"`
	Result    *cliutil.ValueJSON  `json:"result,omitempty"`    // XPath
	Results   []cliutil.ValueJSON `json:"results,omitempty"`   // FLWOR, one per tuple
	Truncated bool                `json:"truncated,omitempty"` // FLWOR: the node cap cut tuples short
	Plan      []string            `json:"plan,omitempty"`      // explain output, one decision per line
	Trace     *TraceJSON          `json:"trace,omitempty"`     // explain-analyze breakdown ("trace": true)
	ElapsedUS int64               `json:"elapsed_us"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	reqStart := time.Now()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Doc == "" {
		s.fail(w, http.StatusBadRequest, "missing doc id")
		return
	}
	if (req.Query == "") == (req.FLWOR == "") {
		s.fail(w, http.StatusBadRequest, "exactly one of query or flwor is required")
		return
	}
	switch req.Format {
	case "", "json", "text", "count":
	default:
		s.fail(w, http.StatusBadRequest, "unknown format %q (json, text, count)", req.Format)
		return
	}
	// The request limit can only tighten the operator's cap, never raise
	// it: MaxResults stays a hard ceiling on encoded nodes per response.
	limit := s.cfg.MaxResults
	if req.Limit > 0 && (limit <= 0 || req.Limit < limit) {
		limit = req.Limit
	}

	// The request's lifecycle: the connection context (cancelled on
	// client disconnect) under the effective deadline. Everything below
	// — read-lock wait, cold load, evaluation checkpoints, streaming
	// encode — cooperates with it.
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	budget := xpath.Budget{MaxVisited: s.cfg.MaxVisited}

	// Stage tracing rides the context: on for explain-analyze requests
	// and (so slow-query log lines carry a breakdown) whenever a
	// slow-query threshold is configured. Off, tr stays nil and every
	// layer's trace hook is a nil check — the warm path allocates
	// nothing for it.
	var tr *obs.Trace
	if req.Trace || s.cfg.SlowQuery > 0 {
		tr = obs.NewTraceAt(s.nextRequestID(), reqStart)
		tr.Add("decode", time.Since(reqStart))
		ctx = obs.WithTrace(ctx, tr)
	}

	// Evaluation AND response encoding run under the document's read
	// lock: node-set results reference live document structure, so an
	// edit must not land between Eval and encode (streams are fully
	// consumed and closed inside the closure for the same reason). The
	// encoded response is buffered and written to the client only after
	// the lock is released — a stalled client must not pin the read side
	// and stall a queued writer (and, behind it, every later reader).
	br := newBufferedResponse()
	defer br.release()
	err := s.cat.ViewContext(ctx, req.Doc, func(doc *core.Document) error {
		start := time.Now()
		if req.FLWOR != "" {
			s.serveFLWOR(ctx, br, doc, req, tr, limit, budget, start)
			return nil
		}
		q, err := s.cache.xpath(req.Query)
		if err != nil {
			s.failBuf(br, http.StatusBadRequest, "%v", err)
			return nil
		}
		// The stream executes the cached plan lazily: node-set results
		// are pulled straight into the response buffer, so a limit or a
		// count never materializes the full node set — and every pull
		// passes the evaluator's cancellation checkpoints, so a client
		// disconnect or expired deadline aborts the encode mid-stream.
		st, err := q.StreamContext(ctx, doc.GODDAG(), budget)
		if err != nil {
			s.failEval(br, err)
			return nil
		}
		defer st.Close()
		var plan []string
		if req.Explain || req.Trace {
			plan = st.Explain()
		}
		// Each branch records its own encode stage. It also covers lazy
		// stream pulls: scan and semi-join plans do their evaluation
		// inside Next, interleaved with encoding by design.
		switch req.Format {
		case "", "json":
			if v, ok := st.Value(); ok {
				sp := tr.Begin("encode")
				enc := cliutil.EncodeValue(v, limit)
				sp.End()
				st.Close() // fold the evaluator's visit count into tr now
				s.okBuf(br, QueryResponse{
					Doc: req.Doc, Query: req.Query, Result: &enc, Plan: plan,
					Trace:     s.respTrace(req, tr),
					ElapsedUS: time.Since(start).Microseconds(),
				})
				return nil
			}
			if err := s.streamNodeSetJSON(br, req, st, tr, limit, plan, start); err != nil {
				s.failEval(br, err)
			}
		case "text":
			sp := tr.Begin("encode")
			defer sp.End()
			br.contentType = "text/plain; charset=utf-8"
			if v, ok := st.Value(); ok {
				cliutil.WriteValue(&br.body, v, false, limit)
				return nil
			}
			if _, err := cliutil.WriteNodesText(&br.body, st, limit); err != nil {
				s.failEval(br, err)
			}
		case "count":
			sp := tr.Begin("encode")
			defer sp.End()
			br.contentType = "text/plain; charset=utf-8"
			if v, ok := st.Value(); ok {
				cliutil.WriteValue(&br.body, v, true, 0)
				return nil
			}
			n, err := st.Count()
			if err != nil {
				s.failEval(br, err)
				return nil
			}
			fmt.Fprintln(&br.body, n)
		}
		return nil
	})
	status := br.status
	var errText string
	if err != nil {
		var nf *catalog.ErrNotFound
		switch code := s.lifecycleStatus(err); {
		case errors.As(err, &nf):
			status = http.StatusNotFound
		case code != 0:
			// The wait for the lock or the cold load outlived the request.
			status = code
		default:
			status = http.StatusInternalServerError
		}
		errText = err.Error()
	}
	s.observeQuery(req, tr, status, errText, time.Since(reqStart))
	if err != nil {
		s.fail(w, status, "%v", err)
		return
	}
	br.flush(w)
}

// respTrace finalizes the response's trace payload: only explicit
// "trace": true requests get it (threshold-driven traces exist for the
// slow-query log alone).
func (s *Server) respTrace(req QueryRequest, tr *obs.Trace) *TraceJSON {
	if !req.Trace {
		return nil
	}
	return traceJSON(tr)
}

// failEval records an evaluation failure in the buffered response:
// lifecycle errors (deadline, disconnect, budget) get their dedicated
// status, everything else is an unprocessable query.
func (s *Server) failEval(br *bufferedResponse, err error) {
	if code := s.lifecycleStatus(err); code != 0 {
		s.failBuf(br, code, "%v", err)
		return
	}
	s.failBuf(br, http.StatusUnprocessableEntity, "%v", err)
}

// streamNodeSetJSON encodes a node-set stream as the QueryResponse
// envelope, node by node through the pooled append encoders — the
// response decodes identically to the materializing path (result type,
// nodes, full count, truncation flag) but allocates a small constant
// amount of scratch regardless of result size. When the limit cuts the
// stream short the remainder is drained (counted, not encoded) so Count
// still reports the true result size.
func (s *Server) streamNodeSetJSON(br *bufferedResponse, req QueryRequest, st *xpath.Stream, tr *obs.Trace, limit int, plan []string, start time.Time) error {
	// Append straight into the response buffer's free capacity and
	// commit with one Write at the end (the bytes.Buffer.AvailableBuffer
	// contract): on a warm pooled buffer the bytes are encoded in place,
	// with no scratch-to-body copy at all. Error returns never Write, so
	// a partial encode leaves the body untouched for failBuf.
	buf := br.body.AvailableBuffer()
	buf = append(buf, `{"doc":`...)
	buf = cliutil.AppendJSONString(buf, req.Doc)
	buf = append(buf, `,"query":`...)
	buf = cliutil.AppendJSONString(buf, req.Query)
	buf = append(buf, `,"result":{"type":"node-set"`...)

	sp := tr.Begin("encode")
	total := st.Size() // exact for scan plans, -1 otherwise
	written := 0
	var ne cliutil.NodeEncoder // rune cursors amortize span conversion
	for limit <= 0 || written < limit {
		n, err := st.Next()
		if err != nil {
			return err
		}
		if n == nil {
			break
		}
		if written == 0 {
			buf = append(buf, `,"nodes":[`...)
		} else {
			buf = append(buf, ',')
		}
		buf = ne.AppendNodeJSON(buf, n)
		written++
	}
	count, truncated := written, false
	if total >= 0 {
		count, truncated = total, written < total
	} else if n, err := st.Next(); err != nil {
		return err
	} else if n != nil {
		rest, err := st.Count()
		if err != nil {
			return err
		}
		count, truncated = written+1+rest, true
	}
	if written > 0 {
		buf = append(buf, ']')
	}
	buf = append(buf, `,"count":`...)
	buf = cliutil.AppendUint(buf, int64(count))
	if truncated {
		buf = append(buf, `,"truncated":true`...)
	}
	buf = append(buf, '}')
	for i, line := range plan {
		if i == 0 {
			buf = append(buf, `,"plan":[`...)
		} else {
			buf = append(buf, ',')
		}
		buf = cliutil.AppendJSONString(buf, line)
	}
	if len(plan) > 0 {
		buf = append(buf, ']')
	}
	sp.End()
	if req.Trace {
		// Close the stream first so the evaluator's visit count is
		// folded into the trace; Close is idempotent for the deferred
		// one. The stage durations are complete except the tail of the
		// encode (these very bytes), which is noise.
		st.Close()
		buf = appendTraceJSON(buf, tr)
	}
	buf = append(buf, `,"elapsed_us":`...)
	buf = cliutil.AppendUint(buf, time.Since(start).Microseconds())
	buf = append(buf, '}', '\n')
	br.body.Write(buf)
	return nil
}

// appendTraceJSON renders `,"trace":{...}` into the streaming encoder's
// buffer — the hand-rolled twin of the TraceJSON struct, kept in the
// same shape so both /query paths decode identically.
func appendTraceJSON(buf []byte, tr *obs.Trace) []byte {
	if tr == nil {
		return buf
	}
	buf = append(buf, `,"trace":{"id":`...)
	buf = cliutil.AppendJSONString(buf, tr.ID)
	buf = append(buf, `,"stages":[`...)
	for i, st := range tr.Stages() {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":`...)
		buf = cliutil.AppendJSONString(buf, st.Name)
		buf = append(buf, `,"us":`...)
		buf = cliutil.AppendUint(buf, st.Dur.Microseconds())
		buf = append(buf, '}')
	}
	buf = append(buf, `],"total_us":`...)
	buf = cliutil.AppendUint(buf, tr.Total().Microseconds())
	if v := tr.Visited(); v > 0 {
		buf = append(buf, `,"visited":`...)
		buf = cliutil.AppendUint(buf, v)
	}
	buf = append(buf, '}')
	return buf
}

// bufferedResponse accumulates one response while a document lock is
// held, so the client-paced socket write happens after release.
// Instances recycle through brPool: under sustained load the response
// buffer is allocated once and reused, not once per request.
type bufferedResponse struct {
	status      int
	contentType string
	body        bytes.Buffer
}

var brPool = sync.Pool{New: func() any { return new(bufferedResponse) }}

func newBufferedResponse() *bufferedResponse {
	br := brPool.Get().(*bufferedResponse)
	br.status = http.StatusOK
	br.contentType = "application/json"
	br.body.Reset()
	return br
}

// release returns the response to the pool. Buffers grown past 1 MiB by
// an unusually large response are dropped instead of pinned.
func (br *bufferedResponse) release() {
	if br.body.Cap() > 1<<20 {
		return
	}
	brPool.Put(br)
}

func (br *bufferedResponse) flush(w http.ResponseWriter) {
	w.Header().Set("Content-Type", br.contentType)
	w.WriteHeader(br.status)
	w.Write(br.body.Bytes())
}

// okBuf encodes a JSON success body into the buffer.
func (s *Server) okBuf(br *bufferedResponse, v any) {
	enc := json.NewEncoder(&br.body)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// failBuf records a JSON error response in the buffer.
func (s *Server) failBuf(br *bufferedResponse, code int, format string, args ...any) {
	s.errors.Add(1)
	br.status = code
	br.contentType = "application/json"
	br.body.Reset()
	json.NewEncoder(&br.body).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) serveFLWOR(ctx context.Context, br *bufferedResponse, doc *core.Document, req QueryRequest, tr *obs.Trace, limit int, budget xpath.Budget, start time.Time) {
	q, err := s.cache.flwor(req.FLWOR)
	if err != nil {
		s.failBuf(br, http.StatusBadRequest, "%v", err)
		return
	}
	// One cumulative budget across every clause of every tuple: a FLWOR
	// iterating many cheap tuples is bounded like one expensive XPath.
	// EvalContext records the eval stage and visit count itself.
	vals, err := q.EvalContext(ctx, doc.GODDAG(), budget)
	if err != nil {
		s.failEval(br, err)
		return
	}
	elapsed := time.Since(start)
	sp := tr.Begin("encode")
	switch req.Format {
	case "", "json":
		// The node cap is a per-response budget: tuples are encoded until
		// their cumulative nodes/attrs exhaust it, then the tuple list is
		// cut short and the response marked truncated — a FLWOR over a
		// large document cannot bypass MaxResults by returning one node
		// per tuple.
		out := make([]cliutil.ValueJSON, 0, len(vals))
		remaining := limit
		truncated := false
		for _, v := range vals {
			if limit > 0 && remaining <= 0 {
				truncated = true
				break
			}
			enc := cliutil.EncodeValue(v, remaining)
			truncated = truncated || enc.Truncated
			if limit > 0 {
				switch enc.Type {
				case "node-set":
					remaining -= len(enc.Nodes)
				case "attribute-set":
					remaining -= len(enc.Attrs)
				default:
					remaining-- // scalars count one line, as in the text format
				}
			}
			out = append(out, enc)
		}
		sp.End() // before the trace renders, so the encode stage is in it
		s.okBuf(br, QueryResponse{
			Doc: req.Doc, Query: req.FLWOR, Results: out, Truncated: truncated,
			Trace:     s.respTrace(req, tr),
			ElapsedUS: elapsed.Microseconds(),
		})
	case "text":
		br.contentType = "text/plain; charset=utf-8"
		cliutil.WriteFLWOR(&br.body, vals, false, limit)
		sp.End()
	case "count":
		br.contentType = "text/plain; charset=utf-8"
		cliutil.WriteFLWOR(&br.body, vals, true, 0)
		sp.End()
	}
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.ok(w, s.cat.Stats().Docs)
}

// DocResponse is the GET /docs/{id} response: catalog stats plus, when
// the document is resident (or ?load=1 forces it in), structure counts.
type DocResponse struct {
	catalog.DocStats
	Hierarchies []string `json:"hierarchies,omitempty"`
	Elements    int      `json:"elements,omitempty"`
	Leaves      int      `json:"leaves,omitempty"`
	ContentLen  int      `json:"contentLen,omitempty"`
	// Index reports the derived-index sizes the query planner reads as
	// selectivity estimates (resident documents only).
	Index *goddag.IndexStats `json:"index,omitempty"`
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rest := strings.TrimPrefix(r.URL.Path, "/docs/")
	id, action, _ := strings.Cut(rest, "/")
	if id == "" || strings.Contains(action, "/") {
		s.fail(w, http.StatusNotFound, "bad document path %q", rest)
		return
	}
	switch action {
	case "":
	case "edit":
		s.handleEdit(w, r, id)
		return
	case "undo", "redo":
		s.handleHistory(w, r, id, action)
		return
	default:
		s.fail(w, http.StatusNotFound, "unknown document action %q", action)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		s.fail(w, http.StatusMethodNotAllowed, "GET or DELETE only")
		return
	}
	ds, ok := s.cat.Doc(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no document %q", id)
		return
	}
	if r.Method == http.MethodDelete {
		// Drop the resident document or clear a cached load failure —
		// the operator's lever for reloading a fixed source without a
		// process restart. Documents with unsaved edits are refused.
		s.ok(w, map[string]bool{"evicted": s.cat.Evict(id)})
		return
	}
	resp := DocResponse{DocStats: ds}
	if r.URL.Query().Get("load") != "" && !ds.Resident {
		if _, err := s.cat.GetContext(r.Context(), id); err != nil {
			if code := s.lifecycleStatus(err); code != 0 {
				s.fail(w, code, "%v", err)
			} else {
				s.fail(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}
		resp.DocStats, _ = s.cat.Doc(id)
	}
	if resp.Resident {
		// Structure counts read live document state: take the read lock
		// so a concurrent edit cannot tear them.
		_ = s.cat.ViewContext(r.Context(), id, func(doc *core.Document) error {
			g := doc.GODDAG()
			st := g.Stats()
			resp.Hierarchies = g.HierarchyNames()
			resp.Elements = st.Elements
			resp.Leaves = st.Leaves
			resp.ContentLen = st.ContentLen
			ix := g.IndexStats()
			resp.Index = &ix
			return nil
		})
	}
	s.ok(w, resp)
}

// EditOp is one operation of a POST /docs/{id}/edit batch — the wire
// format now lives in package editor (it is also the WAL op-batch
// payload); see editor.Op for the shapes.
type EditOp = editor.Op

// EditRequest is the POST /docs/{id}/edit body.
type EditRequest struct {
	Ops []EditOp `json:"ops"`
}

// EditResponse is the success response of an edit, undo, or redo: the
// post-commit document shape plus persistence state.
type EditResponse struct {
	Doc       string `json:"doc"`
	Applied   int    `json:"applied"` // ops committed (edit), 1 for undo/redo
	Elements  int    `json:"elements"`
	Leaves    int    `json:"leaves"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// EditViolation is the structured form of a prevalidation violation or
// markup conflict that vetoed an edit batch.
type EditViolation struct {
	Hierarchy string `json:"hierarchy,omitempty"`
	Element   string `json:"element,omitempty"`
	Code      string `json:"code,omitempty"` // validate.Code name, or "conflict"
	Message   string `json:"message"`
}

// EditErrorResponse is the 422 response for a vetoed batch: the failing
// op's index and the reason, structured when prevalidation raised it.
type EditErrorResponse struct {
	Error      string          `json:"error"`
	Op         int             `json:"op"`
	Violations []EditViolation `json:"violations,omitempty"`
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request, id string) {
	if s.cfg.ReadOnly {
		s.fail(w, http.StatusForbidden, "server is read-only")
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req EditRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		s.fail(w, http.StatusBadRequest, "empty op batch")
		return
	}
	if s.cfg.MaxOps > 0 && len(req.Ops) > s.cfg.MaxOps {
		s.fail(w, http.StatusBadRequest, "batch of %d ops exceeds limit %d", len(req.Ops), s.cfg.MaxOps)
		return
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	start := time.Now()
	var resp EditResponse
	// UpdateBatchContext is the crash-safe path: the batch is
	// write-ahead logged and fsynced before it applies, so a nil return
	// means the edit survives a crash even if the .gdag save lagged
	// behind. The context bounds only the wait for the write lock and a
	// cold load — a batch past its commit point always persists in full.
	err := s.cat.UpdateBatchContext(ctx, id, req.Ops, func(doc *core.Document) {
		st := doc.GODDAG().Stats()
		resp = EditResponse{Doc: id, Applied: len(req.Ops), Elements: st.Elements, Leaves: st.Leaves}
	})
	if err != nil {
		failedOp := -1
		var be *editor.BatchError
		if errors.As(err, &be) {
			failedOp = be.Index
		}
		s.failEdit(w, id, err, failedOp)
		return
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	s.ok(w, resp)
}

// failEdit maps an edit failure to its status code and structured body.
func (s *Server) failEdit(w http.ResponseWriter, id string, err error, failedOp int) {
	var nf *catalog.ErrNotFound
	if errors.As(err, &nf) {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	if errors.Is(err, catalog.ErrReadOnly) {
		// Degraded after persistent storage failures; reads still work.
		// Degradation is sticky until an operator restart, so the hint is
		// coarse — it tells well-behaved clients to back off, not when
		// the write path will return.
		w.Header().Set("Retry-After", "60")
		s.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if code := s.lifecycleStatus(err); code != 0 {
		// The wait for the write lock or a cold load outlived the
		// request; nothing was applied.
		s.fail(w, code, "%v", err)
		return
	}
	if failedOp < 0 {
		// Not an op veto: load or persistence failure.
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := EditErrorResponse{Error: err.Error(), Op: failedOp}
	var viol validate.Violation
	var conflict *goddag.ConflictError
	switch {
	case errors.As(err, &viol):
		ev := EditViolation{Hierarchy: viol.Hierarchy, Code: viol.Code.String(), Message: viol.Msg}
		if viol.Element != nil {
			ev.Element = viol.Element.String()
		}
		resp.Violations = append(resp.Violations, ev)
	case errors.As(err, &conflict):
		resp.Violations = append(resp.Violations, EditViolation{
			Hierarchy: conflict.Hierarchy, Code: "conflict", Message: conflict.Error(),
		})
	}
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusUnprocessableEntity)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(resp)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request, id, action string) {
	if s.cfg.ReadOnly {
		s.fail(w, http.StatusForbidden, "server is read-only")
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	start := time.Now()
	var resp EditResponse
	err := s.cat.UpdateContext(ctx, id, func(doc *core.Document) error {
		var err error
		if action == "undo" {
			err = doc.Edit().Undo()
		} else {
			err = doc.Edit().Redo()
		}
		if err != nil {
			return err
		}
		st := doc.GODDAG().Stats()
		resp = EditResponse{Doc: id, Applied: 1, Elements: st.Elements, Leaves: st.Leaves}
		return nil
	})
	if err != nil {
		var nf *catalog.ErrNotFound
		switch code := s.lifecycleStatus(err); {
		case errors.As(err, &nf):
			s.fail(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, catalog.ErrReadOnly):
			w.Header().Set("Retry-After", "60") // sticky degradation; see failEdit
			s.fail(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, editor.ErrNothingToUndo), errors.Is(err, editor.ErrNothingToRedo):
			s.fail(w, http.StatusConflict, "%v", err)
		case code != 0:
			s.fail(w, code, "%v", err)
		default:
			s.fail(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	s.ok(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// A catalog degraded to read-only still serves reads, so the probe
	// stays 200 (pulling the instance would lose read capacity too) but
	// reports the degradation for operators and write-aware balancers.
	if s.cat.ReadOnly() {
		s.ok(w, map[string]any{"status": "degraded", "readOnly": true})
		return
	}
	s.ok(w, map[string]string{"status": "ok"})
}

// RouteLatency summarizes one route's request-latency histogram —
// quantiles estimated by linear interpolation within the bucket, the
// same arithmetic Prometheus' histogram_quantile applies to the
// exposition of the identical histogram, so the two surfaces agree.
type RouteLatency struct {
	Count uint64 `json:"count"`
	P50US int64  `json:"p50_us"`
	P90US int64  `json:"p90_us"`
	P99US int64  `json:"p99_us"`
}

// StatsResponse is the GET /stats response. Every counter is a read of
// the same registry series GET /metrics exposes; neither surface can
// drift from the other.
type StatsResponse struct {
	Catalog  catalog.Stats `json:"catalog"`
	Requests uint64        `json:"requests"`
	Errors   uint64        `json:"errors"`
	Panics   uint64        `json:"panics"`
	Shed     uint64        `json:"shed"`
	ReadOnly bool          `json:"readOnly,omitempty"`
	Queries  CacheStats    `json:"queryCache"`

	// Lifecycle counters: how requests ended other than normally.
	Cancelled      uint64 `json:"cancelled,omitempty"`      // client disconnected first
	TimedOut       uint64 `json:"timedOut,omitempty"`       // server-side deadline expired
	BudgetExceeded uint64 `json:"budgetExceeded,omitempty"` // evaluation node budget exhausted
	SlowQueries    uint64 `json:"slowQueries,omitempty"`    // slower than Config.SlowQuery

	// Routes reports per-route latency summaries for routes that have
	// served at least one request.
	Routes map[string]RouteLatency `json:"routes,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	routes := make(map[string]RouteLatency)
	for rt := 0; rt < nRoutes; rt++ {
		snap := s.met.latency[rt].Snapshot()
		if snap.Count == 0 {
			continue
		}
		routes[routeNames[rt]] = RouteLatency{
			Count: snap.Count,
			P50US: snap.Quantile(0.50).Microseconds(),
			P90US: snap.Quantile(0.90).Microseconds(),
			P99US: snap.Quantile(0.99).Microseconds(),
		}
	}
	s.ok(w, StatsResponse{
		Catalog:  s.cat.Stats(),
		Requests: s.requests.Value(),
		Errors:   s.errors.Value(),
		Panics:   s.panics.Value(),
		Shed:     s.shed.Value(),
		ReadOnly: s.cat.ReadOnly(),
		Queries:  s.cache.stats(),

		Cancelled:      s.cancelled.Value(),
		TimedOut:       s.timedOut.Value(),
		BudgetExceeded: s.budgetExceeded.Value(),
		SlowQueries:    s.slowQueries.Value(),

		Routes: routes,
	})
}

func (s *Server) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Too late for a status change; the connection likely broke.
		return
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// queryCache is an LRU of compiled queries keyed by source text, shared
// across all requests: compiled *xpath.Query and *xquery.Query values
// keep no evaluation state, so concurrent evaluations share one compiled
// form. Compile errors are not cached (they are cheap to reproduce and
// rare on hot paths).
type queryCache struct {
	mu     sync.Mutex
	cap    int
	xp     map[string]*list.Element // of *cacheNode
	order  *list.List               // most recently used at the front
	hits   uint64
	misses uint64
}

type cacheNode struct {
	key   string
	query any // *xpath.Query or *xquery.Query, per the key prefix
}

// CacheStats reports compiled-query cache behaviour.
type CacheStats struct {
	Size   int    `json:"size"`
	Cap    int    `json:"cap"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{cap: capacity, xp: make(map[string]*list.Element), order: list.New()}
}

func (qc *queryCache) xpath(src string) (*xpath.Query, error) {
	q, err := qc.lookup("x\x00"+src, func() (any, error) { return xpath.Compile(src) })
	if err != nil {
		return nil, err
	}
	return q.(*xpath.Query), nil
}

func (qc *queryCache) flwor(src string) (*xquery.Query, error) {
	q, err := qc.lookup("f\x00"+src, func() (any, error) { return xquery.Compile(src) })
	if err != nil {
		return nil, err
	}
	return q.(*xquery.Query), nil
}

// lookup returns the cached compiled form for key, compiling (outside
// the lock) and inserting on a miss. If a concurrent request compiled
// the same key first, its entry is kept and ours discarded.
func (qc *queryCache) lookup(key string, compile func() (any, error)) (any, error) {
	qc.mu.Lock()
	if el, ok := qc.xp[key]; ok {
		qc.hits++
		qc.order.MoveToFront(el)
		q := el.Value.(*cacheNode).query
		qc.mu.Unlock()
		return q, nil
	}
	qc.misses++
	qc.mu.Unlock()

	q, err := compile()
	if err != nil {
		return nil, err
	}
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if _, ok := qc.xp[key]; !ok {
		qc.xp[key] = qc.order.PushFront(&cacheNode{key: key, query: q})
		for len(qc.xp) > qc.cap {
			old := qc.order.Back()
			qc.order.Remove(old)
			delete(qc.xp, old.Value.(*cacheNode).key)
		}
	}
	return q, nil
}

func (qc *queryCache) stats() CacheStats {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return CacheStats{Size: len(qc.xp), Cap: qc.cap, Hits: qc.hits, Misses: qc.misses}
}
