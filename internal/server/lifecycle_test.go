package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// expensiveQuery is quadratic in //w: every word re-materializes its
// whole preceding::w axis, so a few thousand words yield tens of
// millions of ticked node visits — far past any test deadline or
// budget, with checkpoints throughout.
const expensiveQuery = "//w[count(preceding::w) >= 0]"

// warm loads the document outside any request deadline so the lifecycle
// tests measure evaluation, not the cold parse.
func warm(t testing.TB, srv *Server, id string) {
	t.Helper()
	if _, err := srv.cat.Get(id); err != nil {
		t.Fatal(err)
	}
}

func TestQueryDeadlineReturns504(t *testing.T) {
	const deadline = 100 * time.Millisecond
	srv, _ := newFixture(t, 6000, Config{Timeout: deadline})
	h := srv.Handler()
	warm(t, srv, "ms")

	start := time.Now()
	w := post(t, h, fmt.Sprintf(`{"doc":"ms","query":%q}`, expensiveQuery))
	elapsed := time.Since(start)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("expensive query under %v deadline: %d %s", deadline, w.Code, w.Body.String())
	}
	var e map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Fatalf("504 body is not an error JSON: %s", w.Body.String())
	}
	// The checkpoint interval is amortized, so detection should land
	// within a fraction of the deadline of the deadline itself; 2x is
	// the contract and already generous for a loaded CI machine.
	if elapsed > 2*deadline {
		t.Errorf("504 took %v, want within 2x the %v deadline", elapsed, deadline)
	}

	sw := get(t, h, "/stats")
	var stats StatsResponse
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.TimedOut == 0 {
		t.Error("timedOut counter not incremented")
	}
}

// TestQueryClientTimeoutMS: a request-supplied deadline works with no
// server default, and can only tighten a configured one, never loosen.
func TestQueryClientTimeoutMS(t *testing.T) {
	srv, _ := newFixture(t, 6000, Config{}) // no server default
	h := srv.Handler()
	warm(t, srv, "ms")

	w := post(t, h, fmt.Sprintf(`{"doc":"ms","query":%q,"timeoutMS":100}`, expensiveQuery))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeoutMS with no server default: %d %s", w.Code, w.Body.String())
	}

	srv2, _ := newFixture(t, 6000, Config{Timeout: 100 * time.Millisecond})
	h2 := srv2.Handler()
	warm(t, srv2, "ms")
	start := time.Now()
	w = post(t, h2, fmt.Sprintf(`{"doc":"ms","query":%q,"timeoutMS":600000}`, expensiveQuery))
	elapsed := time.Since(start)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("huge timeoutMS against 100ms server cap: %d %s", w.Code, w.Body.String())
	}
	if elapsed > time.Second {
		t.Errorf("clamped request ran %v; client loosened the server deadline", elapsed)
	}
}

func TestQueryBudgetExceededReturns413(t *testing.T) {
	srv, _ := newFixture(t, 300, Config{MaxVisited: 1000})
	h := srv.Handler()
	warm(t, srv, "ms")

	w := post(t, h, fmt.Sprintf(`{"doc":"ms","query":%q}`, expensiveQuery))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("budget-busting XPath: %d %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "budget") {
		t.Fatalf("413 body does not name the budget: %s", w.Body.String())
	}

	// FLWOR draws from the same cumulative budget.
	w = post(t, h, `{"doc":"ms","flwor":"for $w in //w for $v in //w return name($v)"}`)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("budget-busting FLWOR: %d %s", w.Code, w.Body.String())
	}
	if got := srv.budgetExceeded.Value(); got < 2 {
		t.Errorf("budgetExceeded counter = %d, want >= 2", got)
	}

	// A cheap query on the same server still serves.
	w = post(t, h, `{"doc":"ms","query":"count(//w)","format":"count"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("cheap query after budget errors: %d %s", w.Code, w.Body.String())
	}
}

// TestClientDisconnectCancelsEvaluation: when the client goes away
// mid-evaluation the evaluator unwinds through its checkpoints and the
// request is accounted as cancelled (499), not as a server error.
func TestClientDisconnectCancelsEvaluation(t *testing.T) {
	srv, _ := newFixture(t, 6000, Config{})
	h := srv.Handler()
	warm(t, srv, "ms")

	ctx, cancel := context.WithCancel(context.Background())
	body := fmt.Sprintf(`{"doc":"ms","query":%q}`, expensiveQuery)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body)).WithContext(ctx)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("disconnected client: %d %s", w.Code, w.Body.String())
	}
	if srv.cancelled.Value() == 0 {
		t.Error("cancelled counter not incremented")
	}
}

func TestSlowQueryLoggedAndCounted(t *testing.T) {
	srv, _ := newFixture(t, 2000, Config{SlowQuery: time.Nanosecond})
	h := srv.Handler()
	warm(t, srv, "ms")
	if w := post(t, h, `{"doc":"ms","query":"//w","format":"count"}`); w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	if srv.slowQueries.Value() == 0 {
		t.Error("slowQueries counter not incremented")
	}
}

// TestAdversarialBarrage is the robustness acceptance scenario: a storm
// of hostile queries under tight per-request deadlines and a node
// budget, with edit traffic interleaved. Every edit must commit, every
// response must be a deliberate status (no 500s, no panics), and the
// goroutine count must return to baseline — no evaluator, lock waiter,
// or load goroutine may leak.
func TestAdversarialBarrage(t *testing.T) {
	srv, _, _ := newEditFixture(t, 2000, Config{MaxVisited: 5_000_000})
	h := srv.Handler()
	warm(t, srv, "ms")
	lo, hi := firstWordSpan(t, h)

	baseline := runtime.NumGoroutine()
	adversarial := []string{
		// Expensive: dies on the 25ms deadline or the node budget.
		fmt.Sprintf(`{"doc":"ms","query":%q,"timeoutMS":25}`, expensiveQuery),
		// Cheap: must keep succeeding throughout the storm.
		`{"doc":"ms","query":"count(//w)","format":"count","timeoutMS":25}`,
		// Malformed: parser rejections, including a nesting bomb the
		// depth cap must catch without blowing the goroutine stack.
		`{"doc":"ms","query":"//w[","timeoutMS":25}`,
		fmt.Sprintf(`{"doc":"ms","query":%q,"timeoutMS":25}`, strings.Repeat("(", 4000)+"1"),
		// Unknown document.
		`{"doc":"nope","query":"//w","timeoutMS":25}`,
		// FLWOR crossing the node budget.
		`{"doc":"ms","flwor":"for $a in //w for $b in //w return name($b)","timeoutMS":25}`,
	}
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true, http.StatusNotFound: true,
		http.StatusRequestEntityTooLarge: true, http.StatusUnprocessableEntity: true,
		statusClientClosedRequest: true, http.StatusGatewayTimeout: true,
	}

	const queriers, rounds, writers, edits = 12, 6, 2, 8
	var wg sync.WaitGroup
	errs := make(chan error, queriers+writers)
	for g := 0; g < queriers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				body := adversarial[(g+i)%len(adversarial)]
				w := post(t, h, body)
				if !allowed[w.Code] {
					errs <- fmt.Errorf("querier %d: unexpected %d: %s", g, w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	// Edit traffic rides along with no deadline (timeoutMS is per
	// request, and the server has no default): under the barrage the
	// write path must keep committing, not starve or 504.
	for wr := 0; wr < writers; wr++ {
		wr := wr
		wg.Add(1)
		go func() {
			defer wg.Done()
			hier := fmt.Sprintf("storm%d", wr)
			for i := 0; i < edits; i++ {
				body := fmt.Sprintf(`{"ops":[
					{"op":"insert-markup","hierarchy":%q,"tag":"note","start":%d,"end":%d},
					{"op":"remove-markup","hierarchy":%q,"index":0}
				]}`, hier, lo, hi, hier)
				if w := postPath(t, h, "/docs/ms/edit", body); w.Code != http.StatusOK {
					errs <- fmt.Errorf("writer %d edit %d: %d %s", wr, i, w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if srv.panics.Value() != 0 {
		t.Errorf("panics recovered during barrage: %d", srv.panics.Value())
	}
	if srv.timedOut.Value() == 0 && srv.budgetExceeded.Value() == 0 {
		t.Error("barrage tripped neither deadlines nor budgets; it was not adversarial")
	}

	// Goroutine accounting: every request goroutine's helpers (limiter
	// polls, lock waiters, singleflight loads) must have unwound.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: baseline %d, now %d", baseline, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
