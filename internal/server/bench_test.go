package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/xpath"
)

// BenchmarkServeQuery drives the full handler stack — request decode,
// catalog hit, compiled-query cache hit, concurrent Eval, JSON encode —
// over a warm catalog from parallel goroutines: the serving layer's
// steady-state throughput.
func BenchmarkServeQuery(b *testing.B) {
	for _, q := range []string{"count(//w)", "//dmg/overlapping::w", "//line/covered::w"} {
		b.Run(strings.NewReplacer("/", "_", ":", "_").Replace(q), func(b *testing.B) {
			s, _ := newFixture(b, 2000, Config{})
			h := s.Handler()
			body := fmt.Sprintf(`{"doc":"ms","query":%q}`, q)
			// Warm: catalog load + query compile outside the timer.
			if w := post(b, h, body); w.Code != http.StatusOK {
				b.Fatalf("warmup: %d %s", w.Code, w.Body.String())
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("query failed: %d", w.Code)
					}
				}
			})
		})
	}
}

// BenchmarkServeQueryLarge drives the handler with a large node-set
// result (every word element, ~2000 nodes) through the streaming
// encoder. ReportAllocs pins the zero-alloc claim: per-request
// allocations must not scale with the result size.
func BenchmarkServeQueryLarge(b *testing.B) {
	for _, format := range []string{"json", "text"} {
		b.Run(format, func(b *testing.B) {
			s, _ := newFixture(b, 2000, Config{})
			h := s.Handler()
			body := fmt.Sprintf(`{"doc":"ms","query":"//w","format":%q}`, format)
			if w := post(b, h, body); w.Code != http.StatusOK {
				b.Fatalf("warmup: %d %s", w.Code, w.Body.String())
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("query failed: %d", w.Code)
					}
				}
			})
		})
	}
}

// TestServeAllocsFlat asserts the streaming path's allocation count is
// independent of the result size: a ~2000-node response must allocate
// about the same number of objects per request as an 8-node response of
// the same query (byte volume differs, object count must not — the
// node encoding reuses pooled scratch, not per-node buffers).
func TestServeAllocsFlat(t *testing.T) {
	s, _ := newFixture(t, 2000, Config{})
	h := s.Handler()
	run := func(body string) float64 {
		// Warm pools, catalog, compiled-query LRU, and plan cache.
		for i := 0; i < 5; i++ {
			if w := post(t, h, body); w.Code != http.StatusOK {
				t.Fatalf("warmup: %d %s", w.Code, w.Body.String())
			}
		}
		return testing.AllocsPerRun(20, func() {
			req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("query failed: %d", w.Code)
			}
		})
	}
	for _, format := range []string{"json", "text"} {
		small := run(fmt.Sprintf(`{"doc":"ms","query":"//w","format":%q,"limit":8}`, format))
		large := run(fmt.Sprintf(`{"doc":"ms","query":"//w","format":%q}`, format))
		// ~250x more result nodes must not mean more allocations; allow
		// a small constant of slack for buffer-size-class noise.
		if large > small+25 {
			t.Errorf("%s: allocs scale with result size: %.0f (2000 nodes) vs %.0f (8 nodes)", format, large, small)
		}
		t.Logf("%s: allocs/request: %.0f large, %.0f small", format, large, small)
	}
}

// BenchmarkDirectEval is the floor BenchmarkServeQuery is measured
// against: the same query evaluated straight on the GODDAG, no HTTP, no
// JSON. The difference is the serving layer's overhead.
func BenchmarkDirectEval(b *testing.B) {
	for _, q := range []string{"count(//w)", "//dmg/overlapping::w", "//line/covered::w"} {
		b.Run(strings.NewReplacer("/", "_", ":", "_").Replace(q), func(b *testing.B) {
			s, _ := newFixture(b, 2000, Config{})
			doc, err := s.cat.Get("ms")
			if err != nil {
				b.Fatal(err)
			}
			g := doc.GODDAG()
			cq := xpath.MustCompile(q)
			if _, err := cq.Eval(g); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := cq.Eval(g); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCatalogColdLoad measures a cold catalog load — parse, index
// pre-warm, footprint accounting — for the binary store and standoff
// source forms.
func BenchmarkCatalogColdLoad(b *testing.B) {
	for _, id := range []string{"ms", "standoff"} {
		b.Run(id, func(b *testing.B) {
			s, _ := newFixture(b, 2000, Config{})
			for i := 0; i < b.N; i++ {
				if _, err := s.cat.Get(id); err != nil {
					b.Fatal(err)
				}
				if !s.cat.Evict(id) {
					b.Fatal("evict failed")
				}
			}
		})
	}
}

// BenchmarkCatalogHit measures the resident fast path: lock, LRU bump,
// pointer return.
func BenchmarkCatalogHit(b *testing.B) {
	s, _ := newFixture(b, 500, Config{})
	if _, err := s.cat.Get("ms"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.cat.Get("ms"); err != nil {
			b.Fatal(err)
		}
	}
}
