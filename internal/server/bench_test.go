package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/xpath"
)

// BenchmarkServeQuery drives the full handler stack — request decode,
// catalog hit, compiled-query cache hit, concurrent Eval, JSON encode —
// over a warm catalog from parallel goroutines: the serving layer's
// steady-state throughput.
func BenchmarkServeQuery(b *testing.B) {
	for _, q := range []string{"count(//w)", "//dmg/overlapping::w", "//line/covered::w"} {
		b.Run(strings.NewReplacer("/", "_", ":", "_").Replace(q), func(b *testing.B) {
			s, _ := newFixture(b, 2000, Config{})
			h := s.Handler()
			body := fmt.Sprintf(`{"doc":"ms","query":%q}`, q)
			// Warm: catalog load + query compile outside the timer.
			if w := post(b, h, body); w.Code != http.StatusOK {
				b.Fatalf("warmup: %d %s", w.Code, w.Body.String())
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("query failed: %d", w.Code)
					}
				}
			})
		})
	}
}

// BenchmarkDirectEval is the floor BenchmarkServeQuery is measured
// against: the same query evaluated straight on the GODDAG, no HTTP, no
// JSON. The difference is the serving layer's overhead.
func BenchmarkDirectEval(b *testing.B) {
	for _, q := range []string{"count(//w)", "//dmg/overlapping::w", "//line/covered::w"} {
		b.Run(strings.NewReplacer("/", "_", ":", "_").Replace(q), func(b *testing.B) {
			s, _ := newFixture(b, 2000, Config{})
			doc, err := s.cat.Get("ms")
			if err != nil {
				b.Fatal(err)
			}
			g := doc.GODDAG()
			cq := xpath.MustCompile(q)
			if _, err := cq.Eval(g); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := cq.Eval(g); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCatalogColdLoad measures a cold catalog load — parse, index
// pre-warm, footprint accounting — for the binary store and standoff
// source forms.
func BenchmarkCatalogColdLoad(b *testing.B) {
	for _, id := range []string{"ms", "standoff"} {
		b.Run(id, func(b *testing.B) {
			s, _ := newFixture(b, 2000, Config{})
			for i := 0; i < b.N; i++ {
				if _, err := s.cat.Get(id); err != nil {
					b.Fatal(err)
				}
				if !s.cat.Evict(id) {
					b.Fatal("evict failed")
				}
			}
		})
	}
}

// BenchmarkCatalogHit measures the resident fast path: lock, LRU bump,
// pointer return.
func BenchmarkCatalogHit(b *testing.B) {
	s, _ := newFixture(b, 500, Config{})
	if _, err := s.cat.Get("ms"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.cat.Get("ms"); err != nil {
			b.Fatal(err)
		}
	}
}
