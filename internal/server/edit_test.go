package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/store"
)

// newEditFixture builds a server over a fresh corpus directory and also
// returns the catalog and directory, which the edit tests need for
// reload and persistence checks.
func newEditFixture(t testing.TB, words int, cfg Config) (*Server, *catalog.Catalog, string) {
	t.Helper()
	dir := t.TempDir()
	doc, err := corpus.Generate(corpus.DefaultConfig(words))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(filepath.Join(dir, "ms.gdag"), doc); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(cat, cfg), cat, dir
}

func postPath(t testing.TB, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// queryCount runs a count query and returns the numeric result text.
func queryCount(t testing.TB, h http.Handler, doc, query string) string {
	t.Helper()
	w := postPath(t, h, "/query", fmt.Sprintf(`{"doc":%q,"query":%q,"format":"count"}`, doc, query))
	if w.Code != http.StatusOK {
		t.Fatalf("query %s: status %d: %s", query, w.Code, w.Body.String())
	}
	return strings.TrimSpace(w.Body.String())
}

// firstWordSpan extracts the byte span of the first //w result at least
// 4 ASCII-safe bytes wide, giving the tests rune-safe offsets without
// touching document internals.
func firstWordSpan(t testing.TB, h http.Handler) (start, end int) {
	t.Helper()
	w := postPath(t, h, "/query", `{"doc":"ms","query":"//w","limit":50}`)
	if w.Code != http.StatusOK {
		t.Fatalf("//w: status %d: %s", w.Code, w.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil {
		t.Fatal("//w returned no nodes")
	}
	for _, n := range resp.Result.Nodes {
		// Equal byte and rune widths mean every offset inside is a rune
		// boundary, so the veto test may split the span freely.
		byteW := n.ByteSpan.End - n.ByteSpan.Start
		runeW := n.RuneSpan.End - n.RuneSpan.Start
		if byteW >= 4 && byteW == runeW {
			return n.ByteSpan.Start, n.ByteSpan.End
		}
	}
	t.Fatal("no suitable //w span found")
	return 0, 0
}

// TestEditRoundTrip is the acceptance path: edit -> query reflects the
// change -> evict -> reload from the saved store file reproduces the
// edited document byte-identically.
func TestEditRoundTrip(t *testing.T) {
	srv, _, dir := newEditFixture(t, 80, Config{})
	h := srv.Handler()
	lo, hi := firstWordSpan(t, h)

	if got := queryCount(t, h, "ms", "count(//note)"); got != "0" {
		t.Fatalf("pre-edit note count = %s", got)
	}
	body := fmt.Sprintf(`{"ops":[
		{"op":"insert-markup","hierarchy":"annot","tag":"note","start":%d,"end":%d,"attrs":{"resp":"ed","type":"gloss"}},
		{"op":"set-attr","hierarchy":"annot","index":0,"name":"status","value":"draft"},
		{"op":"remove-attr","hierarchy":"annot","index":0,"name":"type"}
	]}`, lo, hi)
	w := postPath(t, h, "/docs/ms/edit", body)
	if w.Code != http.StatusOK {
		t.Fatalf("edit: status %d: %s", w.Code, w.Body.String())
	}
	var resp EditResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 3 {
		t.Fatalf("applied = %d, want 3", resp.Applied)
	}

	// The edit is visible to queries immediately.
	if got := queryCount(t, h, "ms", "count(//note)"); got != "1" {
		t.Fatalf("post-edit note count = %s", got)
	}
	if got := queryCount(t, h, "ms", `count(//note[@status="draft"])`); got != "1" {
		t.Fatalf("post-edit attr query = %s", got)
	}
	if got := queryCount(t, h, "ms", `count(//note[@type])`); got != "0" {
		t.Fatalf("removed attribute still queryable: %s", got)
	}

	// Evict and reload: the saved file must reproduce the edited
	// document. DELETE must succeed — the commit already persisted.
	req := httptest.NewRequest(http.MethodDelete, "/docs/ms", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "true") {
		t.Fatalf("evict: status %d body %s", rec.Code, rec.Body.String())
	}
	if got := queryCount(t, h, "ms", "count(//note)"); got != "1" {
		t.Fatalf("reloaded note count = %s", got)
	}

	// Byte-identical persistence: re-encoding the reloaded document
	// must reproduce the saved file exactly. Saves write v3, so the
	// round-trip re-encodes with EncodeV3.
	saved, err := os.ReadFile(filepath.Join(dir, "ms.gdag"))
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := store.Decode(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.EncodeV3(&buf, reloaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), saved) {
		t.Fatal("saved file does not round-trip byte-identically")
	}
	if got := len(reloaded.ElementsNamed("note")); got != 1 {
		t.Fatalf("saved file holds %d note elements, want 1", got)
	}
}

func TestEditVetoIsAtomicAndStructured(t *testing.T) {
	srv, cat, _ := newEditFixture(t, 80, Config{})
	h := srv.Handler()
	lo, hi := firstWordSpan(t, h)
	if hi-lo < 3 {
		t.Skipf("first word too short (%d bytes)", hi-lo)
	}
	// Op 0 succeeds; op 1 properly overlaps it within the same hierarchy
	// and must veto the whole batch.
	body := fmt.Sprintf(`{"ops":[
		{"op":"insert-markup","hierarchy":"annot","tag":"note","start":%d,"end":%d},
		{"op":"insert-markup","hierarchy":"annot","tag":"note","start":%d,"end":%d}
	]}`, lo, hi-1, lo+1, hi)
	w := postPath(t, h, "/docs/ms/edit", body)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("veto status = %d: %s", w.Code, w.Body.String())
	}
	var resp EditErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Op != 1 {
		t.Fatalf("failing op = %d, want 1", resp.Op)
	}
	if len(resp.Violations) != 1 || resp.Violations[0].Code != "conflict" || resp.Violations[0].Hierarchy != "annot" {
		t.Fatalf("violations = %+v", resp.Violations)
	}
	// Atomic: op 0 must not have survived.
	if got := queryCount(t, h, "ms", "count(//note)"); got != "0" {
		t.Fatalf("vetoed batch left %s notes", got)
	}
	if ds, _ := cat.Doc("ms"); ds.Edits != 0 || ds.Dirty {
		t.Fatalf("vetoed batch counted: edits=%d dirty=%v", ds.Edits, ds.Dirty)
	}
}

func TestEditErrorsAndLimits(t *testing.T) {
	srv, _, _ := newEditFixture(t, 60, Config{MaxOps: 2})
	h := srv.Handler()
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"empty batch", "/docs/ms/edit", `{"ops":[]}`, http.StatusBadRequest},
		{"bad json", "/docs/ms/edit", `{"ops":`, http.StatusBadRequest},
		{"too many ops", "/docs/ms/edit", `{"ops":[{"op":"set-attr"},{"op":"set-attr"},{"op":"set-attr"}]}`, http.StatusBadRequest},
		{"unknown op", "/docs/ms/edit", `{"ops":[{"op":"rename"}]}`, http.StatusUnprocessableEntity},
		{"unknown hierarchy", "/docs/ms/edit", `{"ops":[{"op":"remove-markup","hierarchy":"nope","index":0}]}`, http.StatusUnprocessableEntity},
		{"bad index", "/docs/ms/edit", `{"ops":[{"op":"remove-markup","hierarchy":"words","index":999999}]}`, http.StatusUnprocessableEntity},
		{"missing doc", "/docs/absent/edit", `{"ops":[{"op":"rename"}]}`, http.StatusNotFound},
		{"undo empty history", "/docs/ms/undo", ``, http.StatusConflict},
		{"redo empty history", "/docs/ms/redo", ``, http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postPath(t, h, tc.path, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
		})
	}
	// GET on an action path is rejected.
	if w := get(t, h, "/docs/ms/edit"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET edit status = %d", w.Code)
	}
}

func TestEditReadOnly(t *testing.T) {
	srv, _, _ := newEditFixture(t, 60, Config{ReadOnly: true})
	h := srv.Handler()
	for _, path := range []string{"/docs/ms/edit", "/docs/ms/undo", "/docs/ms/redo"} {
		if w := postPath(t, h, path, `{"ops":[{"op":"rename"}]}`); w.Code != http.StatusForbidden {
			t.Fatalf("%s status = %d, want 403", path, w.Code)
		}
	}
	// Queries still work.
	if got := queryCount(t, h, "ms", "count(//w)"); got == "0" {
		t.Fatal("read-only server cannot query")
	}
}

func TestUndoRedoEndpoints(t *testing.T) {
	srv, _, dir := newEditFixture(t, 60, Config{})
	h := srv.Handler()
	lo, hi := firstWordSpan(t, h)
	body := fmt.Sprintf(`{"ops":[{"op":"insert-markup","hierarchy":"annot","tag":"note","start":%d,"end":%d}]}`, lo, hi)
	if w := postPath(t, h, "/docs/ms/edit", body); w.Code != http.StatusOK {
		t.Fatalf("edit: %d %s", w.Code, w.Body.String())
	}
	if got := queryCount(t, h, "ms", "count(//note)"); got != "1" {
		t.Fatalf("after edit: %s", got)
	}
	if w := postPath(t, h, "/docs/ms/undo", ""); w.Code != http.StatusOK {
		t.Fatalf("undo: %d %s", w.Code, w.Body.String())
	}
	if got := queryCount(t, h, "ms", "count(//note)"); got != "0" {
		t.Fatalf("after undo: %s", got)
	}
	// Undo persisted: the saved file no longer holds the note.
	saved, err := os.ReadFile(filepath.Join(dir, "ms.gdag"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := store.Decode(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.ElementsNamed("note")); got != 0 {
		t.Fatalf("undo not persisted: %d notes in file", got)
	}
	if w := postPath(t, h, "/docs/ms/redo", ""); w.Code != http.StatusOK {
		t.Fatalf("redo: %d %s", w.Code, w.Body.String())
	}
	if got := queryCount(t, h, "ms", "count(//note)"); got != "1" {
		t.Fatalf("after redo: %s", got)
	}
}

// TestConcurrentReadDuringEdit hammers the handler with parallel queries
// while edit batches land on the same document — the read-during-edit
// race test CI runs under -race. Readers must always see a consistent
// snapshot (every response 200) and writers must all commit.
func TestConcurrentReadDuringEdit(t *testing.T) {
	srv, _, _ := newEditFixture(t, 120, Config{})
	h := srv.Handler()
	lo, hi := firstWordSpan(t, h)

	const writers, readers, rounds = 2, 6, 15
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for wr := 0; wr < writers; wr++ {
		wr := wr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				hier := fmt.Sprintf("annot%d", wr)
				body := fmt.Sprintf(`{"ops":[
					{"op":"insert-markup","hierarchy":%q,"tag":"note","start":%d,"end":%d},
					{"op":"set-attr","hierarchy":%q,"index":0,"name":"round","value":"%d"},
					{"op":"remove-markup","hierarchy":%q,"index":0}
				]}`, hier, lo, hi, hier, i, hier)
				w := postPath(t, h, "/docs/ms/edit", body)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("writer %d round %d: %d %s", wr, i, w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*4; i++ {
				w := postPath(t, h, "/query", `{"doc":"ms","query":"//w/ancestor::*","format":"count"}`)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("reader: %d %s", w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All transient notes were removed again.
	if got := queryCount(t, h, "ms", "count(//note)"); got != "0" {
		t.Fatalf("leftover notes: %s", got)
	}
}
