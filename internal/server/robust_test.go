package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/faultfs"
	"repro/internal/store"
)

func TestPanicRecoveryReturns500(t *testing.T) {
	s := New(nil, Config{})
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/query", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("body = %q, want JSON error", w.Body.String())
	}
	if s.panics.Value() != 1 {
		t.Fatalf("panics = %d, want 1", s.panics.Value())
	}
}

func TestPanicRecoveryAfterResponseStarted(t *testing.T) {
	s := New(nil, Config{})
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("mid-body")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/query", nil))
	// The 200 is already on the wire; the middleware must not try to
	// rewrite it, only count and log.
	if w.Code != http.StatusOK || w.Body.String() != "partial" {
		t.Fatalf("response rewritten after start: %d %q", w.Code, w.Body.String())
	}
	if s.panics.Value() != 1 {
		t.Fatalf("panics = %d, want 1", s.panics.Value())
	}
}

func TestPanicRecoveryPassesAbortHandler(t *testing.T) {
	s := New(nil, Config{})
	h := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed; net/http needs it to abort the connection")
		}
		if s.panics.Value() != 0 {
			t.Error("deliberate abort counted as a panic")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/query", nil))
}

func TestGateShedsExcessLoad(t *testing.T) {
	s := New(nil, Config{MaxInflight: 1})
	enter := make(chan struct{})
	release := make(chan struct{})
	h := s.gate(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/query" {
			enter <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	}))

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/query", nil))
	}()
	<-enter // the slot is held

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/query", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request: status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if s.shed.Value() != 1 {
		t.Errorf("shed = %d, want 1", s.shed.Value())
	}

	// Probes bypass the gate: a full server must stay observable.
	for _, path := range []string{"/healthz", "/stats"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Errorf("%s under full gate: status = %d, want 200", path, w.Code)
		}
	}

	close(release)
	<-done
	// The slot was returned; the next gated request is admitted.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/docs", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("after release: status = %d, want 200", w.Code)
	}
}

func TestGateUnlimited(t *testing.T) {
	s := New(nil, Config{MaxInflight: -1})
	if s.inflight != nil {
		t.Fatal("MaxInflight < 0 should disable the gate")
	}
}

// TestDegradedCatalogSurfaces drives the catalog read-only through the
// HTTP surface: a disk whose renames always fail degrades two documents
// (FailThreshold 1, so catalog-wide at 2), after which writes answer
// 503, /healthz reports degraded, and /stats carries the flag — while
// queries keep serving.
func TestDegradedCatalogSurfaces(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"a", "b"} {
		doc, err := corpus.Generate(corpus.DefaultConfig(40))
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save(filepath.Join(dir, id+".gdag"), doc); err != nil {
			t.Fatal(err)
		}
	}
	inj := faultfs.NewInjector(faultfs.OS)
	cat, err := catalog.Open(dir, catalog.Options{
		FS: inj, SaveRetries: 1, FailThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cat, Config{})
	h := srv.Handler()

	// Every .gdag rename fails from here on; WAL appends still work, so
	// the edits themselves are durable and answered 200.
	inj.SetHook(func(op faultfs.Op, path string) error {
		if op == faultfs.OpRename && strings.HasSuffix(path, ".gdag") {
			return errors.New("injected: disk full")
		}
		return nil
	})
	edit := `{"ops":[{"op":"insert-markup","hierarchy":"x","tag":"x","start":0,"end":1}]}`
	for _, id := range []string{"a", "b"} {
		if w := postPath(t, h, "/docs/"+id+"/edit", edit); w.Code != http.StatusOK {
			t.Fatalf("edit %s: status %d: %s", id, w.Code, w.Body.String())
		}
	}
	if !cat.ReadOnly() {
		t.Fatal("catalog did not degrade after 2 failed persists at threshold 1")
	}

	if w := postPath(t, h, "/docs/a/edit", edit); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("edit on degraded catalog: status %d, want 503", w.Code)
	} else if w.Header().Get("Retry-After") == "" {
		t.Error("read-only edit 503 missing Retry-After")
	}
	if w := postPath(t, h, "/docs/a/undo", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("undo on degraded catalog: status %d, want 503", w.Code)
	} else if w.Header().Get("Retry-After") == "" {
		t.Error("read-only undo 503 missing Retry-After")
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var health map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" || health["readOnly"] != true {
		t.Fatalf("healthz = %s, want degraded+readOnly", w.Body.String())
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.ReadOnly || stats.Catalog.SaveFailures == 0 {
		t.Fatalf("stats = %+v, want readOnly with save failures", stats)
	}

	// Reads survive the degradation.
	if n := queryCount(t, h, "a", "//w"); n == "0" {
		t.Error("query on degraded catalog returned no results")
	}
}
