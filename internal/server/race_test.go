//go:build race

package server

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation adds allocations — absolute allocation budgets are
// meaningless under it.
const raceEnabled = true
