// Package baseline implements the comparison system for experiment E4:
// answering overlap queries *without* the GODDAG, the way a practitioner
// must when concurrent markup is stored in a single XML document using
// TEI fragmentation or milestones (paper §2: with those encodings "the
// underlying semantics of the markup and the DOM tree semantics of the
// XML document will differ. In particular, this makes querying such XML
// documents a complicated task").
//
// It provides a classic DOM, and on top of it the two query plans the
// encodings force:
//
//   - fragment join: recover each logical element's text extent by
//     walking the DOM to accumulate character offsets and gluing chx-id
//     fragment chains, then join the two extent lists for overlap;
//   - milestone pairing: locate milestone start/end pairs by document
//     walk, reconstruct extents, then join.
//
// Both plans re-derive, at query time and per query, exactly the offset
// information the GODDAG maintains structurally — which is the source of
// the performance and complexity gap experiment E4 measures.
package baseline

import (
	"fmt"
	"strings"

	"repro/internal/xmlscan"
)

// NodeKind discriminates DOM node types.
type NodeKind int

// DOM node kinds.
const (
	KindElement NodeKind = iota
	KindText
)

// Node is a classic DOM node (element or text).
type Node struct {
	Kind     NodeKind
	Name     string // element name
	Attrs    []xmlscan.Attr
	Text     string // text content for KindText
	Parent   *Node
	Children []*Node
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ParseDOM parses an XML document into a DOM tree and returns its root
// element.
func ParseDOM(data []byte) (*Node, error) {
	toks, err := xmlscan.Tokens(data, xmlscan.Options{CoalesceCDATA: true})
	if err != nil {
		return nil, err
	}
	var root *Node
	var stack []*Node
	for _, tok := range toks {
		switch tok.Kind {
		case xmlscan.KindStartElement:
			n := &Node{Kind: KindElement, Name: tok.Name, Attrs: tok.Attrs}
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			} else if root == nil {
				root = n
			}
			if !tok.SelfClosing {
				stack = append(stack, n)
			}
		case xmlscan.KindEndElement:
			stack = stack[:len(stack)-1]
		case xmlscan.KindText, xmlscan.KindCDATA:
			if tok.Text == "" || len(stack) == 0 {
				continue
			}
			p := stack[len(stack)-1]
			p.Children = append(p.Children, &Node{Kind: KindText, Text: tok.Text, Parent: p})
		}
	}
	if root == nil {
		return nil, fmt.Errorf("baseline: no root element")
	}
	return root, nil
}

// Walk visits every node in document order.
func Walk(n *Node, visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		Walk(c, visit)
	}
}

// ElementsNamed returns all descendant elements with the given tag, in
// document order (the classic //tag query).
func ElementsNamed(root *Node, tag string) []*Node {
	var out []*Node
	Walk(root, func(n *Node) {
		if n.Kind == KindElement && n.Name == tag {
			out = append(out, n)
		}
	})
	return out
}

// TextContent concatenates the text beneath a node.
func TextContent(n *Node) string {
	var b strings.Builder
	Walk(n, func(m *Node) {
		if m.Kind == KindText {
			b.WriteString(m.Text)
		}
	})
	return b.String()
}

// Extent is a logical element's reconstructed content interval. Offsets
// are byte offsets into the decoded character content — the same
// coordinates as the GODDAG's spans, so extents compare directly against
// goddag element spans without any rune counting.
type Extent struct {
	Name  string
	Start int // content byte offset
	End   int
	Node  *Node // representative node (first fragment / start milestone)
}

// Pair is one overlap join result.
type Pair struct {
	A, B Extent
}

// properOverlap mirrors the GODDAG overlapping axis: intersect, neither
// contains the other.
func properOverlap(a, b Extent) bool {
	if a.Start >= b.End || b.Start >= a.End {
		return false
	}
	aInB := b.Start <= a.Start && a.End <= b.End
	bInA := a.Start <= b.Start && b.End <= a.End
	return !aInB && !bInA
}

// extents computes, via a full DOM walk with running character offset,
// the extent of every element named tag, gluing chx-id fragment chains.
// This is the expensive part of the fragment-join plan: the offsets exist
// nowhere in the DOM and must be recomputed per query.
func extents(root *Node, tag string) []Extent {
	type building struct {
		ext   Extent
		index int
	}
	chains := map[string]*building{} // chx-id -> accumulating extent
	var order []*building
	pos := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == KindText {
			pos += len(n.Text)
			return
		}
		var start int
		match := n.Name == tag
		if match {
			start = pos
		}
		for _, c := range n.Children {
			walk(c)
		}
		if match {
			id, fragmented := n.Attr("chx-id")
			if !fragmented {
				b := &building{ext: Extent{Name: tag, Start: start, End: pos, Node: n}}
				order = append(order, b)
				return
			}
			if b, ok := chains[id]; ok {
				// Extend the chain.
				if pos > b.ext.End {
					b.ext.End = pos
				}
				if start < b.ext.Start {
					b.ext.Start = start
				}
			} else {
				b := &building{ext: Extent{Name: tag, Start: start, End: pos, Node: n}}
				chains[id] = b
				order = append(order, b)
			}
		}
	}
	walk(root)
	out := make([]Extent, len(order))
	for i, b := range order {
		out[i] = b.ext
	}
	return out
}

// OverlappingFragmentJoin answers "which tagA elements properly overlap
// which tagB elements" over a fragmentation-encoded document: reconstruct
// both extent lists (gluing fragments), then join.
func OverlappingFragmentJoin(root *Node, tagA, tagB string) []Pair {
	as := extents(root, tagA)
	bs := extents(root, tagB)
	return joinOverlaps(as, bs)
}

// milestoneExtents reconstructs extents of logical tag elements encoded
// as chx-s/chx-e milestone pairs, by document walk with running offset.
func milestoneExtents(root *Node, tag string) []Extent {
	open := map[string]*Extent{}
	var order []*Extent
	pos := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == KindText {
			pos += len(n.Text)
			return
		}
		if n.Name == tag {
			if id, ok := n.Attr("chx-s"); ok {
				e := &Extent{Name: tag, Start: pos, End: -1, Node: n}
				open[id] = e
				order = append(order, e)
			} else if id, ok := n.Attr("chx-e"); ok {
				if e := open[id]; e != nil {
					e.End = pos
					delete(open, id)
				}
			} else {
				// Structural (dominant-hierarchy) element.
				start := pos
				for _, c := range n.Children {
					walk(c)
				}
				order = append(order, &Extent{Name: tag, Start: start, End: pos, Node: n})
				return
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	var out []Extent
	for _, e := range order {
		if e.End >= e.Start {
			out = append(out, *e)
		}
	}
	return out
}

// OverlappingMilestonePair answers the overlap query over a
// milestone-encoded document: pair up chx-s/chx-e milestones by document
// walk, then join extents.
func OverlappingMilestonePair(root *Node, tagA, tagB string) []Pair {
	as := milestoneExtents(root, tagA)
	bs := milestoneExtents(root, tagB)
	return joinOverlaps(as, bs)
}

// joinOverlaps is the pairwise overlap join; sorted-sweep over starts
// keeps it near-linear when overlaps are sparse.
func joinOverlaps(as, bs []Extent) []Pair {
	var out []Pair
	j := 0
	for _, a := range as {
		// Advance past b's that end before a starts.
		for j < len(bs) && bs[j].End <= a.Start {
			j++
		}
		for k := j; k < len(bs) && bs[k].Start < a.End; k++ {
			if properOverlap(a, bs[k]) {
				out = append(out, Pair{A: a, B: bs[k]})
			}
		}
	}
	return out
}

// CountDescendants returns the number of descendant elements named tag
// beneath each element named under (a representative structural query for
// the baseline).
func CountDescendants(root *Node, under, tag string) map[*Node]int {
	out := map[*Node]int{}
	for _, u := range ElementsNamed(root, under) {
		out[u] = len(ElementsNamed(u, tag))
	}
	return out
}
