package baseline

import (
	"testing"

	"repro/internal/drivers"
	"repro/internal/sacx"
	"repro/internal/xpath"
)

func fig1Doc(t *testing.T) []sacx.Source {
	t.Helper()
	return []sacx.Source{
		{Hierarchy: "physical", Data: []byte(`<r><line n="1">swa hwæt swa</line><line n="2"> he us sægde</line></r>`)},
		{Hierarchy: "words", Data: []byte(`<r><w>swa</w> <w>hwæt</w> <w>swa</w> <w>he</w> <w>us</w> <w>sægde</w></r>`)},
		{Hierarchy: "damage", Data: []byte(`<r>swa hw<dmg type="stain">æt sw</dmg>a he us sægde</r>`)},
	}
}

func TestParseDOM(t *testing.T) {
	root, err := ParseDOM([]byte(`<r><a x="1">hi <b>there</b></a></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "r" || len(root.Children) != 1 {
		t.Fatalf("root = %+v", root)
	}
	a := root.Children[0]
	if a.Name != "a" {
		t.Fatalf("a = %+v", a)
	}
	if v, ok := a.Attr("x"); !ok || v != "1" {
		t.Errorf("a/@x = %q", v)
	}
	if _, ok := a.Attr("zzz"); ok {
		t.Error("zzz should be absent")
	}
	if TextContent(a) != "hi there" {
		t.Errorf("text = %q", TextContent(a))
	}
	if a.Children[1].Parent != a {
		t.Error("parent link")
	}
}

func TestParseDOMErrors(t *testing.T) {
	if _, err := ParseDOM([]byte(`<r>`)); err == nil {
		t.Error("unclosed root should error")
	}
}

func TestElementsNamed(t *testing.T) {
	root, _ := ParseDOM([]byte(`<r><w>a</w><s><w>b</w></s><w>c</w></r>`))
	ws := ElementsNamed(root, "w")
	if len(ws) != 3 {
		t.Fatalf("w count = %d", len(ws))
	}
	if TextContent(ws[1]) != "b" {
		t.Errorf("order wrong: %q", TextContent(ws[1]))
	}
}

func TestFragmentJoinMatchesGODDAG(t *testing.T) {
	srcs := fig1Doc(t)
	doc, err := sacx.Build(srcs)
	if err != nil {
		t.Fatal(err)
	}
	// GODDAG answer.
	got, err := xpath.Select(doc, "//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	// Baseline answer over the fragmentation encoding.
	enc, err := drivers.EncodeFragmentation(doc, drivers.EncodeOptions{Dominant: "physical"})
	if err != nil {
		t.Fatal(err)
	}
	dom, err := ParseDOM(enc)
	if err != nil {
		t.Fatal(err)
	}
	pairs := OverlappingFragmentJoin(dom, "w", "dmg")
	if len(pairs) != len(got) {
		t.Errorf("fragment join found %d overlaps, GODDAG %d\n%s", len(pairs), len(got), enc)
	}
	for _, p := range pairs {
		if p.A.Name != "w" || p.B.Name != "dmg" {
			t.Errorf("pair names: %+v", p)
		}
	}
}

func TestMilestonePairMatchesGODDAG(t *testing.T) {
	srcs := fig1Doc(t)
	doc, err := sacx.Build(srcs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := xpath.Select(doc, "//dmg/overlapping::w")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := drivers.EncodeMilestones(doc, drivers.EncodeOptions{Dominant: "physical"})
	if err != nil {
		t.Fatal(err)
	}
	dom, err := ParseDOM(enc)
	if err != nil {
		t.Fatal(err)
	}
	pairs := OverlappingMilestonePair(dom, "w", "dmg")
	if len(pairs) != len(got) {
		t.Errorf("milestone pair found %d overlaps, GODDAG %d\n%s", len(pairs), len(got), enc)
	}
}

func TestExtentsGluesFragments(t *testing.T) {
	// b is fragmented into two parts with a shared chx-id.
	src := `<r><a>one <b chx-id="7" chx-part="I">two</b></a><a><b chx-id="7" chx-part="F"> three</b> four</a></r>`
	root, err := ParseDOM([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	es := extents(root, "b")
	if len(es) != 1 {
		t.Fatalf("extents = %+v", es)
	}
	// "one two three four": b covers "two three" = [4, 13).
	if es[0].Start != 4 || es[0].End != 13 {
		t.Errorf("b extent = [%d,%d), want [4,13)", es[0].Start, es[0].End)
	}
}

func TestMilestoneExtents(t *testing.T) {
	src := `<r>ab<w chx-s="words.0"/>cd<w chx-e="words.0"/>ef</r>`
	root, err := ParseDOM([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	es := milestoneExtents(root, "w")
	if len(es) != 1 || es[0].Start != 2 || es[0].End != 4 {
		t.Errorf("extents = %+v", es)
	}
}

func TestProperOverlapSemantics(t *testing.T) {
	mk := func(s, e int) Extent { return Extent{Start: s, End: e} }
	cases := []struct {
		a, b Extent
		want bool
	}{
		{mk(0, 5), mk(3, 8), true},
		{mk(0, 10), mk(3, 8), false}, // containment
		{mk(0, 5), mk(5, 8), false},  // adjacent
		{mk(0, 5), mk(0, 5), false},  // equal
	}
	for _, c := range cases {
		if got := properOverlap(c.a, c.b); got != c.want {
			t.Errorf("properOverlap(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestCountDescendants(t *testing.T) {
	root, _ := ParseDOM([]byte(`<r><s><w>a</w><w>b</w></s><s><w>c</w></s></r>`))
	counts := CountDescendants(root, "s", "w")
	total := 0
	for _, c := range counts {
		total += c
	}
	if len(counts) != 2 || total != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestJoinOverlapsSweep(t *testing.T) {
	// Many non-overlapping extents: join must not produce false pairs.
	var as, bs []Extent
	for i := 0; i < 100; i++ {
		as = append(as, Extent{Start: i * 10, End: i*10 + 4})
		bs = append(bs, Extent{Start: i*10 + 4, End: i*10 + 8})
	}
	if pairs := joinOverlaps(as, bs); len(pairs) != 0 {
		t.Errorf("false pairs: %d", len(pairs))
	}
	// Shifted: every a overlaps exactly one b.
	bs = bs[:0]
	for i := 0; i < 100; i++ {
		bs = append(bs, Extent{Start: i*10 + 2, End: i*10 + 6})
	}
	if pairs := joinOverlaps(as, bs); len(pairs) != 100 {
		t.Errorf("pairs = %d, want 100", len(pairs))
	}
}
