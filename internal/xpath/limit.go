package xpath

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the request-lifecycle seam of the evaluator: a Limiter
// carries one evaluation's cancellation context and resource budget and
// is consulted at amortized checkpoints — every visited node increments
// a counter, and every checkInterval visits the context and wall clock
// are actually polled. The per-node cost is therefore a few arithmetic
// operations (or a single nil check when no limits apply), while a
// cancelled or over-budget evaluation still stops within at most
// checkInterval node visits of the trigger.

// checkInterval is the amortization grain of the cooperative
// checkpoints: ctx.Err() and the wall clock are consulted once per this
// many visited nodes.
const checkInterval = 1024

// ErrBudgetExceeded is the sentinel matched (via errors.Is) by every
// budget exhaustion, whichever dimension tripped. Context cancellation
// is NOT a budget error: a cancelled or expired context surfaces as
// context.Canceled / context.DeadlineExceeded so callers can tell "the
// client gave up" from "the query is too expensive".
var ErrBudgetExceeded = errors.New("evaluation budget exceeded")

// Budget bounds one evaluation's resources. The zero value means
// unlimited.
type Budget struct {
	// MaxVisited caps the number of nodes the evaluation may visit —
	// candidates enumerated by axis steps, expressions evaluated, nodes
	// pulled from streams — before it aborts with a BudgetError.
	MaxVisited int
	// MaxTime caps the evaluation's wall-clock time, checked at the
	// same amortized checkpoints. Callers with a context deadline
	// usually leave this zero: a deadline reports
	// context.DeadlineExceeded, MaxTime reports a BudgetError.
	MaxTime time.Duration
}

func (b Budget) unlimited() bool { return b.MaxVisited <= 0 && b.MaxTime <= 0 }

// BudgetError reports which budget dimension an evaluation exhausted.
// errors.Is(err, ErrBudgetExceeded) matches it.
type BudgetError struct {
	Kind    string        // "nodes" or "time"
	Visited int64         // nodes visited when the budget tripped
	Limit   int64         // the node cap (Kind "nodes")
	Elapsed time.Duration // run time at the trip (Kind "time")
	Max     time.Duration // the wall-time cap (Kind "time")
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	if e.Kind == "time" {
		return fmt.Sprintf("xpath: evaluation budget exceeded: ran %v of allowed %v", e.Elapsed.Round(time.Millisecond), e.Max)
	}
	return fmt.Sprintf("xpath: evaluation budget exceeded: visited %d of allowed %d nodes", e.Visited, e.Limit)
}

// Is matches the ErrBudgetExceeded sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Limiter is the shared cancellation/budget state of one evaluation —
// or of one request spanning several evaluations (the FLWOR layer runs
// every clause of a query against a single Limiter, so the budget is
// cumulative across tuples). A nil Limiter is valid and unlimited;
// Limiters are single-goroutine state, like the evaluator they ride in.
type Limiter struct {
	ctx        context.Context // nil when cancellation cannot occur
	start      time.Time       // set when maxTime > 0
	maxTime    time.Duration
	maxVisited int64
	visited    int64
	countdown  int64 // visits until the next ctx/clock poll
	err        error // sticky: first trip, returned ever after
}

// NewLimiter builds the limiter for ctx and b, returning nil — the
// unlimited limiter — when ctx can never be cancelled and b is zero, so
// limit-free evaluations pay only a nil check per visit.
func NewLimiter(ctx context.Context, b Budget) *Limiter {
	hasCtx := ctx != nil && ctx.Done() != nil
	if !hasCtx && b.unlimited() {
		return nil
	}
	l := &Limiter{maxVisited: int64(b.MaxVisited), maxTime: b.MaxTime, countdown: checkInterval}
	if hasCtx {
		l.ctx = ctx
	}
	if b.MaxTime > 0 {
		l.start = time.Now()
	}
	// Pre-poll: a context that is already over makes the limiter start
	// tripped, so even an evaluation too small to reach its first
	// checkpoint refuses to run (entry points check Err before work).
	if l.ctx != nil {
		if err := l.ctx.Err(); err != nil {
			l.err = err
		}
	}
	return l
}

// Visit records n more visited nodes and returns the evaluation's fate:
// nil to continue, or the sticky cancellation/budget error to unwind
// with. The context and wall clock are polled only every checkInterval
// visits; the node cap is exact.
func (l *Limiter) Visit(n int) error {
	if l == nil {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	l.visited += int64(n)
	if l.maxVisited > 0 && l.visited > l.maxVisited {
		l.err = &BudgetError{Kind: "nodes", Visited: l.visited, Limit: l.maxVisited}
		return l.err
	}
	l.countdown -= int64(n)
	if l.countdown > 0 {
		return nil
	}
	l.countdown = checkInterval
	return l.poll()
}

// poll is the slow path of Visit: consult the context and wall clock.
func (l *Limiter) poll() error {
	if l.ctx != nil {
		if err := l.ctx.Err(); err != nil {
			l.err = err
			return err
		}
	}
	if l.maxTime > 0 {
		if el := time.Since(l.start); el > l.maxTime {
			l.err = &BudgetError{Kind: "time", Visited: l.visited, Elapsed: el, Max: l.maxTime}
			return l.err
		}
	}
	return nil
}

// Visited returns the number of nodes visited so far.
func (l *Limiter) Visited() int64 {
	if l == nil {
		return 0
	}
	return l.visited
}

// Err returns the sticky cancellation/budget error, nil while the
// evaluation may continue.
func (l *Limiter) Err() error {
	if l == nil {
		return nil
	}
	return l.err
}
