package xpath

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/goddag"
)

// compileReference compiles a query with all plan rewrites disabled.
func compileReference(t *testing.T, query string) *Query {
	t.Helper()
	toks, err := lex(query)
	if err != nil {
		t.Fatal(err)
	}
	p := &parser{query: query, toks: toks, noOpt: true}
	e, err := p.parseExpr()
	if err != nil {
		t.Fatal(err)
	}
	if p.peek().kind != tokEOF {
		t.Fatalf("trailing input in %q", query)
	}
	return &Query{source: query, root: e}
}

// randomDoc builds a multi-hierarchy document with random (per-hierarchy
// conflict-free) markup for differential testing.
func randomDoc(seed int64) *goddag.Document {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"swa", "hwaet", "he", "us", "saegde", "wisdom", "gemynd"}
	var sb strings.Builder
	for i := 0; i < 30; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(words[rng.Intn(len(words))])
	}
	d := goddag.New("r", sb.String())
	n := d.Content().Len()
	tags := []string{"a", "b", "c"}
	for hi := 0; hi < 3; hi++ {
		h := d.AddHierarchy(string(rune('p' + hi)))
		lastEnd := 0
		for k := 0; k < 10; k++ {
			lo := lastEnd + rng.Intn(6)
			span := document.NewSpan(lo, lo+1+rng.Intn(9))
			if span.End > n {
				break
			}
			if _, err := d.InsertElement(h, tags[rng.Intn(len(tags))], nil, span); err != nil {
				panic(err)
			}
			lastEnd = span.End
		}
	}
	return d
}

// TestFastPathsAgreeWithReference evaluates a battery of queries on
// random documents four ways — optimized/reference plans × fast/slow
// step evaluation — and demands identical node-sets.
func TestFastPathsAgreeWithReference(t *testing.T) {
	queries := []string{
		"//a",
		"//*",
		"//a/overlapping::*",
		"//b/overlapping::a",
		"//a/covering::*",
		"//a/covered::node()",
		"/a",
		"/*",
		"//a/following::b",
		"//a/preceding::*",
		"//c/..",
		"//a/text()",
		"//node()",
		"//text()",
		"//a[2]",
		"//a[overlaps(//b)]",
	}
	for seed := int64(1); seed <= 10; seed++ {
		doc := randomDoc(seed)
		for _, qs := range queries {
			optimized := MustCompile(qs)
			reference := compileReference(t, qs)
			var results [4][]goddag.Node
			for i, run := range []struct {
				q    *Query
				opts Options
			}{
				{optimized, Options{}},
				{optimized, Options{NoFastPaths: true}},
				{reference, Options{NoFastPaths: true}},
				{reference, Options{OverlapByWalk: true, NoFastPaths: true}},
			} {
				v, err := run.q.EvalWithOptions(doc, run.opts)
				if err != nil {
					t.Fatalf("seed %d %q variant %d: %v", seed, qs, i, err)
				}
				results[i] = v.Nodes()
			}
			for i := 1; i < 4; i++ {
				if !sameNodes(results[0], results[i]) {
					t.Errorf("seed %d %q: variant %d differs: %v vs %v",
						seed, qs, i, nodeNames(results[0]), nodeNames(results[i]))
				}
			}
		}
	}
}

func sameNodes(a, b []goddag.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !goddag.NodesEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func nodeNames(ns []goddag.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		switch v := n.(type) {
		case *goddag.Element:
			out[i] = v.String()
		case goddag.Leaf:
			out[i] = "leaf" + v.Span().String()
		default:
			out[i] = "root"
		}
	}
	return out
}

// TestScalarQueriesAgree runs scalar-result queries through both plans.
func TestScalarQueriesAgree(t *testing.T) {
	queries := []string{
		"count(//a)",
		"count(//a/overlapping::*)",
		"count(//node())",
		"string(//b)",
		"count(//a | //b)",
	}
	for seed := int64(1); seed <= 5; seed++ {
		doc := randomDoc(seed)
		for _, qs := range queries {
			v1, err := MustCompile(qs).Eval(doc)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := compileReference(t, qs).EvalWithOptions(doc, Options{NoFastPaths: true})
			if err != nil {
				t.Fatal(err)
			}
			if v1.String() != v2.String() {
				t.Errorf("seed %d %q: %q vs %q", seed, qs, v1.String(), v2.String())
			}
		}
	}
}
