package xpath

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/goddag"
)

// axisCatalogQueries exercises every axis in the catalog (standard XPath
// re-defined over GODDAG plus the concurrent-markup extensions), with
// name, *, node() and text() tests, positional and value predicates, and
// unions. Tags that a small-h configuration lacks simply produce empty
// node-sets — those must agree between the evaluators too.
var axisCatalogQueries = []string{
	// self
	"//w/self::*", "//w/self::node()", "//mark/self::mark",
	// child
	"/line", "/child::*", "//s/w", "//s/child::node()", "//page/child::line",
	// descendant / descendant-or-self
	"//w", "//*", "//node()", "//text()",
	"//page/descendant::w", "//s/descendant::node()",
	"//s/descendant-or-self::*", "//page/descendant-or-self::node()",
	// parent / ancestor / ancestor-or-self
	"//w/..", "//w/parent::*", "//dmg/ancestor::*", "//w/ancestor::node()",
	"//dmg/ancestor-or-self::*",
	// sibling axes
	"//w/following-sibling::*", "//line/following-sibling::node()",
	"//w/preceding-sibling::*", "//line/preceding-sibling::node()",
	// following / preceding (content-extent order, incl. milestones)
	"//res/following::w", "//dmg/following::node()", "//mark/following::w",
	"//res/preceding::w", "//dmg/preceding::node()", "//mark/preceding::*",
	// overlap family
	"//dmg/overlapping::w", "//dmg/overlapping::node()", "//line/overlapping::*",
	"//dmg/overlapping-left::*", "//dmg/overlapping-right::w",
	// covering / covered
	"//w/covering::*", "//dmg/covering::node()", "//mark/covering::*",
	"//line/covered::w", "//s/covered::node()", "//line/covered::mark",
	// predicates (positional semantics are per origin) and unions
	"//w[2]", "//s/w[3]", "//line/covered::w[2]", "//res/following::w[1]",
	"//w[@n='5']", "//w | //line", "//dmg/overlapping::w | //res",
}

// gridDoc generates one corpus configuration and decorates it with a
// hierarchy of milestones (empty elements) at rune-safe positions —
// content start and end plus existing element borders — so the
// empty-span paths of every axis are exercised.
func gridDoc(t *testing.T, hierarchies int, density float64, vocab []string) *goddag.Document {
	t.Helper()
	cfg := corpus.DefaultConfig(100)
	cfg.Hierarchies = hierarchies
	cfg.OverlapDensity = density
	cfg.Vocabulary = vocab
	doc, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	marks := doc.AddHierarchy("marks")
	positions := []int{0, doc.Content().Len()}
	if els := doc.Elements(); len(els) > 0 {
		positions = append(positions,
			els[0].Span().End,
			els[len(els)/2].Span().Start,
			els[len(els)-1].Span().End)
	}
	for _, p := range positions {
		if _, err := doc.InsertElement(marks, "mark", nil, document.NewSpan(p, p)); err != nil {
			t.Fatal(err)
		}
	}
	return doc
}

// TestAxisCatalogAgreesAcrossGrid runs the axis-catalog battery over the
// corpus grid — hierarchies 1..8 × overlap densities × default and
// multibyte vocabularies — and demands that the ordinal/merge evaluator,
// with and without fast paths, and the reference plan (no step rewrites)
// produce identical node-sets, query by query.
func TestAxisCatalogAgreesAcrossGrid(t *testing.T) {
	vocabs := map[string][]string{"default": nil, "multibyte": corpus.MultibyteVocabulary}
	for vn, vocab := range vocabs {
		for h := 1; h <= 8; h++ {
			for _, density := range []float64{0.1, 0.9} {
				t.Run(fmt.Sprintf("%s/h=%d/density=%.1f", vn, h, density), func(t *testing.T) {
					doc := gridDoc(t, h, density, vocab)
					for _, qs := range axisCatalogQueries {
						optimized := MustCompile(qs)
						reference := compileReference(t, qs)
						var results [3][]goddag.Node
						for i, run := range []struct {
							q    *Query
							opts Options
						}{
							{optimized, Options{}},
							{optimized, Options{NoFastPaths: true}},
							{reference, Options{NoFastPaths: true}},
						} {
							v, err := run.q.EvalWithOptions(doc, run.opts)
							if err != nil {
								t.Fatalf("%q variant %d: %v", qs, i, err)
							}
							results[i] = v.Nodes()
						}
						for i := 1; i < len(results); i++ {
							if !sameNodes(results[0], results[i]) {
								t.Errorf("%q: variant %d differs:\n  fast: %v\n  ref:  %v",
									qs, i, nodeNames(results[0]), nodeNames(results[i]))
							}
						}
					}
				})
			}
		}
	}
}

// TestAttributeAxisAgreesAcrossGrid covers the attribute axis of the
// catalog, whose results are attribute sets rather than nodes.
func TestAttributeAxisAgreesAcrossGrid(t *testing.T) {
	for h := 1; h <= 8; h += 3 {
		doc := gridDoc(t, h, 0.5, nil)
		for _, qs := range []string{"//w/@n", "//line/@*", "//page/@n", "//w/@missing"} {
			v1, err := MustCompile(qs).EvalWithOptions(doc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			v2, err := compileReference(t, qs).EvalWithOptions(doc, Options{NoFastPaths: true})
			if err != nil {
				t.Fatal(err)
			}
			a1, a2 := v1.Attrs(), v2.Attrs()
			if len(a1) != len(a2) {
				t.Fatalf("h=%d %q: %d vs %d attrs", h, qs, len(a1), len(a2))
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("h=%d %q: attr %d differs: %+v vs %+v", h, qs, i, a1[i], a2[i])
				}
			}
		}
	}
}

// TestConcurrentEval evaluates a battery of queries from many goroutines
// against one freshly built document, so the lazily built caches
// (element list, span index, ordinals, name index) are first constructed
// under contention. Run under -race in CI; every goroutine must also see
// identical results.
func TestConcurrentEval(t *testing.T) {
	doc := gridDoc(t, 6, 0.5, nil)
	queries := []string{
		"//w", "//dmg/overlapping::w", "//res/following::w", "//line/covered::node()",
		"//w/ancestor::*", "//s/w[3]", "//w | //line", "count(//w)",
	}
	compiled := make([]*Query, len(queries))
	for i, qs := range queries {
		compiled[i] = MustCompile(qs)
	}
	const goroutines = 8
	results := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, len(compiled))
			for i, q := range compiled {
				v, err := q.Eval(doc)
				if err != nil {
					out[i] = "error: " + err.Error()
					continue
				}
				if v.IsNodeSet() {
					out[i] = fmt.Sprint(nodeNames(v.Nodes()))
				} else {
					out[i] = v.String()
				}
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d query %q: %s vs %s", g, queries[i], results[g][i], results[0][i])
			}
		}
	}
}
