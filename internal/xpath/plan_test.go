package xpath

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/goddag"
)

// plannerQueries is the differential battery for the plan layer: shapes
// the planner streams (bucket scans, predicate pushdown, count/exists
// clamps, reversed overlap semi-joins), shapes it must recognize and
// decline (positional predicates under '//', last() in a later stage),
// and empty-bucket edge cases. Every query must produce identical
// results with the planner on, the planner off, all fast paths off, and
// the reference (unoptimized) compilation.
var plannerQueries = []string{
	// bare bucket scans, incl. a tag the corpus lacks
	"//w", "//line", "//s", "//nosuch",
	// explicit single-step descendant scans with positional pushdown
	"/descendant::w[2]", "/descendant::w[position()<5]", "/descendant::w[last()]",
	"/descendant::w[position()>2][3]", "/descendant::w[2][last()]",
	// collapsed '//name[preds]' pushdown: static-boolean predicates only
	"//w[@n='5']", "//w[@n='5' or @n='7']", "//w[not(@n='5')]",
	"//w[starts-with(@n, '1')]",
	// positional under '//' must NOT push down (per-parent positions)
	"//w[2]", "//s/w[3]",
	// overlap semi-joins, both drive directions and empty sides
	"//dmg/overlapping::w", "//w/overlapping::dmg", "//w/overlapping::*",
	"//line/overlapping::w", "//mark/overlapping::w", "//w/overlapping::mark",
	"//nosuch/overlapping::w", "//w/overlapping::nosuch",
}

// plannerScalarQueries are the count/exists clamp forms; scalar results
// must agree across all evaluator configurations.
var plannerScalarQueries = []string{
	"count(//w)", "count(//w[@n='5'])", "count(//nosuch)",
	"count(/descendant::w[position()<5])",
	"count(//w/overlapping::dmg)", "count(//dmg/overlapping::w)",
	"boolean(//w)", "boolean(//nosuch)", "boolean(//w/overlapping::dmg)",
	"not(//w)", "not(//nosuch)", "not(//w[@n='5'])",
}

// planConfigs are the evaluator configurations a planner-equivalence
// test compares: full planner, planner ablated, everything ablated.
var planConfigs = []struct {
	name string
	opts Options
}{
	{"planner", Options{}},
	{"no-planner", Options{NoPlanner: true}},
	{"no-fastpaths", Options{NoFastPaths: true}},
}

// collectStream drains a stream into a node slice through the lazy
// contract, checking the scalar/node-set split on the way.
func collectStream(t *testing.T, q *Query, doc *goddag.Document, opts Options) []goddag.Node {
	t.Helper()
	st, err := q.StreamWithOptions(doc, opts)
	if err != nil {
		t.Fatalf("stream %q: %v", q.String(), err)
	}
	defer st.Close()
	if !st.IsNodeSet() {
		t.Fatalf("stream %q: expected node-set", q.String())
	}
	var out []goddag.Node
	for {
		n, err := st.Next()
		if err != nil {
			t.Fatalf("stream %q: %v", q.String(), err)
		}
		if n == nil {
			return out
		}
		out = append(out, n)
	}
}

// TestPlannerAgreesAcrossGrid runs the planner battery over the corpus
// grid — hierarchies × overlap densities × default and multibyte
// vocabularies — and demands byte-identical node-sets from the planned
// evaluator, the unplanned evaluator, the fast-path-free evaluator, the
// reference compilation, and the streaming API (full drain, first-k
// clamp, and Count).
func TestPlannerAgreesAcrossGrid(t *testing.T) {
	vocabs := map[string][]string{"default": nil, "multibyte": corpus.MultibyteVocabulary}
	for vn, vocab := range vocabs {
		for _, h := range []int{1, 3, 6, 8} {
			for _, density := range []float64{0.1, 0.9} {
				t.Run(fmt.Sprintf("%s/h=%d/density=%.1f", vn, h, density), func(t *testing.T) {
					doc := gridDoc(t, h, density, vocab)
					for _, qs := range plannerQueries {
						q := MustCompile(qs)
						reference := compileReference(t, qs)
						want, err := reference.EvalWithOptions(doc, Options{NoFastPaths: true})
						if err != nil {
							t.Fatalf("%q reference: %v", qs, err)
						}
						wantNodes := want.Nodes()
						for _, cfg := range planConfigs {
							v, err := q.EvalWithOptions(doc, cfg.opts)
							if err != nil {
								t.Fatalf("%q %s: %v", qs, cfg.name, err)
							}
							if !sameNodes(wantNodes, v.Nodes()) {
								t.Errorf("%q %s eval differs:\n  got:  %v\n  want: %v",
									qs, cfg.name, nodeNames(v.Nodes()), nodeNames(wantNodes))
							}
							streamed := collectStream(t, q, doc, cfg.opts)
							if !sameNodes(wantNodes, streamed) {
								t.Errorf("%q %s stream differs:\n  got:  %v\n  want: %v",
									qs, cfg.name, nodeNames(streamed), nodeNames(wantNodes))
							}
						}
						// Limit clamp: the first k streamed nodes are the
						// first k reference nodes, no more pulled.
						for _, k := range []int{0, 1, 3} {
							st, err := q.Stream(doc)
							if err != nil {
								t.Fatal(err)
							}
							var first []goddag.Node
							for len(first) < k {
								n, err := st.Next()
								if err != nil {
									t.Fatal(err)
								}
								if n == nil {
									break
								}
								first = append(first, n)
							}
							st.Close()
							limit := k
							if limit > len(wantNodes) {
								limit = len(wantNodes)
							}
							if !sameNodes(wantNodes[:limit], first) {
								t.Errorf("%q first-%d differs: %v vs %v",
									qs, k, nodeNames(first), nodeNames(wantNodes[:limit]))
							}
						}
						// Count never materializes but must agree.
						st, err := q.Stream(doc)
						if err != nil {
							t.Fatal(err)
						}
						n, err := st.Count()
						st.Close()
						if err != nil {
							t.Fatal(err)
						}
						if n != len(wantNodes) {
							t.Errorf("%q Count=%d want %d", qs, n, len(wantNodes))
						}
					}
					for _, qs := range plannerScalarQueries {
						q := MustCompile(qs)
						want, err := compileReference(t, qs).EvalWithOptions(doc, Options{NoFastPaths: true})
						if err != nil {
							t.Fatalf("%q reference: %v", qs, err)
						}
						for _, cfg := range planConfigs {
							v, err := q.EvalWithOptions(doc, cfg.opts)
							if err != nil {
								t.Fatalf("%q %s: %v", qs, cfg.name, err)
							}
							if v.String() != want.String() {
								t.Errorf("%q %s: got %s want %s", qs, cfg.name, v.String(), want.String())
							}
							st, err := q.StreamWithOptions(doc, cfg.opts)
							if err != nil {
								t.Fatal(err)
							}
							sv, ok := st.Value()
							st.Close()
							if !ok {
								t.Fatalf("%q %s: stream should be scalar", qs, cfg.name)
							}
							if sv.String() != want.String() {
								t.Errorf("%q %s stream: got %s want %s", qs, cfg.name, sv.String(), want.String())
							}
						}
					}
				})
			}
		}
	}
}

// TestPlanExplainShapes pins the plan classification: which shapes
// stream, which push predicates down, which reverse the overlap join,
// and which fall back — by inspecting the explain lines.
func TestPlanExplainShapes(t *testing.T) {
	doc := gridDoc(t, 4, 0.5, nil)
	cases := []struct {
		query string
		kind  planKind
	}{
		{"//w", planScan},
		{"//w[@n='5']", planScan},
		{"/descendant::w[2]", planScan},
		{"//w[2]", planEval},                    // positional under '//'
		{"/descendant::w[2][last()]", planEval}, // last() in a later stage
		{"//w/overlapping::dmg", planSemiJoin},  // output side rarer? dmg < w
		{"//dmg/overlapping::w", planEval},      // forward drive kept
		{"//nosuch/overlapping::w", planScan},   // empty origin bucket
		{"count(//w)", planCount},
		{"count(//w[@n='5'])", planCount},
		{"boolean(//w)", planExists},
		{"not(//w)", planExists},
		{"count(//w[2])", planEval}, // inner not streamable
		{"//w/../self::*", planEval},
	}
	for _, tc := range cases {
		q := MustCompile(tc.query)
		pl := q.planFor(doc, Options{})
		if pl.kind != tc.kind {
			t.Errorf("%q: plan kind %d, want %d (explain: %v)", tc.query, pl.kind, tc.kind, pl.Explain())
		}
		if len(pl.Explain()) == 0 {
			t.Errorf("%q: empty explain", tc.query)
		}
		// The cached slot must be reused while the document is unchanged.
		if again := q.planFor(doc, Options{}); again != pl {
			t.Errorf("%q: plan not cached", tc.query)
		}
	}
}

// TestPlanCacheInvalidation mutates the document and checks the cached
// plan is re-derived — the new element must be visible through a
// previously planned query.
func TestPlanCacheInvalidation(t *testing.T) {
	doc := gridDoc(t, 2, 0.5, nil)
	q := MustCompile("count(//w)")
	v, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	before := v.Number()
	// Prime the Stream-side plan cache too.
	st, err := q.Stream(doc)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	extra := doc.AddHierarchy("extra")
	if _, err := doc.InsertElement(extra, "w", nil, document.NewSpan(0, 0)); err != nil {
		t.Fatal(err)
	}
	v, err = q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if v.Number() != before+1 {
		t.Fatalf("after insert: count=%v want %v", v.Number(), before+1)
	}
	st, err = q.Stream(doc)
	if err != nil {
		t.Fatal(err)
	}
	sv, ok := st.Value()
	st.Close()
	if !ok || sv.Number() != before+1 {
		t.Fatalf("after insert: stream count=%v want %v", sv.Number(), before+1)
	}
}

// TestConcurrentStream exercises the pooled evaluators and the shared
// plan slot from many goroutines against one document. Run under -race
// in CI; every goroutine must see identical results.
func TestConcurrentStream(t *testing.T) {
	doc := gridDoc(t, 6, 0.5, nil)
	queries := []string{
		"//w", "//w[@n='5']", "//w/overlapping::dmg", "//dmg/overlapping::w",
		"count(//w)", "not(//nosuch)", "/descendant::w[position()<7]",
	}
	compiled := make([]*Query, len(queries))
	for i, qs := range queries {
		compiled[i] = MustCompile(qs)
	}
	const goroutines = 8
	results := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, len(compiled))
			for i, q := range compiled {
				st, err := q.Stream(doc)
				if err != nil {
					out[i] = "error: " + err.Error()
					continue
				}
				if v, ok := st.Value(); ok {
					out[i] = v.String()
				} else {
					var names []string
					for {
						n, err := st.Next()
						if err != nil || n == nil {
							break
						}
						names = append(names, nodeName(n))
					}
					out[i] = fmt.Sprint(names)
				}
				st.Close()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d query %q: %s vs %s", g, queries[i], results[g][i], results[0][i])
			}
		}
	}
}
