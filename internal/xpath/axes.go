package xpath

import (
	"sort"

	"repro/internal/document"
	"repro/internal/goddag"
)

// axisNodes materializes one axis from one context node, following the
// GODDAG re-definition of XPath axes (paper §4):
//
//   - child/descendant follow the context element's *own* hierarchy tree,
//     with shared leaves as text children; from the root they fan out
//     into every hierarchy.
//   - parent of a leaf is multi-valued: one parent per hierarchy. This is
//     how a query hops from one hierarchy to another ("navigation from
//     one structure to another is done through root node or leaf nodes",
//     paper §3).
//   - following/preceding are defined by content extent: nodes whose span
//     lies entirely after (before) the context span, across hierarchies.
//   - the overlapping/covering/covered axes compare content spans across
//     hierarchies.
func (ev *evaluator) axisNodes(a Axis, n goddag.Node) []goddag.Node {
	doc := ev.doc
	switch a {
	case AxisSelf:
		return []goddag.Node{n}

	case AxisChild:
		return childrenOf(doc, n)

	case AxisDescendant, AxisDescendantOrSelf:
		// Descendants of a node are exactly its subtree elements plus
		// the leaves it dominates; both lists are available pre-sorted,
		// so a merge avoids the recursive walk (which would revisit
		// shared leaves once per hierarchy and need dedup).
		var out []goddag.Node
		if a == AxisDescendantOrSelf {
			out = append(out, n)
		}
		var els []*goddag.Element
		var firstLeaf, lastLeaf int
		switch v := n.(type) {
		case *goddag.Root:
			els = doc.Elements()
			firstLeaf, lastLeaf = 0, doc.NumLeaves()
		case *goddag.Element:
			els = subtreeElements(v)
			firstLeaf, lastLeaf = v.LeafRange()
		default:
			return out
		}
		i, j := 0, firstLeaf
		for i < len(els) || j < lastLeaf {
			switch {
			case i >= len(els):
				out = append(out, doc.Leaf(j))
				j++
			case j >= lastLeaf:
				out = append(out, els[i])
				i++
			case goddag.CompareNodes(els[i], doc.Leaf(j)) <= 0:
				out = append(out, els[i])
				i++
			default:
				out = append(out, doc.Leaf(j))
				j++
			}
		}
		return out

	case AxisParent:
		return parentsOf(doc, n)

	case AxisAncestor, AxisAncestorOrSelf:
		var out []goddag.Node
		if a == AxisAncestorOrSelf {
			out = append(out, n)
		}
		seen := map[any]bool{}
		var up func(m goddag.Node)
		up = func(m goddag.Node) {
			for _, p := range parentsOf(doc, m) {
				id := goddag.NodeID(p)
				if seen[id] {
					continue
				}
				seen[id] = true
				out = append(out, p)
				up(p)
			}
		}
		up(n)
		return out

	case AxisFollowingSibling, AxisPrecedingSibling:
		el, ok := n.(*goddag.Element)
		if !ok {
			return nil // sibling axes are defined for elements only
		}
		var sibs []goddag.Node
		switch p := el.Parent().(type) {
		case *goddag.Element:
			sibs = p.Children()
		case *goddag.Root:
			sibs = p.Children(el.Hierarchy())
		}
		idx := -1
		for i, s := range sibs {
			if goddag.NodesEqual(s, n) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil
		}
		if a == AxisFollowingSibling {
			return sibs[idx+1:]
		}
		rev := make([]goddag.Node, 0, idx)
		for i := idx - 1; i >= 0; i-- {
			rev = append(rev, sibs[i])
		}
		return rev

	case AxisFollowing, AxisPreceding:
		sp := n.Span()
		var out []goddag.Node
		els := doc.Elements()
		if a == AxisFollowing {
			// Elements are sorted by start offset: everything following
			// begins at or after sp.End.
			i := sort.Search(len(els), func(i int) bool { return els[i].Span().Start >= sp.End })
			for _, e := range els[i:] {
				if !goddag.NodesEqual(e, n) && spanAfter(e.Span(), sp) {
					out = append(out, e)
				}
			}
		} else {
			for _, e := range els {
				if e.Span().Start >= sp.Start && !e.Span().IsEmpty() {
					break // can no longer end before sp begins
				}
				if !goddag.NodesEqual(e, n) && spanAfter(sp, e.Span()) {
					out = append(out, e)
				}
			}
		}
		for _, l := range doc.Leaves() {
			ls := l.Span()
			if a == AxisFollowing && spanAfter(ls, sp) {
				out = append(out, l)
			}
			if a == AxisPreceding && spanAfter(sp, ls) {
				out = append(out, l)
			}
		}
		return out

	case AxisOverlapping:
		return ev.overlapAxis(n, overlapAny)
	case AxisOverlappingLeft:
		return ev.overlapAxis(n, overlapLeft)
	case AxisOverlappingRight:
		return ev.overlapAxis(n, overlapRight)

	case AxisCovering:
		sp := n.Span()
		var out []goddag.Node
		if !sp.IsEmpty() {
			// Containment implies intersection, so the interval index
			// supplies the candidates in O(log n + candidates).
			for _, e := range doc.ElementsIntersecting(sp) {
				if !goddag.NodesEqual(e, n) && e.Span().ContainsSpan(sp) {
					out = append(out, e)
				}
			}
			return out
		}
		for _, e := range doc.Elements() {
			if e.Span().Start > sp.Start {
				break // a container must start at or before sp
			}
			if goddag.NodesEqual(e, n) {
				continue
			}
			if e.Span().ContainsSpan(sp) && !e.Span().IsEmpty() {
				out = append(out, e)
			}
		}
		return out

	case AxisCovered:
		sp := n.Span()
		var out []goddag.Node
		for _, e := range doc.Elements() {
			if e.Span().Start > sp.End {
				break // a covered element must start within sp
			}
			if goddag.NodesEqual(e, n) {
				continue
			}
			if sp.ContainsSpan(e.Span()) {
				out = append(out, e)
			}
		}
		for _, l := range doc.Leaves() {
			if sp.ContainsSpan(l.Span()) {
				out = append(out, l)
			}
		}
		return out

	default:
		return nil
	}
}

// subtreeElements returns the same-hierarchy descendants of e in document
// order (pre-order of a tree sorted at every level).
func subtreeElements(e *goddag.Element) []*goddag.Element {
	var out []*goddag.Element
	var walk func(es []*goddag.Element)
	walk = func(es []*goddag.Element) {
		for _, c := range es {
			out = append(out, c)
			walk(c.ChildElements())
		}
	}
	walk(e.ChildElements())
	return out
}

// childrenOf returns a node's children in document order: per-hierarchy
// for elements, the union over hierarchies for the root (deduplicated),
// nothing for leaves.
func childrenOf(doc *goddag.Document, n goddag.Node) []goddag.Node {
	switch v := n.(type) {
	case *goddag.Element:
		return v.Children()
	case *goddag.Root:
		var out []goddag.Node
		seen := map[any]bool{}
		for _, h := range doc.Hierarchies() {
			for _, c := range v.Children(h) {
				id := goddag.NodeID(c)
				if !seen[id] {
					seen[id] = true
					out = append(out, c)
				}
			}
		}
		if len(doc.Hierarchies()) == 0 {
			for _, l := range doc.Leaves() {
				out = append(out, l)
			}
		}
		// The per-hierarchy collection is hierarchy-major; node-set
		// semantics (and positional predicates) require document order.
		sort.SliceStable(out, func(i, j int) bool {
			return goddag.CompareNodes(out[i], out[j]) < 0
		})
		return out
	default:
		return nil
	}
}

// parentsOf returns a node's parents: the single tree parent for an
// element, one parent per hierarchy for a leaf, none for the root.
func parentsOf(doc *goddag.Document, n goddag.Node) []goddag.Node {
	switch v := n.(type) {
	case *goddag.Element:
		return []goddag.Node{v.Parent()}
	case goddag.Leaf:
		if len(doc.Hierarchies()) == 0 {
			return []goddag.Node{doc.Root()}
		}
		return v.Parents()
	default:
		return nil
	}
}

// spanAfter reports whether a lies entirely after b, with empty spans
// ordered by position.
func spanAfter(a, b document.Span) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.Start >= b.End && a.Start >= b.Start && (a.Start > b.Start || a.Start > b.End)
	}
	return a.Start >= b.End
}

type overlapDir int

const (
	overlapAny overlapDir = iota
	overlapLeft
	overlapRight
)

// overlapAxis finds elements properly overlapping the context node's span.
// The production implementation compares spans (O(1) per candidate, D3);
// with Options.OverlapByWalk it instead walks the GODDAG through shared
// leaves, which visits only connected markup but pays pointer-chasing
// costs — kept as the A2 ablation baseline.
func (ev *evaluator) overlapAxis(n goddag.Node, dir overlapDir) []goddag.Node {
	sp := n.Span()
	match := func(es document.Span) bool {
		switch dir {
		case overlapLeft:
			return es.OverlapsLeft(sp)
		case overlapRight:
			return es.OverlapsRight(sp)
		default:
			return es.Overlaps(sp)
		}
	}
	if !ev.opts.OverlapByWalk {
		// ElementsOverlapping scans the sorted element cache with early
		// termination; directional variants are subsets of it.
		var out []goddag.Node
		for _, e := range ev.doc.ElementsOverlapping(sp) {
			if match(e.Span()) {
				out = append(out, e)
			}
		}
		return out
	}
	// Graph-walk variant: an element overlapping sp must dominate at
	// least one leaf inside sp, so walk sp's leaves, climb to each
	// parent chain, and test.
	if sp.IsEmpty() {
		return nil
	}
	seen := map[any]bool{}
	var out []goddag.Node
	doc := ev.doc
	for pos := sp.Start; pos < sp.End; {
		leaf := doc.LeafAt(pos)
		for _, h := range doc.Hierarchies() {
			node := leaf.Parent(h)
			for {
				el, ok := node.(*goddag.Element)
				if !ok {
					break
				}
				id := goddag.NodeID(el)
				if !seen[id] {
					seen[id] = true
					if match(el.Span()) {
						out = append(out, el)
					}
				}
				node = el.Parent()
			}
		}
		pos = leaf.Span().End
	}
	return ev.dedupSort(out)
}
