package xpath

import (
	"sort"

	"repro/internal/document"
	"repro/internal/goddag"
)

// axisNodes materializes one axis from one context node, following the
// GODDAG re-definition of XPath axes (paper §4):
//
//   - child/descendant follow the context element's *own* hierarchy tree,
//     with shared leaves as text children; from the root they fan out
//     into every hierarchy.
//   - parent of a leaf is multi-valued: one parent per hierarchy. This is
//     how a query hops from one hierarchy to another ("navigation from
//     one structure to another is done through root node or leaf nodes",
//     paper §3).
//   - following/preceding are defined by content extent: nodes whose span
//     lies entirely after (before) the context span, across hierarchies.
//   - the overlapping/covering/covered axes compare content spans across
//     hierarchies.
//
// Enumeration leans on the document's ordinal numbering: descendants are
// an O(1) pre-order slice merged with the dominated leaf range by integer
// ordinal, the leaf halves of following/preceding are located by binary
// search instead of full-leaf scans, and visited sets are ordinal bitsets
// instead of maps.
func (ev *evaluator) axisNodes(a Axis, n goddag.Node) []goddag.Node {
	doc := ev.doc
	switch a {
	case AxisSelf:
		return []goddag.Node{n}

	case AxisChild:
		return ev.childrenOf(n)

	case AxisDescendant, AxisDescendantOrSelf:
		// Descendants of a node are exactly its subtree elements plus
		// the leaves it dominates; both lists are available pre-sorted
		// (the subtree as a precomputed pre-order slice), so an ordinal
		// merge avoids the recursive walk (which would revisit shared
		// leaves once per hierarchy and need dedup).
		ord := ev.ordinals()
		var els []*goddag.Element
		var firstLeaf, lastLeaf int
		switch v := n.(type) {
		case *goddag.Root:
			els = doc.Elements()
			firstLeaf, lastLeaf = 0, doc.NumLeaves()
		case *goddag.Element:
			els = ord.Subtree(v)
			firstLeaf, lastLeaf = v.LeafRange()
		default:
			if a == AxisDescendantOrSelf {
				return []goddag.Node{n}
			}
			return nil
		}
		out := make([]goddag.Node, 0, len(els)+(lastLeaf-firstLeaf)+1)
		if a == AxisDescendantOrSelf {
			out = append(out, n)
		}
		i, j := 0, firstLeaf
		for i < len(els) && j < lastLeaf {
			if ord.OfElement(els[i]) < ord.OfLeaf(j) {
				out = append(out, els[i])
				i++
			} else {
				out = append(out, doc.Leaf(j))
				j++
			}
		}
		for ; i < len(els); i++ {
			out = append(out, els[i])
		}
		for ; j < lastLeaf; j++ {
			out = append(out, doc.Leaf(j))
		}
		return out

	case AxisParent:
		return parentsOf(doc, n)

	case AxisAncestor, AxisAncestorOrSelf:
		var out []goddag.Node
		if a == AxisAncestorOrSelf {
			out = append(out, n)
		}
		ord := ev.ordinals()
		seen := ev.acquireSeen()
		var up func(m goddag.Node)
		up = func(m goddag.Node) {
			for _, p := range parentsOf(doc, m) {
				if !seen.add(ord.Of(p)) {
					continue
				}
				out = append(out, p)
				up(p)
			}
		}
		up(n)
		seen.reset()
		return out

	case AxisFollowingSibling, AxisPrecedingSibling:
		el, ok := n.(*goddag.Element)
		if !ok {
			return nil // sibling axes are defined for elements only
		}
		var sibs []goddag.Node
		switch p := el.Parent().(type) {
		case *goddag.Element:
			sibs = p.Children()
		case *goddag.Root:
			sibs = p.Children(el.Hierarchy())
		}
		// The sibling list is in document order, so the context's slot is
		// found by ordinal binary search instead of a linear identity scan.
		ord := ev.ordinals()
		target := ord.OfElement(el)
		idx := sort.Search(len(sibs), func(i int) bool { return ord.Of(sibs[i]) >= target })
		if idx >= len(sibs) || ord.Of(sibs[idx]) != target {
			return nil
		}
		if a == AxisFollowingSibling {
			return sibs[idx+1:]
		}
		rev := make([]goddag.Node, 0, idx)
		for i := idx - 1; i >= 0; i-- {
			rev = append(rev, sibs[i])
		}
		return rev

	case AxisFollowing, AxisPreceding:
		sp := n.Span()
		var out []goddag.Node
		els := doc.Elements()
		if a == AxisFollowing {
			// Elements are sorted by start offset: everything following
			// begins at or after sp.End.
			i := sort.Search(len(els), func(i int) bool { return els[i].Span().Start >= sp.End })
			for _, e := range els[i:] {
				if !goddag.NodesEqual(e, n) && spanAfter(e.Span(), sp) {
					out = append(out, e)
				}
			}
			// Following leaves: the suffix starting at the first leaf not
			// preceding sp (leaves are non-empty, so spanAfter reduces to a
			// start-offset bound).
			bound := sp.End
			if sp.IsEmpty() {
				bound = sp.Start + 1 // strict: a leaf at sp's position does not follow it
			}
			nl := doc.NumLeaves()
			part := doc.Partition()
			j := sort.Search(nl, func(i int) bool { return part.LeafSpan(i).Start >= bound })
			for ; j < nl; j++ {
				out = append(out, doc.Leaf(j))
			}
		} else {
			for _, e := range els {
				if e.Span().Start >= sp.Start && !e.Span().IsEmpty() {
					break // can no longer end before sp begins
				}
				if !goddag.NodesEqual(e, n) && spanAfter(sp, e.Span()) {
					out = append(out, e)
				}
			}
			// Preceding leaves: the prefix ending before sp.Start.
			nl := doc.NumLeaves()
			part := doc.Partition()
			last := sort.Search(nl, func(i int) bool { return part.LeafSpan(i).End > sp.Start })
			for j := 0; j < last; j++ {
				out = append(out, doc.Leaf(j))
			}
		}
		return out

	case AxisOverlapping:
		return ev.overlapAxis(n, overlapAny)
	case AxisOverlappingLeft:
		return ev.overlapAxis(n, overlapLeft)
	case AxisOverlappingRight:
		return ev.overlapAxis(n, overlapRight)

	case AxisCovering:
		sp := n.Span()
		var out []goddag.Node
		if !sp.IsEmpty() {
			// Containment implies intersection, so the interval index
			// supplies the candidates in O(log n + candidates).
			for _, e := range doc.ElementsIntersecting(sp) {
				if !goddag.NodesEqual(e, n) && e.Span().ContainsSpan(sp) {
					out = append(out, e)
				}
			}
			return out
		}
		for _, e := range doc.Elements() {
			if e.Span().Start > sp.Start {
				break // a container must start at or before sp
			}
			if goddag.NodesEqual(e, n) {
				continue
			}
			if e.Span().ContainsSpan(sp) && !e.Span().IsEmpty() {
				out = append(out, e)
			}
		}
		return out

	case AxisCovered:
		sp := n.Span()
		ord := ev.ordinals()
		// Non-empty covered elements intersect sp, so the interval index
		// supplies those candidates; milestones (whose spans never
		// intersect anything) come from the document's empty-element list,
		// merged in by ordinal to preserve document order.
		empties := ord.EmptyElements()
		ei := sort.Search(len(empties), func(i int) bool { return empties[i].Span().Start >= sp.Start })
		var out []goddag.Node
		emitEmpties := func(upto int) { // empties whose ordinal precedes upto
			for ei < len(empties) && empties[ei].Span().Start <= sp.End &&
				(upto < 0 || ord.OfElement(empties[ei]) < upto) {
				e := empties[ei]
				if !goddag.NodesEqual(e, n) && sp.ContainsSpan(e.Span()) {
					out = append(out, e)
				}
				ei++
			}
		}
		for _, e := range doc.ElementsIntersecting(sp) {
			if !sp.ContainsSpan(e.Span()) {
				continue
			}
			emitEmpties(ord.OfElement(e))
			if !goddag.NodesEqual(e, n) {
				out = append(out, e)
			}
		}
		emitEmpties(-1)
		// Covered leaves: the contiguous run fully inside sp.
		nl := doc.NumLeaves()
		part := doc.Partition()
		first := sort.Search(nl, func(i int) bool { return part.LeafSpan(i).Start >= sp.Start })
		for j := first; j < nl; j++ {
			ls := part.LeafSpan(j)
			if ls.End > sp.End {
				break
			}
			out = append(out, doc.Leaf(j))
		}
		return out

	default:
		return nil
	}
}

// childrenOf returns a node's children in document order: per-hierarchy
// for elements, the union over hierarchies for the root (shared leaves
// deduplicated by the ordinal merge), nothing for leaves.
func (ev *evaluator) childrenOf(n goddag.Node) []goddag.Node {
	doc := ev.doc
	switch v := n.(type) {
	case *goddag.Element:
		return v.Children()
	case *goddag.Root:
		hiers := doc.Hierarchies()
		if len(hiers) == 0 {
			out := make([]goddag.Node, 0, doc.NumLeaves())
			for _, l := range doc.Leaves() {
				out = append(out, l)
			}
			return out
		}
		// Each hierarchy's child list is already in document order; the
		// cross-hierarchy union is a k-way merge (leaves shared between
		// hierarchies collapse on equal ordinals).
		lists := make([][]goddag.Node, 0, len(hiers))
		for _, h := range hiers {
			if c := v.Children(h); len(c) != 0 {
				lists = append(lists, c)
			}
		}
		return ev.mergeLists(lists)
	default:
		return nil
	}
}

// parentsOf returns a node's parents: the single tree parent for an
// element, one parent per hierarchy for a leaf, none for the root.
func parentsOf(doc *goddag.Document, n goddag.Node) []goddag.Node {
	switch v := n.(type) {
	case *goddag.Element:
		return []goddag.Node{v.Parent()}
	case goddag.Leaf:
		if len(doc.Hierarchies()) == 0 {
			return []goddag.Node{doc.Root()}
		}
		return v.Parents()
	default:
		return nil
	}
}

// spanAfter reports whether a lies entirely after b, with empty spans
// ordered by position.
func spanAfter(a, b document.Span) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.Start >= b.End && a.Start >= b.Start && (a.Start > b.Start || a.Start > b.End)
	}
	return a.Start >= b.End
}

type overlapDir int

const (
	overlapAny overlapDir = iota
	overlapLeft
	overlapRight
)

// overlapAxis finds elements properly overlapping the context node's span.
// The production implementation compares spans (O(1) per candidate, D3);
// with Options.OverlapByWalk it instead walks the GODDAG through shared
// leaves, which visits only connected markup but pays pointer-chasing
// costs — kept as the A2 ablation baseline.
func (ev *evaluator) overlapAxis(n goddag.Node, dir overlapDir) []goddag.Node {
	sp := n.Span()
	match := func(es document.Span) bool {
		switch dir {
		case overlapLeft:
			return es.OverlapsLeft(sp)
		case overlapRight:
			return es.OverlapsRight(sp)
		default:
			return es.Overlaps(sp)
		}
	}
	if !ev.opts.OverlapByWalk {
		// ElementsOverlapping serves candidates from the interval index
		// with early termination; directional variants are subsets of it.
		var out []goddag.Node
		for _, e := range ev.doc.ElementsOverlapping(sp) {
			if match(e.Span()) {
				out = append(out, e)
			}
		}
		return out
	}
	// Graph-walk variant: an element overlapping sp must dominate at
	// least one leaf inside sp, so walk sp's leaves, climb to each
	// parent chain, and test.
	if sp.IsEmpty() {
		return nil
	}
	ord := ev.ordinals()
	seen := ev.acquireSeen()
	var out []goddag.Node
	doc := ev.doc
	for pos := sp.Start; pos < sp.End; {
		leaf := doc.LeafAt(pos)
		for _, h := range doc.Hierarchies() {
			node := leaf.Parent(h)
			for {
				el, ok := node.(*goddag.Element)
				if !ok {
					break
				}
				if seen.add(ord.OfElement(el)) {
					if match(el.Span()) {
						out = append(out, el)
					}
				}
				node = el.Parent()
			}
		}
		pos = leaf.Span().End
	}
	seen.reset()
	return ev.dedupSort(out)
}
