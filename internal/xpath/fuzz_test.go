package xpath

import (
	"context"
	"testing"

	"repro/internal/sacx"
)

// FuzzParse throws arbitrary bytes at the query compiler and, when they
// compile, evaluates them under a tight node budget against a small
// overlapping document. The contract under attack: hostile input may
// produce a SyntaxError or an evaluation error, never a panic, a hang,
// or a stack overflow (the parser's recursion-depth cap exists for the
// nesting bombs this fuzzer finds).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The E4 axis battery — real queries, mutation fodder.
		"/page", "//line", "//w", "//s/w", "//s/descendant::w",
		"//dmg/overlapping::*", "//dmg/overlapping::w",
		"//res/following::w", "//res/preceding::w",
		"//line/covered::w", "//w/ancestor::*", "//w | //line",
		"count(//dmg/overlapping::w)",
		// Predicates, functions, arithmetic, variables, attributes.
		"//w[count(preceding::w) >= 0]",
		"//w[@lemma = 'swa'][2]",
		"//line/covering::*/@n",
		"concat(name(//w[1]), '-', string(2 div 0))",
		"//w[position() = last()]",
		"-(-(-1)) + 2 * (3 - 4)",
		"$x + 1",
		// Malformed: truncations, stray tokens, nesting.
		"//w[", "((1)", "1 +", "::", "//", "@", "'unterminated",
		"(((((((((1)))))))))",
		"//w[//w[//w[//w[1]]]]",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	doc, err := sacx.Build([]sacx.Source{
		{Hierarchy: "physical", Data: []byte(`<r><line n="1">swa hwæt swa</line><line n="2"> he us sægde</line></r>`)},
		{Hierarchy: "words", Data: []byte(`<r><w>swa</w> <w>hwæt</w> <w>swa</w> <w>he</w> <w>us</w> <w>sægde</w></r>`)},
		{Hierarchy: "damage", Data: []byte(`<r>swa hw<dmg type="stain">æt sw</dmg>a he us sægde</r>`)},
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, src string) {
		q, err := Compile(src)
		if err != nil {
			return // rejected cleanly — the common, correct outcome
		}
		// Evaluate under a budget so an accidentally-expensive but valid
		// expression cannot stall the fuzzer; both result and error are
		// acceptable, crashing is not.
		if _, err := q.EvalContext(context.Background(), doc, Budget{MaxVisited: 50_000}); err != nil {
			return
		}
		// Streams must survive the same input.
		st, err := q.StreamContext(context.Background(), doc, Budget{MaxVisited: 50_000})
		if err != nil {
			return
		}
		defer st.Close()
		for {
			n, err := st.Next()
			if err != nil || n == nil {
				return
			}
		}
	})
}
