package xpath

import (
	"strings"

	"repro/internal/goddag"
)

// evalCall dispatches Extended XPath function calls. The core library
// covers the XPath 1.0 functions used in document-centric querying plus
// the concurrent-markup extensions hierarchy(), overlaps(), span-start()
// and span-end().
func (ev *evaluator) evalCall(c *callExpr, ctx evalCtx) (Value, error) {
	argVals := func(want int) ([]Value, error) {
		if want >= 0 && len(c.args) != want {
			return nil, ev.errorf("%s() takes %d argument(s), got %d", c.name, want, len(c.args))
		}
		out := make([]Value, len(c.args))
		for i, a := range c.args {
			v, err := ev.eval(a, ctx)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	switch c.name {
	case "position":
		if _, err := argVals(0); err != nil {
			return Value{}, err
		}
		return numberValue(float64(ctx.pos)), nil
	case "last":
		if _, err := argVals(0); err != nil {
			return Value{}, err
		}
		return numberValue(float64(ctx.size)), nil
	case "count":
		if len(c.args) == 1 {
			if n, ok, err := ev.plannedCount(c.args[0], ctx); ok || err != nil {
				if err != nil {
					return Value{}, err
				}
				return numberValue(float64(n)), nil
			}
		}
		vs, err := argVals(1)
		if err != nil {
			return Value{}, err
		}
		if !vs[0].IsNodeSet() {
			return Value{}, ev.errorf("count() requires a node-set")
		}
		if vs[0].kind == valAttrs {
			return numberValue(float64(len(vs[0].attrs))), nil
		}
		return numberValue(float64(len(vs[0].nodes))), nil
	case "name", "local-name":
		if len(c.args) == 0 {
			return stringValue(nodeName(ctx.node)), nil
		}
		vs, err := argVals(1)
		if err != nil {
			return Value{}, err
		}
		if !vs[0].IsNodeSet() || len(vs[0].nodes) == 0 {
			return stringValue(""), nil
		}
		return stringValue(nodeName(vs[0].nodes[0])), nil
	case "hierarchy":
		// hierarchy() — the hierarchy name of the context node (empty for
		// the root and for leaves, which belong to all hierarchies);
		// hierarchy(ns) — of the first node in ns.
		node := ctx.node
		if len(c.args) == 1 {
			vs, err := argVals(1)
			if err != nil {
				return Value{}, err
			}
			if !vs[0].IsNodeSet() || len(vs[0].nodes) == 0 {
				return stringValue(""), nil
			}
			node = vs[0].nodes[0]
		} else if len(c.args) > 1 {
			return Value{}, ev.errorf("hierarchy() takes 0 or 1 arguments")
		}
		if el, ok := node.(*goddag.Element); ok {
			return stringValue(el.Hierarchy().Name()), nil
		}
		return stringValue(""), nil
	case "overlaps":
		// overlaps(ns) — true when the context node properly overlaps any
		// node of ns; overlaps(ns1, ns2) — any cross pair overlaps.
		switch len(c.args) {
		case 1:
			vs, err := argVals(1)
			if err != nil {
				return Value{}, err
			}
			if !vs[0].IsNodeSet() {
				return Value{}, ev.errorf("overlaps() requires node-sets")
			}
			sp := ctx.node.Span()
			for _, m := range vs[0].nodes {
				if sp.Overlaps(m.Span()) {
					return boolValue(true), nil
				}
			}
			return boolValue(false), nil
		case 2:
			vs, err := argVals(2)
			if err != nil {
				return Value{}, err
			}
			if !vs[0].IsNodeSet() || !vs[1].IsNodeSet() {
				return Value{}, ev.errorf("overlaps() requires node-sets")
			}
			for _, a := range vs[0].nodes {
				for _, b := range vs[1].nodes {
					if a.Span().Overlaps(b.Span()) {
						return boolValue(true), nil
					}
				}
			}
			return boolValue(false), nil
		default:
			return Value{}, ev.errorf("overlaps() takes 1 or 2 arguments")
		}
	case "span-start", "span-end":
		node := ctx.node
		if len(c.args) == 1 {
			vs, err := argVals(1)
			if err != nil {
				return Value{}, err
			}
			if !vs[0].IsNodeSet() || len(vs[0].nodes) == 0 {
				return numberValue(-1), nil
			}
			node = vs[0].nodes[0]
		}
		// Query results are character positions (the paper's span
		// coordinates); the GODDAG's byte spans convert through the
		// content's memoized byte↔rune index.
		content := node.Document().Content()
		if c.name == "span-start" {
			return numberValue(float64(content.RuneOffset(node.Span().Start))), nil
		}
		return numberValue(float64(content.RuneOffset(node.Span().End))), nil
	case "string":
		if len(c.args) == 0 {
			return stringValue(ctx.node.Text()), nil
		}
		vs, err := argVals(1)
		if err != nil {
			return Value{}, err
		}
		return stringValue(vs[0].String()), nil
	case "number":
		if len(c.args) == 0 {
			return numberValue(stringValue(ctx.node.Text()).Number()), nil
		}
		vs, err := argVals(1)
		if err != nil {
			return Value{}, err
		}
		return numberValue(vs[0].Number()), nil
	case "boolean":
		if len(c.args) == 1 {
			if exists, ok, err := ev.plannedExists(c.args[0], ctx); ok || err != nil {
				if err != nil {
					return Value{}, err
				}
				return boolValue(exists), nil
			}
		}
		vs, err := argVals(1)
		if err != nil {
			return Value{}, err
		}
		return boolValue(vs[0].Bool()), nil
	case "not":
		if len(c.args) == 1 {
			if exists, ok, err := ev.plannedExists(c.args[0], ctx); ok || err != nil {
				if err != nil {
					return Value{}, err
				}
				return boolValue(!exists), nil
			}
		}
		vs, err := argVals(1)
		if err != nil {
			return Value{}, err
		}
		return boolValue(!vs[0].Bool()), nil
	case "true":
		if _, err := argVals(0); err != nil {
			return Value{}, err
		}
		return boolValue(true), nil
	case "false":
		if _, err := argVals(0); err != nil {
			return Value{}, err
		}
		return boolValue(false), nil
	case "contains":
		vs, err := argVals(2)
		if err != nil {
			return Value{}, err
		}
		return boolValue(strings.Contains(vs[0].String(), vs[1].String())), nil
	case "starts-with":
		vs, err := argVals(2)
		if err != nil {
			return Value{}, err
		}
		return boolValue(strings.HasPrefix(vs[0].String(), vs[1].String())), nil
	case "string-length":
		if len(c.args) == 0 {
			return numberValue(float64(len([]rune(ctx.node.Text())))), nil
		}
		vs, err := argVals(1)
		if err != nil {
			return Value{}, err
		}
		return numberValue(float64(len([]rune(vs[0].String())))), nil
	case "normalize-space":
		s := ""
		if len(c.args) == 0 {
			s = ctx.node.Text()
		} else {
			vs, err := argVals(1)
			if err != nil {
				return Value{}, err
			}
			s = vs[0].String()
		}
		return stringValue(strings.Join(strings.Fields(s), " ")), nil
	case "concat":
		if len(c.args) < 2 {
			return Value{}, ev.errorf("concat() takes at least 2 arguments")
		}
		vs, err := argVals(-1)
		if err != nil {
			return Value{}, err
		}
		var b strings.Builder
		for _, v := range vs {
			b.WriteString(v.String())
		}
		return stringValue(b.String()), nil
	case "substring":
		if len(c.args) != 2 && len(c.args) != 3 {
			return Value{}, ev.errorf("substring() takes 2 or 3 arguments")
		}
		vs, err := argVals(-1)
		if err != nil {
			return Value{}, err
		}
		r := []rune(vs[0].String())
		start := int(vs[1].Number()) - 1 // XPath is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(r) {
			start = len(r)
		}
		end := len(r)
		if len(vs) == 3 {
			end = start + int(vs[2].Number())
			if end > len(r) {
				end = len(r)
			}
			if end < start {
				end = start
			}
		}
		return stringValue(string(r[start:end])), nil
	case "text":
		// text() as a function: the string value of the context node.
		if _, err := argVals(0); err != nil {
			return Value{}, err
		}
		return stringValue(ctx.node.Text()), nil
	default:
		return Value{}, ev.errorf("unknown function %q", c.name)
	}
}

func nodeName(n goddag.Node) string {
	switch v := n.(type) {
	case *goddag.Element:
		return v.Name()
	case *goddag.Root:
		return v.Name()
	default:
		return ""
	}
}
