package xpath

import (
	"fmt"
	"sync/atomic"
)

// Query is a compiled Extended XPath expression, safe for concurrent use.
type Query struct {
	source string
	root   expr

	// plan is the single-slot cached execution plan for the most
	// recently planned (document, version) pair; see plan.go. Queries
	// live in the server's compiled-query LRU, so the slot effectively
	// keys the plan cache alongside it.
	plan atomic.Pointer[planSlot]
}

// String returns the original query text.
func (q *Query) String() string { return q.source }

// Compile parses an Extended XPath query.
func Compile(query string) (*Query, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{query: query, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.peek().kind)
	}
	return &Query{source: query, root: e}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(query string) *Query {
	q, err := Compile(query)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	query string
	toks  []token
	pos   int
	// depth tracks expression nesting across the recursive-descent
	// entry points; maxParseDepth caps it because Go cannot recover a
	// goroutine stack overflow — a hostile "((((…" or "----…x" must
	// fail with a SyntaxError, not kill the process.
	depth int
	// noOpt disables the step rewrites of optimizeSteps; used by
	// differential tests to compare optimized and reference plans.
	noOpt bool
}

// maxParseDepth bounds expression nesting. Far beyond any real query,
// far below stack exhaustion (each level is a handful of frames).
const maxParseDepth = 512

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errorf("expression nests deeper than %d", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Query: p.query, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) accept(k tokenKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

// parseExpr := OrExpr
func (p *parser) parseExpr() (expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokName && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokName && p.peek().text == "and" {
		p.next()
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseEquality() (expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokEq:
			op = "="
		case tokNeq:
			op = "!="
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseRelational() (expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokLt:
			op = "<"
		case tokLe:
			op = "<="
		case tokGt:
			op = ">"
		case tokGe:
			op = ">="
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseMultiplicative() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peek().kind == tokStar:
			op = "*"
		case p.peek().kind == tokName && p.peek().text == "div":
			op = "div"
		case p.peek().kind == tokName && p.peek().text == "mod":
			op = "mod"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept(tokMinus) {
		// Self-recursive without passing parseExpr, so it counts nesting
		// itself: "-----…x" must hit maxParseDepth too.
		if err := p.enter(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		p.leave()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{x: x}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (expr, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		r, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: "|", l: l, r: r}
	}
	return l, nil
}

// parsePath parses a location path or a filter expression with an
// optional path continuation.
func (p *parser) parsePath() (expr, error) {
	switch p.peek().kind {
	case tokSlash, tokDoubleSlash:
		return p.parseLocationPath(nil)
	case tokLParen, tokLiteral, tokNumber, tokVar:
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokSlash || p.peek().kind == tokDoubleSlash {
			return p.parseLocationPath(prim)
		}
		return prim, nil
	case tokName:
		// Could be a function call (name followed by '(' and not a node
		// test like node()/text()) or a location path.
		if p.toks[p.pos+1].kind == tokLParen && p.peek().text != "node" && p.peek().text != "text" {
			prim, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			if p.peek().kind == tokSlash || p.peek().kind == tokDoubleSlash {
				return p.parseLocationPath(prim)
			}
			return prim, nil
		}
		return p.parseLocationPath(nil)
	case tokDot, tokDotDot, tokAt, tokStar:
		return p.parseLocationPath(nil)
	default:
		return nil, p.errorf("expected expression, found %s", p.peek().kind)
	}
}

// parseLocationPath parses [filter] ('/'|'//')? steps...
func (p *parser) parseLocationPath(filter expr) (expr, error) {
	path := &pathExpr{filter: filter}
	switch p.peek().kind {
	case tokSlash:
		p.next()
		if filter == nil {
			path.absolute = true
		}
		if p.peek().kind == tokEOF || !p.startsStep() {
			if filter == nil {
				return path, nil // bare "/"
			}
			return nil, p.errorf("expected step after '/'")
		}
	case tokDoubleSlash:
		p.next()
		if filter == nil {
			path.absolute = true
		}
		path.steps = append(path.steps, step{axis: AxisDescendantOrSelf, test: nodeTest{kind: testNode}})
	}
	for {
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.steps = append(path.steps, st)
		switch p.peek().kind {
		case tokSlash:
			p.next()
		case tokDoubleSlash:
			p.next()
			path.steps = append(path.steps, step{axis: AxisDescendantOrSelf, test: nodeTest{kind: testNode}})
		default:
			if !p.noOpt {
				path.steps = optimizeSteps(path.steps)
			}
			return path, nil
		}
	}
}

// optimizeSteps collapses the expansion of '//' —
// descendant-or-self::node()/child::TEST — into a single descendant::TEST
// step. The rewrite is applied only when the child step has no
// predicates: positional predicates count within each parent's child
// list, which the collapsed form would change.
func optimizeSteps(steps []step) []step {
	out := steps[:0]
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		if s.axis == AxisDescendantOrSelf && s.test.kind == testNode && len(s.preds) == 0 && i+1 < len(steps) {
			next := steps[i+1]
			if next.axis == AxisChild && len(next.preds) == 0 {
				out = append(out, step{axis: AxisDescendant, test: next.test})
				i++
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

func (p *parser) startsStep() bool {
	switch p.peek().kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	default:
		return false
	}
}

// parseStep parses axis::test[pred]* with abbreviations ., .., @name.
func (p *parser) parseStep() (step, error) {
	switch p.peek().kind {
	case tokDot:
		p.next()
		return step{axis: AxisSelf, test: nodeTest{kind: testNode}}, nil
	case tokDotDot:
		p.next()
		return step{axis: AxisParent, test: nodeTest{kind: testNode}}, nil
	case tokAt:
		p.next()
		st := step{axis: AxisAttribute}
		switch p.peek().kind {
		case tokStar:
			p.next()
			st.test = nodeTest{kind: testAny}
		case tokName:
			st.test = nodeTest{kind: testName, name: p.next().text}
		default:
			return step{}, p.errorf("expected attribute name after '@'")
		}
		return p.parsePredicates(st)
	}
	st := step{axis: AxisChild}
	if p.peek().kind == tokName && p.toks[p.pos+1].kind == tokDoubleColon {
		axisName := p.next().text
		p.next() // '::'
		ax, ok := axisNames[axisName]
		if !ok {
			return step{}, p.errorf("unknown axis %q", axisName)
		}
		st.axis = ax
		if st.axis == AxisAttribute {
			switch p.peek().kind {
			case tokStar:
				p.next()
				st.test = nodeTest{kind: testAny}
			case tokName:
				st.test = nodeTest{kind: testName, name: p.next().text}
			default:
				return step{}, p.errorf("expected attribute name after attribute::")
			}
			return p.parsePredicates(st)
		}
	}
	switch p.peek().kind {
	case tokStar:
		p.next()
		st.test = nodeTest{kind: testAny}
	case tokName:
		name := p.next().text
		if p.peek().kind == tokLParen {
			switch name {
			case "node":
				p.next()
				if !p.accept(tokRParen) {
					return step{}, p.errorf("expected ')' after node(")
				}
				st.test = nodeTest{kind: testNode}
			case "text":
				p.next()
				if !p.accept(tokRParen) {
					return step{}, p.errorf("expected ')' after text(")
				}
				st.test = nodeTest{kind: testText}
			default:
				return step{}, p.errorf("unexpected function %q in step", name)
			}
		} else {
			st.test = nodeTest{kind: testName, name: name}
		}
	default:
		return step{}, p.errorf("expected node test, found %s", p.peek().kind)
	}
	return p.parsePredicates(st)
}

func (p *parser) parsePredicates(st step) (step, error) {
	for p.accept(tokLBracket) {
		e, err := p.parseExpr()
		if err != nil {
			return step{}, err
		}
		if !p.accept(tokRBracket) {
			return step{}, p.errorf("expected ']'")
		}
		st.preds = append(st.preds, e)
	}
	return st, nil
}

// parsePrimary parses '(' expr ')', literals, numbers, function calls.
func (p *parser) parsePrimary() (expr, error) {
	switch p.peek().kind {
	case tokVar:
		t := p.next()
		return &varExpr{name: t.text}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen) {
			return nil, p.errorf("expected ')'")
		}
		return e, nil
	case tokLiteral:
		t := p.next()
		return &literalExpr{s: t.text}, nil
	case tokNumber:
		t := p.next()
		return &numberExpr{f: t.num}, nil
	case tokName:
		name := p.next().text
		if !p.accept(tokLParen) {
			return nil, p.errorf("expected '(' after function name %q", name)
		}
		call := &callExpr{name: name}
		if p.accept(tokRParen) {
			return call, nil
		}
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.args = append(call.args, arg)
			if p.accept(tokRParen) {
				return call, nil
			}
			if !p.accept(tokComma) {
				return nil, p.errorf("expected ',' or ')' in argument list of %q", name)
			}
		}
	default:
		return nil, p.errorf("expected primary expression, found %s", p.peek().kind)
	}
}
