package xpath

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/document"
	"repro/internal/goddag"
	"repro/internal/obs"
)

// This file adds a small cost-based planning layer in front of the
// evaluator. A plan is derived from the compiled AST plus per-document
// index statistics (name-bucket sizes, element counts) and classifies
// the query into one of a few executable shapes:
//
//   - planScan: the result is exactly a name-index bucket, optionally
//     filtered by predicates pushed down into the scan. Streams in
//     document order with no dedup pass.
//   - planSemiJoin: an overlap step //a/overlapping::b driven from the
//     rarer side. When bucket(b) is smaller than bucket(a) the plan
//     iterates b and probes the span index for a witnessing a, instead
//     of enumerating every overlap of every a.
//   - planCount / planExists: count(path), boolean(path) and not(path)
//     over a streamable inner plan never materialize the node set —
//     count() reads the bucket cardinality or drains the cursor, and
//     existence stops at the first match.
//   - planEval: everything else falls back to the materializing
//     evaluator unchanged.
//
// Plans are cached per compiled Query in a single atomic slot keyed by
// (document identity, document version); the Query instances themselves
// live in the server's compiled-query LRU, so the slot rides alongside
// it. Any structural mutation advances the version (see
// goddag.Document.Version) and invalidates the cached plan.

// Plan is a prepared execution strategy for a Query against a specific
// document. Explain exposes it to clients via the server's explain flag.
type Plan struct {
	kind      planKind
	test      nodeTest // planScan: the bucket to scan
	preds     []expr   // planScan: predicates pushed into the scan
	outTest   nodeTest // planSemiJoin: output-side bucket
	probeName string   // planSemiJoin: witness name ("" = any element)
	inner     *Plan    // planCount / planExists
	negate    bool     // planExists: not(path)
	lines     []string
}

type planKind int

const (
	planEval planKind = iota
	planScan
	planSemiJoin
	planCount
	planExists
)

// Explain returns the human-readable plan description, one decision per
// line.
func (p *Plan) Explain() []string { return p.lines }

// planSlot is the single-entry plan cache attached to a Query. It holds
// the planned document strongly; worst case that delays collection of
// one evicted document per cached query until the query is replanned,
// bounded by the server's query-cache size.
type planSlot struct {
	doc     *goddag.Document
	version uint64
	plan    *Plan
}

// planFor returns the cached plan for doc, planning on a miss. Options
// that change evaluation semantics or disable fast paths fall back to
// the materializing evaluator so ablation benchmarks and differential
// tests measure what they claim to.
func (q *Query) planFor(doc *goddag.Document, opts Options) *Plan {
	if opts.NoFastPaths || opts.NoPlanner || opts.OverlapByWalk {
		return &Plan{kind: planEval, lines: []string{"materialize: planner disabled by options"}}
	}
	ver := doc.Version()
	if s := q.plan.Load(); s != nil && s.doc == doc && s.version == ver {
		engine.planHits.Add(1)
		engine.planKinds[s.plan.kind].Add(1)
		return s.plan
	}
	engine.planMisses.Add(1)
	pl := planQuery(doc, q.root)
	engine.planKinds[pl.kind].Add(1)
	q.plan.Store(&planSlot{doc: doc, version: ver, plan: pl})
	return pl
}

// planQuery classifies the root expression. Count and existence
// wrappers stream their inner path when it is streamable; bare paths
// plan directly; everything else materializes.
func planQuery(doc *goddag.Document, root expr) *Plan {
	switch n := root.(type) {
	case *pathExpr:
		if pl, ok := planNodes(doc, n); ok {
			return pl
		}
	case *callExpr:
		if len(n.args) == 1 {
			if p, ok := n.args[0].(*pathExpr); ok {
				if inner, ok := planNodes(doc, p); ok && inner.kind != planEval {
					switch n.name {
					case "count":
						return wrapPlan(planCount, inner, false, countLine(inner))
					case "boolean":
						return wrapPlan(planExists, inner, false, "exists: stop at the first streamed match")
					case "not":
						return wrapPlan(planExists, inner, true, "exists(negated): stop at the first streamed match")
					}
				}
			}
		}
	}
	return &Plan{kind: planEval, lines: []string{"materialize: full evaluation (no streamable shape)"}}
}

func wrapPlan(kind planKind, inner *Plan, negate bool, line string) *Plan {
	lines := make([]string, 0, len(inner.lines)+1)
	lines = append(lines, inner.lines...)
	lines = append(lines, line)
	return &Plan{kind: kind, inner: inner, negate: negate, lines: lines}
}

func countLine(inner *Plan) string {
	if inner.kind == planScan && len(inner.preds) == 0 {
		return "count: O(1) bucket cardinality, no evaluation"
	}
	return "count: streamed without materializing the node set"
}

// planNodes plans an absolute, filter-free path expression. It returns
// ok=false when the shape is not recognized at all; a returned planEval
// plan means the shape was recognized but the statistics favour the
// existing evaluator (the explain lines say why).
func planNodes(doc *goddag.Document, p *pathExpr) (*Plan, bool) {
	if p.filter != nil || !p.absolute || len(p.steps) == 0 {
		return nil, false
	}
	steps := p.steps

	if len(steps) == 1 {
		st := steps[0]
		if !descendantAxis(st.axis) || !elementTest(st.test) {
			return nil, false
		}
		est := bucketSize(doc, st.test)
		scanLine := fmt.Sprintf("scan: %s from root via %s (%d candidates), document order, dedup-free", st.String(), bucketLabel(st.test), est)
		if len(st.preds) == 0 {
			return &Plan{kind: planScan, test: st.test, lines: []string{scanLine}}, true
		}
		// Pushdown. With the root as the only origin the candidate list
		// the scan sees is exactly the list evalStep would build, so
		// position() and numeric predicates stream correctly — the
		// cursor tracks per-stage positions incrementally. Only last()
		// in a later stage is out: its value is the previous stage's
		// survivor count, unknown until the scan ends.
		for _, pr := range st.preds[1:] {
			if usesCall(pr, "last") {
				return nil, false
			}
		}
		return &Plan{kind: planScan, test: st.test, preds: st.preds, lines: []string{
			scanLine,
			fmt.Sprintf("pushdown: %d predicate(s) applied during the scan", len(st.preds)),
		}}, true
	}

	if len(steps) == 2 {
		s1, s2 := steps[0], steps[1]

		// '//name[preds]' survives optimizeSteps un-collapsed as
		// descendant-or-self::node()/child::name[preds]. The child step
		// unioned over every node origin is exactly the name bucket in
		// document order (each element has one parent per hierarchy), so
		// the scan streams it — but only when no predicate observes
		// position() or last(): those are per-parent in the reference
		// semantics and global in a bucket scan.
		if s1.axis == AxisDescendantOrSelf && s1.test.kind == testNode && len(s1.preds) == 0 &&
			s2.axis == AxisChild && elementTest(s2.test) && len(s2.preds) > 0 &&
			predsStaticBool(s2.preds) {
			est := bucketSize(doc, s2.test)
			return &Plan{kind: planScan, test: s2.test, preds: s2.preds, lines: []string{
				fmt.Sprintf("scan: //%s via %s (%d candidates), document order, dedup-free", s2.test.String(), bucketLabel(s2.test), est),
				fmt.Sprintf("pushdown: %d position-free predicate(s) applied during the scan", len(s2.preds)),
			}}, true
		}

		// Overlap semi-join: //a/overlapping::b. Proper overlap is
		// symmetric, so the join can be driven from either side; drive
		// from the rarer bucket. Reversed, each b-candidate probes the
		// span index for a witnessing a and exits at the first hit —
		// the output is bucket order (= document order), dedup-free.
		if descendantAxis(s1.axis) && elementTest(s1.test) && len(s1.preds) == 0 &&
			s2.axis == AxisOverlapping && elementTest(s2.test) && len(s2.preds) == 0 {
			estA := bucketSize(doc, s1.test)
			estB := bucketSize(doc, s2.test)
			if estA == 0 {
				return &Plan{kind: planScan, test: s1.test, lines: []string{
					fmt.Sprintf("empty: origin %s has no elements, result is empty", bucketLabel(s1.test)),
				}}, true
			}
			if estB < estA {
				return &Plan{kind: planSemiJoin, outTest: s2.test, probeName: probeNameOf(s1.test), lines: []string{
					fmt.Sprintf("semi-join(reversed): scan output side %s (%d candidates), probe span index for one properly overlapping %s (%d); driven from the rarer side",
						bucketLabel(s2.test), estB, bucketLabel(s1.test), estA),
				}}, true
			}
			return &Plan{kind: planEval, lines: []string{
				fmt.Sprintf("semi-join(forward): origin side %s (%d) is no larger than output side %s (%d); forward drive kept, materializing evaluator",
					bucketLabel(s1.test), estA, bucketLabel(s2.test), estB),
			}}, true
		}
	}
	return nil, false
}

func descendantAxis(ax Axis) bool {
	return ax == AxisDescendant || ax == AxisDescendantOrSelf
}

func elementTest(t nodeTest) bool {
	return (t.kind == testName || t.kind == testAny) && t.hierarchy == ""
}

func probeNameOf(t nodeTest) string {
	if t.kind == testName {
		return t.name
	}
	return ""
}

func bucketSize(doc *goddag.Document, t nodeTest) int {
	if t.kind == testName {
		return len(doc.ElementsNamed(t.name))
	}
	return len(doc.Elements())
}

func bucketLabel(t nodeTest) string {
	if t.kind == testName {
		return fmt.Sprintf("name bucket %q", t.name)
	}
	return "all elements"
}

// predsStaticBool reports whether every predicate is statically
// boolean-valued (never interpreted positionally) and independent of
// the evaluation position — the safety condition for pushing '//name'
// predicates into a global bucket scan.
func predsStaticBool(preds []expr) bool {
	for _, pr := range preds {
		if !staticBool(pr) || usesCall(pr, "position") || usesCall(pr, "last") {
			return false
		}
	}
	return true
}

// staticBool reports whether e always yields a boolean-interpretable,
// non-numeric value: comparisons and logic, boolean-returning builtins,
// node-set and string operands coerced via Bool. Numeric expressions
// are excluded because predHolds treats them positionally.
func staticBool(e expr) bool {
	switch n := e.(type) {
	case *binaryExpr:
		switch n.op {
		case "or", "and", "=", "!=", "<", "<=", ">", ">=":
			return true
		}
		return false
	case *callExpr:
		switch n.name {
		case "not", "boolean", "true", "false", "contains", "starts-with", "overlaps":
			return true
		}
		return false
	case *pathExpr, *literalExpr:
		return true
	default:
		return false
	}
}

// usesCall reports whether e contains a call to the named function
// anywhere, including inside nested path predicates.
func usesCall(e expr, name string) bool {
	found := false
	walkExpr(e, func(x expr) bool {
		if c, ok := x.(*callExpr); ok && c.name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// walkExpr applies f to e and every sub-expression, stopping early when
// f returns false. Returns false if the walk was stopped.
func walkExpr(e expr, f func(expr) bool) bool {
	if e == nil {
		return true
	}
	if !f(e) {
		return false
	}
	switch n := e.(type) {
	case *binaryExpr:
		return walkExpr(n.l, f) && walkExpr(n.r, f)
	case *unaryExpr:
		return walkExpr(n.x, f)
	case *callExpr:
		for _, a := range n.args {
			if !walkExpr(a, f) {
				return false
			}
		}
	case *pathExpr:
		if !walkExpr(n.filter, f) {
			return false
		}
		for _, st := range n.steps {
			for _, pr := range st.preds {
				if !walkExpr(pr, f) {
					return false
				}
			}
		}
	}
	return true
}

// --- cursors -------------------------------------------------------------

// cursor is the lazy node-set contract: next returns the following node
// in document order, (nil, nil) once exhausted. size reports the exact
// number of remaining nodes, or -1 when it cannot be known without
// draining (predicate and semi-join cursors).
type cursor interface {
	next() (goddag.Node, error)
	size() int
}

// Streaming cursors over pre-materialized slices tick their limiter in
// batches of cursorTick nodes: the per-node cost is one mask-and-branch,
// and a cancelled consumer (client disconnect mid-encode) still stops
// within cursorTick pulls.
const cursorTick = 64

type elemsCursor struct {
	els []*goddag.Element
	i   int
	lim *Limiter
}

func (c *elemsCursor) next() (goddag.Node, error) {
	if c.i >= len(c.els) {
		return nil, nil
	}
	if c.i&(cursorTick-1) == 0 {
		if err := c.lim.Visit(cursorTick); err != nil {
			return nil, err
		}
	}
	e := c.els[c.i]
	c.i++
	return e, nil
}

func (c *elemsCursor) size() int { return len(c.els) - c.i }

// sliceCursor adapts a materialized node set (planEval fallback) to the
// stream contract.
type sliceCursor struct {
	ns  []goddag.Node
	i   int
	lim *Limiter
}

func (c *sliceCursor) next() (goddag.Node, error) {
	if c.i >= len(c.ns) {
		return nil, nil
	}
	if c.i&(cursorTick-1) == 0 {
		if err := c.lim.Visit(cursorTick); err != nil {
			return nil, err
		}
	}
	n := c.ns[c.i]
	c.i++
	return n, nil
}

func (c *sliceCursor) size() int { return len(c.ns) - c.i }

// predCursor streams a bucket scan with pushed-down predicates. pos[k]
// counts how many candidates reached predicate stage k, reproducing the
// sequential-stage position semantics of evalStep: a candidate's
// position at stage k is its rank among survivors of stages [0,k).
type predCursor struct {
	ev    *evaluator
	els   []*goddag.Element
	preds []expr
	vars  Bindings
	pos   []int
	i     int
}

func (c *predCursor) next() (goddag.Node, error) {
candidates:
	for c.i < len(c.els) {
		e := c.els[c.i]
		c.i++
		for k, pred := range c.preds {
			c.pos[k]++
			size := 0
			if k == 0 {
				// Stage 0 sees the full candidate list, so last() is
				// the bucket size. Later stages never see last(): the
				// planner rejects it there.
				size = len(c.els)
			}
			pctx := evalCtx{doc: c.ev.doc, node: e, pos: c.pos[k], size: size, vars: c.vars}
			v, err := c.ev.eval(pred, pctx)
			if err != nil {
				return nil, err
			}
			if !predHolds(v, c.pos[k]) {
				continue candidates
			}
		}
		return e, nil
	}
	return nil, nil
}

func (c *predCursor) size() int { return -1 }

// semiJoinCursor streams the reversed overlap semi-join: iterate the
// (smaller) output bucket, emit each element witnessed by at least one
// properly overlapping element matching probeName. The span-index probe
// exits at the first witness.
type semiJoinCursor struct {
	doc       *goddag.Document
	els       []*goddag.Element
	probeName string // "" = any element
	i         int
	lim       *Limiter
}

func (c *semiJoinCursor) next() (goddag.Node, error) {
	for c.i < len(c.els) {
		// Per-candidate tick: every probe is a span-index walk, so a
		// non-matching tail must stay cancellable even though it emits
		// nothing.
		if err := c.lim.Visit(1); err != nil {
			return nil, err
		}
		e := c.els[c.i]
		c.i++
		if anyOverlapping(c.doc, e.Span(), c.probeName) {
			return e, nil
		}
	}
	return nil, nil
}

func (c *semiJoinCursor) size() int { return -1 }

// anyOverlapping reports whether any element (matching name, when
// non-empty) properly overlaps sp. Proper overlap is symmetric and
// irreflexive, so no identity exclusion is needed.
func anyOverlapping(doc *goddag.Document, sp document.Span, name string) bool {
	found := false
	doc.VisitIntersecting(sp, func(x *goddag.Element) bool {
		if (name == "" || x.Name() == name) && x.Span().Overlaps(sp) {
			found = true
			return false
		}
		return true
	})
	return found
}

// nodeCursor builds the cursor for a node-producing plan.
func (ev *evaluator) nodeCursor(pl *Plan, vars Bindings) cursor {
	switch pl.kind {
	case planScan:
		els := ev.bucket(pl.test)
		if len(pl.preds) == 0 {
			return &elemsCursor{els: els, lim: ev.lim}
		}
		// Predicate evaluation ticks the limiter itself (eval counts one
		// visit per expression), so predCursor needs no tick of its own.
		return &predCursor{ev: ev, els: els, preds: pl.preds, vars: vars, pos: make([]int, len(pl.preds))}
	case planSemiJoin:
		return &semiJoinCursor{doc: ev.doc, els: ev.bucket(pl.outTest), probeName: pl.probeName, lim: ev.lim}
	}
	return nil
}

func (ev *evaluator) bucket(t nodeTest) []*goddag.Element {
	if t.kind == testName {
		return ev.doc.ElementsNamed(t.name)
	}
	return ev.doc.Elements()
}

// countPlan counts a streamable inner plan without materializing.
func (ev *evaluator) countPlan(inner *Plan, vars Bindings) (int, error) {
	cur := ev.nodeCursor(inner, vars)
	if n := cur.size(); n >= 0 {
		return n, nil
	}
	n := 0
	for {
		nd, err := cur.next()
		if err != nil {
			return 0, err
		}
		if nd == nil {
			return n, nil
		}
		n++
	}
}

// plannedCount is the count() clamp: when the argument is a streamable
// absolute path, count it from the bucket cardinality or by draining a
// cursor — never materializing the node set. ok=false means the caller
// must fall back to full evaluation.
func (ev *evaluator) plannedCount(arg expr, ctx evalCtx) (int, bool, error) {
	inner, ok := ev.streamableArg(arg)
	if !ok {
		return 0, false, nil
	}
	n, err := ev.countPlan(inner, ctx.vars)
	return n, true, err
}

// plannedExists is the boolean()/not() clamp: pull at most one node.
func (ev *evaluator) plannedExists(arg expr, ctx evalCtx) (bool, bool, error) {
	inner, ok := ev.streamableArg(arg)
	if !ok {
		return false, false, nil
	}
	exists, err := ev.existsPlan(inner, ctx.vars)
	return exists, true, err
}

// streamableArg plans a function argument when the planner is enabled
// and the argument is a streamable absolute path. Absolute paths are
// context-independent, so the clamp is valid at any evaluation position.
func (ev *evaluator) streamableArg(arg expr) (*Plan, bool) {
	if ev.opts.NoFastPaths || ev.opts.NoPlanner || ev.opts.OverlapByWalk {
		return nil, false
	}
	p, ok := arg.(*pathExpr)
	if !ok {
		return nil, false
	}
	inner, ok := planNodes(ev.doc, p)
	if !ok || inner.kind == planEval {
		return nil, false
	}
	return inner, true
}

// existsPlan pulls at most one node from a streamable inner plan.
func (ev *evaluator) existsPlan(inner *Plan, vars Bindings) (bool, error) {
	cur := ev.nodeCursor(inner, vars)
	if n := cur.size(); n >= 0 {
		return n > 0, nil
	}
	nd, err := cur.next()
	if err != nil {
		return false, err
	}
	return nd != nil, nil
}

// --- streaming API -------------------------------------------------------

// Stream is a lazy query execution: node-set results are pulled one node
// at a time in document order without materializing the full set, and
// scalar results (numbers, strings, booleans, attribute sets) are
// available immediately via Value. Close releases the pooled evaluator;
// a Stream must be fully consumed and closed before the document is
// mutated (same contract as Eval's read snapshot).
type Stream struct {
	ev     *evaluator
	plan   *Plan
	cur    cursor
	val    Value
	scalar bool
	closed bool
}

// Stream executes q lazily against doc.
func (q *Query) Stream(doc *goddag.Document) (*Stream, error) {
	return q.StreamWithOptions(doc, Options{})
}

// StreamContext is Stream under ctx with a resource budget: plan
// execution and every Next observe cancellation at amortized
// checkpoints, so an abandoned consumer (client disconnect mid-encode)
// stops the evaluation instead of draining it.
func (q *Query) StreamContext(ctx context.Context, doc *goddag.Document, b Budget) (*Stream, error) {
	return q.StreamWithOptions(doc, Options{Context: ctx, Budget: b})
}

// StreamWithOptions executes q lazily against doc with evaluation
// options. Count/exists plans and materializing fallbacks execute
// eagerly here; bucket scans and semi-joins defer all work to Next.
func (q *Query) StreamWithOptions(doc *goddag.Document, opts Options) (*Stream, error) {
	ev := acquireEvaluator(doc, q.source, opts)
	if err := ev.lim.Err(); err != nil {
		releaseEvaluator(ev)
		return nil, err
	}
	sp := ev.tr.Begin("plan")
	pl := q.planFor(doc, opts)
	sp.End()
	s := &Stream{ev: ev, plan: pl}
	var err error
	// The eval span covers the eager shapes (count, exists, materialize);
	// lazy cursors (scan, semi-join) do their work under the consumer's
	// pulls, which the serving layer attributes to its encode stage.
	sp = ev.tr.Begin("eval")
	switch pl.kind {
	case planScan, planSemiJoin:
		s.cur = ev.nodeCursor(pl, nil)
	case planCount:
		var n int
		if n, err = ev.countPlan(pl.inner, nil); err == nil {
			s.val, s.scalar = numberValue(float64(n)), true
		}
	case planExists:
		var ok bool
		if ok, err = ev.existsPlan(pl.inner, nil); err == nil {
			if pl.negate {
				ok = !ok
			}
			s.val, s.scalar = boolValue(ok), true
		}
	default:
		var v Value
		rootCtx := evalCtx{doc: doc, node: doc.Root(), pos: 1, size: 1}
		if v, err = ev.eval(q.root, rootCtx); err == nil {
			if v.kind == valNodes {
				s.cur = &sliceCursor{ns: v.nodes, lim: ev.lim}
			} else {
				s.val, s.scalar = v, true
			}
		}
	}
	sp.End()
	if err != nil {
		releaseEvaluator(ev)
		return nil, err
	}
	return s, nil
}

// IsNodeSet reports whether the stream yields nodes (pull with Next)
// rather than a scalar value (read with Value).
func (s *Stream) IsNodeSet() bool { return !s.scalar }

// Value returns the scalar result and true when the query did not yield
// a node set (numbers, strings, booleans, attribute sets).
func (s *Stream) Value() (Value, bool) {
	if s.scalar {
		return s.val, true
	}
	return Value{}, false
}

// Next returns the next node in document order, or (nil, nil) when the
// stream is exhausted or the result is scalar.
func (s *Stream) Next() (goddag.Node, error) {
	if s.cur == nil {
		return nil, nil
	}
	return s.cur.next()
}

// Size reports the exact number of nodes remaining, or -1 when unknown
// without draining (predicate and semi-join plans). Scalar streams
// report 0.
func (s *Stream) Size() int {
	if s.cur == nil {
		return 0
	}
	return s.cur.size()
}

// Count drains the stream and returns the number of remaining nodes,
// using the size shortcut when it is exact.
func (s *Stream) Count() (int, error) {
	if s.cur == nil {
		return 0, nil
	}
	if n := s.cur.size(); n >= 0 {
		// Advance past the counted nodes so a subsequent Next is clean.
		if ec, ok := s.cur.(*elemsCursor); ok {
			ec.i = len(ec.els)
		} else if sc, ok := s.cur.(*sliceCursor); ok {
			sc.i = len(sc.ns)
		}
		return n, nil
	}
	n := 0
	for {
		nd, err := s.cur.next()
		if err != nil {
			return n, err
		}
		if nd == nil {
			return n, nil
		}
		n++
	}
}

// Explain returns the plan description for this execution.
func (s *Stream) Explain() []string { return s.plan.Explain() }

// Close releases the stream's pooled resources. Safe to call more than
// once; the stream must not be used afterwards.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	releaseEvaluator(s.ev)
	s.ev = nil
	s.cur = nil
}

// --- evaluator pool ------------------------------------------------------

// evPool recycles evaluators between queries. The payoff is the seen
// bitset: once grown to a document's ordinal range it is retained, so a
// steady-state serving workload performs zero bitset allocations per
// request (the dedup-bitset pool the roadmap calls for).
var evPool = sync.Pool{New: func() any { return new(evaluator) }}

func acquireEvaluator(doc *goddag.Document, query string, opts Options) *evaluator {
	ev := evPool.Get().(*evaluator)
	ev.doc = doc
	ev.query = query
	ev.opts = opts
	ev.tr = obs.TraceFrom(opts.Context)
	ev.lim = opts.Limiter
	ev.ownLim = false
	if ev.lim == nil {
		ev.lim = NewLimiter(opts.Context, opts.Budget)
		if ev.lim == nil && ev.tr != nil {
			// Explain-analyze wants the visit count even when no limits
			// apply; a counting-only limiter costs the same amortized
			// checkpoints the limited paths already pay.
			ev.lim = NewCountingLimiter()
		}
		ev.ownLim = ev.lim != nil
	}
	return ev
}

func releaseEvaluator(ev *evaluator) {
	if ev == nil {
		return
	}
	if ev.ownLim {
		// Caller-owned limiters (FLWOR's shared budget) are reported by
		// their owner via ReportVisited, once per request rather than
		// once per clause evaluation.
		if n := ev.lim.Visited(); n > 0 {
			engine.visited.Add(uint64(n))
			ev.tr.AddVisited(n)
		}
		ev.ownLim = false
	}
	ev.doc = nil
	ev.ord = nil
	ev.query = ""
	ev.opts = Options{}
	ev.lim = nil
	ev.tr = nil
	ev.seen.reset() // keep grown bits, clear touched entries
	evPool.Put(ev)
}
