package xpath

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/goddag"
	"repro/internal/sacx"
)

// wordsDoc builds a single-hierarchy document of n <w> elements — big
// enough to cross the limiter's amortized checkpoint interval many
// times, unlike the 24-rune fig1 fragment.
func wordsDoc(t testing.TB, n int) *goddag.Document {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		sb.WriteString("<w>a</w>")
	}
	sb.WriteString("</r>")
	doc, err := sacx.Build([]sacx.Source{{Hierarchy: "words", Data: []byte(sb.String())}})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBudgetMaxVisited(t *testing.T) {
	doc := wordsDoc(t, 2000)
	q := MustCompile("//w")
	_, err := q.EvalContext(context.Background(), doc, Budget{MaxVisited: 100})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != "nodes" || be.Visited <= be.Limit || be.Limit != 100 {
		t.Fatalf("BudgetError = %+v", be)
	}
	// The same query under a sufficient budget succeeds.
	v, err := q.EvalContext(context.Background(), doc, Budget{MaxVisited: 1 << 20})
	if err != nil || len(v.Nodes()) != 2000 {
		t.Fatalf("sufficient budget: %v, %d nodes", err, len(v.Nodes()))
	}
}

func TestBudgetMaxTime(t *testing.T) {
	doc := wordsDoc(t, 300)
	q := MustCompile("//w[count(preceding::w) >= 0]")
	_, err := q.EvalContext(context.Background(), doc, Budget{MaxTime: time.Nanosecond})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != "time" {
		t.Fatalf("BudgetError = %+v", be)
	}
}

// TestContextCancellation: cancellation surfaces as the context's own
// error, NOT as ErrBudgetExceeded — callers distinguish "the client
// gave up" from "the query was too big" by error identity.
func TestContextCancellation(t *testing.T) {
	doc := wordsDoc(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MustCompile("//w").EvalContext(ctx, doc, Budget{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("cancellation must not masquerade as a budget error")
	}
	// A document too small to reach the first amortized checkpoint must
	// still refuse an already-expired context (the limiter pre-polls).
	tiny := wordsDoc(t, 3)
	if _, err := MustCompile("//w").EvalContext(ctx, tiny, Budget{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("tiny doc under a dead context: err = %v, want context.Canceled", err)
	}
	if _, err := MustCompile("//w").StreamContext(ctx, tiny, Budget{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("tiny stream under a dead context: err = %v, want context.Canceled", err)
	}
}

func TestStreamBudget(t *testing.T) {
	doc := wordsDoc(t, 2000)
	st, err := MustCompile("//w").StreamContext(context.Background(), doc, Budget{MaxVisited: 64})
	if err == nil {
		defer st.Close()
		for {
			n, nerr := st.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if n == nil {
				break
			}
		}
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("streamed past a 64-node budget: err = %v", err)
	}
}

func TestStreamCancellationMidPull(t *testing.T) {
	doc := wordsDoc(t, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := MustCompile("//w").StreamContext(ctx, doc, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cancel()
	for i := 0; i < 5000; i++ {
		n, nerr := st.Next()
		if nerr != nil {
			if !errors.Is(nerr, context.Canceled) {
				t.Fatalf("Next after cancel: %v", nerr)
			}
			return
		}
		if n == nil {
			break
		}
	}
	t.Fatal("stream never observed the cancelled context")
}

// TestLimiterSharedAcrossEvals: the FLWOR seam — one Limiter threaded
// through several evaluations accumulates a single cumulative budget.
func TestLimiterSharedAcrossEvals(t *testing.T) {
	doc := wordsDoc(t, 100)
	lim := NewLimiter(context.Background(), Budget{MaxVisited: 250})
	q := MustCompile("//w")
	var err error
	evals := 0
	for ; evals < 10; evals++ {
		if _, err = q.EvalWithLimiter(doc, doc.Root(), nil, lim); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("10 x 100-node evals under a 250-visit budget: err = %v", err)
	}
	if evals == 0 || evals > 3 {
		t.Fatalf("budget exhausted after %d evals, want 1-3", evals)
	}
}

// TestNilLimiterIsFree: no context, no budget — the fast path the
// default configuration rides — must behave exactly like no limiter.
func TestNilLimiterIsFree(t *testing.T) {
	if lim := NewLimiter(context.Background(), Budget{}); lim != nil {
		t.Fatalf("NewLimiter with no ctx and no budget = %+v, want nil", lim)
	}
	var lim *Limiter
	if err := lim.Visit(1 << 30); err != nil {
		t.Fatalf("nil limiter Visit: %v", err)
	}
}

func TestParserDepthCap(t *testing.T) {
	for _, src := range []string{
		strings.Repeat("(", 600) + "1" + strings.Repeat(")", 600),
		strings.Repeat("-", 2000) + "1",
		strings.Repeat("(", 100000), // unbalanced nesting bomb
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile accepted a %d-byte nesting bomb", len(src))
		}
	}
	// The cap is well above any sane expression.
	if _, err := Compile(strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100)); err != nil {
		t.Errorf("Compile rejected 100-deep parens: %v", err)
	}
}
