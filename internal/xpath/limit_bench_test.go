package xpath

import (
	"context"
	"testing"
	"time"
)

// BenchmarkCheckpointOverhead isolates the cost of the cancellation /
// budget checkpoints by running the same warm queries with no limiter
// (the serving default: no deadline, no budget → NewLimiter returns
// nil) and with a limiter that is active but never trips. The deltas
// between the off and on variants ARE the checkpoint overhead —
// measured in one process, immune to the run-to-run machine drift that
// dominates the cross-snapshot BENCH_serve comparison.
func BenchmarkCheckpointOverhead(b *testing.B) {
	doc := wordsDoc(b, 2000)
	for _, qs := range []string{"//w", "count(//w)"} {
		q := MustCompile(qs)
		b.Run(qs+"/limiter-off", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(qs+"/limiter-on", func(b *testing.B) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			defer cancel()
			budget := Budget{MaxVisited: 1 << 30}
			for i := 0; i < b.N; i++ {
				if _, err := q.EvalContext(ctx, doc, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
