package xpath

import "sync/atomic"

// Process-wide engine counters, exported to the serving layer's metrics
// registry via Counters(). They are package-level atomics rather than
// per-Query state because the interesting rates (plan-cache hit ratio,
// nodes visited per second) are properties of the whole engine, and
// because the hot paths that bump them — planFor and evaluator release —
// must not take locks or chase registry pointers.
var engine struct {
	planHits   atomic.Uint64
	planMisses atomic.Uint64
	planKinds  [planKindCount]atomic.Uint64
	visited    atomic.Uint64
}

const planKindCount = int(planExists) + 1

// String names a plan kind the way Explain and the metrics labels do.
func (k planKind) String() string {
	switch k {
	case planScan:
		return "scan"
	case planSemiJoin:
		return "semi-join"
	case planCount:
		return "count"
	case planExists:
		return "exists"
	default:
		return "eval"
	}
}

// EngineCounters is a snapshot of the engine's process-wide counters.
type EngineCounters struct {
	// PlanCacheHits / PlanCacheMisses count planFor consulting a Query's
	// cached plan slot. A miss replans; the ratio is the planner's
	// amortization.
	PlanCacheHits   uint64
	PlanCacheMisses uint64
	// PlansByKind counts executions by chosen plan shape, keyed by the
	// planKind name ("scan", "semi-join", "count", "exists", "eval").
	PlansByKind map[string]uint64
	// NodesVisited is the cumulative node-visit count of all evaluations
	// that ran with a limiter (deadline, budget, or tracing). Limit-free
	// evaluations do not count visits, by design — counting is what the
	// limiter's amortized checkpoints already pay for.
	NodesVisited uint64
}

// Counters snapshots the engine counters. Scrape-path only; allocates.
func Counters() EngineCounters {
	c := EngineCounters{
		PlanCacheHits:   engine.planHits.Load(),
		PlanCacheMisses: engine.planMisses.Load(),
		NodesVisited:    engine.visited.Load(),
		PlansByKind:     make(map[string]uint64, planKindCount),
	}
	for k := 0; k < planKindCount; k++ {
		c.PlansByKind[planKind(k).String()] = engine.planKinds[k].Load()
	}
	return c
}

// NewCountingLimiter returns a limiter with no context and no budget
// that still counts visited nodes — the hook explain-analyze uses when
// a traced evaluation would otherwise run limiter-free.
func NewCountingLimiter() *Limiter {
	return &Limiter{countdown: checkInterval}
}

// ReportVisited folds a caller-owned limiter's visit count into the
// engine counters. The FLWOR layer shares one Limiter across all clause
// evaluations and reports it once here; evaluator-owned limiters are
// reported automatically at release. Nil-safe.
func ReportVisited(l *Limiter) {
	if l != nil && l.visited > 0 {
		engine.visited.Add(uint64(l.visited))
	}
}
