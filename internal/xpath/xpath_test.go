package xpath

import (
	"strings"
	"testing"

	"repro/internal/goddag"
	"repro/internal/sacx"
)

// fig1 is the paper's Figure 1 document: four hierarchies over the same
// Old English fragment, with mutual overlaps.
//
// content: "swa hwæt swa he us sægde" (24 runes)
// physical:    line[0,12) line[12,24)
// words:       w[0,3) w[4,8) w[9,12) w[13,15) w[16,18) w[19,24)
// restoration: res[10,17)
// damage:      dmg[6,11)
func fig1(t *testing.T) *goddag.Document {
	t.Helper()
	doc, err := sacx.Build([]sacx.Source{
		{Hierarchy: "physical", Data: []byte(`<r><line n="1">swa hwæt swa</line><line n="2"> he us sægde</line></r>`)},
		{Hierarchy: "words", Data: []byte(`<r><w>swa</w> <w>hwæt</w> <w>swa</w> <w>he</w> <w>us</w> <w>sægde</w></r>`)},
		{Hierarchy: "restoration", Data: []byte(`<r>swa hwæt s<res resp="ed">wa he u</res>s sægde</r>`)},
		{Hierarchy: "damage", Data: []byte(`<r>swa hw<dmg type="stain">æt sw</dmg>a he us sægde</r>`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func sel(t *testing.T, doc *goddag.Document, query string) []goddag.Node {
	t.Helper()
	ns, err := Select(doc, query)
	if err != nil {
		t.Fatalf("Select(%q): %v", query, err)
	}
	return ns
}

func evalVal(t *testing.T, doc *goddag.Document, query string) Value {
	t.Helper()
	q, err := Compile(query)
	if err != nil {
		t.Fatalf("Compile(%q): %v", query, err)
	}
	v, err := q.Eval(doc)
	if err != nil {
		t.Fatalf("Eval(%q): %v", query, err)
	}
	return v
}

func names(ns []goddag.Node) []string {
	var out []string
	for _, n := range ns {
		switch v := n.(type) {
		case *goddag.Element:
			out = append(out, v.Name())
		case goddag.Leaf:
			out = append(out, "#"+v.Text())
		case *goddag.Root:
			out = append(out, "/")
		}
	}
	return out
}

func TestChildAxis(t *testing.T) {
	doc := fig1(t)
	// Children of the root across all hierarchies.
	ns := sel(t, doc, "/*")
	// Elements only: line,line,w*6,res,dmg = 10.
	if len(ns) != 10 {
		t.Errorf("/* returned %d nodes: %v", len(ns), names(ns))
	}
	// Named child.
	lines := sel(t, doc, "/line")
	if len(lines) != 2 {
		t.Errorf("/line = %v", names(lines))
	}
}

func TestDescendantAxis(t *testing.T) {
	doc := fig1(t)
	ws := sel(t, doc, "//w")
	if len(ws) != 6 {
		t.Errorf("//w = %d: %v", len(ws), names(ws))
	}
	// text() under a line: leaves.
	leaves := sel(t, doc, "/line/text()")
	if len(leaves) == 0 {
		t.Error("no leaves under lines")
	}
	for _, n := range leaves {
		if n.Kind() != goddag.KindLeaf {
			t.Errorf("non-leaf %v", n)
		}
	}
}

func TestPredicates(t *testing.T) {
	doc := fig1(t)
	// Attribute predicate.
	l2 := sel(t, doc, `/line[@n='2']`)
	if len(l2) != 1 || l2[0].Text() != " he us sægde" {
		t.Errorf("line[@n='2'] = %v", names(l2))
	}
	// Positional predicate.
	w3 := sel(t, doc, `//w[3]`)
	if len(w3) != 1 || w3[0].Text() != "swa" {
		t.Errorf("w[3] = %v %q", names(w3), w3[0].Text())
	}
	// last().
	wLast := sel(t, doc, `//w[last()]`)
	if len(wLast) != 1 || wLast[0].Text() != "sægde" {
		t.Errorf("w[last()] = %v", names(wLast))
	}
	// String content predicate.
	swa := sel(t, doc, `//w[string()='swa']`)
	if len(swa) != 2 {
		t.Errorf("w[.='swa'] = %d", len(swa))
	}
}

func TestOverlappingAxis(t *testing.T) {
	doc := fig1(t)
	// The paper's flagship query: markup overlapping the damage region.
	over := sel(t, doc, "//dmg/overlapping::*")
	// dmg[6,11) properly overlaps w[4,8), w[9,12), res[10,17).
	got := names(over)
	want := map[string]int{"w": 2, "res": 1}
	count := map[string]int{}
	for _, g := range got {
		count[g]++
	}
	for k, v := range want {
		if count[k] != v {
			t.Errorf("overlapping %s = %d, want %d (all: %v)", k, count[k], v, got)
		}
	}
	if len(over) != 3 {
		t.Errorf("overlapping count = %d: %v", len(over), got)
	}
}

func TestOverlappingNamed(t *testing.T) {
	doc := fig1(t)
	// Words overlapping restorations — a typical editorial query.
	ws := sel(t, doc, "//res/overlapping::w")
	if len(ws) != 2 {
		t.Errorf("res/overlapping::w = %v", names(ws))
	}
	texts := []string{ws[0].Text(), ws[1].Text()}
	if texts[0] != "swa" || texts[1] != "us" {
		t.Errorf("texts = %v", texts)
	}
}

func TestOverlappingDirectional(t *testing.T) {
	doc := fig1(t)
	// res[10,17): elements overlapping and starting before it:
	// w[9,12) and dmg[6,11) and line[0,12).
	left := sel(t, doc, "//res/overlapping-left::*")
	if len(left) != 3 {
		t.Errorf("overlapping-left = %v", names(left))
	}
	right := sel(t, doc, "//res/overlapping-right::*")
	// Elements overlapping res and ending after it: line[12,24), w[16,18).
	if len(right) != 2 {
		t.Errorf("overlapping-right = %v", names(right))
	}
	// left ∪ right == overlapping
	all := sel(t, doc, "//res/overlapping::*")
	if len(left)+len(right) != len(all) {
		t.Errorf("left %d + right %d != all %d", len(left), len(right), len(all))
	}
}

func TestCoveringAxis(t *testing.T) {
	doc := fig1(t)
	// w[4,8) is covered by line[0,12) and dmg[6,11)? dmg[6,11) does not
	// contain [4,8). Covering = line1 only.
	cov := sel(t, doc, "//w[2]/covering::*")
	if len(cov) != 1 || names(cov)[0] != "line" {
		t.Errorf("covering = %v", names(cov))
	}
	// The first word is covered by line 1 only.
	cov1 := sel(t, doc, "//w[1]/covering::*")
	if len(cov1) != 1 {
		t.Errorf("covering w1 = %v", names(cov1))
	}
}

func TestCoveredAxis(t *testing.T) {
	doc := fig1(t)
	// Everything inside line 1 across hierarchies: w[0,3), w[4,8),
	// w[9,12), dmg[6,11), and leaves.
	cov := sel(t, doc, "/line[1]/covered::*")
	count := map[string]int{}
	for _, g := range names(cov) {
		count[g]++
	}
	if count["w"] != 3 || count["dmg"] != 1 {
		t.Errorf("covered = %v", names(cov))
	}
	// covered::node() includes leaves too.
	all := sel(t, doc, "/line[1]/covered::node()")
	if len(all) <= len(cov) {
		t.Errorf("covered::node() = %d should exceed covered::* = %d", len(all), len(cov))
	}
}

func TestParentOfLeafIsMultiple(t *testing.T) {
	doc := fig1(t)
	// A leaf inside the overlap region has parents in several
	// hierarchies. Take leaves under dmg, then their parents.
	parents := sel(t, doc, "//dmg/text()/..")
	// Parents across hierarchies of dmg's leaves: line1, w2, w3, res, dmg.
	count := map[string]int{}
	for _, g := range names(parents) {
		count[g]++
	}
	for _, want := range []string{"line", "w", "res", "dmg"} {
		if count[want] == 0 {
			t.Errorf("missing %s parent; got %v", want, names(parents))
		}
	}
}

func TestHierarchyFunction(t *testing.T) {
	doc := fig1(t)
	// Filter overlapping markup to one hierarchy.
	ws := sel(t, doc, "//dmg/overlapping::*[hierarchy()='words']")
	if len(ws) != 2 {
		t.Errorf("overlap words = %v", names(ws))
	}
	v := evalVal(t, doc, "hierarchy(//dmg)")
	if v.String() != "damage" {
		t.Errorf("hierarchy(//dmg) = %q", v.String())
	}
}

func TestAncestorAxis(t *testing.T) {
	doc := fig1(t)
	anc := sel(t, doc, "//w[2]/ancestor::*")
	// w[4,8) ancestors within words tree: none (top-level), so only root
	// via element path... ancestor::* excludes root (matches elements).
	if len(anc) != 0 {
		t.Errorf("ancestor::* = %v", names(anc))
	}
	ancNode := sel(t, doc, "//w[2]/ancestor::node()")
	if len(ancNode) != 1 || ancNode[0].Kind() != goddag.KindRoot {
		t.Errorf("ancestor::node() = %v", names(ancNode))
	}
	// Leaf ancestors span hierarchies.
	leafAnc := sel(t, doc, "//res/text()[1]/ancestor::node()")
	count := map[string]int{}
	for _, g := range names(leafAnc) {
		count[g]++
	}
	if count["res"] != 1 || count["line"] != 1 || count["/"] != 1 {
		t.Errorf("leaf ancestors = %v", names(leafAnc))
	}
}

func TestSiblingAxes(t *testing.T) {
	doc := fig1(t)
	fs := sel(t, doc, "//w[2]/following-sibling::w")
	if len(fs) != 4 {
		t.Errorf("following-sibling = %v", names(fs))
	}
	ps := sel(t, doc, "//w[2]/preceding-sibling::w")
	if len(ps) != 1 || ps[0].Text() != "swa" {
		t.Errorf("preceding-sibling = %v", names(ps))
	}
}

func TestFollowingPreceding(t *testing.T) {
	doc := fig1(t)
	// Elements entirely after dmg[6,11): w[13,15), w[16,18), w[19,24),
	// line[12,24). res starts at 10 < 11 so it is not following.
	fol := sel(t, doc, "//dmg/following::*")
	count := map[string]int{}
	for _, g := range names(fol) {
		count[g]++
	}
	if count["w"] != 3 || count["line"] != 1 || count["res"] != 0 {
		t.Errorf("following = %v", names(fol))
	}
	pre := sel(t, doc, "//dmg/preceding::*")
	count = map[string]int{}
	for _, g := range names(pre) {
		count[g]++
	}
	// Entirely before [6,11): w[0,3), w[4,8)? ends at 8 > 6 — no. So w1 only.
	if count["w"] != 1 || len(pre) != 1 {
		t.Errorf("preceding = %v", names(pre))
	}
}

func TestAttributes(t *testing.T) {
	doc := fig1(t)
	v := evalVal(t, doc, "//res/@resp")
	if v.String() != "ed" {
		t.Errorf("@resp = %q", v.String())
	}
	all := evalVal(t, doc, "//line/@*")
	if len(all.Attrs()) != 2 {
		t.Errorf("line/@* = %v", all.Attrs())
	}
	// Comparison through attributes.
	v2 := evalVal(t, doc, `count(//line[@n='1'])`)
	if v2.Number() != 1 {
		t.Errorf("count = %v", v2.Number())
	}
}

func TestCountAndArithmetic(t *testing.T) {
	doc := fig1(t)
	cases := []struct {
		q    string
		want float64
	}{
		{"count(//w)", 6},
		{"count(//w) + count(//line)", 8},
		{"count(//w) - 1", 5},
		{"count(//w) * 2", 12},
		{"count(//w) div 2", 3},
		{"count(//w) mod 4", 2},
		{"-count(//w)", -6},
		{"count(//w | //line)", 8},
		{"count(//dmg/overlapping::*)", 3},
		{"span-start(//dmg)", 6},
		{"span-end(//dmg)", 11},
		{"string-length('abc')", 3},
	}
	for _, c := range cases {
		v := evalVal(t, doc, c.q)
		if v.Number() != c.want {
			t.Errorf("%s = %v, want %v", c.q, v.Number(), c.want)
		}
	}
}

func TestBooleansAndComparisons(t *testing.T) {
	doc := fig1(t)
	cases := []struct {
		q    string
		want bool
	}{
		{"count(//w) = 6", true},
		{"count(//w) != 6", false},
		{"count(//w) > 5", true},
		{"count(//w) >= 6", true},
		{"count(//w) < 6", false},
		{"count(//w) <= 5", false},
		{"true()", true},
		{"false()", false},
		{"not(false())", true},
		{"true() and false()", false},
		{"true() or false()", true},
		{"contains('hello', 'ell')", true},
		{"starts-with('hello', 'he')", true},
		{"starts-with('hello', 'lo')", false},
		{"overlaps(//dmg, //res)", true},
		{"overlaps(//line, //line)", false},
		{"'a' = 'a'", true},
		{"'a' != 'b'", true},
		{"1 < 2 and 2 < 3", true},
	}
	for _, c := range cases {
		v := evalVal(t, doc, c.q)
		if v.Bool() != c.want {
			t.Errorf("%s = %v, want %v", c.q, v.Bool(), c.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	doc := fig1(t)
	cases := []struct {
		q, want string
	}{
		{"string(//w[1])", "swa"},
		{"concat('a', 'b', 'c')", "abc"},
		{"substring('hello', 2)", "ello"},
		{"substring('hello', 2, 3)", "ell"},
		{"normalize-space('  a   b  ')", "a b"},
		{"name(//dmg)", "dmg"},
		{"string(count(//w))", "6"},
	}
	for _, c := range cases {
		v := evalVal(t, doc, c.q)
		if v.String() != c.want {
			t.Errorf("%s = %q, want %q", c.q, v.String(), c.want)
		}
	}
}

func TestOverlapsPredicate(t *testing.T) {
	doc := fig1(t)
	// Words that overlap any damage markup.
	ws := sel(t, doc, "//w[overlaps(//dmg)]")
	if len(ws) != 2 {
		t.Errorf("w overlapping dmg = %v", names(ws))
	}
}

func TestWalkAndIntervalAgree(t *testing.T) {
	doc := fig1(t)
	queries := []string{
		"//dmg/overlapping::*",
		"//res/overlapping::w",
		"//w/overlapping::*",
		"//line/overlapping::*",
	}
	for _, qs := range queries {
		q := MustCompile(qs)
		a, err := q.EvalWithOptions(doc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := q.EvalWithOptions(doc, Options{OverlapByWalk: true})
		if err != nil {
			t.Fatal(err)
		}
		na, nb := names(a.Nodes()), names(b.Nodes())
		if strings.Join(na, " ") != strings.Join(nb, " ") {
			t.Errorf("%s: interval %v != walk %v", qs, na, nb)
		}
	}
}

func TestEvalFrom(t *testing.T) {
	doc := fig1(t)
	dmg := doc.Hierarchy("damage").Elements()[0]
	q := MustCompile("overlapping::w")
	v, err := q.EvalFrom(doc, dmg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes()) != 2 {
		t.Errorf("from dmg: %v", names(v.Nodes()))
	}
}

func TestPathFromFilter(t *testing.T) {
	doc := fig1(t)
	ns := sel(t, doc, "(//dmg)/overlapping::w")
	if len(ns) != 2 {
		t.Errorf("filtered path = %v", names(ns))
	}
}

func TestUnionDedup(t *testing.T) {
	doc := fig1(t)
	ns := sel(t, doc, "//w | //w")
	if len(ns) != 6 {
		t.Errorf("union dedup = %d", len(ns))
	}
	// Document order: results sorted by span start.
	for i := 1; i < len(ns); i++ {
		if goddag.CompareNodes(ns[i-1], ns[i]) > 0 {
			t.Errorf("out of order at %d", i)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"//",
		"//w[",
		"//w[]",
		"//w)",
		"bogus-axis::w",
		"//w/unknown::x",
		"@",
		"'unterminated",
		"//w[@]",
		"1 !",
		"count(",
		"count(//w",
		"//w[position() = ]",
		"a:b",
	}
	for _, q := range bad {
		if _, err := Compile(q); err == nil {
			t.Errorf("Compile(%q): expected error", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	doc := fig1(t)
	bad := []string{
		"unknownfn()",
		"count('notanodeset')",
		"count()",
		"overlaps('x')",
		"('str')/w",
		"not()",
	}
	for _, q := range bad {
		c, err := Compile(q)
		if err != nil {
			continue // compile-time rejection is fine too
		}
		if _, err := c.Eval(doc); err == nil {
			t.Errorf("Eval(%q): expected error", q)
		}
	}
	// Select on a non-node-set result errors.
	if _, err := Select(doc, "count(//w)"); err == nil {
		t.Error("Select of number should error")
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Compile("//w[")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if !strings.Contains(se.Error(), "xpath:") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestQueryString(t *testing.T) {
	q := MustCompile("//w[1]")
	if q.String() != "//w[1]" {
		t.Errorf("String() = %q", q.String())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustCompile("//w[")
}

func TestRelativeVsAbsolute(t *testing.T) {
	doc := fig1(t)
	w2 := doc.Hierarchy("words").Elements()[1]
	// Relative query from w2.
	q := MustCompile("following-sibling::w")
	v, err := q.EvalFrom(doc, w2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes()) != 4 {
		t.Errorf("relative = %v", names(v.Nodes()))
	}
	// Absolute query ignores context.
	qa := MustCompile("//w")
	va, err := qa.EvalFrom(doc, w2)
	if err != nil {
		t.Fatal(err)
	}
	if len(va.Nodes()) != 6 {
		t.Errorf("absolute = %v", names(va.Nodes()))
	}
}

func TestSelfAndDotDot(t *testing.T) {
	doc := fig1(t)
	ns := sel(t, doc, "//dmg/.")
	if len(ns) != 1 || names(ns)[0] != "dmg" {
		t.Errorf("self = %v", names(ns))
	}
	up := sel(t, doc, "//dmg/..")
	if len(up) != 1 || up[0].Kind() != goddag.KindRoot {
		t.Errorf(".. = %v", names(up))
	}
}

func TestDescendantOrSelf(t *testing.T) {
	doc := fig1(t)
	ns := sel(t, doc, "//line/descendant-or-self::node()")
	// 2 lines + their leaves; w's are NOT descendants of lines (different
	// hierarchy trees), but shared leaves are.
	hasLine, hasLeaf, hasW := false, false, false
	for _, n := range ns {
		switch v := n.(type) {
		case *goddag.Element:
			if v.Name() == "line" {
				hasLine = true
			}
			if v.Name() == "w" {
				hasW = true
			}
		case goddag.Leaf:
			hasLeaf = true
		}
	}
	if !hasLine || !hasLeaf {
		t.Errorf("descendant-or-self missing kinds: %v", names(ns))
	}
	if hasW {
		t.Error("w should not be a descendant of line (different hierarchy)")
	}
}

func TestRootChildrenNoHierarchies(t *testing.T) {
	doc := goddag.New("r", "plain text")
	ns := sel(t, doc, "/node()")
	if len(ns) != 1 || ns[0].Kind() != goddag.KindLeaf {
		t.Errorf("bare document children = %v", names(ns))
	}
}
