package xpath

import (
	"fmt"
	"strings"
)

// Axis enumerates the navigation axes of Extended XPath.
type Axis int

// The axes. The first group is standard XPath re-defined over GODDAG; the
// second group is the concurrent-markup extension of [7].
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
	AxisSelf
	AxisAttribute

	AxisOverlapping
	AxisOverlappingLeft
	AxisOverlappingRight
	AxisCovering
	AxisCovered
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"parent":             AxisParent,
	"ancestor":           AxisAncestor,
	"ancestor-or-self":   AxisAncestorOrSelf,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
	"following":          AxisFollowing,
	"preceding":          AxisPreceding,
	"self":               AxisSelf,
	"attribute":          AxisAttribute,
	"overlapping":        AxisOverlapping,
	"overlapping-left":   AxisOverlappingLeft,
	"overlapping-right":  AxisOverlappingRight,
	"covering":           AxisCovering,
	"covered":            AxisCovered,
}

// String returns the axis name.
func (a Axis) String() string {
	for n, ax := range axisNames {
		if ax == a {
			return n
		}
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// testKind discriminates node tests.
type testKind int

const (
	testName testKind = iota // a specific element name
	testAny                  // *
	testNode                 // node()
	testText                 // text()
)

// nodeTest selects nodes on an axis.
type nodeTest struct {
	kind testKind
	name string
	// hierarchy restricts matches to one hierarchy when non-empty
	// (written hierarchy:name is not supported; use the in() predicate —
	// kept for future use by the evaluator).
	hierarchy string
}

func (t nodeTest) String() string {
	switch t.kind {
	case testName:
		return t.name
	case testAny:
		return "*"
	case testNode:
		return "node()"
	default:
		return "text()"
	}
}

// step is one location step: axis::test[pred]...
type step struct {
	axis  Axis
	test  nodeTest
	preds []expr
}

func (s step) String() string {
	var b strings.Builder
	b.WriteString(s.axis.String())
	b.WriteString("::")
	b.WriteString(s.test.String())
	for _, p := range s.preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// expr is an evaluable query expression node.
type expr interface {
	fmt.Stringer
	isExpr()
}

// pathExpr is a location path: absolute or relative sequence of steps.
type pathExpr struct {
	absolute bool
	steps    []step
	// filter is the primary expression the path applies to, e.g.
	// (expr)/child::a. Nil for plain location paths.
	filter expr
}

func (p *pathExpr) isExpr() {}
func (p *pathExpr) String() string {
	var b strings.Builder
	if p.filter != nil {
		fmt.Fprintf(&b, "(%s)", p.filter)
	}
	if p.absolute {
		b.WriteString("/")
	}
	for i, s := range p.steps {
		if i > 0 || p.filter != nil {
			if i > 0 {
				b.WriteString("/")
			} else {
				b.WriteString("/")
			}
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// binaryExpr applies a binary operator.
type binaryExpr struct {
	op   string // or and = != < <= > >= + - * div mod |
	l, r expr
}

func (e *binaryExpr) isExpr() {}
func (e *binaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r)
}

// unaryExpr is numeric negation.
type unaryExpr struct {
	x expr
}

func (e *unaryExpr) isExpr()        {}
func (e *unaryExpr) String() string { return fmt.Sprintf("(-%s)", e.x) }

// literalExpr is a string constant.
type literalExpr struct {
	s string
}

func (e *literalExpr) isExpr()        {}
func (e *literalExpr) String() string { return fmt.Sprintf("%q", e.s) }

// numberExpr is a numeric constant.
type numberExpr struct {
	f float64
}

func (e *numberExpr) isExpr()        {}
func (e *numberExpr) String() string { return fmt.Sprintf("%g", e.f) }

// varExpr references a variable bound by the caller (or by an enclosing
// FLWOR clause in package xquery).
type varExpr struct {
	name string
}

func (e *varExpr) isExpr()        {}
func (e *varExpr) String() string { return "$" + e.name }

// callExpr is a function call.
type callExpr struct {
	name string
	args []expr
}

func (e *callExpr) isExpr() {}
func (e *callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.name, strings.Join(parts, ", "))
}
