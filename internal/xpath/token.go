// Package xpath implements Extended XPath, the paper's query language for
// concurrent XML: XPath 1.0 semantics re-defined over the GODDAG (so a
// leaf has one parent *per hierarchy* and navigation crosses hierarchies
// through leaves and the root), extended with axes specific to
// overlapping markup (paper §4 and reference [7]):
//
//	overlapping::        elements properly overlapping the context span
//	overlapping-left::   overlapping and beginning before the context
//	overlapping-right::  overlapping and ending after the context
//	covering::           elements of any hierarchy whose span contains
//	                     the context node's span (the cross-hierarchy
//	                     analogue of ancestor)
//	covered::            nodes whose span lies inside the context span
//	                     (the cross-hierarchy analogue of descendant)
//
// plus the functions hierarchy(), overlaps(ns), span-start(), span-end().
//
// Deviations from full XPath 1.0, chosen for document-centric querying:
// no variables, no namespace axes, and binary minus must be surrounded by
// whitespace (names may contain '-').
//
// # Plans and streams
//
// Evaluation has two layers. Eval and friends are the reference path:
// they materialize a Value per step. Above them sits a small cost-based
// planner (plan.go): before a query runs, its shape is matched against
// a few plan kinds — name-bucket scans with statically-safe predicates
// pushed into the scan, reversed semi-joins for //a/overlapping::b
// driven from whichever side's bucket is smaller, and O(1)
// count()/exists plans that read bucket cardinalities instead of
// building node sets. Selectivity comes from the document's name-index
// bucket sizes; the chosen plan is cached on the Query in an atomic
// slot keyed by (document, version), so a structural edit invalidates
// it and concurrent evaluations share one planning pass. Queries no
// plan matches fall back to the reference path — by construction the
// planner never changes results, a property the corpus-grid
// differential tests assert.
//
// StreamWithOptions exposes the lazy contract: a Stream pulls result
// nodes one at a time in document order (Next/Size/Count), so callers
// that encode, clamp, or count never hold the full node set; evaluator
// state (including the dedup bitset, sized to the document's ordinal
// range) is pooled and returned on Close. The serving layer encodes
// responses straight off this iterator.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF  tokenKind = iota
	tokName           // element names, axis names, function names
	tokNumber
	tokLiteral // quoted string
	tokSlash
	tokDoubleSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokAt
	tokDoubleColon
	tokComma
	tokStar
	tokPipe
	tokPlus
	tokMinus
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokDot
	tokDotDot
	tokVar // $name
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "EOF", tokName: "name", tokNumber: "number", tokLiteral: "literal",
		tokSlash: "/", tokDoubleSlash: "//", tokLBracket: "[", tokRBracket: "]",
		tokLParen: "(", tokRParen: ")", tokAt: "@", tokDoubleColon: "::",
		tokComma: ",", tokStar: "*", tokPipe: "|", tokPlus: "+", tokMinus: "-",
		tokEq: "=", tokNeq: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
		tokDot: ".", tokDotDot: "..", tokVar: "$var",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// SyntaxError reports a query parse failure.
type SyntaxError struct {
	Query string
	Pos   int
	Msg   string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %q at %d: %s", e.Query, e.Pos, e.Msg)
}

// lex tokenizes a query.
func lex(query string) ([]token, error) {
	var out []token
	i := 0
	n := len(query)
	errAt := func(pos int, format string, args ...any) error {
		return &SyntaxError{Query: query, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	for i < n {
		c := query[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			if i+1 < n && query[i+1] == '/' {
				out = append(out, token{kind: tokDoubleSlash, pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokSlash, pos: i})
				i++
			}
		case c == '[':
			out = append(out, token{kind: tokLBracket, pos: i})
			i++
		case c == ']':
			out = append(out, token{kind: tokRBracket, pos: i})
			i++
		case c == '(':
			out = append(out, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			out = append(out, token{kind: tokRParen, pos: i})
			i++
		case c == '@':
			out = append(out, token{kind: tokAt, pos: i})
			i++
		case c == ':':
			if i+1 < n && query[i+1] == ':' {
				out = append(out, token{kind: tokDoubleColon, pos: i})
				i += 2
			} else {
				return nil, errAt(i, "single ':' (namespaces are not supported)")
			}
		case c == ',':
			out = append(out, token{kind: tokComma, pos: i})
			i++
		case c == '*':
			out = append(out, token{kind: tokStar, pos: i})
			i++
		case c == '|':
			out = append(out, token{kind: tokPipe, pos: i})
			i++
		case c == '+':
			out = append(out, token{kind: tokPlus, pos: i})
			i++
		case c == '-':
			// Binary minus must be free-standing (names contain '-').
			out = append(out, token{kind: tokMinus, pos: i})
			i++
		case c == '=':
			out = append(out, token{kind: tokEq, pos: i})
			i++
		case c == '!':
			if i+1 < n && query[i+1] == '=' {
				out = append(out, token{kind: tokNeq, pos: i})
				i += 2
			} else {
				return nil, errAt(i, "'!' must be followed by '='")
			}
		case c == '<':
			if i+1 < n && query[i+1] == '=' {
				out = append(out, token{kind: tokLe, pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokLt, pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && query[i+1] == '=' {
				out = append(out, token{kind: tokGe, pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokGt, pos: i})
				i++
			}
		case c == '$':
			i++
			start := i
			for i < n && isNameByte(query[i]) {
				i++
			}
			if i == start {
				return nil, errAt(start-1, "expected variable name after '$'")
			}
			out = append(out, token{kind: tokVar, text: query[start:i], pos: start - 1})
		case c == '.':
			if i+1 < n && query[i+1] == '.' {
				out = append(out, token{kind: tokDotDot, pos: i})
				i += 2
			} else if i+1 < n && query[i+1] >= '0' && query[i+1] <= '9' {
				start := i
				i++
				for i < n && query[i] >= '0' && query[i] <= '9' {
					i++
				}
				var f float64
				fmt.Sscanf(query[start:i], "%g", &f)
				out = append(out, token{kind: tokNumber, num: f, pos: start})
			} else {
				out = append(out, token{kind: tokDot, pos: i})
				i++
			}
		case c == '\'' || c == '"':
			q := c
			j := strings.IndexByte(query[i+1:], q)
			if j < 0 {
				return nil, errAt(i, "unterminated string literal")
			}
			out = append(out, token{kind: tokLiteral, text: query[i+1 : i+1+j], pos: i})
			i += j + 2
		case c >= '0' && c <= '9':
			start := i
			for i < n && (query[i] >= '0' && query[i] <= '9') {
				i++
			}
			if i < n && query[i] == '.' {
				i++
				for i < n && (query[i] >= '0' && query[i] <= '9') {
					i++
				}
			}
			var f float64
			fmt.Sscanf(query[start:i], "%g", &f)
			out = append(out, token{kind: tokNumber, num: f, pos: start})
		case isNameStartByte(c):
			start := i
			for i < n && isNameByte(query[i]) {
				i++
			}
			// A '-' inside a name: continue only if followed by a name
			// character (so "a - b" lexes as name, minus, name but
			// "following-sibling" stays one name).
			for i < n && query[i] == '-' && i+1 < n && isNameByte(query[i+1]) {
				i++
				for i < n && isNameByte(query[i]) {
					i++
				}
			}
			out = append(out, token{kind: tokName, text: query[start:i], pos: start})
		default:
			r := rune(c)
			if r >= 0x80 {
				// Multi-byte rune: treat as name if it is a letter.
				rs := []rune(query[i:])
				if unicode.IsLetter(rs[0]) {
					start := i
					for i < n {
						r2 := []rune(query[i:])[0]
						if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' && r2 != '-' && r2 != '.' {
							break
						}
						i += len(string(r2))
					}
					out = append(out, token{kind: tokName, text: query[start:i], pos: start})
					continue
				}
			}
			return nil, errAt(i, "unexpected character %q", c)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}

func isNameStartByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameByte(c byte) bool {
	return isNameStartByte(c) || (c >= '0' && c <= '9') || c == '.' || c == '_'
}
