package xpath

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/goddag"
	"repro/internal/obs"
)

// Value is the result of evaluating an Extended XPath expression: a
// node-set, string, number, or boolean, following XPath 1.0's type system.
type Value struct {
	kind  valueKind
	nodes []goddag.Node
	s     string
	f     float64
	b     bool
	attrs []AttrNode
}

type valueKind int

const (
	valNodes valueKind = iota
	valString
	valNumber
	valBool
	valAttrs
)

// String names the kind for error messages.
func (k valueKind) String() string {
	switch k {
	case valNodes:
		return "node-set"
	case valString:
		return "string"
	case valNumber:
		return "number"
	case valBool:
		return "boolean"
	case valAttrs:
		return "attribute-set"
	default:
		return fmt.Sprintf("valueKind(%d)", int(k))
	}
}

// AttrNode is an attribute selected by the attribute axis, paired with
// its owning element.
type AttrNode struct {
	Owner *goddag.Element
	Name  string
	Value string
}

// Kind names the value's XPath type: "node-set", "attribute-set",
// "string", "number", or "boolean".
func (v Value) Kind() string { return v.kind.String() }

// Nodes returns the node-set (nil for non-node values).
func (v Value) Nodes() []goddag.Node { return v.nodes }

// Attrs returns selected attributes (attribute-axis results).
func (v Value) Attrs() []AttrNode { return v.attrs }

// IsNodeSet reports whether the value is a node-set (or attribute set).
func (v Value) IsNodeSet() bool { return v.kind == valNodes || v.kind == valAttrs }

// String converts the value to a string per XPath rules: a node-set
// converts to the string value of its first node.
func (v Value) String() string {
	switch v.kind {
	case valString:
		return v.s
	case valNumber:
		return formatNumber(v.f)
	case valBool:
		if v.b {
			return "true"
		}
		return "false"
	case valAttrs:
		if len(v.attrs) == 0 {
			return ""
		}
		return v.attrs[0].Value
	default:
		if len(v.nodes) == 0 {
			return ""
		}
		return v.nodes[0].Text()
	}
}

// Number converts the value to a number per XPath rules.
func (v Value) Number() float64 {
	switch v.kind {
	case valNumber:
		return v.f
	case valBool:
		if v.b {
			return 1
		}
		return 0
	default:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.String()), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// Bool converts the value to a boolean per XPath rules: node-sets are
// true when non-empty, strings when non-empty, numbers when non-zero.
func (v Value) Bool() bool {
	switch v.kind {
	case valBool:
		return v.b
	case valNumber:
		return v.f != 0 && !math.IsNaN(v.f)
	case valString:
		return v.s != ""
	case valAttrs:
		return len(v.attrs) > 0
	default:
		return len(v.nodes) > 0
	}
}

func formatNumber(f float64) string {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Singleton returns a node-set value holding exactly one node; the FLWOR
// layer (package xquery) binds iteration variables with it.
func Singleton(n goddag.Node) Value { return nodesValue([]goddag.Node{n}) }

func nodesValue(ns []goddag.Node) Value { return Value{kind: valNodes, nodes: ns} }
func stringValue(s string) Value        { return Value{kind: valString, s: s} }
func numberValue(f float64) Value       { return Value{kind: valNumber, f: f} }
func boolValue(b bool) Value            { return Value{kind: valBool, b: b} }

// EvalError reports a runtime evaluation failure.
type EvalError struct {
	Query string
	Msg   string
}

// Error implements the error interface.
func (e *EvalError) Error() string { return fmt.Sprintf("xpath: %q: %s", e.Query, e.Msg) }

// Bindings maps variable names (without '$') to values for queries that
// reference $variables. Node-set values must hold nodes of the document
// the query is evaluated against: evaluation is keyed on that document's
// ordinal numbering, and nodes of a different document have no (or a
// colliding) ordinal there.
type Bindings map[string]Value

// evalCtx carries the evaluation state for one node.
type evalCtx struct {
	doc  *goddag.Document
	node goddag.Node
	pos  int // 1-based position in the current node list
	size int
	vars Bindings
}

// Options tune evaluation.
type Options struct {
	// OverlapByWalk forces the overlapping axes to traverse the GODDAG
	// through shared leaves instead of using span-interval arithmetic.
	// It exists as the ablation baseline for experiment A2
	// and is never faster.
	OverlapByWalk bool

	// NoFastPaths disables the step fast paths (collapsed descendants
	// and leaf-free candidate enumeration) so evaluation takes only the
	// reference code paths. Used by differential tests; results must be
	// identical either way.
	NoFastPaths bool

	// NoPlanner disables the cost-based plan layer (bucket scans,
	// predicate pushdown, semi-join reordering, count/exists clamps)
	// while keeping the step fast paths. Used by differential tests and
	// ablation benchmarks; results must be identical either way.
	NoPlanner bool

	// Context, when cancellable, makes the evaluation cooperative: the
	// evaluator polls ctx.Err() at amortized checkpoints (every
	// checkInterval visited nodes) and unwinds with context.Canceled or
	// context.DeadlineExceeded. Nil behaves like context.Background().
	Context context.Context

	// Budget bounds the evaluation's resources (see Budget); exceeding
	// it unwinds with a *BudgetError matching ErrBudgetExceeded. The
	// zero value is unlimited.
	Budget Budget

	// Limiter, when non-nil, supplies the cancellation/budget state
	// directly and overrides Context and Budget — the seam for one
	// request spanning several evaluations (the FLWOR layer shares one
	// Limiter across all clause evaluations, making the budget
	// cumulative).
	Limiter *Limiter
}

// Eval evaluates the query with the document root as context node.
func (q *Query) Eval(doc *goddag.Document) (Value, error) {
	return q.EvalWithOptions(doc, Options{})
}

// EvalWithOptions evaluates with explicit options.
func (q *Query) EvalWithOptions(doc *goddag.Document, opts Options) (Value, error) {
	ev := acquireEvaluator(doc, q.source, opts)
	defer releaseEvaluator(ev)
	if err := ev.lim.Err(); err != nil {
		return Value{}, err
	}
	sp := ev.tr.Begin("eval")
	v, err := ev.eval(q.root, evalCtx{doc: doc, node: doc.Root(), pos: 1, size: 1})
	sp.End()
	return v, err
}

// EvalContext evaluates under ctx with a resource budget: the
// evaluation aborts with ctx.Err() once ctx ends, and with an error
// matching ErrBudgetExceeded once b is exhausted, both observed at
// amortized per-node checkpoints.
func (q *Query) EvalContext(ctx context.Context, doc *goddag.Document, b Budget) (Value, error) {
	return q.EvalWithOptions(doc, Options{Context: ctx, Budget: b})
}

// EvalFrom evaluates the query with an explicit context node, which must
// belong to doc.
func (q *Query) EvalFrom(doc *goddag.Document, node goddag.Node) (Value, error) {
	return q.EvalFromWithOptions(doc, node, Options{})
}

// EvalFromWithOptions evaluates with an explicit context node and options.
func (q *Query) EvalFromWithOptions(doc *goddag.Document, node goddag.Node, opts Options) (Value, error) {
	ev := acquireEvaluator(doc, q.source, opts)
	defer releaseEvaluator(ev)
	if err := ev.lim.Err(); err != nil {
		return Value{}, err
	}
	return ev.eval(q.root, evalCtx{doc: doc, node: node, pos: 1, size: 1})
}

// EvalWith evaluates with an explicit context node and variable bindings
// (for $x references; the FLWOR layer in package xquery builds on this).
func (q *Query) EvalWith(doc *goddag.Document, node goddag.Node, vars Bindings) (Value, error) {
	return q.EvalWithLimiter(doc, node, vars, nil)
}

// EvalWithLimiter is EvalWith against a caller-owned Limiter: several
// evaluations sharing one Limiter share one cancellation context and
// one cumulative budget. A nil Limiter is unlimited.
func (q *Query) EvalWithLimiter(doc *goddag.Document, node goddag.Node, vars Bindings, lim *Limiter) (Value, error) {
	ev := acquireEvaluator(doc, q.source, Options{Limiter: lim})
	defer releaseEvaluator(ev)
	if err := ev.lim.Err(); err != nil {
		return Value{}, err
	}
	return ev.eval(q.root, evalCtx{doc: doc, node: node, pos: 1, size: 1, vars: vars})
}

// Select is a convenience wrapper returning the node-set of the query; it
// errors when the query does not produce a node-set.
func Select(doc *goddag.Document, query string) ([]goddag.Node, error) {
	q, err := Compile(query)
	if err != nil {
		return nil, err
	}
	v, err := q.Eval(doc)
	if err != nil {
		return nil, err
	}
	if !v.IsNodeSet() {
		return nil, &EvalError{Query: query, Msg: fmt.Sprintf("result is not a node-set (got %s value %q)", v.kind, v.String())}
	}
	return v.nodes, nil
}

type evaluator struct {
	doc   *goddag.Document
	query string
	opts  Options

	// lim is the evaluation's cancellation/budget checkpoint state,
	// derived from opts at acquire time; nil means unlimited. ownLim
	// marks a limiter the evaluator created (vs. opts.Limiter), whose
	// visit count release folds into the engine counters and trace.
	lim    *Limiter
	ownLim bool

	// tr is the request's stage trace from opts.Context; nil (a no-op
	// handle) on untraced evaluations.
	tr *obs.Trace

	// Query-path scratch, lazily initialized per evaluation: the
	// document's ordinal numbering and a reusable ordinal bitset for
	// node-set deduplication (no per-query maps).
	ord  *goddag.Ordinals
	seen ordSet
}

// ordinals returns the document's ordinal numbering, fetched once per
// evaluation.
func (ev *evaluator) ordinals() *goddag.Ordinals {
	if ev.ord == nil {
		ev.ord = ev.doc.Ordinals()
	}
	return ev.ord
}

// ordSet is a reusable bitset over node ordinals. add records which bits
// were set so reset can clear exactly those words instead of the whole
// set. Uses must not overlap: acquire it, drain it, reset it before any
// recursive evaluation can need it again.
type ordSet struct {
	bits    []uint64
	touched []int32
}

// grow sizes the set for ordinals [0, n).
func (s *ordSet) grow(n int) {
	w := (n + 63) / 64
	if cap(s.bits) < w {
		s.bits = make([]uint64, w)
		return
	}
	s.bits = s.bits[:w]
}

// add inserts ord, reporting whether it was newly added.
func (s *ordSet) add(ord int) bool {
	w, b := ord>>6, uint64(1)<<(ord&63)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.touched = append(s.touched, int32(ord))
	return true
}

// reset clears every bit set since the last reset.
func (s *ordSet) reset() {
	for _, o := range s.touched {
		s.bits[o>>6] &^= 1 << (uint(o) & 63)
	}
	s.touched = s.touched[:0]
}

// acquireSeen returns the evaluator's dedup bitset sized to the current
// ordinal space. The caller must reset() it when done.
func (ev *evaluator) acquireSeen() *ordSet {
	ev.seen.grow(ev.ordinals().Len())
	return &ev.seen
}

func (ev *evaluator) errorf(format string, args ...any) error {
	return &EvalError{Query: ev.query, Msg: fmt.Sprintf(format, args...)}
}

func (ev *evaluator) eval(e expr, ctx evalCtx) (Value, error) {
	// The cooperative checkpoint of the recursive evaluator: every
	// expression evaluation counts one visit, so predicate loops over
	// large candidate sets observe cancellation even when each single
	// evaluation is cheap.
	if err := ev.lim.Visit(1); err != nil {
		return Value{}, err
	}
	switch n := e.(type) {
	case *varExpr:
		v, ok := ctx.vars[n.name]
		if !ok {
			return Value{}, ev.errorf("unbound variable $%s", n.name)
		}
		return v, nil
	case *literalExpr:
		return stringValue(n.s), nil
	case *numberExpr:
		return numberValue(n.f), nil
	case *unaryExpr:
		v, err := ev.eval(n.x, ctx)
		if err != nil {
			return Value{}, err
		}
		return numberValue(-v.Number()), nil
	case *binaryExpr:
		return ev.evalBinary(n, ctx)
	case *callExpr:
		return ev.evalCall(n, ctx)
	case *pathExpr:
		return ev.evalPath(n, ctx)
	default:
		return Value{}, ev.errorf("unknown expression %T", e)
	}
}

func (ev *evaluator) evalBinary(e *binaryExpr, ctx evalCtx) (Value, error) {
	switch e.op {
	case "or":
		l, err := ev.eval(e.l, ctx)
		if err != nil {
			return Value{}, err
		}
		if l.Bool() {
			return boolValue(true), nil
		}
		r, err := ev.eval(e.r, ctx)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r.Bool()), nil
	case "and":
		l, err := ev.eval(e.l, ctx)
		if err != nil {
			return Value{}, err
		}
		if !l.Bool() {
			return boolValue(false), nil
		}
		r, err := ev.eval(e.r, ctx)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r.Bool()), nil
	}
	l, err := ev.eval(e.l, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.eval(e.r, ctx)
	if err != nil {
		return Value{}, err
	}
	switch e.op {
	case "|":
		if !l.IsNodeSet() || !r.IsNodeSet() {
			return Value{}, ev.errorf("'|' requires node-sets")
		}
		return nodesValue(ev.union(l.nodes, r.nodes)), nil
	case "=", "!=":
		return boolValue(compareValues(l, r, e.op)), nil
	case "<", "<=", ">", ">=":
		return boolValue(compareNumeric(l, r, e.op)), nil
	case "+":
		return numberValue(l.Number() + r.Number()), nil
	case "-":
		return numberValue(l.Number() - r.Number()), nil
	case "*":
		return numberValue(l.Number() * r.Number()), nil
	case "div":
		return numberValue(l.Number() / r.Number()), nil
	case "mod":
		return numberValue(math.Mod(l.Number(), r.Number())), nil
	default:
		return Value{}, ev.errorf("unknown operator %q", e.op)
	}
}

// compareValues implements =/!= with XPath existential node-set
// semantics (simplified: node string-values are compared).
func compareValues(l, r Value, op string) bool {
	eq := func(a, b string) bool {
		if op == "=" {
			return a == b
		}
		return a != b
	}
	switch {
	case l.IsNodeSet() && r.IsNodeSet():
		for _, a := range setStrings(l) {
			for _, b := range setStrings(r) {
				if eq(a, b) {
					return true
				}
			}
		}
		return false
	case l.IsNodeSet():
		for _, a := range setStrings(l) {
			if eq(a, r.String()) {
				return true
			}
		}
		return false
	case r.IsNodeSet():
		for _, b := range setStrings(r) {
			if eq(l.String(), b) {
				return true
			}
		}
		return false
	case l.kind == valBool || r.kind == valBool:
		return eq(fmt.Sprint(l.Bool()), fmt.Sprint(r.Bool()))
	case l.kind == valNumber || r.kind == valNumber:
		if op == "=" {
			return l.Number() == r.Number()
		}
		return l.Number() != r.Number()
	default:
		return eq(l.String(), r.String())
	}
}

func compareNumeric(l, r Value, op string) bool {
	cmp := func(a, b float64) bool {
		switch op {
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		default:
			return a >= b
		}
	}
	switch {
	case l.IsNodeSet():
		for _, a := range setStrings(l) {
			if f, err := strconv.ParseFloat(strings.TrimSpace(a), 64); err == nil && cmp(f, r.Number()) {
				return true
			}
		}
		return false
	case r.IsNodeSet():
		for _, b := range setStrings(r) {
			if f, err := strconv.ParseFloat(strings.TrimSpace(b), 64); err == nil && cmp(l.Number(), f) {
				return true
			}
		}
		return false
	default:
		return cmp(l.Number(), r.Number())
	}
}

func setStrings(v Value) []string {
	if v.kind == valAttrs {
		out := make([]string, len(v.attrs))
		for i, a := range v.attrs {
			out[i] = a.Value
		}
		return out
	}
	out := make([]string, len(v.nodes))
	for i, n := range v.nodes {
		out[i] = n.Text()
	}
	return out
}

// evalPath evaluates a location path.
func (ev *evaluator) evalPath(p *pathExpr, ctx evalCtx) (Value, error) {
	var current []goddag.Node
	switch {
	case p.filter != nil:
		v, err := ev.eval(p.filter, ctx)
		if err != nil {
			return Value{}, err
		}
		if !v.IsNodeSet() || v.kind == valAttrs {
			return Value{}, ev.errorf("path applied to non-node-set")
		}
		current = v.nodes
	case p.absolute:
		current = []goddag.Node{ev.doc.Root()}
	default:
		current = []goddag.Node{ctx.node}
	}
	if len(p.steps) == 0 {
		return nodesValue(current), nil
	}
	for i, st := range p.steps {
		isLast := i == len(p.steps)-1
		if st.axis == AxisAttribute {
			if !isLast {
				return Value{}, ev.errorf("attribute step must be last")
			}
			var attrs []AttrNode
			for _, n := range current {
				el, ok := n.(*goddag.Element)
				if !ok {
					continue
				}
				for _, a := range el.Attrs() {
					if st.test.kind == testAny || a.Name == st.test.name {
						attrs = append(attrs, AttrNode{Owner: el, Name: a.Name, Value: a.Value})
					}
				}
			}
			// Predicates on attributes: only positional/string predicates
			// make sense; evaluate against the owner element context.
			for _, pred := range st.preds {
				var kept []AttrNode
				for pi, a := range attrs {
					pctx := evalCtx{doc: ev.doc, node: a.Owner, pos: pi + 1, size: len(attrs), vars: ctx.vars}
					v, err := ev.eval(pred, pctx)
					if err != nil {
						return Value{}, err
					}
					if predHolds(v, pi+1) {
						kept = append(kept, a)
					}
				}
				attrs = kept
			}
			return Value{kind: valAttrs, attrs: attrs}, nil
		}
		next, err := ev.evalStep(st, current, ctx.vars)
		if err != nil {
			return Value{}, err
		}
		current = next
	}
	return nodesValue(current), nil
}

// evalStep applies one step to every node of the current set, with
// predicate filtering per origin node list (XPath position semantics).
// Per-origin results are combined by a k-way document-order merge.
func (ev *evaluator) evalStep(st step, current []goddag.Node, vars Bindings) ([]goddag.Node, error) {
	if out, ok, err := ev.fastStep(st, current); err != nil {
		return nil, err
	} else if ok {
		return out, nil
	}
	// Even with predicates, element-only tests never match leaves, so
	// candidate enumeration can use the leaf-free fast path per origin;
	// predicate positions are unchanged (leaves were filtered out anyway).
	bare := step{axis: st.axis, test: st.test}
	bareFast := ev.fastStepApplies(bare)
	lists := make([][]goddag.Node, 0, len(current))
	for _, n := range current {
		var cands []goddag.Node
		if bareFast {
			cands = ev.fastCands(bare, n)
			if err := ev.lim.Visit(len(cands) + 1); err != nil {
				return nil, err
			}
		} else {
			// The materialized axis, not the filtered survivors, is what
			// the origin paid for — charge that (following/preceding
			// enumerate large windows even when few candidates match).
			axis := ev.axisNodes(st.axis, n)
			if err := ev.lim.Visit(len(axis) + 1); err != nil {
				return nil, err
			}
			cands = filterTest(axis, st.test)
		}
		for _, pred := range st.preds {
			var kept []goddag.Node
			size := len(cands)
			for i, c := range cands {
				pctx := evalCtx{doc: ev.doc, node: c, pos: i + 1, size: size, vars: vars}
				v, err := ev.eval(pred, pctx)
				if err != nil {
					return nil, err
				}
				if predHolds(v, i+1) {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		if len(cands) != 0 {
			lists = append(lists, cands)
		}
	}
	return ev.mergeLists(lists), nil
}

// fastStep handles the hottest step shapes without materializing whole
// axis enumerations: predicate-free element tests (a name or *). Element
// tests never match leaves, so these paths skip leaf enumeration
// entirely; name tests are served by the document's name index,
// intersected with pre-order subtree ranges (descendant axes) or span
// windows located by binary search (following/preceding/covered).
func (ev *evaluator) fastStep(st step, current []goddag.Node) ([]goddag.Node, bool, error) {
	if !ev.fastStepApplies(st) {
		return nil, false, nil
	}
	if len(current) == 1 {
		c := ev.fastCands(st, current[0])
		if err := ev.lim.Visit(len(c) + 1); err != nil {
			return nil, false, err
		}
		return ev.dedupSort(c), true, nil
	}
	lists := make([][]goddag.Node, 0, len(current))
	for _, n := range current {
		c := ev.fastCands(st, n)
		if err := ev.lim.Visit(len(c) + 1); err != nil {
			return nil, false, err
		}
		if len(c) != 0 {
			lists = append(lists, c)
		}
	}
	if st.axis == AxisChild {
		// A child-axis element candidate appears under exactly one
		// parent, so per-origin lists are mutually duplicate-free.
		return ev.concatOrdered(lists), true, nil
	}
	return ev.mergeLists(lists), true, nil
}

// concatOrdered concatenates per-origin candidate lists known to be
// mutually duplicate-free (same-hierarchy child lists of distinct
// parents, per-hierarchy top-element lists), sorting by ordinal only
// when the blocks interleave — for disjoint origins in document order
// the concatenation is already sorted and this is one O(total) pass.
func (ev *evaluator) concatOrdered(lists [][]goddag.Node) []goddag.Node {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return ev.dedupSort(lists[0])
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	ord := ev.ordinals()
	out := make([]goddag.Node, 0, total)
	sorted := true
	prev := -1
	for _, l := range lists {
		for _, n := range l {
			o := ord.Of(n)
			if o <= prev {
				sorted = false
			}
			prev = o
			out = append(out, n)
		}
	}
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return ord.Of(out[i]) < ord.Of(out[j]) })
	}
	return out
}

// fastStepApplies reports whether fastCands can serve the step.
func (ev *evaluator) fastStepApplies(st step) bool {
	if ev.opts.NoFastPaths {
		return false
	}
	if len(st.preds) != 0 || (st.test.kind != testName && st.test.kind != testAny) {
		return false
	}
	switch st.axis {
	case AxisChild, AxisDescendant, AxisDescendantOrSelf,
		AxisAncestor, AxisAncestorOrSelf,
		AxisFollowing, AxisPreceding, AxisCovered:
		return true
	default:
		return false
	}
}

// fastCands produces the candidate list for one origin node of a step
// fastStepApplies accepted. The order matches what axisNodes + filterTest
// would produce, so positional predicates are unaffected.
func (ev *evaluator) fastCands(st step, n goddag.Node) []goddag.Node {
	match := func(e *goddag.Element) bool {
		return st.test.kind == testAny || e.Name() == st.test.name
	}
	// named is the document-ordered candidate pool for window scans: the
	// name index for a name test, every element for *.
	named := func() []*goddag.Element {
		if st.test.kind == testName {
			return ev.doc.ElementsNamed(st.test.name)
		}
		return ev.doc.Elements()
	}
	var out []goddag.Node
	switch st.axis {
	case AxisChild:
		switch v := n.(type) {
		case *goddag.Root:
			// Elements belong to exactly one hierarchy, so the
			// per-hierarchy top lists are duplicate-free; the
			// hierarchy-major collection just needs re-sorting.
			lists := make([][]goddag.Node, 0, len(ev.doc.Hierarchies()))
			for _, h := range ev.doc.Hierarchies() {
				var l []goddag.Node
				for _, e := range h.TopElements() {
					if match(e) {
						l = append(l, e)
					}
				}
				if len(l) != 0 {
					lists = append(lists, l)
				}
			}
			return ev.concatOrdered(lists)
		case *goddag.Element:
			for i, nc := 0, v.NumChildElements(); i < nc; i++ {
				if e := v.ChildElementAt(i); match(e) {
					out = append(out, e)
				}
			}
		}

	case AxisDescendant, AxisDescendantOrSelf:
		switch v := n.(type) {
		case *goddag.Root:
			if st.test.kind == testName {
				nm := ev.doc.ElementsNamed(st.test.name)
				out = make([]goddag.Node, len(nm))
				for i, e := range nm {
					out[i] = e
				}
				return out
			}
			els := ev.doc.Elements()
			out = make([]goddag.Node, len(els))
			for i, e := range els {
				out[i] = e
			}
			return out
		case *goddag.Element:
			ord := ev.ordinals()
			sub := ord.Subtree(v)
			out = make([]goddag.Node, 0, len(sub)+1)
			if st.axis == AxisDescendantOrSelf && match(v) {
				out = append(out, v)
			}
			if st.test.kind == testAny {
				for _, e := range sub {
					out = append(out, e)
				}
				return out
			}
			nm := ev.doc.ElementsNamed(st.test.name)
			if len(nm) <= len(sub) {
				// Scan the name index's span window, keeping subtree
				// members (O(1) pre-order interval test per candidate).
				sp := v.Span()
				i := sort.Search(len(nm), func(i int) bool { return nm[i].Span().Start >= sp.Start })
				for _, e := range nm[i:] {
					if e.Span().Start > sp.End {
						break
					}
					if ord.InSubtree(e, v) {
						out = append(out, e)
					}
				}
				return out
			}
			for _, e := range sub {
				if e.Name() == st.test.name {
					out = append(out, e)
				}
			}
			return out
		}

	case AxisAncestor, AxisAncestorOrSelf:
		// Element tests never match the root, so ancestor enumeration is
		// the parent-element chain — no per-level node-slice allocations.
		// Leaves climb one chain per hierarchy; chains converge, so a
		// bitset cuts each climb at the first already-visited element.
		switch v := n.(type) {
		case *goddag.Element:
			if st.axis == AxisAncestorOrSelf && match(v) {
				out = append(out, v)
			}
			for p := v.ParentElement(); p != nil; p = p.ParentElement() {
				if match(p) {
					out = append(out, p)
				}
			}
		case goddag.Leaf:
			ord := ev.ordinals()
			seen := ev.acquireSeen()
			for _, h := range ev.doc.Hierarchies() {
				el, ok := v.Parent(h).(*goddag.Element)
				if !ok {
					continue // parent is the root
				}
				for el != nil && seen.add(ord.OfElement(el)) {
					if match(el) {
						out = append(out, el)
					}
					el = el.ParentElement()
				}
			}
			seen.reset()
		}

	case AxisFollowing:
		sp := n.Span()
		nm := named()
		i := sort.Search(len(nm), func(i int) bool { return nm[i].Span().Start >= sp.End })
		for _, e := range nm[i:] {
			if !goddag.NodesEqual(e, n) && spanAfter(e.Span(), sp) {
				out = append(out, e)
			}
		}

	case AxisPreceding:
		sp := n.Span()
		for _, e := range named() {
			if e.Span().Start >= sp.Start && !e.Span().IsEmpty() {
				break // can no longer end before sp begins
			}
			if !goddag.NodesEqual(e, n) && spanAfter(sp, e.Span()) {
				out = append(out, e)
			}
		}

	case AxisCovered:
		sp := n.Span()
		nm := named()
		i := sort.Search(len(nm), func(i int) bool { return nm[i].Span().Start >= sp.Start })
		for _, e := range nm[i:] {
			if e.Span().Start > sp.End {
				break
			}
			if !goddag.NodesEqual(e, n) && sp.ContainsSpan(e.Span()) {
				out = append(out, e)
			}
		}
	}
	return out
}

// predHolds implements XPath predicate truth: a number predicate selects
// by position.
func predHolds(v Value, pos int) bool {
	if v.kind == valNumber {
		return int(v.f) == pos
	}
	return v.Bool()
}

func filterTest(ns []goddag.Node, t nodeTest) []goddag.Node {
	var out []goddag.Node
	for _, n := range ns {
		switch t.kind {
		case testNode:
			out = append(out, n)
		case testText:
			if n.Kind() == goddag.KindLeaf {
				out = append(out, n)
			}
		case testAny:
			if n.Kind() == goddag.KindElement {
				out = append(out, n)
			}
		case testName:
			if el, ok := n.(*goddag.Element); ok && el.Name() == t.name {
				out = append(out, n)
			}
		}
	}
	return out
}

// dedupSort deduplicates a node list (in place) and sorts it in document
// order, keyed entirely on node ordinals: no identity maps, no interface
// comparisons. Lists that are already strictly ordered — the common case
// for single-origin step results — are returned untouched.
func (ev *evaluator) dedupSort(ns []goddag.Node) []goddag.Node {
	if len(ns) <= 1 {
		return ns
	}
	ord := ev.ordinals()
	sorted := true
	prev := ord.Of(ns[0])
	for i := 1; i < len(ns); i++ {
		o := ord.Of(ns[i])
		if o <= prev {
			sorted = false
			break
		}
		prev = o
	}
	if sorted {
		return ns
	}
	sort.Slice(ns, func(i, j int) bool { return ord.Of(ns[i]) < ord.Of(ns[j]) })
	out := ns[:1]
	last := ord.Of(ns[0])
	for _, n := range ns[1:] {
		if o := ord.Of(n); o != last {
			out = append(out, n)
			last = o
		}
	}
	return out
}

// merge2 merges two document-ordered, duplicate-free node lists into one,
// dropping cross-list duplicates (equal ordinals). When one side is empty
// the other is returned as-is.
func (ev *evaluator) merge2(a, b []goddag.Node) []goddag.Node {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	ord := ev.ordinals()
	out := make([]goddag.Node, 0, len(a)+len(b))
	i, j := 0, 0
	oa, ob := ord.Of(a[0]), ord.Of(b[0])
	for {
		switch {
		case oa < ob:
			out = append(out, a[i])
			i++
			if i == len(a) {
				return append(out, b[j:]...)
			}
			oa = ord.Of(a[i])
		case ob < oa:
			out = append(out, b[j])
			j++
			if j == len(b) {
				return append(out, a[i:]...)
			}
			ob = ord.Of(b[j])
		default: // same node in both lists
			out = append(out, a[i])
			i++
			j++
			if i == len(a) {
				return append(out, b[j:]...)
			}
			if j == len(b) {
				return append(out, a[i:]...)
			}
			oa, ob = ord.Of(a[i]), ord.Of(b[j])
		}
	}
}

// mergeLists combines per-origin step results into one document-ordered,
// duplicate-free node-set. Two lists merge linearly; more lists combine
// in a single pass — concatenate with bitset deduplication, tracking
// whether the stream stays ordered — so the common shapes are O(total):
// disjoint-origin steps (each origin's candidates form one document-order
// block, e.g. child steps from disjoint parents) need no sort at all, and
// heavily duplicated streams (ancestor climbs from thousands of origins)
// shrink through the bitset before the ordinal sort touches them. No
// per-query maps, no interface comparisons.
func (ev *evaluator) mergeLists(lists [][]goddag.Node) []goddag.Node {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return ev.dedupSort(lists[0])
	case 2:
		return ev.merge2(ev.dedupSort(lists[0]), ev.dedupSort(lists[1]))
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total <= 128 {
		// Small result sets dedup faster through the ordinal sort than
		// through a bitset sized to the whole document.
		out := make([]goddag.Node, 0, total)
		for _, l := range lists {
			out = append(out, l...)
		}
		return ev.dedupSort(out)
	}
	ord := ev.ordinals()
	seen := ev.acquireSeen()
	out := make([]goddag.Node, 0, total)
	sorted := true
	prev := -1
	for _, l := range lists {
		for _, n := range l {
			o := ord.Of(n)
			if !seen.add(o) {
				continue
			}
			if o <= prev {
				sorted = false
			}
			prev = o
			out = append(out, n)
		}
	}
	seen.reset()
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return ord.Of(out[i]) < ord.Of(out[j]) })
	}
	return out
}

// union implements the '|' operator: a document-ordered merge of two
// node-sets. Unordered operands (filter results, variable bindings) are
// sorted on a copy — the originals may be shared with bindings and must
// not be mutated.
func (ev *evaluator) union(a, b []goddag.Node) []goddag.Node {
	return ev.merge2(ev.sortedView(a), ev.sortedView(b))
}

// sortedView returns ns when already strictly document-ordered, else a
// dedup-sorted copy.
func (ev *evaluator) sortedView(ns []goddag.Node) []goddag.Node {
	if len(ns) <= 1 {
		return ns
	}
	ord := ev.ordinals()
	prev := ord.Of(ns[0])
	for i := 1; i < len(ns); i++ {
		o := ord.Of(ns[i])
		if o <= prev {
			return ev.dedupSort(append([]goddag.Node(nil), ns...))
		}
		prev = o
	}
	return ns
}
