package xpath

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/goddag"
)

// Value is the result of evaluating an Extended XPath expression: a
// node-set, string, number, or boolean, following XPath 1.0's type system.
type Value struct {
	kind  valueKind
	nodes []goddag.Node
	s     string
	f     float64
	b     bool
	attrs []AttrNode
}

type valueKind int

const (
	valNodes valueKind = iota
	valString
	valNumber
	valBool
	valAttrs
)

// AttrNode is an attribute selected by the attribute axis, paired with
// its owning element.
type AttrNode struct {
	Owner *goddag.Element
	Name  string
	Value string
}

// Nodes returns the node-set (nil for non-node values).
func (v Value) Nodes() []goddag.Node { return v.nodes }

// Attrs returns selected attributes (attribute-axis results).
func (v Value) Attrs() []AttrNode { return v.attrs }

// IsNodeSet reports whether the value is a node-set (or attribute set).
func (v Value) IsNodeSet() bool { return v.kind == valNodes || v.kind == valAttrs }

// String converts the value to a string per XPath rules: a node-set
// converts to the string value of its first node.
func (v Value) String() string {
	switch v.kind {
	case valString:
		return v.s
	case valNumber:
		return formatNumber(v.f)
	case valBool:
		if v.b {
			return "true"
		}
		return "false"
	case valAttrs:
		if len(v.attrs) == 0 {
			return ""
		}
		return v.attrs[0].Value
	default:
		if len(v.nodes) == 0 {
			return ""
		}
		return v.nodes[0].Text()
	}
}

// Number converts the value to a number per XPath rules.
func (v Value) Number() float64 {
	switch v.kind {
	case valNumber:
		return v.f
	case valBool:
		if v.b {
			return 1
		}
		return 0
	default:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.String()), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// Bool converts the value to a boolean per XPath rules: node-sets are
// true when non-empty, strings when non-empty, numbers when non-zero.
func (v Value) Bool() bool {
	switch v.kind {
	case valBool:
		return v.b
	case valNumber:
		return v.f != 0 && !math.IsNaN(v.f)
	case valString:
		return v.s != ""
	case valAttrs:
		return len(v.attrs) > 0
	default:
		return len(v.nodes) > 0
	}
}

func formatNumber(f float64) string {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Singleton returns a node-set value holding exactly one node; the FLWOR
// layer (package xquery) binds iteration variables with it.
func Singleton(n goddag.Node) Value { return nodesValue([]goddag.Node{n}) }

func nodesValue(ns []goddag.Node) Value { return Value{kind: valNodes, nodes: ns} }
func stringValue(s string) Value        { return Value{kind: valString, s: s} }
func numberValue(f float64) Value       { return Value{kind: valNumber, f: f} }
func boolValue(b bool) Value            { return Value{kind: valBool, b: b} }

// EvalError reports a runtime evaluation failure.
type EvalError struct {
	Query string
	Msg   string
}

// Error implements the error interface.
func (e *EvalError) Error() string { return fmt.Sprintf("xpath: %q: %s", e.Query, e.Msg) }

// Bindings maps variable names (without '$') to values for queries that
// reference $variables.
type Bindings map[string]Value

// context carries the evaluation state for one node.
type context struct {
	doc  *goddag.Document
	node goddag.Node
	pos  int // 1-based position in the current node list
	size int
	vars Bindings
}

// Options tune evaluation.
type Options struct {
	// OverlapByWalk forces the overlapping axes to traverse the GODDAG
	// through shared leaves instead of using span-interval arithmetic.
	// It exists as the ablation baseline for experiment A2
	// and is never faster.
	OverlapByWalk bool

	// NoFastPaths disables the step fast paths (collapsed descendants
	// and leaf-free candidate enumeration) so evaluation takes only the
	// reference code paths. Used by differential tests; results must be
	// identical either way.
	NoFastPaths bool
}

// Eval evaluates the query with the document root as context node.
func (q *Query) Eval(doc *goddag.Document) (Value, error) {
	return q.EvalWithOptions(doc, Options{})
}

// EvalWithOptions evaluates with explicit options.
func (q *Query) EvalWithOptions(doc *goddag.Document, opts Options) (Value, error) {
	ev := &evaluator{doc: doc, query: q.source, opts: opts}
	return ev.eval(q.root, context{doc: doc, node: doc.Root(), pos: 1, size: 1})
}

// EvalFrom evaluates the query with an explicit context node.
func (q *Query) EvalFrom(doc *goddag.Document, node goddag.Node) (Value, error) {
	return q.EvalFromWithOptions(doc, node, Options{})
}

// EvalFromWithOptions evaluates with an explicit context node and options.
func (q *Query) EvalFromWithOptions(doc *goddag.Document, node goddag.Node, opts Options) (Value, error) {
	ev := &evaluator{doc: doc, query: q.source, opts: opts}
	return ev.eval(q.root, context{doc: doc, node: node, pos: 1, size: 1})
}

// EvalWith evaluates with an explicit context node and variable bindings
// (for $x references; the FLWOR layer in package xquery builds on this).
func (q *Query) EvalWith(doc *goddag.Document, node goddag.Node, vars Bindings) (Value, error) {
	ev := &evaluator{doc: doc, query: q.source}
	return ev.eval(q.root, context{doc: doc, node: node, pos: 1, size: 1, vars: vars})
}

// Select is a convenience wrapper returning the node-set of the query; it
// errors when the query does not produce a node-set.
func Select(doc *goddag.Document, query string) ([]goddag.Node, error) {
	q, err := Compile(query)
	if err != nil {
		return nil, err
	}
	v, err := q.Eval(doc)
	if err != nil {
		return nil, err
	}
	if !v.IsNodeSet() {
		return nil, &EvalError{Query: query, Msg: fmt.Sprintf("result is not a node-set (got %T-like value %q)", v.kind, v.String())}
	}
	return v.nodes, nil
}

type evaluator struct {
	doc   *goddag.Document
	query string
	opts  Options
}

func (ev *evaluator) errorf(format string, args ...any) error {
	return &EvalError{Query: ev.query, Msg: fmt.Sprintf(format, args...)}
}

func (ev *evaluator) eval(e expr, ctx context) (Value, error) {
	switch n := e.(type) {
	case *varExpr:
		v, ok := ctx.vars[n.name]
		if !ok {
			return Value{}, ev.errorf("unbound variable $%s", n.name)
		}
		return v, nil
	case *literalExpr:
		return stringValue(n.s), nil
	case *numberExpr:
		return numberValue(n.f), nil
	case *unaryExpr:
		v, err := ev.eval(n.x, ctx)
		if err != nil {
			return Value{}, err
		}
		return numberValue(-v.Number()), nil
	case *binaryExpr:
		return ev.evalBinary(n, ctx)
	case *callExpr:
		return ev.evalCall(n, ctx)
	case *pathExpr:
		return ev.evalPath(n, ctx)
	default:
		return Value{}, ev.errorf("unknown expression %T", e)
	}
}

func (ev *evaluator) evalBinary(e *binaryExpr, ctx context) (Value, error) {
	switch e.op {
	case "or":
		l, err := ev.eval(e.l, ctx)
		if err != nil {
			return Value{}, err
		}
		if l.Bool() {
			return boolValue(true), nil
		}
		r, err := ev.eval(e.r, ctx)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r.Bool()), nil
	case "and":
		l, err := ev.eval(e.l, ctx)
		if err != nil {
			return Value{}, err
		}
		if !l.Bool() {
			return boolValue(false), nil
		}
		r, err := ev.eval(e.r, ctx)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r.Bool()), nil
	}
	l, err := ev.eval(e.l, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.eval(e.r, ctx)
	if err != nil {
		return Value{}, err
	}
	switch e.op {
	case "|":
		if !l.IsNodeSet() || !r.IsNodeSet() {
			return Value{}, ev.errorf("'|' requires node-sets")
		}
		return nodesValue(ev.dedupSort(append(append([]goddag.Node{}, l.nodes...), r.nodes...))), nil
	case "=", "!=":
		return boolValue(compareValues(l, r, e.op)), nil
	case "<", "<=", ">", ">=":
		return boolValue(compareNumeric(l, r, e.op)), nil
	case "+":
		return numberValue(l.Number() + r.Number()), nil
	case "-":
		return numberValue(l.Number() - r.Number()), nil
	case "*":
		return numberValue(l.Number() * r.Number()), nil
	case "div":
		return numberValue(l.Number() / r.Number()), nil
	case "mod":
		return numberValue(math.Mod(l.Number(), r.Number())), nil
	default:
		return Value{}, ev.errorf("unknown operator %q", e.op)
	}
}

// compareValues implements =/!= with XPath existential node-set
// semantics (simplified: node string-values are compared).
func compareValues(l, r Value, op string) bool {
	eq := func(a, b string) bool {
		if op == "=" {
			return a == b
		}
		return a != b
	}
	switch {
	case l.IsNodeSet() && r.IsNodeSet():
		for _, a := range setStrings(l) {
			for _, b := range setStrings(r) {
				if eq(a, b) {
					return true
				}
			}
		}
		return false
	case l.IsNodeSet():
		for _, a := range setStrings(l) {
			if eq(a, r.String()) {
				return true
			}
		}
		return false
	case r.IsNodeSet():
		for _, b := range setStrings(r) {
			if eq(l.String(), b) {
				return true
			}
		}
		return false
	case l.kind == valBool || r.kind == valBool:
		return eq(fmt.Sprint(l.Bool()), fmt.Sprint(r.Bool()))
	case l.kind == valNumber || r.kind == valNumber:
		if op == "=" {
			return l.Number() == r.Number()
		}
		return l.Number() != r.Number()
	default:
		return eq(l.String(), r.String())
	}
}

func compareNumeric(l, r Value, op string) bool {
	cmp := func(a, b float64) bool {
		switch op {
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		default:
			return a >= b
		}
	}
	switch {
	case l.IsNodeSet():
		for _, a := range setStrings(l) {
			if f, err := strconv.ParseFloat(strings.TrimSpace(a), 64); err == nil && cmp(f, r.Number()) {
				return true
			}
		}
		return false
	case r.IsNodeSet():
		for _, b := range setStrings(r) {
			if f, err := strconv.ParseFloat(strings.TrimSpace(b), 64); err == nil && cmp(l.Number(), f) {
				return true
			}
		}
		return false
	default:
		return cmp(l.Number(), r.Number())
	}
}

func setStrings(v Value) []string {
	if v.kind == valAttrs {
		out := make([]string, len(v.attrs))
		for i, a := range v.attrs {
			out[i] = a.Value
		}
		return out
	}
	out := make([]string, len(v.nodes))
	for i, n := range v.nodes {
		out[i] = n.Text()
	}
	return out
}

// evalPath evaluates a location path.
func (ev *evaluator) evalPath(p *pathExpr, ctx context) (Value, error) {
	var current []goddag.Node
	switch {
	case p.filter != nil:
		v, err := ev.eval(p.filter, ctx)
		if err != nil {
			return Value{}, err
		}
		if !v.IsNodeSet() || v.kind == valAttrs {
			return Value{}, ev.errorf("path applied to non-node-set")
		}
		current = v.nodes
	case p.absolute:
		current = []goddag.Node{ev.doc.Root()}
	default:
		current = []goddag.Node{ctx.node}
	}
	if len(p.steps) == 0 {
		return nodesValue(current), nil
	}
	for i, st := range p.steps {
		isLast := i == len(p.steps)-1
		if st.axis == AxisAttribute {
			if !isLast {
				return Value{}, ev.errorf("attribute step must be last")
			}
			var attrs []AttrNode
			for _, n := range current {
				el, ok := n.(*goddag.Element)
				if !ok {
					continue
				}
				for _, a := range el.Attrs() {
					if st.test.kind == testAny || a.Name == st.test.name {
						attrs = append(attrs, AttrNode{Owner: el, Name: a.Name, Value: a.Value})
					}
				}
			}
			// Predicates on attributes: only positional/string predicates
			// make sense; evaluate against the owner element context.
			for _, pred := range st.preds {
				var kept []AttrNode
				for pi, a := range attrs {
					pctx := context{doc: ev.doc, node: a.Owner, pos: pi + 1, size: len(attrs), vars: ctx.vars}
					v, err := ev.eval(pred, pctx)
					if err != nil {
						return Value{}, err
					}
					if predHolds(v, pi+1) {
						kept = append(kept, a)
					}
				}
				attrs = kept
			}
			return Value{kind: valAttrs, attrs: attrs}, nil
		}
		next, err := ev.evalStep(st, current, ctx.vars)
		if err != nil {
			return Value{}, err
		}
		current = next
	}
	return nodesValue(current), nil
}

// evalStep applies one step to every node of the current set, with
// predicate filtering per origin node list (XPath position semantics).
func (ev *evaluator) evalStep(st step, current []goddag.Node, vars Bindings) ([]goddag.Node, error) {
	if out, ok := ev.fastStep(st, current); ok {
		return out, nil
	}
	// Even with predicates, element-only tests never match leaves, so
	// candidate enumeration can use the leaf-free fast path per origin;
	// predicate positions are unchanged (leaves were filtered out anyway).
	bare := step{axis: st.axis, test: st.test}
	var out []goddag.Node
	for _, n := range current {
		var cands []goddag.Node
		if fs, ok := ev.fastStep(bare, []goddag.Node{n}); ok {
			cands = fs
		} else {
			cands = filterTest(ev.axisNodes(st.axis, n), st.test)
		}
		for _, pred := range st.preds {
			var kept []goddag.Node
			size := len(cands)
			for i, c := range cands {
				pctx := context{doc: ev.doc, node: c, pos: i + 1, size: size, vars: vars}
				v, err := ev.eval(pred, pctx)
				if err != nil {
					return nil, err
				}
				if predHolds(v, i+1) {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		out = append(out, cands...)
	}
	return ev.dedupSort(out), nil
}

// fastStep handles the hottest step shapes without materializing
// intermediate node lists: predicate-free element tests on the child and
// descendant axes. Element tests never match leaves, so these paths skip
// leaf enumeration entirely; from the root, the descendant axis is served
// by the document's cached, sorted element list.
func (ev *evaluator) fastStep(st step, current []goddag.Node) ([]goddag.Node, bool) {
	if ev.opts.NoFastPaths {
		return nil, false
	}
	if len(st.preds) != 0 || (st.test.kind != testName && st.test.kind != testAny) {
		return nil, false
	}
	match := func(e *goddag.Element) bool {
		return st.test.kind == testAny || e.Name() == st.test.name
	}
	var out []goddag.Node
	mustSort := false
	switch st.axis {
	case AxisDescendant, AxisDescendantOrSelf:
		for _, n := range current {
			switch v := n.(type) {
			case *goddag.Root:
				for _, e := range ev.doc.Elements() {
					if match(e) {
						out = append(out, e)
					}
				}
			case *goddag.Element:
				if st.axis == AxisDescendantOrSelf && match(v) {
					out = append(out, v)
				}
				var walk func(es []*goddag.Element)
				walk = func(es []*goddag.Element) {
					for _, e := range es {
						if match(e) {
							out = append(out, e)
						}
						walk(e.ChildElements())
					}
				}
				walk(v.ChildElements())
			}
		}
	case AxisChild:
		for _, n := range current {
			switch v := n.(type) {
			case *goddag.Root:
				// Tops collect hierarchy-major; restore document order.
				mustSort = len(ev.doc.Hierarchies()) > 1
				for _, h := range ev.doc.Hierarchies() {
					for _, e := range h.TopElements() {
						if match(e) {
							out = append(out, e)
						}
					}
				}
			case *goddag.Element:
				for _, e := range v.ChildElements() {
					if match(e) {
						out = append(out, e)
					}
				}
			}
		}
	default:
		return nil, false
	}
	if len(current) > 1 || mustSort {
		out = ev.dedupSort(out)
	}
	return out, true
}

// predHolds implements XPath predicate truth: a number predicate selects
// by position.
func predHolds(v Value, pos int) bool {
	if v.kind == valNumber {
		return int(v.f) == pos
	}
	return v.Bool()
}

func filterTest(ns []goddag.Node, t nodeTest) []goddag.Node {
	var out []goddag.Node
	for _, n := range ns {
		switch t.kind {
		case testNode:
			out = append(out, n)
		case testText:
			if n.Kind() == goddag.KindLeaf {
				out = append(out, n)
			}
		case testAny:
			if n.Kind() == goddag.KindElement {
				out = append(out, n)
			}
		case testName:
			if el, ok := n.(*goddag.Element); ok && el.Name() == t.name {
				out = append(out, n)
			}
		}
	}
	return out
}

// dedupSort deduplicates a node list and sorts it in document order.
func (ev *evaluator) dedupSort(ns []goddag.Node) []goddag.Node {
	if len(ns) <= 1 {
		return ns
	}
	seen := make(map[any]bool, len(ns))
	var out []goddag.Node
	for _, n := range ns {
		id := goddag.NodeID(n)
		if !seen[id] {
			seen[id] = true
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return goddag.CompareNodes(out[i], out[j]) < 0
	})
	return out
}
