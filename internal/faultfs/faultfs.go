// Package faultfs is the filesystem seam under the framework's
// durability layer (package store's atomic saves and write-ahead log,
// package catalog's save-on-commit persistence). Production code runs
// on OS, a thin veneer over package os; tests wrap it in an Injector to
// make any single filesystem operation fail with ENOSPC/EIO, tear a
// write short (a power cut mid-append), or keep failing (a dying disk)
// — without root, loop devices, or dm-flakey.
//
// The interface is deliberately small: it covers exactly the operations
// the store and WAL issue (open/create, read/write/seek, fsync, close,
// rename, remove, truncate, stat), so every I/O the durability layer
// performs is interceptable and the crash-matrix tests can enumerate
// fault points exhaustively.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// File is the subset of *os.File the store and WAL use. Sync must be a
// real fsync on the OS implementation — the durability contract of the
// save and append paths depends on it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem the durability layer runs on.
type FS interface {
	// OpenFile opens a file like os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file (or directory, for directory fsyncs) read-only.
	Open(name string) (File, error)
	// CreateTemp creates a temporary file like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename renames (atomically replacing) like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file like os.Remove.
	Remove(name string) error
	// Truncate resizes a file like os.Truncate.
	Truncate(name string, size int64) error
	// Stat stats a path like os.Stat.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the production filesystem: every method delegates to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

// Op names one interceptable filesystem operation. Write and Sync carry
// the durability weight; Rename is the atomic-save commit point;
// Truncate is the WAL's rewind/reset.
type Op string

// The interceptable operations.
const (
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpStat     Op = "stat"
)

// Hook inspects an imminent operation and may veto it by returning a
// non-nil error, which the Injector returns to the caller instead of
// performing the operation. Returning a *Torn error from an OpWrite
// hook writes a prefix of the data first — a torn append, as left by a
// power cut mid-write.
type Hook func(op Op, path string) error

// Torn, returned by a Hook on OpWrite, makes the injector write the
// first N bytes of the payload before failing with Err: the on-disk
// state a crash mid-append leaves behind. N larger than the payload is
// clamped.
type Torn struct {
	N   int
	Err error
}

// Error implements the error interface.
func (t *Torn) Error() string { return fmt.Sprintf("torn write after %d bytes: %v", t.N, t.Err) }

// Unwrap exposes the underlying fault.
func (t *Torn) Unwrap() error { return t.Err }

// Injector wraps an FS and forwards every operation through a Hook.
// With no hook set it is transparent. All methods are safe for
// concurrent use; per-Op call counts are kept for test assertions.
type Injector struct {
	inner FS

	mu     sync.Mutex
	hook   Hook
	counts map[Op]int
}

// NewInjector wraps inner (typically OS) for fault injection.
func NewInjector(inner FS) *Injector {
	return &Injector{inner: inner, counts: make(map[Op]int)}
}

// SetHook installs (or, with nil, clears) the fault hook.
func (in *Injector) SetHook(h Hook) {
	in.mu.Lock()
	in.hook = h
	in.mu.Unlock()
}

// Count reports how many operations of the given kind have been issued
// (including vetoed ones).
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// check counts the operation and consults the hook.
func (in *Injector) check(op Op, path string) error {
	in.mu.Lock()
	in.counts[op]++
	h := in.hook
	in.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(op, path)
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := in.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// Open implements FS.
func (in *Injector) Open(name string) (File, error) {
	if err := in.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.check(OpCreate, filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// Rename implements FS. The hook sees the destination path — the name
// the atomic save commits to.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.check(OpRename, newpath); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if err := in.check(OpRemove, name); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	if err := in.check(OpTruncate, name); err != nil {
		return err
	}
	return in.inner.Truncate(name, size)
}

// Stat implements FS.
func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if err := in.check(OpStat, name); err != nil {
		return nil, err
	}
	return in.inner.Stat(name)
}

// injFile forwards file operations through the injector's hook.
type injFile struct {
	in *Injector
	f  File
}

func (jf *injFile) Read(p []byte) (int, error) { return jf.f.Read(p) }

func (jf *injFile) Write(p []byte) (int, error) {
	if err := jf.in.check(OpWrite, jf.f.Name()); err != nil {
		var torn *Torn
		if errors.As(err, &torn) {
			n := torn.N
			if n > len(p) {
				n = len(p)
			}
			wrote, werr := jf.f.Write(p[:n])
			if werr != nil {
				return wrote, werr
			}
			return wrote, torn.Err
		}
		return 0, err
	}
	return jf.f.Write(p)
}

func (jf *injFile) Seek(offset int64, whence int) (int64, error) { return jf.f.Seek(offset, whence) }

func (jf *injFile) Close() error {
	if err := jf.in.check(OpClose, jf.f.Name()); err != nil {
		jf.f.Close() // release the descriptor either way
		return err
	}
	return jf.f.Close()
}

func (jf *injFile) Sync() error {
	if err := jf.in.check(OpSync, jf.f.Name()); err != nil {
		return err
	}
	return jf.f.Sync()
}

func (jf *injFile) Name() string { return jf.f.Name() }

// FailNth returns a hook that fails the nth (1-based) matching
// operation — and, when persistent is true, every matching operation
// after it — with err. match may be nil to match every operation.
func FailNth(n int, persistent bool, match func(op Op, path string) bool, err error) Hook {
	var mu sync.Mutex
	seen := 0
	return func(op Op, path string) error {
		if match != nil && !match(op, path) {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		seen++
		if seen == n || (persistent && seen > n) {
			return err
		}
		return nil
	}
}
