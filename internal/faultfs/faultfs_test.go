package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var errDisk = errors.New("injected: input/output error")

func TestTransparentWithoutHook(t *testing.T) {
	in := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if in.Count(OpWrite) != 1 || in.Count(OpSync) != 1 || in.Count(OpClose) != 1 {
		t.Fatalf("counts: write=%d sync=%d close=%d", in.Count(OpWrite), in.Count(OpSync), in.Count(OpClose))
	}
}

func TestInjectedFailures(t *testing.T) {
	in := NewInjector(OS)
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := in.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	in.SetHook(func(op Op, p string) error {
		if op == OpSync {
			return errDisk
		}
		return nil
	})
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write with sync-only hook: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, errDisk) {
		t.Fatalf("sync = %v, want injected", err)
	}

	in.SetHook(func(op Op, p string) error {
		if op == OpRename {
			return errDisk
		}
		return nil
	})
	if err := in.Rename(path, filepath.Join(dir, "g")); !errors.Is(err, errDisk) {
		t.Fatalf("rename = %v, want injected", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("vetoed rename moved the file anyway")
	}
}

// TestTornWrite asserts a *Torn error leaves exactly the prefix on disk
// — the shape a power cut mid-append produces.
func TestTornWrite(t *testing.T) {
	in := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	in.SetHook(func(op Op, p string) error {
		if op == OpWrite {
			return &Torn{N: 3, Err: errDisk}
		}
		return nil
	})
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, errDisk) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	in.SetHook(nil)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "abc" {
		t.Fatalf("on-disk after torn write: %q, %v", got, err)
	}
}

func TestFailNth(t *testing.T) {
	isSync := func(op Op, _ string) bool { return op == OpSync }

	h := FailNth(2, false, isSync, errDisk)
	if err := h(OpWrite, "x"); err != nil {
		t.Fatal("non-matching op failed")
	}
	if err := h(OpSync, "x"); err != nil {
		t.Fatal("first sync failed")
	}
	if err := h(OpSync, "x"); !errors.Is(err, errDisk) {
		t.Fatal("second sync did not fail")
	}
	if err := h(OpSync, "x"); err != nil {
		t.Fatal("one-shot hook kept failing")
	}

	p := FailNth(1, true, isSync, errDisk)
	for i := 0; i < 3; i++ {
		if err := p(OpSync, "x"); !errors.Is(err, errDisk) {
			t.Fatalf("persistent hook call %d = %v", i, err)
		}
	}
}
