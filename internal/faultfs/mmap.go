package faultfs

import (
	"fmt"
	"io"
	"sync"
	"syscall"
)

// The memory-mapping operations. OpMap is the open-without-decode read
// path of the v3 store; OpUnmap fires when a mapping is released (on
// catalog eviction, once the document becomes unreachable).
const (
	OpMap   Op = "map"
	OpUnmap Op = "unmap"
)

// Mapping is a read-only view of a file's contents. Data stays valid
// until Close. For memory-mapped backings the bytes alias the page
// cache and writing through them faults; fallback (heap) backings are
// plain buffers and Close is a no-op.
type Mapping struct {
	Data []byte

	once  sync.Once
	unmap func() error
	err   error
}

// Close releases the mapping. Safe to call more than once; after the
// first call Data must no longer be referenced.
func (m *Mapping) Close() error {
	m.once.Do(func() {
		if m.unmap != nil {
			m.err = m.unmap()
			m.unmap = nil
		}
		m.Data = nil
	})
	return m.err
}

// Mapped reports whether the bytes are a true memory mapping (as
// opposed to a heap fallback read).
func (m *Mapping) Mapped() bool { return m.unmap != nil }

// Mapper is the optional FS extension for zero-copy reads. OS
// implements it with mmap; the Injector implements it so the crash
// matrix can veto map/unmap like any other operation.
type Mapper interface {
	// Map returns a read-only view of the file's current contents.
	Map(name string) (*Mapping, error)
}

// Map returns a read-only view of name's contents through fsys. When
// fsys implements Mapper the view is zero-copy (mmap on OS); otherwise
// the file is read into memory through the seam, so fault hooks on the
// plain read path still apply.
func Map(fsys FS, name string) (*Mapping, error) {
	if m, ok := fsys.(Mapper); ok {
		return m.Map(name)
	}
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("faultfs: map fallback read %s: %w", name, err)
	}
	return &Mapping{Data: data}, nil
}

// Map implements Mapper: a shared read-only mmap of the whole file. The
// descriptor is closed immediately — the mapping keeps the pages alive.
func (osFS) Map(name string) (*Mapping, error) {
	f, err := OS.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := OS.Stat(name)
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("faultfs: map %s: file too large (%d bytes)", name, size)
	}
	fd, ok := f.(interface{ Fd() uintptr })
	if !ok {
		return nil, fmt.Errorf("faultfs: map %s: no file descriptor", name)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("faultfs: mmap %s: %w", name, err)
	}
	return &Mapping{Data: data, unmap: func() error { return syscall.Munmap(data) }}, nil
}

// Map implements Mapper for the Injector: the hook can veto the map
// itself (OpMap) and, later, the release (OpUnmap). A vetoed unmap
// still releases the pages — leaking a mapping is never a useful
// failure mode — but surfaces the injected error.
func (in *Injector) Map(name string) (*Mapping, error) {
	if err := in.check(OpMap, name); err != nil {
		return nil, err
	}
	m, err := Map(in.inner, name)
	if err != nil {
		return nil, err
	}
	inner := m.unmap
	m.unmap = func() error {
		err := in.check(OpUnmap, name)
		if inner != nil {
			if uerr := inner(); err == nil {
				err = uerr
			}
		}
		return err
	}
	return m, nil
}
