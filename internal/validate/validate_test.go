package validate

import (
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/dtd"
	"repro/internal/goddag"
)

// Test fixtures model the paper's manuscript encoding: a "physical"
// hierarchy (r -> line+) and a "words" hierarchy (r -> w*, w mixed).

const physDTD = `
<!ELEMENT r (line+)>
<!ELEMENT line (#PCDATA)>
<!ATTLIST line n CDATA #REQUIRED>
`

const wordsDTD = `
<!ELEMENT r (#PCDATA|w|sentence)*>
<!ELEMENT sentence (#PCDATA|w)*>
<!ELEMENT w (#PCDATA)>
<!ATTLIST w id ID #IMPLIED ref IDREF #IMPLIED>
`

func buildDoc(t *testing.T) (*goddag.Document, *goddag.Hierarchy, *goddag.Hierarchy) {
	t.Helper()
	d := goddag.New("r", "swa hwaet swa")
	phys := d.AddHierarchy("physical")
	words := d.AddHierarchy("words")
	mustInsert(t, d, phys, "line", document.NewSpan(0, 13), goddag.Attr{Name: "n", Value: "1"})
	mustInsert(t, d, words, "w", document.NewSpan(0, 3))
	mustInsert(t, d, words, "w", document.NewSpan(4, 9))
	mustInsert(t, d, words, "w", document.NewSpan(10, 13))
	return d, phys, words
}

func mustInsert(t *testing.T, d *goddag.Document, h *goddag.Hierarchy, tag string, sp document.Span, attrs ...goddag.Attr) *goddag.Element {
	t.Helper()
	e, err := d.InsertElement(h, tag, attrs, sp)
	if err != nil {
		t.Fatalf("insert %s: %v", tag, err)
	}
	return e
}

func TestValidDocument(t *testing.T) {
	doc, phys, words := buildDoc(t)
	pd := dtd.MustParse("physical", physDTD)
	wd := dtd.MustParse("words", wordsDTD)
	if v := Hierarchy(phys, pd, Full); len(v) != 0 {
		t.Errorf("physical violations: %v", v)
	}
	if v := Hierarchy(words, wd, Full); len(v) != 0 {
		t.Errorf("words violations: %v", v)
	}
	s := NewSchema()
	s.Add("physical", pd)
	s.Add("words", wd)
	if v := Document(doc, s, Full); len(v) != 0 {
		t.Errorf("document violations: %v", v)
	}
	if got := s.Hierarchies(); len(got) != 2 || got[0] != "physical" {
		t.Errorf("schema hierarchies = %v", got)
	}
	if s.DTD("physical") != pd || s.DTD("zzz") != nil {
		t.Error("schema lookup")
	}
}

func TestUndeclaredElement(t *testing.T) {
	_, phys, _ := buildDoc(t)
	d := dtd.MustParse("physical", `<!ELEMENT r (page+)> <!ELEMENT page (#PCDATA)>`)
	v := Hierarchy(phys, d, Full)
	if !hasCode(v, CodeUndeclaredElement) {
		t.Errorf("violations = %v", v)
	}
}

func TestMissingRequiredAttr(t *testing.T) {
	doc := goddag.New("r", "abc")
	phys := doc.AddHierarchy("physical")
	mustInsert(t, doc, phys, "line", document.NewSpan(0, 3)) // no n attribute
	d := dtd.MustParse("physical", physDTD)
	v := Hierarchy(phys, d, Full)
	if !hasCode(v, CodeMissingRequiredAttr) {
		t.Errorf("violations = %v", v)
	}
	// Potential validity tolerates the missing attribute.
	if v := Hierarchy(phys, d, Potential); hasCode(v, CodeMissingRequiredAttr) {
		t.Errorf("potential mode should tolerate missing required: %v", v)
	}
}

func TestBadEnumAndFixed(t *testing.T) {
	doc := goddag.New("r", "abc")
	h := doc.AddHierarchy("h")
	mustInsert(t, doc, h, "line", document.NewSpan(0, 3),
		goddag.Attr{Name: "n", Value: "1"},
		goddag.Attr{Name: "hand", Value: "scribe9"},
		goddag.Attr{Name: "v", Value: "2.0"})
	d := dtd.MustParse("h", `
<!ELEMENT r (line+)>
<!ELEMENT line (#PCDATA)>
<!ATTLIST line
  n CDATA #REQUIRED
  hand (scribe1|scribe2) "scribe1"
  v CDATA #FIXED "1.0">
`)
	v := Hierarchy(h, d, Full)
	bad := 0
	for _, viol := range v {
		if viol.Code == CodeBadAttrValue {
			bad++
		}
	}
	if bad != 2 {
		t.Errorf("bad attr values = %d, want 2: %v", bad, v)
	}
	// Bad values break potential validity too.
	v = Hierarchy(h, d, Potential)
	if !hasCode(v, CodeBadAttrValue) {
		t.Errorf("potential should flag bad enum: %v", v)
	}
}

func TestUndeclaredAttr(t *testing.T) {
	doc := goddag.New("r", "abc")
	h := doc.AddHierarchy("h")
	mustInsert(t, doc, h, "line", document.NewSpan(0, 3),
		goddag.Attr{Name: "n", Value: "1"}, goddag.Attr{Name: "bogus", Value: "x"})
	d := dtd.MustParse("h", physDTD)
	if v := Hierarchy(h, d, Full); !hasCode(v, CodeUndeclaredAttr) {
		t.Errorf("violations = %v", v)
	}
}

func TestEmptyElementWithContent(t *testing.T) {
	doc := goddag.New("r", "abc")
	h := doc.AddHierarchy("h")
	mustInsert(t, doc, h, "pb", document.NewSpan(0, 3)) // pb is EMPTY but spans text
	d := dtd.MustParse("h", `<!ELEMENT r ANY> <!ELEMENT pb EMPTY>`)
	if v := Hierarchy(h, d, Full); !hasCode(v, CodeEmptyWithContent) {
		t.Errorf("violations = %v", v)
	}
	// Not fixable by insertion either.
	if v := Hierarchy(h, d, Potential); !hasCode(v, CodeEmptyWithContent) {
		t.Errorf("potential should flag EMPTY with content: %v", v)
	}
}

func TestTextNotAllowed(t *testing.T) {
	doc := goddag.New("r", "abc def")
	h := doc.AddHierarchy("h")
	// <r> has element content (line+) but "abc def" has uncovered text.
	mustInsert(t, doc, h, "line", document.NewSpan(0, 3), goddag.Attr{Name: "n", Value: "1"})
	d := dtd.MustParse("h", physDTD)
	v := Hierarchy(h, d, Full)
	if !hasCode(v, CodeTextNotAllowed) {
		t.Errorf("violations = %v", v)
	}
	// Potentially valid: the stray text can be wrapped in a future <line>.
	v = Hierarchy(h, d, Potential)
	if hasCode(v, CodeTextNotAllowed) {
		t.Errorf("potential should allow wrappable text: %v", v)
	}
}

func TestTextNeverWrappable(t *testing.T) {
	doc := goddag.New("r", "abc")
	h := doc.AddHierarchy("h")
	mustInsert(t, doc, h, "a", document.NewSpan(0, 3))
	// <a> contains text but its model (b*) only admits <b EMPTY>, which
	// can never contain text.
	d := dtd.MustParse("h", `<!ELEMENT r ANY> <!ELEMENT a (b*)> <!ELEMENT b EMPTY>`)
	v := Hierarchy(h, d, Potential)
	if !hasCode(v, CodeTextNotAllowed) {
		t.Errorf("unwrappable text should fail prevalidation: %v", v)
	}
}

func TestBadChildrenVsCannotExtend(t *testing.T) {
	doc := goddag.New("r", "abcdef")
	h := doc.AddHierarchy("h")
	mustInsert(t, doc, h, "s", document.NewSpan(0, 6))
	mustInsert(t, doc, h, "c", document.NewSpan(0, 3)) // model needs (b,c): c alone
	d := dtd.MustParse("h", `
<!ELEMENT r (s*)>
<!ELEMENT s (b,c)>
<!ELEMENT b EMPTY>
<!ELEMENT c (#PCDATA)>
`)
	// Full: invalid ((c) != (b,c)); note the stray text inside s also trips.
	v := Hierarchy(h, d, Full)
	if !hasCode(v, CodeBadChildren) {
		t.Errorf("full violations = %v", v)
	}
	// Potential: (c) is a subsequence of (b,c) -> extendable.
	v = Hierarchy(h, d, Potential)
	if hasCode(v, CodeCannotExtend) {
		t.Errorf("potential violations = %v", v)
	}
	// Now add a second c: (c,c) can never fit (b,c).
	mustInsert(t, doc, h, "c", document.NewSpan(3, 6))
	v = Hierarchy(h, d, Potential)
	if !hasCode(v, CodeCannotExtend) {
		t.Errorf("two c's should not be extendable: %v", v)
	}
}

func TestIDUniquenessAndRefs(t *testing.T) {
	doc := goddag.New("r", "ab cd ef")
	words := doc.AddHierarchy("words")
	mustInsert(t, doc, words, "w", document.NewSpan(0, 2), goddag.Attr{Name: "id", Value: "w1"})
	mustInsert(t, doc, words, "w", document.NewSpan(3, 5), goddag.Attr{Name: "id", Value: "w1"}) // dup
	mustInsert(t, doc, words, "w", document.NewSpan(6, 8), goddag.Attr{Name: "ref", Value: "w9"})
	d := dtd.MustParse("words", wordsDTD)
	v := Hierarchy(words, d, Full)
	if !hasCode(v, CodeDuplicateID) {
		t.Errorf("expected duplicate ID: %v", v)
	}
	if !hasCode(v, CodeDanglingIDRef) {
		t.Errorf("expected dangling IDREF: %v", v)
	}
	// Potential mode: duplicate IDs still flagged, dangling refs not.
	v = Hierarchy(words, d, Potential)
	if !hasCode(v, CodeDuplicateID) {
		t.Errorf("potential should flag dup IDs: %v", v)
	}
	if hasCode(v, CodeDanglingIDRef) {
		t.Errorf("potential should not flag dangling refs: %v", v)
	}
}

func TestNilDTD(t *testing.T) {
	_, phys, _ := buildDoc(t)
	if v := Hierarchy(phys, nil, Full); v != nil {
		t.Errorf("nil DTD should yield nil: %v", v)
	}
}

func TestCheckInsertionAccepts(t *testing.T) {
	doc, _, words := buildDoc(t)
	wd := dtd.MustParse("words", wordsDTD)
	// Wrapping two words in a sentence is fine.
	if err := CheckInsertion(doc, words, wd, "sentence", document.NewSpan(0, 9)); err != nil {
		t.Errorf("sentence insertion rejected: %v", err)
	}
	// Structure is unchanged (probe only).
	if words.Len() != 3 {
		t.Errorf("probe mutated the document: %d elements", words.Len())
	}
}

func TestCheckInsertionUndeclared(t *testing.T) {
	doc, _, words := buildDoc(t)
	wd := dtd.MustParse("words", wordsDTD)
	err := CheckInsertion(doc, words, wd, "bogus", document.NewSpan(0, 3))
	viol, ok := err.(Violation)
	if !ok || viol.Code != CodeUndeclaredElement {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(viol.Error(), "undeclared-element") {
		t.Errorf("Error() = %q", viol.Error())
	}
}

func TestCheckInsertionConflict(t *testing.T) {
	doc, _, words := buildDoc(t)
	wd := dtd.MustParse("words", wordsDTD)
	// Span overlapping word [4,9) partially is a structural conflict.
	err := CheckInsertion(doc, words, wd, "w", document.NewSpan(5, 11))
	if _, ok := err.(*goddag.ConflictError); !ok {
		t.Errorf("err = %T %v, want *goddag.ConflictError", err, err)
	}
}

func TestCheckInsertionContentModel(t *testing.T) {
	doc := goddag.New("r", "abcdef")
	h := doc.AddHierarchy("h")
	d := dtd.MustParse("h", `
<!ELEMENT r (a?,b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	mustInsert(t, doc, h, "a", document.NewSpan(0, 3))
	// A second <a> can never fit (a?,b?).
	if err := CheckInsertion(doc, h, d, "a", document.NewSpan(3, 6)); err == nil {
		t.Error("second <a> should be rejected")
	}
	// A <b> after <a> is fine.
	if err := CheckInsertion(doc, h, d, "b", document.NewSpan(3, 6)); err != nil {
		t.Errorf("<b> rejected: %v", err)
	}
}

func TestCheckInsertionOrderMatters(t *testing.T) {
	doc := goddag.New("r", "abcdef")
	h := doc.AddHierarchy("h")
	d := dtd.MustParse("h", `
<!ELEMENT r (a,b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	mustInsert(t, doc, h, "b", document.NewSpan(3, 6))
	// Inserting <a> before <b> is extendable; after <b> is not.
	if err := CheckInsertion(doc, h, d, "a", document.NewSpan(0, 3)); err != nil {
		t.Errorf("a before b rejected: %v", err)
	}
	// Remove b, add a at the start, then check a after a fails.
	doc2 := goddag.New("r", "abcdef")
	h2 := doc2.AddHierarchy("h")
	mustInsert(t, doc2, h2, "a", document.NewSpan(0, 3))
	if err := CheckInsertion(doc2, h2, d, "a", document.NewSpan(3, 6)); err == nil {
		t.Error("second a should fail")
	}
}

func TestCheckInsertionAdoption(t *testing.T) {
	doc := goddag.New("r", "one two three")
	h := doc.AddHierarchy("h")
	d := dtd.MustParse("h", `
<!ELEMENT r (s*)>
<!ELEMENT s (w+)>
<!ELEMENT w (#PCDATA)>
`)
	mustInsert(t, doc, h, "w", document.NewSpan(0, 3))
	mustInsert(t, doc, h, "w", document.NewSpan(4, 7))
	// Wrapping both w's in an s: s adopts w,w which fits (w+). The root's
	// sequence becomes [s] which fits (s*).
	if err := CheckInsertion(doc, h, d, "s", document.NewSpan(0, 7)); err != nil {
		t.Errorf("s insertion rejected: %v", err)
	}
	// Perform the wrap for real, then an s over the remaining uncovered
	// text is accepted: it has no w children yet but (w+) is extendable.
	mustInsert(t, doc, h, "s", document.NewSpan(0, 7))
	if err := CheckInsertion(doc, h, d, "s", document.NewSpan(8, 13)); err != nil {
		t.Errorf("empty s rejected: %v", err)
	}
	// Inserting w directly at root level: root model (s*) has no w and
	// can never get one.
	if err := CheckInsertion(doc, h, d, "w", document.NewSpan(8, 13)); err == nil {
		t.Error("w at root level should be rejected")
	}
}

func TestCheckInsertionEmptyModel(t *testing.T) {
	doc := goddag.New("r", "abcdef")
	h := doc.AddHierarchy("h")
	d := dtd.MustParse("h", `<!ELEMENT r ANY> <!ELEMENT pb EMPTY>`)
	// pb over text content is not allowed.
	if err := CheckInsertion(doc, h, d, "pb", document.NewSpan(0, 3)); err == nil {
		t.Error("pb over text should be rejected")
	}
	// pb as a zero-width milestone is fine.
	if err := CheckInsertion(doc, h, d, "pb", document.NewSpan(3, 3)); err != nil {
		t.Errorf("milestone pb rejected: %v", err)
	}
}

func TestCheckInsertionNilDTD(t *testing.T) {
	doc, _, words := buildDoc(t)
	if err := CheckInsertion(doc, words, nil, "anything", document.NewSpan(0, 3)); err != nil {
		t.Errorf("nil DTD should accept: %v", err)
	}
	// ... but structural conflicts still surface.
	if err := CheckInsertion(doc, words, nil, "x", document.NewSpan(5, 11)); err == nil {
		t.Error("conflict should surface even with nil DTD")
	}
}

func TestCodeString(t *testing.T) {
	codes := []Code{
		CodeUndeclaredElement, CodeBadChildren, CodeTextNotAllowed,
		CodeEmptyWithContent, CodeUndeclaredAttr, CodeMissingRequiredAttr,
		CodeBadAttrValue, CodeDuplicateID, CodeDanglingIDRef, CodeCannotExtend,
	}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("code %d has bad name %q", int(c), s)
		}
		seen[s] = true
	}
	if !strings.Contains(Code(99).String(), "99") {
		t.Error("unknown code")
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{Hierarchy: "h", Code: CodeBadChildren, Msg: "boom"}
	if !strings.Contains(v.Error(), "root") || !strings.Contains(v.Error(), "boom") {
		t.Errorf("Error() = %q", v.Error())
	}
}

func hasCode(vs []Violation, c Code) bool {
	for _, v := range vs {
		if v.Code == c {
			return true
		}
	}
	return false
}
