// Package validate checks GODDAG hierarchies against DTDs: classic
// validity, and the *potential validity* ("prevalidation") of Iacob,
// Dekhtyar & Dekhtyar (WebDB 2004, reference [5] of the paper), which the
// xTagger editor uses to veto markup insertions that could never be
// extended to a valid document.
//
// A hierarchy is potentially valid when additional markup insertions
// could make it valid: every element's current child sequence must be a
// subsequence of some word in its content model's language (future
// siblings may be inserted anywhere), character data may appear only where
// the model allows it directly or where a future wrapping element could
// legitimize it, and no element may carry an attribute value that is
// already illegal. Missing REQUIRED attributes do not break potential
// validity (they can still be supplied), but they do break full validity.
package validate

import (
	"fmt"
	"strings"

	"repro/internal/document"
	"repro/internal/dtd"
	"repro/internal/goddag"
)

// Code classifies a violation.
type Code int

// Violation codes.
const (
	CodeUndeclaredElement Code = iota
	CodeBadChildren
	CodeTextNotAllowed
	CodeEmptyWithContent
	CodeUndeclaredAttr
	CodeMissingRequiredAttr
	CodeBadAttrValue
	CodeDuplicateID
	CodeDanglingIDRef
	CodeCannotExtend
)

// String returns the code name.
func (c Code) String() string {
	switch c {
	case CodeUndeclaredElement:
		return "undeclared-element"
	case CodeBadChildren:
		return "bad-children"
	case CodeTextNotAllowed:
		return "text-not-allowed"
	case CodeEmptyWithContent:
		return "empty-with-content"
	case CodeUndeclaredAttr:
		return "undeclared-attribute"
	case CodeMissingRequiredAttr:
		return "missing-required-attribute"
	case CodeBadAttrValue:
		return "bad-attribute-value"
	case CodeDuplicateID:
		return "duplicate-id"
	case CodeDanglingIDRef:
		return "dangling-idref"
	case CodeCannotExtend:
		return "cannot-extend"
	default:
		return fmt.Sprintf("Code(%d)", int(c))
	}
}

// Violation describes one validity problem.
type Violation struct {
	Hierarchy string
	Element   *goddag.Element // nil for root-level problems
	Code      Code
	Msg       string
}

// Error renders the violation as a message.
func (v Violation) Error() string {
	where := "root"
	if v.Element != nil {
		where = v.Element.String()
	}
	return fmt.Sprintf("validate: %s: %s: %s", where, v.Code, v.Msg)
}

// Schema is a concurrent markup hierarchy: one DTD per GODDAG hierarchy
// (paper §3: "group non conflicting tag elements into separate DTDs").
type Schema struct {
	dtds  map[string]*dtd.DTD
	order []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{dtds: make(map[string]*dtd.DTD)}
}

// Add registers the DTD for a hierarchy name, replacing any previous one.
func (s *Schema) Add(hierarchy string, d *dtd.DTD) {
	if _, ok := s.dtds[hierarchy]; !ok {
		s.order = append(s.order, hierarchy)
	}
	s.dtds[hierarchy] = d
}

// DTD returns the DTD registered for a hierarchy, or nil.
func (s *Schema) DTD(hierarchy string) *dtd.DTD { return s.dtds[hierarchy] }

// Hierarchies returns registered hierarchy names in registration order.
func (s *Schema) Hierarchies() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Mode selects full or potential validity.
type Mode int

// Validation modes.
const (
	// Full demands classic DTD validity.
	Full Mode = iota
	// Potential demands only that the document could be extended to a
	// valid one by inserting more markup (prevalidation).
	Potential
)

// Hierarchy validates one hierarchy of a document against d. A nil DTD
// yields no violations (unconstrained hierarchy).
func Hierarchy(h *goddag.Hierarchy, d *dtd.DTD, mode Mode) []Violation {
	if d == nil {
		return nil
	}
	v := &validator{d: d, hier: h.Name(), mode: mode}

	// Validate the root's children if the DTD declares the root tag.
	doc := h.Document()
	if rootDecl := d.Element(doc.RootTag()); rootDecl != nil {
		v.checkContent(nil, rootDecl, doc.Root().Children(h))
	}
	for _, e := range h.Elements() {
		decl := d.Element(e.Name())
		if decl == nil {
			v.add(e, CodeUndeclaredElement, "element <%s> is not declared in DTD %s", e.Name(), d.Name)
			continue
		}
		v.checkContent(e, decl, e.Children())
		v.checkAttrs(e, decl)
	}
	v.checkIDs(h, d)
	return v.out
}

// Document validates every hierarchy of doc that has a DTD in the schema.
func Document(doc *goddag.Document, s *Schema, mode Mode) []Violation {
	var out []Violation
	for _, h := range doc.Hierarchies() {
		out = append(out, Hierarchy(h, s.DTD(h.Name()), mode)...)
	}
	return out
}

type validator struct {
	d    *dtd.DTD
	hier string
	mode Mode
	out  []Violation
}

func (v *validator) add(e *goddag.Element, code Code, format string, args ...any) {
	v.out = append(v.out, Violation{
		Hierarchy: v.hier,
		Element:   e,
		Code:      code,
		Msg:       fmt.Sprintf(format, args...),
	})
}

// checkContent validates the child list of one element (or of the root,
// with e == nil) against decl.
func (v *validator) checkContent(e *goddag.Element, decl *dtd.ElementDecl, kids []goddag.Node) {
	var names []string
	hasText := false
	for _, k := range kids {
		switch n := k.(type) {
		case *goddag.Element:
			names = append(names, n.Name())
		case goddag.Leaf:
			if strings.TrimSpace(n.Text()) != "" {
				hasText = true
			}
		}
	}
	switch decl.Content.Kind {
	case dtd.ModelEmpty:
		if len(names) > 0 || hasText {
			v.add(e, CodeEmptyWithContent, "<%s> is declared EMPTY but has content", decl.Name)
		}
		return
	case dtd.ModelAny:
		return
	}
	if hasText && !decl.Content.AllowsText() {
		if v.mode == Full || !v.textWrappable(decl) {
			v.add(e, CodeTextNotAllowed,
				"character data not allowed in <%s> (model %s)", decl.Name, decl.Content)
		}
	}
	ok := false
	if v.mode == Full {
		ok = decl.MatchChildren(names)
	} else {
		ok = decl.CanExtendChildren(names)
	}
	if !ok {
		code := CodeBadChildren
		if v.mode == Potential {
			code = CodeCannotExtend
		}
		v.add(e, code, "children %v do not fit model %s of <%s>", names, decl.Content, decl.Name)
	}
}

// textWrappable reports whether a text run directly inside an element with
// this declaration could be legitimized by wrapping it in future child
// markup: some element name in the model's alphabet (transitively) allows
// character data. This is the documented approximation of [5]'s treatment
// of character data under element content.
func (v *validator) textWrappable(decl *dtd.ElementDecl) bool {
	seen := map[string]bool{}
	var can func(name string) bool
	can = func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		d := v.d.Element(name)
		if d == nil {
			return false
		}
		if d.Content.AllowsText() {
			return true
		}
		for _, n := range d.Content.Alphabet() {
			if can(n) {
				return true
			}
		}
		return false
	}
	for _, n := range decl.Content.Alphabet() {
		if can(n) {
			return true
		}
	}
	return false
}

func (v *validator) checkAttrs(e *goddag.Element, decl *dtd.ElementDecl) {
	for _, a := range e.Attrs() {
		def := decl.AttDef(a.Name)
		if def == nil {
			v.add(e, CodeUndeclaredAttr, "attribute %q not declared on <%s>", a.Name, decl.Name)
			continue
		}
		switch {
		case def.Type == "enum":
			ok := false
			for _, allowed := range def.Enum {
				if a.Value == allowed {
					ok = true
					break
				}
			}
			if !ok {
				v.add(e, CodeBadAttrValue, "attribute %s=%q not in (%s)",
					a.Name, a.Value, strings.Join(def.Enum, "|"))
			}
		case def.Default == dtd.DefaultFixed && a.Value != def.Value:
			v.add(e, CodeBadAttrValue, "attribute %s=%q must be fixed %q", a.Name, a.Value, def.Value)
		}
	}
	if v.mode == Full {
		for _, def := range decl.Attrs {
			if def.Default == dtd.DefaultRequired {
				if _, ok := e.Attr(def.Name); !ok {
					v.add(e, CodeMissingRequiredAttr, "required attribute %q missing on <%s>", def.Name, decl.Name)
				}
			}
		}
	}
}

// checkIDs verifies ID uniqueness and (in Full mode) IDREF targets within
// one hierarchy.
func (v *validator) checkIDs(h *goddag.Hierarchy, d *dtd.DTD) {
	ids := map[string]*goddag.Element{}
	type ref struct {
		e   *goddag.Element
		val string
	}
	var refs []ref
	for _, e := range h.Elements() {
		decl := d.Element(e.Name())
		if decl == nil {
			continue
		}
		for _, a := range e.Attrs() {
			def := decl.AttDef(a.Name)
			if def == nil {
				continue
			}
			switch def.Type {
			case "ID":
				if prev, dup := ids[a.Value]; dup {
					v.add(e, CodeDuplicateID, "ID %q already used by %v", a.Value, prev)
				} else {
					ids[a.Value] = e
				}
			case "IDREF":
				refs = append(refs, ref{e, a.Value})
			case "IDREFS":
				for _, one := range strings.Fields(a.Value) {
					refs = append(refs, ref{e, one})
				}
			}
		}
	}
	if v.mode == Full {
		for _, r := range refs {
			if _, ok := ids[r.val]; !ok {
				v.add(r.e, CodeDanglingIDRef, "IDREF %q has no matching ID", r.val)
			}
		}
	}
}

// CheckInsertion decides whether inserting an element tag over span into
// hierarchy h would keep the hierarchy potentially valid — the
// prevalidation test xTagger runs before accepting an edit (paper §4).
// It does not mutate the document. A nil DTD accepts everything that is
// structurally possible.
//
// The returned error is a *goddag.ConflictError for structural conflicts,
// a Violation for prevalidation failures, or nil when the insertion is
// acceptable.
func CheckInsertion(doc *goddag.Document, h *goddag.Hierarchy, d *dtd.DTD, tag string, span document.Span) error {
	parent, adopted, err := doc.ProbeInsert(h, tag, span)
	if err != nil {
		return err
	}
	if d == nil {
		return nil
	}
	decl := d.Element(tag)
	if decl == nil {
		return Violation{Hierarchy: h.Name(), Code: CodeUndeclaredElement,
			Msg: fmt.Sprintf("element <%s> is not declared in DTD %s", tag, d.Name)}
	}

	// 1. The new element's own children (the adopted elements) must fit.
	var childNames []string
	for _, a := range adopted {
		childNames = append(childNames, a.Name())
	}
	if !decl.CanExtendChildren(childNames) {
		return Violation{Hierarchy: h.Name(), Code: CodeCannotExtend,
			Msg: fmt.Sprintf("adopted children %v cannot fit model %s of <%s>", childNames, decl.Content, tag)}
	}
	// Character data directly inside the new element: spans of `span` not
	// covered by adopted children.
	if hasUncoveredText(doc, span, adopted) && !decl.Content.AllowsText() {
		if decl.Content.Kind == dtd.ModelEmpty {
			return Violation{Hierarchy: h.Name(), Code: CodeEmptyWithContent,
				Msg: fmt.Sprintf("<%s> is declared EMPTY but would contain text", tag)}
		}
		v := &validator{d: d, hier: h.Name(), mode: Potential}
		if !v.textWrappable(decl) {
			return Violation{Hierarchy: h.Name(), Code: CodeTextNotAllowed,
				Msg: fmt.Sprintf("character data cannot be legitimized inside <%s>", tag)}
		}
	}

	// 2. The parent's new child sequence must remain extendable.
	var parentDecl *dtd.ElementDecl
	var parentKids []goddag.Node
	if parent == nil {
		parentDecl = d.Element(doc.RootTag())
		parentKids = doc.Root().Children(h)
	} else {
		parentDecl = d.Element(parent.Name())
		parentKids = parent.Children()
	}
	if parentDecl == nil {
		return nil // unconstrained parent
	}
	adoptedSet := make(map[*goddag.Element]bool, len(adopted))
	for _, a := range adopted {
		adoptedSet[a] = true
	}
	var newSeq []string
	inserted := false
	for _, k := range parentKids {
		el, ok := k.(*goddag.Element)
		if !ok {
			continue
		}
		if adoptedSet[el] {
			if !inserted {
				newSeq = append(newSeq, tag)
				inserted = true
			}
			continue
		}
		if !inserted && spanBefore(span, el.Span()) {
			newSeq = append(newSeq, tag)
			inserted = true
		}
		newSeq = append(newSeq, el.Name())
	}
	if !inserted {
		newSeq = append(newSeq, tag)
	}
	if !parentDecl.CanExtendChildren(newSeq) {
		return Violation{Hierarchy: h.Name(), Code: CodeCannotExtend,
			Msg: fmt.Sprintf("parent <%s> children %v cannot fit model %s", parentDecl.Name, newSeq, parentDecl.Content)}
	}
	return nil
}

// spanBefore reports whether a comes entirely before b, treating empty
// spans by position.
func spanBefore(a, b document.Span) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.Start <= b.Start && a.End <= b.Start
	}
	return a.Before(b)
}

// hasUncoveredText reports whether span contains non-whitespace content
// not covered by any of the given elements.
func hasUncoveredText(doc *goddag.Document, span document.Span, covered []*goddag.Element) bool {
	pos := span.Start
	text := func(s document.Span) bool {
		return strings.TrimSpace(doc.Content().Slice(s)) != ""
	}
	for _, c := range covered {
		cs := c.Span()
		if cs.Start > pos && text(document.NewSpan(pos, cs.Start)) {
			return true
		}
		if cs.End > pos {
			pos = cs.End
		}
	}
	return pos < span.End && text(document.NewSpan(pos, span.End))
}
