package catalog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/store"
)

// editDoc inserts one "edit" element over [0, 4) through a transaction.
func editDoc(doc *core.Document) error {
	tx, err := doc.Edit().Begin()
	if err != nil {
		return err
	}
	if _, err := tx.InsertMarkup("edits", "edit", document.NewSpan(0, 4)); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

func countEdits(doc *core.Document) int {
	return len(doc.GODDAG().ElementsNamed("edit"))
}

func TestUpdatePersistsAndSurvivesReload(t *testing.T) {
	dir := writeCorpusDir(t, 60)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Edit a document whose source form is standoff XML: the commit must
	// write standoff.gdag and repoint the entry to it.
	if err := c.Update("standoff", editDoc); err != nil {
		t.Fatal(err)
	}
	saved := filepath.Join(dir, "standoff.gdag")
	data, err := os.ReadFile(saved)
	if err != nil {
		t.Fatalf("save-on-commit did not write the .gdag: %v", err)
	}
	ds, _ := c.Doc("standoff")
	if ds.Dirty || ds.Edits != 1 {
		t.Fatalf("stats after commit: dirty=%v edits=%d", ds.Dirty, ds.Edits)
	}
	if len(ds.Paths) != 1 || ds.Paths[0] != saved {
		t.Fatalf("entry not repointed to saved file: %v", ds.Paths)
	}

	// Reload from the saved file and require byte-identical persistence:
	// re-encoding the reloaded document (saves write v3) reproduces the
	// file exactly.
	if !c.Evict("standoff") {
		t.Fatal("clean edited document refused eviction")
	}
	doc, err := c.Get("standoff")
	if err != nil {
		t.Fatal(err)
	}
	if got := countEdits(doc); got != 1 {
		t.Fatalf("reloaded document has %d edit elements, want 1", got)
	}
	var buf bytes.Buffer
	if err := store.EncodeV3(&buf, doc.GODDAG()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("reloaded document does not re-encode byte-identically to the saved file")
	}

	// A fresh catalog over the same directory must prefer the edited
	// .gdag over the stale standoff.xml source.
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := c2.Get("standoff")
	if err != nil {
		t.Fatal(err)
	}
	if got := countEdits(doc2); got != 1 {
		t.Fatalf("re-opened catalog lost the edit: %d edit elements", got)
	}
}

func TestUpdateFailureRollsBackAndSkipsSave(t *testing.T) {
	dir := writeCorpusDir(t, 60)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("op rejected")
	err = c.Update("ms", func(doc *core.Document) error {
		tx, err := doc.Edit().Begin()
		if err != nil {
			return err
		}
		if _, err := tx.InsertMarkup("edits", "edit", document.NewSpan(0, 4)); err != nil {
			return err
		}
		tx.Rollback()
		return wantErr
	})
	if err == nil || !strings.Contains(err.Error(), "op rejected") {
		t.Fatalf("Update error = %v", err)
	}
	ds, _ := c.Doc("ms")
	if ds.Dirty || ds.Edits != 0 {
		t.Fatalf("failed update left dirty=%v edits=%d", ds.Dirty, ds.Edits)
	}
	doc, err := c.Get("ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := countEdits(doc); got != 0 {
		t.Fatalf("rolled-back update left %d edit elements", got)
	}
	// ms.gdag pre-existed (source form); it must still decode to the
	// unedited document.
	if !c.Evict("ms") {
		t.Fatal("evict failed")
	}
	doc, err = c.Get("ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := countEdits(doc); got != 0 {
		t.Fatalf("source file gained %d edit elements from a failed update", got)
	}
}

func TestFailedSaveMarksDirtyAndBlocksEviction(t *testing.T) {
	dir := writeCorpusDir(t, 60)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Make the save's rename fail: occupy standoff.gdag with a non-empty
	// directory (os.Rename cannot replace it).
	block := filepath.Join(dir, "standoff.gdag")
	if err := os.MkdirAll(filepath.Join(block, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	err = c.Update("standoff", editDoc)
	if err == nil || !strings.Contains(err.Error(), "not persisted") {
		t.Fatalf("Update with blocked save: %v", err)
	}
	ds, _ := c.Doc("standoff")
	if !ds.Dirty {
		t.Fatal("failed save did not mark the entry dirty")
	}
	// The edit is live in memory and must not be evictable.
	if c.Evict("standoff") {
		t.Fatal("dirty document was evicted")
	}
	doc, err := c.Get("standoff")
	if err != nil {
		t.Fatal(err)
	}
	if got := countEdits(doc); got != 1 {
		t.Fatalf("in-memory edit lost: %d edit elements", got)
	}
	// Unblock and commit another edit: the save succeeds and clears dirty.
	if err := os.RemoveAll(block); err != nil {
		t.Fatal(err)
	}
	if err := c.Update("standoff", editDoc); err != nil {
		t.Fatal(err)
	}
	ds, _ = c.Doc("standoff")
	if ds.Dirty || ds.Edits != 2 {
		t.Fatalf("after recovery: dirty=%v edits=%d", ds.Dirty, ds.Edits)
	}
	if !c.Evict("standoff") {
		t.Fatal("clean document refused eviction")
	}
}

// TestConcurrentViewUpdate hammers one document with parallel readers
// (queries over the repaired indexes) and writers (insert/remove
// transactions); run under -race it proves the per-document RW lock
// keeps readers on consistent snapshots during edits.
func TestConcurrentViewUpdate(t *testing.T) {
	dir := writeCorpusDir(t, 120)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const readers, writers, rounds = 8, 2, 20
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := c.Update("ms", func(doc *core.Document) error {
					tx, err := doc.Edit().Begin()
					if err != nil {
						return err
					}
					// Rune-aligned spans: the corpus vocabulary is multibyte.
					cn := doc.GODDAG().Content()
					lo := 4 * (w*rounds + i)
					sp := cn.ByteSpan(document.NewSpan(lo, lo+3))
					if _, err := tx.InsertMarkup(fmt.Sprintf("writer%d", w), "edit", sp); err != nil {
						tx.Rollback()
						return err
					}
					return tx.Commit()
				})
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, i, err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*4; i++ {
				err := c.View("ms", func(doc *core.Document) error {
					if _, err := doc.Query("//w"); err != nil {
						return err
					}
					_, err := doc.QueryValue("count(//edit)")
					return err
				})
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	doc, err := c.Get("ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := countEdits(doc); got != writers*rounds {
		t.Fatalf("committed %d edit elements, want %d", got, writers*rounds)
	}
}
