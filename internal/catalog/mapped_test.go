package catalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/faultfs"
	"repro/internal/goddag"
	"repro/internal/store"
)

// writeGdagDir builds a catalog directory of n .gdag documents
// (doc0..doc<n-1>), encoded with enc.
func writeGdagDir(t testing.TB, n, words int, enc func(f *os.File, doc *goddag.Document) error) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		cfg := corpus.DefaultConfig(words)
		cfg.Seed = int64(i + 1)
		doc, err := corpus.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("doc%d.gdag", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f, doc); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func encodeV3File(f *os.File, doc *goddag.Document) error { return store.EncodeV3(f, doc) }
func encodeV2File(f *os.File, doc *goddag.Document) error { return store.Encode(f, doc) }

// TestMappedLoadServesAndRecharges opens a v3 file through the catalog:
// the load must come up mapped with a small resident charge, queries
// must work (materializing lazily), and the charge must grow once the
// document is touched.
func TestMappedLoadServesAndRecharges(t *testing.T) {
	dir := writeGdagDir(t, 1, 400, encodeV3File)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.Get("doc0")
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Doc("doc0")
	if !ds.Resident || !ds.Mapped {
		t.Fatalf("v3 load not mapped: %+v", ds)
	}
	coldBytes := ds.Bytes
	if coldBytes <= 0 {
		t.Fatalf("mapped doc charged %d bytes", coldBytes)
	}

	// Query: materializes off the mapping; results must match a heap
	// decode of the same file.
	n := len(doc.GODDAG().ElementsNamed("w"))
	heap, err := store.Decode(mustOpen(t, filepath.Join(dir, "doc0.gdag")))
	if err != nil {
		t.Fatal(err)
	}
	if hn := len(heap.ElementsNamed("w")); n != hn {
		t.Fatalf("mapped query found %d w elements, heap decode %d", n, hn)
	}

	ds, _ = c.Doc("doc0")
	if !ds.Mapped {
		t.Fatalf("read-only touch should not unmap: %+v", ds)
	}
	if ds.Bytes <= coldBytes {
		t.Fatalf("materialization did not grow the charge: %d -> %d", coldBytes, ds.Bytes)
	}
	if s := c.Stats(); s.Bytes != ds.Bytes {
		t.Fatalf("catalog bytes %d != doc bytes %d", s.Bytes, ds.Bytes)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestMappedEditPromotesAndStaysV3 edits a mapped document: the edit
// promotes it to the heap (Mapped clears, the charge becomes a heap
// estimate) and the save keeps the file v3.
func TestMappedEditPromotesAndStaysV3(t *testing.T) {
	dir := writeGdagDir(t, 1, 200, encodeV3File)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Update("doc0", func(doc *core.Document) error {
		g := doc.GODDAG()
		_, err := g.InsertElement(g.Hierarchies()[0], "patch", nil, spanAll(g))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Doc("doc0")
	if ds.Mapped {
		t.Fatalf("edited document still reports mapped: %+v", ds)
	}
	if ds.Dirty {
		t.Fatalf("save failed: %+v", ds)
	}
	data, err := os.ReadFile(filepath.Join(dir, "doc0.gdag"))
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 3 {
		t.Fatalf("saved file version %d, want 3", data[4])
	}
	// The saved (still v3) file reloads mapped.
	if !c.Evict("doc0") {
		t.Fatal("eviction refused")
	}
	if _, err := c.Get("doc0"); err != nil {
		t.Fatal(err)
	}
	if ds, _ := c.Doc("doc0"); !ds.Mapped {
		t.Fatalf("reload of saved v3 not mapped: %+v", ds)
	}
}

// TestV2FileFallsBackAndMigratesOnSave loads a v2 .gdag (heap decode
// fallback) and checks the first committed edit rewrites it as v3.
func TestV2FileFallsBackAndMigratesOnSave(t *testing.T) {
	dir := writeGdagDir(t, 1, 200, encodeV2File)
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("doc0"); err != nil {
		t.Fatal(err)
	}
	ds, _ := c.Doc("doc0")
	if !ds.Resident || ds.Mapped {
		t.Fatalf("v2 load should be heap-resident, not mapped: %+v", ds)
	}
	c.mu.Lock()
	fb := c.v2Fallbacks
	c.mu.Unlock()
	if fb != 1 {
		t.Fatalf("v2 fallback counter = %d, want 1", fb)
	}
	err = c.Update("doc0", func(doc *core.Document) error {
		g := doc.GODDAG()
		_, err := g.InsertElement(g.Hierarchies()[0], "patch", nil, spanAll(g))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "doc0.gdag"))
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != 3 {
		t.Fatalf("migrated file version %d, want 3", data[4])
	}
}

// TestMapFaultFailsLoad vetoes the mmap through the fault seam: the
// load must surface the error rather than serve a partial document.
func TestMapFaultFailsLoad(t *testing.T) {
	dir := writeGdagDir(t, 1, 100, encodeV3File)
	inj := faultfs.NewInjector(faultfs.OS)
	bang := errors.New("mmap vetoed")
	inj.SetHook(func(op faultfs.Op, path string) error {
		if op == faultfs.OpMap {
			return bang
		}
		return nil
	})
	c, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("doc0"); !errors.Is(err, bang) {
		t.Fatalf("vetoed map: got %v, want %v", err, bang)
	}
	if got := inj.Count(faultfs.OpMap); got == 0 {
		t.Fatal("map operation never reached the injector")
	}
	// Clearing the hook and the cached failure heals the document.
	inj.SetHook(nil)
	c.Evict("doc0")
	if _, err := c.Get("doc0"); err != nil {
		t.Fatalf("load after fault cleared: %v", err)
	}
}

// TestMappedResidencyUnderBudget holds N mapped documents against the
// same byte budget that evicts their heap-decoded twins: mapped opens
// charge only touched bytes, so far more documents stay resident.
func TestMappedResidencyUnderBudget(t *testing.T) {
	const docs = 8
	// Budget sized to roughly two heap-resident copies.
	heapDir := writeGdagDir(t, docs, 300, encodeV2File)
	probe, err := Open(heapDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Get("doc0"); err != nil {
		t.Fatal(err)
	}
	ds, _ := probe.Doc("doc0")
	budget := 2*ds.Bytes + ds.Bytes/2

	heapCat, err := Open(heapDir, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	mapDir := writeGdagDir(t, docs, 300, encodeV3File)
	mapCat, err := Open(mapDir, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		id := fmt.Sprintf("doc%d", i)
		if _, err := heapCat.Get(id); err != nil {
			t.Fatal(err)
		}
		if _, err := mapCat.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	hs, ms := heapCat.Stats(), mapCat.Stats()
	if hs.Resident >= docs {
		t.Fatalf("heap catalog held all %d docs under budget %d — budget too loose to test", docs, budget)
	}
	if ms.Resident != docs {
		t.Fatalf("mapped catalog resident %d of %d under budget %d (bytes %d)",
			ms.Resident, docs, budget, ms.Bytes)
	}
	if ms.Bytes > hs.Bytes {
		t.Fatalf("mapped resident bytes %d exceed heap resident bytes %d", ms.Bytes, hs.Bytes)
	}
}

func spanAll(g *goddag.Document) document.Span {
	return document.NewSpan(0, g.Content().Len())
}
