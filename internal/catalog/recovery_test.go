package catalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/document"
	"repro/internal/editor"
	"repro/internal/faultfs"
	"repro/internal/store"
)

// writePlainDir builds a catalog directory holding one tiny ASCII
// document ("swa hwaet swa"), so edit-op byte offsets need no rune
// alignment.
func writePlainDir(t testing.TB, ids ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, id := range ids {
		src := `<r><w>swa</w> <w>hwaet</w> <w>swa</w></r>`
		if err := os.WriteFile(filepath.Join(dir, id+".xml"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// fastOpts keeps retry backoffs out of test wall-clock.
func fastOpts(fsys faultfs.FS) Options {
	return Options{FS: fsys, SaveRetries: 1, RetryBase: time.Millisecond}
}

// crashAt returns a hook that injects first at the first operation
// matching trigger, then fails every subsequent operation — the disk is
// gone, as a power cut at that exact point would leave it.
func crashAt(trigger func(faultfs.Op, string) bool, first error) faultfs.Hook {
	var mu sync.Mutex
	tripped := false
	return func(op faultfs.Op, path string) error {
		mu.Lock()
		defer mu.Unlock()
		if tripped {
			return errors.New("injected: disk gone after crash point")
		}
		if !trigger(op, path) {
			return nil
		}
		tripped = true
		return first
	}
}

func isWAL(path string) bool  { return strings.HasSuffix(path, ".wal") }
func isTemp(path string) bool { return strings.Contains(filepath.Base(path), ".gdag-tmp-") }

// TestCrashMatrix kills the write path at every durability-relevant
// fault point of a logged edit and asserts that reopening the directory
// recovers exactly the committed state: batch1 (committed cleanly) is
// always present, batch2 is present or absent per the fault point's
// documented semantics, and never partially applied.
func TestCrashMatrix(t *testing.T) {
	errFault := errors.New("injected: EIO")
	cases := []struct {
		name    string
		trigger func(faultfs.Op, string) bool
		fault   error // error injected at the trigger point
		wantErr bool  // UpdateBatch reports a failure
		want2   bool  // batch2 present after recovery
	}{
		{
			// Crash before anything of batch2 reached the log: the edit
			// is rejected and recovery sees only batch1.
			name:    "wal-append-write",
			trigger: func(op faultfs.Op, p string) bool { return op == faultfs.OpWrite && isWAL(p) },
			fault:   errFault, wantErr: true, want2: false,
		},
		{
			// Power cut tearing the append mid-frame: the torn tail is
			// truncated at reopen, batch2 is gone.
			name:    "wal-append-torn",
			trigger: func(op faultfs.Op, p string) bool { return op == faultfs.OpWrite && isWAL(p) },
			fault:   &faultfs.Torn{N: 7, Err: errFault}, wantErr: true, want2: false,
		},
		{
			// The frame was written whole but its fsync failed and the
			// crash prevented the rewind: an indeterminate append. The
			// caller saw an error, but the complete checksummed frame
			// survived, so recovery applies it — the documented
			// at-least-once outcome. Full application or none; never a
			// partial batch.
			name:    "wal-append-sync",
			trigger: func(op faultfs.Op, p string) bool { return op == faultfs.OpSync && isWAL(p) },
			fault:   errFault, wantErr: true, want2: true,
		},
		{
			// The log record fsynced — the commit point — so the edit
			// must survive no matter what the save does.
			name:    "save-temp-write",
			trigger: func(op faultfs.Op, p string) bool { return op == faultfs.OpWrite && isTemp(p) },
			fault:   errFault, wantErr: false, want2: true,
		},
		{
			name:    "save-temp-sync",
			trigger: func(op faultfs.Op, p string) bool { return op == faultfs.OpSync && isTemp(p) },
			fault:   errFault, wantErr: false, want2: true,
		},
		{
			name: "save-rename",
			trigger: func(op faultfs.Op, p string) bool {
				return op == faultfs.OpRename && strings.HasSuffix(p, ".gdag")
			},
			fault: errFault, wantErr: false, want2: true,
		},
		{
			// The save's rename landed but its directory sync failed:
			// the .gdag already holds batch2 AND its log record remains.
			// The pre-state fingerprint must keep replay from applying
			// it a second time.
			name: "save-dir-sync",
			trigger: func(op faultfs.Op, p string) bool {
				return op == faultfs.OpSync && !isWAL(p) && !isTemp(p)
			},
			fault: errFault, wantErr: false, want2: true,
		},
		{
			// Save fully succeeded, crash during the log reset: stale
			// record in the WAL, batch2 already in the .gdag — the
			// double-apply window the fingerprints exist for.
			name:    "wal-reset-truncate",
			trigger: func(op faultfs.Op, p string) bool { return op == faultfs.OpTruncate && isWAL(p) },
			fault:   errFault, wantErr: false, want2: true,
		},
	}

	batch1 := []editor.Op{{Op: "insert-markup", Hierarchy: "edits", Tag: "edit", Start: 0, End: 3}}
	batch2 := []editor.Op{
		{Op: "insert-markup", Hierarchy: "edits", Tag: "edit", Start: 4, End: 9},
		{Op: "set-attr", Hierarchy: "edits", Index: 1, Name: "status", Value: "committed"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writePlainDir(t, "plain")
			inj := faultfs.NewInjector(faultfs.OS)
			c, err := Open(dir, fastOpts(inj))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.UpdateBatch("plain", batch1, nil); err != nil {
				t.Fatal(err)
			}

			inj.SetHook(crashAt(tc.trigger, tc.fault))
			err = c.UpdateBatch("plain", batch2, nil)
			if (err != nil) != tc.wantErr {
				t.Fatalf("UpdateBatch under %s: err=%v, wantErr=%v", tc.name, err, tc.wantErr)
			}

			// Crash: the in-memory catalog dies with the process. Reopen
			// the directory on a healthy disk.
			c2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			doc, err := c2.Get("plain")
			if err != nil {
				t.Fatal(err)
			}
			edits := doc.GODDAG().ElementsNamed("edit")
			want := 1
			if tc.want2 {
				want = 2
			}
			if len(edits) != want {
				t.Fatalf("recovered %d edit elements, want %d", len(edits), want)
			}
			// No partial application: if batch2 survived, both its ops did.
			if tc.want2 {
				var attrs int
				for _, el := range edits {
					if v, ok := el.Attr("status"); ok && v == "committed" {
						attrs++
					}
				}
				if attrs != 1 {
					t.Fatalf("batch2 partially applied: %d elements carry its attr, want 1", attrs)
				}
			}
			// Recovered state must itself be durable: the log is spent and
			// a second reopen replays nothing.
			c3, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			doc3, err := c3.Get("plain")
			if err != nil {
				t.Fatal(err)
			}
			if got := len(doc3.GODDAG().ElementsNamed("edit")); got != want {
				t.Fatalf("second reopen has %d edit elements, want %d (recovery not idempotent)", got, want)
			}
			if s := c3.Stats(); s.Replayed != 0 {
				t.Fatalf("second reopen replayed %d records; recovery did not converge", s.Replayed)
			}
		})
	}
}

// TestVetoedBatchNotReplayed leaves a vetoed batch's record in the WAL
// (the rewind is made to fail) and asserts replay re-vetoes it rather
// than resurrecting the rejected edit.
func TestVetoedBatchNotReplayed(t *testing.T) {
	dir := writePlainDir(t, "plain")
	inj := faultfs.NewInjector(faultfs.OS)
	c, err := Open(dir, fastOpts(inj))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateBatch("plain", []editor.Op{
		{Op: "insert-markup", Hierarchy: "edits", Tag: "edit", Start: 0, End: 3},
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Fail the rewind so the vetoed batch's record stays logged.
	errFault := errors.New("injected: EIO")
	inj.SetHook(func(op faultfs.Op, p string) error {
		if op == faultfs.OpTruncate && isWAL(p) {
			return errFault
		}
		return nil
	})
	err = c.UpdateBatch("plain", []editor.Op{
		{Op: "insert-markup", Hierarchy: "edits", Tag: "edit", Start: 4, End: 9},
		{Op: "set-attr", Hierarchy: "edits", Index: 42, Name: "k", Value: "v"}, // out of range: vetoes
	}, nil)
	var be *editor.BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("veto = %v", err)
	}
	inj.SetHook(nil)

	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c2.Get("plain")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.GODDAG().ElementsNamed("edit")); got != 1 {
		t.Fatalf("replay resurrected a vetoed batch: %d edit elements, want 1", got)
	}
}

// TestPersistentFaultDegradesToReadOnly drives commits against a disk
// whose saves always fail: every commit stays durable through the WAL,
// but after FailThreshold consecutive failures the document — and after
// twice that, the catalog — degrades to read-only instead of wedging.
func TestPersistentFaultDegradesToReadOnly(t *testing.T) {
	dir := writePlainDir(t, "a", "b")
	inj := faultfs.NewInjector(faultfs.OS)
	c, err := Open(dir, fastOpts(inj))
	if err != nil {
		t.Fatal(err)
	}
	errDisk := errors.New("injected: ENOSPC")
	inj.SetHook(func(op faultfs.Op, p string) error {
		if op == faultfs.OpRename && strings.HasSuffix(p, ".gdag") {
			return errDisk
		}
		return nil
	})

	batch := func(i int) []editor.Op {
		return []editor.Op{{Op: "insert-markup", Hierarchy: "edits", Tag: "edit", Start: 4 * i, End: 4*i + 3}}
	}
	// Three commits on "a": each is WAL-durable (nil error) while the
	// save fails behind the scenes; the third trips the document.
	for i := 0; i < 3; i++ {
		if err := c.UpdateBatch("a", batch(i), nil); err != nil {
			t.Fatalf("commit %d: %v (WAL-durable commits must succeed)", i, err)
		}
	}
	if err := c.UpdateBatch("a", batch(3), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("4th update on degraded doc = %v, want ErrReadOnly", err)
	}
	ds, _ := c.Doc("a")
	if !ds.ReadOnly || !ds.Dirty {
		t.Fatalf("degraded doc stats: %+v", ds)
	}
	if c.ReadOnly() {
		t.Fatal("catalog degraded after one document's failures")
	}

	// Three more on "b": the catalog-wide streak reaches 2x the
	// threshold and the whole catalog degrades.
	for i := 0; i < 3; i++ {
		if err := c.UpdateBatch("b", batch(i), nil); err != nil {
			t.Fatalf("commit b/%d: %v", i, err)
		}
	}
	if !c.ReadOnly() {
		t.Fatal("catalog not read-only after 6 consecutive persist failures")
	}
	if s := c.Stats(); !s.ReadOnly || s.SaveFailures != 6 {
		t.Fatalf("stats: read_only=%v save_failures=%d", s.ReadOnly, s.SaveFailures)
	}
	if err := c.UpdateBatch("b", batch(3), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("update on read-only catalog = %v", err)
	}
	// Reads keep working throughout.
	if err := c.View("a", func(doc *core.Document) error {
		if got := len(doc.GODDAG().ElementsNamed("edit")); got != 3 {
			return fmt.Errorf("view sees %d edits, want 3", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The edits were never saved — but every one is in the WAL, so a
	// restart on a healed disk recovers all of them.
	inj.SetHook(nil)
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[string]int{"a": 3, "b": 3} {
		doc, err := c2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(doc.GODDAG().ElementsNamed("edit")); got != want {
			t.Fatalf("%s recovered %d edits, want %d", id, got, want)
		}
	}
	if c2.ReadOnly() {
		t.Fatal("degradation leaked across restart")
	}
}

// TestNegativeCacheTTLAndBackoff pins the catalog clock and walks a
// broken source through failure caching, exponential backoff, and
// recovery without a manual Evict.
func TestNegativeCacheTTLAndBackoff(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(src, []byte("<r>unclosed"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, Options{NegCacheTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var loads atomic.Int32
	c.onLoad = func(string) { loads.Add(1) }
	now := time.Unix(1_000_000, 0)
	c.now = func() time.Time { return now }

	mustFail := func(wantLoads int32) {
		t.Helper()
		if _, err := c.Get("doc"); err == nil {
			t.Fatal("broken source loaded")
		}
		if got := loads.Load(); got != wantLoads {
			t.Fatalf("loads = %d, want %d", got, wantLoads)
		}
	}
	mustFail(1)
	mustFail(1) // within TTL: served from the negative cache
	now = now.Add(500 * time.Millisecond)
	mustFail(1)
	now = now.Add(600 * time.Millisecond) // 1.1s: TTL expired, retried
	mustFail(2)
	now = now.Add(1500 * time.Millisecond) // second failure backs off 2x: still cached
	mustFail(2)

	// Fix the source; the next expiry heals the entry with no Evict.
	if err := os.WriteFile(src, []byte("<r><w>ok</w></r>"), 0o644); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second) // 2.5s after second failure: past the 2s backoff
	doc, err := c.Get("doc")
	if err != nil {
		t.Fatalf("healed source still failing: %v", err)
	}
	if loads.Load() != 3 || doc == nil {
		t.Fatalf("loads = %d after heal", loads.Load())
	}
	// Success resets the backoff state.
	if ds, _ := c.Doc("doc"); ds.Error != "" {
		t.Fatalf("healed entry still caches error %q", ds.Error)
	}
}

// BenchmarkRecovery measures open-time WAL replay against log length:
// the recovery-time-vs-log-length curve documented in PERFORMANCE.md.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			// Build a corpus document and a WAL of n committed-but-unsaved
			// batches by blocking every save.
			master := b.TempDir()
			cfg := corpus.DefaultConfig(2000)
			doc, err := corpus.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			f, err := os.Create(filepath.Join(master, "ms.gdag"))
			if err != nil {
				b.Fatal(err)
			}
			if err := store.Encode(f, doc); err != nil {
				b.Fatal(err)
			}
			f.Close()

			inj := faultfs.NewInjector(faultfs.OS)
			// The setup catalog eats n failed saves on purpose; keep it
			// from degrading to read-only partway through.
			opts := fastOpts(inj)
			opts.FailThreshold = 1 << 20
			c, err := Open(master, opts)
			if err != nil {
				b.Fatal(err)
			}
			loaded, err := c.Get("ms")
			if err != nil {
				b.Fatal(err)
			}
			cn := loaded.GODDAG().Content()
			errDisk := errors.New("injected: EIO")
			inj.SetHook(func(op faultfs.Op, p string) error {
				if op == faultfs.OpRename && strings.HasSuffix(p, ".gdag") {
					return errDisk
				}
				return nil
			})
			for i := 0; i < n; i++ {
				sp := cn.ByteSpan(document.NewSpan(4*i, 4*i+3))
				ops := []editor.Op{{Op: "insert-markup", Hierarchy: "edits", Tag: "edit", Start: sp.Start, End: sp.End}}
				if err := c.UpdateBatch("ms", ops, nil); err != nil {
					b.Fatal(err)
				}
			}
			gdag, err := os.ReadFile(filepath.Join(master, "ms.gdag"))
			if err != nil {
				b.Fatal(err)
			}
			wal, err := os.ReadFile(filepath.Join(master, "ms.wal"))
			if err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				if err := os.WriteFile(filepath.Join(dir, "ms.gdag"), gdag, 0o644); err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "ms.wal"), wal, 0o644); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rc, err := Open(dir, Options{}) // eager recovery replays the log
				if err != nil {
					b.Fatal(err)
				}
				if s := rc.Stats(); s.Replayed != uint64(n) {
					b.Fatalf("replayed %d records, want %d", s.Replayed, n)
				}
			}
		})
	}
}
