package catalog

import (
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// catMetrics holds the catalog's pre-resolved metric handles. The
// fields are nil when the catalog was opened without a registry; every
// obs method is a nil-guarded no-op, so hook sites observe
// unconditionally.
type catMetrics struct {
	coldLoad     *obs.Histogram // successful cold loads: parse + WAL replay + warm
	lockRead     *obs.Histogram // read-lock wait (ViewContext)
	lockWrite    *obs.Histogram // write-lock wait (UpdateContext/UpdateBatchContext)
	walAppend    *obs.Histogram // WAL append incl. fsync (the commit point)
	save         *obs.Histogram // store save, per attempt
	openMapped   *obs.Histogram // mapped .gdag opens: stat + mmap + header validation
	sectionBytes *obs.Histogram // v3 section sizes (bytes), per mapped open
}

// registerMetrics wires the catalog into reg: latency histograms for
// the operations worth a distribution, and func-backed counters/gauges
// reading the counters the catalog already keeps under mu — one source
// of truth, so /metrics can never drift from Stats().
func (c *Catalog) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.met = catMetrics{
		coldLoad: reg.Histogram("cx_catalog_cold_load_seconds",
			"Cold document load latency: parse, WAL replay, index pre-warm.", "", nil),
		lockRead: reg.Histogram("cx_catalog_lock_wait_seconds",
			"Per-document lock acquisition wait.", `side="read"`, nil),
		lockWrite: reg.Histogram("cx_catalog_lock_wait_seconds",
			"Per-document lock acquisition wait.", `side="write"`, nil),
		walAppend: reg.Histogram("cx_wal_append_seconds",
			"Write-ahead-log append latency, including the fsync that commits it.", "", nil),
		save: reg.Histogram("cx_catalog_save_seconds",
			"Document save latency, per attempt (retries observe again).", "", nil),
		openMapped: reg.Histogram("cx_store_open_seconds",
			"Mapped .gdag open latency: stat, mmap, header validation — no decode.", "", nil),
		sectionBytes: reg.ValueHistogram("cx_store_section_bytes",
			"Size distribution of v3 file sections at mapped opens.", "", nil),
	}
	counter := func(v *uint64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(*v)
		}
	}
	reg.CounterFunc("cx_catalog_loads_total", "Documents loaded from source.", "", counter(&c.loads))
	reg.CounterFunc("cx_catalog_hits_total", "Gets served from the resident set.", "", counter(&c.hits))
	reg.CounterFunc("cx_catalog_evictions_total", "Documents evicted under memory pressure.", "", counter(&c.evictions))
	reg.CounterFunc("cx_catalog_save_failures_total", "Commits not persisted after retries.", "", counter(&c.saveFailures))
	reg.CounterFunc("cx_catalog_recovered_total", "Documents that replayed WAL records at load.", "", counter(&c.recovered))
	reg.CounterFunc("cx_wal_replayed_records_total", "WAL records applied across all recoveries.", "", counter(&c.replayed))
	reg.CounterFunc("cx_store_v2_fallback_total", "Catalog .gdag opens that fell back to the v2 streaming decoder.", "", counter(&c.v2Fallbacks))
	reg.GaugeFunc("cx_store_mapped_bytes", "Bytes of .gdag files currently memory-mapped, process-wide.", "", func() float64 {
		return float64(store.MappedBytes())
	})
	reg.GaugeFunc("cx_catalog_resident_bytes", "Estimated footprint of resident documents.", "", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.resident)
	})
	reg.GaugeFunc("cx_catalog_resident_docs", "Documents currently resident.", "", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.lru.Len())
	})
	reg.GaugeFunc("cx_catalog_documents", "Documents known to the catalog.", "", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.ids))
	})
	reg.GaugeFunc("cx_catalog_read_only", "1 when the catalog has degraded to read-only.", "", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.readOnly {
			return 1
		}
		return 0
	})
}

// lockWaitStart reads the clock iff someone is listening — the zero
// time tells finishLockWait to skip. Kept as paired helpers (no
// closure) so the warm serving path stays allocation-free.
func lockWaitStart(h *obs.Histogram, tr *obs.Trace) time.Time {
	if h == nil && tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// finishLockWait folds the elapsed wait into h and the trace's lockWait
// stage.
func finishLockWait(start time.Time, h *obs.Histogram, tr *obs.Trace) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	h.Observe(d)
	tr.Add("lockWait", d)
}
