// Crash safety and degradation for the catalog's write path.
//
// With the write-ahead log on (the default), each document's commits
// follow append-before-apply: UpdateBatch serializes the op batch,
// appends it to <id>.wal, and fsyncs — that fsync is the commit point —
// before the batch is applied and the document's indexes repaired. The
// full save to <id>.gdag then runs with capped-backoff retries; success
// resets the log, failure leaves the records in place for the next
// open's replay. Replay re-applies op batches through the transaction
// API, gated on each record's pre-state fingerprint so a batch that
// already reached the saved base (crash between the save's rename and
// the log reset) is skipped, never applied twice.
//
// A disk that keeps failing degrades service instead of wedging it:
// FailThreshold consecutive failed persists turn the document
// read-only, twice that turns the whole catalog read-only (both sticky
// until restart, both visible in Stats and to the server's /healthz).
// Reads keep working throughout — only the write path sheds.
package catalog

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/editor"
	"repro/internal/goddag"
	"repro/internal/obs"
	"repro/internal/store"
)

// ErrReadOnly reports an update rejected because the document (or the
// whole catalog) has degraded to read-only after persistent storage
// failures. Test with errors.Is.
var ErrReadOnly = errors.New("read-only after persistent storage failures")

// ReadOnly reports whether the whole catalog has degraded to read-only.
// Individual documents may degrade earlier; see DocStats.ReadOnly.
func (c *Catalog) ReadOnly() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readOnly
}

// beginEdit registers an update on id: it rejects unknown ids and
// degraded (read-only) targets, and marks the entry mid-edit so
// evictLocked cannot drop the document between the load and the commit
// (a concurrent lock-free Get could then re-cache the pre-edit source
// and the edited document would be shadowed by the stale reload). The
// mark is a counter, not a flag: with several updates queued on one
// document, the first to finish must not drop the guard while the
// others are still editing.
func (c *Catalog) beginEdit(id string) (*entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, &ErrNotFound{ID: id}
	}
	if c.readOnly || e.readOnly {
		return nil, fmt.Errorf("catalog: update %q: %w", id, ErrReadOnly)
	}
	e.editing++
	return e, nil
}

func (c *Catalog) endEdit(e *entry) {
	c.mu.Lock()
	e.editing--
	c.mu.Unlock()
}

// UpdateBatch applies a wire-format op batch to the document as one
// transaction, write-ahead logged: the serialized batch is appended to
// <id>.wal and fsynced BEFORE it is applied, so once UpdateBatch
// returns nil the edit survives a crash at any later point — even if
// the save to <id>.gdag fails (the entry is then dirty and the log
// replays the batch on the next open). A vetoed batch (returned as a
// *editor.BatchError) changes nothing and its provisional log record is
// dropped. post, if non-nil, runs with the committed document still
// under its write lock — a snapshot hook for collecting response
// statistics; the document must not escape it.
func (c *Catalog) UpdateBatch(id string, ops []editor.Op, post func(*core.Document)) error {
	return c.UpdateBatchContext(context.Background(), id, ops, post)
}

// UpdateBatchContext is UpdateBatch bounded by ctx up to the commit
// point: the write-lock acquisition and a cold load return ctx.Err()
// with nothing changed, while a batch whose WAL append has started is
// carried through to the end regardless of ctx — the fsynced record is
// the commit, and a half-abandoned commit is exactly what the edit WAL
// exists to prevent.
func (c *Catalog) UpdateBatchContext(ctx context.Context, id string, ops []editor.Op, post func(*core.Document)) error {
	e, err := c.beginEdit(id)
	if err != nil {
		return err
	}
	defer c.endEdit(e)
	tr := obs.TraceFrom(ctx)
	lockStart := lockWaitStart(c.met.lockWrite, tr)
	if err := e.rw.Lock(ctx); err != nil {
		return err
	}
	finishLockWait(lockStart, c.met.lockWrite, tr)
	defer e.rw.Unlock()
	doc, err := c.GetContext(ctx, id)
	if err != nil {
		return err
	}

	// Append-before-apply. A failed append falls back to save-on-commit
	// durability (the edit still applies and saves below) rather than
	// rejecting the edit: availability degrades last, and if the save
	// also fails the persist counters degrade the document to read-only.
	walDurable := false
	var mark int64
	if w := c.walFor(e); w != nil {
		if payload, err := json.Marshal(editor.Batch{Ops: ops}); err == nil {
			mark = w.Size()
			appendStart := time.Now()
			if w.Append(store.RecordOps, c.fingerprint(e, doc), payload) == nil {
				walDurable = true
			}
			c.met.walAppend.Observe(time.Since(appendStart))
		}
	}

	if err := doc.Edit().ApplyBatch(ops); err != nil {
		if walDurable {
			// Unlog the vetoed batch. A failed rewind is tolerable: the
			// record re-vetoes identically at replay (prevalidation is
			// deterministic), so it can never resurrect the batch.
			_ = e.wal.Rewind(mark)
		}
		return err
	}
	return c.persistCommit(e, doc, walDurable, false, post)
}

// persistCommit finishes a committed edit: save with retries, reset the
// WAL on success, account the failure streaks, re-account the memory
// footprint. strict callers (Update) get the save error even when the
// WAL already made the edit durable; UpdateBatch treats its fsynced log
// record as the commit point and reports success.
func (c *Catalog) persistCommit(e *entry, doc *core.Document, walDurable, strict bool, post func(*core.Document)) error {
	// The committed state is the pre-state of the next logged batch;
	// recompute the cached fingerprint lazily.
	e.fpValid = false
	savePath := filepath.Join(c.dir, e.id+".gdag")
	saveErr := c.saveWithRetry(savePath, doc.GODDAG())
	if saveErr == nil && e.wal != nil && !e.wal.Empty() {
		// The .gdag now carries the state; the log's records are spent.
		// A failed reset is tolerable: stale records are inert at replay
		// because their pre-state fingerprints no longer match the saved
		// base.
		_ = e.wal.Reset()
	}
	if post != nil {
		post(doc)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	e.edits++
	if saveErr != nil {
		e.dirty = true
		c.persistFailLocked(e)
	} else {
		e.dirty = false
		e.paths = []string{savePath}
		e.format = "gdag"
		c.persistOKLocked(e)
	}
	// Re-account the footprint: the edit may have grown or shrunk the
	// document (and its repaired indexes), and each committed
	// transaction or history move also holds a full snapshot on the
	// session's undo/redo stacks — count those too, or sustained edit
	// traffic would blow the budget invisibly.
	if e.doc != nil {
		size := doc.GODDAG().Footprint() + doc.Edit().HistoryFootprint()
		c.resident += size - e.bytes
		e.bytes = size
		c.evictLocked()
	}
	if saveErr != nil && (strict || !walDurable) {
		return fmt.Errorf("catalog: update %q applied but not persisted: %w", e.id, saveErr)
	}
	return nil
}

// saveWithRetry is store.SaveFS with capped exponential backoff: a
// transient failure (ENOSPC racing a cleanup, a briefly stalled disk)
// retries up to c.saveRetries attempts before the commit is declared
// not persisted.
func (c *Catalog) saveWithRetry(path string, g *goddag.Document) error {
	var err error
	delay := c.retryBase
	for attempt := 0; attempt < c.saveRetries; attempt++ {
		if attempt > 0 {
			c.sleep(delay)
			delay *= 2
			if delay > c.retryCap {
				delay = c.retryCap
			}
		}
		saveStart := time.Now()
		err = store.SaveFS(c.fsys, path, g)
		c.met.save.Observe(time.Since(saveStart))
		if err == nil {
			return nil
		}
	}
	return err
}

// persistFailLocked records one failed persist: per-document and
// catalog-wide consecutive-failure streaks, degrading each to read-only
// at its threshold. Degradation is sticky — a disk that "recovers"
// after corrupting state needs an operator restart, not silent resume.
func (c *Catalog) persistFailLocked(e *entry) {
	c.saveFailures++
	e.persistFails++
	c.failStreak++
	if e.persistFails >= c.failThreshold {
		e.readOnly = true
	}
	if c.failStreak >= 2*c.failThreshold {
		c.readOnly = true
	}
}

func (c *Catalog) persistOKLocked(e *entry) {
	e.persistFails = 0
	c.failStreak = 0
}

// walPath is the write-ahead-log segment for id, next to its .gdag.
func (c *Catalog) walPath(id string) string { return filepath.Join(c.dir, id+".wal") }

// walFor returns the entry's open WAL, nil when logging is off or the
// segment cannot be opened (the caller then falls back to save-only
// durability). Called under the entry's write lock; after a successful
// load the handle is normally already open (recover opened it).
func (c *Catalog) walFor(e *entry) *store.WAL {
	if !c.walOn {
		return nil
	}
	if e.wal == nil {
		w, _, err := store.OpenWAL(c.fsys, c.walPath(e.id))
		if err != nil {
			return nil
		}
		e.wal = w
	}
	return e.wal
}

// fingerprint returns the persisted-state fingerprint of the document,
// cached across back-to-back batches (each commit invalidates it).
// Called under the entry's write lock.
func (c *Catalog) fingerprint(e *entry, doc *core.Document) uint32 {
	if !e.fpValid {
		e.fp = store.Fingerprint(doc.GODDAG())
		e.fpValid = true
	}
	return e.fp
}

// recover opens the document's WAL inside the (singleflight) load and
// replays any records a crash left behind: op batches re-apply through
// the transaction API when their pre-state fingerprint matches the
// current state (skipped otherwise — they already reached the saved
// base, or were vetoed and re-veto identically), snapshots replace the
// document wholesale. A non-empty log is then converged: the recovered
// state is saved and the log reset; if the save fails the document
// serves the recovered state dirty, with the log intact.
func (c *Catalog) recover(e *entry, doc *core.Document) (*core.Document, error) {
	if e.wal != nil {
		// Already open from a previous load: its records were replayed
		// then. (A non-empty log pins the entry dirty and dirty entries
		// are never evicted, so a reload cannot race pending records.)
		return doc, nil
	}
	w, recs, err := store.OpenWAL(c.fsys, c.walPath(e.id))
	if err != nil {
		// An unreadable log may hold committed edits; failing the load
		// is the conservative choice (and is negative-cached like any
		// load failure).
		return nil, fmt.Errorf("catalog: recover %q: %w", e.id, err)
	}
	e.wal = w
	if len(recs) == 0 {
		return doc, nil
	}

	applied := 0
	for _, r := range recs {
		switch r.Kind {
		case store.RecordSnapshot:
			nd, err := core.Load(bytes.NewReader(r.Payload))
			if err != nil {
				continue // checksummed but undecodable (format drift): skip
			}
			doc = nd
			applied++
		case store.RecordOps:
			if store.Fingerprint(doc.GODDAG()) != r.Pre {
				continue // already in the saved base; exactly-once gate
			}
			var b editor.Batch
			if json.Unmarshal(r.Payload, &b) != nil {
				continue
			}
			if doc.Edit().ApplyBatch(b.Ops) != nil {
				continue // deterministic re-veto: the original commit vetoed too
			}
			applied++
		}
	}

	// Converge: persist the recovered state and retire the log.
	savePath := filepath.Join(c.dir, e.id+".gdag")
	saveErr := c.saveWithRetry(savePath, doc.GODDAG())
	c.mu.Lock()
	if saveErr == nil {
		e.paths = []string{savePath}
		e.format = "gdag"
		c.persistOKLocked(e)
	} else {
		e.dirty = true
		c.persistFailLocked(e)
	}
	c.recovered++
	c.replayed += uint64(applied)
	e.replayed += uint64(applied)
	c.mu.Unlock()
	if saveErr == nil {
		_ = e.wal.Reset()
	}
	return doc, nil
}
